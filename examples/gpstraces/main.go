// Gpstraces runs Pervasive Miner over *continuous raw GPS trajectories*
// instead of taxi pick-up/drop-off records, exercising the full paper
// pipeline: stay-point detection (Definition 5) → semantic recognition
// (Algorithm 3) → pattern extraction (Algorithm 4). The paper's taxi
// dataset short-circuits the first step; generic GPS traces (phones,
// personal navigation) do not.
package main

import (
	"fmt"
	"sort"

	"csdm"
	"csdm/internal/pattern"
	"csdm/internal/recognize"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

func main() {
	cfg := csdm.DefaultCityConfig()
	cfg.NumPOIs = 3000
	cfg.NumPassengers = 400
	cfg.CardShare = 1 // trace every commuter
	cfg.Days = 7
	city := csdm.GenerateCity(cfg)
	workload := city.GenerateWorkload()

	// Continuous GPS traces: one per commuter per day.
	traces := city.GenerateGPSTraces(workload, synth.DefaultTraceConfig())
	samples := 0
	for _, tr := range traces {
		samples += len(tr.Points)
	}
	fmt.Printf("generated %d raw GPS traces with %d samples\n", len(traces), samples)

	// Stage 0 (Definition 5): stay-point detection on raw trajectories.
	spParams := trajectory.DefaultStayPointParams()
	db := make([]trajectory.SemanticTrajectory, 0, len(traces))
	totalStays := 0
	for _, tr := range traces {
		st := trajectory.ToSemantic(tr, spParams)
		if st.Len() >= 2 {
			db = append(db, st)
			totalStays += st.Len()
		}
	}
	fmt.Printf("stay-point detection: %d semantic trajectories, %d stay points (θ_d=%.0f m, θ_t=%s)\n",
		len(db), totalStays, spParams.MaxDist, spParams.MinDuration)

	// Stage 1–2: build the CSD from the detected stay points and
	// recognize every stay (semantic absence resolved).
	miner := csdm.NewMiner(city.POIs, workload.Journeys, csdm.DefaultConfig())
	rec := recognize.NewCSDRecognizer(miner.Diagram())
	recognize.Annotate(db, rec)
	annotated := 0
	for _, st := range db {
		for _, sp := range st.Stays {
			if !sp.S.IsEmpty() {
				annotated++
			}
		}
	}
	fmt.Printf("semantic recognition: %d/%d stays annotated\n", annotated, totalStays)

	// Stage 3: fine-grained pattern extraction over the annotated
	// trajectories.
	params := csdm.DefaultMiningParams()
	params.Sigma = 12
	patterns := pattern.Compat{E: pattern.NewCounterpartCluster()}.Extract(db, params)
	s := csdm.Summarize(patterns)
	fmt.Printf("\nCSD-PM over raw traces: %d patterns, coverage %d, sparsity %.1f m, consistency %.3f\n",
		s.NumPatterns, s.Coverage, s.MeanSparsity, s.MeanConsistency)

	sort.Slice(patterns, func(i, j int) bool { return patterns[i].Support > patterns[j].Support })
	for i, p := range patterns {
		if i == 6 {
			break
		}
		fmt.Printf("  support=%4d  ", p.Support)
		for k, sp := range p.Stays {
			if k > 0 {
				fmt.Print(" → ")
			}
			fmt.Print(sp.S)
		}
		fmt.Println()
	}
}
