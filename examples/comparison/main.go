// Comparison runs all six systems of the paper's evaluation — CSD-PM,
// ROI-PM, CSD-Splitter, ROI-Splitter, CSD-SDBSCAN, ROI-SDBSCAN — over
// one synthetic workload and prints the §5 metric table.
package main

import (
	"fmt"
	"time"

	"csdm"
)

func main() {
	cfg := csdm.DefaultCityConfig()
	cfg.NumPOIs = 4000
	cfg.NumPassengers = 600
	cfg.Days = 7
	city := csdm.GenerateCity(cfg)
	workload := city.GenerateWorkload()
	miner := csdm.NewMiner(city.POIs, workload.Journeys, csdm.DefaultConfig())

	params := csdm.DefaultMiningParams()
	params.Sigma = 25

	t0 := time.Now()
	results := miner.MineAll(params)
	fmt.Printf("mined %d journeys with all six approaches in %.1fs\n\n",
		len(workload.Journeys), time.Since(t0).Seconds())

	fmt.Printf("%-13s %10s %10s %14s %14s\n",
		"approach", "#patterns", "coverage", "sparsity (m)", "consistency")
	for _, a := range csdm.Approaches() {
		s := csdm.Summarize(results[a.String()])
		fmt.Printf("%-13s %10d %10d %14.1f %14.3f\n",
			a, s.NumPatterns, s.Coverage, s.MeanSparsity, s.MeanConsistency)
	}
	fmt.Println("\nExpected shape (paper §5): CSD-based rows have lower sparsity and")
	fmt.Println("semantic consistency pinned near 1.0; ROI-based rows are sparser and")
	fmt.Println("less consistent because hot-region annotation cannot control purity.")
}
