// Commuterflows reproduces the paper's §6 demonstration: mine mobility
// patterns separately for the six weekly time buckets (weekday/weekend
// × morning/afternoon/night) and contrast the regular weekday commute
// structure with the sparse, irregular weekend one.
package main

import (
	"fmt"
	"sort"

	"csdm"
	"csdm/internal/core"
)

func main() {
	cfg := csdm.DefaultCityConfig()
	cfg.NumPOIs = 4000
	cfg.NumPassengers = 700
	cfg.Days = 14
	city := csdm.GenerateCity(cfg)
	workload := city.GenerateWorkload()

	params := csdm.DefaultMiningParams()
	params.Sigma = 15 // per-bucket workloads are small

	for _, bucket := range core.TimeBuckets() {
		js := core.FilterJourneys(workload.Journeys, bucket)
		miner := csdm.NewMiner(city.POIs, js, csdm.DefaultConfig())
		patterns := miner.Mine(csdm.CSDPM, params)
		s := csdm.Summarize(patterns)
		fmt.Printf("%-18s %6d journeys  %4d patterns  coverage %5d\n",
			bucket, len(js), s.NumPatterns, s.Coverage)
		for _, line := range topTransitions(patterns, 3) {
			fmt.Printf("    %s\n", line)
		}
	}
	fmt.Println("\nAs in the paper: weekday mornings are dominated by Residence → work")
	fmt.Println("movements, evenings reverse them (often via restaurants and shops),")
	fmt.Println("and weekend patterns are fewer and less regular.")
}

// topTransitions renders the most-covered semantic transitions.
func topTransitions(patterns []csdm.Pattern, n int) []string {
	type agg struct {
		name     string
		coverage int
	}
	byName := map[string]*agg{}
	for _, p := range patterns {
		name := ""
		for k, it := range p.Items {
			if k > 0 {
				name += " → "
			}
			name += it.String()
		}
		a, ok := byName[name]
		if !ok {
			a = &agg{name: name}
			byName[name] = a
		}
		a.coverage += p.Support
	}
	list := make([]agg, 0, len(byName))
	for _, a := range byName {
		list = append(list, *a)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].coverage != list[j].coverage {
			return list[i].coverage > list[j].coverage
		}
		return list[i].name < list[j].name
	})
	var out []string
	for i, a := range list {
		if i == n {
			break
		}
		out = append(out, fmt.Sprintf("%-70s coverage %d", a.name, a.coverage))
	}
	return out
}
