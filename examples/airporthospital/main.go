// Airporthospital reproduces the paper's §6 closing demonstrations:
// the airport as a dominant taxi hotspot (Figure 14(g)), and hospital
// trips that GPS-based mining surfaces while biased check-in data
// hides them (Figure 14(h), the semantic-bias argument).
package main

import (
	"fmt"

	"csdm"
	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/synth"
)

func main() {
	cfg := csdm.DefaultCityConfig()
	cfg.NumPOIs = 4000
	cfg.NumPassengers = 700
	cfg.Days = 14
	city := csdm.GenerateCity(cfg)
	workload := city.GenerateWorkload()
	minerCfg := csdm.DefaultConfig()
	miner := csdm.NewMiner(city.POIs, workload.Journeys, minerCfg)

	params := csdm.DefaultMiningParams()
	params.Sigma = 25
	patterns := miner.Mine(csdm.CSDPM, params)

	// Hospital flows fan out from many residential origins, so each
	// origin-hospital pair is thin; drill down with a lower threshold.
	drill := params
	drill.Sigma = 12
	drillPatterns := miner.Mine(csdm.CSDPM, drill)

	// --- Figure 14(g): the airport hotspot -------------------------
	airportTrips := 0
	for _, j := range workload.Journeys {
		if geo.Haversine(j.Pickup, city.Airport) < 500 || geo.Haversine(j.Dropoff, city.Airport) < 500 {
			airportTrips++
		}
	}
	airportPatterns, airportCoverage := 0, 0
	for _, p := range patterns {
		for _, sp := range p.Stays {
			if geo.Haversine(sp.P, city.Airport) < 500 {
				airportPatterns++
				airportCoverage += p.Support
				break
			}
		}
	}
	fmt.Println("— Airport (Figure 14(g)) —")
	fmt.Printf("trips touching the airport: %d (%.1f%% of all records)\n",
		airportTrips, 100*float64(airportTrips)/float64(len(workload.Journeys)))
	fmt.Printf("patterns anchored at the airport: %d, coverage %d\n\n",
		airportPatterns, airportCoverage)

	// --- Figure 14(h): hospital trips vs check-in bias -------------
	hospitalTrips := 0
	for _, j := range workload.Journeys {
		if geo.Haversine(j.Dropoff, city.Hospital) < 400 {
			hospitalTrips++
		}
	}
	hospitalPatterns := 0
	for _, p := range drillPatterns {
		for _, sp := range p.Stays {
			if geo.Haversine(sp.P, city.Hospital) < 400 && sp.S.Has(poi.MedicalService) {
				hospitalPatterns++
				break
			}
		}
	}
	fmt.Println("— Children's hospital (Figure 14(h)) —")
	fmt.Printf("taxi drop-offs at the hospital: %d\n", hospitalTrips)
	fmt.Printf("medical patterns mined from GPS: %d\n", hospitalPatterns)

	for _, profile := range []synth.CheckinProfile{synth.ProfileNewYork(), synth.ProfileTokyo()} {
		cs := city.SampleCheckins(workload.Journeys, profile, 99, minerCfg.Index)
		med := synth.MajorShare(cs, poi.MedicalService)
		fmt.Printf("medical share of %s-style check-ins: %.2f%% (suppressed by sharing bias)\n",
			profile.Name, med*100)
	}
	fmt.Println("\nGPS trajectories expose medical mobility that social check-in data")
	fmt.Println("systematically hides — the paper's semantic-bias argument.")
}
