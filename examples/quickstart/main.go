// Quickstart: generate a small synthetic city, build the City Semantic
// Diagram, mine fine-grained mobility patterns with Pervasive Miner
// (CSD-PM) and print the strongest ones.
package main

import (
	"fmt"
	"sort"

	"csdm"
)

func main() {
	// A small city: ~3000 POIs, 400 commuters, one simulated week.
	cfg := csdm.DefaultCityConfig()
	cfg.NumPOIs = 3000
	cfg.NumPassengers = 400
	cfg.Days = 7
	city := csdm.GenerateCity(cfg)
	workload := city.GenerateWorkload()
	fmt.Printf("city: %d POIs; workload: %d taxi journeys\n",
		len(city.POIs), len(workload.Journeys))

	// The miner builds the City Semantic Diagram lazily on first use.
	miner := csdm.NewMiner(city.POIs, workload.Journeys, csdm.DefaultConfig())
	d := miner.Diagram()
	fmt.Printf("CSD: %d fine-grained semantic units, %.0f%% POI coverage, %.3f mean purity\n",
		len(d.Units), d.Coverage()*100, d.MeanUnitPurity())

	// Ask the diagram about a location (Algorithm 3's voting).
	fmt.Printf("semantics at the hospital: %s\n", miner.Recognize(city.Hospital))
	fmt.Printf("semantics at the airport:  %s\n", miner.Recognize(city.Airport))

	// Mine fine-grained patterns. σ is scaled to the small workload.
	params := csdm.DefaultMiningParams()
	params.Sigma = 25
	patterns := miner.Mine(csdm.CSDPM, params)
	s := csdm.Summarize(patterns)
	fmt.Printf("\nCSD-PM: %d patterns, coverage %d, avg sparsity %.1f m, avg consistency %.3f\n",
		s.NumPatterns, s.Coverage, s.MeanSparsity, s.MeanConsistency)

	sort.Slice(patterns, func(i, j int) bool { return patterns[i].Support > patterns[j].Support })
	fmt.Println("\nstrongest patterns:")
	for i, p := range patterns {
		if i == 8 {
			break
		}
		fmt.Printf("  support=%4d  ", p.Support)
		for k, sp := range p.Stays {
			if k > 0 {
				fmt.Print(" → ")
			}
			fmt.Printf("%s %s", sp.S, sp.P)
		}
		fmt.Println()
	}
}
