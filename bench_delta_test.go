package csdm

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/stage"
)

// BenchDeltaResult is one new-stay-fraction line of BENCH_DELTA.json:
// the wall time of a full rebuild on the union versus one
// Maintainer.ApplyDelta of the same new stays, in the machine format
// cmd/benchgate -delta consumes.
type BenchDeltaResult struct {
	// Fraction is the share of the bench city's stay points arriving as
	// the delta batch (the rest seed the maintainer).
	Fraction float64 `json:"fraction"`
	// BatchStays is the delta batch size in stay points.
	BatchStays int `json:"batch_stays"`
	// FullNsPerOp is one full csd.Build over the union.
	FullNsPerOp int64 `json:"full_ns_per_op"`
	// DeltaNsPerOp is one ApplyDelta of the batch on a maintainer
	// seeded with the remaining stays.
	DeltaNsPerOp int64 `json:"delta_ns_per_op"`
	// Speedup is FullNsPerOp/DeltaNsPerOp — informational; the gate
	// recomputes it from the candidate's own ns lines.
	Speedup float64 `json:"speedup"`
	// Units is the unit count of the delta-built diagram, identical to
	// the full rebuild's by the maintainer's equivalence property, so
	// the gate compares it exactly.
	Units int `json:"units"`
}

// BenchDeltaReport is the top-level BENCH_DELTA.json document.
type BenchDeltaReport struct {
	Benchmark  string             `json:"benchmark"`
	GoMaxProcs int                `json:"go_max_procs"`
	NumCPU     int                `json:"num_cpu"`
	Results    []BenchDeltaResult `json:"results"`
}

// benchDeltaFractions is the new-stay-fraction curve BENCH_DELTA.json
// records; the 1% line is the one benchgate -delta holds to its
// speedup floor.
var benchDeltaFractions = []float64{0.01, 0.05, 0.20}

// TestEmitBenchDeltaJSON measures full-rebuild vs delta-apply on the
// bench city and writes BENCH_DELTA.json-format measurements to the
// path in $BENCH_DELTA_JSON, for the CI incrementality gate
// (cmd/benchgate -delta) and for refreshing the committed baseline.
// Unset, the test skips, so normal `go test` runs pay nothing.
//
// Timing is manual (best of a few repetitions) rather than
// testing.Benchmark: each delta repetition needs a freshly seeded
// maintainer, and b.N-scaling would multiply that ~full-build-sized
// setup into the measurement loop.
func TestEmitBenchDeltaJSON(t *testing.T) {
	path := os.Getenv("BENCH_DELTA_JSON")
	if path == "" {
		t.Skip("BENCH_DELTA_JSON not set")
	}
	const reps = 3
	env := sharedEnv()
	stays := env.Pipeline.StayPoints()
	params := core.DefaultConfig().CSD

	report := BenchDeltaReport{
		Benchmark:  "BenchmarkDelta",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// The full-rebuild reference: the union is the same workload for
	// every fraction, so one measurement serves all lines.
	var fullNs int64
	var fullUnits int
	for r := 0; r < reps; r++ {
		start := time.Now()
		d := csd.Build(env.City.POIs, stays, params)
		ns := time.Since(start).Nanoseconds()
		if fullNs == 0 || ns < fullNs {
			fullNs = ns
		}
		fullUnits = len(d.Units)
	}

	for _, frac := range benchDeltaFractions {
		batch := int(float64(len(stays)) * frac)
		if batch < 1 {
			batch = 1
		}
		base := stays[:len(stays)-batch]
		delta := stays[len(stays)-batch:]

		var deltaNs int64
		var units int
		for r := 0; r < reps; r++ {
			m, err := csd.NewMaintainerEnv(stage.Background(), env.City.POIs, base, params)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			d, _, err := m.ApplyDelta(stage.Background(), delta)
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				t.Fatal(err)
			}
			if deltaNs == 0 || ns < deltaNs {
				deltaNs = ns
			}
			units = len(d.Units)
		}
		if units != fullUnits {
			t.Fatalf("fraction %.2f: delta diagram has %d units, full rebuild %d — equivalence broken", frac, units, fullUnits)
		}
		report.Results = append(report.Results, BenchDeltaResult{
			Fraction:     frac,
			BatchStays:   batch,
			FullNsPerOp:  fullNs,
			DeltaNsPerOp: deltaNs,
			Speedup:      float64(fullNs) / float64(deltaNs),
			Units:        units,
		})
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %+v", path, report.Results)
}
