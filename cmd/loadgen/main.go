// Command loadgen drives a synthetic check-in stream against a running
// csdserve instance and reports throughput and latency quantiles.
//
// Usage:
//
//	loadgen -url http://localhost:7070 [-concurrency 8] [-duration 10s]
//	        [-stays 4] [-seed 1] [-out report.json] [-bench BENCH_SERVE.json]
//	        [-min-ok N] [-min-shed N] [-max-errors N]
//
// Each worker keeps one request in flight (closed loop), sampling stay
// points uniformly inside the served city's extent (read from
// /v1/info) and posting them to /v1/recognize. The report counts 200s
// as served, 503s as shed (Retry-After presence tracked), everything
// else as errors, and prints QPS plus p50/p95/p99 of the served
// requests.
//
// The -min-ok/-min-shed/-max-errors flags turn the run into an
// assertion: the exit code is 1 when the thresholds are not met, which
// is how CI asserts "a mix of 200s and 503s under 2× overload" without
// parsing JSON. -bench writes the BENCH_SERVE.json document that
// cmd/benchgate -serve gates against the committed baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"csdm/internal/ckpt"
	"csdm/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		url         = flag.String("url", "http://localhost:7070", "base URL of the csdserve instance")
		concurrency = flag.Int("concurrency", 8, "closed-loop worker count")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		maxRequests = flag.Int64("requests", 0, "stop after this many requests (0 = run the full duration)")
		stays       = flag.Int("stays", 4, "stay points per posted journey")
		seed        = flag.Int64("seed", 1, "synthetic stream seed")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		out         = flag.String("out", "", "write the load report as JSON to this file")
		bench       = flag.String("bench", "", "write a BENCH_SERVE.json document to this file")
		admLimit    = flag.Int("admission-limit", 0, "server's admission limit, recorded in the -bench document")
		minOK       = flag.Int64("min-ok", 0, "fail unless at least this many requests were served")
		minShed     = flag.Int64("min-shed", 0, "fail unless at least this many requests were shed")
		maxErrors   = flag.Int64("max-errors", 0, "fail when more than this many requests errored")
	)
	flag.Parse()

	rep, err := serve.RunLoad(context.Background(), *url, serve.LoadOptions{
		Concurrency:     *concurrency,
		Duration:        *duration,
		MaxRequests:     *maxRequests,
		StaysPerRequest: *stays,
		Seed:            *seed,
		Timeout:         *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requests=%d ok=%d shed=%d errors=%d in %.1fs\n",
		rep.Requests, rep.OK, rep.Shed, rep.Errors, rep.DurationSec)
	fmt.Printf("qps=%.1f p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.QPS, rep.P50Ms, rep.P95Ms, rep.P99Ms)
	if rep.Shed > 0 {
		fmt.Printf("shed responses with Retry-After: %d/%d\n", rep.ShedWithRetryAfter, rep.Shed)
	}

	if *out != "" {
		if err := writeJSONFile(*out, rep); err != nil {
			log.Fatal(err)
		}
	}
	if *bench != "" {
		doc := serve.BenchServeReport{
			Benchmark:      "LoadgenRecognize",
			GoMaxProcs:     runtime.GOMAXPROCS(0),
			NumCPU:         runtime.NumCPU(),
			AdmissionLimit: *admLimit,
			Results:        []serve.BenchServeResult{rep.BenchResult()},
		}
		if err := writeJSONFile(*bench, doc); err != nil {
			log.Fatal(err)
		}
	}

	failed := false
	if rep.OK < *minOK {
		log.Printf("FAIL: served %d < required %d", rep.OK, *minOK)
		failed = true
	}
	if rep.Shed < *minShed {
		log.Printf("FAIL: shed %d < required %d", rep.Shed, *minShed)
		failed = true
	}
	if rep.Shed > 0 && rep.ShedWithRetryAfter != rep.Shed {
		log.Printf("FAIL: %d of %d shed responses missing Retry-After", rep.Shed-rep.ShedWithRetryAfter, rep.Shed)
		failed = true
	}
	if rep.Errors > *maxErrors {
		log.Printf("FAIL: %d errors > allowed %d", rep.Errors, *maxErrors)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func writeJSONFile(path string, v any) error {
	return ckpt.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}
