// Command csdserve is the hardened online recognition service: it
// loads a framed .csdf City Semantic Diagram snapshot (written by
// csdminer -save-diagram) and serves semantic recognition over HTTP.
//
// Usage:
//
//	csdserve -snapshot diagram.csdf [-patterns patterns.json] [-addr :7070]
//
// Routes:
//
//	POST /v1/recognize   annotate the posted stay points (Algorithm 3)
//	GET  /v1/units       semantic units near ?lon&lat[&radius]
//	GET  /v1/patterns    mined patterns near ?lon&lat[&radius][&limit]
//	GET  /v1/info        live snapshot generation, sizes and extent
//	POST /admin/reload   validated snapshot hot-swap (also SIGHUP)
//	GET  /healthz        liveness (200 while the process runs)
//	GET  /readyz         routability (503 before load and during drain)
//	GET  /metrics        Prometheus exposition (plus /debug/pprof etc.)
//
// Robustness envelope: -admission-limit bounds the requests in service
// (a small wait queue of -admission-queue waiters fronts it; beyond
// that the server sheds with 503 + Retry-After), -request-timeout
// bounds each request with its own deadline, handler panics are
// contained per-request, and SIGHUP or /admin/reload hot-swaps the
// snapshot through full CRC + sanity validation — a corrupt file keeps
// the old diagram serving. SIGINT/SIGTERM starts the graceful drain:
// /readyz flips to 503 immediately, in-flight requests finish within
// -drain-timeout, and the process exits 0 on a clean drain or 5 when
// requests were still running at the deadline.
//
// Exit codes: 2 usage, 3 input (unreadable/corrupt snapshot or
// patterns), 4 runtime (listen failure), 5 drain timeout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"csdm/internal/fault"
	"csdm/internal/obs"
	"csdm/internal/obs/obshttp"
	"csdm/internal/serve"
)

// The exit codes callers and scripts can branch on.
const (
	exitUsage   = 2 // bad flags
	exitInput   = 3 // unreadable or invalid snapshot/patterns file
	exitRuntime = 4 // listen failure
	exitDrain   = 5 // drain timeout expired with requests in flight
)

func progress(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func die(code int, err error) {
	log.Print(err)
	os.Exit(code)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("csdserve: ")
	var (
		snapshot   = flag.String("snapshot", "", "framed .csdf diagram snapshot to serve (or -current)")
		current    = flag.String("current", "", "serve the snapshot published by a checkpoint directory's CURRENT pointer (streaming ingestion)")
		watch      = flag.Duration("watch", 0, "with -current, poll CURRENT at this interval and hot-swap newly published generations (0 = SIGHUP only)")
		patterns   = flag.String("patterns", "", "mined pattern set (csdminer mine -save-patterns) for /v1/patterns")
		addr       = flag.String("addr", ":7070", "listen address")
		admLimit   = flag.Int("admission-limit", runtime.NumCPU(), "max requests in service concurrently")
		admQueue   = flag.Int("admission-queue", -1, "wait-queue depth beyond the admission limit before shedding (-1 = equal to the limit)")
		reqTimeout = flag.Duration("request-timeout", 2*time.Second, "per-request deadline (0 = none)")
		drainTO    = flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on SIGINT/SIGTERM")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint sent with shed responses")
		faultSpec  = flag.String("fault", "", "fault-injection spec site:kind:trigger[,...] (testing only)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for probabilistic fault-injection rules (testing only)")
	)
	flag.Parse()
	if (*snapshot == "") == (*current == "") || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: csdserve -snapshot diagram.csdf | -current ckptdir [flags]")
		os.Exit(exitUsage)
	}
	if *watch != 0 && *current == "" {
		fmt.Fprintln(os.Stderr, "csdserve: -watch requires -current")
		os.Exit(exitUsage)
	}
	if in, err := fault.Parse(*faultSpec, *faultSeed); err != nil {
		die(exitUsage, err)
	} else if in != nil {
		fault.Activate(in)
		progress("fault injection active: %s (seed %d)", *faultSpec, *faultSeed)
	}

	// A serving process always carries its metrics registry: the
	// request-path families seeded at zero by serve.New, the fault
	// counters, and the runtime sampler's process-health gauges, all
	// scraped from /metrics on the service listener.
	reg := obs.NewRegistry()
	fault.SetMetrics(reg)
	stopSampler := obs.StartRuntimeSampler(reg, time.Second)
	defer stopSampler()

	srv := serve.New(serve.Config{
		AdmissionLimit: *admLimit,
		QueueSlack:     *admQueue,
		RequestTimeout: *reqTimeout,
		RetryAfter:     *retryAfter,
		Registry:       reg,
		Logf:           progress,
	})
	obshttp.Register(srv.Mux(), obshttp.Options{Registry: reg, ExpvarName: "csdserve", Logf: progress})

	if *current != "" {
		if err := srv.LoadCurrent(*current); err != nil {
			die(exitInput, err)
		}
	} else if err := srv.LoadSnapshot(*snapshot); err != nil {
		die(exitInput, err)
	}
	if *patterns != "" {
		// LoadPatterns remembers the path: every reload (SIGHUP, watch)
		// re-reads it inside the same validated swap.
		if err := srv.LoadPatterns(*patterns); err != nil {
			die(exitInput, err)
		}
	}
	if *watch > 0 {
		stopWatch := srv.StartWatch(*watch)
		defer stopWatch()
		progress("watching CURRENT in %s every %s", *current, *watch)
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		die(exitRuntime, fmt.Errorf("listen %s: %w", *addr, err))
	}
	progress("recognition service listening on http://%s (admission limit %d, queue %d, request timeout %s)",
		bound, *admLimit, *admQueue, *reqTimeout)

	// Signal loop: SIGHUP hot-swaps, SIGINT/SIGTERM drains. Reload
	// failures are logged and counted but never fatal — the old
	// snapshot keeps serving.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if _, err := srv.Reload(); err != nil {
				progress("SIGHUP reload failed: %v", err)
			}
			continue
		}
		progress("%s received: draining (timeout %s)", sig, *drainTO)
		if err := srv.Drain(*drainTO); err != nil {
			die(exitDrain, fmt.Errorf("drain timed out with requests in flight: %w", err))
		}
		progress("drained cleanly")
		return
	}
}
