// Command genworkload generates a synthetic Shanghai-like dataset — a
// POI file and a taxi-journey log — in the exchange formats the
// csdminer tool consumes.
//
// Usage:
//
//	genworkload [-pois N] [-passengers N] [-days N] [-seed N]
//	            [-poi-out pois.csv] [-journeys-out journeys.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"csdm/internal/poi"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genworkload: ")
	var (
		nPOIs       = flag.Int("pois", 6000, "POI dataset size")
		nPassengers = flag.Int("passengers", 1000, "commuter population")
		days        = flag.Int("days", 14, "simulated days (starting on a Monday)")
		seed        = flag.Int64("seed", 1, "generator seed")
		poiOut      = flag.String("poi-out", "pois.csv", "POI output file")
		journeyOut  = flag.String("journeys-out", "journeys.csv", "journey output file")
	)
	flag.Parse()

	cfg := synth.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumPOIs = *nPOIs
	cfg.NumPassengers = *nPassengers
	cfg.Days = *days

	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()

	if err := writePOIs(*poiOut, city.POIs); err != nil {
		log.Fatal(err)
	}
	if err := writeJourneys(*journeyOut, w.Journeys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d POIs to %s and %d journeys to %s (mean trip %.1f min)\n",
		len(city.POIs), *poiOut, len(w.Journeys), *journeyOut,
		synth.MeanTripMinutes(w.Journeys))
}

func writePOIs(path string, ps []poi.POI) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := poi.WriteCSV(f, ps); err != nil {
		return err
	}
	return f.Close()
}

func writeJourneys(path string, js []trajectory.Journey) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trajectory.WriteJourneysCSV(f, js); err != nil {
		return err
	}
	return f.Close()
}
