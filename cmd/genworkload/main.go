// Command genworkload generates a synthetic Shanghai-like dataset — a
// POI file and a taxi-journey log — in the exchange formats the
// csdminer tool consumes.
//
// Usage:
//
//	genworkload [-pois N] [-passengers N] [-days N] [-seed N]
//	            [-poi-out pois.csv] [-journeys-out journeys.csv]
//	            [-scenario batch|stream] [-base-fraction 0.8]
//	            [-stream-out stream.csv]
//
// The default "batch" scenario writes the whole journey log to one
// file. The "stream" scenario models streaming ingestion: the journeys
// are sorted by pickup time and split at -base-fraction — the early
// portion goes to -journeys-out (the batch log that mines the base
// snapshot) and the late portion to -stream-out (the time-ordered
// stream `csdminer ingest` applies as delta batches), so the ingestion
// path has a reproducible synthetic workload.
//
// The "country" scenario lays -cities independent cities on a grid,
// -city-spacing degrees apart, each generated with its own seed and
// the per-city -pois/-passengers/-days sizes, and concatenates their
// POI and journey files (ids offset per city so they stay unique).
// The result is the geo-sharded pipeline's natural workload: a corpus
// whose extent spans many tiles, with dense cities separated by empty
// countryside.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genworkload: ")
	var (
		nPOIs       = flag.Int("pois", 6000, "POI dataset size")
		nPassengers = flag.Int("passengers", 1000, "commuter population")
		days        = flag.Int("days", 14, "simulated days (starting on a Monday)")
		seed        = flag.Int64("seed", 1, "generator seed")
		poiOut      = flag.String("poi-out", "pois.csv", "POI output file")
		journeyOut  = flag.String("journeys-out", "journeys.csv", "journey output file (stream scenario: the base portion)")
		scenario    = flag.String("scenario", "batch", "workload shape: batch (one journey log), stream (time-split base + delta stream) or country (a grid of cities)")
		baseFrac    = flag.Float64("base-fraction", 0.8, "stream scenario: share of the time-ordered journeys in the base file")
		streamOut   = flag.String("stream-out", "stream.csv", "stream scenario: delta stream output file")
		nCities     = flag.Int("cities", 4, "country scenario: number of cities on the grid (per-city sizes come from -pois/-passengers/-days)")
		spacing     = flag.Float64("city-spacing", 0.15, "country scenario: degrees between adjacent city centers")
	)
	flag.Parse()

	cfg := synth.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumPOIs = *nPOIs
	cfg.NumPassengers = *nPassengers
	cfg.Days = *days

	if *scenario == "country" {
		if err := runCountry(cfg, *nCities, *spacing, *poiOut, *journeyOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()

	if err := writePOIs(*poiOut, city.POIs); err != nil {
		log.Fatal(err)
	}
	switch *scenario {
	case "batch":
		if err := writeJourneys(*journeyOut, w.Journeys); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d POIs to %s and %d journeys to %s (mean trip %.1f min)\n",
			len(city.POIs), *poiOut, len(w.Journeys), *journeyOut,
			synth.MeanTripMinutes(w.Journeys))
	case "stream":
		if *baseFrac <= 0 || *baseFrac >= 1 {
			log.Fatalf("-base-fraction must be in (0,1), got %g", *baseFrac)
		}
		js := append([]trajectory.Journey(nil), w.Journeys...)
		sort.SliceStable(js, func(i, k int) bool { return js[i].PickupTime.Before(js[k].PickupTime) })
		split := int(float64(len(js)) * *baseFrac)
		if split < 1 || split >= len(js) {
			log.Fatalf("-base-fraction %g leaves an empty base or stream (%d journeys)", *baseFrac, len(js))
		}
		if err := writeJourneys(*journeyOut, js[:split]); err != nil {
			log.Fatal(err)
		}
		if err := writeJourneys(*streamOut, js[split:]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d POIs to %s, %d base journeys to %s, %d stream journeys to %s (split at %s)\n",
			len(city.POIs), *poiOut, split, *journeyOut, len(js)-split, *streamOut,
			js[split].PickupTime.Format("2006-01-02 15:04"))
	default:
		log.Fatalf("unknown -scenario %q (want batch, stream or country)", *scenario)
	}
}

// runCountry generates -cities independent cities on a near-square
// grid and concatenates their datasets. Each city gets its own seed
// (base seed + index) and center; POI, passenger and taxi ids are
// offset per city so the concatenation stays collision-free — pattern
// mining groups journeys by passenger, and two commuters in different
// cities must never alias.
func runCountry(cfg synth.Config, cities int, spacing float64, poiOut, journeyOut string) error {
	if cities < 1 {
		return fmt.Errorf("-cities must be at least 1, got %d", cities)
	}
	if spacing <= 0 {
		return fmt.Errorf("-city-spacing must be positive, got %g", spacing)
	}
	cols := 1
	for cols*cols < cities {
		cols++
	}
	base := cfg.Center
	if base == (geo.Point{}) {
		base = synth.DefaultConfig().Center
	}
	const idStride = 10_000_000
	var pois []poi.POI
	var journeys []trajectory.Journey
	for i := 0; i < cities; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		c.Center = geo.Point{
			Lon: base.Lon + float64(i%cols)*spacing,
			Lat: base.Lat + float64(i/cols)*spacing,
		}
		city := synth.NewCity(c)
		w := city.GenerateWorkload()
		off := int64(i) * idStride
		for _, p := range city.POIs {
			p.ID += off
			pois = append(pois, p)
		}
		for _, j := range w.Journeys {
			j.TaxiID += off
			j.PassengerID += off
			journeys = append(journeys, j)
		}
	}
	if err := writePOIs(poiOut, pois); err != nil {
		return err
	}
	if err := writeJourneys(journeyOut, journeys); err != nil {
		return err
	}
	fmt.Printf("wrote %d POIs to %s and %d journeys to %s (%d cities on a %d-wide grid, %.2f° apart)\n",
		len(pois), poiOut, len(journeys), journeyOut, cities, cols, spacing)
	return nil
}

func writePOIs(path string, ps []poi.POI) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := poi.WriteCSV(f, ps); err != nil {
		return err
	}
	return f.Close()
}

func writeJourneys(path string, js []trajectory.Journey) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trajectory.WriteJourneysCSV(f, js); err != nil {
		return err
	}
	return f.Close()
}
