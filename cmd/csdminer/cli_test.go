package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

// buildCLI compiles the csdminer binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "csdminer")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeInputs materializes a small synthetic dataset as CSV files.
func writeInputs(t *testing.T, dir string) (poiPath, journeyPath string) {
	t.Helper()
	scfg := synth.DefaultConfig()
	scfg.Seed = 5
	scfg.NumPOIs = 400
	scfg.NumPassengers = 40
	scfg.Days = 2
	city := synth.NewCity(scfg)
	w := city.GenerateWorkload()
	poiPath = filepath.Join(dir, "pois.csv")
	journeyPath = filepath.Join(dir, "journeys.csv")
	var pb, jb bytes.Buffer
	if err := poi.WriteCSV(&pb, city.POIs); err != nil {
		t.Fatal(err)
	}
	if err := trajectory.WriteJourneysCSV(&jb, w.Journeys); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(poiPath, pb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journeyPath, jb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return poiPath, journeyPath
}

// runCLI executes the binary and returns its exit code and combined
// output.
func runCLI(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("run %v: %v\n%s", args, err, out)
	return -1, ""
}

// TestCLIExitCodes pins the exit-code contract: 2 for usage errors, 3
// for input errors, 4 for pipeline failures (here injected with the
// -fault flag), 0 for a healthy run.
func TestCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	pois, journeys := writeInputs(t, dir)

	if code, out := runCLI(t, bin); code != exitUsage {
		t.Errorf("no subcommand: exit %d, want %d\n%s", code, exitUsage, out)
	}
	if code, out := runCLI(t, bin, "-pois", pois, "-journeys", journeys, "explode"); code != exitUsage {
		t.Errorf("unknown subcommand: exit %d, want %d\n%s", code, exitUsage, out)
	}
	if code, out := runCLI(t, bin, "-pois", pois, "-journeys", journeys,
		"-approach", "CSD-Magic", "mine"); code != exitUsage {
		t.Errorf("unknown approach: exit %d, want %d\n%s", code, exitUsage, out)
	}
	if code, out := runCLI(t, bin, "-pois", filepath.Join(dir, "nope.csv"),
		"-journeys", journeys, "diagram"); code != exitInput {
		t.Errorf("missing input: exit %d, want %d\n%s", code, exitInput, out)
	}
	if code, out := runCLI(t, bin, "-pois", pois, "-journeys", journeys,
		"-fault", "csd.popularity:error:1", "diagram"); code != exitPipeline {
		t.Errorf("injected build fault: exit %d, want %d\n%s", code, exitPipeline, out)
	}
	if code, out := runCLI(t, bin, "-pois", pois, "-journeys", journeys, "diagram"); code != 0 {
		t.Errorf("healthy diagram run: exit %d\n%s", code, out)
	}
}

// TestCLILenientLoad checks that a corrupt row fails a strict run with
// the input exit code and file context, while -lenient skips it,
// reports the skip, and completes.
func TestCLILenientLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	pois, journeys := writeInputs(t, dir)

	raw, err := os.ReadFile(pois)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 3)
	dirty := lines[0] + "\nnotanid,x,121.4,31.2,Chinese Restaurant\n" + lines[1] + "\n" + lines[2]
	dirtyPath := filepath.Join(dir, "dirty.csv")
	if err := os.WriteFile(dirtyPath, []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out := runCLI(t, bin, "-pois", dirtyPath, "-journeys", journeys, "diagram")
	if code != exitInput {
		t.Errorf("strict dirty load: exit %d, want %d\n%s", code, exitInput, out)
	}
	if !strings.Contains(out, "dirty.csv") {
		t.Errorf("strict error does not name the file:\n%s", out)
	}
	code, out = runCLI(t, bin, "-pois", dirtyPath, "-journeys", journeys, "-lenient", "diagram")
	if code != 0 {
		t.Errorf("lenient dirty load: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "skipped 1 bad rows") {
		t.Errorf("lenient run does not report the skip:\n%s", out)
	}
}

// TestCLIMetricsOut runs a mine with -metrics-out and validates the
// final Prometheus dump: it must pass the exposition linter and cover
// the metric families the telemetry layer promises (stage durations,
// exec task latencies, runtime gauges, checkpoint counters, and the
// pre-declared fault counter).
func TestCLIMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	pois, journeys := writeInputs(t, dir)
	metricsPath := filepath.Join(dir, "metrics.txt")

	code, out := runCLI(t, bin, "-pois", pois, "-journeys", journeys,
		"-checkpoint", filepath.Join(dir, "ckpt"),
		"-metrics-out", metricsPath, "mine")
	if code != 0 {
		t.Fatalf("mine with -metrics-out: exit %d\n%s", code, out)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, fam := range []string{
		"csdm_stage_duration_seconds_bucket",
		"csdm_stage_duration_seconds_count",
		"csdm_exec_task_seconds_count",
		"csdm_exec_tasks_total",
		"csdm_exec_panics_total 0",
		"csdm_fault_injected_total 0",
		"go_goroutines",
		"go_gc_pause_seconds",
		"ckpt_saved_diagram",
		"csdm_patterns_mined_total",
		"csdm_index_query_seconds",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("metrics dump missing %q", fam)
		}
	}
	if errs := obs.Lint(strings.NewReader(body)); len(errs) != 0 {
		t.Fatalf("metrics dump fails lint: %v\n%s", errs, body)
	}
}
