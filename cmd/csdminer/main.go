// Command csdminer runs the Pervasive Miner pipeline over a POI file
// and a taxi-journey log (the formats genworkload emits).
//
// Usage:
//
//	csdminer -pois pois.csv -journeys journeys.csv <subcommand> [flags]
//
// Subcommands:
//
//	diagram    build the City Semantic Diagram and report its units
//	recognize  annotate the journeys and write semantic trajectories
//	mine       extract fine-grained patterns and report them
//
// Progress and timing messages go to stderr; stdout carries only the
// machine-parseable results. -workers bounds the parallelism of every
// pipeline stage (1 = sequential; results are identical either way)
// and -index selects the spatial-index backend (grid, kdtree, rtree).
// -trace prints the per-stage telemetry report to stderr after the
// run; -debug-addr serves net/http/pprof, expvar (the live counters
// under "csdm") and /debug/trace (the span tree as JSON) for
// inspecting a long run in flight.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"time"

	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/index"
	"csdm/internal/metrics"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// progress reports loading/timing status on stderr, keeping stdout
// machine-parseable.
func progress(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("csdminer: ")
	var (
		poiPath     = flag.String("pois", "pois.csv", "POI CSV file")
		journeyPath = flag.String("journeys", "journeys.csv", "journey CSV file")
		approach    = flag.String("approach", "CSD-PM", "mining approach (CSD-PM, ROI-PM, CSD-Splitter, ROI-Splitter, CSD-SDBSCAN, ROI-SDBSCAN)")
		sigma       = flag.Int("sigma", 50, "support threshold σ")
		rho         = flag.Float64("rho", 0.002, "density threshold ρ (points/m²)")
		deltaT      = flag.Duration("deltat", time.Hour, "temporal constraint δ_t")
		top         = flag.Int("top", 20, "patterns to print (mine)")
		out         = flag.String("out", "semantic_trajectories.json", "output file (recognize)")
		saveDiagram = flag.String("save-diagram", "", "write the built City Semantic Diagram to this file")
		loadDiagram = flag.String("load-diagram", "", "reuse a diagram previously written with -save-diagram")
		traceFlag   = flag.Bool("trace", false, "print the per-stage telemetry report to stderr")
		debugAddr   = flag.String("debug-addr", "", "serve pprof, expvar and /debug/trace on this address (e.g. localhost:6060)")
		workers     = flag.Int("workers", 0, "worker budget for parallel pipeline stages (0 = all cores, 1 = sequential)")
		indexKind   = flag.String("index", "grid", "spatial index backend (grid, kdtree, rtree)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: csdminer [flags] diagram|recognize|mine")
		os.Exit(2)
	}

	var tr *obs.Trace
	if *traceFlag || *debugAddr != "" {
		tr = obs.New()
	}
	if *debugAddr != "" {
		serveDebug(*debugAddr, tr)
	}

	cfg := core.DefaultConfig()
	if *workers != 0 {
		cfg.Workers = *workers
	}
	kind, err := index.ParseKind(*indexKind)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Index = kind

	pois, journeys := loadInputs(*poiPath, *journeyPath)
	pipe := core.NewPipeline(pois, journeys, cfg)
	pipe.SetTrace(tr)
	if *loadDiagram != "" {
		f, err := os.Open(*loadDiagram)
		if err != nil {
			log.Fatal(err)
		}
		d, err := csd.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		pipe.UseDiagram(d)
		progress("loaded diagram with %d units from %s", len(d.Units), *loadDiagram)
	}

	switch cmd := flag.Arg(0); cmd {
	case "diagram":
		runDiagram(pipe)
		if *saveDiagram != "" {
			f, err := os.Create(*saveDiagram)
			if err != nil {
				log.Fatal(err)
			}
			if err := pipe.Diagram().Write(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			progress("diagram written to %s", *saveDiagram)
		}
	case "recognize":
		runRecognize(pipe, *out)
	case "mine":
		params := pattern.DefaultParams()
		params.Sigma = *sigma
		params.Rho = *rho
		params.DeltaT = *deltaT
		runMine(pipe, *approach, params, *top)
	default:
		log.Fatalf("unknown subcommand %q", cmd)
	}

	if *traceFlag {
		fmt.Fprintln(os.Stderr, "--- stage report ---")
		tr.WriteText(os.Stderr)
	}
}

// serveDebug starts the live-inspection HTTP server in the background:
// net/http/pprof and expvar register themselves on the default mux,
// the trace's counters and gauges are published under the "csdm"
// expvar, and /debug/trace returns the full span tree as JSON.
func serveDebug(addr string, tr *obs.Trace) {
	expvar.Publish("csdm", expvar.Func(func() any {
		return map[string]any{
			"counters": tr.Counters(),
			"gauges":   tr.Gauges(),
		}
	}))
	http.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr.Snapshot())
	})
	progress("debug server listening on http://%s/debug/pprof/ (also /debug/vars, /debug/trace)", addr)
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("debug server: %v", err)
		}
	}()
}

func loadInputs(poiPath, journeyPath string) ([]poi.POI, []trajectory.Journey) {
	pf, err := os.Open(poiPath)
	if err != nil {
		log.Fatal(err)
	}
	defer pf.Close()
	pois, err := poi.ReadCSV(pf)
	if err != nil {
		log.Fatal(err)
	}
	jf, err := os.Open(journeyPath)
	if err != nil {
		log.Fatal(err)
	}
	defer jf.Close()
	journeys, err := trajectory.ReadJourneysCSV(jf)
	if err != nil {
		log.Fatal(err)
	}
	progress("loaded %d POIs, %d journeys", len(pois), len(journeys))
	return pois, journeys
}

func runDiagram(pipe *core.Pipeline) {
	t0 := time.Now()
	d := pipe.Diagram()
	progress("City Semantic Diagram built in %.1fs", time.Since(t0).Seconds())
	fmt.Printf("units: %d, POI coverage: %.1f%%, mean purity: %.3f\n",
		len(d.Units), d.Coverage()*100, d.MeanUnitPurity())
	// Largest units.
	units := make([]int, 0, len(d.Units))
	for i := range d.Units {
		units = append(units, i)
	}
	sort.Slice(units, func(a, b int) bool {
		return len(d.Units[units[a]].Members) > len(d.Units[units[b]].Members)
	})
	fmt.Println("largest units:")
	for i := 0; i < 10 && i < len(units); i++ {
		u := d.Units[units[i]]
		fmt.Printf("  unit %4d: %4d POIs at %s  %s\n", u.ID, len(u.Members), u.Center, u.Semantics)
	}
}

func runRecognize(pipe *core.Pipeline, out string) {
	t0 := time.Now()
	db := pipe.Database(core.RecCSD)
	annotated, total := 0, 0
	for _, st := range db {
		for _, sp := range st.Stays {
			total++
			if !sp.S.IsEmpty() {
				annotated++
			}
		}
	}
	progress("recognized %d trajectories (%d/%d stays annotated) in %.1fs",
		len(db), annotated, total, time.Since(t0).Seconds())
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trajectory.WriteSemanticJSON(f, db); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	progress("wrote %s", out)
}

func runMine(pipe *core.Pipeline, approach string, params pattern.Params, top int) {
	var chosen *core.Approach
	for _, a := range core.Approaches() {
		if a.String() == approach {
			a := a
			chosen = &a
			break
		}
	}
	if chosen == nil {
		log.Fatalf("unknown approach %q", approach)
	}
	t0 := time.Now()
	ps := pipe.Mine(*chosen, params)
	s := metrics.Summarize(ps)
	progress("%s mined %d patterns in %.1fs (σ=%d, ρ=%g, δt=%s)",
		approach, len(ps), time.Since(t0).Seconds(), params.Sigma, params.Rho, params.DeltaT)
	fmt.Printf("approach=%s patterns=%d coverage=%d sparsity=%.1f consistency=%.3f\n",
		approach, len(ps), s.Coverage, s.MeanSparsity, s.MeanConsistency)

	sort.Slice(ps, func(a, b int) bool { return ps[a].Support > ps[b].Support })
	if top > len(ps) {
		top = len(ps)
	}
	for i := 0; i < top; i++ {
		p := ps[i]
		fmt.Printf("  #%2d support=%4d ss=%5.1f sc=%.3f  ", i+1, p.Support,
			metrics.SpatialSparsity(p), metrics.SemanticConsistency(p))
		for k, sp := range p.Stays {
			if k > 0 {
				fmt.Print(" → ")
			}
			fmt.Printf("%s@%s", sp.S, sp.P)
		}
		fmt.Println()
	}
}
