// Command csdminer runs the Pervasive Miner pipeline over a POI file
// and a taxi-journey log (the formats genworkload emits).
//
// Usage:
//
//	csdminer -pois pois.csv -journeys journeys.csv <subcommand> [flags]
//
// Subcommands:
//
//	diagram    build the City Semantic Diagram and report its units
//	recognize  annotate the journeys and write semantic trajectories
//	mine       extract fine-grained patterns and report them
//	ingest     stream a journey file into the diagram as delta batches
//
// ingest is the streaming path: the base diagram is seeded from
// -journeys, then -ingest's journey file is applied in -delta-batch
// sized batches through the incremental maintainer. Every applied batch
// is bit-identical to a full rebuild over the union, persisted as its
// own generation snapshot (diagram.<gen>.csdf) in the -checkpoint
// directory (required), and published by atomically flipping the
// CURRENT pointer — which a live csdserve -watch follows. Old
// generations beyond -keep-generations are pruned. stdout carries one
// machine-parseable line per applied batch.
//
// Progress and timing messages go to stderr; stdout carries only the
// machine-parseable results. -workers bounds the parallelism of every
// pipeline stage (1 = sequential; results are identical either way)
// and -index selects the spatial-index backend (grid, kdtree, rtree).
// -trace prints the per-stage telemetry report to stderr after the
// run; -debug-addr serves net/http/pprof, expvar (the live counters
// under "csdm"), /debug/trace (the span tree as JSON), /debug/stages
// (the stage graph with each artifact's build origin) and /metrics
// (the process metrics registry in Prometheus text format) for
// inspecting a long run in flight — see internal/obs/obshttp.
// -metrics-out writes a final Prometheus-format metrics dump to a
// file after the run; -linger keeps the debug server alive after the
// run so a scraper can collect the final state.
//
// Robustness flags: -lenient skips malformed input rows (bounded by
// -max-bad-rows) instead of failing the load; -checkpoint persists
// each completed stage to a directory so an interrupted run resumes
// past finished work; -stage-timeout bounds every pipeline stage with
// its own deadline. The exit code classifies failures: 2 for usage
// errors, 3 for input errors, 4 for pipeline failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"csdm/internal/ckpt"
	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/load"
	"csdm/internal/metrics"
	"csdm/internal/obs"
	"csdm/internal/obs/obshttp"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/shard"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// The exit codes callers and scripts can branch on.
const (
	exitUsage    = 2 // bad flags, unknown subcommand or approach
	exitInput    = 3 // unreadable or malformed input data
	exitPipeline = 4 // a pipeline stage failed
)

// progress reports loading/timing status on stderr, keeping stdout
// machine-parseable.
func progress(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// die reports err and exits with the given classification code.
func die(code int, err error) {
	log.Print(err)
	os.Exit(code)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("csdminer: ")
	var (
		poiPath     = flag.String("pois", "pois.csv", "POI CSV file")
		journeyPath = flag.String("journeys", "journeys.csv", "journey CSV file")
		approach    = flag.String("approach", "CSD-PM", "mining approach (CSD-PM, ROI-PM, CSD-Splitter, ROI-Splitter, CSD-SDBSCAN, ROI-SDBSCAN)")
		sigma       = flag.Int("sigma", 50, "support threshold σ")
		rho         = flag.Float64("rho", 0.002, "density threshold ρ (points/m²)")
		deltaT      = flag.Duration("deltat", time.Hour, "temporal constraint δ_t")
		top         = flag.Int("top", 20, "patterns to print (mine)")
		out         = flag.String("out", "semantic_trajectories.json", "output file (recognize)")
		saveDiagram = flag.String("save-diagram", "", "write the built City Semantic Diagram to this file")
		savePattern = flag.String("save-patterns", "", "write the mined pattern set to this file (mine; the format csdserve -patterns serves)")
		loadDiagram = flag.String("load-diagram", "", "reuse a diagram previously written with -save-diagram")
		traceFlag   = flag.Bool("trace", false, "print the per-stage telemetry report to stderr")
		debugAddr   = flag.String("debug-addr", "", "serve pprof, expvar and /debug/trace on this address (e.g. localhost:6060)")
		workers     = flag.Int("workers", 0, "worker budget for parallel pipeline stages (0 = all cores, 1 = sequential)")
		indexKind   = flag.String("index", "grid", "spatial index backend (grid, kdtree, rtree)")
		lenient     = flag.Bool("lenient", false, "skip malformed input rows instead of failing the load")
		maxBadRows  = flag.Int("max-bad-rows", 0, "with -lenient, fail after skipping this many rows per file (0 = unlimited)")
		checkpoint  = flag.String("checkpoint", "", "persist completed stages to this directory and resume from it")
		stageTO     = flag.Duration("stage-timeout", 0, "per-stage deadline (0 = none)")
		degraded    = flag.Bool("degraded-fallback", false, "fall back to ROI recognition when the CSD build fails")
		faultSpec   = flag.String("fault", "", "fault-injection spec site:kind:trigger[,...] (testing only)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for probabilistic fault-injection rules (testing only)")
		metricsOut  = flag.String("metrics-out", "", "write the final Prometheus-format metrics dump to this file")
		linger      = flag.Duration("linger", 0, "with -debug-addr, keep the process (and its debug server) alive this long after the run")
		ingestPath  = flag.String("ingest", "", "journey CSV to stream into the diagram as deltas (ingest)")
		deltaBatch  = flag.Int("delta-batch", 500, "journeys per delta batch (ingest)")
		keepGens    = flag.Int("keep-generations", 0, "prune generation snapshots beyond the newest N (0 = keep all; ingest)")
		shardSpec   = flag.String("shards", "", "build the diagram geo-sharded as RxC tiles (e.g. 3x3): per-tile popularity over halo-loaded stays, bit-identical to the monolithic build")
		shardWk     = flag.Int("shard-workers", 0, "with -shards, shard fan-out bound (0 = all cores); peak resident stays ≈ shard-workers × largest halo load")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: csdminer [flags] diagram|recognize|mine|ingest")
		os.Exit(exitUsage)
	}
	cmd := flag.Arg(0)

	if in, err := fault.Parse(*faultSpec, *faultSeed); err != nil {
		die(exitUsage, err)
	} else if in != nil {
		fault.Activate(in)
		progress("fault injection active: %s (seed %d)", *faultSpec, *faultSeed)
	}

	// Telemetry wiring. The per-run Trace exists whenever any telemetry
	// consumer does; the process-lifetime Registry exists whenever a
	// scrape surface does (-debug-addr) or a final dump was requested
	// (-metrics-out). The trace mirrors onto the registry, and the
	// execution, index and fault layers hook in directly, so /metrics
	// carries the whole pipeline: stage durations, task latencies,
	// sampled index queries, checkpoint/fault/load counters, and the
	// runtime sampler's process-health gauges.
	var tr *obs.Trace
	var reg *obs.Registry
	if *traceFlag || *debugAddr != "" || *metricsOut != "" {
		tr = obs.New()
	}
	if *debugAddr != "" || *metricsOut != "" {
		reg = obs.NewRegistry()
		tr.Mirror(reg)
		exec.SetMetrics(reg)
		index.SetMetrics(reg, 0)
		fault.SetMetrics(reg)
		stopSampler := obs.StartRuntimeSampler(reg, time.Second)
		defer stopSampler()
	}
	// stagesPipe feeds /debug/stages once the pipeline exists; the
	// debug server starts before input loading so a hung load is
	// already inspectable.
	var stagesPipe atomic.Pointer[core.Pipeline]
	if *debugAddr != "" {
		obshttp.Serve(*debugAddr, obshttp.Options{
			Trace:    tr,
			Registry: reg,
			Stages: func() []stage.Info {
				if p := stagesPipe.Load(); p != nil {
					return p.Stages()
				}
				return nil
			},
			Logf: progress,
		})
	}

	cfg := core.DefaultConfig()
	if *workers != 0 {
		cfg.Workers = *workers
	}
	kind, err := index.ParseKind(*indexKind)
	if err != nil {
		die(exitUsage, err)
	}
	cfg.Index = kind
	cfg.StageTimeout = *stageTO
	cfg.DegradedFallback = *degraded

	var mgr *ckpt.Manager
	if *checkpoint != "" {
		if mgr, err = ckpt.New(*checkpoint, tr); err != nil {
			die(exitPipeline, err)
		}
	}

	// Sharded mode: decide up front whether this run builds the diagram
	// geo-sharded, because the `diagram` subcommand can then stream the
	// journey file straight into an out-of-core stay store and never
	// materialize the journeys at all.
	shardRows, shardCols := 0, 0
	if *shardSpec != "" {
		if shardRows, shardCols, err = shard.ParseTiling(*shardSpec); err != nil {
			die(exitUsage, err)
		}
		if cmd == "ingest" {
			die(exitUsage, fmt.Errorf("-shards does not apply to ingest (the incremental maintainer owns its own build)"))
		}
		if *loadDiagram != "" {
			die(exitUsage, fmt.Errorf("-shards and -load-diagram are mutually exclusive"))
		}
	}
	shardCSD := *shardSpec != ""
	if cmd == "mine" && shardCSD {
		chosen, err := core.ApproachByName(*approach)
		if err != nil {
			die(exitUsage, err)
		}
		// ROI-recognizer approaches never touch the diagram; don't
		// build one shardedly just to ignore it.
		shardCSD = chosen.Recognizer == core.RecCSD
	}

	opts := load.Options{Lenient: *lenient, MaxBadRows: *maxBadRows, Trace: tr}
	var pois []poi.POI
	var journeys []trajectory.Journey
	var staySrc shard.StaySource
	if shardCSD && cmd == "diagram" {
		// Out-of-core path: POIs in memory (they parameterize the
		// plan), stays spilled to a columnar store that shards load by
		// halo rectangle.
		var store *shard.StayStore
		var cleanup func()
		pois, store, cleanup, err = loadShardInputs(*poiPath, *journeyPath, opts)
		if err != nil {
			die(exitInput, err)
		}
		defer cleanup()
		staySrc = store
	} else {
		pois, journeys, err = loadInputs(*poiPath, *journeyPath, opts)
		if err != nil {
			die(exitInput, err)
		}
		if shardCSD {
			// recognize/mine need the journeys resident anyway; the
			// sharded build reads their stays in place.
			staySrc = shard.MemStays(core.Stays(journeys))
		}
	}
	pipe := core.NewPipeline(pois, journeys, cfg)
	pipe.SetTrace(tr)
	stagesPipe.Store(pipe)
	if *loadDiagram != "" {
		d, err := csd.ReadFile(*loadDiagram)
		if err != nil {
			die(exitInput, err)
		}
		pipe.UseDiagram(d)
		progress("loaded diagram with %d units from %s", len(d.Units), *loadDiagram)
	}
	if shardCSD {
		d, err := buildSharded(tr, cfg, pois, staySrc, shardRows, shardCols, *shardWk, mgr)
		if err != nil {
			die(exitPipeline, err)
		}
		pipe.UseDiagram(d)
	}

	switch cmd {
	case "diagram":
		if err := prepare(pipe, mgr, true); err != nil {
			die(exitPipeline, err)
		}
		if err := runDiagram(pipe, *saveDiagram); err != nil {
			die(exitPipeline, err)
		}
	case "recognize":
		if err := prepare(pipe, mgr, true, core.RecCSD); err != nil {
			die(exitPipeline, err)
		}
		if err := runRecognize(pipe, *out); err != nil {
			die(exitPipeline, err)
		}
	case "mine":
		chosen, err := core.ApproachByName(*approach)
		if err != nil {
			die(exitUsage, err)
		}
		params := pattern.DefaultParams()
		params.Sigma = *sigma
		params.Rho = *rho
		params.DeltaT = *deltaT
		if err := prepare(pipe, mgr, chosen.Recognizer == core.RecCSD, chosen.Recognizer); err != nil {
			die(exitPipeline, err)
		}
		if err := runMine(pipe, chosen, params, *top, *savePattern); err != nil {
			die(exitPipeline, err)
		}
	case "ingest":
		if *ingestPath == "" {
			die(exitUsage, fmt.Errorf("ingest requires -ingest <stream.csv>"))
		}
		if mgr == nil {
			die(exitUsage, fmt.Errorf("ingest requires -checkpoint (generation snapshots live there)"))
		}
		if *deltaBatch < 1 {
			die(exitUsage, fmt.Errorf("-delta-batch must be at least 1, got %d", *deltaBatch))
		}
		if err := runIngest(pipe, mgr, *ingestPath, *deltaBatch, *keepGens, opts); err != nil {
			die(exitPipeline, err)
		}
	default:
		die(exitUsage, fmt.Errorf("unknown subcommand %q", cmd))
	}

	if *traceFlag {
		fmt.Fprintln(os.Stderr, "--- stage report ---")
		tr.WriteText(os.Stderr)
	}
	if *metricsOut != "" {
		if err := ckpt.WriteAtomic(*metricsOut, reg.WritePrometheus); err != nil {
			die(exitPipeline, fmt.Errorf("write metrics %s: %w", *metricsOut, err))
		}
		progress("metrics written to %s", *metricsOut)
	}
	if *debugAddr != "" && *linger > 0 {
		progress("run complete; debug server lingering for %s (SIGINT/SIGTERM exits now)", *linger)
		// Signal-aware wait: a plain time.Sleep would make the process
		// uninterruptible for the whole linger window — Ctrl-C or a
		// supervisor's SIGTERM must exit promptly once the run's work
		// (including -metrics-out) is already on disk.
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		select {
		case <-time.After(*linger):
		case sig := <-sigs:
			progress("%s received during linger; exiting", sig)
		}
	}
}

// prepare runs the shared stages the subcommand needs eagerly under
// the checkpoint policy. The sequencing itself — try the checkpoint
// directory, rebuild on a miss or a corrupt artifact, persist after
// building — lives in the stage engine's checkpoint middleware now;
// this function only attaches the store, forces the stages the
// subcommand needs, and reports each artifact's origin. With no
// manager the stages stay lazy and nothing is persisted.
func prepare(pipe *core.Pipeline, m *ckpt.Manager, needDiagram bool, kinds ...core.RecognizerKind) error {
	if m == nil {
		return nil
	}
	pipe.SetCheckpoints(m)
	ctx := context.Background()
	for _, k := range kinds {
		if k == core.RecCSD {
			needDiagram = true
		}
	}
	if needDiagram {
		d, err := pipe.DiagramCtx(ctx)
		if err != nil {
			return fmt.Errorf("build diagram: %w", err)
		}
		switch pipe.DiagramOrigin() {
		case stage.OriginResumed:
			progress("resumed diagram (%d units) from %s", len(d.Units), m.Dir())
		case stage.OriginBuilt:
			progress("checkpointed diagram to %s", m.Dir())
		}
	}
	for _, k := range kinds {
		name := pipe.DatabaseArtifact(k)
		db, err := pipe.DatabaseCtx(ctx, k)
		if err != nil {
			return fmt.Errorf("annotate %s: %w", name, err)
		}
		switch pipe.DatabaseOrigin(k) {
		case stage.OriginResumed:
			progress("resumed %s (%d trajectories) from %s", name, len(db), m.Dir())
		case stage.OriginBuilt:
			progress("checkpointed %s to %s", name, m.Dir())
		}
	}
	return nil
}

// loadInputs reads both input files under the given failure policy,
// wrapping every error with the file it came from. In lenient mode the
// per-file skip statistics are reported on stderr.
func loadInputs(poiPath, journeyPath string, opts load.Options) ([]poi.POI, []trajectory.Journey, error) {
	pf, err := os.Open(poiPath)
	if err != nil {
		return nil, nil, fmt.Errorf("load pois: %w", err)
	}
	defer pf.Close()
	pois, pstats, err := poi.ReadCSVOptions(pf, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("load pois %s: %w", poiPath, err)
	}
	jf, err := os.Open(journeyPath)
	if err != nil {
		return nil, nil, fmt.Errorf("load journeys: %w", err)
	}
	defer jf.Close()
	journeys, jstats, err := trajectory.ReadJourneysCSVOptions(jf, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("load journeys %s: %w", journeyPath, err)
	}
	if opts.Lenient {
		if n := pstats.TotalSkipped(); n > 0 {
			progress("pois: skipped %d bad rows (%s)", n, pstats)
		}
		if n := jstats.TotalSkipped(); n > 0 {
			progress("journeys: skipped %d bad rows (%s)", n, jstats)
		}
	}
	progress("loaded %d POIs, %d journeys", len(pois), len(journeys))
	return pois, journeys, nil
}

// loadShardInputs is the out-of-core input path for sharded diagram
// builds: POIs load normally, but the journey file is streamed —
// never materialized — into a temporary columnar stay store whose
// chunks shards later load by halo rectangle. The returned cleanup
// closes and removes the spill file.
func loadShardInputs(poiPath, journeyPath string, opts load.Options) ([]poi.POI, *shard.StayStore, func(), error) {
	pf, err := os.Open(poiPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("load pois: %w", err)
	}
	defer pf.Close()
	pois, pstats, err := poi.ReadCSVOptions(pf, opts)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("load pois %s: %w", poiPath, err)
	}
	if opts.Lenient {
		if n := pstats.TotalSkipped(); n > 0 {
			progress("pois: skipped %d bad rows (%s)", n, pstats)
		}
	}
	tmp, err := os.CreateTemp("", "csdm-stays-*.csdstay")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("spill stays: %w", err)
	}
	spill := tmp.Name()
	tmp.Close()
	w, err := shard.CreateStayStore(spill, 0)
	if err != nil {
		os.Remove(spill)
		return nil, nil, nil, err
	}
	jf, err := os.Open(journeyPath)
	if err != nil {
		os.Remove(spill)
		return nil, nil, nil, fmt.Errorf("load journeys: %w", err)
	}
	defer jf.Close()
	jstats, err := trajectory.StreamJourneysCSV(jf, opts, func(j trajectory.Journey) error {
		// Pickup then dropoff per journey — core.Stays' canonical
		// global stay-id order, which the sharded build's exactness
		// contract depends on.
		if err := w.Add(j.Pickup); err != nil {
			return err
		}
		return w.Add(j.Dropoff)
	})
	if err != nil {
		os.Remove(spill)
		return nil, nil, nil, fmt.Errorf("load journeys %s: %w", journeyPath, err)
	}
	if err := w.Close(); err != nil {
		os.Remove(spill)
		return nil, nil, nil, fmt.Errorf("spill stays: %w", err)
	}
	store, err := shard.OpenStayStore(spill)
	if err != nil {
		os.Remove(spill)
		return nil, nil, nil, err
	}
	if opts.Lenient {
		if n := jstats.TotalSkipped(); n > 0 {
			progress("journeys: skipped %d bad rows (%s)", n, jstats)
		}
	}
	progress("loaded %d POIs; spilled %d stays (%d journeys) to %s", len(pois), store.Len(), jstats.Rows, spill)
	return pois, store, func() { store.Close(); os.Remove(spill) }, nil
}

// buildSharded runs the geo-sharded CSD construction and reports its
// out-of-core statistics. The diagram is bit-identical to the
// monolithic build for any tiling, worker count and index backend.
func buildSharded(tr *obs.Trace, cfg core.Config, pois []poi.POI, src shard.StaySource, rows, cols, workers int, mgr *ckpt.Manager) (*csd.Diagram, error) {
	t0 := time.Now()
	plan, err := shard.NewPlan(geo.BoundingRect(poi.Locations(pois)), rows, cols, cfg.CSD.R3Sigma)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	env := stage.Env{Ctx: ctx, Run: ctx, Trace: tr, Opt: cfg.ExecOptions()}
	d, st, err := shard.Build(env, pois, src, shard.Config{
		Plan: plan, Params: cfg.CSD, ShardWorkers: workers, Ckpt: mgr,
	})
	if err != nil {
		return nil, fmt.Errorf("sharded build: %w", err)
	}
	progress("sharded diagram: %dx%d tiles (%d active, %d resumed), stays total=%d loaded=%d max-resident=%d, built in %.1fs",
		rows, cols, st.ActiveShards, st.ResumedShards, st.TotalStays, st.LoadedStays, st.MaxShardStays, time.Since(t0).Seconds())
	return d, nil
}

func runDiagram(pipe *core.Pipeline, savePath string) error {
	t0 := time.Now()
	d, err := pipe.DiagramCtx(context.Background())
	if err != nil {
		return fmt.Errorf("build diagram: %w", err)
	}
	progress("City Semantic Diagram built in %.1fs", time.Since(t0).Seconds())
	fmt.Printf("units: %d, POI coverage: %.1f%%, mean purity: %.3f\n",
		len(d.Units), d.Coverage()*100, d.MeanUnitPurity())
	// Largest units.
	units := make([]int, 0, len(d.Units))
	for i := range d.Units {
		units = append(units, i)
	}
	sort.Slice(units, func(a, b int) bool {
		return len(d.Units[units[a]].Members) > len(d.Units[units[b]].Members)
	})
	fmt.Println("largest units:")
	for i := 0; i < 10 && i < len(units); i++ {
		u := d.Units[units[i]]
		fmt.Printf("  unit %4d: %4d POIs at %s  %s\n", u.ID, len(u.Members), u.Center, u.Semantics)
	}
	if savePath != "" {
		if err := ckpt.WriteAtomic(savePath, d.Write); err != nil {
			return fmt.Errorf("save diagram %s: %w", savePath, err)
		}
		progress("diagram written to %s", savePath)
	}
	return nil
}

func runRecognize(pipe *core.Pipeline, out string) error {
	t0 := time.Now()
	db, err := pipe.DatabaseCtx(context.Background(), core.RecCSD)
	if err != nil {
		return fmt.Errorf("annotate journeys: %w", err)
	}
	annotated, total := 0, 0
	for _, st := range db {
		for _, sp := range st.Stays {
			total++
			if !sp.S.IsEmpty() {
				annotated++
			}
		}
	}
	progress("recognized %d trajectories (%d/%d stays annotated) in %.1fs",
		len(db), annotated, total, time.Since(t0).Seconds())
	if err := ckpt.WriteAtomic(out, func(w io.Writer) error {
		return trajectory.WriteSemanticJSON(w, db)
	}); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	progress("wrote %s", out)
	return nil
}

func runMine(pipe *core.Pipeline, a core.Approach, params pattern.Params, top int, savePatterns string) error {
	t0 := time.Now()
	ps, err := pipe.MineCtx(context.Background(), a, params)
	if err != nil {
		return fmt.Errorf("mine %s: %w", a, err)
	}
	s := metrics.Summarize(ps)
	progress("%s mined %d patterns in %.1fs (σ=%d, ρ=%g, δt=%s)",
		a, len(ps), time.Since(t0).Seconds(), params.Sigma, params.Rho, params.DeltaT)
	fmt.Printf("approach=%s patterns=%d coverage=%d sparsity=%.1f consistency=%.3f\n",
		a, len(ps), s.Coverage, s.MeanSparsity, s.MeanConsistency)
	if savePatterns != "" {
		if err := ckpt.WriteAtomic(savePatterns, func(w io.Writer) error {
			return pattern.WriteJSON(w, ps)
		}); err != nil {
			return fmt.Errorf("save patterns %s: %w", savePatterns, err)
		}
		progress("patterns written to %s", savePatterns)
	}

	sort.Slice(ps, func(x, y int) bool { return ps[x].Support > ps[y].Support })
	if top > len(ps) {
		top = len(ps)
	}
	for i := 0; i < top; i++ {
		p := ps[i]
		fmt.Printf("  #%2d support=%4d ss=%5.1f sc=%.3f  ", i+1, p.Support,
			metrics.SpatialSparsity(p), metrics.SemanticConsistency(p))
		for k, sp := range p.Stays {
			if k > 0 {
				fmt.Print(" → ")
			}
			fmt.Printf("%s@%s", sp.S, sp.P)
		}
		fmt.Println()
	}
	return nil
}
