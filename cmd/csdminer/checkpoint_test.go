package main

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"csdm/internal/ckpt"
	"csdm/internal/core"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/synth"
)

// checkpointPipeline regenerates the identical seeded workload each
// call, so successive pipelines differ only in what they resume.
func checkpointPipeline(t *testing.T, tr *obs.Trace) *core.Pipeline {
	t.Helper()
	scfg := synth.DefaultConfig()
	scfg.Seed = 21
	scfg.NumPOIs = 1000
	scfg.NumPassengers = 100
	scfg.Days = 3
	city := synth.NewCity(scfg)
	w := city.GenerateWorkload()
	p := core.NewPipeline(city.POIs, w.Journeys, core.DefaultConfig())
	p.SetTrace(tr)
	return p
}

func minePatterns(t *testing.T, p *core.Pipeline) []byte {
	t.Helper()
	params := pattern.DefaultParams()
	params.Sigma = 25
	ps, err := p.MineCtx(context.Background(), core.CSDPM, params)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(ps)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCheckpointResumeAfterInterruption is the checkpoint acceptance
// check: a run killed between stages leaves a directory from which the
// rerun skips every completed stage — proven by the trace counters: no
// csd.build work, ckpt.resume.* bumped — and still mines byte-identical
// patterns to an uninterrupted run.
func TestCheckpointResumeAfterInterruption(t *testing.T) {
	dir := t.TempDir()

	// Reference: an uninterrupted, uncheckpointed run.
	want := minePatterns(t, checkpointPipeline(t, nil))

	// Run 1 is "interrupted": the diagram stage completes and
	// checkpoints, then the process dies before annotation starts —
	// prepare is simply never called for the database stages.
	tr1 := obs.New()
	m1, err := ckpt.New(dir, tr1)
	if err != nil {
		t.Fatal(err)
	}
	if err := prepare(checkpointPipeline(t, tr1), m1, true); err != nil {
		t.Fatal(err)
	}
	if got := tr1.Counter("ckpt.saved.diagram"); got != 1 {
		t.Fatalf("interrupted run saved.diagram = %d, want 1", got)
	}

	// Run 2 resumes: the diagram must load from the checkpoint (no
	// construction work at all), the database builds and checkpoints,
	// and mining matches the reference byte for byte.
	tr2 := obs.New()
	m2, err := ckpt.New(dir, tr2)
	if err != nil {
		t.Fatal(err)
	}
	p2 := checkpointPipeline(t, tr2)
	if err := prepare(p2, m2, true, core.RecCSD); err != nil {
		t.Fatal(err)
	}
	if got := tr2.Counter("ckpt.resume.diagram"); got != 1 {
		t.Errorf("resumed run resume.diagram = %d, want 1", got)
	}
	if got := tr2.Counter("csd.units.final"); got != 0 {
		t.Errorf("resumed run rebuilt the diagram (csd.units.final = %d)", got)
	}
	if got := tr2.Counter("ckpt.saved.db-csd"); got != 1 {
		t.Errorf("resumed run saved.db-csd = %d, want 1", got)
	}
	if got := minePatterns(t, p2); !bytes.Equal(want, got) {
		t.Error("patterns after diagram resume differ from the uninterrupted run")
	}

	// Run 3 resumes everything: both stages skip, output unchanged.
	tr3 := obs.New()
	m3, err := ckpt.New(dir, tr3)
	if err != nil {
		t.Fatal(err)
	}
	p3 := checkpointPipeline(t, tr3)
	if err := prepare(p3, m3, true, core.RecCSD); err != nil {
		t.Fatal(err)
	}
	if tr3.Counter("ckpt.resume.diagram") != 1 || tr3.Counter("ckpt.resume.db-csd") != 1 {
		t.Errorf("full resume counters = %d/%d, want 1/1",
			tr3.Counter("ckpt.resume.diagram"), tr3.Counter("ckpt.resume.db-csd"))
	}
	if got := tr3.Counter("csd.units.final"); got != 0 {
		t.Errorf("full resume rebuilt the diagram (csd.units.final = %d)", got)
	}
	if got := minePatterns(t, p3); !bytes.Equal(want, got) {
		t.Error("patterns after full resume differ from the uninterrupted run")
	}
}
