package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"csdm/internal/ckpt"
	"csdm/internal/core"
	"csdm/internal/geo"
	"csdm/internal/load"
	"csdm/internal/trajectory"
)

// runIngest streams a journey file into the diagram as delta batches.
// The maintainer seeds from the pipeline's base journeys (generation
// 1, bit-identical to a one-shot build), each batch of batchJourneys
// stream journeys applies as one delta, and every resulting generation
// is persisted as diagram.<gen>.csdf with the CURRENT pointer flipped
// atomically after the snapshot is safely on disk — so a concurrent
// csdserve -watch (or a crash-restarted one) only ever loads complete
// generations. One machine-parseable line per applied batch goes to
// stdout.
func runIngest(pipe *core.Pipeline, mgr *ckpt.Manager, streamPath string, batchJourneys, keepGens int, opts load.Options) error {
	f, err := os.Open(streamPath)
	if err != nil {
		return fmt.Errorf("open stream: %w", err)
	}
	stream, stats, err := trajectory.ReadJourneysCSVOptions(f, opts)
	f.Close()
	if err != nil {
		return fmt.Errorf("load stream %s: %w", streamPath, err)
	}
	if opts.Lenient {
		if n := stats.TotalSkipped(); n > 0 {
			progress("stream: skipped %d bad rows (%s)", n, stats)
		}
	}
	progress("streaming %d journeys in batches of %d", len(stream), batchJourneys)

	ctx := context.Background()
	t0 := time.Now()
	m, err := pipe.MaintainerCtx(ctx)
	if err != nil {
		return fmt.Errorf("seed maintainer: %w", err)
	}
	base := m.Diagram()
	// A checkpoint directory with existing generation snapshots means a
	// previous stream already published there: continue its numbering
	// rather than restarting at 1 and overwriting published lineage
	// (callers pass the union of everything already ingested as
	// -journeys, so the content picks up where the last run left off).
	if gens, gerr := ckpt.Generations(mgr.Dir()); gerr == nil && len(gens) > 0 && gens[len(gens)-1] >= base.Generation {
		next := gens[len(gens)-1] + 1
		progress("continuing lineage: newest published generation is %d, base becomes %d", gens[len(gens)-1], next)
		m.SetGeneration(next)
	}
	if err := mgr.SaveGenerationDiagram(base); err != nil {
		return fmt.Errorf("persist base generation: %w", err)
	}
	progress("base diagram (generation %d, %d units) seeded in %.1fs",
		base.Generation, len(base.Units), time.Since(t0).Seconds())
	fmt.Printf("generation=%d stays=%d units=%d batch_stays=0 affected_pois=0 dirty_components=0 dirty_units=0 reused_units=%d seconds=%.3f\n",
		base.Generation, m.StayCount(), len(base.Units), len(base.Units), time.Since(t0).Seconds())

	for lo := 0; lo < len(stream); lo += batchJourneys {
		hi := lo + batchJourneys
		if hi > len(stream) {
			hi = len(stream)
		}
		batch := make([]geo.Point, 0, 2*(hi-lo))
		for _, j := range stream[lo:hi] {
			batch = append(batch, j.Pickup, j.Dropoff)
		}
		bt := time.Now()
		d, st, err := pipe.IngestBatch(ctx, batch)
		if err != nil {
			return fmt.Errorf("apply batch at journey %d: %w", lo, err)
		}
		if err := mgr.SaveGenerationDiagram(d); err != nil {
			return fmt.Errorf("persist generation %d: %w", d.Generation, err)
		}
		if keepGens > 0 {
			if _, err := mgr.PruneGenerations(keepGens); err != nil {
				return fmt.Errorf("prune generations: %w", err)
			}
		}
		fmt.Printf("generation=%d stays=%d units=%d batch_stays=%d affected_pois=%d dirty_components=%d dirty_units=%d reused_units=%d seconds=%.3f\n",
			st.Generation, m.StayCount(), len(d.Units), st.BatchStays,
			st.AffectedPOIs, st.DirtyComponents, st.DirtyUnits, st.ReusedUnits,
			time.Since(bt).Seconds())
	}
	path, err := ckpt.ResolveCurrent(mgr.Dir())
	if err != nil {
		return fmt.Errorf("verify CURRENT: %w", err)
	}
	progress("stream complete: generation %d published at %s", m.Generation(), path)
	return nil
}
