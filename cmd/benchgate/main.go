// Command benchgate compares two BenchmarkMine JSON reports (written by
// TestEmitBenchMineJSON with BENCH_MINE_JSON set) and fails when the
// candidate regresses: a slower ns_per_op beyond the tolerance, more
// allocs_per_op beyond its own tolerance, any change in the
// deterministic pattern count, or — with -min-efficiency set — a
// multi-worker line whose speedup over the candidate's own workers-1
// line falls below the floor.
//
// Usage:
//
//	benchgate -baseline BENCH_7.json -candidate bench_new.json \
//	    [-tolerance 0.10] [-alloc-tolerance 0.10] [-min-efficiency 2.0]
//
// Every worker count the candidate reports must exist in the baseline:
// a missing baseline line is an error, not a skip — a silently skipped
// line is a gate that never gates. Pin the candidate's curve to the
// baseline's with $BENCH_MINE_WORKERS when measuring on machines whose
// core count differs from the baseline machine's. Baseline lines absent
// from the candidate are reported but don't fail (a baseline refreshed
// on a bigger machine must not brick smaller ones).
//
// The efficiency floor is recomputed from the candidate report itself —
// ns(workers-1) / ns(workers-k) — never trusted from the file, and it
// is enforced only when the candidate machine had at least as many
// cores as the line's worker count (num_cpu in the report): demanding a
// 2× speedup from a 1-core container would gate on physics, not code.
// A baseline written before allocs_per_op existed carries zero there,
// which disables the allocation comparison for that line.
//
// With -delta, the inputs are BENCH_DELTA.json incrementality reports
// (written by TestEmitBenchDeltaJSON with BENCH_DELTA_JSON set):
// per-fraction full-rebuild vs delta-apply timings. The candidate fails
// when its smallest-fraction speedup — recomputed from its own ns
// lines, never read from the file — falls below -min-speedup, when any
// line's speedup regresses beyond the tolerance against the baseline's,
// or when the deterministic unit count changes. As everywhere else, a
// candidate fraction with no baseline line is a hard failure.
//
// With -shard, the inputs are BENCH_SHARD.json geo-sharding reports
// (written by TestEmitBenchShardJSON with BENCH_SHARD_JSON set):
// per-tiling sharded-build timings plus residency counters. The
// candidate fails when any tiling's unit count differs from the
// baseline's (the sharded build is bit-identical by contract, so a
// drifting unit count means the halo merge broke), when its
// max-resident stay fraction — recomputed from the candidate's own
// max_shard_stays / total_stays, never read from the file — exceeds
// -max-resident (the out-of-core promise: no shard holds the whole
// corpus), or when ns_per_op regresses beyond the tolerance. A
// candidate tiling with no baseline line is a hard failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	Workers            int     `json:"workers"`
	NsPerOp            int64   `json:"ns_per_op"`
	AllocsPerOp        int64   `json:"allocs_per_op"`
	Patterns           int     `json:"patterns"`
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
}

type report struct {
	Benchmark  string   `json:"benchmark"`
	GoMaxProcs int      `json:"go_max_procs"`
	NumCPU     int      `json:"num_cpu"`
	Results    []result `json:"results"`
}

func readReport(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// nsPerOp returns the report's ns_per_op for the given worker count,
// or zero when the line is absent.
func (r report) nsPerOp(workers int) int64 {
	for _, res := range r.Results {
		if res.Workers == workers {
			return res.NsPerOp
		}
	}
	return 0
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON")
	candidate := flag.String("candidate", "", "freshly measured JSON")
	tolerance := flag.Float64("tolerance", 0.10, "allowed ns_per_op slowdown (0.10 = 10%); in -serve mode, allowed QPS loss")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "allowed allocs_per_op growth (0.10 = 10%)")
	minEfficiency := flag.Float64("min-efficiency", 0, "minimum speedup of multi-worker lines over the candidate's workers-1 line (0 disables)")
	serveMode := flag.Bool("serve", false, "compare BENCH_SERVE.json serving reports (QPS floor, p99 ceiling) instead of mining reports")
	p99Tolerance := flag.Float64("p99-tolerance", 1.0, "with -serve, allowed p99 latency growth (1.0 = 2x the baseline)")
	deltaMode := flag.Bool("delta", false, "compare BENCH_DELTA.json incrementality reports (delta-apply speedup floor) instead of mining reports")
	minSpeedup := flag.Float64("min-speedup", 5.0, "with -delta, minimum full-rebuild/delta-apply speedup at the smallest fraction")
	shardMode := flag.Bool("shard", false, "compare BENCH_SHARD.json geo-sharding reports (residency ceiling, unit identity) instead of mining reports")
	maxResident := flag.Float64("max-resident", 0.75, "with -shard, ceiling on the candidate's max_shard_stays/total_stays fraction")
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -baseline a.json -candidate b.json [-tolerance 0.10] [-alloc-tolerance 0.10] [-min-efficiency 2.0] [-serve [-p99-tolerance 1.0]] [-delta [-min-speedup 5.0]] [-shard [-max-resident 0.75]]")
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*serveMode, *deltaMode, *shardMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "benchgate: -serve, -delta and -shard are mutually exclusive")
		os.Exit(2)
	}
	if *serveMode {
		gateServe(*baseline, *candidate, *tolerance, *p99Tolerance)
		return
	}
	if *deltaMode {
		gateDelta(*baseline, *candidate, *tolerance, *minSpeedup)
		return
	}
	if *shardMode {
		gateShard(*baseline, *candidate, *tolerance, *maxResident)
		return
	}
	base, err := readReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := readReport(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	byWorkers := make(map[int]result, len(base.Results))
	for _, r := range base.Results {
		byWorkers[r.Workers] = r
	}
	candWorkers := make(map[int]bool, len(cand.Results))
	for _, r := range cand.Results {
		candWorkers[r.Workers] = true
	}
	for _, b := range base.Results {
		if !candWorkers[b.Workers] {
			fmt.Printf("workers-%d: baseline only (candidate machine did not measure it), not gated\n", b.Workers)
		}
	}

	// The scaling curves are normalized inside each report: same
	// machine, same build, so the ratio is pure parallelism and stays
	// comparable across machines of different absolute speed.
	candBaseNs := cand.nsPerOp(1)
	baseBaseNs := base.nsPerOp(1)

	failed := false
	compared := 0
	fmt.Printf("%-10s  %-26s  %-26s  %-14s  %s\n", "line", "ns/op (base -> cand)", "allocs/op (base -> cand)", "efficiency", "status")
	for _, c := range cand.Results {
		b, ok := byWorkers[c.Workers]
		if !ok {
			// A gate that silently skips unmatched lines never gates:
			// candidate lines must have a baseline to answer to.
			fmt.Printf("workers-%d: FAIL (no baseline line; refresh the baseline or pin BENCH_MINE_WORKERS to its curve)\n", c.Workers)
			failed = true
			continue
		}
		compared++
		ratio := float64(c.NsPerOp) / float64(b.NsPerOp)
		allocRatio := 0.0
		if b.AllocsPerOp > 0 {
			allocRatio = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
		}

		// Efficiencies are recomputed from each report's own workers-1
		// line, not read: the files' parallel_efficiency fields are
		// informational only.
		candEff := 0.0
		if candBaseNs > 0 && c.NsPerOp > 0 {
			candEff = float64(candBaseNs) / float64(c.NsPerOp)
		}
		baseEff := 0.0
		if baseBaseNs > 0 && b.NsPerOp > 0 {
			baseEff = float64(baseBaseNs) / float64(b.NsPerOp)
		}
		effNote := fmt.Sprintf("%.2fx -> %.2fx", baseEff, candEff)
		if c.Workers == 1 {
			effNote = "1.00x (norm)"
		}

		status := "ok"
		switch {
		case c.Patterns != b.Patterns:
			status = fmt.Sprintf("FAIL (patterns %d -> %d: mining output is no longer identical)", b.Patterns, c.Patterns)
			failed = true
		case ratio > 1.0+*tolerance:
			status = fmt.Sprintf("FAIL (>%.0f%% slower)", *tolerance*100)
			failed = true
		case b.AllocsPerOp > 0 && allocRatio > 1.0+*allocTolerance:
			status = fmt.Sprintf("FAIL (>%.0f%% more allocations)", *allocTolerance*100)
			failed = true
		case *minEfficiency > 0 && c.Workers > 1:
			switch {
			case cand.NumCPU > 0 && cand.NumCPU < c.Workers:
				status = fmt.Sprintf("ok (efficiency floor skipped: machine has %d cores < %d workers)", cand.NumCPU, c.Workers)
			case candBaseNs == 0:
				status = "FAIL (no workers-1 line in candidate to compute efficiency against)"
				failed = true
			case candEff < *minEfficiency:
				status = fmt.Sprintf("FAIL (efficiency %.2fx < %.2fx floor)", candEff, *minEfficiency)
				failed = true
			}
		}

		allocCol := "n/a"
		if b.AllocsPerOp > 0 {
			allocCol = fmt.Sprintf("%d -> %d (%.2fx)", b.AllocsPerOp, c.AllocsPerOp, allocRatio)
		}
		fmt.Printf("%-10s  %-26s  %-26s  %-14s  %s\n",
			fmt.Sprintf("workers-%d", c.Workers),
			fmt.Sprintf("%d -> %d (%.2fx)", b.NsPerOp, c.NsPerOp, ratio),
			allocCol, effNote, status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable worker counts between reports")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// serveResult is one concurrency line of a BENCH_SERVE.json report
// (written by cmd/loadgen -bench or TestEmitBenchServeJSON).
type serveResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

type serveReport struct {
	Benchmark string        `json:"benchmark"`
	NumCPU    int           `json:"num_cpu"`
	Results   []serveResult `json:"results"`
}

// gateServe compares two serving benchmarks line-by-line on
// concurrency: the candidate fails on a QPS drop beyond qpsTol, a p99
// growth beyond p99Tol, or any errored requests (a robustness
// benchmark with errors measures the wrong thing). Like the mining
// gate, a candidate line with no baseline line is a hard failure —
// a silently skipped line is a gate that never gates.
func gateServe(baselinePath, candidatePath string, qpsTol, p99Tol float64) {
	readServe := func(path string) serveReport {
		var r serveReport
		b, err := os.ReadFile(path)
		if err == nil {
			err = json.Unmarshal(b, &r)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		return r
	}
	base := readServe(baselinePath)
	cand := readServe(candidatePath)
	byConc := make(map[int]serveResult, len(base.Results))
	for _, r := range base.Results {
		byConc[r.Concurrency] = r
	}
	failed := false
	compared := 0
	fmt.Printf("%-16s  %-24s  %-24s  %s\n", "line", "qps (base -> cand)", "p99 ms (base -> cand)", "status")
	for _, c := range cand.Results {
		b, ok := byConc[c.Concurrency]
		if !ok {
			fmt.Printf("concurrency-%d: FAIL (no baseline line)\n", c.Concurrency)
			failed = true
			continue
		}
		compared++
		status := "ok"
		switch {
		case c.Errors > 0:
			status = fmt.Sprintf("FAIL (%d errored requests)", c.Errors)
			failed = true
		case c.OK == 0:
			status = "FAIL (no served requests)"
			failed = true
		case b.QPS > 0 && c.QPS < b.QPS*(1-qpsTol):
			status = fmt.Sprintf("FAIL (QPS dropped >%.0f%%)", qpsTol*100)
			failed = true
		case b.P99Ms > 0 && c.P99Ms > b.P99Ms*(1+p99Tol):
			status = fmt.Sprintf("FAIL (p99 grew >%.0f%%)", p99Tol*100)
			failed = true
		}
		fmt.Printf("%-16s  %-24s  %-24s  %s\n",
			fmt.Sprintf("concurrency-%d", c.Concurrency),
			fmt.Sprintf("%.1f -> %.1f", b.QPS, c.QPS),
			fmt.Sprintf("%.2f -> %.2f", b.P99Ms, c.P99Ms),
			status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable concurrency lines between serve reports")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// deltaResult is one new-stay-fraction line of a BENCH_DELTA.json
// report (written by TestEmitBenchDeltaJSON).
type deltaResult struct {
	Fraction     float64 `json:"fraction"`
	BatchStays   int     `json:"batch_stays"`
	FullNsPerOp  int64   `json:"full_ns_per_op"`
	DeltaNsPerOp int64   `json:"delta_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	Units        int     `json:"units"`
}

type deltaReport struct {
	Benchmark  string        `json:"benchmark"`
	GoMaxProcs int           `json:"go_max_procs"`
	NumCPU     int           `json:"num_cpu"`
	Results    []deltaResult `json:"results"`
}

// gateDelta compares two incrementality reports line-by-line on the
// new-stay fraction. Speedups are recomputed from each report's own
// full/delta ns — within one report they come from the same machine
// and build, so the ratio is pure incrementality and stays comparable
// across machines of different absolute speed. The candidate fails
// when the smallest fraction's speedup is below minSpeedup (the
// whole-feature floor: a "delta" apply that rebuilds the world scores
// ~1×), when any line's speedup falls more than tol below the
// baseline's, or when the deterministic unit count changes. A
// candidate fraction with no baseline line is a hard failure.
func gateDelta(baselinePath, candidatePath string, tol, minSpeedup float64) {
	readDelta := func(path string) deltaReport {
		var r deltaReport
		b, err := os.ReadFile(path)
		if err == nil {
			err = json.Unmarshal(b, &r)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		return r
	}
	speedup := func(r deltaResult) float64 {
		if r.DeltaNsPerOp <= 0 {
			return 0
		}
		return float64(r.FullNsPerOp) / float64(r.DeltaNsPerOp)
	}
	base := readDelta(baselinePath)
	cand := readDelta(candidatePath)
	byFraction := make(map[float64]deltaResult, len(base.Results))
	for _, r := range base.Results {
		byFraction[r.Fraction] = r
	}
	smallest := 0.0
	for _, c := range cand.Results {
		if smallest == 0 || c.Fraction < smallest {
			smallest = c.Fraction
		}
	}
	failed := false
	compared := 0
	fmt.Printf("%-14s  %-30s  %-22s  %s\n", "line", "delta ns/op (base -> cand)", "speedup (base -> cand)", "status")
	for _, c := range cand.Results {
		b, ok := byFraction[c.Fraction]
		if !ok {
			fmt.Printf("fraction-%g: FAIL (no baseline line; refresh BENCH_DELTA.json)\n", c.Fraction)
			failed = true
			continue
		}
		compared++
		candSp, baseSp := speedup(c), speedup(b)
		status := "ok"
		switch {
		case c.Units != b.Units:
			status = fmt.Sprintf("FAIL (units %d -> %d: diagram output is no longer identical)", b.Units, c.Units)
			failed = true
		case candSp <= 0:
			status = "FAIL (no measurable delta-apply time)"
			failed = true
		case c.Fraction == smallest && candSp < minSpeedup:
			status = fmt.Sprintf("FAIL (speedup %.1fx < %.1fx floor at the smallest fraction)", candSp, minSpeedup)
			failed = true
		case baseSp > 0 && candSp < baseSp*(1-tol):
			status = fmt.Sprintf("FAIL (speedup regressed >%.0f%% vs baseline)", tol*100)
			failed = true
		}
		fmt.Printf("%-14s  %-30s  %-22s  %s\n",
			fmt.Sprintf("fraction-%g", c.Fraction),
			fmt.Sprintf("%d -> %d", b.DeltaNsPerOp, c.DeltaNsPerOp),
			fmt.Sprintf("%.1fx -> %.1fx", baseSp, candSp),
			status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable fraction lines between delta reports")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// shardResult is one tiling line of a BENCH_SHARD.json report (written
// by TestEmitBenchShardJSON).
type shardResult struct {
	Tiling           string  `json:"tiling"`
	NsPerOp          int64   `json:"ns_per_op"`
	MonoNsPerOp      int64   `json:"mono_ns_per_op"`
	Units            int     `json:"units"`
	TotalStays       int     `json:"total_stays"`
	MaxShardStays    int     `json:"max_shard_stays"`
	LoadedStays      int64   `json:"loaded_stays"`
	ResidentFraction float64 `json:"resident_fraction"`
}

type shardReport struct {
	Benchmark  string        `json:"benchmark"`
	GoMaxProcs int           `json:"go_max_procs"`
	NumCPU     int           `json:"num_cpu"`
	Results    []shardResult `json:"results"`
}

// gateShard compares two geo-sharding reports line-by-line on the
// tiling. The residency fraction — the out-of-core bound: the largest
// share of the stay corpus any single shard had resident — is
// recomputed from the candidate's own max_shard_stays / total_stays,
// never trusted from the file, and must stay at or under maxResident.
// Unit counts must match the baseline exactly: the sharded build is
// bit-identical to the monolithic one by contract, so any drift means
// the halo merge broke, not that the workload changed. ns_per_op is
// gated with the usual tolerance; mono_ns_per_op is informational (the
// sharded/monolithic overhead is visible in the table but machines
// differ too much to gate on it). A candidate tiling with no baseline
// line is a hard failure.
func gateShard(baselinePath, candidatePath string, tol, maxResident float64) {
	readShard := func(path string) shardReport {
		var r shardReport
		b, err := os.ReadFile(path)
		if err == nil {
			err = json.Unmarshal(b, &r)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		return r
	}
	resident := func(r shardResult) float64 {
		if r.TotalStays <= 0 {
			return 1
		}
		return float64(r.MaxShardStays) / float64(r.TotalStays)
	}
	base := readShard(baselinePath)
	cand := readShard(candidatePath)
	byTiling := make(map[string]shardResult, len(base.Results))
	for _, r := range base.Results {
		byTiling[r.Tiling] = r
	}
	failed := false
	compared := 0
	fmt.Printf("%-8s  %-26s  %-22s  %-16s  %s\n", "line", "ns/op (base -> cand)", "resident (cand)", "vs monolithic", "status")
	for _, c := range cand.Results {
		b, ok := byTiling[c.Tiling]
		if !ok {
			fmt.Printf("%s: FAIL (no baseline line; refresh BENCH_SHARD.json)\n", c.Tiling)
			failed = true
			continue
		}
		compared++
		res := resident(c)
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = float64(c.NsPerOp) / float64(b.NsPerOp)
		}
		overhead := "n/a"
		if c.MonoNsPerOp > 0 && c.NsPerOp > 0 {
			overhead = fmt.Sprintf("%.2fx mono", float64(c.NsPerOp)/float64(c.MonoNsPerOp))
		}
		status := "ok"
		switch {
		case c.Units != b.Units:
			status = fmt.Sprintf("FAIL (units %d -> %d: sharded build is no longer bit-identical)", b.Units, c.Units)
			failed = true
		case c.TotalStays <= 0 || c.MaxShardStays <= 0:
			status = "FAIL (no residency counters; the out-of-core bound was not measured)"
			failed = true
		case res > maxResident:
			status = fmt.Sprintf("FAIL (max shard holds %.0f%% of stays > %.0f%% ceiling)", res*100, maxResident*100)
			failed = true
		case b.NsPerOp > 0 && ratio > 1.0+tol:
			status = fmt.Sprintf("FAIL (>%.0f%% slower)", tol*100)
			failed = true
		}
		fmt.Printf("%-8s  %-26s  %-22s  %-16s  %s\n",
			c.Tiling,
			fmt.Sprintf("%d -> %d (%.2fx)", b.NsPerOp, c.NsPerOp, ratio),
			fmt.Sprintf("%d/%d stays (%.0f%%)", c.MaxShardStays, c.TotalStays, res*100),
			overhead, status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable tiling lines between shard reports")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
