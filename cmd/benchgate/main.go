// Command benchgate compares two BenchmarkMine JSON reports (written by
// TestEmitBenchMineJSON with BENCH_MINE_JSON set) and fails when the
// candidate regresses: a slower ns_per_op beyond the tolerance, more
// allocs_per_op beyond its own tolerance, or any change in the
// deterministic pattern count.
//
// Usage:
//
//	benchgate -baseline BENCH_5.json -candidate bench_new.json \
//	    [-tolerance 0.10] [-alloc-tolerance 0.10]
//
// Worker counts present in only one report are skipped (machines
// differ in core count); the sequential workers-1 line exists in every
// report and always gates. A baseline written before allocs_per_op
// existed carries zero there, which disables the allocation comparison
// for that line (allocation counts, unlike timings, are deterministic
// enough to gate tightly once a real baseline exists).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	Workers     int   `json:"workers"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Patterns    int   `json:"patterns"`
}

type report struct {
	Benchmark  string   `json:"benchmark"`
	GoMaxProcs int      `json:"go_max_procs"`
	Results    []result `json:"results"`
}

func readReport(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON")
	candidate := flag.String("candidate", "", "freshly measured JSON")
	tolerance := flag.Float64("tolerance", 0.10, "allowed ns_per_op slowdown (0.10 = 10%)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "allowed allocs_per_op growth (0.10 = 10%)")
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -baseline a.json -candidate b.json [-tolerance 0.10] [-alloc-tolerance 0.10]")
		os.Exit(2)
	}
	base, err := readReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := readReport(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	byWorkers := make(map[int]result, len(base.Results))
	for _, r := range base.Results {
		byWorkers[r.Workers] = r
	}
	failed := false
	compared := 0
	for _, c := range cand.Results {
		b, ok := byWorkers[c.Workers]
		if !ok {
			fmt.Printf("workers-%d: no baseline line, skipped\n", c.Workers)
			continue
		}
		compared++
		ratio := float64(c.NsPerOp) / float64(b.NsPerOp)
		allocRatio := 0.0
		if b.AllocsPerOp > 0 {
			allocRatio = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		status := "ok"
		if c.Patterns != b.Patterns {
			status = "FAIL (patterns changed: mining output is no longer identical)"
			failed = true
		} else if ratio > 1.0+*tolerance {
			status = fmt.Sprintf("FAIL (>%.0f%% slower)", *tolerance*100)
			failed = true
		} else if b.AllocsPerOp > 0 && allocRatio > 1.0+*allocTolerance {
			status = fmt.Sprintf("FAIL (>%.0f%% more allocations)", *allocTolerance*100)
			failed = true
		}
		allocNote := "allocs n/a"
		if b.AllocsPerOp > 0 {
			allocNote = fmt.Sprintf("allocs %d -> %d (%.2fx)", b.AllocsPerOp, c.AllocsPerOp, allocRatio)
		}
		fmt.Printf("workers-%d: %d -> %d ns/op (%.2fx), %s, patterns %d -> %d: %s\n",
			c.Workers, b.NsPerOp, c.NsPerOp, ratio, allocNote, b.Patterns, c.Patterns, status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable worker counts between reports")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
