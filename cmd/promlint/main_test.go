package main

import "testing"

func TestHasFamily(t *testing.T) {
	doc := `# TYPE lat_seconds histogram
lat_seconds_bucket{le="+Inf"} 1
lat_seconds_sum 0.5
lat_seconds_count 1
plain_total 3
labeled_total{x="1"} 2
`
	for fam, want := range map[string]bool{
		"lat_seconds":   true, // via TYPE and histogram suffixes
		"plain_total":   true,
		"labeled_total": true,
		"missing":       false,
		"plain":         false, // prefix of plain_total, not a family
		"lat":           false,
	} {
		if got := hasFamily(doc, fam); got != want {
			t.Errorf("hasFamily(%q) = %v, want %v", fam, got, want)
		}
	}
}
