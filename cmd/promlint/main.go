// Command promlint validates Prometheus text-exposition (0.0.4)
// documents — the output of csdminer's /metrics endpoint or its
// -metrics-out dump — without any external dependency. It is the CI
// gate that keeps the hand-rolled exposition writer honest: HELP/TYPE
// grammar, metric-name and label syntax, duplicate series, counter
// signs, and histogram invariants (monotone cumulative buckets, +Inf
// bucket matching _count).
//
// Usage:
//
//	promlint [-require fam1,fam2,...] [-trace trace.json] [file ...]
//
// With no file arguments the document is read from stdin. -require
// fails unless every named metric family appears in at least one
// document (sample or TYPE line). -trace additionally validates a
// /debug/trace JSON snapshot: it must parse and carry the stable
// shape — spans, counters, gauges and histograms all present, never
// null. Exit code 1 on any violation, with one line per finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"csdm/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	tracePath := flag.String("trace", "", "also validate this /debug/trace JSON snapshot")
	flag.Parse()

	failures := 0
	report := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "promlint: "+format+"\n", args...)
		failures++
	}

	var docs []namedDoc
	if flag.NArg() == 0 {
		body, err := io.ReadAll(os.Stdin)
		if err != nil {
			report("stdin: %v", err)
		} else {
			docs = append(docs, namedDoc{name: "<stdin>", body: string(body)})
		}
	}
	for _, path := range flag.Args() {
		body, err := os.ReadFile(path)
		if err != nil {
			report("%v", err)
			continue
		}
		docs = append(docs, namedDoc{name: path, body: string(body)})
	}

	for _, d := range docs {
		for _, err := range obs.Lint(strings.NewReader(d.body)) {
			report("%s: %v", d.name, err)
		}
	}

	if *require != "" {
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			found := false
			for _, d := range docs {
				if hasFamily(d.body, fam) {
					found = true
					break
				}
			}
			if !found {
				report("required metric family %q not found in any document", fam)
			}
		}
	}

	if *tracePath != "" {
		if err := checkTrace(*tracePath); err != nil {
			report("%s: %v", *tracePath, err)
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d problem(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("promlint: %d document(s) clean\n", len(docs))
}

type namedDoc struct {
	name string
	body string
}

// hasFamily reports whether a document exposes the named family: a
// sample line for the family (optionally with labels or a histogram
// suffix) or its TYPE declaration.
func hasFamily(doc, fam string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, "# TYPE "+fam+" ") {
			return true
		}
		if !strings.HasPrefix(line, fam) {
			continue
		}
		rest := line[len(fam):]
		if rest == "" {
			continue
		}
		switch rest[0] {
		case ' ', '\t', '{':
			return true
		case '_':
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				tail := line[len(fam):]
				if strings.HasPrefix(tail, suf) && (len(tail) == len(suf) || tail[len(suf)] == ' ' || tail[len(suf)] == '{') {
					return true
				}
			}
		}
	}
	return false
}

// checkTrace validates a /debug/trace snapshot's stable JSON shape:
// every collection present and non-null.
func checkTrace(path string) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	for _, key := range []string{"spans", "counters", "gauges", "histograms"} {
		v, ok := raw[key]
		if !ok {
			return fmt.Errorf("trace snapshot missing %q", key)
		}
		if string(v) == "null" {
			return fmt.Errorf("trace snapshot %q is null (want an empty collection)", key)
		}
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("does not decode as a trace snapshot: %w", err)
	}
	return nil
}
