// Command experiments regenerates the paper's tables and figures on the
// synthetic Shanghai workload.
//
// Usage:
//
//	experiments [-exp all|table1|table3|fig6|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig14g|fig14h]
//	            [-pois N] [-passengers N] [-days N] [-seed N]
//	            [-sigma N] [-rho F] [-deltat D]
//	            [-workers N] [-index grid|kdtree|rtree]
//	            [-timings timings.json]
//
// -timings writes a machine-readable JSON record of the run: wall time
// per experiment stage, p50/p95/p99 quantile rows for every latency
// histogram the pipeline recorded (also printed to stdout), and the
// full telemetry snapshot (spans, counters, histograms), giving future
// changes a perf trajectory to regress against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"csdm/internal/core"
	"csdm/internal/experiments"
	"csdm/internal/index"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/render"
)

// stageTiming is one -timings entry.
type stageTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// quantileRow is one histogram's quantile summary in the -timings
// document: the distribution (per-stage durations, task latencies,
// sampled index queries) flattened to the three alerting quantiles.
type quantileRow struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// timingsFile is the -timings JSON document.
type timingsFile struct {
	Workload     string        `json:"workload"`
	SetupSeconds float64       `json:"setup_seconds"`
	Stages       []stageTiming `json:"stages"`
	TotalSeconds float64       `json:"total_seconds"`
	// Quantiles summarizes every telemetry histogram the run produced,
	// sorted by name; the full bucket data rides in Trace.Histograms.
	Quantiles []quantileRow `json:"quantiles"`
	Trace     obs.Snapshot  `json:"trace"`
}

// quantileRows flattens a snapshot's histograms into sorted rows.
func quantileRows(snap obs.Snapshot) []quantileRow {
	rows := make([]quantileRow, 0, len(snap.Histograms))
	for name, h := range snap.Histograms {
		rows = append(rows, quantileRow{Name: name, Count: h.Count, P50: h.P50, P95: h.P95, P99: h.P99})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (all, table1, table3, fig6, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig14g, fig14h)")
		pois       = flag.Int("pois", experiments.DefaultScale().NumPOIs, "POI dataset size")
		passengers = flag.Int("passengers", experiments.DefaultScale().NumPassengers, "commuter population")
		days       = flag.Int("days", experiments.DefaultScale().Days, "simulated days")
		seed       = flag.Int64("seed", experiments.DefaultScale().Seed, "generator seed")
		sigma      = flag.Int("sigma", experiments.MiningParams().Sigma, "support threshold σ")
		rho        = flag.Float64("rho", experiments.MiningParams().Rho, "density threshold ρ (points/m²)")
		deltaT     = flag.Duration("deltat", experiments.MiningParams().DeltaT, "temporal constraint δ_t")
		svgDir     = flag.String("svg-dir", "", "also write fig6.svg (CSD units) and fig14.svg (patterns) into this directory")
		timings    = flag.String("timings", "", "write per-stage timing JSON (stages + pipeline telemetry) to this file")
		workers    = flag.Int("workers", 0, "worker budget for parallel pipeline stages (0 = all cores, 1 = sequential)")
		indexKind  = flag.String("index", "grid", "spatial index backend (grid, kdtree, rtree)")
	)
	flag.Parse()

	scale := experiments.Scale{Seed: *seed, NumPOIs: *pois, NumPassengers: *passengers, Days: *days}
	params := experiments.MiningParams()
	params.Sigma = *sigma
	params.Rho = *rho
	params.DeltaT = *deltaT

	pipeCfg := core.DefaultConfig()
	if *workers != 0 {
		pipeCfg.Workers = *workers
	}
	kind, err := index.ParseKind(*indexKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pipeCfg.Index = kind

	start := time.Now()
	fmt.Printf("generating synthetic Shanghai: %d POIs, %d passengers, %d days (seed %d)\n",
		scale.NumPOIs, scale.NumPassengers, scale.Days, scale.Seed)
	env := experiments.SetupConfig(scale, pipeCfg)
	setupSeconds := time.Since(start).Seconds()
	fmt.Printf("workload ready: %s (%.1fs)\n", env.Pipeline.Describe(), setupSeconds)

	var tr *obs.Trace
	if *timings != "" {
		tr = obs.New()
		env.Pipeline.SetTrace(tr)
	}

	var stages []stageTiming
	w := os.Stdout
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		t0 := time.Now()
		fn()
		secs := time.Since(t0).Seconds()
		stages = append(stages, stageTiming{Name: name, Seconds: secs})
		fmt.Fprintf(w, "[%s done in %.1fs]\n", name, secs)
	}

	run("table1", func() { env.RenderTable1(w) })
	run("table3", func() { env.RenderTable3(w) })
	run("fig6", func() { env.RenderFig6(w) })
	run("fig8", func() { env.RenderFig8(w) })
	run("fig9", func() { env.RenderFig9(w, params) })
	run("fig10", func() { env.RenderFig10(w, params) })
	run("fig11", func() { experiments.RenderSweep(w, "Figure 11", env.Fig11()) })
	run("fig12", func() { experiments.RenderSweep(w, "Figure 12", env.Fig12()) })
	run("fig13", func() { experiments.RenderSweep(w, "Figure 13", env.Fig13()) })
	run("fig14", func() { env.RenderFig14(w, params) })
	run("fig14g", func() { env.RenderFig14g(w, params) })
	run("fig14h", func() { env.RenderFig14h(w, params) })

	if *svgDir != "" {
		if err := writeSVGs(env, params, *svgDir); err != nil {
			fmt.Fprintln(os.Stderr, "svg:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s/fig6.svg and %s/fig14.svg\n", *svgDir, *svgDir)
	}

	known := "all table1 table3 fig6 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig14g fig14h"
	if *exp != "all" && !strings.Contains(known, *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", *exp, known)
		os.Exit(2)
	}
	fmt.Printf("total %.1fs\n", time.Since(start).Seconds())

	if *timings != "" {
		snap := tr.Snapshot()
		rows := quantileRows(snap)
		if len(rows) > 0 {
			fmt.Println("latency quantiles (seconds):")
			for _, r := range rows {
				fmt.Printf("  %-60s n=%-6d p50=%.4g p95=%.4g p99=%.4g\n", r.Name, r.Count, r.P50, r.P95, r.P99)
			}
		}
		doc := timingsFile{
			Workload:     env.Pipeline.Describe(),
			SetupSeconds: setupSeconds,
			Stages:       stages,
			TotalSeconds: time.Since(start).Seconds(),
			Quantiles:    rows,
			Trace:        snap,
		}
		f, err := os.Create(*timings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timings:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "timings:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "timings:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *timings)
	}
}

// writeSVGs renders the Figure 6 and Figure 14 map views.
func writeSVGs(env *experiments.Env, params pattern.Params, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	canvas := render.NewCanvas(env.City.Center, env.City.ExtentMeters, 900)

	f6, err := os.Create(filepath.Join(dir, "fig6.svg"))
	if err != nil {
		return err
	}
	if err := canvas.Diagram(f6, env.Pipeline.Diagram()); err != nil {
		f6.Close()
		return err
	}
	if err := f6.Close(); err != nil {
		return err
	}

	f14, err := os.Create(filepath.Join(dir, "fig14.svg"))
	if err != nil {
		return err
	}
	if err := canvas.Patterns(f14, env.Pipeline.Mine(core.CSDPM, params)); err != nil {
		f14.Close()
		return err
	}
	return f14.Close()
}
