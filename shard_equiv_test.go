package csdm

// Sharded-vs-monolithic equivalence sweep: the geo-sharded out-of-core
// build (internal/shard) must reproduce the monolithic diagram bit for
// bit — popularity vector, unit set, and the patterns mined over it —
// for every tiling, index backend and worker count, whether the stays
// come from memory or from the on-disk columnar store. This is the
// property that makes -shards a pure execution strategy rather than an
// approximation knob; DESIGN.md §5j derives why it holds.

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/shard"
	"csdm/internal/stage"
)

func TestShardedBuildEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence sweep skipped in -short")
	}
	env := sharedEnv()
	pois := env.City.POIs
	stays := env.Pipeline.StayPoints()
	params := core.DefaultConfig().CSD
	extent := geo.BoundingRect(poi.Locations(pois))

	ref := csd.Build(pois, stays, params)

	// One on-disk columnar store shared by the out-of-core combos. A
	// small chunk cap forces many chunks, so LoadRect's chunk skipping
	// is actually exercised.
	storePath := filepath.Join(t.TempDir(), "stays.csdstay")
	w, err := shard.CreateStayStore(storePath, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(stays); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	store, err := shard.OpenStayStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	backends := []index.Kind{index.KindGrid, index.KindKDTree, index.KindRTree}
	for _, tiling := range [][2]int{{2, 2}, {4, 4}} {
		plan, err := shard.NewPlan(extent, tiling[0], tiling[1], params.R3Sigma)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range backends {
			for _, workers := range []int{1, 4} {
				// Alternate the stay source so both the in-memory
				// adapter and the on-disk store run against every
				// backend.
				var src shard.StaySource = shard.MemStays(stays)
				srcName := "mem"
				if workers == 4 {
					src = store
					srcName = "store"
				}
				name := fmt.Sprintf("%dx%d/%v/workers-%d/%s", tiling[0], tiling[1], kind, workers, srcName)
				t.Run(name, func(t *testing.T) {
					ctx := context.Background()
					senv := stage.Env{Ctx: ctx, Run: ctx, Opt: exec.Options{Workers: workers, Index: kind}}
					d, st, err := shard.Build(senv, pois, src, shard.Config{
						Plan: plan, Params: params, ShardWorkers: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					// Popularity is bit-identical across every backend
					// and tiling, so it is checked against the single
					// default-built reference.
					for i := range ref.Pop {
						if d.Pop[i] != ref.Pop[i] {
							t.Fatalf("popularity diverges at POI %d: sharded %v, monolithic %v", i, d.Pop[i], ref.Pop[i])
						}
					}
					// Phase-2 unit ordering legitimately depends on the
					// index backend's traversal order, so units compare
					// against a monolithic build under the same env.
					refEnv, err := csd.BuildEnv(senv, pois, stays, params)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(d.Units, refEnv.Units) {
						t.Fatalf("unit sets diverge: sharded %d units, monolithic %d", len(d.Units), len(refEnv.Units))
					}
					if st.MaxShardStays >= st.TotalStays {
						t.Fatalf("no shard locality: max resident %d of %d total stays", st.MaxShardStays, st.TotalStays)
					}
				})
			}
		}
	}

	// The end-to-end property: CSD-PM mining over a sharded diagram
	// yields the exact monolithic pattern set.
	approach, err := core.ApproachByName("CSD-PM")
	if err != nil {
		t.Fatal(err)
	}
	refPatterns := mineOver(t, env.City.POIs, env.Workload.Journeys, ref, approach)
	if len(refPatterns) == 0 {
		t.Fatal("monolithic reference mined zero patterns; the comparison below would be vacuous")
	}
	plan, err := shard.NewPlan(extent, 4, 4, params.R3Sigma)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	senv := stage.Env{Ctx: ctx, Run: ctx, Opt: exec.Options{Workers: 4, Index: index.KindGrid}}
	sharded, _, err := shard.Build(senv, pois, store, shard.Config{Plan: plan, Params: params, ShardWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := mineOver(t, env.City.POIs, env.Workload.Journeys, sharded, approach)
	if !reflect.DeepEqual(got, refPatterns) {
		t.Fatalf("CSD-PM patterns diverge: sharded mined %d, monolithic %d", len(got), len(refPatterns))
	}
	t.Logf("sharded diagram reproduces all %d CSD-PM patterns", len(refPatterns))
}

// mineOver mines one approach on a fresh pipeline seeded with the
// given diagram.
func mineOver(t *testing.T, pois []POI, journeys []Journey, d *csd.Diagram, a core.Approach) []Pattern {
	t.Helper()
	pipe := core.NewPipeline(pois, journeys, core.DefaultConfig())
	pipe.UseDiagram(d)
	ps, err := pipe.MineCtx(context.Background(), a, benchParams())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}
