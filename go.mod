module csdm

go 1.23
