// Package csdm is a Go implementation of the City Semantic Diagram and
// the Pervasive Miner system from "Extract Human Mobility Patterns
// Powered by City Semantic Diagram" (Shan, Sun, Zheng).
//
// Pervasive Miner extracts fine-grained semantic mobility patterns —
// sequences like Residence → Office → Restaurant anchored at specific
// places — from raw, semantics-free taxi GPS trajectories. It works in
// three stages:
//
//  1. Semantic Diagram Construction organizes a city's POI dataset into
//     fine-grained semantic units via popularity-based clustering,
//     KL-divergence semantic purification, and cosine-similarity unit
//     merging.
//  2. Semantic Recognition labels every stay point of every trajectory
//     by a popularity-weighted vote among the semantic units around it.
//  3. Pattern Extraction mines coarse semantic sequences with PrefixSpan
//     and refines them into spatially dense fine-grained patterns with
//     the OPTICS-based CounterpartCluster algorithm.
//
// The package also implements the paper's five competitor systems
// (ROI-PM, CSD/ROI-Splitter, CSD/ROI-SDBSCAN), the evaluation metrics,
// and a synthetic Shanghai-like workload generator that stands in for
// the proprietary taxi and POI datasets.
//
// # Quick start
//
//	city := csdm.GenerateCity(csdm.DefaultCityConfig())
//	journeys := city.GenerateWorkload().Journeys
//	miner := csdm.NewMiner(city.POIs, journeys, csdm.DefaultConfig())
//	patterns := miner.Mine(csdm.CSDPM, csdm.DefaultMiningParams())
//	fmt.Println(csdm.Summarize(patterns))
//
// See the examples directory for richer scenarios, and cmd/experiments
// for the reproduction of every table and figure of the paper.
package csdm
