package csdm

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

// staysOf expands journeys into stay points in the pipeline's stays
// order (per journey: pickup, then dropoff) — the order the maintainer
// and the batch pipeline both consume.
func staysOf(js []trajectory.Journey) []geo.Point {
	out := make([]geo.Point, 0, 2*len(js))
	for _, j := range js {
		out = append(out, j.Pickup, j.Dropoff)
	}
	return out
}

// TestDeltaIngestDeterminism is the incremental ≡ full-rebuild property
// test on the bench city (the same workload whose committed mining
// baseline is exactly 129 CSD-PM patterns): the bench city's journeys
// are split into a base log plus k randomly-sized contiguous delta
// batches, the base seeds a csd.Maintainer, each batch is applied via
// core.IngestBatch, and the final generation must carry bit-identical
// popularity and semantic units — and mine the same 129 patterns in the
// same order — as a one-shot Build over the union. Runs at workers 1
// and NumCPU; CI's scaling job adds -race on top.
func TestDeltaIngestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench-city comparison")
	}
	scale := benchScale()
	scfg := synth.DefaultConfig()
	scfg.Seed = scale.Seed
	scfg.NumPOIs = scale.NumPOIs
	scfg.NumPassengers = scale.NumPassengers
	scfg.Days = scale.Days
	city := synth.NewCity(scfg)
	w := city.GenerateWorkload()
	params := benchParams()
	ctx := context.Background()

	// One-shot reference over the union, at the default worker budget
	// (full builds are already worker-count-deterministic, pinned by
	// TestWorkerCountDeterminism).
	ref := core.NewPipeline(city.POIs, w.Journeys, core.DefaultConfig())
	refD, err := ref.DiagramCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	refPatterns, err := ref.MineCtx(ctx, core.CSDPM, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(refPatterns) != 129 {
		t.Fatalf("reference CSD-PM patterns = %d, want the committed baseline's 129", len(refPatterns))
	}

	set := map[int]bool{1: true, runtime.NumCPU(): true}
	counts := make([]int, 0, len(set))
	for n := range set {
		counts = append(counts, n)
	}
	sort.Ints(counts)

	// Randomized (but seeded) batch boundaries: each worker count gets
	// its own base/batch split, so the equivalence is exercised across
	// batch geometries, not just one.
	rng := rand.New(rand.NewSource(9))
	for _, workers := range counts {
		base := len(w.Journeys) * (60 + rng.Intn(21)) / 100 // 60–80% seed the maintainer
		k := 2 + rng.Intn(3)                                // 2–4 delta batches over the rest

		cfg := core.DefaultConfig()
		cfg.Workers = workers
		p := core.NewPipeline(city.POIs, w.Journeys[:base], cfg)

		rest := w.Journeys[base:]
		var d *csd.Diagram
		lo := 0
		for b := 0; b < k; b++ {
			hi := lo + (len(rest)-lo)/(k-b)
			if b == k-1 {
				hi = len(rest)
			}
			var st csd.DeltaStats
			d, st, err = p.IngestBatch(ctx, staysOf(rest[lo:hi]))
			if err != nil {
				t.Fatalf("workers=%d batch %d: %v", workers, b, err)
			}
			if st.Generation != int64(b+2) {
				t.Fatalf("workers=%d batch %d: generation = %d, want %d", workers, b, st.Generation, b+2)
			}
			lo = hi
		}

		if len(d.Pop) != len(refD.Pop) {
			t.Fatalf("workers=%d: pop length %d vs %d", workers, len(d.Pop), len(refD.Pop))
		}
		for i := range d.Pop {
			if d.Pop[i] != refD.Pop[i] {
				t.Fatalf("workers=%d: pop[%d] = %v, want %v (not bit-identical)", workers, i, d.Pop[i], refD.Pop[i])
			}
		}
		if !reflect.DeepEqual(d.Units, refD.Units) {
			t.Fatalf("workers=%d: semantic units differ from one-shot Build after %d delta batches", workers, k)
		}

		// Mine through a pipeline over the union with the ingested
		// diagram installed: annotation + extraction must reproduce the
		// reference pattern list exactly.
		mp := core.NewPipeline(city.POIs, w.Journeys, cfg)
		mp.UseDiagram(d)
		ps, err := mp.MineCtx(ctx, core.CSDPM, params)
		if err != nil {
			t.Fatalf("workers=%d: mine on ingested diagram: %v", workers, err)
		}
		if len(ps) != 129 {
			t.Fatalf("workers=%d: CSD-PM patterns on ingested diagram = %d, want 129", workers, len(ps))
		}
		if !reflect.DeepEqual(ps, refPatterns) {
			t.Fatalf("workers=%d: mined patterns differ from the one-shot reference", workers)
		}
	}
}
