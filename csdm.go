package csdm

import (
	"context"
	"io"

	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/metrics"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

// Geographic and data-model types.
type (
	// Point is a WGS84 coordinate (longitude, latitude).
	Point = geo.Point
	// POI is a point of interest with a semantic category.
	POI = poi.POI
	// Semantics is a set of semantic tags over the 15 major categories.
	Semantics = poi.Semantics
	// Major is one of the 15 major semantic categories (Table 3).
	Major = poi.Major
	// Journey is one taxi trip record (pick-up, drop-off, times,
	// optional passenger card ID).
	Journey = trajectory.Journey
	// StayPoint is a location where a commuter stopped for an activity.
	StayPoint = trajectory.StayPoint
	// SemanticTrajectory is a sequence of (annotated) stay points.
	SemanticTrajectory = trajectory.SemanticTrajectory
	// Pattern is a mined fine-grained semantic pattern.
	Pattern = pattern.Pattern
	// MiningParams are the σ/δ_t/ρ/ε_t mining thresholds.
	MiningParams = pattern.Params
	// Summary aggregates the four evaluation metrics over a result set.
	Summary = metrics.Summary
	// Config bundles the construction parameters of the pipeline,
	// including the Workers budget and the spatial Index backend.
	Config = core.Config
	// ApproachResult pairs an approach with its mined patterns.
	ApproachResult = core.ApproachResult
	// Approach selects one of the six systems of the paper's §5.
	Approach = core.Approach
	// Diagram is a built City Semantic Diagram.
	Diagram = csd.Diagram
	// CityConfig parameterizes the synthetic city generator.
	CityConfig = synth.Config
	// City is a generated synthetic city.
	City = synth.City
	// Trace collects per-stage telemetry — hierarchical wall-time
	// spans plus named counters and gauges — for one pipeline run.
	Trace = obs.Trace
)

// The six approaches compared in the paper.
var (
	// CSDPM is the paper's system: CSD recognition + CounterpartCluster.
	CSDPM = core.CSDPM
	// ROIPM replaces the CSD with the hot-region baseline of [21].
	ROIPM = core.ROIPM
	// CSDSplitter combines CSD recognition with Splitter refinement [17].
	CSDSplitter = core.CSDSplitter
	// ROISplitter combines ROI recognition with Splitter refinement.
	ROISplitter = core.ROISplitter
	// CSDSDBSCAN combines CSD recognition with SDBSCAN refinement [19].
	CSDSDBSCAN = core.CSDSDBSCAN
	// ROISDBSCAN combines ROI recognition with SDBSCAN refinement.
	ROISDBSCAN = core.ROISDBSCAN
)

// Approaches lists all six systems in the paper's order.
func Approaches() []Approach { return core.Approaches() }

// DefaultConfig returns the paper's §4.1 construction defaults.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultMiningParams returns the paper's §5 normal condition:
// σ = 50, δ_t = 60 min, ρ = 0.002 m⁻².
func DefaultMiningParams() MiningParams { return pattern.DefaultParams() }

// DefaultCityConfig returns a laptop-scale synthetic city configuration.
func DefaultCityConfig() CityConfig { return synth.DefaultConfig() }

// GenerateCity builds a synthetic Shanghai-like city: POIs matching the
// paper's Table 3 category mix, mixed-use towers, single-purpose
// streets, a river, an airport and a hospital.
func GenerateCity(cfg CityConfig) *City { return synth.NewCity(cfg) }

// Miner is the top-level entry point: it owns a POI dataset and a taxi
// journey log and runs any of the six mining approaches over them. The
// expensive shared artifacts (the City Semantic Diagram, the annotated
// trajectory databases) are built once and reused across Mine calls.
type Miner struct {
	pipeline *core.Pipeline
}

// NewMiner prepares a miner over the given POI dataset and journeys.
func NewMiner(pois []POI, journeys []Journey, cfg Config) *Miner {
	return &Miner{pipeline: core.NewPipeline(pois, journeys, cfg)}
}

// Diagram returns the City Semantic Diagram, building it on first use.
func (m *Miner) Diagram() *Diagram { return m.pipeline.Diagram() }

// EnableTrace attaches a fresh telemetry trace to the miner and
// returns it; every pipeline stage run afterwards records spans and
// counters. Call before the first Diagram, Mine or Database call —
// already-built artifacts are not re-traced.
func (m *Miner) EnableTrace() *Trace {
	tr := obs.New()
	m.pipeline.SetTrace(tr)
	return tr
}

// Trace returns the miner's telemetry trace, nil when tracing was
// never enabled. A nil trace is safe to use — all its methods no-op.
func (m *Miner) Trace() *Trace { return m.pipeline.Trace() }

// UseDiagram installs a pre-built diagram (e.g. loaded with
// ReadDiagram) instead of constructing one; it must be called before
// the first Diagram, Mine or Database call.
func (m *Miner) UseDiagram(d *Diagram) { m.pipeline.UseDiagram(d) }

// ReadDiagram loads a diagram serialized with (*Diagram).Write.
func ReadDiagram(r io.Reader) (*Diagram, error) { return csd.Read(r) }

// Mine runs one approach end to end and returns its fine-grained
// patterns.
func (m *Miner) Mine(a Approach, params MiningParams) []Pattern {
	return m.pipeline.Mine(a, params)
}

// LastErr returns the most recent error one of the no-error
// convenience methods (Diagram, Database, Mine, MineAll) swallowed,
// nil when none has failed. Prefer the Context variants for real
// error handling; this accessor makes a wrapper's failure diagnosable
// instead of an unexplained nil result.
func (m *Miner) LastErr() error { return m.pipeline.LastErr() }

// MineContext is Mine under a cancellation context: the pipeline runs
// on the configured worker pool and a canceled ctx aborts promptly with
// ctx.Err().
func (m *Miner) MineContext(ctx context.Context, a Approach, params MiningParams) ([]Pattern, error) {
	return m.pipeline.MineCtx(ctx, a, params)
}

// MineAll runs all six approaches under the same parameters, keyed by
// the approach's paper name (e.g. "CSD-PM").
func (m *Miner) MineAll(params MiningParams) map[string][]Pattern {
	return m.pipeline.MineAll(params)
}

// MineAllContext runs all six approaches under the shared worker budget
// and a cancellation context, returning results in Approaches() order.
func (m *Miner) MineAllContext(ctx context.Context, params MiningParams) ([]ApproachResult, error) {
	return m.pipeline.MineAllCtx(ctx, params)
}

// Database returns the annotated semantic-trajectory database built by
// the given approach's recognizer.
func (m *Miner) Database(a Approach) []SemanticTrajectory {
	return m.pipeline.Database(a.Recognizer)
}

// Recognize returns the semantic property the City Semantic Diagram
// assigns to a stay at p (Algorithm 3).
func (m *Miner) Recognize(p Point) Semantics {
	return recognize.NewCSDRecognizer(m.pipeline.Diagram()).Recognize(p)
}

// Summarize computes the paper's four evaluation metrics — pattern
// count, coverage, mean spatial sparsity, mean semantic consistency —
// over a mining result.
func Summarize(ps []Pattern) Summary { return metrics.Summarize(ps) }

// SpatialSparsity computes Equation (10) for one pattern.
func SpatialSparsity(p Pattern) float64 { return metrics.SpatialSparsity(p) }

// SemanticConsistency computes Equation (12) for one pattern.
func SemanticConsistency(p Pattern) float64 { return metrics.SemanticConsistency(p) }

// DetectStayPoints extracts stay points from a raw GPS trajectory per
// Definition 5. Taxi pick-up/drop-off records do not need this — their
// endpoints are stay points directly — but generic GPS traces do.
func DetectStayPoints(t trajectory.Trajectory, params trajectory.StayPointParams) []StayPoint {
	return trajectory.DetectStayPoints(t, params)
}
