package csdm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/shard"
	"csdm/internal/stage"
)

// BenchShardResult is one tiling line of BENCH_SHARD.json: the wall
// time of a geo-sharded out-of-core build versus the monolithic one,
// plus the residency counters the out-of-core bound is gated on, in
// the machine format cmd/benchgate -shard consumes.
type BenchShardResult struct {
	// Tiling is the RxC shard grid ("2x2").
	Tiling string `json:"tiling"`
	// NsPerOp is one sharded build over the on-disk stay store.
	NsPerOp int64 `json:"ns_per_op"`
	// MonoNsPerOp is one monolithic in-memory build of the same
	// diagram — informational; the gate reports the overhead ratio but
	// does not gate on it.
	MonoNsPerOp int64 `json:"mono_ns_per_op"`
	// Units is the sharded diagram's unit count, identical to the
	// monolithic build's by the halo-merge equivalence property, so
	// the gate compares it exactly.
	Units int `json:"units"`
	// TotalStays is the stay corpus size.
	TotalStays int `json:"total_stays"`
	// MaxShardStays is the largest per-shard resident stay count — the
	// bytes-resident proxy: peak stay memory is bounded by the largest
	// shard's halo rectangle, not the corpus.
	MaxShardStays int `json:"max_shard_stays"`
	// LoadedStays counts stays loaded across all shards (halo overlap
	// makes it exceed TotalStays).
	LoadedStays int64 `json:"loaded_stays"`
	// ResidentFraction is MaxShardStays/TotalStays — informational;
	// the gate recomputes it from the counters above.
	ResidentFraction float64 `json:"resident_fraction"`
}

// BenchShardReport is the top-level BENCH_SHARD.json document.
type BenchShardReport struct {
	Benchmark  string             `json:"benchmark"`
	GoMaxProcs int                `json:"go_max_procs"`
	NumCPU     int                `json:"num_cpu"`
	Results    []BenchShardResult `json:"results"`
}

// benchShardTilings is the tiling curve BENCH_SHARD.json records.
var benchShardTilings = [][2]int{{2, 2}, {3, 3}, {4, 4}}

// TestEmitBenchShardJSON measures sharded out-of-core builds against
// the monolithic build on the bench city and writes BENCH_SHARD.json-
// format measurements to the path in $BENCH_SHARD_JSON, for the CI
// sharding gate (cmd/benchgate -shard) and for refreshing the
// committed baseline. Unset, the test skips, so normal `go test` runs
// pay nothing.
//
// The sharded side reads stays from an on-disk columnar store — the
// deployment shape the feature exists for — so the measured time
// includes LoadRect I/O, not just compute.
func TestEmitBenchShardJSON(t *testing.T) {
	path := os.Getenv("BENCH_SHARD_JSON")
	if path == "" {
		t.Skip("BENCH_SHARD_JSON not set")
	}
	const reps = 3
	env := sharedEnv()
	pois := env.City.POIs
	stays := env.Pipeline.StayPoints()
	params := core.DefaultConfig().CSD
	extent := geo.BoundingRect(poi.Locations(pois))

	report := BenchShardReport{
		Benchmark:  "BenchmarkShard",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	senv := stage.Background()
	senv.Opt = exec.Options{Workers: runtime.GOMAXPROCS(0), Index: index.KindGrid}

	// The monolithic reference: one workload, one measurement for every
	// tiling line.
	var monoNs int64
	var monoUnits int
	for r := 0; r < reps; r++ {
		start := time.Now()
		d, err := csd.BuildEnv(senv, pois, stays, params)
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			t.Fatal(err)
		}
		if monoNs == 0 || ns < monoNs {
			monoNs = ns
		}
		monoUnits = len(d.Units)
	}

	storePath := filepath.Join(t.TempDir(), "stays.csdstay")
	w, err := shard.CreateStayStore(storePath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(stays); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	store, err := shard.OpenStayStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	for _, tiling := range benchShardTilings {
		plan, err := shard.NewPlan(extent, tiling[0], tiling[1], params.R3Sigma)
		if err != nil {
			t.Fatal(err)
		}
		var shardNs int64
		var units int
		var st shard.Stats
		for r := 0; r < reps; r++ {
			start := time.Now()
			d, stats, err := shard.Build(senv, pois, store, shard.Config{
				Plan: plan, Params: params, ShardWorkers: runtime.GOMAXPROCS(0),
			})
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				t.Fatal(err)
			}
			if shardNs == 0 || ns < shardNs {
				shardNs = ns
			}
			units = len(d.Units)
			st = stats
		}
		if units != monoUnits {
			t.Fatalf("tiling %dx%d: sharded diagram has %d units, monolithic %d — equivalence broken", tiling[0], tiling[1], units, monoUnits)
		}
		report.Results = append(report.Results, BenchShardResult{
			Tiling:           fmt.Sprintf("%dx%d", tiling[0], tiling[1]),
			NsPerOp:          shardNs,
			MonoNsPerOp:      monoNs,
			Units:            units,
			TotalStays:       st.TotalStays,
			MaxShardStays:    st.MaxShardStays,
			LoadedStays:      int64(st.LoadedStays),
			ResidentFraction: float64(st.MaxShardStays) / float64(st.TotalStays),
		})
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %+v", path, report.Results)
}
