package csdm

import (
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// TestFacadeEndToEnd drives the public API exactly as the quickstart
// example does.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.NumPOIs = 2000
	cfg.NumPassengers = 250
	cfg.Days = 7
	city := GenerateCity(cfg)
	if len(city.POIs) < cfg.NumPOIs {
		t.Fatalf("POIs = %d", len(city.POIs))
	}
	w := city.GenerateWorkload()
	miner := NewMiner(city.POIs, w.Journeys, DefaultConfig())

	d := miner.Diagram()
	if len(d.Units) == 0 {
		t.Fatal("no units")
	}
	if got := miner.Recognize(city.Hospital); !got.Has(poi.MedicalService) {
		t.Fatalf("hospital recognized as %v", got)
	}

	params := DefaultMiningParams()
	params.Sigma = 15
	ps := miner.Mine(CSDPM, params)
	if len(ps) == 0 {
		t.Fatal("no patterns")
	}
	s := Summarize(ps)
	if s.NumPatterns != len(ps) || s.Coverage <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	for _, p := range ps {
		if sp := SpatialSparsity(p); sp < 0 {
			t.Fatalf("sparsity = %v", sp)
		}
		if sc := SemanticConsistency(p); sc < 0 || sc > 1+1e-9 {
			t.Fatalf("consistency = %v", sc)
		}
	}
	if db := miner.Database(CSDPM); len(db) == 0 {
		t.Fatal("empty database")
	}
}

func TestFacadeApproaches(t *testing.T) {
	if len(Approaches()) != 6 {
		t.Fatal("want 6 approaches")
	}
	names := map[string]bool{}
	for _, a := range Approaches() {
		names[a.String()] = true
	}
	for _, want := range []string{"CSD-PM", "ROI-PM", "CSD-Splitter", "ROI-Splitter", "CSD-SDBSCAN", "ROI-SDBSCAN"} {
		if !names[want] {
			t.Errorf("missing approach %q", want)
		}
	}
}

func TestFacadeDetectStayPoints(t *testing.T) {
	proj := geo.NewProjection(DefaultCityConfig().Center)
	t0 := time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)
	var pts []trajectory.GPSPoint
	for i := 0; i < 8; i++ {
		pts = append(pts, trajectory.GPSPoint{
			P: proj.ToPoint(geo.Meters{X: float64(i), Y: 0}),
			T: t0.Add(time.Duration(i) * 5 * time.Minute),
		})
	}
	stays := DetectStayPoints(trajectory.Trajectory{ID: 1, Points: pts},
		trajectory.StayPointParams{MaxDist: 100, MinDuration: 30 * time.Minute})
	if len(stays) != 1 {
		t.Fatalf("stays = %d, want 1", len(stays))
	}
}
