package seqpattern

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"csdm/internal/exec"
)

// findPattern locates a mined pattern by items.
func findPattern(ps []Pattern, items ...Item) *Pattern {
	for i := range ps {
		if reflect.DeepEqual(ps[i].Items, items) {
			return &ps[i]
		}
	}
	return nil
}

func TestMineTextbookExample(t *testing.T) {
	// Adapted from the PrefixSpan paper's running example, with
	// single-item elements.
	db := []Sequence{
		{1, 2, 3, 4},
		{1, 3, 4},
		{1, 2, 4},
		{2, 3},
	}
	ps := Mine(db, Config{MinSupport: 3, MinLen: 1, MaxLen: 4})

	cases := []struct {
		items []Item
		want  int
	}{
		{[]Item{1}, 3},
		{[]Item{2}, 3},
		{[]Item{3}, 3},
		{[]Item{4}, 3},
		{[]Item{1, 4}, 3},
		{[]Item{1, 3}, 2}, // below support: must be absent
	}
	for _, c := range cases {
		p := findPattern(ps, c.items...)
		if c.want >= 3 {
			if p == nil {
				t.Errorf("pattern %v missing", c.items)
			} else if p.Support() != c.want {
				t.Errorf("pattern %v support = %d, want %d", c.items, p.Support(), c.want)
			}
		} else if p != nil {
			t.Errorf("infrequent pattern %v emitted with support %d", c.items, p.Support())
		}
	}
}

func TestMineRespectsLengthBounds(t *testing.T) {
	db := []Sequence{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}}
	ps := Mine(db, Config{MinSupport: 2, MinLen: 2, MaxLen: 2})
	for _, p := range ps {
		if len(p.Items) != 2 {
			t.Errorf("pattern %v violates length bounds", p.Items)
		}
	}
	if findPattern(ps, 1, 2) == nil || findPattern(ps, 2, 3) == nil || findPattern(ps, 1, 3) == nil {
		t.Error("expected all 2-item subsequences")
	}
}

func TestMineEmbeddingsAreValid(t *testing.T) {
	db := []Sequence{
		{7, 1, 7, 2, 9},
		{1, 1, 2, 2},
		{2, 1, 2},
	}
	ps := Mine(db, Config{MinSupport: 2, MinLen: 2, MaxLen: 3})
	p := findPattern(ps, 1, 2)
	if p == nil {
		t.Fatal("pattern [1 2] missing")
	}
	if p.Support() != 3 {
		t.Fatalf("support = %d, want 3", p.Support())
	}
	for i, sid := range p.SeqIDs {
		emb := p.Embeddings[i]
		if len(emb) != 2 {
			t.Fatalf("embedding %v wrong length", emb)
		}
		seq := db[sid]
		prev := -1
		for k, pos := range emb {
			if pos <= prev || seq[pos] != p.Items[k] {
				t.Fatalf("invalid embedding %v into %v", emb, seq)
			}
			prev = pos
		}
	}
	// Leftmost embedding of [1 2] into seq 0 is positions [1 3].
	if got := p.Embeddings[0]; !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("leftmost embedding = %v, want [1 3]", got)
	}
}

func TestMineSupportIsPerSequence(t *testing.T) {
	// Item 5 occurs three times in one sequence: support must be 1.
	db := []Sequence{{5, 5, 5}}
	ps := Mine(db, Config{MinSupport: 1, MinLen: 1, MaxLen: 1})
	p := findPattern(ps, 5)
	if p == nil || p.Support() != 1 {
		t.Fatalf("per-sequence support broken: %+v", p)
	}
}

func TestMineEmptyAndDegenerate(t *testing.T) {
	if ps := Mine(nil, DefaultConfig()); len(ps) != 0 {
		t.Error("empty db should yield no patterns")
	}
	if ps := Mine([]Sequence{{}, {}}, Config{MinSupport: 1, MinLen: 1, MaxLen: 3}); len(ps) != 0 {
		t.Error("empty sequences should yield no patterns")
	}
	if ps := Mine([]Sequence{{1}}, Config{MinSupport: 1, MinLen: 1, MaxLen: 0}); len(ps) != 0 {
		t.Error("MaxLen=0 should yield no patterns")
	}
	// MinSupport below 1 is clamped to 1.
	ps := Mine([]Sequence{{1}}, Config{MinSupport: 0, MinLen: 1, MaxLen: 1})
	if len(ps) != 1 {
		t.Errorf("clamped MinSupport mining failed: %d patterns", len(ps))
	}
}

func TestMineOrderedByDescendingSupport(t *testing.T) {
	db := []Sequence{{1, 2}, {1, 2}, {1}, {2, 1}}
	ps := Mine(db, Config{MinSupport: 1, MinLen: 1, MaxLen: 2})
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Support() < ps[i].Support() {
			t.Fatalf("patterns not sorted by support at %d", i)
		}
	}
}

// bruteSupport counts sequences containing pattern as a subsequence.
func bruteSupport(db []Sequence, pattern []Item) int {
	n := 0
	for _, s := range db {
		if IsSubsequence(s, pattern) {
			n++
		}
	}
	return n
}

func TestMineMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSeq := 3 + rng.Intn(8)
		db := make([]Sequence, nSeq)
		for i := range db {
			l := 1 + rng.Intn(6)
			for k := 0; k < l; k++ {
				db[i] = append(db[i], Item(rng.Intn(4)))
			}
		}
		minSup := 1 + rng.Intn(3)
		ps := Mine(db, Config{MinSupport: minSup, MinLen: 1, MaxLen: 4})
		// (a) every emitted pattern has correct support;
		seen := make(map[string]bool)
		for _, p := range ps {
			if p.Support() != bruteSupport(db, p.Items) {
				return false
			}
			if p.Support() < minSup {
				return false
			}
			key := ""
			for _, it := range p.Items {
				key += string(rune(it + 'a'))
			}
			if seen[key] {
				return false // duplicates
			}
			seen[key] = true
			// embeddings are valid subsequence matches
			for i, sid := range p.SeqIDs {
				prev := -1
				for k, pos := range p.Embeddings[i] {
					if pos <= prev || db[sid][pos] != p.Items[k] {
						return false
					}
					prev = pos
				}
			}
		}
		// (b) completeness: every frequent 1- and 2-item pattern appears.
		for a := Item(0); a < 4; a++ {
			if bruteSupport(db, []Item{a}) >= minSup && findPattern(ps, a) == nil {
				return false
			}
			for b := Item(0); b < 4; b++ {
				if bruteSupport(db, []Item{a, b}) >= minSup && findPattern(ps, a, b) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSubsequence(t *testing.T) {
	seq := Sequence{3, 1, 4, 1, 5}
	cases := []struct {
		pattern []Item
		want    bool
	}{
		{[]Item{3, 4, 5}, true},
		{[]Item{1, 1}, true},
		{[]Item{5, 3}, false},
		{[]Item{}, true},
		{[]Item{9}, false},
	}
	for _, c := range cases {
		if got := IsSubsequence(seq, c.pattern); got != c.want {
			t.Errorf("IsSubsequence(%v) = %v, want %v", c.pattern, got, c.want)
		}
	}
}

func BenchmarkMine1000x8(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	db := make([]Sequence, 1000)
	for i := range db {
		l := 3 + rng.Intn(6)
		for k := 0; k < l; k++ {
			db[i] = append(db[i], Item(rng.Intn(15)))
		}
	}
	cfg := Config{MinSupport: 50, MinLen: 2, MaxLen: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(db, cfg)
	}
}

// TestMineWorkerDeterminism pins the parallel-mining invariant: MineWith
// must return the identical pattern list — same order, same items, same
// supporting IDs and embeddings — for any worker budget, because the
// pipeline's mined-pattern count is gated on exact equality across
// worker counts.
func TestMineWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db := make([]Sequence, 400)
	for i := range db {
		db[i] = make(Sequence, 3+rng.Intn(8))
		for k := range db[i] {
			db[i][k] = Item(rng.Intn(12))
		}
	}
	cfg := Config{MinSupport: 20, MinLen: 1, MaxLen: 5}
	ref := MineWith(db, cfg, exec.Options{Workers: 1})
	if len(ref) == 0 {
		t.Fatal("degenerate fixture: no patterns mined")
	}
	if !reflect.DeepEqual(ref, Mine(db, cfg)) {
		t.Fatal("Mine != MineWith(workers=1)")
	}
	for _, workers := range []int{2, 3, 8} {
		got := MineWith(db, cfg, exec.Options{Workers: workers})
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: pattern list diverged from sequential mining", workers)
		}
	}
}
