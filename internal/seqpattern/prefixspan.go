// Package seqpattern implements PrefixSpan (Pei et al., ICDE 2001), the
// sequential-pattern miner Pervasive Miner and both baselines use to
// detect coarse semantic patterns: frequent subsequences of semantic
// properties across the semantic-trajectory database (§4.3).
//
// Items are opaque uint16 values; csdm feeds poi.Semantics bitsets.
package seqpattern

import (
	"context"
	"sort"

	"csdm/internal/exec"
)

// Item is one element of a sequence (csdm uses poi.Semantics values).
type Item = uint16

// Sequence is an ordered list of items.
type Sequence []Item

// Pattern is a frequent sequential pattern.
type Pattern struct {
	// Items is the pattern's item sequence.
	Items []Item
	// SeqIDs lists the indices of supporting sequences, ascending.
	SeqIDs []int
	// Embeddings[i] holds, for supporting sequence SeqIDs[i], the
	// positions of the leftmost embedding of Items into it. Algorithm 4
	// reads Pt^k(ST) — the stay point matched to pattern position k —
	// from these.
	Embeddings [][]int
}

// Support returns the number of supporting sequences.
func (p Pattern) Support() int { return len(p.SeqIDs) }

// Config bounds the PrefixSpan search.
type Config struct {
	// MinSupport is the minimum number of supporting sequences; the
	// paper's σ.
	MinSupport int
	// MinLen and MaxLen bound the emitted pattern length. Patterns
	// shorter than MinLen are not emitted (but still extended); the
	// search never extends past MaxLen.
	MinLen int
	MaxLen int
}

// DefaultConfig mines patterns of 2–5 stays with the paper's σ = 50.
func DefaultConfig() Config { return Config{MinSupport: 50, MinLen: 2, MaxLen: 5} }

// projection is a pseudo-projected suffix: sequence seq starting at pos.
type projection struct {
	seq int
	pos int
}

// Mine runs PrefixSpan over db and returns every frequent pattern within
// the configured length bounds, ordered by descending support then by
// items. Support is counted per sequence (multiple occurrences in one
// sequence count once). It is MineWith on a single inline worker.
func Mine(db []Sequence, cfg Config) []Pattern {
	return MineWith(db, cfg, exec.Options{Workers: 1})
}

// MineWith is Mine with execution-layer options: the search tree is
// partitioned by first item and the per-item subtrees are mined on
// opt's worker pool. Each subtree is an independent DFS over its own
// projected database, and the final ordering (support descending, then
// items) is a total order over the unique pattern set, so the result is
// identical — element for element — for any worker budget; a budget of
// one reproduces the sequential DFS exactly.
func MineWith(db []Sequence, cfg Config, opt exec.Options) []Pattern {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	if cfg.MaxLen < 1 {
		return nil
	}
	projs := make([]projection, 0, len(db))
	for i := range db {
		if len(db[i]) > 0 {
			projs = append(projs, projection{seq: i, pos: 0})
		}
	}
	// Level-1 frequency count, identical to the per-node count inside
	// mine: the frequent first items become the parallel work units.
	counts := make(map[Item]int)
	for _, pr := range projs {
		seen := make(map[Item]bool)
		for _, it := range db[pr.seq][pr.pos:] {
			if !seen[it] {
				seen[it] = true
				counts[it]++
			}
		}
	}
	items := make([]Item, 0, len(counts))
	for it, c := range counts {
		if c >= cfg.MinSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })

	// Per-slot scratch holds the first-level projected database; it is
	// only read during the subtree's DFS (emit copies IDs out, deeper
	// levels project into their own slices), so reusing it across items
	// on the same slot is safe and keeps the steady state at one
	// projection buffer per worker.
	results := make([][]Pattern, len(items))
	scratch := make([][]projection, exec.Slots(opt.Workers, len(items)))
	_ = exec.ParallelForSlots(context.Background(), opt.Workers, len(items), func(slot, i int) error {
		it := items[i]
		buf := scratch[slot][:0]
		for _, pr := range projs {
			s := db[pr.seq]
			for k := pr.pos; k < len(s); k++ {
				if s[k] == it {
					buf = append(buf, projection{seq: pr.seq, pos: k + 1})
					break
				}
			}
		}
		scratch[slot] = buf
		prefix := []Item{it}
		var sub []Pattern
		if len(prefix) >= cfg.MinLen {
			sub = append(sub, emit(db, prefix, buf))
		}
		if len(prefix) < cfg.MaxLen {
			mine(db, cfg, prefix, buf, &sub)
		}
		results[i] = sub
		return nil
	})

	var out []Pattern
	for _, sub := range results {
		out = append(out, sub...)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].SeqIDs) != len(out[b].SeqIDs) {
			return len(out[a].SeqIDs) > len(out[b].SeqIDs)
		}
		return lessItems(out[a].Items, out[b].Items)
	})
	return out
}

func lessItems(a, b []Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// mine grows prefix by every locally frequent item and recurses on the
// projected database.
func mine(db []Sequence, cfg Config, prefix []Item, projs []projection, out *[]Pattern) {
	// Count, per item, the number of distinct sequences whose projected
	// suffix contains it.
	counts := make(map[Item]int)
	for _, pr := range projs {
		seen := make(map[Item]bool)
		for _, it := range db[pr.seq][pr.pos:] {
			if !seen[it] {
				seen[it] = true
				counts[it]++
			}
		}
	}
	items := make([]Item, 0, len(counts))
	for it, c := range counts {
		if c >= cfg.MinSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })

	for _, it := range items {
		newPrefix := append(append([]Item(nil), prefix...), it)
		// Project: earliest occurrence of it in each suffix.
		var newProjs []projection
		for _, pr := range projs {
			s := db[pr.seq]
			for k := pr.pos; k < len(s); k++ {
				if s[k] == it {
					newProjs = append(newProjs, projection{seq: pr.seq, pos: k + 1})
					break
				}
			}
		}
		if len(newPrefix) >= cfg.MinLen {
			*out = append(*out, emit(db, newPrefix, newProjs))
		}
		if len(newPrefix) < cfg.MaxLen {
			mine(db, cfg, newPrefix, newProjs, out)
		}
	}
}

// emit materializes a pattern: supporting sequence IDs and the leftmost
// embedding of the pattern into each.
func emit(db []Sequence, items []Item, projs []projection) Pattern {
	p := Pattern{Items: items}
	for _, pr := range projs {
		emb := leftmostEmbedding(db[pr.seq], items)
		if emb == nil {
			continue // cannot happen for a valid projection; guard anyway
		}
		p.SeqIDs = append(p.SeqIDs, pr.seq)
		p.Embeddings = append(p.Embeddings, emb)
	}
	return p
}

// leftmostEmbedding returns the positions of the leftmost subsequence
// embedding of items into seq, or nil if none exists.
func leftmostEmbedding(seq Sequence, items []Item) []int {
	emb := make([]int, 0, len(items))
	next := 0
	for _, it := range items {
		found := -1
		for k := next; k < len(seq); k++ {
			if seq[k] == it {
				found = k
				break
			}
		}
		if found < 0 {
			return nil
		}
		emb = append(emb, found)
		next = found + 1
	}
	return emb
}

// IsSubsequence reports whether pattern embeds into seq as a
// subsequence. Exported for tests and for the baselines' verification
// passes.
func IsSubsequence(seq Sequence, pattern []Item) bool {
	return leftmostEmbedding(seq, pattern) != nil
}
