package seqpattern

import "sort"

// SetSequence is a sequence whose elements are item sets, encoded as
// bitmasks. csdm uses it for semantic trajectories: each stay point's
// semantic property is a set of major-category tags.
type SetSequence []Item

// MineSets runs PrefixSpan over set-valued sequences with the
// containment matching of Definition 7 (iii): a pattern position holding
// the single-tag item x matches a sequence element e when x ∈ e. Emitted
// pattern items are single-bit masks, so a stay tagged
// {Office, Shop} supports both an Office pattern and a Shop pattern —
// exactly the superset semantics of the paper's containment relation.
//
// Support counts sequences; embeddings are leftmost, as in Mine.
func MineSets(db []SetSequence, cfg Config) []Pattern {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	if cfg.MaxLen < 1 {
		return nil
	}
	projs := make([]projection, 0, len(db))
	for i := range db {
		if len(db[i]) > 0 {
			projs = append(projs, projection{seq: i, pos: 0})
		}
	}
	var out []Pattern
	mineSets(db, cfg, nil, projs, &out)
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].SeqIDs) != len(out[b].SeqIDs) {
			return len(out[a].SeqIDs) > len(out[b].SeqIDs)
		}
		return lessItems(out[a].Items, out[b].Items)
	})
	return out
}

// setBits enumerates the single-bit masks present in a set element.
func setBits(e Item) []Item {
	var out []Item
	for v := e; v != 0; v &= v - 1 {
		out = append(out, v&-v)
	}
	return out
}

func mineSets(db []SetSequence, cfg Config, prefix []Item, projs []projection, out *[]Pattern) {
	counts := make(map[Item]int)
	for _, pr := range projs {
		var seen Item
		for _, e := range db[pr.seq][pr.pos:] {
			for _, bit := range setBits(e &^ seen) {
				counts[bit]++
			}
			seen |= e
		}
	}
	items := make([]Item, 0, len(counts))
	for it, c := range counts {
		if c >= cfg.MinSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })

	for _, it := range items {
		newPrefix := append(append([]Item(nil), prefix...), it)
		var newProjs []projection
		for _, pr := range projs {
			s := db[pr.seq]
			for k := pr.pos; k < len(s); k++ {
				if s[k]&it != 0 {
					newProjs = append(newProjs, projection{seq: pr.seq, pos: k + 1})
					break
				}
			}
		}
		if len(newPrefix) >= cfg.MinLen {
			*out = append(*out, emitSets(db, newPrefix, newProjs))
		}
		if len(newPrefix) < cfg.MaxLen {
			mineSets(db, cfg, newPrefix, newProjs, out)
		}
	}
}

func emitSets(db []SetSequence, items []Item, projs []projection) Pattern {
	p := Pattern{Items: items}
	for _, pr := range projs {
		emb := leftmostSetEmbedding(db[pr.seq], items)
		if emb == nil {
			continue
		}
		p.SeqIDs = append(p.SeqIDs, pr.seq)
		p.Embeddings = append(p.Embeddings, emb)
	}
	return p
}

// leftmostSetEmbedding returns the positions of the leftmost containment
// embedding of items into seq, or nil if none exists.
func leftmostSetEmbedding(seq SetSequence, items []Item) []int {
	emb := make([]int, 0, len(items))
	next := 0
	for _, it := range items {
		found := -1
		for k := next; k < len(seq); k++ {
			if seq[k]&it != 0 {
				found = k
				break
			}
		}
		if found < 0 {
			return nil
		}
		emb = append(emb, found)
		next = found + 1
	}
	return emb
}

// IsSetSubsequence reports whether the single-bit pattern items embed
// into seq under containment matching.
func IsSetSubsequence(seq SetSequence, pattern []Item) bool {
	return leftmostSetEmbedding(seq, pattern) != nil
}
