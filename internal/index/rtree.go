package index

import (
	"math"
	"sort"

	"csdm/internal/geo"
)

// rtreeMaxEntries is the node fan-out of the R-tree.
const rtreeMaxEntries = 16

// RTree is a static R-tree bulk-loaded with the Sort-Tile-Recursive (STR)
// algorithm. STR packing yields near-minimal overlap between sibling
// bounding boxes, so range queries touch few subtrees even on clustered
// city data. Leaf scans read coordinates out of a packed SoA store and
// use the projection's distortion band to accept or reject most
// candidates with planar math before falling back to Haversine.
type RTree struct {
	pp   *geo.PackedPoints
	proj geo.Projection
	lats latExtent
	root *rtreeNode
}

type rtreeNode struct {
	rect     geo.Rect
	children []*rtreeNode // nil for leaves
	ids      []int        // point IDs, leaves only
}

// NewRTree bulk-loads an R-tree over pts. It is a thin adapter over
// NewRTreePacked.
func NewRTree(pts []geo.Point) *RTree {
	return NewRTreePacked(geo.Pack(pts))
}

// NewRTreePacked bulk-loads an R-tree over a packed coordinate store,
// batch-projecting it at the centroid unless already projected. The
// tree aliases the store's slices; the caller must not mutate pp
// afterwards.
func NewRTreePacked(pp *geo.PackedPoints) *RTree {
	t := &RTree{pp: pp, lats: newLatExtent()}
	if pp.Len() == 0 {
		t.proj = geo.NewProjection(geo.Point{})
		return t
	}
	t.proj = pp.EnsureProjected()
	t.lats.min, t.lats.max = pp.LatBounds()
	ids := make([]int, pp.Len())
	for i := range ids {
		ids[i] = i
	}
	leaves := t.packLeaves(ids)
	t.root = t.packUpward(leaves)
	return t
}

// packLeaves tiles the points into leaf nodes of up to rtreeMaxEntries
// each: sort by longitude, slice into vertical strips, sort each strip by
// latitude, and cut into runs.
func (t *RTree) packLeaves(ids []int) []*rtreeNode {
	sort.Slice(ids, func(i, j int) bool { return t.pp.Lon[ids[i]] < t.pp.Lon[ids[j]] })
	nLeaves := (len(ids) + rtreeMaxEntries - 1) / rtreeMaxEntries
	stripCount := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	stripSize := stripCount * rtreeMaxEntries

	var leaves []*rtreeNode
	for s := 0; s < len(ids); s += stripSize {
		strip := ids[s:min(s+stripSize, len(ids))]
		sort.Slice(strip, func(i, j int) bool { return t.pp.Lat[strip[i]] < t.pp.Lat[strip[j]] })
		for o := 0; o < len(strip); o += rtreeMaxEntries {
			run := strip[o:min(o+rtreeMaxEntries, len(strip))]
			leaf := &rtreeNode{ids: append([]int(nil), run...)}
			leaf.rect = geo.Rect{Min: t.pp.At(run[0]), Max: t.pp.At(run[0])}
			for _, id := range run[1:] {
				leaf.rect = leaf.rect.Extend(t.pp.At(id))
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packUpward repeatedly groups nodes into parents until one root remains.
func (t *RTree) packUpward(nodes []*rtreeNode) *rtreeNode {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			return nodes[i].rect.Center().Lon < nodes[j].rect.Center().Lon
		})
		nParents := (len(nodes) + rtreeMaxEntries - 1) / rtreeMaxEntries
		stripCount := int(math.Ceil(math.Sqrt(float64(nParents))))
		stripSize := stripCount * rtreeMaxEntries

		var parents []*rtreeNode
		for s := 0; s < len(nodes); s += stripSize {
			strip := nodes[s:min(s+stripSize, len(nodes))]
			sort.Slice(strip, func(i, j int) bool {
				return strip[i].rect.Center().Lat < strip[j].rect.Center().Lat
			})
			for o := 0; o < len(strip); o += rtreeMaxEntries {
				run := strip[o:min(o+rtreeMaxEntries, len(strip))]
				parent := &rtreeNode{children: append([]*rtreeNode(nil), run...)}
				parent.rect = run[0].rect
				for _, ch := range run[1:] {
					parent.rect = parent.rect.Union(ch.rect)
				}
				parents = append(parents, parent)
			}
		}
		nodes = parents
	}
	return nodes[0]
}

// Len implements Index.
func (t *RTree) Len() int { return t.pp.Len() }

// Within implements Index.
func (t *RTree) Within(center geo.Point, radius float64) []int {
	return t.WithinAppend(center, radius, nil)
}

// WithinAppend implements Index: the IDs within radius of center are
// appended to buf and the extended slice is returned. See the Index
// documentation for the aliasing contract.
func (t *RTree) WithinAppend(center geo.Point, radius float64, buf []int) []int {
	if t.root == nil || radius < 0 {
		return buf
	}
	box := geo.CircleRect(center, radius)
	// When the built extent admits a sound distortion band for this
	// query, leaf candidates clearly inside or outside by the planar
	// metric skip the exact spherical check; only the boundary shell
	// pays for Haversine. Band membership agrees with Haversine, so the
	// appended IDs — and their order — are unchanged. Without a band
	// (hull touches a pole, continent-scale radius) every leaf candidate
	// is tested on the sphere, exactly as before.
	lo, hi, ok := t.lats.bounds(t.proj.CosLat(), center.Lat, radius)
	if !ok {
		t.search(t.root, box, center, radius, &buf)
		return buf
	}
	c := t.proj.ToMeters(center)
	t.searchBand(t.root, box, center, c, radius, radius*lo, radius*hi, &buf)
	return buf
}

func (t *RTree) search(n *rtreeNode, box geo.Rect, center geo.Point, radius float64, out *[]int) {
	if !n.rect.Intersects(box) {
		return
	}
	if n.children == nil {
		for _, id := range n.ids {
			if geo.Haversine(center, t.pp.At(id)) <= radius {
				*out = append(*out, id)
			}
		}
		return
	}
	for _, ch := range n.children {
		t.search(ch, box, center, radius, out)
	}
}

// searchBand is search with the planar fast path: candidates at planar
// distance ≤ rLo are accepted and > rHi rejected without touching
// Haversine; the planar distances stream out of the packed X/Y slices.
func (t *RTree) searchBand(n *rtreeNode, box geo.Rect, center geo.Point, c geo.Meters, radius, rLo, rHi float64, out *[]int) {
	if !n.rect.Intersects(box) {
		return
	}
	if n.children == nil {
		px, py := t.pp.X, t.pp.Y
		for _, id := range n.ids {
			dx := px[id] - c.X
			dy := py[id] - c.Y
			d := math.Sqrt(dx*dx + dy*dy)
			switch {
			case d <= rLo:
				*out = append(*out, id)
			case d > rHi:
			case geo.Haversine(center, t.pp.At(id)) <= radius:
				*out = append(*out, id)
			}
		}
		return
	}
	for _, ch := range n.children {
		t.searchBand(ch, box, center, c, radius, rLo, rHi, out)
	}
}

// Nearest implements Index using best-first branch-and-bound over node
// rectangles.
func (t *RTree) Nearest(q geo.Point, k int) []int {
	if t.root == nil || k <= 0 {
		return nil
	}
	if k > t.pp.Len() {
		k = t.pp.Len()
	}
	h := make(maxHeap, 0, k+1)
	t.knn(t.root, q, k, &h)
	return h.sortedIDs()
}

func (t *RTree) knn(n *rtreeNode, q geo.Point, k int, h *maxHeap) {
	if len(*h) == k && rectMinDist(q, n.rect) > h.worst() {
		return
	}
	if n.children == nil {
		for _, id := range n.ids {
			h.offer(heapItem{id: id, dist: geo.Haversine(q, t.pp.At(id))}, k)
		}
		return
	}
	// Visit children nearest-first so the heap tightens quickly.
	order := make([]int, len(n.children))
	dists := make([]float64, len(n.children))
	for i, ch := range n.children {
		order[i] = i
		dists[i] = rectMinDist(q, ch.rect)
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	for _, i := range order {
		t.knn(n.children[i], q, k, h)
	}
}

// rectMinDist returns the minimum Haversine distance from q to the
// lon/lat rectangle r — the pruning lower bound of the kNN search.
//
// Plain coordinate clamping is only correct on a flat map: on the
// sphere the closest point of a meridian edge to q is not at q's
// latitude but at the foot of the great-circle perpendicular,
// tan φ_f = tan φ_q / cos Δλ, which diverges from the clamp latitude at
// high latitudes and once overestimated the bound enough to prune nodes
// holding true neighbors.
func rectMinDist(q geo.Point, r geo.Rect) float64 {
	if r.Contains(q) {
		return 0
	}
	if q.Lon >= r.Min.Lon && q.Lon <= r.Max.Lon {
		// Haversine is monotone in |Δφ| at fixed longitude, so the
		// nearest rect point shares q's longitude on the closer parallel
		// edge.
		lat := math.Max(r.Min.Lat, math.Min(q.Lat, r.Max.Lat))
		return geo.Haversine(q, geo.Point{Lon: q.Lon, Lat: lat})
	}
	// q lies beyond a meridian edge; Haversine is monotone in |Δλ| at
	// fixed latitude, so the minimizer sits on the nearer edge. Its
	// latitude is either an edge endpoint or the perpendicular foot.
	edgeLon := math.Max(r.Min.Lon, math.Min(q.Lon, r.Max.Lon))
	best := math.Min(
		geo.Haversine(q, geo.Point{Lon: edgeLon, Lat: r.Min.Lat}),
		geo.Haversine(q, geo.Point{Lon: edgeLon, Lat: r.Max.Lat}),
	)
	dLon := math.Abs(q.Lon-edgeLon) * math.Pi / 180
	if cosD := math.Cos(dLon); cosD > 0 {
		foot := math.Atan(math.Tan(q.Lat*math.Pi/180)/cosD) * 180 / math.Pi
		if foot > r.Min.Lat && foot < r.Max.Lat {
			best = math.Min(best, geo.Haversine(q, geo.Point{Lon: edgeLon, Lat: foot}))
		}
	}
	return best
}
