package index

import (
	"math/rand"
	"testing"

	"csdm/internal/geo"
)

// backendKinds lists every Kind the factory can build, so conformance
// coverage automatically extends when a backend is added.
var backendKinds = []Kind{KindGrid, KindKDTree, KindRTree}

// TestBackendConformance cross-checks the three backends against each
// other on random point sets: for any query, Within must return the
// same id set, Nearest the same ordered ids, and Len the same count.
// The grid is built through the factory so the CellHint path is the
// one exercised, exactly as production call sites use it.
func TestBackendConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(400)
		extent := 200 + rng.Float64()*3000
		pts := randomPoints(rng, n, extent)
		radius := rng.Float64() * extent

		idxs := make([]Index, len(backendKinds))
		for i, kind := range backendKinds {
			idxs[i] = New(kind, pts, radius)
		}
		for _, idx := range idxs {
			if idx.Len() != n {
				t.Fatalf("trial %d: Len = %d, want %d", trial, idx.Len(), n)
			}
		}

		for q := 0; q < 10; q++ {
			center := randomPoints(rng, 1, extent*1.2)[0]
			want := sortedCopy(idxs[0].Within(center, radius))
			for i, idx := range idxs[1:] {
				got := sortedCopy(idx.Within(center, radius))
				if !equalIDs(got, want) {
					t.Fatalf("trial %d: Within(%v, %.1f): %s = %v, %s = %v",
						trial, center, radius, backendKinds[i+1], got, backendKinds[0], want)
				}
			}

			k := rng.Intn(n + 2)
			wantNear := idxs[0].Nearest(center, k)
			for i, idx := range idxs[1:] {
				got := idx.Nearest(center, k)
				if !equalIDs(got, wantNear) {
					t.Fatalf("trial %d: Nearest(%v, %d): %s = %v, %s = %v",
						trial, center, k, backendKinds[i+1], got, backendKinds[0], wantNear)
				}
			}
		}
	}
}

// TestBackendConformanceEdges pins the degenerate queries every backend
// must agree on: an empty point set, a zero radius, and k beyond the
// set size.
func TestBackendConformanceEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 50, 500)

	for _, kind := range backendKinds {
		empty := New(kind, nil, 100)
		if empty.Len() != 0 {
			t.Errorf("%s: empty Len = %d, want 0", kind, empty.Len())
		}
		if got := empty.Within(origin, 1e6); len(got) != 0 {
			t.Errorf("%s: empty Within = %v, want none", kind, got)
		}
		if got := empty.Nearest(origin, 3); len(got) != 0 {
			t.Errorf("%s: empty Nearest = %v, want none", kind, got)
		}

		idx := New(kind, pts, 0)
		// Radius 0 hits exactly the points coincident with the center:
		// the queried point itself, and nothing for an off-set center.
		if got := idx.Within(pts[7], 0); !equalIDs(sortedCopy(got), []int{7}) {
			t.Errorf("%s: Within(pts[7], 0) = %v, want [7]", kind, got)
		}
		off := geo.Point{Lon: origin.Lon + 1, Lat: origin.Lat + 1}
		if got := idx.Within(off, 0); len(got) != 0 {
			t.Errorf("%s: Within(off, 0) = %v, want none", kind, got)
		}
		if got := idx.Nearest(pts[0], len(pts)+10); len(got) != len(pts) {
			t.Errorf("%s: Nearest k>n returned %d ids, want %d", kind, len(got), len(pts))
		}
		if got := idx.Nearest(pts[0], 0); len(got) != 0 {
			t.Errorf("%s: Nearest k=0 = %v, want none", kind, got)
		}
	}
}
