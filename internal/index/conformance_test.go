package index

import (
	"math/rand"
	"testing"

	"csdm/internal/geo"
)

// backendKinds lists every Kind the factory can build, so conformance
// coverage automatically extends when a backend is added.
var backendKinds = []Kind{KindGrid, KindKDTree, KindRTree}

// TestBackendConformance cross-checks the three backends against each
// other on random point sets: for any query, Within must return the
// same id set, Nearest the same ordered ids, and Len the same count.
// The grid is built through the factory so the CellHint path is the
// one exercised, exactly as production call sites use it.
func TestBackendConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(400)
		extent := 200 + rng.Float64()*3000
		pts := randomPoints(rng, n, extent)
		radius := rng.Float64() * extent

		idxs := make([]Index, len(backendKinds))
		for i, kind := range backendKinds {
			idxs[i] = New(kind, pts, radius)
		}
		for _, idx := range idxs {
			if idx.Len() != n {
				t.Fatalf("trial %d: Len = %d, want %d", trial, idx.Len(), n)
			}
		}

		for q := 0; q < 10; q++ {
			center := randomPoints(rng, 1, extent*1.2)[0]
			want := sortedCopy(idxs[0].Within(center, radius))
			for i, idx := range idxs[1:] {
				got := sortedCopy(idx.Within(center, radius))
				if !equalIDs(got, want) {
					t.Fatalf("trial %d: Within(%v, %.1f): %s = %v, %s = %v",
						trial, center, radius, backendKinds[i+1], got, backendKinds[0], want)
				}
			}

			k := rng.Intn(n + 2)
			wantNear := idxs[0].Nearest(center, k)
			for i, idx := range idxs[1:] {
				got := idx.Nearest(center, k)
				if !equalIDs(got, wantNear) {
					t.Fatalf("trial %d: Nearest(%v, %d): %s = %v, %s = %v",
						trial, center, k, backendKinds[i+1], got, backendKinds[0], wantNear)
				}
			}
		}
	}
}

// randomPointsAt scatters n points within about extent meters of c.
func randomPointsAt(rng *rand.Rand, c geo.Point, n int, extent float64) []geo.Point {
	pr := geo.NewProjection(c)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = pr.ToPoint(geo.Meters{
			X: (rng.Float64()*2 - 1) * extent,
			Y: (rng.Float64()*2 - 1) * extent,
		})
	}
	return pts
}

// TestBackendConformanceHighLatitude cross-checks all backends against
// brute force on high-latitude (|lat| ≥ 60°) and country-scale point
// sets with query centers up to 2.5× outside the built extent. At
// these latitudes the planar projection's longitude scale differs by
// percent-level factors across the extent, so any fixed planar
// accept/reject band (the pre-fix grid used ±0.5%) or any fixed planar
// pruning inflation (the pre-fix k-d tree used 1%) mis-classifies
// boundary points; the distortion bound must be derived from the built
// extent instead.
func TestBackendConformanceHighLatitude(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	centers := []geo.Point{
		{Lon: 24.94, Lat: 60.17},
		{Lon: 18.95, Lat: 69.65},
		{Lon: -68.3, Lat: -72.0},
		{Lon: 24.0, Lat: 80.0},
	}
	for ci, c := range centers {
		for trial := 0; trial < 4; trial++ {
			n := 100 + rng.Intn(150)
			extent := 50e3 + rng.Float64()*250e3 // country scale
			pts := randomPointsAt(rng, c, n, extent)
			radius := (0.2 + rng.Float64()) * extent
			for _, kind := range backendKinds {
				idx := New(kind, pts, radius)
				for q := 0; q < 6; q++ {
					qc := randomPointsAt(rng, c, 1, extent*2.5)[0]
					want := sortedCopy(bruteWithin(pts, qc, radius))
					got := sortedCopy(idx.Within(qc, radius))
					if !equalIDs(got, want) {
						t.Fatalf("center %d trial %d: %s.Within(%v, %.0f) missed/extra ids:\ngot  %v\nwant %v",
							ci, trial, kind, qc, radius, got, want)
					}
					k := 1 + rng.Intn(8)
					wantNear := bruteNearest(pts, qc, k)
					gotNear := idx.Nearest(qc, k)
					if !equalIDs(gotNear, wantNear) {
						t.Fatalf("center %d trial %d: %s.Nearest(%v, %d) = %v, want %v",
							ci, trial, kind, qc, k, gotNear, wantNear)
					}
				}
			}
		}
	}
}

// TestBackendConformanceDistortionBoundary pins the exact failure mode
// of the old fixed ±0.5% planar band. The built extent spans lat 60°–
// 61°, anchoring the index projection near lat 60.5°, while query and
// candidates sit at lat 60°: planar distances there read ≈1.5% short of
// true (cos 60.5° / cos 60° ≈ 0.985), so a candidate at true distance
// 1.005r showed a planar distance ≈0.99r — inside the old fast-accept
// band, outside the circle. Candidates straddle the radius in 0.5%
// steps; every backend must classify each exactly as Haversine does.
func TestBackendConformanceDistortionBoundary(t *testing.T) {
	anchor := geo.Point{Lon: 25, Lat: 60}
	pr := geo.NewProjection(anchor)
	var pts []geo.Point
	// Extent-setting points at lat 61, spaced so no two are symmetric
	// about the query longitude (symmetric pairs tie in distance and the
	// backends may legitimately order a tie either way).
	for i := 0; i < 20; i++ {
		pts = append(pts, geo.Point{Lon: 24.41 + 0.053*float64(i), Lat: 61})
	}
	const r = 20000.0
	for _, f := range []float64{0.975, 0.985, 0.99, 0.995, 1.005, 1.01, 1.015, 1.025} {
		// A point f·r meters due east of the anchor: its true distance is
		// f·r to within curvature slack ~1e-5·r, far from the ±0.5% steps.
		pts = append(pts, pr.ToPoint(geo.Meters{X: r * f}))
	}
	want := sortedCopy(bruteWithin(pts, anchor, r))
	if len(want) == 0 || len(want) == len(pts) {
		t.Fatalf("degenerate construction: brute force found %d of %d", len(want), len(pts))
	}
	for _, kind := range backendKinds {
		idx := New(kind, pts, r)
		got := sortedCopy(idx.Within(anchor, r))
		if !equalIDs(got, want) {
			t.Errorf("%s.Within at distortion boundary = %v, want %v", kind, got, want)
		}
		for k := 1; k <= len(pts); k += 5 {
			wantNear := bruteNearest(pts, anchor, k)
			if gotNear := idx.Nearest(anchor, k); !equalIDs(gotNear, wantNear) {
				t.Errorf("%s.Nearest(anchor, %d) = %v, want %v", kind, k, gotNear, wantNear)
			}
		}
	}
}

// TestBackendConformanceNearPole exercises the exact-fallback paths: a
// point set close enough to the pole that no sound distortion bound
// exists (cos of the hull's extreme latitude under the floor), where
// every backend must degrade to exact spherical testing and still match
// brute force.
func TestBackendConformanceNearPole(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var pts []geo.Point
	for i := 0; i < 120; i++ {
		pts = append(pts, geo.Point{
			Lon: -80 + rng.Float64()*160,
			Lat: 89.9 + rng.Float64()*0.09,
		})
	}
	queries := []geo.Point{
		{Lon: 0, Lat: 89.95},
		{Lon: 60, Lat: 89.92},
		{Lon: -45, Lat: 89.5}, // below the set, still inside the cap region
	}
	for _, radius := range []float64{2e3, 10e3, 60e3} {
		for _, kind := range backendKinds {
			idx := New(kind, pts, radius)
			for _, qc := range queries {
				want := sortedCopy(bruteWithin(pts, qc, radius))
				got := sortedCopy(idx.Within(qc, radius))
				if !equalIDs(got, want) {
					t.Fatalf("%s.Within(%v, %.0f) near pole = %v, want %v", kind, qc, radius, got, want)
				}
			}
		}
	}
}

// TestWithinAppendMatchesWithin is the equivalence property of the
// buffered query path: for any query, WithinAppend must append exactly
// Within's id set after the caller's existing elements, leave the
// prefix intact, and stay correct when the same buffer is reused across
// queries of different sizes.
func TestWithinAppendMatchesWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(rng, 300, 2000)
	for _, kind := range backendKinds {
		idx := New(kind, pts, 150)
		var buf []int
		for q := 0; q < 60; q++ {
			center := randomPoints(rng, 1, 2500)[0]
			radius := rng.Float64() * 500
			want := idx.Within(center, radius)
			buf = append(buf[:0], -7, -8) // sentinel prefix from "earlier" use
			got := idx.WithinAppend(center, radius, buf)
			if len(got) != len(want)+2 || got[0] != -7 || got[1] != -8 {
				t.Fatalf("%s: WithinAppend disturbed the prefix: got %v", kind, got)
			}
			if !equalIDs(sortedCopy(got[2:]), sortedCopy(want)) {
				t.Fatalf("%s: WithinAppend suffix %v != Within %v", kind, got[2:], want)
			}
			buf = got
		}
		if got := idx.WithinAppend(origin, -1, []int{42}); len(got) != 1 || got[0] != 42 {
			t.Errorf("%s: WithinAppend with negative radius = %v, want [42]", kind, got)
		}
	}
}

// TestNewGridTinyCellWideExtent is the overflow regression test: a 10°
// span with 0.1 mm cells wants ~10¹⁰ cells per axis, whose product
// overflows int64. The pre-fix constructor multiplied cols·rows before
// the dense-table check, so the wrapped (negative) product slipped past
// the threshold and the table allocation paniced. The fixed constructor
// grows the cell size to the per-axis cap and checks the axes before
// multiplying, landing in the sparse map.
func TestNewGridTinyCellWideExtent(t *testing.T) {
	pts := []geo.Point{
		{Lon: 20, Lat: 30},
		{Lon: 30, Lat: 40},
		{Lon: 25, Lat: 35},
	}
	g := NewGrid(pts, 1e-4)
	if g.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(pts))
	}
	for i, p := range pts {
		if got := sortedCopy(g.Within(p, 1000)); !equalIDs(got, []int{i}) {
			t.Errorf("Within(pts[%d], 1km) = %v, want [%d]", i, got, i)
		}
	}
	if got := g.Nearest(pts[2], 3); len(got) != 3 || got[0] != 2 {
		t.Errorf("Nearest(pts[2], 3) = %v, want [2 ...]", got)
	}
	if got := sortedCopy(g.Within(geo.Point{Lon: 25, Lat: 35}, 2e6)); !equalIDs(got, []int{0, 1, 2}) {
		t.Errorf("wide Within = %v, want [0 1 2]", got)
	}
}

// TestBackendConformanceEdges pins the degenerate queries every backend
// must agree on: an empty point set, a zero radius, and k beyond the
// set size.
func TestBackendConformanceEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 50, 500)

	for _, kind := range backendKinds {
		empty := New(kind, nil, 100)
		if empty.Len() != 0 {
			t.Errorf("%s: empty Len = %d, want 0", kind, empty.Len())
		}
		if got := empty.Within(origin, 1e6); len(got) != 0 {
			t.Errorf("%s: empty Within = %v, want none", kind, got)
		}
		if got := empty.Nearest(origin, 3); len(got) != 0 {
			t.Errorf("%s: empty Nearest = %v, want none", kind, got)
		}

		idx := New(kind, pts, 0)
		// Radius 0 hits exactly the points coincident with the center:
		// the queried point itself, and nothing for an off-set center.
		if got := idx.Within(pts[7], 0); !equalIDs(sortedCopy(got), []int{7}) {
			t.Errorf("%s: Within(pts[7], 0) = %v, want [7]", kind, got)
		}
		off := geo.Point{Lon: origin.Lon + 1, Lat: origin.Lat + 1}
		if got := idx.Within(off, 0); len(got) != 0 {
			t.Errorf("%s: Within(off, 0) = %v, want none", kind, got)
		}
		if got := idx.Nearest(pts[0], len(pts)+10); len(got) != len(pts) {
			t.Errorf("%s: Nearest k>n returned %d ids, want %d", kind, len(got), len(pts))
		}
		if got := idx.Nearest(pts[0], 0); len(got) != 0 {
			t.Errorf("%s: Nearest k=0 = %v, want none", kind, got)
		}
	}
}
