package index

import (
	"sort"

	"csdm/internal/geo"
)

// KDTree is a static 2-d tree over planar-projected points. It offers
// logarithmic point queries regardless of how skewed the data is, which
// makes it the robust default when point density varies wildly (e.g.
// dense downtown vs. empty suburbs). Coordinates live in a packed SoA
// store, so node visits read the contiguous planar X/Y slices.
type KDTree struct {
	pp   *geo.PackedPoints
	proj geo.Projection
	lats latExtent
	// nodes are stored as a flattened median-split tree: ids holds point
	// IDs in tree order, and each recursion level alternates the split
	// axis. left/right boundaries are implicit in the recursion.
	ids []int
}

// NewKDTree builds a k-d tree over pts. It is a thin adapter over
// NewKDTreePacked.
func NewKDTree(pts []geo.Point) *KDTree {
	return NewKDTreePacked(geo.Pack(pts))
}

// NewKDTreePacked builds a k-d tree over a packed coordinate store,
// batch-projecting it at the centroid unless already projected. The
// tree aliases the store's slices; the caller must not mutate pp
// afterwards.
func NewKDTreePacked(pp *geo.PackedPoints) *KDTree {
	t := &KDTree{pp: pp, lats: newLatExtent()}
	if pp.Len() == 0 {
		t.proj = geo.NewProjection(geo.Point{})
		return t
	}
	t.proj = pp.EnsureProjected()
	t.lats.min, t.lats.max = pp.LatBounds()
	t.ids = make([]int, pp.Len())
	for i := range t.ids {
		t.ids[i] = i
	}
	t.build(0, len(t.ids), 0)
	return t
}

// build arranges ids[lo:hi] so that the median by the current axis sits
// at the middle position, then recurses into both halves.
func (t *KDTree) build(lo, hi, axis int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	t.selectNth(lo, hi, mid, axis)
	t.build(lo, mid, 1-axis)
	t.build(mid+1, hi, 1-axis)
}

// selectNth partially sorts ids[lo:hi] so ids[n] holds the element of
// rank n by the given axis (a quickselect would do; sort keeps the code
// simple and build time is amortized over many queries).
func (t *KDTree) selectNth(lo, hi, n, axis int) {
	s := t.ids[lo:hi]
	sort.Slice(s, func(i, j int) bool {
		return t.coord(s[i], axis) < t.coord(s[j], axis)
	})
	_ = n
}

func (t *KDTree) coord(id, axis int) float64 {
	if axis == 0 {
		return t.pp.X[id]
	}
	return t.pp.Y[id]
}

// Len implements Index.
func (t *KDTree) Len() int { return t.pp.Len() }

// Within implements Index.
func (t *KDTree) Within(center geo.Point, radius float64) []int {
	return t.WithinAppend(center, radius, nil)
}

// WithinAppend implements Index: the IDs within radius of center are
// appended to buf and the extended slice is returned. See the Index
// documentation for the aliasing contract.
func (t *KDTree) WithinAppend(center geo.Point, radius float64, buf []int) []int {
	if t.pp.Len() == 0 || radius < 0 {
		return buf
	}
	// The plane tests prune in planar space while membership is decided
	// on the sphere, so the prune radius must absorb the projection's
	// distortion over the built extent. When no sound bound exists the
	// query degrades to exact spherical testing of every point.
	f, ok := t.lats.inflation(t.proj.CosLat(), center.Lat, radius)
	if !ok {
		for id := 0; id < t.pp.Len(); id++ {
			if geo.Haversine(center, t.pp.At(id)) <= radius {
				buf = append(buf, id)
			}
		}
		return buf
	}
	c := t.proj.ToMeters(center)
	prune := radius*f + 1e-9
	t.rangeSearch(0, len(t.ids), 0, c, prune, radius, center, &buf)
	return buf
}

func (t *KDTree) rangeSearch(lo, hi, axis int, c geo.Meters, prune, radius float64, center geo.Point, out *[]int) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	id := t.ids[mid]
	// Exact test on the sphere; the planar tree only prunes.
	if geo.Haversine(center, t.pp.At(id)) <= radius {
		*out = append(*out, id)
	}
	split := t.coord(id, axis)
	var qc float64
	if axis == 0 {
		qc = c.X
	} else {
		qc = c.Y
	}
	if qc-prune <= split {
		t.rangeSearch(lo, mid, 1-axis, c, prune, radius, center, out)
	}
	if qc+prune >= split {
		t.rangeSearch(mid+1, hi, 1-axis, c, prune, radius, center, out)
	}
}

// Nearest implements Index.
func (t *KDTree) Nearest(q geo.Point, k int) []int {
	if k <= 0 || t.pp.Len() == 0 {
		return nil
	}
	if k > t.pp.Len() {
		k = t.pp.Len()
	}
	c := t.proj.ToMeters(q)
	h := make(maxHeap, 0, k+1)
	t.knnSearch(0, len(t.ids), 0, c, q, k, &h)
	return h.sortedIDs()
}

func (t *KDTree) knnSearch(lo, hi, axis int, c geo.Meters, q geo.Point, k int, h *maxHeap) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	id := t.ids[mid]
	h.offer(heapItem{id: id, dist: geo.Haversine(q, t.pp.At(id))}, k)

	split := t.coord(id, axis)
	var qc float64
	if axis == 0 {
		qc = c.X
	} else {
		qc = c.Y
	}
	near, far := lo, mid
	nearHi, farHi := mid, hi
	if qc > split {
		near, nearHi = mid+1, hi
		far, farHi = lo, mid
	} else {
		near, nearHi = lo, mid
		far, farHi = mid+1, hi
	}
	t.knnSearch(near, nearHi, 1-axis, c, q, k, h)
	// Visit the far side only if the splitting plane is closer than the
	// current worst candidate. The plane distance is planar, the heap
	// spherical: any point beating the worst lies within worst true
	// meters, so its planar distance — and hence the plane's — is at
	// most worst times the extent's distortion factor. Without a sound
	// factor the far side is always visited.
	planeDist := (qc - split)
	if planeDist < 0 {
		planeDist = -planeDist
	}
	visit := len(*h) < k
	if !visit {
		if f, ok := t.lats.inflation(t.proj.CosLat(), q.Lat, h.worst()); ok {
			visit = planeDist <= h.worst()*f+1e-9
		} else {
			visit = true
		}
	}
	if visit {
		t.knnSearch(far, farHi, 1-axis, c, q, k, h)
	}
}
