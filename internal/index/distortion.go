package index

import (
	"math"

	"csdm/internal/geo"
)

// latExtent is the latitude hull of an index's point set, tracked at
// build time. The equirectangular projection the grid and k-d tree
// query through scales longitudes by the cosine of the projection
// origin's latitude, while the true spherical metric scales them by the
// cosine of the latitudes actually involved in a pair. The hull bounds
// that mismatch, letting each query derive a sound planar-vs-true
// distance band instead of assuming the fixed city-scale ±0.5% the
// pre-fix code hardcoded (which silently broke the Within contract on
// high-latitude or country-scale inputs).
type latExtent struct {
	min, max float64 // degrees
}

func newLatExtent() latExtent {
	return latExtent{min: math.Inf(1), max: math.Inf(-1)}
}

func (e *latExtent) add(lat float64) {
	if lat < e.min {
		e.min = lat
	}
	if lat > e.max {
		e.max = lat
	}
}

// distortionSlackLimit is the largest curvature slack a query accepts
// before planar pruning is abandoned for exact spherical testing. Past
// a few percent the planar band is so wide that pruning saves little.
const distortionSlackLimit = 0.05

// distortionCosFloor rejects hulls touching the poles, where the
// longitude scale degenerates and no finite planar band is sound.
const distortionCosFloor = 1e-3

// hullCos returns the extreme values of cos(lat) over the hull extended
// with the query latitude.
func (e latExtent) hullCos(queryLat float64) (cosMin, cosMax float64) {
	latLo := math.Min(e.min, queryLat)
	latHi := math.Max(e.max, queryLat)
	cosA := math.Cos(latLo * math.Pi / 180)
	cosB := math.Cos(latHi * math.Pi / 180)
	cosMin = math.Min(cosA, cosB)
	cosMax = math.Max(cosA, cosB)
	if latLo <= 0 && latHi >= 0 {
		cosMax = 1 // the equator is in the hull
	}
	return cosMin, cosMax
}

// distortionSlack bounds the higher-order (curvature) error of the
// equirectangular approximation for pairs within true distance d whose
// latitudes stay in a hull with minimum cosine cosMin. The leading
// neglected terms are O(Δλ²) and O(Δφ²) with coefficients below 1/8;
// dividing by 4 keeps a ≥2× margin.
func distortionSlack(d, cosMin float64) float64 {
	ang := d / geo.EarthRadiusMeters
	angLon := ang / cosMin
	return (angLon*angLon + ang*ang) / 4
}

// bounds returns lo, hi such that every pair (query center, indexed
// point) within true spherical distance ≈ radius satisfies
//
//	lo · true ≤ planar ≤ hi · true,
//
// where planar is the equirectangular distance under a projection whose
// longitude scale is cosOrigin. ok is false when no sound finite band
// exists (hull touches a pole, or the radius is so large relative to
// the hull latitudes that curvature slack exceeds the limit); callers
// must then fall back to exact spherical testing.
func (e latExtent) bounds(cosOrigin, queryLat, radius float64) (lo, hi float64, ok bool) {
	cosMin, cosMax := e.hullCos(queryLat)
	if cosMin <= distortionCosFloor {
		return 0, 0, false
	}
	slack := distortionSlack(radius, cosMin)
	if slack > distortionSlackLimit {
		return 0, 0, false
	}
	// Pairs separated along a meridian have ratio 1 regardless of the
	// longitude scale, so the band always brackets 1.
	lo = math.Min(cosOrigin/cosMax, 1) * (1 - slack)
	hi = math.Max(cosOrigin/cosMin, 1) * (1 + slack)
	return lo, hi, true
}

// inflation returns a factor f with planar ≤ f · true for pairs within
// true distance d, or ok=false when no finite factor is sound. Tree
// backends multiply pruning thresholds by it so a planar plane or cell
// distance never discards a true hit.
func (e latExtent) inflation(cosOrigin, queryLat, d float64) (float64, bool) {
	cosMin, _ := e.hullCos(queryLat)
	if cosMin <= distortionCosFloor {
		return 0, false
	}
	slack := distortionSlack(d, cosMin)
	if slack > distortionSlackLimit {
		return 0, false
	}
	return math.Max(cosOrigin/cosMin, 1) * (1 + slack), true
}
