package index

import (
	"math"

	"csdm/internal/geo"
)

// Grid is a uniform grid index. Points are bucketed into square cells of
// a fixed size in a local metric projection; range queries visit only the
// cells overlapping the query circle's bounding box. For the paper's
// city-scale workloads with short radii (ε_p = 30 m, R3σ = 100 m) this is
// the fastest of the three indexes.
//
// The grid scans coordinates through a packed SoA store: candidate
// tests read the contiguous planar X/Y slices sequentially instead of
// chasing []Point/[]Meters elements, so cell sweeps run cache-dense.
type Grid struct {
	pp       *geo.PackedPoints
	proj     geo.Projection
	lats     latExtent
	cellSize float64
	minX     float64
	minY     float64
	cols     int
	rows     int
	// Cells are stored contiguously: ids holds point IDs grouped by
	// cell, cellStart[c]..cellStart[c+1] delimiting cell c. When the
	// grid would need more than maxDenseCells cells, the sparse map is
	// used instead.
	ids       []int
	cellStart []int
	sparse    map[int][]int
}

// maxDenseCells bounds the contiguous cell table; beyond it the grid
// falls back to a sparse map (huge extents with tiny cells).
const maxDenseCells = 1 << 22

// maxGridDim caps the cell count of a single axis. Keeping each axis
// under 2³¹ guarantees the combined cell key cy·cols+cx fits a 64-bit
// int, so sparse keys stay unique even for extreme extent/cell-size
// combinations; the cell size is grown to fit when a caller's hint
// would exceed the cap.
const maxGridDim = 1 << 31

// NewGrid builds a grid over pts with the given cell size in meters.
// A non-positive cellSize defaults to 100 m. It is a thin adapter over
// NewGridPacked.
func NewGrid(pts []geo.Point, cellSize float64) *Grid {
	return NewGridPacked(geo.Pack(pts), cellSize)
}

// NewGridPacked builds a grid over a packed coordinate store, batch-
// projecting it at the centroid unless already projected. The grid
// aliases the store's slices; the caller must not mutate pp afterwards.
func NewGridPacked(pp *geo.PackedPoints, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 100
	}
	g := &Grid{
		pp:       pp,
		cellSize: cellSize,
		lats:     newLatExtent(),
	}
	if pp.Len() == 0 {
		g.proj = geo.NewProjection(geo.Point{})
		return g
	}
	g.proj = pp.EnsureProjected()
	g.lats.min, g.lats.max = pp.LatBounds()
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range pp.X {
		minX = math.Min(minX, pp.X[i])
		minY = math.Min(minY, pp.Y[i])
		maxX = math.Max(maxX, pp.X[i])
		maxY = math.Max(maxY, pp.Y[i])
	}
	g.minX, g.minY = minX, minY
	// A tiny cell size over a wide extent must not overflow the cell
	// arithmetic: grow the cells until both axes fit the per-axis cap.
	// The axis dimensions are then checked against the dense-table
	// budget BEFORE multiplying them — cols·rows itself can exceed an
	// int for extents the per-axis cap still allows.
	if span := math.Max(maxX-minX, maxY-minY); span/g.cellSize >= maxGridDim-1 {
		g.cellSize = span / (maxGridDim - 2)
	}
	g.cols = int((maxX-minX)/g.cellSize) + 1
	g.rows = int((maxY-minY)/g.cellSize) + 1

	n := pp.Len()
	if g.cols <= maxDenseCells && g.rows <= maxDenseCells/g.cols {
		// Counting-sort the points into a contiguous cell table.
		nCells := g.cols * g.rows
		g.cellStart = make([]int, nCells+1)
		keys := make([]int, n)
		for i := 0; i < n; i++ {
			keys[i] = g.cellKey(pp.X[i], pp.Y[i])
			g.cellStart[keys[i]+1]++
		}
		for c := 0; c < nCells; c++ {
			g.cellStart[c+1] += g.cellStart[c]
		}
		g.ids = make([]int, n)
		fill := make([]int, nCells)
		for i, k := range keys {
			g.ids[g.cellStart[k]+fill[k]] = i
			fill[k]++
		}
	} else {
		g.sparse = make(map[int][]int)
		for i := 0; i < n; i++ {
			k := g.cellKey(pp.X[i], pp.Y[i])
			g.sparse[k] = append(g.sparse[k], i)
		}
	}
	return g
}

// cell returns the point IDs of cell key k.
func (g *Grid) cell(k int) []int {
	if g.cellStart != nil {
		return g.ids[g.cellStart[k]:g.cellStart[k+1]]
	}
	return g.sparse[k]
}

func (g *Grid) cellCoords(x, y float64) (cx, cy int) {
	cx = int((x - g.minX) / g.cellSize)
	cy = int((y - g.minY) / g.cellSize)
	return cx, cy
}

func (g *Grid) cellKey(x, y float64) int {
	cx, cy := g.cellCoords(x, y)
	return cy*g.cols + cx
}

// Len implements Index.
func (g *Grid) Len() int { return g.pp.Len() }

// Within implements Index.
func (g *Grid) Within(center geo.Point, radius float64) []int {
	return g.WithinAppend(center, radius, nil)
}

// WithinAppend implements Index: the IDs within radius of center are
// appended to buf and the extended slice is returned. See the Index
// documentation for the aliasing contract.
func (g *Grid) WithinAppend(center geo.Point, radius float64, buf []int) []int {
	if g.pp.Len() == 0 || radius < 0 {
		return buf
	}
	// The planar fast path needs a sound distortion band for the built
	// extent and this query; when none exists (hull touches a pole, or
	// the radius is continent-scale relative to the hull latitudes) the
	// query degrades to exact spherical testing of every point.
	lo, hi, ok := g.lats.bounds(g.proj.CosLat(), center.Lat, radius)
	if !ok {
		for id := 0; id < g.pp.Len(); id++ {
			if geo.Haversine(center, g.pp.At(id)) <= radius {
				buf = append(buf, id)
			}
		}
		return buf
	}
	c := g.proj.ToMeters(center)
	reach := radius*hi + 1e-9
	loX := int(math.Floor((c.X - reach - g.minX) / g.cellSize))
	hiX := int(math.Floor((c.X + reach - g.minX) / g.cellSize))
	loY := int(math.Floor((c.Y - reach - g.minY) / g.cellSize))
	hiY := int(math.Floor((c.Y + reach - g.minY) / g.cellSize))
	loX = max(loX, 0)
	loY = max(loY, 0)
	hiX = min(hiX, g.cols-1)
	hiY = min(hiY, g.rows-1)

	// Candidates clearly inside or outside by the planar metric skip the
	// exact spherical check; only the boundary shell — whose width the
	// extent's distortion bound just derived — pays for Haversine. The
	// planar distances stream out of the packed X/Y slices.
	rLo := radius * lo
	rHi := radius * hi
	px, py := g.pp.X, g.pp.Y
	test := func(id int, out []int) []int {
		dx := px[id] - c.X
		dy := py[id] - c.Y
		d := math.Sqrt(dx*dx + dy*dy)
		switch {
		case d <= rLo:
			return append(out, id)
		case d > rHi:
			return out
		case geo.Haversine(center, g.pp.At(id)) <= radius:
			return append(out, id)
		}
		return out
	}
	// On a sparse grid a wide query box can cover far more cells than
	// the map holds entries; iterating the occupied cells is cheaper.
	// The box area is compared in floating point: with per-axis sizes up
	// to 2³¹ the product can overflow an int.
	if g.sparse != nil && float64(hiX-loX+1)*float64(hiY-loY+1) > float64(len(g.sparse)) {
		for key, ids := range g.sparse {
			cx, cy := key%g.cols, key/g.cols
			if cx < loX || cx > hiX || cy < loY || cy > hiY {
				continue
			}
			for _, id := range ids {
				buf = test(id, buf)
			}
		}
		return buf
	}
	for cy := loY; cy <= hiY; cy++ {
		for cx := loX; cx <= hiX; cx++ {
			for _, id := range g.cell(cy*g.cols + cx) {
				buf = test(id, buf)
			}
		}
	}
	return buf
}

// Nearest implements Index. It expands a ring of cells around the query
// until k candidates are confirmed closer than the next unexplored ring.
func (g *Grid) Nearest(q geo.Point, k int) []int {
	if k <= 0 || g.pp.Len() == 0 {
		return nil
	}
	if k > g.pp.Len() {
		k = g.pp.Len()
	}
	c := g.proj.ToMeters(q)
	qx, qy := g.cellCoords(c.X, c.Y)
	qx = clamp(qx, 0, g.cols-1)
	qy = clamp(qy, 0, g.rows-1)

	h := make(maxHeap, 0, k+1)
	// A sparse grid's occupied cells can be a vanishing fraction of the
	// ring area; a linear scan is then both simpler and faster.
	if g.sparse != nil {
		for id := 0; id < g.pp.Len(); id++ {
			h.offer(heapItem{id: id, dist: geo.Haversine(q, g.pp.At(id))}, k)
		}
		return h.sortedIDs()
	}
	maxRing := max(g.cols, g.rows)
	for ring := 0; ring <= maxRing; ring++ {
		// Once k candidates are held and the closest possible point in
		// this ring is farther than the current worst, stop. The ring
		// bound is planar, the heap distances spherical, so the bound is
		// deflated by the extent's distortion factor; when no sound
		// factor exists the scan continues to the last ring.
		if len(h) == k {
			if f, ok := g.lats.inflation(g.proj.CosLat(), q.Lat, h.worst()); ok {
				minPossible := (float64(ring) - 1) * g.cellSize
				if minPossible > h.worst()*f {
					break
				}
			}
		}
		g.visitRing(qx, qy, ring, func(id int) {
			h.offer(heapItem{id: id, dist: geo.Haversine(q, g.pp.At(id))}, k)
		})
	}
	return h.sortedIDs()
}

// visitRing calls fn for every point in cells at Chebyshev distance ring
// from (qx, qy).
func (g *Grid) visitRing(qx, qy, ring int, fn func(id int)) {
	loX, hiX := qx-ring, qx+ring
	loY, hiY := qy-ring, qy+ring
	for cy := loY; cy <= hiY; cy++ {
		if cy < 0 || cy >= g.rows {
			continue
		}
		for cx := loX; cx <= hiX; cx++ {
			if cx < 0 || cx >= g.cols {
				continue
			}
			if ring > 0 && cx != loX && cx != hiX && cy != loY && cy != hiY {
				continue // interior cell already visited by a smaller ring
			}
			for _, id := range g.cell(cy*g.cols + cx) {
				fn(id)
			}
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
