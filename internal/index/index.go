// Package index provides the spatial-index substrate of csdm: a uniform
// grid, a k-d tree, and an STR-bulk-loaded R-tree, each answering the
// circular range query range(p, ε, P) and k-nearest-neighbor queries over
// a fixed set of points. Every stage of Pervasive Miner — popularity
// estimation, CSD construction, semantic recognition — is built on these
// queries, so the package is the closest thing the system has to a
// database engine.
//
// All indexes are immutable after construction and safe for concurrent
// readers. Query results are point IDs: positions in the point slice the
// index was built from, so callers can keep payloads in parallel slices.
package index

import (
	"fmt"

	"csdm/internal/geo"
)

// Index answers spatial queries over the point set it was built from.
type Index interface {
	// Within returns the IDs of all points within radius meters of
	// center (inclusive), in unspecified order. It is WithinAppend with
	// a nil buffer.
	Within(center geo.Point, radius float64) []int
	// WithinAppend appends the IDs of all points within radius meters
	// of center (inclusive, unspecified order) to buf and returns the
	// extended slice — the allocation-free query path for hot loops
	// that reuse a scratch buffer across calls.
	//
	// Aliasing contract: the index never retains buf or the returned
	// slice, and reads buf's existing elements never (append-only). The
	// caller owns the buffer exclusively; passing buf[:0] reuses its
	// capacity. Like append, the returned slice may share backing with
	// buf or be a grown copy, so the caller must use the return value.
	WithinAppend(center geo.Point, radius float64, buf []int) []int
	// Nearest returns the IDs of the k points closest to q, ordered by
	// increasing distance. Fewer than k IDs are returned when the index
	// holds fewer points.
	Nearest(q geo.Point, k int) []int
	// Len returns the number of indexed points.
	Len() int
}

// Kind selects an Index implementation.
type Kind int

// The available index kinds.
const (
	KindGrid Kind = iota
	KindKDTree
	KindRTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGrid:
		return "grid"
	case KindKDTree:
		return "kdtree"
	case KindRTree:
		return "rtree"
	default:
		return "unknown"
	}
}

// ParseKind resolves a backend name from a CLI flag or config file.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "grid", "":
		return KindGrid, nil
	case "kdtree":
		return KindKDTree, nil
	case "rtree":
		return KindRTree, nil
	default:
		return KindGrid, fmt.Errorf("index: unknown backend %q (want grid, kdtree or rtree)", s)
	}
}

// CellHint converts an expected query radius into a grid cell size:
// non-positive radii default to the 100 m R3σ scale and tiny radii
// clamp to 10 m so a fine search radius does not explode the cell
// count. The tree backends ignore the hint, so every construction site
// can pass its query radius unconditionally.
func CellHint(radius float64) float64 {
	if radius <= 0 {
		return 100
	}
	if radius < 10 {
		return 10
	}
	return radius
}

// New builds an index of the requested kind over pts. hint is the
// expected query radius in meters; the grid derives its cell size from
// it via CellHint, the k-d tree and R-tree ignore it. When SetMetrics
// has attached a registry, the returned index samples query latencies
// and result sizes (1-in-N, so the hot paths stay allocation-free).
func New(kind Kind, pts []geo.Point, hint float64) Index {
	return NewPacked(kind, geo.Pack(pts), hint)
}

// NewPacked builds an index of the requested kind directly over a
// packed coordinate store, skipping the []Point copy. The store is
// batch-projected at its centroid on first use and its slices are
// aliased by the index, so the caller must treat pp as frozen
// afterwards; several indexes may share one store (they agree on the
// centroid origin and only the first build pays the projection).
func NewPacked(kind Kind, pp *geo.PackedPoints, hint float64) Index {
	switch kind {
	case KindKDTree:
		return instrument(kind, NewKDTreePacked(pp))
	case KindRTree:
		return instrument(kind, NewRTreePacked(pp))
	default:
		return instrument(KindGrid, NewGridPacked(pp, CellHint(hint)))
	}
}

// heapItem pairs a point ID with its distance to the query point.
type heapItem struct {
	id   int
	dist float64
}

// maxHeap is a bounded max-heap over distances used by kNN searches: the
// root is the worst of the current k best candidates.
type maxHeap []heapItem

func (h maxHeap) worst() float64 { return h[0].dist }

func (h *maxHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist >= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *maxHeap) popRoot() heapItem {
	root := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(*h) && (*h)[l].dist > (*h)[largest].dist {
			largest = l
		}
		if r < len(*h) && (*h)[r].dist > (*h)[largest].dist {
			largest = r
		}
		if largest == i {
			break
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
	return root
}

// offer inserts it if the heap holds fewer than k items or it beats the
// current worst, evicting the worst in the latter case.
func (h *maxHeap) offer(it heapItem, k int) {
	if len(*h) < k {
		h.push(it)
		return
	}
	if it.dist < h.worst() {
		h.popRoot()
		h.push(it)
	}
}

// sortedIDs drains the heap into IDs ordered by increasing distance.
func (h *maxHeap) sortedIDs() []int {
	ids := make([]int, len(*h))
	for i := len(*h) - 1; i >= 0; i-- {
		ids[i] = h.popRoot().id
	}
	return ids
}
