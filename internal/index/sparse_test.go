package index

import (
	"math/rand"
	"testing"

	"csdm/internal/geo"
)

// TestGridSparseFallback exercises the sparse-map path: a continental
// extent with small cells overflows the dense cell table.
func TestGridSparseFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Points spread over ~10° of longitude/latitude with 10 m cells:
	// ≈ (1.1e6/10)² cells, far beyond maxDenseCells.
	var pts []geo.Point
	for i := 0; i < 400; i++ {
		pts = append(pts, geo.Point{
			Lon: 115 + rng.Float64()*10,
			Lat: 25 + rng.Float64()*10,
		})
	}
	g := NewGrid(pts, 10)
	if g.sparse == nil {
		t.Fatal("expected the sparse cell map to be used")
	}
	// Correctness against brute force.
	for trial := 0; trial < 30; trial++ {
		q := pts[rng.Intn(len(pts))]
		r := rng.Float64() * 50000
		got := sortedCopy(g.Within(q, r))
		want := sortedCopy(bruteWithin(pts, q, r))
		if !equalIDs(got, want) {
			t.Fatalf("sparse Within mismatch: got %d, want %d ids", len(got), len(want))
		}
	}
	if got := g.Nearest(pts[0], 5); len(got) != 5 {
		t.Fatalf("sparse Nearest = %d ids", len(got))
	}
}

// TestGridDensePathUsed confirms city-scale data stays on the dense
// counting-sort table.
func TestGridDensePathUsed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 200, 5000)
	g := NewGrid(pts, 100)
	if g.cellStart == nil {
		t.Fatal("expected the dense cell table for city-scale data")
	}
	total := 0
	for c := 0; c+1 < len(g.cellStart); c++ {
		total += g.cellStart[c+1] - g.cellStart[c]
	}
	if total != len(pts) {
		t.Fatalf("dense table holds %d ids, want %d", total, len(pts))
	}
}
