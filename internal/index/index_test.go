package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"csdm/internal/geo"
)

var origin = geo.Point{Lon: 121.47, Lat: 31.23}

// randomPoints scatters n points within about extent meters of origin.
func randomPoints(rng *rand.Rand, n int, extent float64) []geo.Point {
	pr := geo.NewProjection(origin)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = pr.ToPoint(geo.Meters{
			X: (rng.Float64()*2 - 1) * extent,
			Y: (rng.Float64()*2 - 1) * extent,
		})
	}
	return pts
}

// bruteWithin is the reference implementation of Within.
func bruteWithin(pts []geo.Point, c geo.Point, r float64) []int {
	var out []int
	for i, p := range pts {
		if geo.Haversine(c, p) <= r {
			out = append(out, i)
		}
	}
	return out
}

// bruteNearest is the reference implementation of Nearest.
func bruteNearest(pts []geo.Point, q geo.Point, k int) []int {
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return geo.Haversine(q, pts[ids[a]]) < geo.Haversine(q, pts[ids[b]])
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func sortedCopy(ids []int) []int {
	c := append([]int(nil), ids...)
	sort.Ints(c)
	return c
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var allKinds = []Kind{KindGrid, KindKDTree, KindRTree}

func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 500, 3000)
	pr := geo.NewProjection(origin)
	for _, kind := range allKinds {
		idx := New(kind, pts, 100)
		for trial := 0; trial < 50; trial++ {
			c := pr.ToPoint(geo.Meters{
				X: (rng.Float64()*2 - 1) * 3000,
				Y: (rng.Float64()*2 - 1) * 3000,
			})
			r := rng.Float64() * 800
			got := sortedCopy(idx.Within(c, r))
			want := sortedCopy(bruteWithin(pts, c, r))
			if !equalIDs(got, want) {
				t.Fatalf("%v Within trial %d: got %d ids, want %d", kind, trial, len(got), len(want))
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 400, 2000)
	pr := geo.NewProjection(origin)
	for _, kind := range allKinds {
		idx := New(kind, pts, 100)
		for trial := 0; trial < 30; trial++ {
			q := pr.ToPoint(geo.Meters{
				X: (rng.Float64()*2 - 1) * 2500,
				Y: (rng.Float64()*2 - 1) * 2500,
			})
			k := 1 + rng.Intn(20)
			got := idx.Nearest(q, k)
			want := bruteNearest(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("%v Nearest k=%d: got %d ids, want %d", kind, k, len(got), len(want))
			}
			// Compare by distance (ties may legitimately reorder IDs).
			for i := range got {
				dg := geo.Haversine(q, pts[got[i]])
				dw := geo.Haversine(q, pts[want[i]])
				if math.Abs(dg-dw) > 1e-6 {
					t.Fatalf("%v Nearest k=%d rank %d: dist %.4f, want %.4f", kind, k, i, dg, dw)
				}
			}
			// Result must be sorted by distance.
			for i := 1; i < len(got); i++ {
				if geo.Haversine(q, pts[got[i-1]]) > geo.Haversine(q, pts[got[i]])+1e-9 {
					t.Fatalf("%v Nearest result not distance-sorted at %d", kind, i)
				}
			}
		}
	}
}

func TestWithinPropertyRandomConfigs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64, nRaw uint8, rRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		r := float64(rRaw % 1000)
		pts := randomPoints(rng, n, 1500)
		want := sortedCopy(bruteWithin(pts, origin, r))
		for _, kind := range allKinds {
			got := sortedCopy(New(kind, pts, 100).Within(origin, r))
			if !equalIDs(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyIndexes(t *testing.T) {
	for _, kind := range allKinds {
		idx := New(kind, nil, 100)
		if idx.Len() != 0 {
			t.Errorf("%v empty Len = %d", kind, idx.Len())
		}
		if got := idx.Within(origin, 100); got != nil {
			t.Errorf("%v empty Within = %v", kind, got)
		}
		if got := idx.Nearest(origin, 3); got != nil {
			t.Errorf("%v empty Nearest = %v", kind, got)
		}
	}
}

func TestSinglePointIndex(t *testing.T) {
	pts := []geo.Point{origin}
	for _, kind := range allKinds {
		idx := New(kind, pts, 100)
		if got := idx.Within(origin, 1); len(got) != 1 || got[0] != 0 {
			t.Errorf("%v single Within = %v", kind, got)
		}
		if got := idx.Nearest(origin, 5); len(got) != 1 || got[0] != 0 {
			t.Errorf("%v single Nearest = %v", kind, got)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geo.Point{origin, origin, origin, origin}
	for _, kind := range allKinds {
		idx := New(kind, pts, 100)
		if got := idx.Within(origin, 0); len(got) != 4 {
			t.Errorf("%v duplicates Within(r=0) = %d ids, want 4", kind, len(got))
		}
		if got := idx.Nearest(origin, 2); len(got) != 2 {
			t.Errorf("%v duplicates Nearest = %d ids, want 2", kind, len(got))
		}
	}
}

func TestNegativeRadiusAndZeroK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 20, 500)
	for _, kind := range allKinds {
		idx := New(kind, pts, 100)
		if got := idx.Within(origin, -5); got != nil {
			t.Errorf("%v Within(r<0) = %v, want nil", kind, got)
		}
		if got := idx.Nearest(origin, 0); got != nil {
			t.Errorf("%v Nearest(k=0) = %v, want nil", kind, got)
		}
		if got := idx.Nearest(origin, -1); got != nil {
			t.Errorf("%v Nearest(k<0) = %v, want nil", kind, got)
		}
	}
}

func TestKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 7, 500)
	for _, kind := range allKinds {
		got := New(kind, pts, 100).Nearest(origin, 100)
		if len(got) != 7 {
			t.Errorf("%v Nearest(k>n) returned %d ids, want 7", kind, len(got))
		}
	}
}

func TestClusteredDataCorrectness(t *testing.T) {
	// Heavily skewed data: one dense blob plus far-flung outliers, a
	// worst case for grids.
	rng := rand.New(rand.NewSource(5))
	pr := geo.NewProjection(origin)
	var pts []geo.Point
	for i := 0; i < 300; i++ {
		pts = append(pts, pr.ToPoint(geo.Meters{
			X: rng.NormFloat64() * 20,
			Y: rng.NormFloat64() * 20,
		}))
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, pr.ToPoint(geo.Meters{
			X: (rng.Float64()*2 - 1) * 20000,
			Y: (rng.Float64()*2 - 1) * 20000,
		}))
	}
	for _, kind := range allKinds {
		idx := New(kind, pts, 100)
		for _, r := range []float64{10, 50, 1000, 30000} {
			got := sortedCopy(idx.Within(origin, r))
			want := sortedCopy(bruteWithin(pts, origin, r))
			if !equalIDs(got, want) {
				t.Fatalf("%v clustered Within(r=%v): got %d, want %d", kind, r, len(got), len(want))
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if KindGrid.String() != "grid" || KindKDTree.String() != "kdtree" || KindRTree.String() != "rtree" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown Kind should stringify to unknown")
	}
}

func benchmarkWithin(b *testing.B, kind Kind, n int) {
	rng := rand.New(rand.NewSource(42))
	pts := randomPoints(rng, n, 10000)
	idx := New(kind, pts, 100)
	queries := randomPoints(rng, 256, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Within(queries[i%len(queries)], 100)
	}
}

func BenchmarkGridWithin10k(b *testing.B)   { benchmarkWithin(b, KindGrid, 10000) }
func BenchmarkKDTreeWithin10k(b *testing.B) { benchmarkWithin(b, KindKDTree, 10000) }
func BenchmarkRTreeWithin10k(b *testing.B)  { benchmarkWithin(b, KindRTree, 10000) }

func benchmarkBuild(b *testing.B, kind Kind, n int) {
	rng := rand.New(rand.NewSource(42))
	pts := randomPoints(rng, n, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(kind, pts, 100)
	}
}

func BenchmarkGridBuild10k(b *testing.B)   { benchmarkBuild(b, KindGrid, 10000) }
func BenchmarkKDTreeBuild10k(b *testing.B) { benchmarkBuild(b, KindKDTree, 10000) }
func BenchmarkRTreeBuild10k(b *testing.B)  { benchmarkBuild(b, KindRTree, 10000) }
