package index

import (
	"strings"
	"testing"

	"csdm/internal/geo"
	"csdm/internal/obs"
)

func metricsTestPoints() []geo.Point {
	pts := make([]geo.Point, 0, 100)
	for i := 0; i < 100; i++ {
		pts = append(pts, geo.Point{
			Lat: 31.2 + float64(i%10)*0.0005,
			Lon: 121.4 + float64(i/10)*0.0005,
		})
	}
	return pts
}

// TestSampledQueries attaches a registry with every=1 (time every
// query) and checks that all three query paths record latency, that
// range queries record result sizes, and that the exposition passes
// lint.
func TestSampledQueries(t *testing.T) {
	r := obs.NewRegistry()
	SetMetrics(r, 1)
	defer SetMetrics(nil, 0)

	pts := metricsTestPoints()
	for _, kind := range []Kind{KindGrid, KindKDTree, KindRTree} {
		idx := New(kind, pts, 100)
		center := pts[0]
		plain := idx.Within(center, 200)
		buf := idx.WithinAppend(center, 200, nil)
		if len(plain) != len(buf) {
			t.Fatalf("%v: instrumented Within/WithinAppend disagree: %d vs %d", kind, len(plain), len(buf))
		}
		if got := idx.Nearest(center, 5); len(got) != 5 {
			t.Fatalf("%v: Nearest returned %d ids, want 5", kind, len(got))
		}
		b := kind.String()
		lat := r.HistogramSnapshot(obs.Label("csdm_index_query_seconds", "backend", b, "op", "within"))
		if lat.Count != 2 {
			t.Fatalf("%v: within latency observations = %d, want 2", kind, lat.Count)
		}
		knn := r.HistogramSnapshot(obs.Label("csdm_index_query_seconds", "backend", b, "op", "nearest"))
		if knn.Count != 1 {
			t.Fatalf("%v: nearest latency observations = %d, want 1", kind, knn.Count)
		}
		size := r.HistogramSnapshot(obs.Label("csdm_index_query_results", "backend", b, "op", "within"))
		if size.Count != 2 || size.Sum != float64(2*len(plain)) {
			t.Fatalf("%v: result-size histogram = %+v, want 2 observations summing %d", kind, size, 2*len(plain))
		}
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := obs.Lint(strings.NewReader(b.String())); len(errs) != 0 {
		t.Fatalf("index metrics fail lint: %v\n%s", errs, b.String())
	}
}

// TestSamplingPeriod: with every=4 only every fourth query is timed.
func TestSamplingPeriod(t *testing.T) {
	r := obs.NewRegistry()
	SetMetrics(r, 4)
	defer SetMetrics(nil, 0)

	idx := New(KindGrid, metricsTestPoints(), 100)
	for i := 0; i < 16; i++ {
		idx.Within(geo.Point{Lat: 31.2, Lon: 121.4}, 100)
	}
	lat := r.HistogramSnapshot(obs.Label("csdm_index_query_seconds", "backend", "grid", "op", "within"))
	if lat.Count != 4 {
		t.Fatalf("sampled observations = %d, want 4 (1 in 4 of 16)", lat.Count)
	}
}

// TestUninstrumentedWithoutRegistry: with no registry attached, New
// returns the raw backend — no wrapper, no per-query overhead.
func TestUninstrumentedWithoutRegistry(t *testing.T) {
	SetMetrics(nil, 0)
	idx := New(KindGrid, metricsTestPoints(), 100)
	if _, ok := idx.(*sampled); ok {
		t.Fatal("New wrapped the index with no registry attached")
	}
	if _, ok := idx.(*Grid); !ok {
		t.Fatalf("New returned %T, want *Grid", idx)
	}
}

// TestDirectConstructorsStayRaw: NewGrid and friends never get the
// sampling wrapper, even with a registry attached.
func TestDirectConstructorsStayRaw(t *testing.T) {
	r := obs.NewRegistry()
	SetMetrics(r, 1)
	defer SetMetrics(nil, 0)
	idx := NewGrid(metricsTestPoints(), 100)
	idx.Within(geo.Point{Lat: 31.2, Lon: 121.4}, 100)
	lat := r.HistogramSnapshot(obs.Label("csdm_index_query_seconds", "backend", "grid", "op", "within"))
	if lat.Count != 0 {
		t.Fatalf("direct NewGrid construction was instrumented: %d observations", lat.Count)
	}
}
