package index

import (
	"math/rand"
	"testing"

	"csdm/internal/geo"
)

// packedCorpora are the property-test corpora for the packed path:
// city-scale, country-scale and high-latitude extents, the regimes where
// projection distortion and the planar fast path diverge most.
var packedCorpora = []struct {
	name   string
	center geo.Point
	extent float64
}{
	{"city", geo.Point{Lon: 121.47, Lat: 31.23}, 3e3},
	{"country", geo.Point{Lon: 10.0, Lat: 51.0}, 300e3},
	{"high-lat", geo.Point{Lon: 18.95, Lat: 69.65}, 120e3},
	{"southern", geo.Point{Lon: -68.3, Lat: -72.0}, 80e3},
}

// TestPackedConformance is the packed-path property test: for every
// backend, an index built through NewPacked must return the same IDs in
// the same order as one built through New over the identical points —
// not merely the same set, because downstream float accumulations
// depend on result order — and both must agree with the brute-force
// spherical reference. Query centers range up to 2.5× outside the
// built extent so the out-of-extent degradation paths are covered too.
func TestPackedConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, corpus := range packedCorpora {
		t.Run(corpus.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				n := 80 + rng.Intn(200)
				pts := randomPointsAt(rng, corpus.center, n, corpus.extent)
				radius := (0.1 + rng.Float64()*0.6) * corpus.extent
				for _, kind := range backendKinds {
					ref := New(kind, pts, radius)
					packed := NewPacked(kind, geo.Pack(pts), radius)
					if packed.Len() != ref.Len() {
						t.Fatalf("%s: packed Len %d != %d", kind, packed.Len(), ref.Len())
					}
					for q := 0; q < 8; q++ {
						qc := randomPointsAt(rng, corpus.center, 1, corpus.extent*2.5)[0]
						want := ref.Within(qc, radius)
						got := packed.Within(qc, radius)
						if !equalIDs(got, want) {
							t.Fatalf("%s trial %d: packed Within(%v, %.0f) order/set mismatch:\ngot  %v\nwant %v",
								kind, trial, qc, radius, got, want)
						}
						brute := sortedCopy(bruteWithin(pts, qc, radius))
						if !equalIDs(sortedCopy(got), brute) {
							t.Fatalf("%s trial %d: packed Within(%v, %.0f) vs brute:\ngot  %v\nwant %v",
								kind, trial, qc, radius, sortedCopy(got), brute)
						}
						k := 1 + rng.Intn(6)
						if gotNear, wantNear := packed.Nearest(qc, k), ref.Nearest(qc, k); !equalIDs(gotNear, wantNear) {
							t.Fatalf("%s trial %d: packed Nearest(%v, %d) = %v, want %v",
								kind, trial, qc, k, gotNear, wantNear)
						}
					}
				}
			}
		})
	}
}

// TestPackedSharedStore checks that one projected store can back all
// three kinds at once: the first build projects at the centroid, later
// builds reuse the planar slices, and every backend still agrees with
// brute force. This is the sharing contract OPTICS relies on when it
// reads the planar coordinates out of the same store its index uses.
func TestPackedSharedStore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randomPointsAt(rng, geo.Point{Lon: 139.7, Lat: 35.68}, 300, 5e3)
	pp := geo.Pack(pts)
	radius := 800.0

	idxs := make([]Index, len(backendKinds))
	for i, kind := range backendKinds {
		idxs[i] = NewPacked(kind, pp, radius)
	}
	if pp.Proj().Origin() != geo.Centroid(pts) {
		t.Fatalf("shared store projected at %v, want centroid %v", pp.Proj().Origin(), geo.Centroid(pts))
	}
	for q := 0; q < 12; q++ {
		qc := randomPointsAt(rng, geo.Point{Lon: 139.7, Lat: 35.68}, 1, 7e3)[0]
		want := sortedCopy(bruteWithin(pts, qc, radius))
		for i, idx := range idxs {
			if got := sortedCopy(idx.Within(qc, radius)); !equalIDs(got, want) {
				t.Fatalf("%s over shared store: got %v, want %v", backendKinds[i], got, want)
			}
		}
	}
}

// TestPackedOutOfExtent pins the degradation path: queries far outside
// the built extent (including near-polar centers where no sound
// distortion band exists) must still agree with brute force for every
// backend on the packed path.
func TestPackedOutOfExtent(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pts := randomPointsAt(rng, geo.Point{Lon: 24.0, Lat: 80.0}, 150, 200e3)
	radius := 500e3
	for _, kind := range backendKinds {
		idx := NewPacked(kind, geo.Pack(pts), radius)
		for _, qc := range []geo.Point{
			{Lon: 24.0, Lat: 89.9},
			{Lon: -156.0, Lat: 78.0},
			{Lon: 24.0, Lat: 40.0},
		} {
			want := sortedCopy(bruteWithin(pts, qc, radius))
			got := sortedCopy(idx.Within(qc, radius))
			if !equalIDs(got, want) {
				t.Fatalf("%s.Within(%v, %.0f): got %v, want %v", kind, qc, radius, got, want)
			}
		}
	}
}
