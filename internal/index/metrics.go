package index

import (
	"sync/atomic"
	"time"

	"csdm/internal/geo"
	"csdm/internal/obs"
)

// metricsState is the package's process-metrics hook. Histograms are
// pre-resolved per backend at SetMetrics time, so a sampled query pays
// no map lookup and an unsampled query pays one atomic counter bump.
type metricsState struct {
	every uint64
	// per-Kind histograms, indexed by Kind (grid, kdtree, rtree).
	within    [3]*obs.Histogram // csdm_index_query_seconds{backend,op="within"}
	nearest   [3]*obs.Histogram // csdm_index_query_seconds{backend,op="nearest"}
	withinLen [3]*obs.Histogram // csdm_index_query_results{backend,op="within"}
}

var metricsHook atomic.Pointer[metricsState]

// DefaultSampleEvery is the default query-sampling period: one in every
// 64 queries is timed. Sampling keeps WithinAppend's allocation-free
// hot-loop contract intact — the unsampled 63/64 pay a single atomic
// increment, no clock reads.
const DefaultSampleEvery = 64

// SetMetrics wires indexes built by New to a process-lifetime metrics
// registry: every 1-in-every queries is timed into
// csdm_index_query_seconds{backend,op} and (for range queries) its
// result size into csdm_index_query_results{backend,op="within"}.
// every <= 0 means DefaultSampleEvery; every == 1 times every query.
// Passing a nil registry detaches. Only the New factory instruments —
// direct NewGrid/NewKDTree/NewRTree constructions stay raw, so
// benchmarks and tests of the backends themselves are never perturbed.
func SetMetrics(r *obs.Registry, every int) {
	if r == nil {
		metricsHook.Store(nil)
		return
	}
	if every <= 0 {
		every = DefaultSampleEvery
	}
	r.Describe("csdm_index_query_seconds", "Sampled latency of spatial-index queries, by backend and operation.")
	r.Describe("csdm_index_query_results", "Sampled result sizes of spatial range queries, by backend.")
	st := &metricsState{every: uint64(every)}
	for _, k := range []Kind{KindGrid, KindKDTree, KindRTree} {
		b := k.String()
		st.within[k] = r.Histogram(obs.Label("csdm_index_query_seconds", "backend", b, "op", "within"), obs.DefBuckets)
		st.nearest[k] = r.Histogram(obs.Label("csdm_index_query_seconds", "backend", b, "op", "nearest"), obs.DefBuckets)
		st.withinLen[k] = r.Histogram(obs.Label("csdm_index_query_results", "backend", b, "op", "within"), obs.SizeBuckets)
	}
	metricsHook.Store(st)
}

// sampled wraps an Index with 1-in-N query timing. The wrapper is only
// installed by New when SetMetrics has attached a registry, so the
// no-telemetry configuration has no extra indirection at all.
type sampled struct {
	Index
	kind Kind
	st   *metricsState
	n    atomic.Uint64
}

// tick reports whether this query is the 1-in-every sample.
func (s *sampled) tick() bool {
	return s.n.Add(1)%s.st.every == 0
}

func (s *sampled) Within(center geo.Point, radius float64) []int {
	if !s.tick() {
		return s.Index.Within(center, radius)
	}
	t0 := time.Now()
	ids := s.Index.Within(center, radius)
	s.st.within[s.kind].Observe(time.Since(t0).Seconds())
	s.st.withinLen[s.kind].Observe(float64(len(ids)))
	return ids
}

func (s *sampled) WithinAppend(center geo.Point, radius float64, buf []int) []int {
	if !s.tick() {
		return s.Index.WithinAppend(center, radius, buf)
	}
	t0 := time.Now()
	n0 := len(buf)
	out := s.Index.WithinAppend(center, radius, buf)
	s.st.within[s.kind].Observe(time.Since(t0).Seconds())
	s.st.withinLen[s.kind].Observe(float64(len(out) - n0))
	return out
}

func (s *sampled) Nearest(q geo.Point, k int) []int {
	if !s.tick() {
		return s.Index.Nearest(q, k)
	}
	t0 := time.Now()
	ids := s.Index.Nearest(q, k)
	s.st.nearest[s.kind].Observe(time.Since(t0).Seconds())
	return ids
}

// instrument wraps idx with sampling when the metrics hook is set.
func instrument(kind Kind, idx Index) Index {
	st := metricsHook.Load()
	if st == nil {
		return idx
	}
	return &sampled{Index: idx, kind: kind, st: st}
}
