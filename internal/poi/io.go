package poi

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"csdm/internal/geo"
)

// csvHeader is the column layout of the POI CSV exchange format.
var csvHeader = []string{"id", "name", "lon", "lat", "minor"}

// WriteCSV writes POIs in the CSV exchange format (header + one row per
// POI; the minor category is stored by name).
func WriteCSV(w io.Writer, ps []POI) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("poi: write header: %w", err)
	}
	for _, p := range ps {
		rec := []string{
			strconv.FormatInt(p.ID, 10),
			p.Name,
			strconv.FormatFloat(p.Location.Lon, 'f', -1, 64),
			strconv.FormatFloat(p.Location.Lat, 'f', -1, 64),
			p.Minor.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("poi: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses POIs from the CSV exchange format produced by WriteCSV.
func ReadCSV(r io.Reader) ([]POI, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("poi: read header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("poi: unexpected header column %d: got %q, want %q", i, header[i], col)
		}
	}
	var out []POI
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("poi: line %d: %w", line, err)
		}
		p, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("poi: line %d: %w", line, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func parseRecord(rec []string) (POI, error) {
	id, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return POI{}, fmt.Errorf("bad id %q: %w", rec[0], err)
	}
	lon, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return POI{}, fmt.Errorf("bad lon %q: %w", rec[2], err)
	}
	lat, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return POI{}, fmt.Errorf("bad lat %q: %w", rec[3], err)
	}
	minor, ok := MinorByName(rec[4])
	if !ok {
		return POI{}, fmt.Errorf("unknown minor category %q", rec[4])
	}
	p := POI{ID: id, Name: rec[1], Location: geo.Point{Lon: lon, Lat: lat}, Minor: minor}
	if !p.Location.Valid() {
		return POI{}, fmt.Errorf("invalid coordinate (%v, %v)", lon, lat)
	}
	return p, nil
}

// WriteJSON writes POIs as a JSON array.
func WriteJSON(w io.Writer, ps []POI) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ps)
}

// ReadJSON parses a JSON array of POIs and validates categories and
// coordinates.
func ReadJSON(r io.Reader) ([]POI, error) {
	var out []POI
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("poi: decode json: %w", err)
	}
	for i, p := range out {
		if !p.Minor.Valid() {
			return nil, fmt.Errorf("poi: entry %d: invalid minor category %d", i, p.Minor)
		}
		if !p.Location.Valid() {
			return nil, fmt.Errorf("poi: entry %d: invalid location %v", i, p.Location)
		}
	}
	return out, nil
}
