package poi

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"csdm/internal/geo"
	"csdm/internal/load"
)

// csvHeader is the column layout of the POI CSV exchange format.
var csvHeader = []string{"id", "name", "lon", "lat", "minor"}

// WriteCSV writes POIs in the CSV exchange format (header + one row per
// POI; the minor category is stored by name).
func WriteCSV(w io.Writer, ps []POI) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("poi: write header: %w", err)
	}
	for _, p := range ps {
		rec := []string{
			strconv.FormatInt(p.ID, 10),
			p.Name,
			strconv.FormatFloat(p.Location.Lon, 'f', -1, 64),
			strconv.FormatFloat(p.Location.Lat, 'f', -1, 64),
			p.Minor.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("poi: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses POIs from the CSV exchange format produced by
// WriteCSV, failing on the first malformed row.
func ReadCSV(r io.Reader) ([]POI, error) {
	ps, _, err := ReadCSVOptions(r, load.Options{})
	return ps, err
}

// ReadCSVOptions parses POIs under the given failure policy. In strict
// mode (the zero Options) the first malformed row fails the load,
// matching ReadCSV. In lenient mode malformed rows — bad ids, unknown
// categories, NaN/Inf/out-of-range coordinates, CSV structural damage —
// are skipped and counted by reason, until the bad-row budget (if any)
// is exceeded. The returned stats report exactly what was kept and
// dropped; with a trace attached each reason is published as a
// load.poi.skipped.<reason> counter.
func ReadCSVOptions(r io.Reader, opts load.Options) ([]POI, load.Stats, error) {
	var stats load.Stats
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, stats, fmt.Errorf("poi: read header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, stats, fmt.Errorf("poi: unexpected header column %d: got %q, want %q", i, header[i], col)
		}
	}
	var out []POI
	for line := 2; ; line++ {
		offset := cr.InputOffset()
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err == nil {
			var p POI
			if p, err = parseRecord(rec); err == nil {
				out = append(out, p)
				stats.Rows++
				continue
			}
		}
		if !opts.Lenient {
			return nil, stats, fmt.Errorf("poi: line %d: %w", line, err)
		}
		stats.Skip(load.Reason(err))
		if stats.OverBudget(opts) {
			stats.Note(opts.Trace, "poi")
			return nil, stats, fmt.Errorf("poi: line %d: %w after %d skipped rows: %w", line, load.ErrBudget, stats.TotalSkipped(), err)
		}
		if cr.InputOffset() == offset {
			// The reader could not get past the damage; bail out rather
			// than spin on the same offset forever.
			return nil, stats, fmt.Errorf("poi: line %d: unrecoverable: %w", line, err)
		}
	}
	stats.Note(opts.Trace, "poi")
	return out, stats, nil
}

func parseRecord(rec []string) (POI, error) {
	id, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return POI{}, &load.RowError{Reason: "id", Err: fmt.Errorf("bad id %q: %w", rec[0], err)}
	}
	lon, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return POI{}, &load.RowError{Reason: "coord-syntax", Err: fmt.Errorf("bad lon %q: %w", rec[2], err)}
	}
	lat, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return POI{}, &load.RowError{Reason: "coord-syntax", Err: fmt.Errorf("bad lat %q: %w", rec[3], err)}
	}
	minor, ok := MinorByName(rec[4])
	if !ok {
		return POI{}, &load.RowError{Reason: "category", Err: fmt.Errorf("unknown minor category %q", rec[4])}
	}
	p := POI{ID: id, Name: rec[1], Location: geo.Point{Lon: lon, Lat: lat}, Minor: minor}
	if err := p.Location.Check(); err != nil {
		return POI{}, &load.RowError{Reason: coordReason(err), Err: fmt.Errorf("invalid coordinate (%v, %v): %w", lon, lat, err)}
	}
	return p, nil
}

// coordReason maps a geo coordinate rejection to a skip-reason key.
func coordReason(err error) string {
	var ce *geo.CoordError
	if errors.As(err, &ce) {
		return "coord-" + ce.Reason
	}
	return "coord"
}

// WriteJSON writes POIs as a JSON array.
func WriteJSON(w io.Writer, ps []POI) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ps)
}

// ReadJSON parses a JSON array of POIs and validates categories and
// coordinates.
func ReadJSON(r io.Reader) ([]POI, error) {
	var out []POI
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("poi: decode json: %w", err)
	}
	for i, p := range out {
		if !p.Minor.Valid() {
			return nil, fmt.Errorf("poi: entry %d: invalid minor category %d", i, p.Minor)
		}
		if !p.Location.Valid() {
			return nil, fmt.Errorf("poi: entry %d: invalid location %v", i, p.Location)
		}
	}
	return out, nil
}
