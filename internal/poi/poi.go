// Package poi models Points of Interest: geographic entities carrying
// semantic properties (Definition 2). It ships the 15-major /
// 98-minor-category taxonomy of the paper's Shanghai AMAP dataset
// (Table 3), a compact bitset representation of semantic properties,
// and CSV/JSON dataset I/O.
package poi

import (
	"fmt"
	"strings"

	"csdm/internal/geo"
)

// Major is one of the 15 major semantic categories of Table 3.
type Major uint8

// The 15 major categories, ordered as in Table 3 (by descending count).
const (
	Residence Major = iota
	ShopMarket
	BusinessOffice
	Restaurant
	Entertainment
	PublicService
	TrafficStations
	TechEducation
	Sports
	GovernmentAgency
	Industry
	FinancialService
	MedicalService
	AccommodationHotel
	Tourism
	NumMajors int = iota
)

var majorNames = [NumMajors]string{
	"Residence",
	"Shop & Market",
	"Business & Office",
	"Restaurant",
	"Entertainment",
	"Public Service",
	"Traffic Stations",
	"Technology & Education",
	"Sports",
	"Government Agency",
	"Industry",
	"Financial Service",
	"Medical Service",
	"Accommodation & Hotel",
	"Tourism",
}

// String implements fmt.Stringer.
func (m Major) String() string {
	if int(m) < NumMajors {
		return majorNames[m]
	}
	return fmt.Sprintf("Major(%d)", uint8(m))
}

// Majors returns all major categories in Table 3 order.
func Majors() []Major {
	out := make([]Major, NumMajors)
	for i := range out {
		out[i] = Major(i)
	}
	return out
}

// Semantics is a semantic property s: a set of semantic tags
// (Definition 2), encoded as a bitset over the major categories. The
// containment of Definition 7 condition (iii) is set inclusion, and the
// semantic-consistency metric of Equation (11) is binary-vector cosine.
type Semantics uint16

// SemanticsOf builds a Semantics holding the given majors.
func SemanticsOf(ms ...Major) Semantics {
	var s Semantics
	for _, m := range ms {
		s = s.Add(m)
	}
	return s
}

// Add returns s with major m included.
func (s Semantics) Add(m Major) Semantics { return s | 1<<m }

// Has reports whether s includes major m.
func (s Semantics) Has(m Major) bool { return s&(1<<m) != 0 }

// Union returns the set union of s and o.
func (s Semantics) Union(o Semantics) Semantics { return s | o }

// Contains reports whether s ⊇ o.
func (s Semantics) Contains(o Semantics) bool { return s&o == o }

// IsEmpty reports whether s holds no tags.
func (s Semantics) IsEmpty() bool { return s == 0 }

// Count returns the number of tags in s.
func (s Semantics) Count() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Majors lists the majors present in s, in Table 3 order.
func (s Semantics) Majors() []Major {
	var out []Major
	for i := 0; i < NumMajors; i++ {
		if s.Has(Major(i)) {
			out = append(out, Major(i))
		}
	}
	return out
}

// Cosine returns the cosine similarity of two semantic properties viewed
// as binary tag vectors — the Cos(sp_i.s, sp_j.s) of Equation (11). Two
// empty properties have similarity 0.
func (s Semantics) Cosine(o Semantics) float64 {
	inter := (s & o).Count()
	if inter == 0 {
		return 0
	}
	na, nb := s.Count(), o.Count()
	return float64(inter) / (sqrtInt(na) * sqrtInt(nb))
}

func sqrtInt(n int) float64 {
	// n ≤ 16 here; a tiny table beats math.Sqrt in the hot metric loops.
	if n < len(sqrtTable) {
		return sqrtTable[n]
	}
	return sqrtTable[len(sqrtTable)-1]
}

var sqrtTable = [17]float64{
	0, 1, 1.4142135623730951, 1.7320508075688772, 2,
	2.23606797749979, 2.449489742783178, 2.6457513110645907, 2.8284271247461903,
	3, 3.1622776601683795, 3.3166247903554, 3.4641016151377544,
	3.605551275463989, 3.7416573867739413, 3.872983346207417, 4,
}

// String implements fmt.Stringer, listing tags joined by '+'.
func (s Semantics) String() string {
	ms := s.Majors()
	if len(ms) == 0 {
		return "∅"
	}
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.String()
	}
	return strings.Join(names, "+")
}

// POI is a Point of Interest p^I = {id, p, s} (Definition 2). The
// semantic property is carried by the minor category; Semantics()
// exposes it at the major-category granularity the mining pipeline
// operates on.
type POI struct {
	ID       int64     `json:"id"`
	Name     string    `json:"name"`
	Location geo.Point `json:"location"`
	Minor    Minor     `json:"minor"`
}

// Major returns the POI's major semantic category.
func (p POI) Major() Major { return p.Minor.Major() }

// Semantics returns the POI's semantic property as a one-tag set.
func (p POI) Semantics() Semantics { return SemanticsOf(p.Major()) }

// String implements fmt.Stringer.
func (p POI) String() string {
	return fmt.Sprintf("POI#%d %q %s %s", p.ID, p.Name, p.Location, p.Minor)
}

// Locations extracts the coordinate of every POI, aligned by index, for
// feeding spatial indexes.
func Locations(ps []POI) []geo.Point {
	out := make([]geo.Point, len(ps))
	for i, p := range ps {
		out[i] = p.Location
	}
	return out
}

// CategoryCount tallies POIs per major category (the Table 3 statistic).
func CategoryCount(ps []POI) [NumMajors]int {
	var counts [NumMajors]int
	for _, p := range ps {
		counts[p.Major()]++
	}
	return counts
}
