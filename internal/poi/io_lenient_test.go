package poi

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"csdm/internal/geo"
	"csdm/internal/load"
	"csdm/internal/obs"
)

// dirtyPOICSV builds a CSV with good rows interleaved with one bad row
// of each flavor, returning the text and the expected reason counts.
func dirtyPOICSV(good int) (string, map[string]int) {
	var b strings.Builder
	b.WriteString("id,name,lon,lat,minor\n")
	bad := map[string]int{}
	writeBad := func(row, reason string) {
		b.WriteString(row + "\n")
		bad[reason]++
	}
	for i := 0; i < good; i++ {
		fmt.Fprintf(&b, "%d,poi %d,121.%02d,31.%02d,Chinese Restaurant\n", i, i, i%100, i%100)
		switch i {
		case 1:
			writeBad("notanid,x,121.4,31.2,Chinese Restaurant", "id")
		case 3:
			writeBad("900,x,NaN,31.2,Chinese Restaurant", "coord-nan")
		case 5:
			writeBad("901,x,+Inf,31.2,Chinese Restaurant", "coord-inf")
		case 7:
			writeBad("902,x,200,31.2,Chinese Restaurant", "coord-lon-range")
		case 9:
			writeBad("903,x,121.4,95,Chinese Restaurant", "coord-lat-range")
		case 11:
			writeBad("904,x,abc,31.2,Chinese Restaurant", "coord-syntax")
		case 13:
			writeBad("905,x,121.4,31.2,no-such-category", "category")
		case 15:
			writeBad("906,x,121.4", "csv") // wrong field count
		}
	}
	return b.String(), bad
}

func TestReadCSVLenientSkipsAndCounts(t *testing.T) {
	text, wantBad := dirtyPOICSV(40)
	tr := obs.New()
	ps, stats, err := ReadCSVOptions(strings.NewReader(text), load.Options{Lenient: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 40 || stats.Rows != 40 {
		t.Fatalf("kept %d rows (stats %d), want 40", len(ps), stats.Rows)
	}
	for reason, want := range wantBad {
		if got := stats.Skipped[reason]; got != want {
			t.Errorf("skipped[%s] = %d, want %d", reason, got, want)
		}
		if got := tr.Counter("load.poi.skipped." + reason); got != int64(want) {
			t.Errorf("counter load.poi.skipped.%s = %d, want %d", reason, got, want)
		}
	}
	if got, want := stats.TotalSkipped(), len(wantBad); got != want {
		t.Fatalf("TotalSkipped = %d, want %d: %v", got, want, stats.Skipped)
	}
	if got := tr.Counter("load.poi.rows"); got != 40 {
		t.Fatalf("counter load.poi.rows = %d", got)
	}
}

func TestReadCSVStrictStillFailsFast(t *testing.T) {
	text, _ := dirtyPOICSV(40)
	if _, err := ReadCSV(strings.NewReader(text)); err == nil {
		t.Fatal("strict mode accepted a dirty file")
	}
}

func TestReadCSVBadRowBudget(t *testing.T) {
	text, wantBad := dirtyPOICSV(40)
	nBad := 0
	for _, c := range wantBad {
		nBad += c
	}
	// A budget one below the damage fails; at the damage it passes.
	_, _, err := ReadCSVOptions(strings.NewReader(text), load.Options{Lenient: true, MaxBadRows: nBad - 1})
	if !errors.Is(err, load.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	_, stats, err := ReadCSVOptions(strings.NewReader(text), load.Options{Lenient: true, MaxBadRows: nBad})
	if err != nil || stats.TotalSkipped() != nBad {
		t.Fatalf("at-budget load: skipped %d, err %v", stats.TotalSkipped(), err)
	}
}

// FuzzReadPOICSV pins the loader against arbitrary input in both
// strict and lenient modes: an error or a row set, never a panic or a
// hang, and lenient never keeps fewer rows than strict accepts.
func FuzzReadPOICSV(f *testing.F) {
	var good bytes.Buffer
	restaurant, _ := MinorByName("Chinese Restaurant")
	clinic, _ := MinorByName("Clinic")
	WriteCSV(&good, []POI{
		{ID: 1, Name: "a", Location: geo.Point{Lon: 121.4, Lat: 31.2}, Minor: restaurant},
		{ID: 2, Name: "b", Location: geo.Point{Lon: 121.5, Lat: 31.3}, Minor: clinic},
	})
	f.Add(good.Bytes())
	dirty, _ := dirtyPOICSV(10)
	f.Add([]byte(dirty))
	f.Add([]byte("id,name,lon,lat,minor\n1,\"unterminated,121,31,restaurant\n"))
	f.Add([]byte{})
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		strictPs, _ := ReadCSV(bytes.NewReader(data))
		lenientPs, stats, err := ReadCSVOptions(bytes.NewReader(data), load.Options{Lenient: true, MaxBadRows: 100})
		if err == nil && len(lenientPs) != stats.Rows {
			t.Fatalf("stats.Rows = %d but %d rows returned", stats.Rows, len(lenientPs))
		}
		if err == nil && len(lenientPs) < len(strictPs) {
			t.Fatalf("lenient kept %d rows, strict kept %d", len(lenientPs), len(strictPs))
		}
	})
}
