package poi

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"csdm/internal/geo"
)

func TestTaxonomyShape(t *testing.T) {
	if NumMajors != 15 {
		t.Fatalf("NumMajors = %d, want 15 (Table 3)", NumMajors)
	}
	if NumMinors != 98 {
		t.Fatalf("NumMinors = %d, want 98 (paper §5)", NumMinors)
	}
	// Every major has at least one minor; every minor maps to a valid major.
	var covered [NumMajors]bool
	for _, m := range Minors() {
		mj := m.Major()
		if int(mj) >= NumMajors {
			t.Fatalf("minor %v has invalid major", m)
		}
		covered[mj] = true
	}
	for i, ok := range covered {
		if !ok {
			t.Errorf("major %v has no minor categories", Major(i))
		}
	}
}

func TestMinorsOfPartition(t *testing.T) {
	total := 0
	for _, mj := range Majors() {
		ms := MinorsOf(mj)
		total += len(ms)
		for _, m := range ms {
			if m.Major() != mj {
				t.Errorf("MinorsOf(%v) returned %v with major %v", mj, m, m.Major())
			}
		}
	}
	if total != NumMinors {
		t.Fatalf("MinorsOf partitions %d minors, want %d", total, NumMinors)
	}
}

func TestMinorNamesUniqueAndResolvable(t *testing.T) {
	seen := make(map[string]bool)
	for _, m := range Minors() {
		name := m.String()
		if seen[name] {
			t.Fatalf("duplicate minor name %q", name)
		}
		seen[name] = true
		got, ok := MinorByName(name)
		if !ok || got != m {
			t.Fatalf("MinorByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := MinorByName("Nonexistent"); ok {
		t.Fatal("MinorByName should reject unknown names")
	}
}

func TestInvalidMinorAndMajorStrings(t *testing.T) {
	bad := Minor(200)
	if bad.Valid() {
		t.Fatal("Minor(200) should be invalid")
	}
	if !strings.Contains(bad.String(), "200") {
		t.Fatalf("invalid minor String = %q", bad.String())
	}
	if !strings.Contains(Major(99).String(), "99") {
		t.Fatal("invalid major should stringify with its number")
	}
}

func TestSemanticsSetOperations(t *testing.T) {
	s := SemanticsOf(Residence, Restaurant)
	if !s.Has(Residence) || !s.Has(Restaurant) || s.Has(Tourism) {
		t.Fatal("Has mismatch")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	u := s.Union(SemanticsOf(Tourism))
	if u.Count() != 3 || !u.Has(Tourism) {
		t.Fatal("Union mismatch")
	}
	if !u.Contains(s) || s.Contains(u) {
		t.Fatal("Contains mismatch")
	}
	var empty Semantics
	if !empty.IsEmpty() || !s.Contains(empty) {
		t.Fatal("empty-set behaviour mismatch")
	}
	ms := s.Majors()
	if len(ms) != 2 || ms[0] != Residence || ms[1] != Restaurant {
		t.Fatalf("Majors = %v", ms)
	}
}

func TestSemanticsContainsIsPartialOrder(t *testing.T) {
	f := func(a, b, c uint16) bool {
		sa := Semantics(a) & (1<<NumMajors - 1)
		sb := Semantics(b) & (1<<NumMajors - 1)
		sc := Semantics(c) & (1<<NumMajors - 1)
		// Reflexive.
		if !sa.Contains(sa) {
			return false
		}
		// Transitive.
		if sa.Contains(sb) && sb.Contains(sc) && !sa.Contains(sc) {
			return false
		}
		// Antisymmetric.
		if sa.Contains(sb) && sb.Contains(sa) && sa != sb {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSemanticsCosine(t *testing.T) {
	a := SemanticsOf(Residence)
	if c := a.Cosine(a); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self cosine = %v, want 1", c)
	}
	b := SemanticsOf(Restaurant)
	if c := a.Cosine(b); c != 0 {
		t.Fatalf("disjoint cosine = %v, want 0", c)
	}
	ab := SemanticsOf(Residence, Restaurant)
	want := 1 / math.Sqrt(2)
	if c := a.Cosine(ab); math.Abs(c-want) > 1e-12 {
		t.Fatalf("cosine = %v, want %v", c, want)
	}
	var empty Semantics
	if c := empty.Cosine(empty); c != 0 {
		t.Fatalf("empty cosine = %v, want 0", c)
	}
}

func TestSemanticsCosineSymmetricBounded(t *testing.T) {
	f := func(a, b uint16) bool {
		sa := Semantics(a) & (1<<NumMajors - 1)
		sb := Semantics(b) & (1<<NumMajors - 1)
		c1, c2 := sa.Cosine(sb), sb.Cosine(sa)
		return math.Abs(c1-c2) < 1e-12 && c1 >= 0 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSemanticsString(t *testing.T) {
	var empty Semantics
	if empty.String() != "∅" {
		t.Fatalf("empty String = %q", empty.String())
	}
	s := SemanticsOf(Residence, MedicalService)
	if got := s.String(); got != "Residence+Medical Service" {
		t.Fatalf("String = %q", got)
	}
}

func TestPOIAccessors(t *testing.T) {
	m, _ := MinorByName("Children Hospital")
	p := POI{ID: 7, Name: "Fudan Children's Hospital", Location: geo.Point{Lon: 121.44, Lat: 31.18}, Minor: m}
	if p.Major() != MedicalService {
		t.Fatalf("Major = %v", p.Major())
	}
	if !p.Semantics().Has(MedicalService) || p.Semantics().Count() != 1 {
		t.Fatalf("Semantics = %v", p.Semantics())
	}
	if !strings.Contains(p.String(), "Children Hospital") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestLocationsAndCategoryCount(t *testing.T) {
	ps := []POI{
		{ID: 1, Location: geo.Point{Lon: 1, Lat: 2}, Minor: MinorsOf(Residence)[0]},
		{ID: 2, Location: geo.Point{Lon: 3, Lat: 4}, Minor: MinorsOf(Residence)[1]},
		{ID: 3, Location: geo.Point{Lon: 5, Lat: 6}, Minor: MinorsOf(Tourism)[0]},
	}
	locs := Locations(ps)
	if len(locs) != 3 || locs[2] != (geo.Point{Lon: 5, Lat: 6}) {
		t.Fatalf("Locations = %v", locs)
	}
	counts := CategoryCount(ps)
	if counts[Residence] != 2 || counts[Tourism] != 1 {
		t.Fatalf("CategoryCount = %v", counts)
	}
}

func samplePOIs() []POI {
	return []POI{
		{ID: 1, Name: "Sunrise Apartments", Location: geo.Point{Lon: 121.47, Lat: 31.23}, Minor: MinorsOf(Residence)[1]},
		{ID: 2, Name: "Pudong \"Mega\" Mall, East Wing", Location: geo.Point{Lon: 121.50, Lat: 31.24}, Minor: MinorsOf(ShopMarket)[2]},
		{ID: 3, Name: "Noodle, House", Location: geo.Point{Lon: 121.48, Lat: 31.22}, Minor: MinorsOf(Restaurant)[3]},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ps := samplePOIs()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("round trip lost POIs: %d vs %d", len(got), len(ps))
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("POI %d mismatch:\n got %+v\nwant %+v", i, got[i], ps[i])
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header": "foo,name,lon,lat,minor\n",
		"bad id":     "id,name,lon,lat,minor\nx,a,1,2,Cafe\n",
		"bad lon":    "id,name,lon,lat,minor\n1,a,x,2,Cafe\n",
		"bad lat":    "id,name,lon,lat,minor\n1,a,1,x,Cafe\n",
		"bad minor":  "id,name,lon,lat,minor\n1,a,1,2,Spaceport\n",
		"bad coord":  "id,name,lon,lat,minor\n1,a,999,2,Cafe\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: ReadCSV accepted malformed input", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ps := samplePOIs()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("round trip lost POIs")
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("POI %d mismatch", i)
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`[{"id":1,"minor":250,"location":{"lon":1,"lat":2}}]`)); err == nil {
		t.Error("ReadJSON accepted invalid minor")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"id":1,"minor":0,"location":{"lon":999,"lat":2}}]`)); err == nil {
		t.Error("ReadJSON accepted invalid location")
	}
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Error("ReadJSON accepted truncated input")
	}
}
