package poi

import "fmt"

// Minor is one of the 98 minor semantic categories. Each minor belongs
// to exactly one major category; the registry below mirrors the
// structure of the paper's AMAP dataset (15 major, 98 minor types).
type Minor uint8

// minorEntry describes one minor category.
type minorEntry struct {
	name  string
	major Major
}

var minorTable = []minorEntry{
	// Residence (7)
	{"Residential Complex", Residence},
	{"Apartment", Residence},
	{"Villa", Residence},
	{"Dormitory", Residence},
	{"Community", Residence},
	{"Old Town Housing", Residence},
	{"Serviced Apartment", Residence},
	// Shop & Market (8)
	{"Supermarket", ShopMarket},
	{"Convenience Store", ShopMarket},
	{"Shopping Mall", ShopMarket},
	{"Clothing Store", ShopMarket},
	{"Electronics Store", ShopMarket},
	{"Wet Market", ShopMarket},
	{"Bookstore", ShopMarket},
	{"Furniture Store", ShopMarket},
	// Business & Office (7)
	{"Office Building", BusinessOffice},
	{"Corporate Headquarters", BusinessOffice},
	{"Coworking Space", BusinessOffice},
	{"Business Park", BusinessOffice},
	{"Trade Center", BusinessOffice},
	{"Agency Office", BusinessOffice},
	{"Startup Incubator", BusinessOffice},
	// Restaurant (8)
	{"Chinese Restaurant", Restaurant},
	{"Western Restaurant", Restaurant},
	{"Fast Food", Restaurant},
	{"Noodle House", Restaurant},
	{"Hotpot Restaurant", Restaurant},
	{"Cafe", Restaurant},
	{"Teahouse", Restaurant},
	{"Bakery", Restaurant},
	// Entertainment (8)
	{"Cinema", Entertainment},
	{"KTV", Entertainment},
	{"Bar", Entertainment},
	{"Night Club", Entertainment},
	{"Game Arcade", Entertainment},
	{"Internet Cafe", Entertainment},
	{"Theater", Entertainment},
	{"Amusement Park", Entertainment},
	// Public Service (6)
	{"Police Station", PublicService},
	{"Post Office", PublicService},
	{"Library", PublicService},
	{"Community Center", PublicService},
	{"Public Toilet", PublicService},
	{"Fire Station", PublicService},
	// Traffic Stations (7)
	{"Metro Station", TrafficStations},
	{"Bus Stop", TrafficStations},
	{"Railway Station", TrafficStations},
	{"Airport Terminal", TrafficStations},
	{"Taxi Stand", TrafficStations},
	{"Ferry Terminal", TrafficStations},
	{"Parking Lot", TrafficStations},
	// Technology & Education (7)
	{"University", TechEducation},
	{"College", TechEducation},
	{"High School", TechEducation},
	{"Primary School", TechEducation},
	{"Kindergarten", TechEducation},
	{"Research Institute", TechEducation},
	{"Training Center", TechEducation},
	// Sports (6)
	{"Gym", Sports},
	{"Stadium", Sports},
	{"Swimming Pool", Sports},
	{"Basketball Court", Sports},
	{"Football Field", Sports},
	{"Badminton Hall", Sports},
	// Government Agency (6)
	{"City Hall", GovernmentAgency},
	{"District Office", GovernmentAgency},
	{"Tax Bureau", GovernmentAgency},
	{"Court", GovernmentAgency},
	{"Customs Office", GovernmentAgency},
	{"Administrative Bureau", GovernmentAgency},
	// Industry (5)
	{"Factory", Industry},
	{"Industrial Park", Industry},
	{"Warehouse", Industry},
	{"Logistics Center", Industry},
	{"Manufacturing Plant", Industry},
	// Financial Service (6)
	{"Bank", FinancialService},
	{"ATM", FinancialService},
	{"Insurance Company", FinancialService},
	{"Securities Firm", FinancialService},
	{"Credit Union", FinancialService},
	{"Finance Office", FinancialService},
	// Medical Service (7)
	{"General Hospital", MedicalService},
	{"Children Hospital", MedicalService},
	{"Clinic", MedicalService},
	{"Pharmacy", MedicalService},
	{"Dental Clinic", MedicalService},
	{"Specialty Hospital", MedicalService},
	{"Health Center", MedicalService},
	// Accommodation & Hotel (5)
	{"Luxury Hotel", AccommodationHotel},
	{"Business Hotel", AccommodationHotel},
	{"Budget Hotel", AccommodationHotel},
	{"Hostel", AccommodationHotel},
	{"Guesthouse", AccommodationHotel},
	// Tourism (5)
	{"Scenic Spot", Tourism},
	{"Museum", Tourism},
	{"Temple", Tourism},
	{"City Park", Tourism},
	{"Landmark", Tourism},
}

// NumMinors is the number of minor categories (98, as in the paper).
var NumMinors = len(minorTable)

// Major returns the major category the minor belongs to.
func (m Minor) Major() Major {
	if int(m) < len(minorTable) {
		return minorTable[m].major
	}
	return Major(NumMajors) // invalid sentinel
}

// String implements fmt.Stringer.
func (m Minor) String() string {
	if int(m) < len(minorTable) {
		return minorTable[m].name
	}
	return fmt.Sprintf("Minor(%d)", uint8(m))
}

// Valid reports whether m names a registered minor category.
func (m Minor) Valid() bool { return int(m) < len(minorTable) }

// Minors returns all minor categories.
func Minors() []Minor {
	out := make([]Minor, len(minorTable))
	for i := range out {
		out[i] = Minor(i)
	}
	return out
}

// MinorsOf returns the minor categories under major m.
func MinorsOf(major Major) []Minor {
	var out []Minor
	for i, e := range minorTable {
		if e.major == major {
			out = append(out, Minor(i))
		}
	}
	return out
}

// MinorByName resolves a minor category by its exact name.
func MinorByName(name string) (Minor, bool) {
	for i, e := range minorTable {
		if e.name == name {
			return Minor(i), true
		}
	}
	return 0, false
}
