package trajectory

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// journeyHeader is the column layout of the journey CSV format.
var journeyHeader = []string{
	"taxi_id", "passenger_id",
	"pickup_lon", "pickup_lat", "pickup_time",
	"dropoff_lon", "dropoff_lat", "dropoff_time",
}

// WriteJourneysCSV writes journeys in the CSV exchange format
// (timestamps are RFC 3339).
func WriteJourneysCSV(w io.Writer, js []Journey) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(journeyHeader); err != nil {
		return fmt.Errorf("trajectory: write header: %w", err)
	}
	for _, j := range js {
		rec := []string{
			strconv.FormatInt(j.TaxiID, 10),
			strconv.FormatInt(j.PassengerID, 10),
			strconv.FormatFloat(j.Pickup.Lon, 'f', -1, 64),
			strconv.FormatFloat(j.Pickup.Lat, 'f', -1, 64),
			j.PickupTime.Format(time.RFC3339),
			strconv.FormatFloat(j.Dropoff.Lon, 'f', -1, 64),
			strconv.FormatFloat(j.Dropoff.Lat, 'f', -1, 64),
			j.DropoffTime.Format(time.RFC3339),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trajectory: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJourneysCSV parses journeys written by WriteJourneysCSV.
func ReadJourneysCSV(r io.Reader) ([]Journey, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(journeyHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trajectory: read header: %w", err)
	}
	for i, col := range journeyHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trajectory: header column %d: got %q, want %q", i, header[i], col)
		}
	}
	var out []Journey
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: %w", line, err)
		}
		j, err := parseJourney(rec)
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: %w", line, err)
		}
		out = append(out, j)
	}
	return out, nil
}

func parseJourney(rec []string) (Journey, error) {
	var j Journey
	var err error
	if j.TaxiID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return j, fmt.Errorf("bad taxi_id %q: %w", rec[0], err)
	}
	if j.PassengerID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return j, fmt.Errorf("bad passenger_id %q: %w", rec[1], err)
	}
	if j.Pickup.Lon, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return j, fmt.Errorf("bad pickup_lon %q: %w", rec[2], err)
	}
	if j.Pickup.Lat, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return j, fmt.Errorf("bad pickup_lat %q: %w", rec[3], err)
	}
	if j.PickupTime, err = time.Parse(time.RFC3339, rec[4]); err != nil {
		return j, fmt.Errorf("bad pickup_time %q: %w", rec[4], err)
	}
	if j.Dropoff.Lon, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return j, fmt.Errorf("bad dropoff_lon %q: %w", rec[5], err)
	}
	if j.Dropoff.Lat, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return j, fmt.Errorf("bad dropoff_lat %q: %w", rec[6], err)
	}
	if j.DropoffTime, err = time.Parse(time.RFC3339, rec[7]); err != nil {
		return j, fmt.Errorf("bad dropoff_time %q: %w", rec[7], err)
	}
	if !j.Pickup.Valid() || !j.Dropoff.Valid() {
		return j, fmt.Errorf("invalid coordinates")
	}
	if j.DropoffTime.Before(j.PickupTime) {
		return j, fmt.Errorf("dropoff before pickup")
	}
	return j, nil
}

// WriteSemanticJSON writes semantic trajectories as a JSON array.
func WriteSemanticJSON(w io.Writer, sts []SemanticTrajectory) error {
	return json.NewEncoder(w).Encode(sts)
}

// ReadSemanticJSON parses semantic trajectories from a JSON array.
func ReadSemanticJSON(r io.Reader) ([]SemanticTrajectory, error) {
	var out []SemanticTrajectory
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("trajectory: decode json: %w", err)
	}
	for i, st := range out {
		for k, sp := range st.Stays {
			if !sp.P.Valid() {
				return nil, fmt.Errorf("trajectory: entry %d stay %d: invalid location %v", i, k, sp.P)
			}
		}
	}
	return out, nil
}
