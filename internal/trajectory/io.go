package trajectory

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"csdm/internal/geo"
	"csdm/internal/load"
)

// journeyHeader is the column layout of the journey CSV format.
var journeyHeader = []string{
	"taxi_id", "passenger_id",
	"pickup_lon", "pickup_lat", "pickup_time",
	"dropoff_lon", "dropoff_lat", "dropoff_time",
}

// WriteJourneysCSV writes journeys in the CSV exchange format
// (timestamps are RFC 3339).
func WriteJourneysCSV(w io.Writer, js []Journey) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(journeyHeader); err != nil {
		return fmt.Errorf("trajectory: write header: %w", err)
	}
	for _, j := range js {
		rec := []string{
			strconv.FormatInt(j.TaxiID, 10),
			strconv.FormatInt(j.PassengerID, 10),
			strconv.FormatFloat(j.Pickup.Lon, 'f', -1, 64),
			strconv.FormatFloat(j.Pickup.Lat, 'f', -1, 64),
			j.PickupTime.Format(time.RFC3339),
			strconv.FormatFloat(j.Dropoff.Lon, 'f', -1, 64),
			strconv.FormatFloat(j.Dropoff.Lat, 'f', -1, 64),
			j.DropoffTime.Format(time.RFC3339),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trajectory: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJourneysCSV parses journeys written by WriteJourneysCSV, failing
// on the first malformed row.
func ReadJourneysCSV(r io.Reader) ([]Journey, error) {
	js, _, err := ReadJourneysCSVOptions(r, load.Options{})
	return js, err
}

// ReadJourneysCSVOptions parses journeys under the given failure
// policy. In strict mode (the zero Options) the first malformed row
// fails the load, matching ReadJourneysCSV. In lenient mode malformed
// rows — bad ids, NaN/Inf/out-of-range coordinates, unparseable
// timestamps, negative durations, CSV structural damage — are skipped
// and counted by reason, until the bad-row budget (if any) is
// exceeded. With a trace attached each reason is published as a
// load.journeys.skipped.<reason> counter.
func ReadJourneysCSVOptions(r io.Reader, opts load.Options) ([]Journey, load.Stats, error) {
	var out []Journey
	stats, err := StreamJourneysCSV(r, opts, func(j Journey) error {
		out = append(out, j)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// StreamJourneysCSV is ReadJourneysCSVOptions without the
// materialization: each parsed journey is handed to fn in stream order
// and never retained, so a caller can spill a country-scale corpus
// into an out-of-core store with O(1) memory. A non-nil error from fn
// aborts the stream and is returned as-is. The failure policy (strict,
// lenient, bad-row budget, stall guard) is identical to the
// materializing reader.
func StreamJourneysCSV(r io.Reader, opts load.Options, fn func(Journey) error) (load.Stats, error) {
	var stats load.Stats
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(journeyHeader)
	header, err := cr.Read()
	if err != nil {
		return stats, fmt.Errorf("trajectory: read header: %w", err)
	}
	for i, col := range journeyHeader {
		if header[i] != col {
			return stats, fmt.Errorf("trajectory: header column %d: got %q, want %q", i, header[i], col)
		}
	}
	for line := 2; ; line++ {
		offset := cr.InputOffset()
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err == nil {
			var j Journey
			if j, err = parseJourney(rec); err == nil {
				stats.Rows++
				if ferr := fn(j); ferr != nil {
					return stats, ferr
				}
				continue
			}
		}
		if !opts.Lenient {
			return stats, fmt.Errorf("trajectory: line %d: %w", line, err)
		}
		stats.Skip(load.Reason(err))
		if stats.OverBudget(opts) {
			stats.Note(opts.Trace, "journeys")
			return stats, fmt.Errorf("trajectory: line %d: %w after %d skipped rows: %w", line, load.ErrBudget, stats.TotalSkipped(), err)
		}
		if cr.InputOffset() == offset {
			// The reader could not get past the damage; bail out rather
			// than spin on the same offset forever.
			return stats, fmt.Errorf("trajectory: line %d: unrecoverable: %w", line, err)
		}
	}
	stats.Note(opts.Trace, "journeys")
	return stats, nil
}

func parseJourney(rec []string) (Journey, error) {
	var j Journey
	var err error
	if j.TaxiID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return j, &load.RowError{Reason: "id", Err: fmt.Errorf("bad taxi_id %q: %w", rec[0], err)}
	}
	if j.PassengerID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return j, &load.RowError{Reason: "id", Err: fmt.Errorf("bad passenger_id %q: %w", rec[1], err)}
	}
	if j.Pickup.Lon, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return j, &load.RowError{Reason: "coord-syntax", Err: fmt.Errorf("bad pickup_lon %q: %w", rec[2], err)}
	}
	if j.Pickup.Lat, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return j, &load.RowError{Reason: "coord-syntax", Err: fmt.Errorf("bad pickup_lat %q: %w", rec[3], err)}
	}
	if j.PickupTime, err = time.Parse(time.RFC3339, rec[4]); err != nil {
		return j, &load.RowError{Reason: "time", Err: fmt.Errorf("bad pickup_time %q: %w", rec[4], err)}
	}
	if j.Dropoff.Lon, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return j, &load.RowError{Reason: "coord-syntax", Err: fmt.Errorf("bad dropoff_lon %q: %w", rec[5], err)}
	}
	if j.Dropoff.Lat, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return j, &load.RowError{Reason: "coord-syntax", Err: fmt.Errorf("bad dropoff_lat %q: %w", rec[6], err)}
	}
	if j.DropoffTime, err = time.Parse(time.RFC3339, rec[7]); err != nil {
		return j, &load.RowError{Reason: "time", Err: fmt.Errorf("bad dropoff_time %q: %w", rec[7], err)}
	}
	for _, p := range []geo.Point{j.Pickup, j.Dropoff} {
		if err := p.Check(); err != nil {
			return j, &load.RowError{Reason: coordReason(err), Err: fmt.Errorf("invalid coordinates: %w", err)}
		}
	}
	if j.DropoffTime.Before(j.PickupTime) {
		return j, &load.RowError{Reason: "duration", Err: fmt.Errorf("dropoff before pickup")}
	}
	return j, nil
}

// coordReason maps a geo coordinate rejection to a skip-reason key.
func coordReason(err error) string {
	var ce *geo.CoordError
	if errors.As(err, &ce) {
		return "coord-" + ce.Reason
	}
	return "coord"
}

// WriteSemanticJSON writes semantic trajectories as a JSON array.
func WriteSemanticJSON(w io.Writer, sts []SemanticTrajectory) error {
	return json.NewEncoder(w).Encode(sts)
}

// ReadSemanticJSON parses semantic trajectories from a JSON array.
func ReadSemanticJSON(r io.Reader) ([]SemanticTrajectory, error) {
	var out []SemanticTrajectory
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("trajectory: decode json: %w", err)
	}
	for i, st := range out {
		for k, sp := range st.Stays {
			if !sp.P.Valid() {
				return nil, fmt.Errorf("trajectory: entry %d stay %d: invalid location %v", i, k, sp.P)
			}
		}
	}
	return out, nil
}
