package trajectory

import (
	"sort"
	"time"

	"csdm/internal/geo"
)

// Journey is one taxi trip record: a pick-up and a drop-off, as stored
// in the paper's Shanghai logs. PassengerID is non-zero for the ~20% of
// passengers identified by payment-card information.
type Journey struct {
	TaxiID      int64     `json:"taxi_id"`
	PassengerID int64     `json:"passenger_id,omitempty"`
	Pickup      geo.Point `json:"pickup"`
	PickupTime  time.Time `json:"pickup_time"`
	Dropoff     geo.Point `json:"dropoff"`
	DropoffTime time.Time `json:"dropoff_time"`
}

// StayPoints returns the journey's pick-up and drop-off as stay points —
// the paper selects them as stay points directly (§5, Figure 8).
func (j Journey) StayPoints() []StayPoint {
	return []StayPoint{
		{P: j.Pickup, T: j.PickupTime},
		{P: j.Dropoff, T: j.DropoffTime},
	}
}

// ChainParams controls how card-linked journeys are chained.
type ChainParams struct {
	// MergeDist merges a drop-off with the next pick-up when they are
	// within this many meters (the passenger stayed at one place).
	MergeDist float64
	// MinStays drops chained card-passenger trajectories shorter than
	// this; the paper recovers trajectories "with at least three stay
	// points".
	MinStays int
	// KeepAnonymous keeps each journey without a passenger ID as a
	// two-stay trajectory. The paper mines patterns from all pick-up/
	// drop-off pairs (Figure 8), not only the card-linked chains.
	KeepAnonymous bool
}

// DefaultChainParams mirror the paper's setup.
func DefaultChainParams() ChainParams {
	return ChainParams{MergeDist: 150, MinStays: 3, KeepAnonymous: true}
}

// Chain links the journeys of each card-identified passenger within one
// calendar day into long movement trajectories (§5), and keeps anonymous
// journeys as two-stay trajectories. Consecutive drop-off/pick-up pairs
// at the same place merge into a single stay point. Trajectories with
// fewer than MinStays stay points are dropped.
func Chain(journeys []Journey, p ChainParams) []SemanticTrajectory {
	type dayKey struct {
		passenger int64
		day       int64 // unix day number
	}
	byPassenger := make(map[dayKey][]Journey)
	var anonymous []Journey
	for _, j := range journeys {
		if j.PassengerID == 0 {
			anonymous = append(anonymous, j)
			continue
		}
		k := dayKey{passenger: j.PassengerID, day: j.PickupTime.Unix() / 86400}
		byPassenger[k] = append(byPassenger[k], j)
	}

	var out []SemanticTrajectory
	var id int64 = 1

	// Deterministic iteration over the map for reproducible output.
	keys := make([]dayKey, 0, len(byPassenger))
	for k := range byPassenger {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].passenger != keys[b].passenger {
			return keys[a].passenger < keys[b].passenger
		}
		return keys[a].day < keys[b].day
	})

	for _, k := range keys {
		js := byPassenger[k]
		sort.Slice(js, func(a, b int) bool { return js[a].PickupTime.Before(js[b].PickupTime) })
		var stays []StayPoint
		for _, j := range js {
			stays = appendStay(stays, StayPoint{P: j.Pickup, T: j.PickupTime}, p.MergeDist)
			stays = appendStay(stays, StayPoint{P: j.Dropoff, T: j.DropoffTime}, p.MergeDist)
		}
		if len(stays) >= p.MinStays {
			out = append(out, SemanticTrajectory{ID: id, PassengerID: k.passenger, Stays: stays})
			id++
		}
	}

	if p.KeepAnonymous {
		for _, j := range anonymous {
			out = append(out, SemanticTrajectory{ID: id, Stays: j.StayPoints()})
			id++
		}
	}
	return out
}

// appendStay appends sp, merging it into the previous stay when the two
// are within mergeDist (keeping the earlier timestamp and the midpoint).
func appendStay(stays []StayPoint, sp StayPoint, mergeDist float64) []StayPoint {
	if n := len(stays); n > 0 && geo.Haversine(stays[n-1].P, sp.P) <= mergeDist {
		prev := stays[n-1]
		stays[n-1] = StayPoint{
			P: geo.Point{
				Lon: (prev.P.Lon + sp.P.Lon) / 2,
				Lat: (prev.P.Lat + sp.P.Lat) / 2,
			},
			T: prev.T,
		}
		return stays
	}
	return append(stays, sp)
}
