package trajectory

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"csdm/internal/load"
	"csdm/internal/poi"
)

func sampleJourneys() []Journey {
	return []Journey{
		{TaxiID: 1, PassengerID: 42, Pickup: at(0, 0), PickupTime: t0, Dropoff: at(8000, 0), DropoffTime: t0.Add(30 * time.Minute)},
		{TaxiID: 2, PassengerID: 0, Pickup: at(100, 200), PickupTime: t0.Add(time.Hour), Dropoff: at(-3000, 400), DropoffTime: t0.Add(80 * time.Minute)},
	}
}

func TestJourneysCSVRoundTrip(t *testing.T) {
	js := sampleJourneys()
	var buf bytes.Buffer
	if err := WriteJourneysCSV(&buf, js); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJourneysCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(js) {
		t.Fatalf("round trip lost journeys")
	}
	for i := range js {
		if got[i].TaxiID != js[i].TaxiID || got[i].PassengerID != js[i].PassengerID {
			t.Fatalf("journey %d id mismatch", i)
		}
		if !got[i].PickupTime.Equal(js[i].PickupTime) || !got[i].DropoffTime.Equal(js[i].DropoffTime) {
			t.Fatalf("journey %d time mismatch", i)
		}
		if got[i].Pickup != js[i].Pickup || got[i].Dropoff != js[i].Dropoff {
			t.Fatalf("journey %d location mismatch", i)
		}
	}
}

func TestJourneysCSVRejectsMalformed(t *testing.T) {
	valid := "taxi_id,passenger_id,pickup_lon,pickup_lat,pickup_time,dropoff_lon,dropoff_lat,dropoff_time\n"
	cases := map[string]string{
		"bad header":     "x,passenger_id,pickup_lon,pickup_lat,pickup_time,dropoff_lon,dropoff_lat,dropoff_time\n",
		"bad taxi":       valid + "x,0,121,31,2015-04-06T08:00:00Z,121,31,2015-04-06T09:00:00Z\n",
		"bad time":       valid + "1,0,121,31,yesterday,121,31,2015-04-06T09:00:00Z\n",
		"bad coord":      valid + "1,0,999,31,2015-04-06T08:00:00Z,121,31,2015-04-06T09:00:00Z\n",
		"reversed times": valid + "1,0,121,31,2015-04-06T09:00:00Z,121,31,2015-04-06T08:00:00Z\n",
	}
	for name, data := range cases {
		if _, err := ReadJourneysCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted malformed input", name)
		}
	}
}

func TestSemanticJSONRoundTrip(t *testing.T) {
	sts := []SemanticTrajectory{
		mkST(1, []poi.Semantics{office, home}, [][2]float64{{0, 0}, {5000, 0}}, time.Hour),
		mkST(2, []poi.Semantics{restaurant}, [][2]float64{{100, 100}}, time.Hour),
	}
	var buf bytes.Buffer
	if err := WriteSemanticJSON(&buf, sts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSemanticJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Len() != 2 || got[1].Len() != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got[0].Stays[1].S != home {
		t.Fatalf("semantics lost in round trip")
	}
	if !got[0].Stays[0].T.Equal(sts[0].Stays[0].T) {
		t.Fatalf("timestamps lost in round trip")
	}
}

func TestSemanticJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadSemanticJSON(strings.NewReader(`[{"id":1,"stays":[{"p":{"lon":999,"lat":0}}]}]`)); err == nil {
		t.Error("accepted invalid stay location")
	}
	if _, err := ReadSemanticJSON(strings.NewReader(`[`)); err == nil {
		t.Error("accepted truncated JSON")
	}
}

func TestStreamJourneysCSV(t *testing.T) {
	js := sampleJourneys()
	var buf bytes.Buffer
	if err := WriteJourneysCSV(&buf, js); err != nil {
		t.Fatal(err)
	}
	var got []Journey
	stats, err := StreamJourneysCSV(&buf, load.Options{}, func(j Journey) error {
		got = append(got, j)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != len(js) || len(got) != len(js) {
		t.Fatalf("streamed %d rows (stats %d), want %d", len(got), stats.Rows, len(js))
	}
	for i := range js {
		if got[i].Pickup != js[i].Pickup || got[i].Dropoff != js[i].Dropoff {
			t.Fatalf("journey %d location mismatch", i)
		}
	}

	// A callback error aborts the stream and surfaces unchanged.
	if err := WriteJourneysCSV(&buf, js); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	n := 0
	_, err = StreamJourneysCSV(&buf, load.Options{}, func(Journey) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Fatalf("callback abort: err = %v after %d rows, want sentinel after 1", err, n)
	}

	// Lenient mode skips damage and keeps streaming, like the
	// materializing reader.
	valid := "taxi_id,passenger_id,pickup_lon,pickup_lat,pickup_time,dropoff_lon,dropoff_lat,dropoff_time\n"
	data := valid +
		"1,0,121,31,2015-04-06T08:00:00Z,121,31,2015-04-06T09:00:00Z\n" +
		"x,0,121,31,2015-04-06T08:00:00Z,121,31,2015-04-06T09:00:00Z\n" +
		"2,0,121,31,2015-04-06T08:00:00Z,121,31,2015-04-06T09:00:00Z\n"
	n = 0
	stats, err = StreamJourneysCSV(strings.NewReader(data), load.Options{Lenient: true}, func(Journey) error {
		n++
		return nil
	})
	if err != nil || n != 2 || stats.Rows != 2 || stats.TotalSkipped() != 1 {
		t.Fatalf("lenient stream: n=%d stats=%v err=%v", n, stats, err)
	}
}
