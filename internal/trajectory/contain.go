package trajectory

import (
	"time"

	"csdm/internal/geo"
)

// ContainParams are the parameters of Definition 7: ε_t bounds the
// distance between matched stay points and δ_t bounds the time gap
// between consecutive stay points on both sides.
type ContainParams struct {
	// MaxDist ε_t: location-proximity bound in meters.
	MaxDist float64
	// MaxGap δ_t: temporal-similarity bound between consecutive stays.
	MaxGap time.Duration
}

// Contains reports whether st contains st' (Definition 7) and, when it
// does, returns the indices into st.Stays of the counterpart subsequence
// ST” (one index per stay of st', in order). Conditions: (i) matched
// stays are within ε_t, (ii) consecutive gaps in both the counterpart
// and st' are at most δ_t, (iii) each matched stay's semantics is a
// superset of the corresponding stay of st'.
func Contains(st, stp SemanticTrajectory, p ContainParams) ([]int, bool) {
	m, n := len(st.Stays), len(stp.Stays)
	if n == 0 || m < n {
		return nil, false
	}
	// Condition (ii) on st' itself.
	for j := 0; j+1 < n; j++ {
		if absDur(stp.Stays[j+1].T.Sub(stp.Stays[j].T)) > p.MaxGap {
			return nil, false
		}
	}
	match := make([]int, n)
	if matchFrom(st, stp, p, 0, 0, match) {
		return match, true
	}
	return nil, false
}

// matchFrom searches for a counterpart of stp.Stays[j:] within
// st.Stays[i:], backtracking so that a failed greedy choice does not
// hide a valid later one.
func matchFrom(st, stp SemanticTrajectory, p ContainParams, i, j int, match []int) bool {
	if j == len(stp.Stays) {
		return true
	}
	for k := i; k <= len(st.Stays)-(len(stp.Stays)-j); k++ {
		a, b := st.Stays[k], stp.Stays[j]
		if !a.S.Contains(b.S) {
			continue
		}
		if geo.Haversine(a.P, b.P) > p.MaxDist {
			continue
		}
		if j > 0 {
			prev := st.Stays[match[j-1]]
			if absDur(a.T.Sub(prev.T)) > p.MaxGap {
				// Counterpart stays are in trajectory order, so gaps only
				// grow as k advances; no later k can satisfy this either.
				return false
			}
		}
		match[j] = k
		if matchFrom(st, stp, p, k+1, j+1, match) {
			return true
		}
	}
	return false
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Database is a set D of semantic trajectories.
type Database []SemanticTrajectory

// Closure computes, for a query trajectory st', every database
// trajectory that contains or reachable contains st' (Definition 8) and
// its counterpart CP(ST_i, st') (Definition 9). The returned map is
// keyed by database index; each value lists the counterpart stay points
// aligned with st'.
//
// The search runs breadth-first: level 0 holds the trajectories that
// directly contain st'; at each later level, a trajectory that contains
// the *counterpart* of an already-reached trajectory reaches st'
// transitively, and its own counterpart is CP over that counterpart,
// exactly the recursive case of Definition 9.
func (d Database) Closure(stp SemanticTrajectory, p ContainParams) map[int][]StayPoint {
	found := make(map[int][]StayPoint)
	frontier := []SemanticTrajectory{stp}
	for len(frontier) > 0 {
		var next []SemanticTrajectory
		for i, st := range d {
			if _, ok := found[i]; ok {
				continue
			}
			for _, target := range frontier {
				if idxs, ok := Contains(st, target, p); ok {
					cp := make([]StayPoint, len(idxs))
					for j, k := range idxs {
						cp[j] = st.Stays[k]
					}
					found[i] = cp
					next = append(next, SemanticTrajectory{ID: st.ID, Stays: cp})
					break
				}
			}
		}
		frontier = next
	}
	return found
}

// Support returns ST.sup(D): the number of database trajectories that
// contain or reachable contain stp.
func (d Database) Support(stp SemanticTrajectory, p ContainParams) int {
	return len(d.Closure(stp, p))
}

// Groups computes Group(sp_j) for every stay point of stp
// (Definition 10): position j's group collects the j-th counterpart
// stay point of every trajectory in the closure, plus sp_j itself.
func (d Database) Groups(stp SemanticTrajectory, p ContainParams) [][]StayPoint {
	closure := d.Closure(stp, p)
	groups := make([][]StayPoint, len(stp.Stays))
	for j, sp := range stp.Stays {
		groups[j] = append(groups[j], sp)
	}
	for _, cp := range closure {
		for j, sp := range cp {
			groups[j] = append(groups[j], sp)
		}
	}
	return groups
}
