// Package trajectory implements the paper's trajectory model: raw GPS
// trajectories (Definition 1), stay-point detection (Definition 5),
// semantic trajectories (Definition 6), the containment relations and
// counterpart function (Definitions 7–9), stay-point groups
// (Definition 10), and the chaining of card-linked taxi journeys into
// multi-stay movement trajectories (§5).
package trajectory

import (
	"fmt"
	"time"

	"csdm/internal/geo"
	"csdm/internal/poi"
)

// GPSPoint is one (p, t) sample of a raw GPS trajectory.
type GPSPoint struct {
	P geo.Point `json:"p"`
	T time.Time `json:"t"`
}

// Trajectory is a raw GPS trajectory T = {(p_1,t_1), …, (p_n,t_n)}
// (Definition 1).
type Trajectory struct {
	ID     int64      `json:"id"`
	Points []GPSPoint `json:"points"`
}

// StayPoint is a location where a commuter stopped to perform an
// activity (Definition 5): a coordinate, a representative timestamp and
// a semantic property (empty until semantic recognition runs).
type StayPoint struct {
	P geo.Point     `json:"p"`
	T time.Time     `json:"t"`
	S poi.Semantics `json:"s"`
}

// String implements fmt.Stringer.
func (sp StayPoint) String() string {
	return fmt.Sprintf("stay%s@%s[%s]", sp.P, sp.T.Format("15:04"), sp.S)
}

// SemanticTrajectory is the stay-point sequence derived from one
// trajectory (Definition 6). PassengerID links card-paying passengers
// across journeys; it is zero for anonymous trips.
type SemanticTrajectory struct {
	ID          int64       `json:"id"`
	PassengerID int64       `json:"passenger_id,omitempty"`
	Stays       []StayPoint `json:"stays"`
}

// Len returns the number of stay points.
func (st SemanticTrajectory) Len() int { return len(st.Stays) }

// Points extracts the coordinates of all stay points.
func (st SemanticTrajectory) Points() []geo.Point {
	out := make([]geo.Point, len(st.Stays))
	for i, sp := range st.Stays {
		out[i] = sp.P
	}
	return out
}

// SemanticSequence returns the per-stay semantic properties, the item
// sequence PrefixSpan mines over.
func (st SemanticTrajectory) SemanticSequence() []poi.Semantics {
	out := make([]poi.Semantics, len(st.Stays))
	for i, sp := range st.Stays {
		out[i] = sp.S
	}
	return out
}

// StayPointParams are the thresholds of Definition 5.
type StayPointParams struct {
	// MaxDist θ_d: every point of the stay sub-trajectory must be within
	// this distance (meters) of its first point.
	MaxDist float64
	// MinDuration θ_t: the sub-trajectory must span at least this long.
	MinDuration time.Duration
}

// DefaultStayPointParams are conventional values for urban GPS traces.
func DefaultStayPointParams() StayPointParams {
	return StayPointParams{MaxDist: 200, MinDuration: 20 * time.Minute}
}

// DetectStayPoints extracts the stay points of a raw trajectory per
// Definition 5. A maximal run of points all within θ_d of the run's
// first point and spanning at least θ_t becomes one stay point at the
// run's centroid with the run's mean timestamp. Semantic properties are
// left empty for the recognizer to fill.
func DetectStayPoints(t Trajectory, p StayPointParams) []StayPoint {
	pts := t.Points
	var stays []StayPoint
	i := 0
	for i < len(pts) {
		j := i + 1
		for j < len(pts) && geo.Haversine(pts[i].P, pts[j].P) <= p.MaxDist {
			j++
		}
		// pts[i:j] is the maximal run anchored at i.
		if pts[j-1].T.Sub(pts[i].T) >= p.MinDuration {
			stays = append(stays, centerOf(pts[i:j]))
			i = j
			continue
		}
		i++
	}
	return stays
}

// centerOf builds the stay point of a sub-trajectory: centroid location
// and mean timestamp (Definition 5).
func centerOf(run []GPSPoint) StayPoint {
	var lon, lat float64
	var nanos int64
	base := run[0].T
	for _, gp := range run {
		lon += gp.P.Lon
		lat += gp.P.Lat
		nanos += gp.T.Sub(base).Nanoseconds()
	}
	n := float64(len(run))
	return StayPoint{
		P: geo.Point{Lon: lon / n, Lat: lat / n},
		T: base.Add(time.Duration(nanos / int64(len(run)))),
	}
}

// ToSemantic converts a raw trajectory into a semantic trajectory by
// stay-point detection (semantics remain empty until recognition).
func ToSemantic(t Trajectory, p StayPointParams) SemanticTrajectory {
	return SemanticTrajectory{ID: t.ID, Stays: DetectStayPoints(t, p)}
}
