package trajectory

import (
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/poi"
)

var (
	origin = geo.Point{Lon: 121.47, Lat: 31.23}
	proj   = geo.NewProjection(origin)
	t0     = time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)
)

// at returns the point offset (x, y) meters from origin.
func at(x, y float64) geo.Point { return proj.ToPoint(geo.Meters{X: x, Y: y}) }

func TestDetectStayPointsBasic(t *testing.T) {
	// 30 min dwell at origin, a fast transit, 30 min dwell 5 km away.
	var pts []GPSPoint
	for i := 0; i < 10; i++ {
		pts = append(pts, GPSPoint{P: at(float64(i), 0), T: t0.Add(time.Duration(i) * 4 * time.Minute)})
	}
	for i := 0; i < 5; i++ {
		pts = append(pts, GPSPoint{P: at(1000*float64(i+1), 0), T: t0.Add(40*time.Minute + time.Duration(i)*time.Minute)})
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, GPSPoint{P: at(5000+float64(i), 0), T: t0.Add(50*time.Minute + time.Duration(i)*4*time.Minute)})
	}
	stays := DetectStayPoints(Trajectory{ID: 1, Points: pts}, StayPointParams{MaxDist: 200, MinDuration: 20 * time.Minute})
	if len(stays) != 2 {
		t.Fatalf("stays = %d, want 2", len(stays))
	}
	if d := geo.Haversine(stays[0].P, origin); d > 20 {
		t.Errorf("first stay %.1f m from origin", d)
	}
	if d := geo.Haversine(stays[1].P, at(5000, 0)); d > 20 {
		t.Errorf("second stay %.1f m from expected", d)
	}
	// Mean timestamp of the first dwell is t0 + 18 min.
	if got := stays[0].T; absDur(got.Sub(t0.Add(18*time.Minute))) > time.Minute {
		t.Errorf("first stay time = %v", got)
	}
}

func TestDetectStayPointsNoDwell(t *testing.T) {
	// Constant motion: no stay points.
	var pts []GPSPoint
	for i := 0; i < 60; i++ {
		pts = append(pts, GPSPoint{P: at(float64(i)*500, 0), T: t0.Add(time.Duration(i) * time.Minute)})
	}
	if stays := DetectStayPoints(Trajectory{Points: pts}, DefaultStayPointParams()); len(stays) != 0 {
		t.Fatalf("moving trajectory produced %d stays", len(stays))
	}
}

func TestDetectStayPointsShortDwellRejected(t *testing.T) {
	var pts []GPSPoint
	for i := 0; i < 5; i++ { // only 8 minutes
		pts = append(pts, GPSPoint{P: at(0, 0), T: t0.Add(time.Duration(i) * 2 * time.Minute)})
	}
	if stays := DetectStayPoints(Trajectory{Points: pts}, StayPointParams{MaxDist: 200, MinDuration: 20 * time.Minute}); len(stays) != 0 {
		t.Fatalf("8-minute dwell should not qualify, got %d stays", len(stays))
	}
}

func TestDetectStayPointsEmpty(t *testing.T) {
	if stays := DetectStayPoints(Trajectory{}, DefaultStayPointParams()); stays != nil {
		t.Fatalf("empty trajectory stays = %v", stays)
	}
}

// mkST builds a semantic trajectory with stays at the given meter
// offsets, one hour apart, carrying the given semantics.
func mkST(id int64, sems []poi.Semantics, offsets [][2]float64, gap time.Duration) SemanticTrajectory {
	st := SemanticTrajectory{ID: id}
	for i, o := range offsets {
		st.Stays = append(st.Stays, StayPoint{
			P: at(o[0], o[1]),
			T: t0.Add(time.Duration(i) * gap),
			S: sems[i],
		})
	}
	return st
}

var (
	office     = poi.SemanticsOf(poi.BusinessOffice)
	home       = poi.SemanticsOf(poi.Residence)
	restaurant = poi.SemanticsOf(poi.Restaurant)
)

// figure1 reproduces the containment chain of Figure 1: four
// Office→Home→Restaurant trajectories where consecutive ones are within
// ε_t of each other but the first and the last are not.
func figure1() (st1, st2, st3, st4 SemanticTrajectory, p ContainParams) {
	sems := []poi.Semantics{office, home, restaurant}
	gap := 30 * time.Minute
	st1 = mkST(1, sems, [][2]float64{{0, 0}, {5000, 0}, {10000, 0}}, gap)
	st2 = mkST(2, sems, [][2]float64{{80, 0}, {5080, 0}, {10080, 0}}, gap)
	st3 = mkST(3, sems, [][2]float64{{160, 0}, {5160, 0}, {10160, 0}}, gap)
	st4 = mkST(4, sems, [][2]float64{{240, 0}, {5240, 0}, {10240, 0}}, gap)
	p = ContainParams{MaxDist: 100, MaxGap: time.Hour}
	return
}

func TestContainsDirect(t *testing.T) {
	st1, st2, st3, st4, p := figure1()
	for _, pair := range []struct{ a, b SemanticTrajectory }{{st1, st2}, {st2, st3}, {st3, st4}} {
		if _, ok := Contains(pair.a, pair.b, p); !ok {
			t.Errorf("ST%d should contain ST%d", pair.a.ID, pair.b.ID)
		}
	}
	// 160 m apart: beyond ε_t, so no direct containment.
	if _, ok := Contains(st1, st3, p); ok {
		t.Error("ST1 should NOT directly contain ST3")
	}
	_ = st4
}

func TestContainsReturnsAlignedMatch(t *testing.T) {
	st1, st2, _, _, p := figure1()
	idxs, ok := Contains(st1, st2, p)
	if !ok || len(idxs) != 3 {
		t.Fatalf("match = %v, ok = %v", idxs, ok)
	}
	for j, k := range idxs {
		if k != j {
			t.Fatalf("match[%d] = %d, want %d", j, k, j)
		}
	}
}

func TestContainsSemanticSuperset(t *testing.T) {
	p := ContainParams{MaxDist: 100, MaxGap: time.Hour}
	rich := mkST(1, []poi.Semantics{office.Union(restaurant), home}, [][2]float64{{0, 0}, {5000, 0}}, time.Hour)
	poor := mkST(2, []poi.Semantics{office, home}, [][2]float64{{10, 0}, {5010, 0}}, time.Hour)
	if _, ok := Contains(rich, poor, p); !ok {
		t.Error("superset semantics should contain subset")
	}
	if _, ok := Contains(poor, rich, p); ok {
		t.Error("subset semantics should not contain superset")
	}
}

func TestContainsTemporalConstraintOnBothSides(t *testing.T) {
	p := ContainParams{MaxDist: 100, MaxGap: 45 * time.Minute}
	slow := mkST(1, []poi.Semantics{office, home}, [][2]float64{{0, 0}, {5000, 0}}, 2*time.Hour)
	fast := mkST(2, []poi.Semantics{office, home}, [][2]float64{{10, 0}, {5010, 0}}, 30*time.Minute)
	if _, ok := Contains(slow, fast, p); ok {
		t.Error("containing trajectory violating δ_t must be rejected")
	}
	if _, ok := Contains(fast, slow, p); ok {
		t.Error("contained trajectory violating δ_t must be rejected")
	}
}

func TestContainsSubsequenceSkipsExtraStays(t *testing.T) {
	p := ContainParams{MaxDist: 100, MaxGap: time.Hour}
	long := mkST(1,
		[]poi.Semantics{office, poi.SemanticsOf(poi.ShopMarket), home},
		[][2]float64{{0, 0}, {2500, 0}, {5000, 0}}, 25*time.Minute)
	short := SemanticTrajectory{ID: 2, Stays: []StayPoint{
		{P: at(10, 0), T: t0, S: office},
		{P: at(5010, 0), T: t0.Add(50 * time.Minute), S: home},
	}}
	idxs, ok := Contains(long, short, p)
	if !ok {
		t.Fatal("long trajectory should contain short one by skipping the middle stay")
	}
	if idxs[0] != 0 || idxs[1] != 2 {
		t.Fatalf("match = %v, want [0 2]", idxs)
	}
}

func TestContainsBacktracking(t *testing.T) {
	// Two candidate matches for the first stay; the first candidate is
	// spatially fine but breaks the temporal chain to the second stay.
	// A greedy matcher would fail; backtracking must succeed.
	p := ContainParams{MaxDist: 100, MaxGap: 40 * time.Minute}
	long := SemanticTrajectory{ID: 1, Stays: []StayPoint{
		{P: at(0, 0), T: t0, S: office},
		{P: at(20, 0), T: t0.Add(2 * time.Hour), S: office},
		{P: at(5000, 0), T: t0.Add(2*time.Hour + 30*time.Minute), S: home},
	}}
	short := SemanticTrajectory{ID: 2, Stays: []StayPoint{
		{P: at(10, 0), T: t0.Add(2 * time.Hour), S: office},
		{P: at(5010, 0), T: t0.Add(2*time.Hour + 25*time.Minute), S: home},
	}}
	idxs, ok := Contains(long, short, p)
	if !ok {
		t.Fatal("backtracking match should succeed")
	}
	if idxs[0] != 1 || idxs[1] != 2 {
		t.Fatalf("match = %v, want [1 2]", idxs)
	}
}

func TestContainsDegenerate(t *testing.T) {
	p := ContainParams{MaxDist: 100, MaxGap: time.Hour}
	st := mkST(1, []poi.Semantics{office}, [][2]float64{{0, 0}}, time.Hour)
	if _, ok := Contains(st, SemanticTrajectory{}, p); ok {
		t.Error("empty query should not be contained")
	}
	long := mkST(2, []poi.Semantics{office, home}, [][2]float64{{0, 0}, {5000, 0}}, time.Hour)
	if _, ok := Contains(st, long, p); ok {
		t.Error("shorter trajectory cannot contain longer one")
	}
}

func TestClosureReachableContainment(t *testing.T) {
	st1, st2, st3, st4, p := figure1()
	db := Database{st1, st2, st3, st4}
	closure := db.Closure(st4, p)
	// ST3 contains ST4 directly; ST2 reaches via ST3; ST1 via ST2.
	// ST4 contains itself.
	if len(closure) != 4 {
		t.Fatalf("closure size = %d, want 4 (ST1..ST4)", len(closure))
	}
	for i, cp := range closure {
		if len(cp) != 3 {
			t.Errorf("counterpart of db[%d] has %d stays, want 3", i, len(cp))
		}
	}
	// Counterpart of ST1 must be ST1's own stays (Definition 9 case ii).
	cp1 := closure[0]
	for j := range cp1 {
		if geo.Haversine(cp1[j].P, st1.Stays[j].P) > 1 {
			t.Errorf("CP(ST1, ST4)[%d] not aligned with ST1", j)
		}
	}
}

func TestSupportAndGroups(t *testing.T) {
	st1, st2, st3, st4, p := figure1()
	db := Database{st1, st2, st3, st4}
	if sup := db.Support(st4, p); sup != 4 {
		t.Fatalf("support = %d, want 4", sup)
	}
	groups := db.Groups(st4, p)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	for j, g := range groups {
		// Each group holds sp_j itself plus 4 counterparts (ST4 appears
		// twice: once as the query stay, once via its self-containment).
		if len(g) != 5 {
			t.Fatalf("group %d size = %d, want 5", j, len(g))
		}
		for _, sp := range g {
			if !sp.S.Contains(st4.Stays[j].S) {
				t.Errorf("group %d member has incompatible semantics %v", j, sp.S)
			}
		}
	}
}

func TestClosureUnrelatedTrajectoriesExcluded(t *testing.T) {
	st1, st2, _, _, p := figure1()
	far := mkST(9, []poi.Semantics{office, home, restaurant},
		[][2]float64{{50000, 0}, {55000, 0}, {60000, 0}}, 30*time.Minute)
	db := Database{st1, far}
	closure := db.Closure(st2, p)
	if _, ok := closure[1]; ok {
		t.Error("distant trajectory must not join the closure")
	}
	if _, ok := closure[0]; !ok {
		t.Error("st1 should be in the closure of st2")
	}
}

func TestChainJourneysLinked(t *testing.T) {
	// One passenger, three journeys in a day: home→office,
	// office→restaurant, restaurant→home.
	js := []Journey{
		{TaxiID: 1, PassengerID: 42, Pickup: at(0, 0), PickupTime: t0, Dropoff: at(8000, 0), DropoffTime: t0.Add(30 * time.Minute)},
		{TaxiID: 2, PassengerID: 42, Pickup: at(8020, 0), PickupTime: t0.Add(10 * time.Hour), Dropoff: at(12000, 0), DropoffTime: t0.Add(10*time.Hour + 20*time.Minute)},
		{TaxiID: 3, PassengerID: 42, Pickup: at(12010, 0), PickupTime: t0.Add(12 * time.Hour), Dropoff: at(30, 0), DropoffTime: t0.Add(12*time.Hour + 40*time.Minute)},
	}
	sts := Chain(js, DefaultChainParams())
	if len(sts) != 1 {
		t.Fatalf("chained trajectories = %d, want 1", len(sts))
	}
	st := sts[0]
	if st.PassengerID != 42 {
		t.Errorf("passenger = %d", st.PassengerID)
	}
	// home, office(merged), restaurant(merged), home = 4 stays.
	if st.Len() != 4 {
		t.Fatalf("stays = %d, want 4", st.Len())
	}
}

func TestChainSeparatesDaysAndPassengers(t *testing.T) {
	day2 := t0.Add(24 * time.Hour)
	js := []Journey{
		{PassengerID: 1, Pickup: at(0, 0), PickupTime: t0, Dropoff: at(5000, 0), DropoffTime: t0.Add(20 * time.Minute)},
		{PassengerID: 1, Pickup: at(5000, 0), PickupTime: t0.Add(time.Hour), Dropoff: at(9000, 0), DropoffTime: t0.Add(80 * time.Minute)},
		{PassengerID: 1, Pickup: at(0, 0), PickupTime: day2, Dropoff: at(5000, 0), DropoffTime: day2.Add(20 * time.Minute)},
		{PassengerID: 2, Pickup: at(0, 0), PickupTime: t0, Dropoff: at(5000, 0), DropoffTime: t0.Add(20 * time.Minute)},
	}
	sts := Chain(js, ChainParams{MergeDist: 150, MinStays: 3})
	// Only passenger 1 day 1 has ≥3 distinct stays (0, 5000, 9000).
	if len(sts) != 1 {
		t.Fatalf("trajectories = %d, want 1", len(sts))
	}
	if sts[0].Len() != 3 {
		t.Fatalf("stays = %d, want 3", sts[0].Len())
	}
}

func TestChainKeepsAnonymousWhenAllowed(t *testing.T) {
	js := []Journey{
		{Pickup: at(0, 0), PickupTime: t0, Dropoff: at(5000, 0), DropoffTime: t0.Add(20 * time.Minute)},
	}
	if sts := Chain(js, ChainParams{MergeDist: 150, MinStays: 3}); len(sts) != 0 {
		t.Fatalf("anonymous journey should be dropped without KeepAnonymous, got %d", len(sts))
	}
	sts := Chain(js, ChainParams{MergeDist: 150, MinStays: 3, KeepAnonymous: true})
	if len(sts) != 1 || sts[0].Len() != 2 {
		t.Fatalf("anonymous journey should survive with KeepAnonymous")
	}
}

func TestSemanticTrajectoryAccessors(t *testing.T) {
	st := mkST(5, []poi.Semantics{office, home}, [][2]float64{{0, 0}, {1000, 0}}, time.Hour)
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
	if pts := st.Points(); len(pts) != 2 || pts[0] != st.Stays[0].P {
		t.Fatalf("Points mismatch")
	}
	if seq := st.SemanticSequence(); len(seq) != 2 || seq[1] != home {
		t.Fatalf("SemanticSequence mismatch")
	}
}
