package trajectory

import (
	"math/rand"
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/poi"
)

// bruteContains exhaustively enumerates subsequences of st of length
// len(stp) and checks the Definition 7 conditions — the reference
// implementation for the backtracking matcher.
func bruteContains(st, stp SemanticTrajectory, p ContainParams) bool {
	n := len(stp.Stays)
	if n == 0 || len(st.Stays) < n {
		return false
	}
	for j := 0; j+1 < n; j++ {
		if absDur(stp.Stays[j+1].T.Sub(stp.Stays[j].T)) > p.MaxGap {
			return false
		}
	}
	idx := make([]int, n)
	var rec func(pos, from int) bool
	rec = func(pos, from int) bool {
		if pos == n {
			return true
		}
		for k := from; k < len(st.Stays); k++ {
			a, b := st.Stays[k], stp.Stays[pos]
			if !a.S.Contains(b.S) || geo.Haversine(a.P, b.P) > p.MaxDist {
				continue
			}
			if pos > 0 && absDur(a.T.Sub(st.Stays[idx[pos-1]].T)) > p.MaxGap {
				continue
			}
			idx[pos] = k
			if rec(pos+1, k+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// randomST builds a random semantic trajectory with stays on a small
// grid so that distance/semantic coincidences actually occur.
func randomST(rng *rand.Rand, maxLen int) SemanticTrajectory {
	n := 1 + rng.Intn(maxLen)
	st := SemanticTrajectory{ID: rng.Int63()}
	tt := t0
	for i := 0; i < n; i++ {
		tt = tt.Add(time.Duration(rng.Intn(90)) * time.Minute)
		sems := poi.SemanticsOf(poi.Major(rng.Intn(4)))
		if rng.Intn(3) == 0 {
			sems = sems.Add(poi.Major(rng.Intn(4)))
		}
		st.Stays = append(st.Stays, StayPoint{
			P: at(float64(rng.Intn(5))*60, 0),
			T: tt,
			S: sems,
		})
	}
	return st
}

func TestContainsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ContainParams{MaxDist: 100, MaxGap: time.Hour}
	for trial := 0; trial < 2000; trial++ {
		a := randomST(rng, 5)
		b := randomST(rng, 3)
		got, ok := Contains(a, b, p)
		want := bruteContains(a, b, p)
		if ok != want {
			t.Fatalf("trial %d: Contains = %v, brute force = %v\na=%v\nb=%v", trial, ok, want, a, b)
		}
		if ok {
			// Returned match must itself satisfy Definition 7.
			prev := -1
			for j, k := range got {
				if k <= prev {
					t.Fatalf("match not strictly increasing: %v", got)
				}
				prev = k
				sa, sb := a.Stays[k], b.Stays[j]
				if !sa.S.Contains(sb.S) || geo.Haversine(sa.P, sb.P) > p.MaxDist {
					t.Fatalf("match violates conditions at %d", j)
				}
				if j > 0 && absDur(sa.T.Sub(a.Stays[got[j-1]].T)) > p.MaxGap {
					t.Fatalf("match violates δ_t at %d", j)
				}
			}
		}
	}
}

func TestClosureContainsSelfSupport(t *testing.T) {
	// A trajectory whose consecutive gaps respect δ_t contains itself
	// (Definition 7 is reflexive under the temporal condition), so the
	// closure of such a database member always includes it.
	rng := rand.New(rand.NewSource(2))
	p := ContainParams{MaxDist: 100, MaxGap: time.Hour}
	withinDeltaT := func(st SemanticTrajectory) bool {
		for j := 1; j < st.Len(); j++ {
			if absDur(st.Stays[j].T.Sub(st.Stays[j-1].T)) > p.MaxGap {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 50; trial++ {
		var db Database
		for i := 0; i < 5; i++ {
			db = append(db, randomST(rng, 4))
		}
		q := rng.Intn(len(db))
		if !withinDeltaT(db[q]) {
			continue
		}
		closure := db.Closure(db[q], p)
		if _, ok := closure[q]; !ok {
			t.Fatalf("trial %d: trajectory %d missing from its own closure", trial, q)
		}
	}
}

func TestClosureMonotoneInEps(t *testing.T) {
	// Growing ε_t can only grow the closure.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		var db Database
		for i := 0; i < 6; i++ {
			db = append(db, randomST(rng, 3))
		}
		q := randomST(rng, 2)
		small := db.Closure(q, ContainParams{MaxDist: 60, MaxGap: time.Hour})
		large := db.Closure(q, ContainParams{MaxDist: 130, MaxGap: time.Hour})
		for i := range small {
			if _, ok := large[i]; !ok {
				t.Fatalf("trial %d: closure shrank when ε_t grew", trial)
			}
		}
	}
}
