package trajectory

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/load"
	"csdm/internal/obs"
)

// dirtyJourneyCSV builds a journey CSV with good rows interleaved with
// one bad row per failure flavor, returning the expected reason counts.
func dirtyJourneyCSV(good int) (string, map[string]int) {
	var b strings.Builder
	b.WriteString(strings.Join(journeyHeader, ",") + "\n")
	bad := map[string]int{}
	writeBad := func(row, reason string) {
		b.WriteString(row + "\n")
		bad[reason]++
	}
	for i := 0; i < good; i++ {
		fmt.Fprintf(&b, "%d,%d,121.4,31.2,2019-04-0%dT08:00:00Z,121.5,31.3,2019-04-0%dT08:30:00Z\n",
			i, i, i%9+1, i%9+1)
		switch i {
		case 1:
			writeBad("x,1,121.4,31.2,2019-04-01T08:00:00Z,121.5,31.3,2019-04-01T08:30:00Z", "id")
		case 3:
			writeBad("9,1,NaN,31.2,2019-04-01T08:00:00Z,121.5,31.3,2019-04-01T08:30:00Z", "coord-nan")
		case 5:
			writeBad("9,1,121.4,31.2,notatime,121.5,31.3,2019-04-01T08:30:00Z", "time")
		case 7:
			// Dropoff before pickup: a negative-duration journey.
			writeBad("9,1,121.4,31.2,2019-04-01T09:00:00Z,121.5,31.3,2019-04-01T08:30:00Z", "duration")
		case 9:
			writeBad("9,1,121.4,120,2019-04-01T08:00:00Z,121.5,31.3,2019-04-01T08:30:00Z", "coord-lat-range")
		case 11:
			writeBad("9,1,121.4,31.2", "csv")
		}
	}
	return b.String(), bad
}

func TestReadJourneysCSVLenientSkipsAndCounts(t *testing.T) {
	text, wantBad := dirtyJourneyCSV(30)
	tr := obs.New()
	js, stats, err := ReadJourneysCSVOptions(strings.NewReader(text), load.Options{Lenient: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 30 || stats.Rows != 30 {
		t.Fatalf("kept %d journeys (stats %d), want 30", len(js), stats.Rows)
	}
	for reason, want := range wantBad {
		if got := stats.Skipped[reason]; got != want {
			t.Errorf("skipped[%s] = %d, want %d", reason, got, want)
		}
		if got := tr.Counter("load.journeys.skipped." + reason); got != int64(want) {
			t.Errorf("counter load.journeys.skipped.%s = %d, want %d", reason, got, want)
		}
	}
	if stats.TotalSkipped() != len(wantBad) {
		t.Fatalf("TotalSkipped = %d, want %d: %v", stats.TotalSkipped(), len(wantBad), stats.Skipped)
	}
}

func TestReadJourneysCSVStrictStillFailsFast(t *testing.T) {
	text, _ := dirtyJourneyCSV(30)
	if _, err := ReadJourneysCSV(strings.NewReader(text)); err == nil {
		t.Fatal("strict mode accepted a dirty file")
	}
}

func TestReadJourneysCSVBadRowBudget(t *testing.T) {
	text, wantBad := dirtyJourneyCSV(30)
	nBad := 0
	for _, c := range wantBad {
		nBad += c
	}
	_, _, err := ReadJourneysCSVOptions(strings.NewReader(text), load.Options{Lenient: true, MaxBadRows: nBad - 1})
	if !errors.Is(err, load.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	_, stats, err := ReadJourneysCSVOptions(strings.NewReader(text), load.Options{Lenient: true, MaxBadRows: nBad})
	if err != nil || stats.TotalSkipped() != nBad {
		t.Fatalf("at-budget load: skipped %d, err %v", stats.TotalSkipped(), err)
	}
}

// FuzzReadJourneysCSV pins the journey loader against arbitrary input
// in both modes: an error or a journey set, never a panic or a hang.
func FuzzReadJourneysCSV(f *testing.F) {
	var good bytes.Buffer
	t0 := time.Date(2019, 4, 1, 8, 0, 0, 0, time.UTC)
	WriteJourneysCSV(&good, []Journey{{
		TaxiID: 1, PassengerID: 2,
		Pickup: geo.Point{Lon: 121.4, Lat: 31.2}, PickupTime: t0,
		Dropoff: geo.Point{Lon: 121.5, Lat: 31.3}, DropoffTime: t0.Add(30 * time.Minute),
	}})
	f.Add(good.Bytes())
	dirty, _ := dirtyJourneyCSV(8)
	f.Add([]byte(dirty))
	f.Add([]byte(strings.Join(journeyHeader, ",") + "\n\"bare,row\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		strictJs, _ := ReadJourneysCSV(bytes.NewReader(data))
		lenientJs, stats, err := ReadJourneysCSVOptions(bytes.NewReader(data), load.Options{Lenient: true, MaxBadRows: 100})
		if err == nil && len(lenientJs) != stats.Rows {
			t.Fatalf("stats.Rows = %d but %d journeys returned", stats.Rows, len(lenientJs))
		}
		if err == nil && len(lenientJs) < len(strictJs) {
			t.Fatalf("lenient kept %d, strict kept %d", len(lenientJs), len(strictJs))
		}
	})
}
