package geo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// shanghai is the reference origin used across the test suite.
var shanghai = Point{Lon: 121.47, Lat: 31.23}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(shanghai, shanghai); d != 0 {
		t.Fatalf("Haversine(p,p) = %v, want 0", d)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// One degree of latitude is ~111.19 km on the mean-radius sphere.
	a := Point{Lon: 121.47, Lat: 31.0}
	b := Point{Lon: 121.47, Lat: 32.0}
	d := Haversine(a, b)
	want := EarthRadiusMeters * math.Pi / 180
	if math.Abs(d-want) > 1 {
		t.Fatalf("1° latitude = %.1f m, want %.1f m", d, want)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(lon1, lat1, lon2, lat2 float64) bool {
		a := Point{Lon: math.Mod(lon1, 180), Lat: math.Mod(lat1, 90)}
		b := Point{Lon: math.Mod(lon2, 180), Lat: math.Mod(lat2, 90)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3 float64) bool {
		// Constrain to a city-sized region to avoid antipodal wrap.
		wrap := func(v, scale float64) float64 { return math.Mod(math.Abs(v), 1) * scale }
		a := Point{Lon: 121 + wrap(x1, 0.5), Lat: 31 + wrap(y1, 0.5)}
		b := Point{Lon: 121 + wrap(x2, 0.5), Lat: 31 + wrap(y2, 0.5)}
		c := Point{Lon: 121 + wrap(x3, 0.5), Lat: 31 + wrap(y3, 0.5)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{Lon: 121.47, Lat: 31.23}, true},
		{Point{Lon: -180, Lat: -90}, true},
		{Point{Lon: 180, Lat: 90}, true},
		{Point{Lon: 181, Lat: 0}, false},
		{Point{Lon: 0, Lat: 91}, false},
		{Point{Lon: math.NaN(), Lat: 0}, false},
		{Point{Lon: 0, Lat: math.Inf(1)}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(shanghai)
	f := func(dx, dy float64) bool {
		m := Meters{X: math.Mod(dx, 20000), Y: math.Mod(dy, 20000)}
		back := pr.ToMeters(pr.ToPoint(m))
		return math.Abs(back.X-m.X) < 1e-6 && math.Abs(back.Y-m.Y) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionApproximatesHaversine(t *testing.T) {
	pr := NewProjection(shanghai)
	a := Point{Lon: 121.40, Lat: 31.20}
	b := Point{Lon: 121.52, Lat: 31.28}
	planar := pr.ToMeters(a).Dist(pr.ToMeters(b))
	sphere := Haversine(a, b)
	if rel := math.Abs(planar-sphere) / sphere; rel > 0.005 {
		t.Fatalf("projection error %.4f%% too large (planar %.1f, haversine %.1f)",
			rel*100, planar, sphere)
	}
}

func TestRectContainsAndIntersects(t *testing.T) {
	r := NewRect(Point{Lon: 121.4, Lat: 31.2}, Point{Lon: 121.5, Lat: 31.3})
	if !r.Contains(Point{Lon: 121.45, Lat: 31.25}) {
		t.Error("center should be contained")
	}
	if !r.Contains(r.Min) || !r.Contains(r.Max) {
		t.Error("corners should be contained (inclusive)")
	}
	if r.Contains(Point{Lon: 121.39, Lat: 31.25}) {
		t.Error("outside point should not be contained")
	}
	o := NewRect(Point{Lon: 121.49, Lat: 31.29}, Point{Lon: 121.6, Lat: 31.4})
	if !r.Intersects(o) || !o.Intersects(r) {
		t.Error("overlapping rects should intersect both ways")
	}
	far := NewRect(Point{Lon: 122, Lat: 32}, Point{Lon: 123, Lat: 33})
	if r.Intersects(far) {
		t.Error("disjoint rects should not intersect")
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Point{Lon: 121.5, Lat: 31.3}, Point{Lon: 121.4, Lat: 31.2})
	if r.Min.Lon != 121.4 || r.Min.Lat != 31.2 || r.Max.Lon != 121.5 || r.Max.Lat != 31.3 {
		t.Fatalf("NewRect did not normalize: %+v", r)
	}
}

func TestRectUnionAndExtend(t *testing.T) {
	a := NewRect(Point{Lon: 1, Lat: 1}, Point{Lon: 2, Lat: 2})
	b := NewRect(Point{Lon: 3, Lat: 0}, Point{Lon: 4, Lat: 1})
	u := a.Union(b)
	for _, p := range []Point{a.Min, a.Max, b.Min, b.Max} {
		if !u.Contains(p) {
			t.Errorf("union must contain %v", p)
		}
	}
}

func TestBoundingRect(t *testing.T) {
	if got := (BoundingRect(nil)); got != (Rect{}) {
		t.Fatalf("empty BoundingRect = %+v, want zero", got)
	}
	pts := []Point{{Lon: 1, Lat: 5}, {Lon: 3, Lat: 2}, {Lon: 2, Lat: 9}}
	r := BoundingRect(pts)
	if r.Min.Lon != 1 || r.Min.Lat != 2 || r.Max.Lon != 3 || r.Max.Lat != 9 {
		t.Fatalf("BoundingRect = %+v", r)
	}
}

func TestCircleRectCoversCircle(t *testing.T) {
	const radius = 250.0
	r := CircleRect(shanghai, radius)
	// Sample the circle boundary; every boundary point must fall inside.
	pr := NewProjection(shanghai)
	for i := 0; i < 16; i++ {
		ang := float64(i) / 16 * 2 * math.Pi
		p := pr.ToPoint(Meters{X: radius * math.Cos(ang), Y: radius * math.Sin(ang)})
		if !r.Contains(p) {
			t.Fatalf("boundary point %v at angle %.2f outside CircleRect", p, ang)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{Lon: 0, Lat: 0}, {Lon: 2, Lat: 0}, {Lon: 1, Lat: 3}}
	c := Centroid(pts)
	if c.Lon != 1 || c.Lat != 1 {
		t.Fatalf("Centroid = %v, want (1,1)", c)
	}
	if z := Centroid(nil); z != (Point{}) {
		t.Fatalf("Centroid(nil) = %v", z)
	}
}

func TestVarianceZeroForIdenticalPoints(t *testing.T) {
	pts := []Point{shanghai, shanghai, shanghai}
	if v := Variance(pts); v > 1e-20 {
		t.Fatalf("Variance of identical points = %v", v)
	}
	if v := VarianceMeters(pts); v > 1e-9 {
		t.Fatalf("VarianceMeters of identical points = %v", v)
	}
}

func TestVarianceMatchesHandComputation(t *testing.T) {
	pts := []Point{{Lon: 0, Lat: 0}, {Lon: 2, Lat: 0}}
	// centroid (1,0); sum of squared deviations = 1+1 = 2; /(n-1) = 2.
	if v := Variance(pts); math.Abs(v-2) > 1e-12 {
		t.Fatalf("Variance = %v, want 2", v)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{
				Lon: 121 + math.Mod(raw[i], 1),
				Lat: 31 + math.Mod(raw[i+1], 1),
			})
		}
		return Variance(pts) >= 0 && VarianceMeters(pts) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGyrationRadiusAndDensity(t *testing.T) {
	pr := NewProjection(shanghai)
	// Four points on a 100 m circle: gyration radius = 100 m.
	var pts []Point
	for i := 0; i < 4; i++ {
		ang := float64(i) / 4 * 2 * math.Pi
		pts = append(pts, pr.ToPoint(Meters{X: 100 * math.Cos(ang), Y: 100 * math.Sin(ang)}))
	}
	if r := GyrationRadius(pts); math.Abs(r-100) > 0.5 {
		t.Fatalf("GyrationRadius = %v, want ~100", r)
	}
	want := 4 / (math.Pi * 100 * 100)
	if d := Density(pts); math.Abs(d-want)/want > 0.02 {
		t.Fatalf("Density = %v, want ~%v", d, want)
	}
}

func TestDensityClampsDegenerateSets(t *testing.T) {
	pts := []Point{shanghai, shanghai, shanghai}
	want := 3 / (math.Pi * MinDensityRadius * MinDensityRadius)
	if d := Density(pts); math.Abs(d-want) > 1e-9 {
		t.Fatalf("Density of coincident points = %v, want %v", d, want)
	}
	if d := Density(nil); d != 0 {
		t.Fatalf("Density(nil) = %v", d)
	}
}

func TestMeanPairwiseDistance(t *testing.T) {
	if d := MeanPairwiseDistance([]Point{shanghai}); d != 0 {
		t.Fatalf("single point mean pairwise = %v", d)
	}
	pr := NewProjection(shanghai)
	a := pr.ToPoint(Meters{X: 0, Y: 0})
	b := pr.ToPoint(Meters{X: 30, Y: 0})
	c := pr.ToPoint(Meters{X: 60, Y: 0})
	// pairs: 30 + 60 + 30 = 120; /3 = 40.
	if d := MeanPairwiseDistance([]Point{a, b, c}); math.Abs(d-40) > 0.1 {
		t.Fatalf("MeanPairwiseDistance = %v, want ~40", d)
	}
}

func TestNearestAndMedoidIndex(t *testing.T) {
	pr := NewProjection(shanghai)
	pts := []Point{
		pr.ToPoint(Meters{X: -100, Y: 0}),
		pr.ToPoint(Meters{X: 5, Y: 0}),
		pr.ToPoint(Meters{X: 200, Y: 0}),
	}
	if i := NearestIndex(shanghai, pts); i != 1 {
		t.Fatalf("NearestIndex = %d, want 1", i)
	}
	if i := MedoidIndex(pts); i != 1 {
		t.Fatalf("MedoidIndex = %d, want 1", i)
	}
	if i := NearestIndex(shanghai, nil); i != -1 {
		t.Fatalf("NearestIndex(nil) = %d, want -1", i)
	}
	if i := MedoidIndex(nil); i != -1 {
		t.Fatalf("MedoidIndex(nil) = %d, want -1", i)
	}
}

func TestGaussianKernelProperties(t *testing.T) {
	k := NewGaussianKernel(100)
	if k.Radius() != 100 {
		t.Fatalf("Radius = %v", k.Radius())
	}
	peak := k.WeightDist(0)
	want := 1 / ((100.0 / 3) * math.Sqrt(2*math.Pi))
	if math.Abs(peak-want) > 1e-12 {
		t.Fatalf("peak = %v, want %v", peak, want)
	}
	// Monotone decreasing in distance.
	prev := peak
	for d := 10.0; d <= 200; d += 10 {
		w := k.WeightDist(d)
		if w >= prev {
			t.Fatalf("kernel not decreasing at d=%v: %v >= %v", d, w, prev)
		}
		prev = w
	}
	// Weight between points equals WeightDist of their Haversine distance.
	pr := NewProjection(shanghai)
	p := pr.ToPoint(Meters{X: 50, Y: 0})
	if w1, w2 := k.Weight(shanghai, p), k.WeightDist(Haversine(shanghai, p)); math.Abs(w1-w2) > 1e-15 {
		t.Fatalf("Weight mismatch: %v vs %v", w1, w2)
	}
}

func TestGaussianKernelPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive radius")
		}
	}()
	NewGaussianKernel(0)
}

func BenchmarkHaversine(b *testing.B) {
	p := Point{Lon: 121.48, Lat: 31.24}
	for i := 0; i < b.N; i++ {
		Haversine(shanghai, p)
	}
}

func BenchmarkProjectionToMeters(b *testing.B) {
	pr := NewProjection(shanghai)
	p := Point{Lon: 121.48, Lat: 31.24}
	for i := 0; i < b.N; i++ {
		pr.ToMeters(p)
	}
}

func TestCheckCoordReasons(t *testing.T) {
	cases := []struct {
		lon, lat float64
		reason   string // "" = valid
	}{
		{0, 0, ""},
		{121.47, 31.23, ""},
		{-180, -90, ""},
		{180, 90, ""},
		{math.NaN(), 0, "nan"},
		{0, math.NaN(), "nan"},
		{math.Inf(1), 0, "inf"},
		{0, math.Inf(-1), "inf"},
		{181, 0, "lon-range"},
		{-180.001, 0, "lon-range"},
		{0, 91, "lat-range"},
		{0, -90.5, "lat-range"},
		// NaN wins over a range violation, matching the documented order.
		{math.NaN(), 200, "nan"},
	}
	for _, c := range cases {
		err := CheckCoord(c.lon, c.lat)
		if c.reason == "" {
			if err != nil {
				t.Errorf("CheckCoord(%v, %v) = %v, want nil", c.lon, c.lat, err)
			}
			continue
		}
		var ce *CoordError
		if !errors.As(err, &ce) || ce.Reason != c.reason {
			t.Errorf("CheckCoord(%v, %v) = %v, want reason %q", c.lon, c.lat, err, c.reason)
		}
		if p := (Point{Lon: c.lon, Lat: c.lat}); p.Valid() {
			t.Errorf("Point(%v, %v).Valid() = true with reason %q", c.lon, c.lat, c.reason)
		}
	}
}

func TestClampProducesValidPoints(t *testing.T) {
	cases := []struct{ in, want Point }{
		{Point{Lon: 121, Lat: 31}, Point{Lon: 121, Lat: 31}},
		{Point{Lon: 200, Lat: -100}, Point{Lon: 180, Lat: -90}},
		{Point{Lon: -999, Lat: 99}, Point{Lon: -180, Lat: 90}},
		{Point{Lon: math.Inf(1), Lat: math.Inf(-1)}, Point{Lon: 180, Lat: -90}},
		{Point{Lon: math.NaN(), Lat: math.NaN()}, Point{}},
	}
	for _, c := range cases {
		got := Clamp(c.in)
		if got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
		if !got.Valid() {
			t.Errorf("Clamp(%v) = %v is invalid", c.in, got)
		}
	}
}

func TestExpandMetersCoversHalo(t *testing.T) {
	const halo = 100.0
	// A tall tile far from the equator, where a center-latitude cosine
	// under-covers: every point within halo meters of the rect boundary
	// must land inside the expanded rect.
	r := Rect{Min: Point{Lon: 11.0, Lat: 59.0}, Max: Point{Lon: 11.2, Lat: 60.5}}
	ex := r.ExpandMeters(halo)
	if !ex.Contains(r.Min) || !ex.Contains(r.Max) {
		t.Fatal("ExpandMeters does not contain the original rect")
	}
	for i := 0; i < 64; i++ {
		// Walk the boundary, push halo meters outward from each corner
		// and edge midpoint in 16 directions.
		fx := float64(i%8) / 7
		fy := float64(i/8) / 7
		edge := Point{Lon: r.Min.Lon + fx*(r.Max.Lon-r.Min.Lon), Lat: r.Min.Lat + fy*(r.Max.Lat-r.Min.Lat)}
		pr := NewProjection(edge)
		for k := 0; k < 16; k++ {
			ang := float64(k) / 16 * 2 * math.Pi
			p := pr.ToPoint(Meters{X: halo * math.Cos(ang), Y: halo * math.Sin(ang)})
			if Haversine(edge, p) > halo+1e-6 {
				continue // projection overshoot; only in-halo points matter
			}
			if !ex.Contains(p) {
				t.Fatalf("point %v within %vm of rect point %v escapes ExpandMeters(%v)", p, halo, edge, halo)
			}
		}
	}
}

func TestExpandMetersZeroAndPoleClamp(t *testing.T) {
	r := Rect{Min: Point{Lon: 10, Lat: 20}, Max: Point{Lon: 11, Lat: 21}}
	if got := r.ExpandMeters(0); got != r {
		t.Fatalf("ExpandMeters(0) = %v, want unchanged", got)
	}
	polar := Rect{Min: Point{Lon: -10, Lat: 89.9}, Max: Point{Lon: 10, Lat: 89.95}}
	ex := polar.ExpandMeters(50_000)
	if ex.Max.Lat != 90 {
		t.Fatalf("polar expand Max.Lat = %v, want clamp at 90", ex.Max.Lat)
	}
	if ex.Min.Lon != -180 || ex.Max.Lon != 180 {
		t.Fatalf("polar expand lon span = [%v, %v], want full circle", ex.Min.Lon, ex.Max.Lon)
	}
}

func TestRectIntersectionAndDegArea(t *testing.T) {
	a := Rect{Min: Point{Lon: 0, Lat: 0}, Max: Point{Lon: 2, Lat: 2}}
	b := Rect{Min: Point{Lon: 1, Lat: 1}, Max: Point{Lon: 3, Lat: 4}}
	inter, ok := a.Intersection(b)
	if !ok {
		t.Fatal("overlapping rects reported disjoint")
	}
	want := Rect{Min: Point{Lon: 1, Lat: 1}, Max: Point{Lon: 2, Lat: 2}}
	if inter != want {
		t.Fatalf("Intersection = %v, want %v", inter, want)
	}
	if got := inter.DegArea(); got != 1 {
		t.Fatalf("DegArea = %v, want 1", got)
	}
	far := Rect{Min: Point{Lon: 10, Lat: 10}, Max: Point{Lon: 11, Lat: 11}}
	if _, ok := a.Intersection(far); ok {
		t.Fatal("disjoint rects reported overlapping")
	}
	// Containment: intersection is the smaller rect, full coverage.
	inner := Rect{Min: Point{Lon: 0.5, Lat: 0.5}, Max: Point{Lon: 1.5, Lat: 1.5}}
	inter, ok = a.Intersection(inner)
	if !ok || inter != inner {
		t.Fatalf("Intersection with contained rect = %v ok=%v, want %v", inter, ok, inner)
	}
}
