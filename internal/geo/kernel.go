package geo

import "math"

// GaussianKernel evaluates the Gaussian distribution coefficient of
// Equation (2),
//
//	‖p, p'‖ = 1/(σ·√(2π)) · exp(−d(p,p')² / (2σ²)),  σ = R3σ/3,
//
// which models GPS noise as a Gaussian whose 3σ envelope is R3σ. The
// kernel weighs a stay point's contribution to POI popularity and a
// POI's vote during semantic recognition.
type GaussianKernel struct {
	r3sigma float64
	sigma   float64
	norm    float64
	inv2s2  float64
}

// NewGaussianKernel returns a kernel with the given 3σ radius in meters.
// It panics if r3sigma is not positive, since every caller would divide
// by zero otherwise; the paper's default is 100 m.
func NewGaussianKernel(r3sigma float64) GaussianKernel {
	if r3sigma <= 0 {
		panic("geo: GaussianKernel radius must be positive")
	}
	s := r3sigma / 3
	return GaussianKernel{
		r3sigma: r3sigma,
		sigma:   s,
		norm:    1 / (s * math.Sqrt(2*math.Pi)),
		inv2s2:  1 / (2 * s * s),
	}
}

// Radius returns the kernel's 3σ cutoff radius in meters.
func (k GaussianKernel) Radius() float64 { return k.r3sigma }

// WeightDist evaluates the kernel at a precomputed distance in meters.
func (k GaussianKernel) WeightDist(d float64) float64 {
	return k.norm * math.Exp(-d*d*k.inv2s2)
}

// Weight evaluates the kernel between two WGS84 points.
func (k GaussianKernel) Weight(a, b Point) float64 {
	return k.WeightDist(Haversine(a, b))
}

// WeightSumInto folds the kernel weights between center and the
// identified packed points into acc, one addition per id in the ids'
// order, and returns the new accumulator. The incremental popularity
// update is bit-identical to a full rebuild only because of this shape:
// float addition is non-associative, so each new stay's weight must
// join the POI's running sum exactly where a full rebuild's canonical
// ascending-id loop would have added it — pre-summing the batch and
// adding once would round differently.
func (k GaussianKernel) WeightSumInto(acc float64, center Point, pp *PackedPoints, ids []int) float64 {
	for _, id := range ids {
		acc += k.WeightDist(Haversine(center, pp.At(id)))
	}
	return acc
}
