package geo

import "math"

// Centroid returns the arithmetic mean of pts in coordinate space, the
// p_c of Equation (1). It returns a zero Point for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sLon, sLat float64
	for _, p := range pts {
		sLon += p.Lon
		sLat += p.Lat
	}
	n := float64(len(pts))
	return Point{Lon: sLon / n, Lat: sLat / n}
}

// Variance implements Var(S) of Equation (1): the sample variance of the
// coordinate distribution around the centroid, in squared degrees, exactly
// as the paper defines it on raw (x, y) coordinates. It returns 0 for
// fewer than two points.
func Variance(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	c := Centroid(pts)
	var sum float64
	for _, p := range pts {
		dx := p.Lon - c.Lon
		dy := p.Lat - c.Lat
		sum += dx*dx + dy*dy
	}
	return sum / float64(len(pts)-1)
}

// VarianceMeters is Variance computed in a local metric projection,
// returning square meters. Thresholds in meters are easier to reason
// about than squared degrees, so the pipeline uses this variant.
func VarianceMeters(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	pr := NewProjection(Centroid(pts))
	var sum float64
	for _, p := range pts {
		m := pr.ToMeters(p)
		sum += m.X*m.X + m.Y*m.Y
	}
	return sum / float64(len(pts)-1)
}

// GyrationRadius returns the root-mean-square distance (meters) of pts
// from their centroid — the spatial "spread" of the set.
func GyrationRadius(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	c := Centroid(pts)
	var sum float64
	for _, p := range pts {
		d := Haversine(c, p)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pts)))
}

// MinDensityRadius clamps the gyration radius used by Density so that a
// pile of coincident points does not report infinite density. 5 m is
// below GPS accuracy, so the clamp never masks a real spread.
const MinDensityRadius = 5.0

// Density implements Den(S) of Table 2: the number of points per square
// meter inside the disc of the set's gyration radius,
//
//	Den(S) = |S| / (π · max(r_g, MinDensityRadius)²).
//
// The paper leaves Den unspecified; this definition makes its default
// threshold ρ = 0.002 m⁻² meaningful for σ≈50-point groups (≈56 m radius).
func Density(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	r := GyrationRadius(pts)
	if r < MinDensityRadius {
		r = MinDensityRadius
	}
	return float64(len(pts)) / (math.Pi * r * r)
}

// MeanPairwiseDistance returns the average Haversine distance (meters)
// over all unordered pairs of pts — the ss(Group) of Equation (9).
// It returns 0 for fewer than two points.
func MeanPairwiseDistance(pts []Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			sum += Haversine(pts[i], pts[j])
		}
	}
	return sum * 2 / float64(n*(n-1))
}

// NearestIndex returns the index in pts of the point closest to q, or -1
// when pts is empty. Ties resolve to the lowest index.
func NearestIndex(q Point, pts []Point) int {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if d := Haversine(q, p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// MedoidIndex returns the index of the point closest to the centroid of
// pts (the paper's CenterPoint: "the point closest to the cluster
// center"), or -1 when pts is empty.
func MedoidIndex(pts []Point) int {
	if len(pts) == 0 {
		return -1
	}
	return NearestIndex(Centroid(pts), pts)
}
