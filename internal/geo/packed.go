package geo

import "math"

// PackedPoints is a struct-of-arrays coordinate store: the lon/lat of a
// point set in two contiguous float64 slices, plus — once projected —
// the planar x/y under a local equirectangular projection in two more.
// The spatial indexes and the density-based clustering scan coordinates
// linearly in their hot loops; packing turns those scans from scattered
// []Point/[]Meters pointer-chasing into dense sequential reads while
// keeping full float64 precision, so every distance (and therefore every
// mined pattern) is bit-identical to the array-of-structs layout.
//
// A PackedPoints is mutable only through Pack and Project; after an
// index is built over it the store must be treated as frozen (indexes
// alias the slices rather than copying them). It must not be shared
// between concurrent builders.
type PackedPoints struct {
	// Lon[i]/Lat[i] are point i's WGS84 coordinates in degrees.
	Lon []float64
	Lat []float64
	// X[i]/Y[i] are point i's planar meters under Proj, valid only
	// after Project; both are filled by Projection.ProjectAll and are
	// bit-identical to per-point ToMeters results.
	X []float64
	Y []float64

	proj      Projection
	projected bool
}

// Pack copies pts into a packed store. The planar slices stay empty
// until Project runs; indexes project on demand at the centroid.
func Pack(pts []Point) *PackedPoints {
	pp := &PackedPoints{
		Lon: make([]float64, len(pts)),
		Lat: make([]float64, len(pts)),
	}
	for i, p := range pts {
		pp.Lon[i] = p.Lon
		pp.Lat[i] = p.Lat
	}
	return pp
}

// Len returns the number of packed points.
func (pp *PackedPoints) Len() int { return len(pp.Lon) }

// Append grows the store with pts, assigning them the next ids in
// order. If the store is already projected, the new tail is projected
// under the existing projection (same origin — ProjectAll is
// per-element, so the old points' planar bits are untouched and the
// tail's bits equal a from-scratch projection of the grown set at the
// same origin). Growth never disturbs an index built earlier over the
// store: the index aliases slice headers whose length predates the
// append, so it keeps answering over exactly the first Len-at-build
// points. The incremental CSD maintainer leans on both properties —
// stay points only ever gain ids, never move or reorder.
func (pp *PackedPoints) Append(pts []Point) {
	for _, p := range pts {
		pp.Lon = append(pp.Lon, p.Lon)
		pp.Lat = append(pp.Lat, p.Lat)
	}
	if pp.projected {
		lo := len(pp.X)
		for len(pp.X) < len(pp.Lon) {
			pp.X = append(pp.X, 0)
			pp.Y = append(pp.Y, 0)
		}
		pp.proj.ProjectAll(pp.X[lo:], pp.Y[lo:], pp.Lon[lo:], pp.Lat[lo:])
	}
}

// At returns point i as a Point value (exact coordinate bits, no
// rounding — At(i) equals the Point that was packed).
func (pp *PackedPoints) At(i int) Point {
	return Point{Lon: pp.Lon[i], Lat: pp.Lat[i]}
}

// Centroid returns the arithmetic mean of the packed points with the
// same accumulation order as Centroid over []Point, so a packed build
// anchors its projection at the bit-identical origin.
func (pp *PackedPoints) Centroid() Point {
	if len(pp.Lon) == 0 {
		return Point{}
	}
	var sLon, sLat float64
	for i := range pp.Lon {
		sLon += pp.Lon[i]
		sLat += pp.Lat[i]
	}
	n := float64(len(pp.Lon))
	return Point{Lon: sLon / n, Lat: sLat / n}
}

// LatBounds returns the minimum and maximum packed latitude (the
// latitude hull index backends bound projection distortion with).
// It returns (+Inf, -Inf) for an empty store.
func (pp *PackedPoints) LatBounds() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, lat := range pp.Lat {
		if lat < min {
			min = lat
		}
		if lat > max {
			max = lat
		}
	}
	return min, max
}

// Project fills X/Y with the batch projection of every point at origin
// and records the projection. Re-projecting at a different origin
// overwrites the planar slices; callers sharing one store across
// builders must agree on the origin (every builder in this codebase
// uses the centroid, so sharing is safe in practice).
func (pp *PackedPoints) Project(origin Point) Projection {
	pr := NewProjection(origin)
	if cap(pp.X) < len(pp.Lon) {
		pp.X = make([]float64, len(pp.Lon))
		pp.Y = make([]float64, len(pp.Lon))
	} else {
		pp.X = pp.X[:len(pp.Lon)]
		pp.Y = pp.Y[:len(pp.Lon)]
	}
	pr.ProjectAll(pp.X, pp.Y, pp.Lon, pp.Lat)
	pp.proj = pr
	pp.projected = true
	return pr
}

// EnsureProjected projects at the centroid unless a projection is
// already in place, and returns the store's projection. This is the
// builders' entry point: the first index over a store pays the batch
// projection, later builders (and OPTICS) reuse the planar slices.
func (pp *PackedPoints) EnsureProjected() Projection {
	if !pp.projected {
		return pp.Project(pp.Centroid())
	}
	return pp.proj
}

// Projected reports whether the planar slices are valid.
func (pp *PackedPoints) Projected() bool { return pp.projected }

// Proj returns the projection the planar slices were filled under
// (zero Projection before Project).
func (pp *PackedPoints) Proj() Projection { return pp.proj }
