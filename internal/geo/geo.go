// Package geo provides the geographic primitives used throughout csdm:
// WGS84 points, Haversine distances, a local equirectangular projection
// for fast metric math, and the spatial statistics (centroid, variance,
// gyration radius, density) that the paper's definitions are built on.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by Haversine.
const EarthRadiusMeters = 6371000.0

// Point is a WGS84 coordinate. Lon is the longitude (x), Lat the
// latitude (y), both in decimal degrees, matching the paper's p = (x, y).
type Point struct {
	Lon float64 `json:"lon"`
	Lat float64 `json:"lat"`
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lon, p.Lat)
}

// Valid reports whether the point is a finite coordinate inside the
// legal WGS84 ranges.
func (p Point) Valid() bool { return p.Check() == nil }

// CoordError reports why a coordinate pair is invalid. Reason is one of
// "nan", "inf", "lon-range", "lat-range" — stable keys the lenient
// loaders use as per-reason skip counters.
type CoordError struct {
	Reason string
	Lon    float64
	Lat    float64
}

// Error implements the error interface.
func (e *CoordError) Error() string {
	return fmt.Sprintf("geo: invalid coordinate (%v, %v): %s", e.Lon, e.Lat, e.Reason)
}

// CheckCoord classifies a lon/lat pair: nil when it is a finite WGS84
// coordinate, otherwise a *CoordError naming the first violated rule
// (NaN, then ±Inf, then longitude range, then latitude range).
func CheckCoord(lon, lat float64) error {
	switch {
	case math.IsNaN(lon) || math.IsNaN(lat):
		return &CoordError{Reason: "nan", Lon: lon, Lat: lat}
	case math.IsInf(lon, 0) || math.IsInf(lat, 0):
		return &CoordError{Reason: "inf", Lon: lon, Lat: lat}
	case lon < -180 || lon > 180:
		return &CoordError{Reason: "lon-range", Lon: lon, Lat: lat}
	case lat < -90 || lat > 90:
		return &CoordError{Reason: "lat-range", Lon: lon, Lat: lat}
	}
	return nil
}

// Check is CheckCoord on the point's own coordinates.
func (p Point) Check() error { return CheckCoord(p.Lon, p.Lat) }

// Clamp returns the nearest valid point: longitude and latitude are
// clamped into their WGS84 ranges (infinities land on the range edge)
// and NaN components collapse to zero. Synthetic generators clamp
// jittered coordinates so generated datasets always pass the loaders'
// validation.
func Clamp(p Point) Point {
	return Point{Lon: clampCoord(p.Lon, 180), Lat: clampCoord(p.Lat, 90)}
}

func clampCoord(v, limit float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v < -limit:
		return -limit
	case v > limit:
		return limit
	}
	return v
}

// Haversine returns the great-circle distance between a and b in meters.
// This is the d(p_i, p_j) of Table 2.
func Haversine(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(la1)*math.Cos(la2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Meters is a point in a local planar coordinate system, in meters.
type Meters struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between two planar points in
// meters. City-scale coordinates cannot overflow a float64 square, so
// the plain square root beats math.Hypot's overflow-safe path.
func (m Meters) Dist(o Meters) float64 {
	dx := m.X - o.X
	dy := m.Y - o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Projection is an equirectangular projection anchored at an origin.
// Within a city-scale extent (tens of kilometers) it is accurate to a
// small fraction of a percent, which lets hot loops use cheap planar
// math instead of Haversine.
type Projection struct {
	origin Point
	cosLat float64
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin Point) Projection {
	return Projection{origin: origin, cosLat: math.Cos(origin.Lat * math.Pi / 180)}
}

// Origin returns the anchor point of the projection.
func (pr Projection) Origin() Point { return pr.origin }

// CosLat returns the cosine of the origin's latitude — the projection's
// longitude scale factor. Index backends use it to bound the
// distortion of planar distances against the true spherical metric.
func (pr Projection) CosLat() float64 { return pr.cosLat }

// ToMeters converts a WGS84 point to local planar meters.
func (pr Projection) ToMeters(p Point) Meters {
	const degToRad = math.Pi / 180
	return Meters{
		X: (p.Lon - pr.origin.Lon) * degToRad * EarthRadiusMeters * pr.cosLat,
		Y: (p.Lat - pr.origin.Lat) * degToRad * EarthRadiusMeters,
	}
}

// ProjectAll batch-projects lon[i]/lat[i] into dstX[i]/dstY[i] for every
// i. The per-element arithmetic is the exact expression ToMeters
// evaluates — same operands, same order — so dstX[i]/dstY[i] are
// bit-identical to ToMeters(Point{Lon: lon[i], Lat: lat[i]}); packed
// stores filled through this API preserve every planar-distance result
// of the per-point path. All four slices must have equal length.
func (pr Projection) ProjectAll(dstX, dstY, lon, lat []float64) {
	const degToRad = math.Pi / 180
	for i := range lon {
		dstX[i] = (lon[i] - pr.origin.Lon) * degToRad * EarthRadiusMeters * pr.cosLat
		dstY[i] = (lat[i] - pr.origin.Lat) * degToRad * EarthRadiusMeters
	}
}

// ToPoint converts local planar meters back to a WGS84 point.
func (pr Projection) ToPoint(m Meters) Point {
	const radToDeg = 180 / math.Pi
	return Point{
		Lon: pr.origin.Lon + m.X/(EarthRadiusMeters*pr.cosLat)*radToDeg,
		Lat: pr.origin.Lat + m.Y/EarthRadiusMeters*radToDeg,
	}
}

// Rect is an axis-aligned bounding box over WGS84 coordinates.
type Rect struct {
	Min Point // south-west corner
	Max Point // north-east corner
}

// NewRect returns the rectangle spanning the two corners in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{Lon: math.Min(a.Lon, b.Lon), Lat: math.Min(a.Lat, b.Lat)},
		Max: Point{Lon: math.Max(a.Lon, b.Lon), Lat: math.Max(a.Lat, b.Lat)},
	}
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.Lon >= r.Min.Lon && p.Lon <= r.Max.Lon &&
		p.Lat >= r.Min.Lat && p.Lat <= r.Max.Lat
}

// Intersects reports whether the two rectangles overlap (inclusive).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.Lon <= o.Max.Lon && r.Max.Lon >= o.Min.Lon &&
		r.Min.Lat <= o.Max.Lat && r.Max.Lat >= o.Min.Lat
}

// Extend grows the rectangle to include p and returns the result.
func (r Rect) Extend(p Point) Rect {
	if p.Lon < r.Min.Lon {
		r.Min.Lon = p.Lon
	}
	if p.Lat < r.Min.Lat {
		r.Min.Lat = p.Lat
	}
	if p.Lon > r.Max.Lon {
		r.Max.Lon = p.Lon
	}
	if p.Lat > r.Max.Lat {
		r.Max.Lat = p.Lat
	}
	return r
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return r.Extend(o.Min).Extend(o.Max)
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{Lon: (r.Min.Lon + r.Max.Lon) / 2, Lat: (r.Min.Lat + r.Max.Lat) / 2}
}

// BufferMeters grows the rectangle by d meters on every side, using the
// latitude of the rectangle's center for the longitude scale.
func (r Rect) BufferMeters(d float64) Rect {
	const radToDeg = 180 / math.Pi
	dLat := d / EarthRadiusMeters * radToDeg
	cos := math.Cos(r.Center().Lat * math.Pi / 180)
	if cos < 1e-9 {
		cos = 1e-9
	}
	dLon := d / (EarthRadiusMeters * cos) * radToDeg
	return Rect{
		Min: Point{Lon: r.Min.Lon - dLon, Lat: r.Min.Lat - dLat},
		Max: Point{Lon: r.Max.Lon + dLon, Lat: r.Max.Lat + dLat},
	}
}

// ExpandMeters returns a rectangle guaranteed to contain every point
// within d meters (great-circle) of some point in r — the conservative
// halo the sharded pipeline loads stay points from. Unlike
// BufferMeters, which scales longitude by the cosine at the
// rectangle's center and can under-cover near the edges of a tall
// tile, the longitude widening here uses the spherical cap formula at
// the worst (highest-|lat|) latitude of the expanded band, so the
// result is a superset for any tile geometry short of the poles.
func (r Rect) ExpandMeters(d float64) Rect {
	if d <= 0 {
		return r
	}
	const radToDeg = 180 / math.Pi
	delta := d / EarthRadiusMeters // angular radius
	latMin := math.Max(r.Min.Lat-delta*radToDeg, -90)
	latMax := math.Min(r.Max.Lat+delta*radToDeg, 90)
	phi := math.Max(math.Abs(latMin), math.Abs(latMax)) / radToDeg
	sinRatio := math.Sin(delta) / math.Cos(phi)
	var dLonDeg float64
	if math.Cos(phi) <= 0 || sinRatio >= 1 {
		dLonDeg = 360 // band touches a pole: cover all longitudes
	} else {
		dLonDeg = math.Asin(sinRatio) * radToDeg
	}
	return Rect{
		Min: Point{Lon: math.Max(r.Min.Lon-dLonDeg, -180), Lat: latMin},
		Max: Point{Lon: math.Min(r.Max.Lon+dLonDeg, 180), Lat: latMax},
	}
}

// Intersection returns the overlap of the two rectangles and whether
// they overlap at all (inclusive, like Intersects).
func (r Rect) Intersection(o Rect) (Rect, bool) {
	if !r.Intersects(o) {
		return Rect{}, false
	}
	return Rect{
		Min: Point{Lon: math.Max(r.Min.Lon, o.Min.Lon), Lat: math.Max(r.Min.Lat, o.Min.Lat)},
		Max: Point{Lon: math.Min(r.Max.Lon, o.Max.Lon), Lat: math.Min(r.Max.Lat, o.Max.Lat)},
	}, true
}

// DegArea returns the rectangle's area in square degrees — a unitless
// quantity only meaningful as a ratio between overlapping rectangles
// (the serving layer's extent-coverage validation).
func (r Rect) DegArea() float64 {
	w := r.Max.Lon - r.Min.Lon
	h := r.Max.Lat - r.Min.Lat
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// BoundingRect returns the smallest rectangle containing all pts.
// It returns a zero Rect when pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.Extend(p)
	}
	return r
}

// CircleRect returns the bounding rectangle of the spherical cap
// centered at c with radius r meters. Range queries use it as a cheap
// prefilter before the exact Haversine check, so the box must contain
// the whole cap: the latitude span is the exact ±δ of the angular
// radius, and the longitude span uses the spherical formula
// Δλ = asin(sin δ / cos φ) — the cap's widest parallel is not at the
// center's latitude, so scaling by cos(φc) alone under-covers near the
// poles. When the cap touches a pole the longitude span is the full
// circle.
func CircleRect(c Point, r float64) Rect {
	if r < 0 {
		r = 0
	}
	const radToDeg = 180 / math.Pi
	delta := r / EarthRadiusMeters // angular radius
	dLatDeg := delta * radToDeg
	latMin := math.Max(c.Lat-dLatDeg, -90)
	latMax := math.Min(c.Lat+dLatDeg, 90)
	// A cap containing a pole spans all longitudes; so does a cap wider
	// than a hemisphere.
	if c.Lat+dLatDeg >= 90 || c.Lat-dLatDeg <= -90 || delta >= math.Pi/2 {
		return Rect{
			Min: Point{Lon: -180, Lat: latMin},
			Max: Point{Lon: 180, Lat: latMax},
		}
	}
	cosLat := math.Cos(c.Lat * math.Pi / 180)
	sinRatio := math.Sin(delta) / cosLat
	var dLonDeg float64
	if sinRatio >= 1 {
		dLonDeg = 180
	} else {
		dLonDeg = math.Asin(sinRatio) * radToDeg
	}
	return Rect{
		Min: Point{Lon: c.Lon - dLonDeg, Lat: latMin},
		Max: Point{Lon: c.Lon + dLonDeg, Lat: latMax},
	}
}
