package geo

import (
	"math"
	"math/rand"
	"testing"
)

// TestProjectAllMatchesToMetersExactly is the batch-projection property
// test: for random corpora across city-scale, country-scale and
// high-latitude extents, ProjectAll must reproduce the per-point
// ToMeters result bit for bit — not approximately — because the packed
// index backends and OPTICS substitute one for the other and the mined
// pattern set is gated on bit-identical output.
func TestProjectAllMatchesToMetersExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name             string
		oLon, oLat       float64
		spanLon, spanLat float64
	}{
		{"city", 139.7, 35.68, 0.3, 0.3},
		{"country", 10.0, 51.0, 8.0, 6.0},
		{"high-lat", 18.95, 69.65, 2.0, 1.0},
		{"southern", -58.4, -72.0, 3.0, 1.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := make([]Point, 500)
			for i := range pts {
				pts[i] = Point{
					Lon: tc.oLon + (rng.Float64()-0.5)*tc.spanLon,
					Lat: tc.oLat + (rng.Float64()-0.5)*tc.spanLat,
				}
			}
			pr := NewProjection(Centroid(pts))
			lon := make([]float64, len(pts))
			lat := make([]float64, len(pts))
			for i, p := range pts {
				lon[i], lat[i] = p.Lon, p.Lat
			}
			x := make([]float64, len(pts))
			y := make([]float64, len(pts))
			pr.ProjectAll(x, y, lon, lat)
			for i, p := range pts {
				m := pr.ToMeters(p)
				if math.Float64bits(x[i]) != math.Float64bits(m.X) ||
					math.Float64bits(y[i]) != math.Float64bits(m.Y) {
					t.Fatalf("point %d: ProjectAll (%v, %v) != ToMeters (%v, %v)",
						i, x[i], y[i], m.X, m.Y)
				}
			}
		})
	}
}

// TestPackedPointsRoundTrip pins the Pack/At/Centroid/LatBounds
// contract: packing is a pure layout change, every derived value must
// match the []Point path exactly.
func TestPackedPointsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 257)
	for i := range pts {
		pts[i] = Point{Lon: -0.1 + rng.Float64()*0.4, Lat: 51.4 + rng.Float64()*0.3}
	}
	pp := Pack(pts)
	if pp.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", pp.Len(), len(pts))
	}
	for i, p := range pts {
		if pp.At(i) != p {
			t.Fatalf("At(%d) = %v, want %v", i, pp.At(i), p)
		}
	}
	want := Centroid(pts)
	got := pp.Centroid()
	if math.Float64bits(got.Lon) != math.Float64bits(want.Lon) ||
		math.Float64bits(got.Lat) != math.Float64bits(want.Lat) {
		t.Fatalf("packed centroid %v != %v", got, want)
	}
	minLat, maxLat := pp.LatBounds()
	r := BoundingRect(pts)
	if minLat != r.Min.Lat || maxLat != r.Max.Lat {
		t.Fatalf("LatBounds = (%v, %v), want (%v, %v)", minLat, maxLat, r.Min.Lat, r.Max.Lat)
	}
}

// TestPackedProjectMatchesProjection checks that Project both records
// the projection and produces per-point-identical planar coordinates,
// and that EnsureProjected is idempotent.
func TestPackedProjectMatchesProjection(t *testing.T) {
	pts := []Point{{Lon: 2.35, Lat: 48.85}, {Lon: 2.29, Lat: 48.86}, {Lon: 2.40, Lat: 48.83}}
	pp := Pack(pts)
	if pp.Projected() {
		t.Fatal("fresh pack must not be projected")
	}
	pr := pp.EnsureProjected()
	if pr.Origin() != Centroid(pts) {
		t.Fatalf("projection origin %v, want centroid %v", pr.Origin(), Centroid(pts))
	}
	for i, p := range pts {
		m := pr.ToMeters(p)
		if math.Float64bits(pp.X[i]) != math.Float64bits(m.X) ||
			math.Float64bits(pp.Y[i]) != math.Float64bits(m.Y) {
			t.Fatalf("point %d planar mismatch", i)
		}
	}
	// Idempotent: a second EnsureProjected keeps the same projection.
	if pp.EnsureProjected() != pr {
		t.Fatal("EnsureProjected re-projected an already-projected store")
	}
	// Empty store: projection anchors at the zero point.
	empty := Pack(nil)
	if got := empty.EnsureProjected().Origin(); got != (Point{}) {
		t.Fatalf("empty store origin %v", got)
	}
}

// TestPackedAppend pins the append-growth contract the incremental CSD
// maintainer depends on: appended points get the next ids, an already-
// projected store projects the tail under the unchanged origin with
// bit-identical planar coordinates to a from-scratch projection of the
// grown set, and the old points' bits never move.
func TestPackedAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mk := func(n int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Lon: 121.3 + rng.Float64()*0.4, Lat: 31.0 + rng.Float64()*0.3}
		}
		return pts
	}
	base, tail := mk(100), mk(37)

	pp := Pack(base)
	origin := pp.Centroid()
	pr := pp.Project(origin)
	oldX := append([]float64(nil), pp.X...)
	pp.Append(tail)

	if pp.Len() != len(base)+len(tail) {
		t.Fatalf("Len = %d, want %d", pp.Len(), len(base)+len(tail))
	}
	for i, p := range tail {
		if pp.At(len(base)+i) != p {
			t.Fatalf("appended point %d misplaced", i)
		}
	}
	if !pp.Projected() || pp.Proj() != pr {
		t.Fatal("Append changed the store's projection")
	}
	for i := range oldX {
		if math.Float64bits(pp.X[i]) != math.Float64bits(oldX[i]) {
			t.Fatalf("old planar bits moved at %d", i)
		}
	}
	// The grown store equals a fresh projection of the union at the
	// same origin, bit for bit.
	union := Pack(append(append([]Point(nil), base...), tail...))
	union.Project(origin)
	for i := 0; i < pp.Len(); i++ {
		if math.Float64bits(pp.X[i]) != math.Float64bits(union.X[i]) ||
			math.Float64bits(pp.Y[i]) != math.Float64bits(union.Y[i]) {
			t.Fatalf("planar mismatch at %d after append", i)
		}
	}
	// Appending to an unprojected store leaves it unprojected.
	lazy := Pack(base)
	lazy.Append(tail)
	if lazy.Projected() {
		t.Fatal("Append projected an unprojected store")
	}
	if lazy.Len() != pp.Len() {
		t.Fatalf("lazy Len = %d, want %d", lazy.Len(), pp.Len())
	}
}

// TestWeightSumInto pins the chain-exactness of the incremental kernel
// sum: folding a tail of weights into a running sum one at a time must
// reproduce the single full-order loop bit for bit, for any split point.
func TestWeightSumInto(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	center := Point{Lon: 121.5, Lat: 31.2}
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{Lon: 121.5 + (rng.Float64()-0.5)*0.002, Lat: 31.2 + (rng.Float64()-0.5)*0.002}
	}
	pp := Pack(pts)
	k := NewGaussianKernel(100)
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	full := k.WeightSumInto(0, center, pp, all)
	for _, cut := range []int{0, 1, 17, 63, 64} {
		head := k.WeightSumInto(0, center, pp, all[:cut])
		sum := k.WeightSumInto(head, center, pp, all[cut:])
		if math.Float64bits(sum) != math.Float64bits(full) {
			t.Fatalf("cut %d: incremental sum %v != full %v", cut, sum, full)
		}
	}
	// And it agrees with the Weight loop popularity() runs.
	var loop float64
	for _, p := range pts {
		loop += k.Weight(center, p)
	}
	if math.Float64bits(loop) != math.Float64bits(full) {
		t.Fatalf("WeightSumInto %v != Weight loop %v", full, loop)
	}
}
