package render

import (
	"bytes"
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"
	"time"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

var center = geo.Point{Lon: 121.47, Lat: 31.23}

func buildDiagram(t *testing.T) *csd.Diagram {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	proj := geo.NewProjection(center)
	var pois []poi.POI
	var id int64 = 1
	for c := 0; c < 3; c++ {
		for i := 0; i < 8; i++ {
			pois = append(pois, poi.POI{
				ID: id,
				Location: proj.ToPoint(geo.Meters{
					X: float64(c)*400 + rng.NormFloat64()*6,
					Y: rng.NormFloat64() * 6,
				}),
				Minor: poi.MinorsOf(poi.Restaurant)[0],
			})
			id++
		}
	}
	var stays []geo.Point
	for x := -100.0; x < 1000; x += 60 {
		stays = append(stays, proj.ToPoint(geo.Meters{X: x, Y: 0}))
	}
	return csd.Build(pois, stays, csd.DefaultParams())
}

func TestDiagramSVGWellFormed(t *testing.T) {
	d := buildDiagram(t)
	c := NewCanvas(center, 1000, 400)
	var buf bytes.Buffer
	if err := c.Diagram(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("missing svg root")
	}
	if got := strings.Count(out, "<circle"); got < len(d.Units) {
		t.Fatalf("circles = %d, units = %d", got, len(d.Units))
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestPatternsSVG(t *testing.T) {
	proj := geo.NewProjection(center)
	t0 := time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)
	ps := []pattern.Pattern{
		{
			Support: 40,
			Items:   []poi.Semantics{poi.SemanticsOf(poi.Residence), poi.SemanticsOf(poi.BusinessOffice)},
			Stays: []trajectory.StayPoint{
				{P: proj.ToPoint(geo.Meters{X: -300, Y: 0}), T: t0, S: poi.SemanticsOf(poi.Residence)},
				{P: proj.ToPoint(geo.Meters{X: 300, Y: 100}), T: t0, S: poi.SemanticsOf(poi.BusinessOffice)},
			},
		},
		{
			Support: 10,
			Items:   []poi.Semantics{poi.SemanticsOf(poi.Restaurant)},
			Stays: []trajectory.StayPoint{
				{P: proj.ToPoint(geo.Meters{X: 0, Y: -200}), T: t0, S: poi.SemanticsOf(poi.Restaurant)},
			},
		},
	}
	c := NewCanvas(center, 800, 500)
	var buf bytes.Buffer
	if err := c.Patterns(&buf, ps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<line") != 1 {
		t.Fatalf("lines = %d, want 1 (two-stay pattern)", strings.Count(out, "<line"))
	}
	if strings.Count(out, "<circle") != 3 {
		t.Fatalf("circles = %d, want 3 stays", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, "Residence") {
		t.Fatal("tooltips missing semantics")
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestCanvasClipsOutOfExtent(t *testing.T) {
	d := buildDiagram(t)
	// A canvas covering only the first cluster: fewer circles.
	c := NewCanvas(center, 150, 400)
	var buf bytes.Buffer
	if err := c.Diagram(&buf, d); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "<circle"); got >= len(d.Units) && len(d.Units) > 1 {
		t.Fatalf("expected clipping: %d circles for %d units", got, len(d.Units))
	}
}

func TestCanvasZeroDefaults(t *testing.T) {
	c := NewCanvas(center, 0, 0)
	var buf bytes.Buffer
	if err := c.Patterns(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="800"`) {
		t.Fatal("default size not applied")
	}
}
