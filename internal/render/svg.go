// Package render draws City Semantic Diagrams and mined patterns as
// standalone SVG documents — the closest stdlib-only equivalent of the
// paper's map figures (Figure 6's unit diagram, Figure 14's pattern
// maps). Output is deterministic for fixed input.
package render

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/pattern"
)

// Canvas maps a geographic extent onto SVG pixel coordinates.
type Canvas struct {
	proj   geo.Projection
	extent float64 // half-width in meters
	sizePx float64
}

// NewCanvas builds a canvas centered at center covering ±extent meters,
// rendered at sizePx × sizePx pixels.
func NewCanvas(center geo.Point, extentMeters, sizePx float64) Canvas {
	if extentMeters <= 0 {
		extentMeters = 1000
	}
	if sizePx <= 0 {
		sizePx = 800
	}
	return Canvas{
		proj:   geo.NewProjection(center),
		extent: extentMeters,
		sizePx: sizePx,
	}
}

// escape renders a value XML-safe for tooltip text.
func escape(v fmt.Stringer) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(v.String()))
	return b.String()
}

// xy converts a geographic point to pixel coordinates (y grows down).
func (c Canvas) xy(p geo.Point) (float64, float64) {
	m := c.proj.ToMeters(p)
	x := (m.X + c.extent) / (2 * c.extent) * c.sizePx
	y := (c.extent - m.Y) / (2 * c.extent) * c.sizePx
	return x, y
}

// palette cycles distinct fill colors for units and patterns.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// svgHeader opens the document with a white background.
func (c Canvas) svgHeader(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.sizePx, c.sizePx, c.sizePx, c.sizePx)
	fmt.Fprintf(b, `<title>%s</title>`+"\n", title)
	fmt.Fprintf(b, `<rect width="100%%" height="100%%" fill="#ffffff"/>`+"\n")
}

// Diagram renders every semantic unit as a colored circle scaled by its
// member count, colored by its unit ID — the Figure 6 view.
func (c Canvas) Diagram(w io.Writer, d *csd.Diagram) error {
	var b strings.Builder
	c.svgHeader(&b, "City Semantic Diagram")
	for _, u := range d.Units {
		x, y := c.xy(u.Center)
		if x < 0 || x > c.sizePx || y < 0 || y > c.sizePx {
			continue
		}
		r := 1.5 + 0.6*float64(min(len(u.Members), 60))
		color := palette[u.ID%len(palette)]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.55"><title>unit %d: %d POIs, %s</title></circle>`+"\n",
			x, y, r/3, color, u.ID, len(u.Members), escape(u.Semantics))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Patterns renders mined patterns as arrows between their stay points,
// stroke width scaled by support — the Figure 14 view.
func (c Canvas) Patterns(w io.Writer, ps []pattern.Pattern) error {
	var b strings.Builder
	c.svgHeader(&b, "Fine-grained mobility patterns")
	b.WriteString(`<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="6" markerHeight="6" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z" fill="context-stroke"/></marker></defs>` + "\n")
	maxSupport := 1
	for _, p := range ps {
		if p.Support > maxSupport {
			maxSupport = p.Support
		}
	}
	for i, p := range ps {
		color := palette[i%len(palette)]
		width := 1 + 4*float64(p.Support)/float64(maxSupport)
		for k := 1; k < len(p.Stays); k++ {
			x1, y1 := c.xy(p.Stays[k-1].P)
			x2, y2 := c.xy(p.Stays[k].P)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f" stroke-opacity="0.6" marker-end="url(#arrow)"><title>%s → %s (support %d)</title></line>`+"\n",
				x1, y1, x2, y2, color, width,
				escape(p.Stays[k-1].S), escape(p.Stays[k].S), p.Support)
		}
		for _, sp := range p.Stays {
			x, y := c.xy(sp.P)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color)
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
