package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"csdm/internal/geo"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

var (
	origin = geo.Point{Lon: 121.47, Lat: 31.23}
	proj   = geo.NewProjection(origin)
	t0     = time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)
)

func at(x, y float64) geo.Point { return proj.ToPoint(geo.Meters{X: x, Y: y}) }

func stay(x, y float64, s poi.Semantics) trajectory.StayPoint {
	return trajectory.StayPoint{P: at(x, y), T: t0, S: s}
}

var (
	home   = poi.SemanticsOf(poi.Residence)
	office = poi.SemanticsOf(poi.BusinessOffice)
)

func TestGroupSparsity(t *testing.T) {
	// Three collinear points 30 m apart: mean pairwise = 40 m.
	g := []trajectory.StayPoint{stay(0, 0, home), stay(30, 0, home), stay(60, 0, home)}
	if got := GroupSparsity(g); math.Abs(got-40) > 0.2 {
		t.Fatalf("GroupSparsity = %v, want ~40", got)
	}
	if got := GroupSparsity(g[:1]); got != 0 {
		t.Fatalf("single-member sparsity = %v", got)
	}
}

func TestSpatialSparsityAveragesGroups(t *testing.T) {
	p := pattern.Pattern{Groups: [][]trajectory.StayPoint{
		{stay(0, 0, home), stay(20, 0, home)},     // sparsity 20
		{stay(0, 0, office), stay(60, 0, office)}, // sparsity 60
	}}
	if got := SpatialSparsity(p); math.Abs(got-40) > 0.2 {
		t.Fatalf("SpatialSparsity = %v, want ~40", got)
	}
	if got := SpatialSparsity(pattern.Pattern{}); got != 0 {
		t.Fatalf("empty sparsity = %v", got)
	}
}

func TestGroupConsistency(t *testing.T) {
	same := []trajectory.StayPoint{stay(0, 0, home), stay(1, 0, home), stay(2, 0, home)}
	if got := GroupConsistency(same); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical tags consistency = %v", got)
	}
	mixed := []trajectory.StayPoint{stay(0, 0, home), stay(1, 0, office)}
	if got := GroupConsistency(mixed); got != 0 {
		t.Fatalf("disjoint tags consistency = %v", got)
	}
	// Partially overlapping tags land strictly between 0 and 1.
	partial := []trajectory.StayPoint{
		stay(0, 0, home),
		stay(1, 0, home.Union(office)),
	}
	got := GroupConsistency(partial)
	if got <= 0 || got >= 1 {
		t.Fatalf("partial consistency = %v, want (0,1)", got)
	}
	if got := GroupConsistency(nil); got != 1 {
		t.Fatalf("empty group consistency = %v, want 1", got)
	}
}

func TestConsistencyBoundsProperty(t *testing.T) {
	f := func(tags []uint16) bool {
		var g []trajectory.StayPoint
		for i, tg := range tags {
			g = append(g, stay(float64(i), 0, poi.Semantics(tg)&(1<<poi.NumMajors-1)))
		}
		c := GroupConsistency(g)
		return c >= 0 && c <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeAndCoverage(t *testing.T) {
	ps := []pattern.Pattern{
		{Support: 50, Groups: [][]trajectory.StayPoint{{stay(0, 0, home), stay(10, 0, home)}}},
		{Support: 30, Groups: [][]trajectory.StayPoint{{stay(0, 0, office), stay(30, 0, office)}}},
	}
	if got := Coverage(ps); got != 80 {
		t.Fatalf("Coverage = %d", got)
	}
	s := Summarize(ps)
	if s.NumPatterns != 2 || s.Coverage != 80 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.MeanSparsity-20) > 0.2 {
		t.Fatalf("MeanSparsity = %v, want ~20", s.MeanSparsity)
	}
	if math.Abs(s.MeanConsistency-1) > 1e-12 {
		t.Fatalf("MeanConsistency = %v, want 1", s.MeanConsistency)
	}
	empty := Summarize(nil)
	if empty.NumPatterns != 0 || empty.Coverage != 0 || empty.MeanSparsity != 0 {
		t.Fatalf("empty Summary = %+v", empty)
	}
}

func TestSparsityHistogramBinning(t *testing.T) {
	mk := func(spread float64) pattern.Pattern {
		return pattern.Pattern{Groups: [][]trajectory.StayPoint{
			{stay(0, 0, home), stay(spread, 0, home)},
		}}
	}
	ps := []pattern.Pattern{mk(2), mk(7), mk(7.4), mk(230)} // sparsities ≈ 2, 7, 7.4, 230
	h := SparsityHistogram(ps, 0, 5, 20)
	if h.Counts[0] != 1 {
		t.Errorf("bin 0 = %d, want 1", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin 1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[19] != 1 { // overflow clamps into the last bin
		t.Errorf("last bin = %d, want 1", h.Counts[19])
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(ps) {
		t.Fatalf("histogram total = %d, want %d", total, len(ps))
	}
	if got := SparsityHistogram(nil, 0, 5, 0); len(got.Counts) != 0 {
		t.Fatalf("degenerate histogram = %+v", got)
	}
}

// TestSparsityHistogramDegenerateBins is a regression test: a negative
// nBins used to reach make([]int, nBins) before the guard and panic.
func TestSparsityHistogramDegenerateBins(t *testing.T) {
	ps := []pattern.Pattern{{Groups: [][]trajectory.StayPoint{
		{stay(0, 0, home), stay(5, 0, home)},
	}}}
	for _, nBins := range []int{-1, -100, 0} {
		h := SparsityHistogram(ps, 0, 5, nBins)
		if len(h.Counts) != 0 {
			t.Errorf("nBins=%d: Counts = %v, want empty", nBins, h.Counts)
		}
		if h.Lo != 0 || h.Width != 5 {
			t.Errorf("nBins=%d: bounds not preserved: %+v", nBins, h)
		}
	}
	// A non-positive width is equally degenerate regardless of nBins.
	if h := SparsityHistogram(ps, 0, 0, 10); len(h.Counts) != 0 {
		t.Errorf("zero width: Counts = %v, want empty", h.Counts)
	}
}

func TestBoxStats(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Mean != 3 || b.N != 5 {
		t.Fatalf("Box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", b.Q1, b.Q3)
	}
	single := Box([]float64{7})
	if single.Min != 7 || single.Max != 7 || single.Median != 7 {
		t.Fatalf("single Box = %+v", single)
	}
	if got := Box(nil); got != (BoxStats{}) {
		t.Fatalf("empty Box = %+v", got)
	}
}

func TestBoxQuartileInterpolation(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4})
	if math.Abs(b.Q1-1.75) > 1e-12 || math.Abs(b.Q3-3.25) > 1e-12 {
		t.Fatalf("interpolated quartiles = %v, %v", b.Q1, b.Q3)
	}
	if math.Abs(b.Median-2.5) > 1e-12 {
		t.Fatalf("median = %v", b.Median)
	}
}

func TestConsistencyBox(t *testing.T) {
	ps := []pattern.Pattern{
		{Groups: [][]trajectory.StayPoint{{stay(0, 0, home), stay(1, 0, home)}}},   // 1.0
		{Groups: [][]trajectory.StayPoint{{stay(0, 0, home), stay(1, 0, office)}}}, // 0.0
	}
	b := ConsistencyBox(ps)
	if b.Min != 0 || b.Max != 1 || b.Mean != 0.5 || b.N != 2 {
		t.Fatalf("ConsistencyBox = %+v", b)
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var clean []float64
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		b := Box(clean)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
