// Package metrics implements the paper's four evaluation metrics (§5):
// number of patterns, coverage (total support), spatial sparsity
// (Equations 9–10) and semantic consistency (Equations 11–12), plus the
// histogram and box-plot statistics behind Figures 9 and 10.
package metrics

import (
	"math"
	"sort"

	"csdm/internal/geo"
	"csdm/internal/pattern"
	"csdm/internal/trajectory"
)

// GroupSparsity implements ss(Group(sp_k)) of Equation (9): the mean
// pairwise Haversine distance (meters) among the group's stay points.
func GroupSparsity(group []trajectory.StayPoint) float64 {
	pts := make([]geo.Point, len(group))
	for i, sp := range group {
		pts[i] = sp.P
	}
	return geo.MeanPairwiseDistance(pts)
}

// SpatialSparsity implements Equation (10): the mean group sparsity over
// a pattern's positions. Smaller is denser, hence better.
func SpatialSparsity(p pattern.Pattern) float64 {
	if len(p.Groups) == 0 {
		return 0
	}
	var sum float64
	for _, g := range p.Groups {
		sum += GroupSparsity(g)
	}
	return sum / float64(len(p.Groups))
}

// GroupConsistency implements sc(Group(sp_k)) of Equation (11): the mean
// pairwise cosine similarity of the members' semantic properties.
// Groups of fewer than two members are perfectly consistent (1).
func GroupConsistency(group []trajectory.StayPoint) float64 {
	n := len(group)
	if n < 2 {
		return 1
	}
	var sum float64
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			sum += group[i].S.Cosine(group[j].S)
		}
	}
	return sum * 2 / float64(n*(n-1))
}

// SemanticConsistency implements Equation (12): the mean group
// consistency over a pattern's positions. Larger is better.
func SemanticConsistency(p pattern.Pattern) float64 {
	if len(p.Groups) == 0 {
		return 0
	}
	var sum float64
	for _, g := range p.Groups {
		sum += GroupConsistency(g)
	}
	return sum / float64(len(p.Groups))
}

// Coverage is the sum of supports over all patterns (§5).
func Coverage(ps []pattern.Pattern) int {
	total := 0
	for _, p := range ps {
		total += p.Support
	}
	return total
}

// Summary aggregates the four §5 metrics over one extraction run.
type Summary struct {
	NumPatterns     int
	Coverage        int
	MeanSparsity    float64
	MeanConsistency float64
}

// Summarize computes the Summary of an extraction result.
func Summarize(ps []pattern.Pattern) Summary {
	s := Summary{NumPatterns: len(ps), Coverage: Coverage(ps)}
	if len(ps) == 0 {
		return s
	}
	for _, p := range ps {
		s.MeanSparsity += SpatialSparsity(p)
		s.MeanConsistency += SemanticConsistency(p)
	}
	s.MeanSparsity /= float64(len(ps))
	s.MeanConsistency /= float64(len(ps))
	return s
}

// Histogram is a fixed-width frequency histogram (the Figure 9 curves).
type Histogram struct {
	// Lo is the lower bound of the first bin; bins cover
	// [Lo, Lo+Width), [Lo+Width, Lo+2·Width), …
	Lo float64
	// Width is the bin width.
	Width float64
	// Counts holds the per-bin frequencies. Values at or beyond the
	// last bin's upper edge land in the last bin (the paper's plots cap
	// the axis); values below Lo land in the first.
	Counts []int
}

// SparsityHistogram bins each pattern's spatial sparsity into nBins bins
// of the given width starting at lo — Figure 9 uses 20 bins of width 5
// over [0, 100].
func SparsityHistogram(ps []pattern.Pattern, lo, width float64, nBins int) Histogram {
	h := Histogram{Lo: lo, Width: width}
	if nBins <= 0 || width <= 0 {
		return h
	}
	h.Counts = make([]int, nBins)
	for _, p := range ps {
		bin := int(math.Floor((SpatialSparsity(p) - lo) / width))
		if bin < 0 {
			bin = 0
		}
		if bin >= nBins {
			bin = nBins - 1
		}
		h.Counts[bin]++
	}
	return h
}

// BoxStats are the five-number summary plus mean (the Figure 10 boxes).
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// ConsistencyBox computes the box-plot statistics of per-pattern
// semantic consistency.
func ConsistencyBox(ps []pattern.Pattern) BoxStats {
	vals := make([]float64, 0, len(ps))
	for _, p := range ps {
		vals = append(vals, SemanticConsistency(p))
	}
	return Box(vals)
}

// Box computes five-number + mean statistics of vals. A zero BoxStats is
// returned for empty input.
func Box(vals []float64) BoxStats {
	if len(vals) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return BoxStats{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		N:      len(s),
	}
}

// quantile interpolates the q-quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
