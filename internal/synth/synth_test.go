package synth

import (
	"math"
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// testConfig is a small, fast city used across this file.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPOIs = 3000
	cfg.NumPassengers = 300
	cfg.Days = 7
	return cfg
}

func TestNewCityDeterministic(t *testing.T) {
	a := NewCity(testConfig())
	b := NewCity(testConfig())
	if len(a.POIs) != len(b.POIs) {
		t.Fatalf("POI counts differ: %d vs %d", len(a.POIs), len(b.POIs))
	}
	for i := range a.POIs {
		if a.POIs[i] != b.POIs[i] {
			t.Fatalf("POI %d differs between equal-seed cities", i)
		}
	}
	wa := a.GenerateWorkload()
	wb := b.GenerateWorkload()
	if len(wa.Journeys) != len(wb.Journeys) {
		t.Fatalf("journey counts differ")
	}
	if wa.Journeys[0] != wb.Journeys[0] {
		t.Fatalf("first journey differs between equal-seed runs")
	}
}

func TestCityDiffersAcrossSeeds(t *testing.T) {
	cfg := testConfig()
	a := NewCity(cfg)
	cfg.Seed = 2
	b := NewCity(cfg)
	same := 0
	for i := range a.POIs {
		if i < len(b.POIs) && a.POIs[i].Location == b.POIs[i].Location {
			same++
		}
	}
	if same == len(a.POIs) {
		t.Fatal("different seeds produced identical cities")
	}
}

func TestPOICategoryMixMatchesTable3(t *testing.T) {
	cfg := testConfig()
	cfg.NumPOIs = 20000
	c := NewCity(cfg)
	counts := poi.CategoryCount(c.POIs)
	total := 0
	for _, n := range counts {
		total += n
	}
	for mj := 0; mj < poi.NumMajors; mj++ {
		got := float64(counts[mj]) / float64(total)
		want := TableThreeShare(poi.Major(mj))
		// 20k samples: allow 1.5 percentage points of drift (plus the
		// few seeded landmark POIs).
		if math.Abs(got-want) > 0.015 {
			t.Errorf("%v share = %.4f, want %.4f±0.015", poi.Major(mj), got, want)
		}
	}
}

func TestPOIsAvoidRiverAndStayInBounds(t *testing.T) {
	c := NewCity(testConfig())
	inRiver := 0
	for _, p := range c.POIs {
		m := c.Proj.ToMeters(p.Location)
		if c.onRiver(m) {
			inRiver++
		}
		if math.Abs(m.X) > c.ExtentMeters*1.2 || math.Abs(m.Y) > c.ExtentMeters*1.2 {
			t.Fatalf("POI %v far out of bounds", p.Location)
		}
	}
	// Site centers avoid the river; only tail scatter may land there.
	if frac := float64(inRiver) / float64(len(c.POIs)); frac > 0.02 {
		t.Errorf("%.1f%% of POIs in the river band", frac*100)
	}
}

func TestTowersAreStackedAndMixed(t *testing.T) {
	c := NewCity(testConfig())
	towers := 0
	for _, s := range c.Sites {
		if s.Kind != SiteTower {
			continue
		}
		towers++
		if len(s.Majors) < 3 {
			t.Errorf("tower hosts only %d majors, want ≥3", len(s.Majors))
		}
	}
	if towers == 0 {
		t.Fatal("city has no towers")
	}
}

func TestStreetsAreSingleMajor(t *testing.T) {
	c := NewCity(testConfig())
	streets := 0
	for _, s := range c.Sites {
		if s.Kind == SiteStreet {
			streets++
			if len(s.Majors) != 1 {
				t.Errorf("street hosts %d majors, want 1", len(s.Majors))
			}
		}
	}
	if streets == 0 {
		t.Fatal("city has no streets")
	}
}

func TestWorkloadShape(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	if len(w.Passengers) != c.NumPassengers {
		t.Fatalf("passengers = %d", len(w.Passengers))
	}
	nCard := 0
	for _, p := range w.Passengers {
		if p.ID != 0 {
			nCard++
		}
	}
	wantCard := int(float64(c.NumPassengers) * c.CardShare)
	if nCard != wantCard {
		t.Fatalf("card passengers = %d, want %d", nCard, wantCard)
	}
	if len(w.Journeys) == 0 {
		t.Fatal("no journeys generated")
	}
	perDay := float64(len(w.Journeys)) / float64(c.NumPassengers) / float64(c.Days)
	if perDay < 0.5 || perDay > 4 {
		t.Errorf("journeys per passenger-day = %.2f, implausible", perDay)
	}
	for i, j := range w.Journeys {
		if !j.Pickup.Valid() || !j.Dropoff.Valid() {
			t.Fatalf("journey %d has invalid coordinates", i)
		}
		if j.DropoffTime.Before(j.PickupTime) {
			t.Fatalf("journey %d ends before it starts", i)
		}
	}
}

func TestMeanTripDurationPlausible(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	mean := MeanTripMinutes(w.Journeys)
	// The paper reports ~30 min average; the synthetic city targets the
	// same regime.
	if mean < 5 || mean > 45 {
		t.Fatalf("mean trip = %.1f min, want 5–45", mean)
	}
	if MeanTripMinutes(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestWeekdayVsWeekendContrast(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	weekday, weekend := 0, 0
	weekdayDays, weekendDays := 0, 0
	for d := 0; d < c.Days; d++ {
		wd := startDate.AddDate(0, 0, d).Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			weekendDays++
		} else {
			weekdayDays++
		}
	}
	for _, j := range w.Journeys {
		wd := j.PickupTime.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			weekend++
		} else {
			weekday++
		}
	}
	if weekdayDays == 0 || weekendDays == 0 {
		t.Skip("config does not span both day types")
	}
	perWeekday := float64(weekday) / float64(weekdayDays)
	perWeekend := float64(weekend) / float64(weekendDays)
	if perWeekday <= perWeekend {
		t.Fatalf("weekday demand (%.0f/day) should exceed weekend (%.0f/day)", perWeekday, perWeekend)
	}
}

func TestMorningCommuteFlowsHomeToWork(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	// Among weekday journeys departing 7:00–9:30, most should start near
	// a home anchor.
	homeStart := 0
	total := 0
	for _, j := range w.Journeys {
		wd := j.PickupTime.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			continue
		}
		h := j.PickupTime.Hour()
		if h < 7 || h > 9 {
			continue
		}
		total++
		for _, hs := range c.HomeSites {
			if geo.Haversine(j.Pickup, c.Sites[hs].Center) < 300 {
				homeStart++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no morning journeys")
	}
	if frac := float64(homeStart) / float64(total); frac < 0.6 {
		t.Fatalf("only %.0f%% of morning pickups near homes", frac*100)
	}
}

func TestAirportIsAHotspot(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	airport := 0
	for _, j := range w.Journeys {
		if geo.Haversine(j.Dropoff, c.Airport) < 500 {
			airport++
		}
	}
	if frac := float64(airport) / float64(len(w.Journeys)); frac < 0.01 {
		t.Fatalf("airport share %.2f%%, want ≥1%%", frac*100)
	}
}

func TestCardPassengersChainIntoLongTrajectories(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	sts := trajectory.Chain(w.Journeys, trajectory.DefaultChainParams())
	if len(sts) == 0 {
		t.Fatal("no chained trajectories")
	}
	long := 0
	for _, st := range sts {
		if st.Len() >= 3 {
			long++
			if st.PassengerID == 0 {
				t.Fatal("multi-stay chain without passenger ID")
			}
		}
	}
	if long == 0 {
		t.Fatal("no ≥3-stay trajectories recovered (paper recovers many)")
	}
}

func TestStayPointsCount(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	sps := w.StayPoints()
	if len(sps) != 2*len(w.Journeys) {
		t.Fatalf("stay points = %d, want %d", len(sps), 2*len(w.Journeys))
	}
}

func TestCheckinBiasSuppressesMedical(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	for _, profile := range []CheckinProfile{ProfileNewYork(), ProfileTokyo()} {
		cs := c.SampleCheckins(w.Journeys, profile, 99, index.KindGrid)
		if len(cs) == 0 {
			t.Fatalf("%s produced no check-ins", profile.Name)
		}
		med := MajorShare(cs, poi.MedicalService)
		if med > 0.01 {
			t.Errorf("%s: medical share %.3f, should be suppressed below 1%%", profile.Name, med)
		}
	}
}

func TestCheckinProfilesDiffer(t *testing.T) {
	c := NewCity(testConfig())
	w := c.GenerateWorkload()
	ny := c.SampleCheckins(w.Journeys, ProfileNewYork(), 99, index.KindKDTree)
	tk := c.SampleCheckins(w.Journeys, ProfileTokyo(), 99, index.KindRTree)
	// Tokyo's station share should far exceed New York's (Table 1).
	nyStations := MajorShare(ny, poi.TrafficStations)
	tkStations := MajorShare(tk, poi.TrafficStations)
	if tkStations <= nyStations {
		t.Fatalf("Tokyo stations %.3f should exceed NY %.3f", tkStations, nyStations)
	}
	// New York homes visible, Tokyo homes hidden.
	nyHomes := MajorShare(ny, poi.Residence)
	tkHomes := MajorShare(tk, poi.Residence)
	if nyHomes <= tkHomes {
		t.Fatalf("NY residence %.3f should exceed Tokyo %.3f", nyHomes, tkHomes)
	}
}

func TestTopTopics(t *testing.T) {
	cs := []Checkin{{Topic: 1}, {Topic: 1}, {Topic: 2}, {Topic: 3}, {Topic: 1}, {Topic: 2}}
	top := TopTopics(cs, 2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].Topic != 1 || top[0].Count != 3 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if math.Abs(top[0].Ratio-0.5) > 1e-12 {
		t.Fatalf("top[0].Ratio = %v", top[0].Ratio)
	}
	if got := TopTopics(nil, 5); len(got) != 0 {
		t.Fatalf("TopTopics(nil) = %v", got)
	}
}

func TestGPSNoiseApplied(t *testing.T) {
	cfg := testConfig()
	cfg.GPSNoiseMeters = 0
	clean := NewCity(cfg).GenerateWorkload()
	cfg.GPSNoiseMeters = 25
	noisy := NewCity(cfg).GenerateWorkload()
	if len(clean.Journeys) == 0 || len(noisy.Journeys) == 0 {
		t.Fatal("workloads empty")
	}
	// With zero noise, morning pickups coincide exactly across days for
	// the same passenger anchor; with noise they scatter. Compare the
	// first journey's pickup against its passenger anchor.
	c := NewCity(cfg)
	_ = c
	moved := 0
	for i := range noisy.Journeys {
		if i < len(clean.Journeys) && noisy.Journeys[i].Pickup != clean.Journeys[i].Pickup {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("GPS noise had no effect")
	}
}

func BenchmarkGenerateCity(b *testing.B) {
	cfg := testConfig()
	for i := 0; i < b.N; i++ {
		NewCity(cfg)
	}
}

func BenchmarkGenerateWorkload(b *testing.B) {
	c := NewCity(testConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.GenerateWorkload()
	}
}
