package synth

import (
	"math/rand"
	"sort"
	"time"

	"csdm/internal/geo"
	"csdm/internal/trajectory"
)

// TraceConfig controls continuous GPS trace synthesis.
type TraceConfig struct {
	// SampleEvery is the GPS sampling period.
	SampleEvery time.Duration
	// DwellBefore is how long a passenger demonstrably dwells at a
	// location before departing and after arriving — the signal
	// Definition 5's stay-point detector looks for.
	DwellBefore time.Duration
	// NoiseMeters is the per-sample GPS error (standard deviation).
	NoiseMeters float64
}

// DefaultTraceConfig produces traces dense enough for stay-point
// detection with the package defaults (θ_t = 20 min, θ_d = 200 m).
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		SampleEvery: 90 * time.Second,
		DwellBefore: 25 * time.Minute,
		NoiseMeters: 12,
	}
}

// GenerateGPSTraces converts the card-identified journeys of a workload
// into continuous raw GPS trajectories (Definition 1): dwell samples at
// every stay location, movement samples interpolated along each ride.
// The result exercises the Definition 5 stay-point detector — the paper
// uses taxi pick-up/drop-off records directly, but the system is
// defined over arbitrary GPS trajectories, and this generator provides
// them.
//
// One trajectory is produced per card passenger per day that has at
// least one journey.
func (c *City) GenerateGPSTraces(w Workload, cfg TraceConfig) []trajectory.Trajectory {
	if cfg.SampleEvery <= 0 {
		cfg = DefaultTraceConfig()
	}
	rng := rand.New(rand.NewSource(c.Seed + 27449))

	type dayKey struct {
		passenger int64
		day       int64
	}
	byDay := make(map[dayKey][]trajectory.Journey)
	for _, j := range w.Journeys {
		if j.PassengerID == 0 {
			continue
		}
		k := dayKey{j.PassengerID, j.PickupTime.Unix() / 86400}
		byDay[k] = append(byDay[k], j)
	}
	keys := make([]dayKey, 0, len(byDay))
	for k := range byDay {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].passenger != keys[b].passenger {
			return keys[a].passenger < keys[b].passenger
		}
		return keys[a].day < keys[b].day
	})

	var out []trajectory.Trajectory
	var id int64 = 1
	for _, k := range keys {
		js := byDay[k]
		sort.Slice(js, func(a, b int) bool { return js[a].PickupTime.Before(js[b].PickupTime) })
		t := trajectory.Trajectory{ID: id}
		id++
		// cursor guarantees strictly forward-moving sample times even
		// when one journey's post-arrival dwell overlaps the next
		// journey's pre-departure dwell.
		// emit appends samples while enforcing monotone timestamps: the
		// day simulator schedules some legs independently, so a
		// passenger's journeys can overlap on paper, and a physical
		// trace keeps only the time-consistent samples.
		cursor := js[0].PickupTime.Add(-cfg.DwellBefore - time.Second)
		emit := func(samples []trajectory.GPSPoint) {
			for _, gp := range samples {
				if gp.T.Before(cursor) {
					continue
				}
				t.Points = append(t.Points, gp)
				cursor = gp.T
			}
		}
		var lastDropoff time.Time
		for i, j := range js {
			if j.PickupTime.Before(lastDropoff) {
				continue // passenger cannot ride two taxis at once
			}
			lastDropoff = j.DropoffTime
			// Dwell at the pick-up before departure, then the ride.
			emit(c.dwellSamples(rng, cfg, j.Pickup, j.PickupTime.Add(-cfg.DwellBefore), j.PickupTime))
			emit(c.rideSamples(rng, cfg, j))
			// Dwell at the drop-off: until the next journey's
			// pre-departure dwell begins, at most the standard dwell.
			end := j.DropoffTime.Add(cfg.DwellBefore)
			if i+1 < len(js) {
				if next := js[i+1].PickupTime.Add(-cfg.DwellBefore); next.Before(end) {
					end = next
				}
			}
			emit(c.dwellSamples(rng, cfg, j.Dropoff, j.DropoffTime, end))
		}
		if len(t.Points) > 1 {
			out = append(out, t)
		}
	}
	return out
}

// dwellSamples emits noisy samples at a fixed location over [from, to).
func (c *City) dwellSamples(rng *rand.Rand, cfg TraceConfig, p geo.Point, from, to time.Time) []trajectory.GPSPoint {
	var out []trajectory.GPSPoint
	for tt := from; tt.Before(to); tt = tt.Add(cfg.SampleEvery) {
		out = append(out, trajectory.GPSPoint{P: c.traceNoise(rng, cfg, p), T: tt})
	}
	return out
}

// rideSamples interpolates samples along the straight line of a ride.
func (c *City) rideSamples(rng *rand.Rand, cfg TraceConfig, j trajectory.Journey) []trajectory.GPSPoint {
	dur := j.DropoffTime.Sub(j.PickupTime)
	if dur <= 0 {
		return nil
	}
	a := c.Proj.ToMeters(j.Pickup)
	b := c.Proj.ToMeters(j.Dropoff)
	var out []trajectory.GPSPoint
	for tt := j.PickupTime; tt.Before(j.DropoffTime); tt = tt.Add(cfg.SampleEvery) {
		f := float64(tt.Sub(j.PickupTime)) / float64(dur)
		p := c.Proj.ToPoint(geo.Meters{
			X: a.X + (b.X-a.X)*f,
			Y: a.Y + (b.Y-a.Y)*f,
		})
		out = append(out, trajectory.GPSPoint{P: c.traceNoise(rng, cfg, p), T: tt})
	}
	return out
}

func (c *City) traceNoise(rng *rand.Rand, cfg TraceConfig, p geo.Point) geo.Point {
	if cfg.NoiseMeters <= 0 {
		return p
	}
	m := c.Proj.ToMeters(p)
	m.X += rng.NormFloat64() * cfg.NoiseMeters
	m.Y += rng.NormFloat64() * cfg.NoiseMeters
	return geo.Clamp(c.Proj.ToPoint(m))
}
