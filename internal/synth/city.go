// Package synth generates the synthetic Shanghai-like workload that
// substitutes for the paper's proprietary data: an AMAP-style POI set
// matching Table 3's category mix, a taxi-journey log with the
// regularities Pervasive Miner exploits (commuting flows, weekday vs.
// weekend contrast, an airport hotspot, hospital trips), and a biased
// check-in sampler reproducing the Table 1 phenomenon.
//
// The generator is fully deterministic given its seed. It reproduces the
// structural properties the algorithms depend on:
//
//   - mixed-use skyscrapers: POIs of different majors stacked within the
//     paper's vertical-overlap distance d_v (semantic complexity);
//   - single-purpose streets and blocks: semantically homogeneous
//     neighborhoods (semantic homogeneity);
//   - a river band with no POIs splitting downtown (the GPS-ambiguity
//     scenario of §4.2);
//   - a small number of popular home/work anchor sites shared by many
//     commuters, so fine-grained patterns have real support.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"csdm/internal/geo"
	"csdm/internal/poi"
)

// SiteKind classifies how POIs scatter around a site.
type SiteKind int

// The site kinds.
const (
	// SiteBlock is an ordinary city block: POIs scatter with ~40 m spread.
	SiteBlock SiteKind = iota
	// SiteTower is a multi-purpose skyscraper: POIs of several majors
	// stack within a few meters of each other (the Shanghai Tower case).
	SiteTower
	// SiteStreet is a single-purpose street: POIs of one major category
	// string out along a line (the Fifth Avenue / Lan Kwai Fong case).
	SiteStreet
)

// Site is one POI placement site.
type Site struct {
	Center geo.Point
	Kind   SiteKind
	// Majors lists the major categories the site hosts.
	Majors []poi.Major
	// axis is the street direction for SiteStreet (radians).
	axis float64
}

// Config parameterizes the synthetic city.
type Config struct {
	// Seed drives all randomness; equal seeds give equal cities.
	Seed int64
	// Center anchors the city; defaults to People's Square, Shanghai.
	Center geo.Point
	// ExtentMeters is the half-width of the square city area.
	ExtentMeters float64
	// NumPOIs is the size of the generated POI dataset.
	NumPOIs int
	// NumPassengers is the commuter population size.
	NumPassengers int
	// CardShare is the fraction of passengers identified by payment
	// card (the paper's 20%).
	CardShare float64
	// Days is the number of simulated days (starting on a Monday).
	Days int
	// GPSNoiseMeters is the standard deviation of the Gaussian GPS
	// error applied to every pick-up/drop-off coordinate.
	GPSNoiseMeters float64
	// TripsPerPassengerDay is the expected taxi journeys a passenger
	// takes per day.
	TripsPerPassengerDay float64
}

// DefaultConfig returns a laptop-scale city: large enough that every
// pipeline stage has realistic structure, small enough to mine in
// seconds. Scale NumPOIs/NumPassengers/Days up for benchmark runs.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Center:               geo.Point{Lon: 121.47, Lat: 31.23},
		ExtentMeters:         6000,
		NumPOIs:              8000,
		NumPassengers:        1200,
		CardShare:            0.2,
		Days:                 7,
		GPSNoiseMeters:       15,
		TripsPerPassengerDay: 2.2,
	}
}

// tableThreeShares is the major-category distribution of Table 3.
var tableThreeShares = [poi.NumMajors]float64{
	poi.Residence:          0.1809,
	poi.ShopMarket:         0.1636,
	poi.BusinessOffice:     0.1500,
	poi.Restaurant:         0.1130,
	poi.Entertainment:      0.1003,
	poi.PublicService:      0.0940,
	poi.TrafficStations:    0.0755,
	poi.TechEducation:      0.0267,
	poi.Sports:             0.0194,
	poi.GovernmentAgency:   0.0188,
	poi.Industry:           0.0147,
	poi.FinancialService:   0.0143,
	poi.MedicalService:     0.0132,
	poi.AccommodationHotel: 0.0106,
	poi.Tourism:            0.0051,
}

// TableThreeShare returns the paper's Table 3 share for a major category.
func TableThreeShare(m poi.Major) float64 { return tableThreeShares[m] }

// City is a generated city: sites, POIs and landmark anchors.
type City struct {
	Config
	Proj  geo.Projection
	Sites []Site
	POIs  []poi.POI

	// sitesByMajor indexes the sites hosting each major category.
	sitesByMajor [poi.NumMajors][]int

	// Landmark anchors used by trip generation and the Figure 14 demos.
	Airport       geo.Point
	Hospital      geo.Point
	HomeSites     []int // residential sites used as commuter homes
	WorkSites     []int // office sites used as workplaces
	LeisureSites  []int // shop/restaurant/entertainment sites
	riverHalfWide float64
}

// NewCity generates a city from cfg.
func NewCity(cfg Config) *City {
	if cfg.Center == (geo.Point{}) {
		cfg.Center = DefaultConfig().Center
	}
	if cfg.ExtentMeters <= 0 {
		cfg.ExtentMeters = DefaultConfig().ExtentMeters
	}
	c := &City{
		Config:        cfg,
		Proj:          geo.NewProjection(cfg.Center),
		riverHalfWide: 150,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c.buildSites(rng)
	c.buildPOIs(rng)
	c.pickAnchors(rng)
	return c
}

// onRiver reports whether a planar point falls into the river band (a
// vertical strip slightly east of the center, like the Huangpu).
func (c *City) onRiver(m geo.Meters) bool {
	const riverX = 800
	return math.Abs(m.X-riverX) < c.riverHalfWide
}

// randomSitePos draws a site position avoiding the river.
func (c *City) randomSitePos(rng *rand.Rand) geo.Meters {
	for {
		m := geo.Meters{
			X: (rng.Float64()*2 - 1) * c.ExtentMeters,
			Y: (rng.Float64()*2 - 1) * c.ExtentMeters,
		}
		if !c.onRiver(m) {
			return m
		}
	}
}

// districtProfileFor maps a planar position to the majors its blocks
// host, implementing coarse zoning: offices cluster downtown-west,
// industry at the fringe, residence everywhere else, etc.
func districtProfileFor(m geo.Meters, extent float64) []poi.Major {
	r := math.Hypot(m.X, m.Y) / extent
	switch {
	case r < 0.25:
		// Downtown core: offices, finance, hotels, government.
		return []poi.Major{poi.BusinessOffice, poi.FinancialService, poi.AccommodationHotel, poi.GovernmentAgency}
	case r < 0.5:
		// Inner ring: commercial mix.
		return []poi.Major{poi.ShopMarket, poi.Restaurant, poi.Entertainment, poi.PublicService, poi.Tourism}
	case r < 0.85:
		// Residential ring with services.
		return []poi.Major{poi.Residence, poi.PublicService, poi.TechEducation, poi.Sports, poi.MedicalService, poi.TrafficStations}
	default:
		// Fringe: industry and transport.
		return []poi.Major{poi.Industry, poi.TrafficStations, poi.Residence}
	}
}

// buildSites lays out towers, streets and blocks. Sites are grouped
// into neighborhoods of 2–4 venues 80–180 m apart — real cities pack
// different venues along the same street, and that adjacency is what
// makes purification matter: without it, every venue is an isolated
// island and even a coarse recognizer never confuses two of them.
func (c *City) buildSites(rng *rand.Rand) {
	// Scale site count with the POI budget: ~25 POIs per site.
	nSites := maxInt(c.NumPOIs/25, 40)

	nTowers := nSites / 10  // 10% mixed-use towers
	nStreets := nSites / 10 // 10% single-purpose streets

	// Neighborhood centers; each hosts a handful of adjacent sites.
	var centers []geo.Meters
	nextSlot := 0 // index within the current neighborhood
	slots := 0    // sites remaining in the current neighborhood

	nextPos := func() geo.Meters {
		if slots == 0 {
			centers = append(centers, c.randomSitePos(rng))
			slots = 2 + rng.Intn(3)
			nextSlot = 0
		}
		center := centers[len(centers)-1]
		ang := float64(nextSlot)*2.2 + rng.Float64()*0.8
		dist := 80 + rng.Float64()*100
		nextSlot++
		slots--
		pos := geo.Meters{
			X: center.X + dist*math.Cos(ang),
			Y: center.Y + dist*math.Sin(ang),
		}
		if c.onRiver(pos) {
			pos.X += c.riverHalfWide*2 + 60
		}
		return pos
	}

	for i := 0; i < nSites; i++ {
		pos := nextPos()
		s := Site{Center: c.Proj.ToPoint(pos)}
		switch {
		case i < nTowers:
			s.Kind = SiteTower
			// Towers live downtown and mix 3–5 majors.
			pos = geo.Meters{X: pos.X * 0.3, Y: pos.Y * 0.3}
			if c.onRiver(pos) {
				pos.X += c.riverHalfWide*2 + 50
			}
			s.Center = c.Proj.ToPoint(pos)
			mix := []poi.Major{poi.BusinessOffice, poi.ShopMarket, poi.Restaurant, poi.AccommodationHotel, poi.TrafficStations}
			rng.Shuffle(len(mix), func(a, b int) { mix[a], mix[b] = mix[b], mix[a] })
			s.Majors = append([]poi.Major(nil), mix[:3+rng.Intn(3)]...)
		case i < nTowers+nStreets:
			s.Kind = SiteStreet
			street := []poi.Major{poi.ShopMarket, poi.Restaurant, poi.Entertainment}[rng.Intn(3)]
			s.Majors = []poi.Major{street}
			s.axis = rng.Float64() * math.Pi
		default:
			s.Kind = SiteBlock
			profile := districtProfileFor(pos, c.ExtentMeters)
			// A block hosts 1–2 majors of its district profile.
			k := 1 + rng.Intn(2)
			idx := rng.Perm(len(profile))[:k]
			for _, j := range idx {
				s.Majors = append(s.Majors, profile[j])
			}
		}
		c.Sites = append(c.Sites, s)
	}

	// Guarantee every major has at least two sites so Table 3 sampling
	// always finds a home for each category.
	var hosted [poi.NumMajors]int
	for _, s := range c.Sites {
		for _, m := range s.Majors {
			hosted[m]++
		}
	}
	for mj := 0; mj < poi.NumMajors; mj++ {
		for hosted[mj] < 2 {
			pos := c.randomSitePos(rng)
			c.Sites = append(c.Sites, Site{
				Center: c.Proj.ToPoint(pos),
				Kind:   SiteBlock,
				Majors: []poi.Major{poi.Major(mj)},
			})
			hosted[mj]++
		}
	}

	for i, s := range c.Sites {
		for _, m := range s.Majors {
			c.sitesByMajor[m] = append(c.sitesByMajor[m], i)
		}
	}
}

// buildPOIs samples NumPOIs POIs with Table 3 major marginals, placing
// each at a site hosting its major.
func (c *City) buildPOIs(rng *rand.Rand) {
	c.POIs = make([]poi.POI, 0, c.NumPOIs)
	var id int64 = 1
	for i := 0; i < c.NumPOIs; i++ {
		mj := sampleMajor(rng)
		siteIdx := c.sitesByMajor[mj][rng.Intn(len(c.sitesByMajor[mj]))]
		site := c.Sites[siteIdx]
		loc := c.placeAt(rng, site)
		minors := poi.MinorsOf(mj)
		p := poi.POI{
			ID:       id,
			Name:     fmt.Sprintf("%s #%d", mj, id),
			Location: loc,
			Minor:    minors[rng.Intn(len(minors))],
		}
		c.POIs = append(c.POIs, p)
		id++
	}
}

// placeAt scatters a POI around a site according to the site kind.
func (c *City) placeAt(rng *rand.Rand, s Site) geo.Point {
	m := c.Proj.ToMeters(s.Center)
	switch s.Kind {
	case SiteTower:
		// Stacked within the vertical-overlap distance d_v = 15 m.
		m.X += rng.NormFloat64() * 4
		m.Y += rng.NormFloat64() * 4
	case SiteStreet:
		// Strung along the street axis over ~300 m.
		t := (rng.Float64()*2 - 1) * 150
		m.X += t*math.Cos(s.axis) + rng.NormFloat64()*8
		m.Y += t*math.Sin(s.axis) + rng.NormFloat64()*8
	default:
		m.X += rng.NormFloat64() * 40
		m.Y += rng.NormFloat64() * 40
	}
	return geo.Clamp(c.Proj.ToPoint(m))
}

// sampleMajor draws a major category from the Table 3 distribution.
func sampleMajor(rng *rand.Rand) poi.Major {
	u := rng.Float64()
	acc := 0.0
	for mj := 0; mj < poi.NumMajors; mj++ {
		acc += tableThreeShares[mj]
		if u < acc {
			return poi.Major(mj)
		}
	}
	return poi.Tourism
}

// pickAnchors selects the landmark and commuter anchor sites.
func (c *City) pickAnchors(rng *rand.Rand) {
	// The airport sits at the city fringe (Hongqiao analog).
	airportPos := geo.Meters{X: -c.ExtentMeters * 0.9, Y: c.ExtentMeters * 0.1}
	c.Airport = c.Proj.ToPoint(airportPos)
	c.Sites = append(c.Sites, Site{
		Center: c.Airport,
		Kind:   SiteBlock,
		Majors: []poi.Major{poi.TrafficStations, poi.AccommodationHotel},
	})
	airportSite := len(c.Sites) - 1
	// Seed the airport with terminal POIs so recognition has material.
	terminal, _ := poi.MinorByName("Airport Terminal")
	for i := 0; i < 12; i++ {
		c.POIs = append(c.POIs, poi.POI{
			ID:       int64(len(c.POIs) + 1),
			Name:     fmt.Sprintf("Terminal POI %d", i),
			Location: c.placeAt(rng, c.Sites[airportSite]),
			Minor:    terminal,
		})
	}
	c.sitesByMajor[poi.TrafficStations] = append(c.sitesByMajor[poi.TrafficStations], airportSite)

	// A children's hospital (Figure 14(h) analog).
	hospPos := geo.Meters{X: c.ExtentMeters * 0.4, Y: -c.ExtentMeters * 0.5}
	c.Hospital = c.Proj.ToPoint(hospPos)
	c.Sites = append(c.Sites, Site{
		Center: c.Hospital,
		Kind:   SiteBlock,
		Majors: []poi.Major{poi.MedicalService},
	})
	hospSite := len(c.Sites) - 1
	children, _ := poi.MinorByName("Children Hospital")
	for i := 0; i < 10; i++ {
		c.POIs = append(c.POIs, poi.POI{
			ID:       int64(len(c.POIs) + 1),
			Name:     fmt.Sprintf("Children Hospital POI %d", i),
			Location: c.placeAt(rng, c.Sites[hospSite]),
			Minor:    children,
		})
	}
	c.sitesByMajor[poi.MedicalService] = append(c.sitesByMajor[poi.MedicalService], hospSite)

	// Commuter anchors: a set of popular home/work/leisure sites so
	// flows concentrate enough for patterns to clear the support
	// threshold, yet spread enough that no single flow dominates.
	c.HomeSites = pickSome(rng, c.sitesByMajor[poi.Residence], 28)
	c.WorkSites = pickSome(rng, c.sitesByMajor[poi.BusinessOffice], 14)
	leisure := append(append([]int(nil), c.sitesByMajor[poi.ShopMarket]...), c.sitesByMajor[poi.Restaurant]...)
	leisure = append(leisure, c.sitesByMajor[poi.Entertainment]...)
	c.LeisureSites = pickSome(rng, leisure, 18)
}

// pickSome draws up to n distinct elements from pool.
func pickSome(rng *rand.Rand, pool []int, n int) []int {
	if len(pool) <= n {
		return append([]int(nil), pool...)
	}
	perm := rng.Perm(len(pool))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
