package synth

import (
	"math/rand"
	"time"

	"csdm/internal/geo"
	"csdm/internal/trajectory"
)

// Passenger is one simulated commuter with stable activity anchors.
type Passenger struct {
	ID      int64 // 0 for anonymous (no payment card)
	Home    geo.Point
	Work    geo.Point
	Leisure geo.Point
}

// taxiSpeedMPS is the assumed average taxi speed (~14 km/h in downtown
// congestion); together with the city extent it yields the paper's
// ~30-minute mean trip, and with it the paper's observation that a
// δ_t below 30 minutes filters out many patterns (Figure 13).
const taxiSpeedMPS = 4.5

// startDate is the first simulated day — Monday, 2015-04-06, inside the
// paper's collection month.
var startDate = time.Date(2015, 4, 6, 0, 0, 0, 0, time.UTC)

// StartDate returns the first simulated day (a Monday).
func StartDate() time.Time { return startDate }

// Workload is the generated taxi log plus the ground truth behind it.
type Workload struct {
	Journeys   []trajectory.Journey
	Passengers []Passenger
}

// StayPoints extracts every pick-up and drop-off as a stay point — the
// paper uses them as stay points directly (§5, Figure 8). The result
// feeds POI-popularity estimation.
func (w Workload) StayPoints() []trajectory.StayPoint {
	out := make([]trajectory.StayPoint, 0, 2*len(w.Journeys))
	for _, j := range w.Journeys {
		out = append(out, j.StayPoints()...)
	}
	return out
}

// GenerateWorkload simulates the configured number of passengers over
// the configured number of days and returns their taxi journeys.
func (c *City) GenerateWorkload() Workload {
	rng := rand.New(rand.NewSource(c.Seed + 7919))
	w := Workload{}

	// Build the population. Card passengers get stable non-zero IDs.
	nCard := int(float64(c.NumPassengers) * c.CardShare)
	for i := 0; i < c.NumPassengers; i++ {
		p := Passenger{
			Home:    c.anchorNear(rng, c.HomeSites),
			Work:    c.anchorNear(rng, c.WorkSites),
			Leisure: c.anchorNear(rng, c.LeisureSites),
		}
		if i < nCard {
			p.ID = int64(i + 1)
		}
		w.Passengers = append(w.Passengers, p)
	}

	var taxi int64 = 1
	for day := 0; day < c.Days; day++ {
		date := startDate.AddDate(0, 0, day)
		weekend := date.Weekday() == time.Saturday || date.Weekday() == time.Sunday
		for _, p := range w.Passengers {
			legs := c.simulateDay(rng, p, weekend)
			for _, l := range legs {
				j := c.makeJourney(rng, taxi, p.ID, l.from, l.to, date, l.departMin)
				w.Journeys = append(w.Journeys, j)
				taxi++
			}
		}
		// Background traffic: irregular one-off rides between random
		// sites. They carry no repeated pattern but spread popularity
		// along the whole city, as citywide taxi activity does.
		nBg := int(float64(c.NumPassengers) * 0.4)
		for b := 0; b < nBg; b++ {
			from := c.randomSiteStop(rng)
			to := c.randomSiteStop(rng)
			dep := 6*60 + rng.Float64()*16*60
			j := c.makeJourney(rng, taxi, 0, from, to, date, dep)
			w.Journeys = append(w.Journeys, j)
			taxi++
		}
	}
	return w
}

// randomSiteStop draws a curb-side location near a random site.
func (c *City) randomSiteStop(rng *rand.Rand) geo.Point {
	s := c.Sites[rng.Intn(len(c.Sites))]
	m := c.Proj.ToMeters(s.Center)
	m.X += rng.NormFloat64() * 60
	m.Y += rng.NormFloat64() * 60
	return c.Proj.ToPoint(m)
}

// anchorNear picks a site from pool (popularity-skewed toward the first
// entries) and offsets it by a stable ~25 m to form a personal anchor.
func (c *City) anchorNear(rng *rand.Rand, pool []int) geo.Point {
	if len(pool) == 0 {
		return c.Center
	}
	// Squaring the uniform skews toward low indices: popular sites.
	idx := pool[int(rng.Float64()*rng.Float64()*float64(len(pool)))]
	m := c.Proj.ToMeters(c.Sites[idx].Center)
	m.X += rng.NormFloat64() * 15
	m.Y += rng.NormFloat64() * 15
	return c.Proj.ToPoint(m)
}

// leg is one planned taxi ride.
type leg struct {
	from, to  geo.Point
	departMin float64 // minutes after midnight
}

// simulateDay plans a passenger's taxi legs for one day. Weekdays are
// regular (commute + evening activity); weekends are sparse and
// irregular (§6, Figure 14).
func (c *City) simulateDay(rng *rand.Rand, p Passenger, weekend bool) []leg {
	var legs []leg
	jitter := func(center, spread float64) float64 { return center + rng.NormFloat64()*spread }

	if !weekend {
		// Morning commute, 7:30–9:00.
		if rng.Float64() < 0.8 {
			legs = append(legs, leg{from: p.Home, to: p.Work, departMin: jitter(8*60, 25)})
		}
		// Evening: direct home, or via leisure/shopping (card-linked
		// passengers thereby produce ≥3-stay chains).
		switch r := rng.Float64(); {
		case r < 0.45:
			legs = append(legs, leg{from: p.Work, to: p.Home, departMin: jitter(18*60, 30)})
		case r < 0.75:
			dep := jitter(18*60, 25)
			legs = append(legs, leg{from: p.Work, to: p.Leisure, departMin: dep})
			legs = append(legs, leg{from: p.Leisure, to: p.Home, departMin: dep + 90 + rng.Float64()*60})
		}
		// Occasional airport run (the Figure 14(g) hotspot).
		if rng.Float64() < 0.08 {
			legs = append(legs, leg{from: p.Home, to: c.Airport, departMin: jitter(10*60, 120)})
		}
		// Occasional hospital visit (the Figure 14(h) pattern — present
		// in GPS data, suppressed in check-ins).
		if rng.Float64() < 0.025 {
			dep := jitter(9*60+30, 60)
			legs = append(legs, leg{from: p.Home, to: c.Hospital, departMin: dep})
			legs = append(legs, leg{from: c.Hospital, to: p.Home, departMin: dep + 100 + rng.Float64()*40})
		}
	} else {
		// Weekend: sparse, irregular leisure.
		if rng.Float64() < 0.45 {
			dep := 9*60 + rng.Float64()*11*60 // any time 9:00–20:00
			dest := p.Leisure
			if rng.Float64() < 0.4 {
				dest = c.anchorNear(rng, c.LeisureSites) // somewhere new
			}
			legs = append(legs, leg{from: p.Home, to: dest, departMin: dep})
			if rng.Float64() < 0.7 {
				legs = append(legs, leg{from: dest, to: p.Home, departMin: dep + 120 + rng.Float64()*120})
			}
		}
		if rng.Float64() < 0.05 {
			legs = append(legs, leg{from: p.Home, to: c.Airport, departMin: 8*60 + rng.Float64()*10*60})
		}
	}
	return legs
}

// makeJourney materializes a leg into a journey record with GPS noise
// and a distance-derived duration.
func (c *City) makeJourney(rng *rand.Rand, taxi, passenger int64, from, to geo.Point, date time.Time, departMin float64) trajectory.Journey {
	if departMin < 0 {
		departMin = 0
	}
	if departMin > 23.5*60 {
		departMin = 23.5 * 60
	}
	pickup := date.Add(time.Duration(departMin * float64(time.Minute)))
	dist := geo.Haversine(from, to)
	travel := dist/taxiSpeedMPS*(0.9+rng.Float64()*0.3) + 120 // seconds
	dropoff := pickup.Add(time.Duration(travel * float64(time.Second)))
	return trajectory.Journey{
		TaxiID:      taxi,
		PassengerID: passenger,
		Pickup:      c.noisy(rng, from),
		PickupTime:  pickup,
		Dropoff:     c.noisy(rng, to),
		DropoffTime: dropoff,
	}
}

// noisy applies the configured Gaussian GPS error to a coordinate,
// clamped so even extreme noise draws stay legal WGS84 coordinates.
func (c *City) noisy(rng *rand.Rand, p geo.Point) geo.Point {
	if c.GPSNoiseMeters <= 0 {
		return p
	}
	m := c.Proj.ToMeters(p)
	m.X += rng.NormFloat64() * c.GPSNoiseMeters
	m.Y += rng.NormFloat64() * c.GPSNoiseMeters
	return geo.Clamp(c.Proj.ToPoint(m))
}

// MeanTripMinutes reports the mean journey duration of a workload; the
// paper observes ~30 minutes for Shanghai taxis.
func MeanTripMinutes(js []trajectory.Journey) float64 {
	if len(js) == 0 {
		return 0
	}
	var sum float64
	for _, j := range js {
		sum += j.DropoffTime.Sub(j.PickupTime).Minutes()
	}
	return sum / float64(len(js))
}
