package synth

import (
	"math/rand"
	"sort"

	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// Checkin is one shared location record: the minor-category topic the
// user chose to publish.
type Checkin struct {
	Topic poi.Minor
}

// CheckinProfile models the topic selectivity of a check-in community
// (Table 1): the probability that a visit to a venue of a given major
// category is shared publicly. Sensitive topics (medical, home) have
// low acceptance; social topics (bars, food) high.
type CheckinProfile struct {
	Name       string
	Acceptance [poi.NumMajors]float64
}

// ProfileNewYork mimics the paper's New York community: bars, fitness
// and offices are shared; medical visits almost never are.
func ProfileNewYork() CheckinProfile {
	var a [poi.NumMajors]float64
	a[poi.Entertainment] = 0.9
	a[poi.Restaurant] = 0.6
	a[poi.Sports] = 0.8
	a[poi.BusinessOffice] = 0.7
	a[poi.Residence] = 0.65
	a[poi.TrafficStations] = 0.5
	a[poi.ShopMarket] = 0.45
	a[poi.Tourism] = 0.5
	a[poi.TechEducation] = 0.2
	a[poi.PublicService] = 0.1
	a[poi.AccommodationHotel] = 0.3
	a[poi.FinancialService] = 0.05
	a[poi.GovernmentAgency] = 0.03
	a[poi.Industry] = 0.02
	a[poi.MedicalService] = 0.01
	return CheckinProfile{Name: "New York", Acceptance: a}
}

// ProfileTokyo mimics the paper's Tokyo community: stations dominate,
// homes are kept secret.
func ProfileTokyo() CheckinProfile {
	var a [poi.NumMajors]float64
	a[poi.TrafficStations] = 0.95
	a[poi.Restaurant] = 0.5
	a[poi.ShopMarket] = 0.45
	a[poi.Entertainment] = 0.35
	a[poi.Tourism] = 0.3
	a[poi.BusinessOffice] = 0.15
	a[poi.Sports] = 0.15
	a[poi.TechEducation] = 0.1
	a[poi.PublicService] = 0.05
	a[poi.AccommodationHotel] = 0.1
	a[poi.FinancialService] = 0.03
	a[poi.GovernmentAgency] = 0.02
	a[poi.Industry] = 0.02
	a[poi.MedicalService] = 0.005
	a[poi.Residence] = 0.02
	return CheckinProfile{Name: "Tokyo", Acceptance: a}
}

// SampleCheckins simulates the check-in stream a biased community would
// publish from the (unbiased) taxi visits: each drop-off is resolved to
// its nearest POI within 150 m, and the visit is shared with the
// profile's acceptance probability for that POI's major category. kind
// selects the nearest-POI index backend (earlier versions hardcoded the
// grid, ignoring the pipeline's configured backend).
func (c *City) SampleCheckins(js []trajectory.Journey, profile CheckinProfile, seed int64, kind index.Kind) []Checkin {
	rng := rand.New(rand.NewSource(seed))
	idx := index.New(kind, poi.Locations(c.POIs), 100)
	var out []Checkin
	for _, j := range js {
		near := idx.Nearest(j.Dropoff, 1)
		if len(near) == 0 {
			continue
		}
		p := c.POIs[near[0]]
		if geo.Haversine(j.Dropoff, p.Location) > 150 {
			continue
		}
		if rng.Float64() < profile.Acceptance[p.Major()] {
			out = append(out, Checkin{Topic: p.Minor})
		}
	}
	return out
}

// TopicCount is one row of a Table 1-style topic ranking.
type TopicCount struct {
	Topic poi.Minor
	Count int
	Ratio float64
}

// TopTopics ranks check-in topics by frequency, returning the top n with
// their share of all check-ins (the Table 1 statistic).
func TopTopics(cs []Checkin, n int) []TopicCount {
	counts := make(map[poi.Minor]int)
	for _, c := range cs {
		counts[c.Topic]++
	}
	out := make([]TopicCount, 0, len(counts))
	for topic, cnt := range counts {
		out = append(out, TopicCount{Topic: topic, Count: cnt})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Topic < out[b].Topic
	})
	total := float64(len(cs))
	for i := range out {
		out[i].Ratio = float64(out[i].Count) / total
	}
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// MajorShare returns the fraction of check-ins whose topic belongs to
// the given major category.
func MajorShare(cs []Checkin, m poi.Major) float64 {
	if len(cs) == 0 {
		return 0
	}
	n := 0
	for _, c := range cs {
		if c.Topic.Major() == m {
			n++
		}
	}
	return float64(n) / float64(len(cs))
}
