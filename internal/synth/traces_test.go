package synth

import (
	"testing"

	"csdm/internal/geo"
	"csdm/internal/trajectory"
)

func TestGenerateGPSTraces(t *testing.T) {
	cfg := testConfig()
	c := NewCity(cfg)
	w := c.GenerateWorkload()
	traces := c.GenerateGPSTraces(w, DefaultTraceConfig())
	if len(traces) == 0 {
		t.Fatal("no traces generated")
	}
	for i, tr := range traces {
		if len(tr.Points) < 2 {
			t.Fatalf("trace %d too short", i)
		}
		prev := tr.Points[0].T
		for _, gp := range tr.Points[1:] {
			if gp.T.Before(prev) {
				t.Fatalf("trace %d timestamps not monotone", i)
			}
			prev = gp.T
			if !gp.P.Valid() {
				t.Fatalf("trace %d has invalid coordinate", i)
			}
		}
	}
}

func TestTracesYieldStayPointsMatchingJourneys(t *testing.T) {
	cfg := testConfig()
	c := NewCity(cfg)
	w := c.GenerateWorkload()
	traces := c.GenerateGPSTraces(w, DefaultTraceConfig())

	params := trajectory.DefaultStayPointParams()
	recovered := 0
	total := 0
	for _, tr := range traces {
		stays := trajectory.DetectStayPoints(tr, params)
		total++
		// A one-journey day dwells at two places: expect ≥2 stays; a
		// chained day more. Require at least two for most traces.
		if len(stays) >= 2 {
			recovered++
		}
	}
	if frac := float64(recovered) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of traces yield ≥2 stay points", frac*100)
	}

	// The stay points of a specific trace must land near its journeys'
	// endpoints.
	tr := traces[0]
	stays := trajectory.DetectStayPoints(tr, params)
	if len(stays) == 0 {
		t.Fatal("first trace has no stays")
	}
	for _, sp := range stays {
		nearest := 1e18
		for _, gp := range tr.Points {
			if d := geo.Haversine(sp.P, gp.P); d < nearest {
				nearest = d
			}
		}
		if nearest > 100 {
			t.Fatalf("stay point %v is %f m from every trace sample", sp.P, nearest)
		}
	}
}

func TestTracesDeterministic(t *testing.T) {
	cfg := testConfig()
	c1 := NewCity(cfg)
	w1 := c1.GenerateWorkload()
	a := c1.GenerateGPSTraces(w1, DefaultTraceConfig())
	c2 := NewCity(cfg)
	w2 := c2.GenerateWorkload()
	b := c2.GenerateGPSTraces(w2, DefaultTraceConfig())
	if len(a) != len(b) {
		t.Fatalf("trace counts differ: %d vs %d", len(a), len(b))
	}
	if len(a) > 0 && (a[0].Points[0] != b[0].Points[0] || len(a[0].Points) != len(b[0].Points)) {
		t.Fatal("traces differ across equal seeds")
	}
}

func TestTracesZeroConfigDefaults(t *testing.T) {
	cfg := testConfig()
	cfg.NumPassengers = 50
	c := NewCity(cfg)
	w := c.GenerateWorkload()
	traces := c.GenerateGPSTraces(w, TraceConfig{})
	if len(traces) == 0 {
		t.Fatal("zero config should fall back to defaults")
	}
}
