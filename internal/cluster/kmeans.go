package cluster

import (
	"math"
	"math/rand"

	"csdm/internal/geo"
)

// KMeansResult extends Result with the final cluster centers.
type KMeansResult struct {
	Result
	Centers []geo.Point
}

// KMeans partitions pts into k clusters with Lloyd's algorithm seeded by
// k-means++. Distances are computed in a local metric projection. rng
// drives the seeding; maxIter bounds the Lloyd iterations.
func KMeans(pts []geo.Point, k, maxIter int, rng *rand.Rand) KMeansResult {
	n := len(pts)
	labels := make([]int, n)
	if n == 0 || k <= 0 {
		for i := range labels {
			labels[i] = Noise
		}
		return KMeansResult{Result: Result{Labels: labels}}
	}
	if k > n {
		k = n
	}
	proj := geo.NewProjection(geo.Centroid(pts))
	planar := make([]geo.Meters, n)
	for i, p := range pts {
		planar[i] = proj.ToMeters(p)
	}

	centers := seedPlusPlus(planar, k, rng)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i, m := range planar {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := sqDist(m, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		sums := make([]geo.Meters, k)
		counts := make([]int, k)
		for i, l := range labels {
			sums[l].X += planar[i].X
			sums[l].Y += planar[i].Y
			counts[l]++
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centers[c] = planar[rng.Intn(n)]
				continue
			}
			centers[c] = geo.Meters{
				X: sums[c].X / float64(counts[c]),
				Y: sums[c].Y / float64(counts[c]),
			}
		}
	}

	out := KMeansResult{
		Result:  Result{Labels: labels, NumClusters: k},
		Centers: make([]geo.Point, k),
	}
	for c, ctr := range centers {
		out.Centers[c] = proj.ToPoint(ctr)
	}
	return out
}

// seedPlusPlus picks k initial centers with k-means++ weighting.
func seedPlusPlus(planar []geo.Meters, k int, rng *rand.Rand) []geo.Meters {
	centers := make([]geo.Meters, 0, k)
	centers = append(centers, planar[rng.Intn(len(planar))])
	d2 := make([]float64, len(planar))
	for len(centers) < k {
		var total float64
		for i, m := range planar {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(m, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with existing centers.
			centers = append(centers, planar[rng.Intn(len(planar))])
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(planar) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, planar[pick])
	}
	return centers
}

func sqDist(a, b geo.Meters) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return dx*dx + dy*dy
}
