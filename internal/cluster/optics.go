package cluster

import (
	"context"
	"math"
	"sort"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
)

// OpticsResult holds the OPTICS ordering and reachability plot. The
// paper's Algorithm 4 uses OPTICS so the distance threshold need not be
// configured: clusters are cut out of the reachability plot afterwards.
type OpticsResult struct {
	pts []geo.Point
	// px/py are the packed planar coordinates, aliased from the same
	// SoA store the spatial index was built over (one batch projection
	// serves both).
	px, py []float64
	// Order is the OPTICS processing order of point indices.
	Order []int
	// Reach[i] is the reachability distance of point i (meters);
	// +Inf for points never reached within MaxEps.
	Reach []float64
	// CoreDist[i] is the core distance of point i; +Inf for non-core.
	CoreDist []float64
	minPts   int
	maxEps   float64
}

// Optics computes the OPTICS ordering of pts with the given generating
// maximum radius maxEps (meters) and core threshold minPts.
func Optics(pts []geo.Point, maxEps float64, minPts int) *OpticsResult {
	return OpticsWith(pts, maxEps, minPts, exec.Options{})
}

// OpticsWith is Optics with execution-layer options: neighborhoods are
// precomputed on opt's worker pool over an opt.Index backend, then the
// sequential ordering phase walks them. The ordering and reachability
// plot are identical for any worker budget.
func OpticsWith(pts []geo.Point, maxEps float64, minPts int, opt exec.Options) *OpticsResult {
	n := len(pts)
	res := &OpticsResult{
		pts:      pts,
		Reach:    make([]float64, n),
		CoreDist: make([]float64, n),
		minPts:   minPts,
		maxEps:   maxEps,
	}
	for i := range res.Reach {
		res.Reach[i] = math.Inf(1)
		res.CoreDist[i] = math.Inf(1)
	}
	if n == 0 || maxEps <= 0 || minPts <= 0 {
		return res
	}
	// Index and clustering share one packed SoA store: the index build
	// batch-projects it at the centroid — the same origin (and the same
	// per-point bits) the previous per-point projection produced — and
	// the reachability math below reads the planar slices directly. All
	// internal distance math runs in this local planar projection: at
	// city scale the distortion is far below the reachability resolution
	// the extraction steps care about, and it avoids spherical trig in
	// the innermost loops.
	pp := geo.Pack(pts)
	idx := index.NewPacked(opt.Index, pp, maxEps)
	nbrs := neighborhoods(idx, pts, maxEps, opt.Workers)
	processed := make([]bool, n)
	pp.EnsureProjected()
	px, py := pp.X, pp.Y
	res.px, res.py = px, py

	// Core distances depend only on a point's own neighborhood and the
	// fixed planar coordinates, so they can all be computed up front on
	// the worker pool instead of lazily inside the (inherently
	// sequential) ordering walk — the values are identical either way,
	// and with them precomputed the walk is pure queue work. Each slot
	// borrows a float64 arena for its squared-distance scratch; the
	// quickselect reorders scratch only, so task output never depends on
	// contents left by a previous task.
	slots := exec.Slots(opt.Workers, n)
	arenas := opt.AcquireArenas(slots)
	_ = exec.ParallelForSlots(context.Background(), opt.Workers, n, func(slot, i int) error {
		neighbors := nbrs[i]
		if len(neighbors) < minPts {
			return nil // stays +Inf
		}
		ds := arenas[slot].F64[:0]
		for _, j := range neighbors {
			dx := px[i] - px[j]
			dy := py[i] - py[j]
			ds = append(ds, dx*dx+dy*dy)
		}
		arenas[slot].F64 = ds
		res.CoreDist[i] = math.Sqrt(quickselect(ds, minPts-1))
		return nil
	})
	opt.ReleaseArenas(arenas)

	// One queue serves every component: it always drains empty before the
	// next start point, and Pop resets the popped id's position slot, so
	// the queue is back to its pristine state without reallocation.
	seeds := newSeedQueue(n)
	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		processed[start] = true
		res.Order = append(res.Order, start)
		if math.IsInf(res.CoreDist[start], 1) {
			continue
		}
		update(res, nbrs[start], start, seeds, processed)
		for seeds.Len() > 0 {
			cur := seeds.pop().id
			if processed[cur] {
				continue
			}
			processed[cur] = true
			res.Order = append(res.Order, cur)
			if !math.IsInf(res.CoreDist[cur], 1) {
				update(res, nbrs[cur], cur, seeds, processed)
			}
		}
	}
	return res
}

// update refreshes the reachability of center's unprocessed neighbors.
func update(res *OpticsResult, neighbors []int, center int, seeds *seedQueue, processed []bool) {
	cd := res.CoreDist[center]
	for _, j := range neighbors {
		if processed[j] {
			continue
		}
		dx := res.px[center] - res.px[j]
		dy := res.py[center] - res.py[j]
		newReach := math.Max(cd, math.Sqrt(dx*dx+dy*dy))
		if newReach < res.Reach[j] {
			res.Reach[j] = newReach
			seeds.upsert(j, newReach)
		}
	}
}

// ExtractDBSCAN cuts the reachability plot at eps, yielding the clusters
// DBSCAN(eps, minPts) would produce (up to border-point assignment).
func (o *OpticsResult) ExtractDBSCAN(eps float64) Result {
	labels := make([]int, len(o.pts))
	for i := range labels {
		labels[i] = Noise
	}
	cluster := -1
	for _, i := range o.Order {
		if o.Reach[i] > eps {
			if o.CoreDist[i] <= eps {
				cluster++
				labels[i] = cluster
			}
			// else: noise
		} else if cluster >= 0 {
			labels[i] = cluster
		}
	}
	return Result{Labels: labels, NumClusters: cluster + 1}
}

// ExtractAuto chooses a cut threshold from the reachability plot itself —
// the paper's "optimal distance threshold with sufficiently high density"
// — and extracts clusters at it. The threshold is placed at the largest
// relative gap in the sorted finite reachability values (the knee that
// separates intra-cluster from inter-cluster reachabilities); when the
// plot has no meaningful gap the generating maxEps is used.
func (o *OpticsResult) ExtractAuto() Result {
	var finite []float64
	for _, r := range o.Reach {
		if !math.IsInf(r, 1) {
			finite = append(finite, r)
		}
	}
	if len(finite) < 2 {
		return o.ExtractDBSCAN(o.maxEps)
	}
	sort.Float64s(finite)
	// Search for the biggest multiplicative jump in the upper half of the
	// plot; cuts in the lower half would shatter genuine clusters.
	cut := o.maxEps
	bestRatio := 1.5 // require a clear gap before trusting it
	for i := len(finite) / 2; i+1 < len(finite); i++ {
		lo, hi := finite[i], finite[i+1]
		if lo <= 0 {
			continue
		}
		if ratio := hi / lo; ratio > bestRatio {
			bestRatio = ratio
			cut = (lo + hi) / 2
		}
	}
	return o.ExtractDBSCAN(cut)
}

// ExtractLeaves extracts clusters with a per-cluster distance threshold
// — §4.3's "optimal distance threshold with sufficiently high density
// for each cluster". The reachability plot is split recursively at its
// dominant spikes: a spike separates two sub-plots when it towers over
// their internal reachabilities by splitRatio; recursion stops when a
// sub-plot has no such spike, and the sub-plot becomes one cluster when
// it holds at least minPts points (noise otherwise). Compared to a
// single global cut, nearby dense clusters separated by a modest gap
// are recovered individually instead of being merged.
func (o *OpticsResult) ExtractLeaves(minPts int) Result {
	const splitRatio = 1.6
	labels := make([]int, len(o.pts))
	for i := range labels {
		labels[i] = Noise
	}
	res := Result{Labels: labels}
	var recurse func(lo, hi int)
	recurse = func(lo, hi int) {
		if hi-lo < minPts {
			return
		}
		// The first point of an interval was reached from outside; its
		// reachability describes the jump INTO the interval, so spikes
		// are sought strictly inside. A split is only worthwhile when
		// both sides could still form a cluster: a spike that merely
		// chips stragglers off a viable cluster is ignored, except for
		// infinite spikes (genuinely unreachable jumps), which always
		// separate.
		spike := -1
		spikeVal := 0.0
		for i := lo + 1; i < hi; i++ {
			r := o.Reach[o.Order[i]]
			if r <= spikeVal {
				continue
			}
			if !math.IsInf(r, 1) && (i-lo < minPts || hi-i < minPts) {
				continue
			}
			spikeVal = r
			spike = i
		}
		if spike < 0 {
			// Only straggler-chipping spikes remain: one cluster.
			cid := res.NumClusters
			res.NumClusters++
			for i := lo; i < hi; i++ {
				labels[o.Order[i]] = cid
			}
			return
		}
		// Compare the spike with the typical internal reachability.
		internal := make([]float64, 0, hi-lo)
		for i := lo + 1; i < hi; i++ {
			if i != spike && !math.IsInf(o.Reach[o.Order[i]], 1) {
				internal = append(internal, o.Reach[o.Order[i]])
			}
		}
		med := medianFloat(internal)
		if !math.IsInf(spikeVal, 1) && (med <= 0 || spikeVal < med*splitRatio) {
			// No dominant spike: this interval is one cluster.
			cid := res.NumClusters
			res.NumClusters++
			for i := lo; i < hi; i++ {
				labels[o.Order[i]] = cid
			}
			return
		}
		recurse(lo, spike)
		recurse(spike, hi)
	}
	recurse(0, len(o.Order))
	return res
}

func medianFloat(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// quickselect returns the k-th smallest value of vals (0-based),
// partially reordering vals in place. Hoare-style selection: expected
// linear time, no allocation.
func quickselect(vals []float64, k int) float64 {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		pivot := vals[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for vals[i] < pivot {
				i++
			}
			for vals[j] > pivot {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return vals[k]
}

// seedItem is an entry of the OPTICS priority queue.
type seedItem struct {
	id    int
	reach float64
}

// seedQueue is an indexed min-heap over reachability distances. It is
// hand-rolled rather than built on container/heap — whose any-typed
// interface boxes every pushed item — and the position table is a dense
// slice over point ids (-1 = absent) rather than a map: upsert is the
// innermost OPTICS operation and must be allocation-free.
type seedQueue struct {
	items []seedItem
	pos   []int // pos[id] = heap index of id, or -1 when not queued
}

// newSeedQueue sizes the position table for point ids [0, n).
func newSeedQueue(n int) *seedQueue {
	q := &seedQueue{pos: make([]int, n)}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// Len returns the number of queued seeds.
func (q *seedQueue) Len() int { return len(q.items) }

func (q *seedQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].id] = i
	q.pos[q.items[j].id] = j
}

func (q *seedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].reach <= q.items[i].reach {
			break
		}
		q.swap(parent, i)
		i = parent
	}
}

func (q *seedQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].reach < q.items[smallest].reach {
			smallest = l
		}
		if r < n && q.items[r].reach < q.items[smallest].reach {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(smallest, i)
		i = smallest
	}
}

// pop removes and returns the seed with the smallest reachability.
func (q *seedQueue) pop() seedItem {
	root := q.items[0]
	last := len(q.items) - 1
	q.swap(0, last)
	q.items = q.items[:last]
	q.pos[root.id] = -1
	if last > 0 {
		q.down(0)
	}
	return root
}

// upsert inserts id with the given reachability or decreases its key.
func (q *seedQueue) upsert(id int, reach float64) {
	if i := q.pos[id]; i >= 0 {
		q.items[i].reach = reach
		q.up(i) // upsert only ever decreases the key
		return
	}
	q.pos[id] = len(q.items)
	q.items = append(q.items, seedItem{id: id, reach: reach})
	q.up(len(q.items) - 1)
}
