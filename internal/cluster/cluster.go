// Package cluster implements the clustering algorithms the paper's
// pipeline and its baselines depend on: DBSCAN (hot-region detection in
// the ROI baseline, SDBSCAN refinement), OPTICS (Algorithm 4's
// CounterpartCluster step), K-means (hot-region splitting), and Mean
// Shift (Splitter's top-down refinement).
//
// All algorithms cluster WGS84 points with distances in meters and
// report results as a label per input point; Noise marks unclustered
// points.
package cluster

import (
	"context"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Result is a clustering outcome: Labels[i] is the cluster of point i
// (or Noise), and NumClusters is the number of distinct clusters.
type Result struct {
	Labels      []int
	NumClusters int
}

// Members returns the point indices of each cluster, indexed by label.
func (r Result) Members() [][]int {
	out := make([][]int, r.NumClusters)
	for i, l := range r.Labels {
		if l >= 0 {
			out[l] = append(out[l], i)
		}
	}
	return out
}

// NoiseCount returns how many points were labeled Noise.
func (r Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// DBSCAN runs density-based spatial clustering over pts with
// neighborhood radius eps (meters) and core threshold minPts (a point is
// a core point when its eps-neighborhood, itself included, holds at
// least minPts points).
func DBSCAN(pts []geo.Point, eps float64, minPts int) Result {
	return DBSCANWith(pts, eps, minPts, exec.Options{})
}

// DBSCANWith is DBSCAN with execution-layer options: the spatial index
// backend comes from opt.Index, and every point's eps-neighborhood —
// the dominant cost — is precomputed on opt's worker pool before the
// sequential cluster-growth phase consumes the neighborhoods in the
// usual order. The labeling is identical for any worker budget.
func DBSCANWith(pts []geo.Point, eps float64, minPts int, opt exec.Options) Result {
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = Noise
	}
	if len(pts) == 0 || eps <= 0 || minPts <= 0 {
		return Result{Labels: labels}
	}
	idx := index.New(opt.Index, pts, eps)
	neighbors := neighborhoods(idx, pts, eps, opt.Workers)

	visited := make([]bool, len(pts))
	next := 0
	for i := range pts {
		if visited[i] {
			continue
		}
		visited[i] = true
		if len(neighbors[i]) < minPts {
			continue
		}
		labels[i] = next
		// Expand the cluster with a seed queue.
		queue := append([]int(nil), neighbors[i]...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = next // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = next
			if jn := neighbors[j]; len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
		next++
	}
	return Result{Labels: labels, NumClusters: next}
}

// neighborhoods answers every point's eps range query up front on the
// worker pool. The density-based algorithms query each point's
// neighborhood exactly once, so precomputation does no extra work over
// the lazy form — it only reorders it into an embarrassingly parallel
// phase; slot i always holds point i's result, keeping downstream
// iteration order worker-count independent.
//
// Each worker appends its results into one per-slot arena and hands out
// full-capacity subslices, so a point's neighborhood costs zero
// allocations beyond the arena's amortized growth (a grown arena leaves
// earlier subslices valid on the old backing array, and the capacity
// cap keeps them immune to later appends).
func neighborhoods(idx index.Index, pts []geo.Point, eps float64, workers int) [][]int {
	out := make([][]int, len(pts))
	arenas := make([][]int, exec.Slots(workers, len(pts)))
	_ = exec.ParallelForSlots(context.Background(), workers, len(pts), func(slot, i int) error {
		a := arenas[slot]
		start := len(a)
		a = idx.WithinAppend(pts[i], eps, a)
		arenas[slot] = a
		out[i] = a[start:len(a):len(a)]
		return nil
	})
	return out
}
