package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"csdm/internal/exec"
	"csdm/internal/geo"
)

var origin = geo.Point{Lon: 121.47, Lat: 31.23}

// blob scatters n points with the given Gaussian spread (meters) around
// a center offset (meters) from origin.
func blob(rng *rand.Rand, n int, cx, cy, spread float64) []geo.Point {
	pr := geo.NewProjection(origin)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = pr.ToPoint(geo.Meters{
			X: cx + rng.NormFloat64()*spread,
			Y: cy + rng.NormFloat64()*spread,
		})
	}
	return pts
}

// threeBlobs builds three well-separated 50-point blobs.
func threeBlobs(rng *rand.Rand) []geo.Point {
	pts := blob(rng, 50, 0, 0, 15)
	pts = append(pts, blob(rng, 50, 1000, 0, 15)...)
	pts = append(pts, blob(rng, 50, 0, 1000, 15)...)
	return pts
}

// sameCluster reports whether points i and j share a non-noise label.
func sameCluster(r Result, i, j int) bool {
	return r.Labels[i] >= 0 && r.Labels[i] == r.Labels[j]
}

func TestDBSCANFindsThreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := threeBlobs(rng)
	r := DBSCAN(pts, 100, 5)
	if r.NumClusters != 3 {
		t.Fatalf("NumClusters = %d, want 3", r.NumClusters)
	}
	// All points within one blob share a label; across blobs differ.
	if !sameCluster(r, 0, 49) {
		t.Error("points of blob 1 not co-clustered")
	}
	if !sameCluster(r, 50, 99) {
		t.Error("points of blob 2 not co-clustered")
	}
	if sameCluster(r, 0, 50) || sameCluster(r, 0, 100) {
		t.Error("distinct blobs merged")
	}
	if r.NoiseCount() > 5 {
		t.Errorf("too much noise: %d", r.NoiseCount())
	}
}

func TestDBSCANMarksOutliersNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pr := geo.NewProjection(origin)
	pts := blob(rng, 40, 0, 0, 10)
	outlier := pr.ToPoint(geo.Meters{X: 5000, Y: 5000})
	pts = append(pts, outlier)
	r := DBSCAN(pts, 80, 4)
	if r.Labels[len(pts)-1] != Noise {
		t.Fatalf("outlier labeled %d, want Noise", r.Labels[len(pts)-1])
	}
}

func TestDBSCANDegenerateInputs(t *testing.T) {
	if r := DBSCAN(nil, 100, 5); len(r.Labels) != 0 || r.NumClusters != 0 {
		t.Error("empty input should produce empty result")
	}
	pts := []geo.Point{origin, origin}
	if r := DBSCAN(pts, 0, 5); r.NumClusters != 0 {
		t.Error("eps=0 should cluster nothing")
	}
	if r := DBSCAN(pts, 100, 0); r.NumClusters != 0 {
		t.Error("minPts=0 should cluster nothing")
	}
}

func TestDBSCANAllPointsLabeledProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%100 + 1
		pts := blob(rng, n, 0, 0, 200)
		r := DBSCAN(pts, 60, 3)
		if len(r.Labels) != n {
			return false
		}
		for _, l := range r.Labels {
			if l < Noise || l >= r.NumClusters {
				return false
			}
		}
		// Every declared cluster must have at least one member.
		seen := make(map[int]bool)
		for _, l := range r.Labels {
			if l >= 0 {
				seen[l] = true
			}
		}
		return len(seen) == r.NumClusters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOpticsExtractMatchesDBSCANOnBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := threeBlobs(rng)
	opt := Optics(pts, 300, 5)
	if len(opt.Order) != len(pts) {
		t.Fatalf("OPTICS order covers %d of %d points", len(opt.Order), len(pts))
	}
	r := opt.ExtractDBSCAN(100)
	if r.NumClusters != 3 {
		t.Fatalf("OPTICS-extracted clusters = %d, want 3", r.NumClusters)
	}
	d := DBSCAN(pts, 100, 5)
	// The partitions should agree up to label permutation: check pairwise
	// co-membership on a sample.
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(len(pts)), rng.Intn(len(pts))
		if sameCluster(r, i, j) != sameCluster(d, i, j) {
			t.Fatalf("OPTICS and DBSCAN disagree on pair (%d,%d)", i, j)
		}
	}
}

func TestOpticsExtractAutoSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := threeBlobs(rng)
	r := Optics(pts, 2000, 5).ExtractAuto()
	if r.NumClusters != 3 {
		t.Fatalf("ExtractAuto clusters = %d, want 3", r.NumClusters)
	}
	if sameCluster(r, 0, 50) {
		t.Error("ExtractAuto merged separate blobs")
	}
}

func TestOpticsSingleBlobAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := blob(rng, 60, 0, 0, 20)
	r := Optics(pts, 500, 5).ExtractAuto()
	if r.NumClusters != 1 {
		t.Fatalf("single blob ExtractAuto clusters = %d, want 1", r.NumClusters)
	}
}

func TestOpticsEmptyAndTiny(t *testing.T) {
	if o := Optics(nil, 100, 5); len(o.Order) != 0 {
		t.Error("empty OPTICS should have empty order")
	}
	pts := []geo.Point{origin}
	o := Optics(pts, 100, 5)
	if len(o.Order) != 1 {
		t.Fatalf("one-point OPTICS order = %v", o.Order)
	}
	r := o.ExtractAuto()
	if r.NumClusters != 0 || r.Labels[0] != Noise {
		t.Errorf("one point below minPts should be noise, got %+v", r)
	}
}

func TestOpticsReachabilityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := threeBlobs(rng)
	o := Optics(pts, 300, 5)
	seen := make([]bool, len(pts))
	for _, i := range o.Order {
		if seen[i] {
			t.Fatal("OPTICS order repeats a point")
		}
		seen[i] = true
	}
	// Core distance of a core point is at most maxEps; reachability of
	// any reached point is at least the core distance of some core.
	for i := range pts {
		if !math.IsInf(o.CoreDist[i], 1) && o.CoreDist[i] > 300 {
			t.Fatalf("core distance %v exceeds maxEps", o.CoreDist[i])
		}
		if !math.IsInf(o.Reach[i], 1) && o.Reach[i] > 300+1e-9 {
			t.Fatalf("reachability %v exceeds maxEps", o.Reach[i])
		}
	}
}

func TestKMeansThreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := threeBlobs(rng)
	r := KMeans(pts, 3, 50, rng)
	if r.NumClusters != 3 || len(r.Centers) != 3 {
		t.Fatalf("KMeans clusters = %d, centers = %d", r.NumClusters, len(r.Centers))
	}
	// Each center should be close to one of the true blob centers.
	pr := geo.NewProjection(origin)
	truth := []geo.Meters{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 0, Y: 1000}}
	for _, c := range r.Centers {
		m := pr.ToMeters(c)
		best := math.Inf(1)
		for _, tc := range truth {
			if d := m.Dist(tc); d < best {
				best = d
			}
		}
		if best > 50 {
			t.Fatalf("center %v is %.1f m from nearest truth center", c, best)
		}
	}
	if s := Silhouette(pts, r.Result); s < 0.8 {
		t.Fatalf("silhouette = %.3f, want > 0.8 for separated blobs", s)
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := blob(rng, 3, 0, 0, 10)
	r := KMeans(pts, 10, 20, rng)
	if r.NumClusters != 3 {
		t.Fatalf("k>n should clamp to n: clusters = %d", r.NumClusters)
	}
}

func TestKMeansEmptyAndZeroK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if r := KMeans(nil, 3, 10, rng); len(r.Labels) != 0 {
		t.Error("empty KMeans should return no labels")
	}
	pts := []geo.Point{origin, origin}
	r := KMeans(pts, 0, 10, rng)
	for _, l := range r.Labels {
		if l != Noise {
			t.Error("k=0 should label everything noise")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := []geo.Point{origin, origin, origin, origin, origin}
	r := KMeans(pts, 2, 20, rng)
	if len(r.Centers) != 2 {
		t.Fatalf("centers = %d", len(r.Centers))
	}
	for _, c := range r.Centers {
		if geo.Haversine(c, origin) > 1 {
			t.Fatalf("center %v drifted from the only location", c)
		}
	}
}

func TestMeanShiftThreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := threeBlobs(rng)
	r := MeanShift(pts, 150)
	if r.NumClusters != 3 {
		t.Fatalf("MeanShift clusters = %d, want 3", r.NumClusters)
	}
	if !sameCluster(r.Result, 0, 49) || sameCluster(r.Result, 0, 50) {
		t.Error("MeanShift mis-assigned blob membership")
	}
	// Modes near true centers.
	pr := geo.NewProjection(origin)
	for _, m := range r.Modes {
		mm := pr.ToMeters(m)
		best := math.Inf(1)
		for _, tc := range []geo.Meters{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 0, Y: 1000}} {
			if d := mm.Dist(tc); d < best {
				best = d
			}
		}
		if best > 60 {
			t.Fatalf("mode %v is %.1f m from nearest truth center", m, best)
		}
	}
}

func TestMeanShiftSingleBlobOneCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := blob(rng, 80, 0, 0, 30)
	r := MeanShift(pts, 200)
	if r.NumClusters != 1 {
		t.Fatalf("MeanShift single blob clusters = %d, want 1", r.NumClusters)
	}
}

func TestMeanShiftDegenerate(t *testing.T) {
	if r := MeanShift(nil, 100); len(r.Labels) != 0 {
		t.Error("empty MeanShift should return no labels")
	}
	r := MeanShift([]geo.Point{origin}, 0)
	if r.Labels[0] != Noise {
		t.Error("bandwidth=0 should label noise")
	}
}

func TestMembersPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := blob(rng, 60, 0, 0, 300)
		r := DBSCAN(pts, 50, 3)
		members := r.Members()
		total := 0
		for _, m := range members {
			total += len(m)
		}
		return total+r.NoiseCount() == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := blob(rng, 20, 0, 0, 10)
	one := Result{Labels: make([]int, 20), NumClusters: 1}
	if !math.IsNaN(Silhouette(pts, one)) {
		t.Error("silhouette of single cluster should be NaN")
	}
}

func BenchmarkDBSCAN1k(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	var pts []geo.Point
	for c := 0; c < 10; c++ {
		pts = append(pts, blob(rng, 100, float64(c)*600, float64(c%3)*700, 40)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DBSCAN(pts, 80, 5)
	}
}

func BenchmarkOptics1k(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	var pts []geo.Point
	for c := 0; c < 10; c++ {
		pts = append(pts, blob(rng, 100, float64(c)*600, float64(c%3)*700, 40)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optics(pts, 200, 5)
	}
}

func BenchmarkMeanShift300(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := threeBlobs(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeanShift(pts, 150)
	}
}

func TestOpticsExtractLeavesSeparatesAdjacentBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Two tight blobs only 150 m apart: a single global cut tends to
	// merge them; per-cluster extraction must keep them separate.
	pts := blob(rng, 60, 0, 0, 12)
	pts = append(pts, blob(rng, 60, 150, 0, 12)...)
	r := Optics(pts, 500, 10).ExtractLeaves(10)
	if r.NumClusters != 2 {
		t.Fatalf("ExtractLeaves clusters = %d, want 2", r.NumClusters)
	}
	// Majority vote per blob: the two dominant labels must differ. (A
	// few boundary points may straggle to the other side, which is
	// inherent to density ordering.)
	dominant := func(lo, hi int) int {
		counts := map[int]int{}
		for i := lo; i < hi; i++ {
			if r.Labels[i] >= 0 {
				counts[r.Labels[i]]++
			}
		}
		best, bestN := Noise, 0
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		if bestN < (hi-lo)*3/4 {
			t.Fatalf("blob [%d,%d) has no dominant cluster: %v", lo, hi, counts)
		}
		return best
	}
	if dominant(0, 60) == dominant(60, 120) {
		t.Fatal("adjacent blobs merged")
	}
}

func TestOpticsExtractLeavesSingleBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := blob(rng, 80, 0, 0, 25)
	r := Optics(pts, 500, 10).ExtractLeaves(10)
	if r.NumClusters != 1 {
		t.Fatalf("single blob leaves = %d, want 1", r.NumClusters)
	}
	if r.NoiseCount() > 8 {
		t.Fatalf("too much noise: %d", r.NoiseCount())
	}
}

func TestOpticsExtractLeavesSubMinPtsIsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := blob(rng, 5, 0, 0, 10) // below minPts
	r := Optics(pts, 500, 10).ExtractLeaves(10)
	if r.NumClusters != 0 {
		t.Fatalf("clusters = %d, want 0", r.NumClusters)
	}
	for _, l := range r.Labels {
		if l != Noise {
			t.Fatal("sub-minPts points must be noise")
		}
	}
}

func TestQuickselectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		k := rng.Intn(n)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if got := quickselect(append([]float64(nil), vals...), k); got != sorted[k] {
			t.Fatalf("quickselect(%v, %d) = %v, want %v", vals, k, got, sorted[k])
		}
	}
}

func TestQuickselectDuplicates(t *testing.T) {
	vals := []float64{5, 5, 5, 5, 5}
	for k := 0; k < 5; k++ {
		if got := quickselect(append([]float64(nil), vals...), k); got != 5 {
			t.Fatalf("quickselect dup k=%d = %v", k, got)
		}
	}
}

func TestExtractLeavesLabelsAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := threeBlobs(rng)
	r := Optics(pts, 500, 10).ExtractLeaves(10)
	// Labels within [Noise, NumClusters); every cluster non-empty.
	seen := make(map[int]int)
	for _, l := range r.Labels {
		if l < Noise || l >= r.NumClusters {
			t.Fatalf("label %d out of range", l)
		}
		if l >= 0 {
			seen[l]++
		}
	}
	if len(seen) != r.NumClusters {
		t.Fatalf("declared %d clusters, populated %d", r.NumClusters, len(seen))
	}
	for l, n := range seen {
		if n < 10 {
			t.Fatalf("cluster %d has %d members, below minPts", l, n)
		}
	}
}

// TestOpticsParallelDeterminism pins the tentpole invariant of the
// parallel core-distance precompute: the OPTICS ordering, reachability
// plot and core distances must be bit-identical for any worker budget
// (and with or without an arena pool attached), because the mined
// pattern set downstream is gated on exact equality.
func TestOpticsParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := threeBlobs(rng)
	pts = append(pts, blob(rng, 30, 500, 500, 400)...) // sparse bridge

	ref := OpticsWith(pts, 300, 5, exec.Options{Workers: 1})
	for _, opt := range []exec.Options{
		{Workers: 8},
		{Workers: 3, Arenas: exec.NewArenaPool()},
		{Workers: 8, Arenas: exec.NewArenaPool()},
	} {
		got := OpticsWith(pts, 300, 5, opt)
		if len(got.Order) != len(ref.Order) {
			t.Fatalf("workers=%d: order length %d != %d", opt.Workers, len(got.Order), len(ref.Order))
		}
		for i := range ref.Order {
			if got.Order[i] != ref.Order[i] {
				t.Fatalf("workers=%d: Order[%d] = %d, want %d", opt.Workers, i, got.Order[i], ref.Order[i])
			}
		}
		for i := range ref.Reach {
			if math.Float64bits(got.Reach[i]) != math.Float64bits(ref.Reach[i]) {
				t.Fatalf("workers=%d: Reach[%d] = %v, want %v", opt.Workers, i, got.Reach[i], ref.Reach[i])
			}
			if math.Float64bits(got.CoreDist[i]) != math.Float64bits(ref.CoreDist[i]) {
				t.Fatalf("workers=%d: CoreDist[%d] = %v, want %v", opt.Workers, i, got.CoreDist[i], ref.CoreDist[i])
			}
		}
	}

	// Arena reuse across invocations must not leak state between runs.
	pool := exec.NewArenaPool()
	opt := exec.Options{Workers: 4, Arenas: pool}
	for run := 0; run < 3; run++ {
		got := OpticsWith(pts, 300, 5, opt)
		for i := range ref.Reach {
			if math.Float64bits(got.Reach[i]) != math.Float64bits(ref.Reach[i]) {
				t.Fatalf("run %d: pooled Reach[%d] diverged", run, i)
			}
		}
	}
}
