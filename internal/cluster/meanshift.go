package cluster

import (
	"context"
	"math"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
)

// MeanShiftResult extends Result with the converged modes.
type MeanShiftResult struct {
	Result
	Modes []geo.Point
}

// meanShiftMaxIter bounds the hill-climbing iterations per point.
const meanShiftMaxIter = 100

// MeanShift clusters pts by flat-kernel mean-shift with the given
// bandwidth (meters): every point hill-climbs to the mean of its
// bandwidth neighborhood until it moves less than 1% of the bandwidth,
// and points whose modes land within half a bandwidth of each other are
// merged into one cluster. This is the top-down refinement strategy the
// Splitter baseline uses to break coarse patterns apart.
func MeanShift(pts []geo.Point, bandwidth float64) MeanShiftResult {
	return MeanShiftWith(pts, bandwidth, exec.Options{})
}

// MeanShiftWith is MeanShift with execution-layer options: each point's
// hill-climb is independent, so the climbs fan out over opt's worker
// pool (modes[i] is point i's converged mode regardless of schedule);
// the greedy mode merge that follows stays sequential. The clustering
// is identical for any worker budget.
func MeanShiftWith(pts []geo.Point, bandwidth float64, opt exec.Options) MeanShiftResult {
	n := len(pts)
	labels := make([]int, n)
	if n == 0 || bandwidth <= 0 {
		for i := range labels {
			labels[i] = Noise
		}
		return MeanShiftResult{Result: Result{Labels: labels}}
	}
	proj := geo.NewProjection(geo.Centroid(pts))
	planar := make([]geo.Meters, n)
	for i, p := range pts {
		planar[i] = proj.ToMeters(p)
	}
	idx := index.New(opt.Index, pts, bandwidth)
	tol := bandwidth * 0.01

	modes := make([]geo.Meters, n)
	_ = exec.ParallelFor(context.Background(), opt.Workers, n, func(i int) error {
		cur := planar[i]
		for iter := 0; iter < meanShiftMaxIter; iter++ {
			neighbors := idx.Within(proj.ToPoint(cur), bandwidth)
			if len(neighbors) == 0 {
				break
			}
			var sx, sy float64
			for _, j := range neighbors {
				sx += planar[j].X
				sy += planar[j].Y
			}
			next := geo.Meters{X: sx / float64(len(neighbors)), Y: sy / float64(len(neighbors))}
			if cur.Dist(next) < tol {
				cur = next
				break
			}
			cur = next
		}
		modes[i] = cur
		return nil
	})

	// Merge modes within bandwidth/2 of each other (greedy union).
	mergeR := bandwidth / 2
	var centers []geo.Meters
	for i := range labels {
		assigned := -1
		for c, ctr := range centers {
			if modes[i].Dist(ctr) <= mergeR {
				assigned = c
				break
			}
		}
		if assigned < 0 {
			centers = append(centers, modes[i])
			assigned = len(centers) - 1
		}
		labels[i] = assigned
	}

	out := MeanShiftResult{
		Result: Result{Labels: labels, NumClusters: len(centers)},
		Modes:  make([]geo.Point, len(centers)),
	}
	// Report each cluster's mode as the mean of its members' modes.
	sums := make([]geo.Meters, len(centers))
	counts := make([]int, len(centers))
	for i, l := range labels {
		sums[l].X += modes[i].X
		sums[l].Y += modes[i].Y
		counts[l]++
	}
	for c := range centers {
		out.Modes[c] = proj.ToPoint(geo.Meters{
			X: sums[c].X / float64(counts[c]),
			Y: sums[c].Y / float64(counts[c]),
		})
	}
	return out
}

// Silhouette returns the mean silhouette coefficient of a clustering, a
// quality score in [-1, 1]; it skips noise points and returns NaN when
// fewer than two clusters have members. Used by tests and ablations to
// sanity-check clustering quality.
func Silhouette(pts []geo.Point, r Result) float64 {
	members := r.Members()
	populated := 0
	for _, m := range members {
		if len(m) > 0 {
			populated++
		}
	}
	if populated < 2 {
		return math.NaN()
	}
	var total float64
	var count int
	for i, l := range r.Labels {
		if l == Noise || len(members[l]) < 2 {
			continue
		}
		a := meanDistTo(pts, i, members[l])
		b := math.Inf(1)
		for ol, om := range members {
			if ol == l || len(om) == 0 {
				continue
			}
			if d := meanDistTo(pts, i, om); d < b {
				b = d
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return total / float64(count)
}

func meanDistTo(pts []geo.Point, i int, members []int) float64 {
	var sum float64
	n := 0
	for _, j := range members {
		if j == i {
			continue
		}
		sum += geo.Haversine(pts[i], pts[j])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
