package csd

import (
	"math"
	"math/rand"
	"testing"

	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/synth"
)

var origin = geo.Point{Lon: 121.47, Lat: 31.23}
var proj = geo.NewProjection(origin)

func at(x, y float64) geo.Point { return proj.ToPoint(geo.Meters{X: x, Y: y}) }

// mkPOI builds a POI of the given major at a meter offset.
func mkPOI(id int64, major poi.Major, x, y float64) poi.POI {
	return poi.POI{ID: id, Location: at(x, y), Minor: poi.MinorsOf(major)[0]}
}

// blockOf scatters n same-major POIs tightly around (cx, cy).
func blockOf(rng *rand.Rand, startID int64, major poi.Major, cx, cy float64, n int, spread float64) []poi.POI {
	out := make([]poi.POI, n)
	for i := range out {
		out[i] = mkPOI(startID+int64(i), major,
			cx+rng.NormFloat64()*spread, cy+rng.NormFloat64()*spread)
	}
	return out
}

// uniformStays lays a stay point lattice over the area so popularity is
// roughly equal everywhere.
func uniformStays(extent, step float64) []geo.Point {
	var out []geo.Point
	for x := -extent; x <= extent; x += step {
		for y := -extent; y <= extent; y += step {
			out = append(out, at(x, y))
		}
	}
	return out
}

func TestPopularityFollowsStayDensity(t *testing.T) {
	pois := []poi.POI{
		mkPOI(1, poi.Restaurant, 0, 0),
		mkPOI(2, poi.Restaurant, 2000, 0),
	}
	// Ten stays at the first POI, none near the second.
	var stays []geo.Point
	for i := 0; i < 10; i++ {
		stays = append(stays, at(float64(i), 0))
	}
	pop := Popularity(pois, stays, geo.NewGaussianKernel(100))
	if pop[0] <= 0 {
		t.Fatalf("pop[0] = %v, want > 0", pop[0])
	}
	if pop[1] != 0 {
		t.Fatalf("pop[1] = %v, want 0 (no nearby stays)", pop[1])
	}
}

func TestPopularityEmptyStays(t *testing.T) {
	pois := []poi.POI{mkPOI(1, poi.Restaurant, 0, 0)}
	pop := Popularity(pois, nil, geo.NewGaussianKernel(100))
	if pop[0] != 0 {
		t.Fatalf("pop = %v, want 0", pop)
	}
}

func TestBuildSeparatesDistantSameMajorBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.Restaurant, 0, 0, 12, 8)...)
	pois = append(pois, blockOf(rng, 100, poi.Restaurant, 1000, 0, 12, 8)...)
	d := Build(pois, uniformStays(1500, 100), DefaultParams())
	if len(d.Units) != 2 {
		t.Fatalf("units = %d, want 2 distant blocks", len(d.Units))
	}
	for _, u := range d.Units {
		if !u.Semantics.Has(poi.Restaurant) || u.Semantics.Count() != 1 {
			t.Errorf("unit semantics = %v", u.Semantics)
		}
	}
}

func TestBuildKeepsTowerMixed(t *testing.T) {
	// A skyscraper: 15 POIs of three majors all within ~8 m. Variance is
	// tiny, so purification must keep the mixed unit whole.
	rng := rand.New(rand.NewSource(2))
	var pois []poi.POI
	var id int64 = 1
	for i := 0; i < 5; i++ {
		for _, mj := range []poi.Major{poi.BusinessOffice, poi.ShopMarket, poi.Restaurant} {
			pois = append(pois, mkPOI(id, mj, rng.NormFloat64()*3, rng.NormFloat64()*3))
			id++
		}
	}
	d := Build(pois, uniformStays(200, 50), DefaultParams())
	if len(d.Units) != 1 {
		t.Fatalf("tower produced %d units, want 1", len(d.Units))
	}
	if got := d.Units[0].Semantics.Count(); got != 3 {
		t.Fatalf("tower unit semantics count = %d, want 3", got)
	}
}

func TestPurificationSplitsMixedSpreadCluster(t *testing.T) {
	// Two same-location-scale but semantically different halves placed
	// within ε_p chaining distance: Algorithm 1 joins them via d_v
	// stacking? No — they are farther than d_v but share no major, so
	// chaining only happens within each half. To force a mixed coarse
	// cluster we interleave the two majors within d_v of each other and
	// spread the whole cluster wide so variance is large.
	rng := rand.New(rand.NewSource(3))
	var pois []poi.POI
	var id int64 = 1
	// A "street" 200 m long: west half offices, east half restaurants,
	// POIs every 10 m (< d_v), so Algorithm 1 chains them into one
	// coarse cluster via vertical overlap.
	for x := -100.0; x < 0; x += 10 {
		pois = append(pois, mkPOI(id, poi.BusinessOffice, x+rng.NormFloat64(), 0))
		id++
	}
	for x := 0.0; x <= 100; x += 10 {
		pois = append(pois, mkPOI(id, poi.Restaurant, x+rng.NormFloat64(), 0))
		id++
	}
	params := DefaultParams()
	params.SkipMerging = true
	d := Build(pois, uniformStays(300, 50), params)
	if len(d.Units) < 2 {
		t.Fatalf("purification kept %d unit(s); mixed spread cluster must split", len(d.Units))
	}
	// Every resulting unit must qualify as fine-grained: single-semantic
	// or spatially tight.
	for _, u := range d.Units {
		pts := make([]geo.Point, len(u.Members))
		major := d.POIs[u.Members[0]].Major()
		single := true
		for k, i := range u.Members {
			pts[k] = d.POIs[i].Location
			if d.POIs[i].Major() != major {
				single = false
			}
		}
		if !single && geo.VarianceMeters(pts) >= params.VMin {
			t.Fatalf("unit %d violates Definition 3 (mixed and spread)", u.ID)
		}
	}
	if p := d.MeanUnitPurity(); p < 0.9 {
		t.Fatalf("mean unit purity %.3f after purification, want ≥ 0.9", p)
	}
}

func TestAblationSkipPurificationLowersPurity(t *testing.T) {
	// A mixed tower whose first POI seeds Algorithm 1, plus an office
	// wing chained off it: the coarse cluster is mixed AND spread, so
	// only purification can restore semantic consistency.
	rng := rand.New(rand.NewSource(4))
	var pois []poi.POI
	var id int64 = 1
	for i := 0; i < 6; i++ { // tower offices (the seed comes first)
		pois = append(pois, mkPOI(id, poi.BusinessOffice, rng.NormFloat64()*3, 0))
		id++
	}
	for i := 0; i < 6; i++ { // tower restaurants, within d_v of the seed
		pois = append(pois, mkPOI(id, poi.Restaurant, rng.NormFloat64()*3, 0))
		id++
	}
	for x := 15.0; x <= 120; x += 10 { // office wing chained via same-major
		pois = append(pois, mkPOI(id, poi.BusinessOffice, x+rng.NormFloat64(), 0))
		id++
	}
	stays := uniformStays(300, 50)
	on := Build(pois, stays, DefaultParams())
	off := Build(pois, stays, Params{
		R3Sigma: 100, DV: 15, MinPts: 5, EpsP: 30, Alpha: 0.8,
		VMin: 150, MergeCos: 0.9, MergeDist: 150, SkipPurification: true,
	})
	if on.MeanUnitPurity() <= off.MeanUnitPurity() {
		t.Fatalf("purification should raise purity: on=%.3f off=%.3f",
			on.MeanUnitPurity(), off.MeanUnitPurity())
	}
}

func TestMergingJoinsFragmentedStreet(t *testing.T) {
	// Two restaurant fragments separated by an 80 m plaza: Algorithm 1
	// cannot chain across (> ε_p), merging must reunite them.
	rng := rand.New(rand.NewSource(5))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.Restaurant, 0, 0, 10, 6)...)
	pois = append(pois, blockOf(rng, 50, poi.Restaurant, 80, 0, 10, 6)...)
	stays := uniformStays(200, 40)

	merged := Build(pois, stays, DefaultParams())
	if len(merged.Units) != 1 {
		t.Fatalf("merged units = %d, want 1", len(merged.Units))
	}
	params := DefaultParams()
	params.SkipMerging = true
	unmerged := Build(pois, stays, params)
	if len(unmerged.Units) != 2 {
		t.Fatalf("unmerged units = %d, want 2", len(unmerged.Units))
	}
}

func TestMergingRespectsSemanticDissimilarity(t *testing.T) {
	// Restaurant and office fragments 80 m apart: cosine is 0, no merge.
	rng := rand.New(rand.NewSource(6))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.Restaurant, 0, 0, 10, 6)...)
	pois = append(pois, blockOf(rng, 50, poi.BusinessOffice, 80, 0, 10, 6)...)
	d := Build(pois, uniformStays(200, 40), DefaultParams())
	if len(d.Units) != 2 {
		t.Fatalf("units = %d, want 2 (no cross-semantic merge)", len(d.Units))
	}
}

func TestLeftoverPOIAttachesToNearbySimilarUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.BusinessOffice, 0, 0, 10, 6)...)
	// A lone office POI 60 m away: below MinPts on its own, merged in.
	pois = append(pois, mkPOI(99, poi.BusinessOffice, 60, 0))
	d := Build(pois, uniformStays(200, 40), DefaultParams())
	if len(d.Units) != 1 {
		t.Fatalf("units = %d, want 1", len(d.Units))
	}
	if got := d.UnitOf(len(pois) - 1); got != 0 {
		t.Fatalf("leftover POI unit = %d, want 0", got)
	}
	if d.Coverage() != 1 {
		t.Fatalf("coverage = %v, want 1", d.Coverage())
	}
}

func TestKeepSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.BusinessOffice, 0, 0, 10, 6)...)
	// Isolated hospital POI 3 km away: never clusters, never merges.
	pois = append(pois, mkPOI(99, poi.MedicalService, 3000, 0))
	stays := uniformStays(3200, 200)

	d := Build(pois, stays, DefaultParams())
	if got := d.UnitOf(len(pois) - 1); got != -1 {
		t.Fatalf("isolated POI should be outside CSD, got unit %d", got)
	}
	params := DefaultParams()
	params.KeepSingletons = true
	d2 := Build(pois, stays, params)
	if got := d2.UnitOf(len(pois) - 1); got == -1 {
		t.Fatal("KeepSingletons should give the isolated POI a unit")
	}
	if d2.Coverage() != 1 {
		t.Fatalf("coverage with singletons = %v", d2.Coverage())
	}
}

func TestMembersWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pois := blockOf(rng, 1, poi.Restaurant, 0, 0, 10, 6)
	d := Build(pois, uniformStays(100, 30), DefaultParams())
	got := d.MembersWithin(origin, 100)
	if len(got) != len(pois) {
		t.Fatalf("MembersWithin = %d, want %d", len(got), len(pois))
	}
	if got2 := d.MembersWithin(at(5000, 0), 100); len(got2) != 0 {
		t.Fatalf("distant MembersWithin = %d, want 0", len(got2))
	}
}

func TestUnitInvariants(t *testing.T) {
	// Invariants over a full synthetic city: every unit is non-empty,
	// every member maps back to its unit, semantics is the member union,
	// and every unit qualifies as a fine-grained unit (Definition 3).
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 2500
	cfg.NumPassengers = 250
	cfg.Days = 3
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	stays := make([]geo.Point, 0)
	for _, sp := range w.StayPoints() {
		stays = append(stays, sp.P)
	}
	d := Build(city.POIs, stays, DefaultParams())
	if len(d.Units) == 0 {
		t.Fatal("city produced no units")
	}
	for _, u := range d.Units {
		if len(u.Members) == 0 {
			t.Fatal("empty unit")
		}
		var union poi.Semantics
		for _, i := range u.Members {
			if d.UnitOf(i) != u.ID {
				t.Fatalf("UnitOf(%d) = %d, want %d", i, d.UnitOf(i), u.ID)
			}
			union = union.Union(d.POIs[i].Semantics())
		}
		if union != u.Semantics {
			t.Fatalf("unit %d semantics %v != member union %v", u.ID, u.Semantics, union)
		}
	}
	if c := d.Coverage(); c <= 0 || c > 1 {
		t.Fatalf("coverage = %v", c)
	}
	if p := d.MeanUnitPurity(); p < 0.5 {
		t.Fatalf("mean purity = %.3f, implausibly low", p)
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0.1, 0.9, 0}
	if kl := klDivergence(p, p); kl > 1e-9 {
		t.Fatalf("KL(p‖p) = %v, want ~0", kl)
	}
	if kl := klDivergence(p, q); kl <= 0 {
		t.Fatalf("KL(p‖q) = %v, want > 0", kl)
	}
	// Smoothing keeps zero-mass terms finite.
	r := []float64{1, 0, 0}
	s := []float64{0, 1, 0}
	if kl := klDivergence(r, s); math.IsInf(kl, 0) || math.IsNaN(kl) {
		t.Fatalf("KL with zero mass = %v", kl)
	}
}

func TestPopRatioOK(t *testing.T) {
	cases := []struct {
		a, b  float64
		alpha float64
		want  bool
	}{
		{10, 10, 0.8, true},
		{10, 8, 0.8, true},
		{10, 7, 0.8, false},
		{0, 0, 0.8, true},
		{0, 5, 0.8, false},
		{5, 0, 0.8, false},
	}
	for _, c := range cases {
		if got := popRatioOK(c.a, c.b, c.alpha); got != c.want {
			t.Errorf("popRatioOK(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMedianOf(t *testing.T) {
	if m := medianOf([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := medianOf([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := medianOf(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}

func TestBuildEmptyInputs(t *testing.T) {
	d := Build(nil, nil, DefaultParams())
	if len(d.Units) != 0 || d.Coverage() != 0 {
		t.Fatalf("empty build produced units")
	}
	if got := d.MembersWithin(origin, 100); len(got) != 0 {
		t.Fatalf("empty MembersWithin = %v", got)
	}
	if d.MeanUnitPurity() != 0 {
		t.Fatal("empty purity should be 0")
	}
}

func TestAlphaOneRequiresEqualPopularity(t *testing.T) {
	// With α=1 and a popularity gradient, clusters shrink relative to α=0.5.
	rng := rand.New(rand.NewSource(10))
	pois := blockOf(rng, 1, poi.Restaurant, 0, 0, 30, 20)
	// Stays concentrated at one end create a popularity gradient.
	var stays []geo.Point
	for i := 0; i < 200; i++ {
		stays = append(stays, at(rng.NormFloat64()*30-30, rng.NormFloat64()*10))
	}
	loose := DefaultParams()
	loose.Alpha = 0.3
	strict := DefaultParams()
	strict.Alpha = 0.999
	dl := Build(pois, stays, loose)
	ds := Build(pois, stays, strict)
	cl := 0
	for _, u := range dl.Units {
		cl += len(u.Members)
	}
	cs := 0
	for _, u := range ds.Units {
		cs += len(u.Members)
	}
	if cs > cl {
		t.Fatalf("strict α clustered more POIs (%d) than loose α (%d)", cs, cl)
	}
}

func BenchmarkBuildCSDSmallCity(b *testing.B) {
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 3000
	cfg.NumPassengers = 300
	cfg.Days = 3
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	stays := make([]geo.Point, 0, 2*len(w.Journeys))
	for _, sp := range w.StayPoints() {
		stays = append(stays, sp.P)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(city.POIs, stays, DefaultParams())
	}
}
