package csd

import (
	"fmt"
	"reflect"
	"testing"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/stage"
	"csdm/internal/synth"
)

// maintWorkload builds a small synthetic city whose stay stream is
// large enough that contiguous batch splits flip α-ratio predicates
// (i.e. the delta path actually exercises dirty re-clustering, not just
// the reuse path).
func maintWorkload(t testing.TB) ([]geo.Point, *synth.City) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = 7
	cfg.NumPOIs = 400
	cfg.NumPassengers = 80
	cfg.Days = 4
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	stays := make([]geo.Point, 0, 2*len(w.Journeys))
	for _, j := range w.Journeys {
		stays = append(stays, j.Pickup, j.Dropoff)
	}
	return stays, city
}

// contiguousSplit cuts stays into k contiguous batches at deterministic
// but uneven boundaries. Contiguity matters: stay ids are assigned in
// stream order, so a batch must extend the id sequence, never permute
// it.
func contiguousSplit(stays []geo.Point, k int) [][]geo.Point {
	batches := make([][]geo.Point, 0, k)
	n := len(stays)
	lo := 0
	for b := 0; b < k; b++ {
		hi := (n*(b+1) + (b*7)%13) / k
		if b == k-1 || hi > n {
			hi = n
		}
		if hi < lo {
			hi = lo
		}
		batches = append(batches, stays[lo:hi])
		lo = hi
	}
	return batches
}

func envWith(workers int, kind index.Kind) stage.Env {
	env := stage.Background()
	env.Opt = exec.Options{Workers: workers, Index: kind}
	return env
}

// requireSameDiagram asserts two diagrams are bit-identical in every
// field the incremental contract covers: popularity bits, unit count,
// unit membership and order, and the derived unitOf mapping.
func requireSameDiagram(t *testing.T, want, got *Diagram) {
	t.Helper()
	if len(want.Pop) != len(got.Pop) {
		t.Fatalf("Pop length: want %d, got %d", len(want.Pop), len(got.Pop))
	}
	for i := range want.Pop {
		if want.Pop[i] != got.Pop[i] {
			t.Fatalf("Pop[%d]: want %v, got %v (bit mismatch)", i, want.Pop[i], got.Pop[i])
		}
	}
	if len(want.Units) != len(got.Units) {
		t.Fatalf("unit count: want %d, got %d", len(want.Units), len(got.Units))
	}
	for u := range want.Units {
		if !reflect.DeepEqual(want.Units[u].Members, got.Units[u].Members) {
			t.Fatalf("unit %d members: want %v, got %v", u, want.Units[u].Members, got.Units[u].Members)
		}
		if want.Units[u].Center != got.Units[u].Center {
			t.Fatalf("unit %d center: want %v, got %v", u, want.Units[u].Center, got.Units[u].Center)
		}
	}
	if !reflect.DeepEqual(want.unitOf, got.unitOf) {
		t.Fatal("unitOf mapping differs")
	}
}

func TestMaintainerInitialMatchesBuild(t *testing.T) {
	stays, city := maintWorkload(t)
	params := DefaultParams()
	params.KeepSingletons = true
	full := Build(city.POIs, stays, params)
	m, err := NewMaintainer(city.POIs, stays, params)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDiagram(t, full, m.Diagram())
	if got := m.Generation(); got != 1 {
		t.Fatalf("initial generation: want 1, got %d", got)
	}
	if d := m.Diagram(); d.Generation != 1 || d.ParentGeneration != 0 {
		t.Fatalf("lineage: want gen 1 parent 0, got gen %d parent %d", d.Generation, d.ParentGeneration)
	}
	if got := m.StayCount(); got != len(stays) {
		t.Fatalf("stay count: want %d, got %d", len(stays), got)
	}
}

// TestApplyDeltaBitIdenticalToFullBuild is the tentpole property: for
// every batch count, worker budget, and index backend, replaying the
// stay stream in contiguous batches produces — after every batch — a
// diagram bit-identical to a one-shot Build over the prefix.
func TestApplyDeltaBitIdenticalToFullBuild(t *testing.T) {
	stays, city := maintWorkload(t)
	params := DefaultParams()
	params.KeepSingletons = true
	for _, tc := range []struct {
		k, workers int
		kind       index.Kind
	}{
		{2, 1, index.KindGrid},
		{3, 4, index.KindGrid},
		{5, 1, index.KindKDTree},
		{4, 4, index.KindRTree},
	} {
		t.Run(fmt.Sprintf("k=%d/w=%d/%v", tc.k, tc.workers, tc.kind), func(t *testing.T) {
			env := envWith(tc.workers, tc.kind)
			batches := contiguousSplit(stays, tc.k)
			m, err := NewMaintainerEnv(env, city.POIs, batches[0], params)
			if err != nil {
				t.Fatal(err)
			}
			seen := len(batches[0])
			sawDirty := false
			for bi, batch := range batches[1:] {
				d, st, err := m.ApplyDelta(env, batch)
				if err != nil {
					t.Fatalf("batch %d: %v", bi+1, err)
				}
				seen += len(batch)
				if st.Generation != int64(bi+2) {
					t.Fatalf("batch %d: generation want %d, got %d", bi+1, bi+2, st.Generation)
				}
				if d.ParentGeneration != int64(bi+1) {
					t.Fatalf("batch %d: parent want %d, got %d", bi+1, bi+1, d.ParentGeneration)
				}
				if st.DirtyComponents > 0 {
					sawDirty = true
				}
				full, err := BuildEnv(env, city.POIs, stays[:seen], params)
				if err != nil {
					t.Fatal(err)
				}
				requireSameDiagram(t, full, d)
			}
			if m.StayCount() != len(stays) {
				t.Fatalf("stay count: want %d, got %d", len(stays), m.StayCount())
			}
			if !sawDirty {
				t.Fatal("no batch dirtied any component; workload too weak to exercise the delta path")
			}
		})
	}
}

// TestApplyDeltaAblationVariants replays under the Skip* ablations and
// without KeepSingletons — the assemble path has distinct branches for
// each.
func TestApplyDeltaAblationVariants(t *testing.T) {
	stays, city := maintWorkload(t)
	for _, tc := range []struct {
		name string
		mut  func(*Params)
	}{
		{"drop-singletons", func(p *Params) { p.KeepSingletons = false }},
		{"skip-purification", func(p *Params) { p.SkipPurification = true }},
		{"skip-merging", func(p *Params) { p.SkipMerging = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			params := DefaultParams()
			params.KeepSingletons = true
			tc.mut(&params)
			env := envWith(2, index.KindGrid)
			batches := contiguousSplit(stays, 3)
			m, err := NewMaintainerEnv(env, city.POIs, batches[0], params)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range batches[1:] {
				if _, _, err := m.ApplyDelta(env, batch); err != nil {
					t.Fatal(err)
				}
			}
			full, err := BuildEnv(env, city.POIs, stays, params)
			if err != nil {
				t.Fatal(err)
			}
			requireSameDiagram(t, full, m.Diagram())
		})
	}
}

// TestApplyDeltaEmptyBatch: an empty batch must advance the generation
// (the stream protocol may deliver empty windows) without changing the
// diagram's content.
func TestApplyDeltaEmptyBatch(t *testing.T) {
	stays, city := maintWorkload(t)
	params := DefaultParams()
	params.KeepSingletons = true
	m, err := NewMaintainer(city.POIs, stays, params)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Diagram()
	d, st, err := m.ApplyDelta(stage.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || st.BatchStays != 0 || st.AffectedPOIs != 0 || st.DirtyComponents != 0 {
		t.Fatalf("empty batch stats: %+v", st)
	}
	requireSameDiagram(t, before, d)
}

// TestSetGenerationContinuesLineage: a restarted ingester renumbers its
// seeded base past an existing on-disk lineage; subsequent deltas must
// continue from the renumbered generation with correct parents.
func TestSetGenerationContinuesLineage(t *testing.T) {
	stays, city := maintWorkload(t)
	params := DefaultParams()
	params.KeepSingletons = true
	batches := contiguousSplit(stays, 2)
	m, err := NewMaintainer(city.POIs, batches[0], params)
	if err != nil {
		t.Fatal(err)
	}
	m.SetGeneration(7)
	if m.Generation() != 7 || m.Diagram().Generation != 7 {
		t.Fatalf("after SetGeneration(7): gen %d, diagram gen %d", m.Generation(), m.Diagram().Generation)
	}
	d, st, err := m.ApplyDelta(stage.Background(), batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 8 || d.Generation != 8 || d.ParentGeneration != 7 {
		t.Fatalf("delta after renumber: stats gen %d, diagram %d/%d, want 8 with parent 7", st.Generation, d.Generation, d.ParentGeneration)
	}
}

// TestApplyDeltaStatsAccounting: every unit in the produced diagram is
// accounted as either dirty (recomputed) or reused, pre-merge.
func TestApplyDeltaStatsAccounting(t *testing.T) {
	stays, city := maintWorkload(t)
	params := DefaultParams()
	params.KeepSingletons = true
	params.SkipMerging = true // merge collapses units; skip it so counts line up
	batches := contiguousSplit(stays, 2)
	m, err := NewMaintainer(city.POIs, batches[0], params)
	if err != nil {
		t.Fatal(err)
	}
	d, st, err := m.ApplyDelta(stage.Background(), batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.AffectedPOIs == 0 {
		t.Fatal("second half of the stream affected no POI")
	}
	singletons := 0
	for _, u := range d.Units {
		if len(u.Members) == 1 {
			// KeepSingletons units come from leftovers, outside the
			// dirty/reused accounting. Multi-member singleton-free check
			// below still covers the bulk.
			singletons++
		}
	}
	if got := st.DirtyUnits + st.ReusedUnits; got > len(d.Units) || got < len(d.Units)-singletons {
		t.Fatalf("unit accounting: dirty %d + reused %d vs %d units (%d singletons)",
			st.DirtyUnits, st.ReusedUnits, len(d.Units), singletons)
	}
}
