package csd

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"csdm/internal/index"
	"csdm/internal/poi"
)

// diagramFile is the on-disk representation of a Diagram. POIs and
// popularity are stored in full so a loaded diagram can answer every
// query a freshly built one can.
type diagramFile struct {
	Version int       `json:"version"`
	Params  Params    `json:"params"`
	POIs    []poi.POI `json:"pois"`
	Pop     []float64 `json:"pop"`
	// Units stores only the member lists; semantics and centers are
	// derived on load.
	Units [][]int `json:"units"`
}

// diagramFileVersion guards the persistence format.
const diagramFileVersion = 1

// The framed container around the JSON payload: a fixed header of
// magic, format version, payload length and payload CRC. The header
// lets Read reject truncated or bit-flipped files before trusting any
// content — checkpoint resume depends on never loading a half-written
// diagram — and the length is only ever used to bound reading, never to
// size an allocation, so a hostile length cannot drive memory use.
const (
	diagramMagic   = "CSDF"
	framingVersion = 1
	headerSize     = 4 + 1 + 8 + 4 // magic + version byte + length + CRC32
)

// crcTable is the Castagnoli polynomial table shared by Write and Read.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Write serializes the diagram: a fixed header (magic "CSDF", framing
// version, payload length, CRC-32C of the payload) followed by the JSON
// payload. A diagram built once from a large POI corpus can be reused
// across sessions without re-running construction, and the header lets
// a reader detect truncation or corruption instead of trusting it.
func (d *Diagram) Write(w io.Writer) error {
	f := diagramFile{
		Version: diagramFileVersion,
		Params:  d.Params,
		POIs:    d.POIs,
		Pop:     d.Pop,
		Units:   make([][]int, len(d.Units)),
	}
	for i, u := range d.Units {
		f.Units[i] = u.Members
	}
	var payload bytes.Buffer
	if err := json.NewEncoder(&payload).Encode(f); err != nil {
		return fmt.Errorf("csd: encode diagram: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], diagramMagic)
	hdr[4] = framingVersion
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("csd: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("csd: write payload: %w", err)
	}
	return nil
}

// crcReader computes a running CRC-32C over everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crcTable, p[:n])
	c.n += int64(n)
	return n, err
}

// Read loads a diagram written by Write, verifying the header frame
// (magic, version, exact payload length, CRC) before rebuilding the
// derived state (unit semantics, centers, the member index). Legacy
// headerless files (bare JSON from before the framed format) are still
// accepted. Any truncated, corrupt or adversarial input yields a
// descriptive error — never a panic, and never an allocation sized by
// an untrusted field: the payload is streamed through the decoder under
// an io.LimitReader, so a hostile length bounds reading, not memory.
func Read(r io.Reader) (*Diagram, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("csd: truncated diagram header: %w", err)
		}
		return nil, fmt.Errorf("csd: read diagram header: %w", err)
	}
	var f diagramFile
	if string(hdr[0:4]) != diagramMagic {
		// Legacy format: bare JSON, no integrity frame. The first byte of
		// a JSON object is '{'; anything else is garbage.
		if hdr[0] != '{' {
			return nil, fmt.Errorf("csd: bad magic %q: not a diagram file", hdr[0:4])
		}
		if err := json.NewDecoder(io.MultiReader(bytes.NewReader(hdr[:]), r)).Decode(&f); err != nil {
			return nil, fmt.Errorf("csd: decode legacy diagram: %w", err)
		}
		return diagramFromFile(f)
	}
	if v := hdr[4]; v != framingVersion {
		return nil, fmt.Errorf("csd: unsupported framing version %d", v)
	}
	length := binary.LittleEndian.Uint64(hdr[5:13])
	wantCRC := binary.LittleEndian.Uint32(hdr[13:17])
	cr := &crcReader{r: io.LimitReader(r, int64(length))}
	if err := json.NewDecoder(cr).Decode(&f); err != nil {
		return nil, fmt.Errorf("csd: decode diagram: %w", err)
	}
	// Drain the decoder's unread remainder (trailing whitespace from
	// Encode) so the CRC covers the full payload, then check the frame.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, fmt.Errorf("csd: read payload: %w", err)
	}
	if uint64(cr.n) != length {
		return nil, fmt.Errorf("csd: truncated payload: %d of %d bytes", cr.n, length)
	}
	if cr.crc != wantCRC {
		return nil, fmt.Errorf("csd: payload checksum mismatch: got %08x, want %08x", cr.crc, wantCRC)
	}
	return diagramFromFile(f)
}

// ReadFile loads a diagram from a file written with Write (via
// ckpt.WriteAtomic or -save-diagram), wrapping every error with the
// path it came from. It is the one loader every binary that consumes a
// .csdf snapshot — csdminer -load-diagram, csdserve's startup and
// hot-reload path — goes through, so the framed CRC validation is
// never bypassed.
func ReadFile(path string) (*Diagram, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csd: open snapshot: %w", err)
	}
	defer f.Close()
	d, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("csd: snapshot %s: %w", path, err)
	}
	return d, nil
}

// diagramFromFile validates a decoded payload and materializes the
// diagram. Every cross-reference is bounds-checked before use so a
// corrupt payload that survives the CRC (or a legacy file) still cannot
// crash the loader.
func diagramFromFile(f diagramFile) (*Diagram, error) {
	if f.Version != diagramFileVersion {
		return nil, fmt.Errorf("csd: unsupported diagram version %d", f.Version)
	}
	if len(f.Pop) != len(f.POIs) {
		return nil, fmt.Errorf("csd: popularity length %d != POI count %d", len(f.Pop), len(f.POIs))
	}
	if f.Params.R3Sigma <= 0 {
		return nil, fmt.Errorf("csd: invalid R3Sigma %v", f.Params.R3Sigma)
	}
	for i, p := range f.POIs {
		if !p.Minor.Valid() {
			return nil, fmt.Errorf("csd: POI %d has invalid category", i)
		}
		if !p.Location.Valid() {
			return nil, fmt.Errorf("csd: POI %d has invalid location", i)
		}
	}
	seen := make([]bool, len(f.POIs))
	for ui, members := range f.Units {
		for _, m := range members {
			if m < 0 || m >= len(f.POIs) {
				return nil, fmt.Errorf("csd: unit %d references POI %d out of range", ui, m)
			}
			if seen[m] {
				return nil, fmt.Errorf("csd: POI %d belongs to multiple units", m)
			}
			seen[m] = true
		}
	}

	d := &Diagram{
		Params: f.Params,
		POIs:   f.POIs,
		Pop:    f.Pop,
		kernel: newKernelFor(f.Params),
	}
	d.finalize(f.Units, index.KindGrid)
	return d, nil
}
