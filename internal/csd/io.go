package csd

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"csdm/internal/index"
	"csdm/internal/poi"
)

// diagramFile is the on-disk representation of a Diagram. POIs and
// popularity are stored in full so a loaded diagram can answer every
// query a freshly built one can.
type diagramFile struct {
	Version int       `json:"version"`
	Params  Params    `json:"params"`
	POIs    []poi.POI `json:"pois"`
	Pop     []float64 `json:"pop"`
	// Units stores only the member lists; semantics and centers are
	// derived on load.
	Units [][]int `json:"units"`
}

// diagramFileVersion guards the persistence format.
const diagramFileVersion = 1

// The framed container around the JSON payload: a fixed header of
// magic, format version, lineage (framing v2), payload length and
// payload CRC. The header lets Read reject truncated or bit-flipped
// files before trusting any content — checkpoint resume depends on
// never loading a half-written diagram — and the length is only ever
// used to bound reading, never to size an allocation, so a hostile
// length cannot drive memory use.
//
// Framing v2 adds the diagram's generation and parent generation to
// the header rather than the JSON payload, so two generations with
// identical content have byte-identical payloads (the streaming e2e
// check compares an incremental generation against a full rebuild by
// payload bytes). v1 files and pre-framing bare-JSON files both remain
// readable; their lineage loads as zero.
const (
	diagramMagic     = "CSDF"
	framingVersionV1 = 1
	framingVersion   = 2
	prefixSize       = 4 + 1                      // magic + version byte
	headerSizeV1     = prefixSize + 8 + 4         // + length + CRC32
	headerSize       = prefixSize + 8 + 8 + 8 + 4 // + generation + parent + length + CRC32
	lenOffset        = prefixSize + 8 + 8         // v2 length field offset (tests corrupt it)
)

// crcTable is the Castagnoli polynomial table shared by Write and Read.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Write serializes the diagram: a fixed header (magic "CSDF", framing
// version, generation lineage, payload length, CRC-32C of the payload)
// followed by the JSON payload. A diagram built once from a large POI
// corpus can be reused across sessions without re-running construction,
// and the header lets a reader detect truncation or corruption instead
// of trusting it.
func (d *Diagram) Write(w io.Writer) error {
	f := diagramFile{
		Version: diagramFileVersion,
		Params:  d.Params,
		POIs:    d.POIs,
		Pop:     d.Pop,
		Units:   make([][]int, len(d.Units)),
	}
	for i, u := range d.Units {
		f.Units[i] = u.Members
	}
	var payload bytes.Buffer
	if err := json.NewEncoder(&payload).Encode(f); err != nil {
		return fmt.Errorf("csd: encode diagram: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], diagramMagic)
	hdr[4] = framingVersion
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(d.Generation))
	binary.LittleEndian.PutUint64(hdr[13:21], uint64(d.ParentGeneration))
	binary.LittleEndian.PutUint64(hdr[21:29], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[29:33], crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("csd: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("csd: write payload: %w", err)
	}
	return nil
}

// crcReader computes a running CRC-32C over everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crcTable, p[:n])
	c.n += int64(n)
	return n, err
}

// Read loads a diagram written by Write, verifying the header frame
// (magic, version, exact payload length, CRC) before rebuilding the
// derived state (unit semantics, centers, the member index). Framing
// v1 (no lineage fields) and legacy headerless files (bare JSON from
// before the framed format) are still accepted; both load with zero
// generation. Any truncated, corrupt or adversarial input yields a
// descriptive error — never a panic, and never an allocation sized by
// an untrusted field: the payload is streamed through the decoder under
// an io.LimitReader, so a hostile length bounds reading, not memory.
func Read(r io.Reader) (*Diagram, error) {
	var pre [prefixSize]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("csd: truncated diagram header: %w", err)
		}
		return nil, fmt.Errorf("csd: read diagram header: %w", err)
	}
	var f diagramFile
	if string(pre[0:4]) != diagramMagic {
		// Legacy format: bare JSON, no integrity frame. The first byte of
		// a JSON object is '{'; anything else is garbage.
		if pre[0] != '{' {
			return nil, fmt.Errorf("csd: bad magic %q: not a diagram file", pre[0:4])
		}
		if err := json.NewDecoder(io.MultiReader(bytes.NewReader(pre[:]), r)).Decode(&f); err != nil {
			return nil, fmt.Errorf("csd: decode legacy diagram: %w", err)
		}
		return diagramFromFile(f)
	}
	var gen, parent, length uint64
	var wantCRC uint32
	switch pre[4] {
	case framingVersionV1:
		var tail [headerSizeV1 - prefixSize]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return nil, fmt.Errorf("csd: truncated v1 diagram header: %w", err)
		}
		length = binary.LittleEndian.Uint64(tail[0:8])
		wantCRC = binary.LittleEndian.Uint32(tail[8:12])
	case framingVersion:
		var tail [headerSize - prefixSize]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return nil, fmt.Errorf("csd: truncated v2 diagram header: %w", err)
		}
		gen = binary.LittleEndian.Uint64(tail[0:8])
		parent = binary.LittleEndian.Uint64(tail[8:16])
		length = binary.LittleEndian.Uint64(tail[16:24])
		wantCRC = binary.LittleEndian.Uint32(tail[24:28])
	default:
		return nil, fmt.Errorf("csd: unsupported framing version %d", pre[4])
	}
	cr := &crcReader{r: io.LimitReader(r, int64(length))}
	if err := json.NewDecoder(cr).Decode(&f); err != nil {
		return nil, fmt.Errorf("csd: decode diagram: %w", err)
	}
	// Drain the decoder's unread remainder (trailing whitespace from
	// Encode) so the CRC covers the full payload, then check the frame.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, fmt.Errorf("csd: read payload: %w", err)
	}
	if uint64(cr.n) != length {
		return nil, fmt.Errorf("csd: truncated payload: %d of %d bytes", cr.n, length)
	}
	if cr.crc != wantCRC {
		return nil, fmt.Errorf("csd: payload checksum mismatch: got %08x, want %08x", cr.crc, wantCRC)
	}
	if gen > math.MaxInt64 || parent > math.MaxInt64 {
		return nil, fmt.Errorf("csd: implausible generation lineage %d/%d", gen, parent)
	}
	d, err := diagramFromFile(f)
	if err != nil {
		return nil, err
	}
	d.Generation = int64(gen)
	d.ParentGeneration = int64(parent)
	return d, nil
}

// ReadFile loads a diagram from a file written with Write (via
// ckpt.WriteAtomic or -save-diagram), wrapping every error with the
// path it came from. It is the one loader every binary that consumes a
// .csdf snapshot — csdminer -load-diagram, csdserve's startup and
// hot-reload path — goes through, so the framed CRC validation is
// never bypassed.
func ReadFile(path string) (*Diagram, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csd: open snapshot: %w", err)
	}
	defer f.Close()
	d, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("csd: snapshot %s: %w", path, err)
	}
	return d, nil
}

// diagramFromFile validates a decoded payload and materializes the
// diagram. Every cross-reference is bounds-checked before use so a
// corrupt payload that survives the CRC (or a legacy file) still cannot
// crash the loader.
func diagramFromFile(f diagramFile) (*Diagram, error) {
	if f.Version != diagramFileVersion {
		return nil, fmt.Errorf("csd: unsupported diagram version %d", f.Version)
	}
	if len(f.Pop) != len(f.POIs) {
		return nil, fmt.Errorf("csd: popularity length %d != POI count %d", len(f.Pop), len(f.POIs))
	}
	if f.Params.R3Sigma <= 0 {
		return nil, fmt.Errorf("csd: invalid R3Sigma %v", f.Params.R3Sigma)
	}
	for i, p := range f.POIs {
		if !p.Minor.Valid() {
			return nil, fmt.Errorf("csd: POI %d has invalid category", i)
		}
		if !p.Location.Valid() {
			return nil, fmt.Errorf("csd: POI %d has invalid location", i)
		}
	}
	seen := make([]bool, len(f.POIs))
	for ui, members := range f.Units {
		for _, m := range members {
			if m < 0 || m >= len(f.POIs) {
				return nil, fmt.Errorf("csd: unit %d references POI %d out of range", ui, m)
			}
			if seen[m] {
				return nil, fmt.Errorf("csd: POI %d belongs to multiple units", m)
			}
			seen[m] = true
		}
	}

	d := &Diagram{
		Params: f.Params,
		POIs:   f.POIs,
		Pop:    f.Pop,
		kernel: newKernelFor(f.Params),
	}
	d.finalize(f.Units, index.KindGrid)
	return d, nil
}
