package csd

import (
	"encoding/json"
	"fmt"
	"io"

	"csdm/internal/index"
	"csdm/internal/poi"
)

// diagramFile is the on-disk representation of a Diagram. POIs and
// popularity are stored in full so a loaded diagram can answer every
// query a freshly built one can.
type diagramFile struct {
	Version int       `json:"version"`
	Params  Params    `json:"params"`
	POIs    []poi.POI `json:"pois"`
	Pop     []float64 `json:"pop"`
	// Units stores only the member lists; semantics and centers are
	// derived on load.
	Units [][]int `json:"units"`
}

// diagramFileVersion guards the persistence format.
const diagramFileVersion = 1

// Write serializes the diagram as JSON. A diagram built once from a
// large POI corpus can be reused across sessions without re-running
// construction.
func (d *Diagram) Write(w io.Writer) error {
	f := diagramFile{
		Version: diagramFileVersion,
		Params:  d.Params,
		POIs:    d.POIs,
		Pop:     d.Pop,
		Units:   make([][]int, len(d.Units)),
	}
	for i, u := range d.Units {
		f.Units[i] = u.Members
	}
	if err := json.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("csd: encode diagram: %w", err)
	}
	return nil
}

// Read loads a diagram written by Write and rebuilds its derived state
// (unit semantics, centers, the member index).
func Read(r io.Reader) (*Diagram, error) {
	var f diagramFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("csd: decode diagram: %w", err)
	}
	if f.Version != diagramFileVersion {
		return nil, fmt.Errorf("csd: unsupported diagram version %d", f.Version)
	}
	if len(f.Pop) != len(f.POIs) {
		return nil, fmt.Errorf("csd: popularity length %d != POI count %d", len(f.Pop), len(f.POIs))
	}
	if f.Params.R3Sigma <= 0 {
		return nil, fmt.Errorf("csd: invalid R3Sigma %v", f.Params.R3Sigma)
	}
	for i, p := range f.POIs {
		if !p.Minor.Valid() {
			return nil, fmt.Errorf("csd: POI %d has invalid category", i)
		}
		if !p.Location.Valid() {
			return nil, fmt.Errorf("csd: POI %d has invalid location", i)
		}
	}
	seen := make([]bool, len(f.POIs))
	for ui, members := range f.Units {
		for _, m := range members {
			if m < 0 || m >= len(f.POIs) {
				return nil, fmt.Errorf("csd: unit %d references POI %d out of range", ui, m)
			}
			if seen[m] {
				return nil, fmt.Errorf("csd: POI %d belongs to multiple units", m)
			}
			seen[m] = true
		}
	}

	d := &Diagram{
		Params: f.Params,
		POIs:   f.POIs,
		Pop:    f.Pop,
		kernel: newKernelFor(f.Params),
	}
	d.finalize(f.Units, index.KindGrid)
	return d, nil
}
