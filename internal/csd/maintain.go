package csd

import (
	"context"
	"sort"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/stage"
)

// Maintainer is the re-entrant, delta-capable counterpart of Build: it
// owns a City Semantic Diagram plus the intermediate construction state
// a one-shot Build discards — the per-POI popularity sums, the
// Algorithm 1 cluster membership per ε_p-connected component, and the
// per-cluster purification results — so that a batch of new stay
// points updates the diagram in time proportional to the dirty region
// instead of the city.
//
// The incremental result is bit-identical to a full Build on the union
// of all stay points, by construction rather than approximation:
//
//   - Popularity (Eq. 2–3) is a kernel sum accumulated in canonical
//     ascending stay-id order; new stays only ever append ids, so a
//     delta batch continues each POI's float-addition chain exactly
//     where the full build's loop would have (geo.WeightSumInto).
//   - Algorithm 1 factorizes exactly over the ε_p-connected components
//     of the static POI graph: cluster growth only follows ≤ ε_p edges,
//     so re-running growClusters on one component reproduces the full
//     run's clusters within it. A component is dirty only when some
//     member pair's α popularity-ratio predicate flipped; clean
//     components reuse their retained clusters outright.
//   - Algorithm 2 (purification) reads locations and categories, never
//     popularity, so a cluster whose membership survived the delta
//     reuses its retained purified units.
//   - Merging (Eq. 6–8) reads the popularity-weighted distributions of
//     every unit, and its union-find outcome is global — so it is
//     recomputed globally each delta. It is O(#units), orders of
//     magnitude cheaper than the phases above, and rerunning it is what
//     keeps the guarantee exact instead of halo-approximate (the one
//     deliberate divergence from a purely local re-merge; see
//     DESIGN.md §5h).
//
// A Maintainer is not safe for concurrent use; each ApplyDelta must
// complete before the next begins. The diagrams it returns are
// immutable and safe to serve concurrently, like Build's.
type Maintainer struct {
	params Params
	kind   index.Kind
	pois   []poi.POI
	kernel geo.GaussianKernel

	// stays is the append-only union stay-point store. No index is ever
	// built over it (delta batches index only themselves), so growth is
	// always safe.
	stays *geo.PackedPoints
	// pop is the current canonical-order popularity. Diagrams share its
	// backing array: the maintainer never mutates it in place (every
	// delta copies first), so served generations stay immutable.
	pop []float64

	// locIdx is the static ε_p range structure over POI locations —
	// Algorithm 1's candidate queries and the component decomposition
	// both run against it, so a component re-run sees exactly the query
	// results the full build saw.
	locIdx index.Index
	comp   []int // POI id → component id
	comps  []compState

	// removed/inCluster are the growth bookkeeping, reset per dirty
	// component before reuse (components are disjoint, so stale marks
	// from another component are never read).
	removed, inCluster []bool

	gen     int64
	diagram *Diagram
}

// compState is the retained Algorithm 1–2 state of one ε_p-connected
// component.
type compState struct {
	// pois are the component's members, ascending.
	pois []int
	// clusters are the kept Algorithm 1 clusters grown within the
	// component, in seed order (each cluster's first element is its
	// seed, the minimum member id).
	clusters [][]int
	// leftover are members in no kept cluster, ascending.
	leftover []int
	// purified[i] are the Algorithm 2 unit member lists of clusters[i]
	// (nil when purification is skipped).
	purified [][][]int
}

// DeltaStats reports what one ApplyDelta did.
type DeltaStats struct {
	// Generation is the produced diagram's generation.
	Generation int64
	// BatchStays is the number of stay points in the applied batch.
	BatchStays int
	// AffectedPOIs is how many POIs had popularity updated (within R3σ
	// of some batch stay).
	AffectedPOIs int
	// DirtyComponents counts the ε_p components whose α-ratio predicate
	// flipped somewhere, forcing a clustering + purification re-run.
	DirtyComponents int
	// DirtyUnits counts the purified units recomputed in dirty
	// components; ReusedUnits counts the units carried over from the
	// retained state.
	DirtyUnits  int
	ReusedUnits int
}

// NewMaintainer constructs the maintainer and its initial diagram
// (generation 1) with default execution options.
func NewMaintainer(pois []poi.POI, stays []geo.Point, params Params) (*Maintainer, error) {
	return NewMaintainerEnv(stage.Background(), pois, stays, params)
}

// NewMaintainerEnv is the full-control constructor: it runs the same
// construction stages as BuildEnv — on env's worker pool and index
// backend, recording spans under "csd.maintain" — but retains the
// intermediate state ApplyDelta needs. The initial diagram is
// bit-identical to BuildEnv's on the same inputs, with Generation 1.
func NewMaintainerEnv(env stage.Env, pois []poi.POI, stays []geo.Point, params Params) (*Maintainer, error) {
	ctx, tr, opt := env.Ctx, env.Trace, env.Opt
	root := env.StartSpan("csd.maintain")
	defer root.End()

	m := &Maintainer{
		params: params,
		kind:   opt.Index,
		pois:   pois,
		kernel: newKernelFor(params),
		stays:  geo.Pack(stays),
	}

	sp := root.Start("popularity")
	pop, err := popularity(ctx, pois, stays, m.kernel, opt)
	sp.End()
	if err != nil {
		return nil, err
	}
	m.pop = pop

	n := len(pois)
	m.locIdx = index.New(opt.Index, poi.Locations(pois), params.EpsP)
	m.removed = make([]bool, n)
	m.inCluster = make([]bool, n)

	sp = root.Start("components")
	m.buildComponents()
	sp.End()
	tr.Add("csd.maintain.components", int64(len(m.comps)))

	// One global Algorithm 1 pass (identical to Build's), scattered into
	// the per-component retained state afterwards: clusters arrive in
	// ascending seed order and leftovers ascending, so per-component
	// order falls out of the append.
	sp = root.Start("clustering")
	scratch := m.scratchDiagram(pop)
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	clusters, leftover, err := scratch.growClusters(ctx, m.locIdx, seeds, make([]bool, n), make([]bool, n))
	sp.End()
	if err != nil {
		return nil, err
	}
	for _, cl := range clusters {
		c := m.comp[cl[0]]
		m.comps[c].clusters = append(m.comps[c].clusters, cl)
	}
	for _, i := range leftover {
		c := m.comp[i]
		m.comps[c].leftover = append(m.comps[c].leftover, i)
	}

	if !params.SkipPurification {
		sp = root.Start("purification")
		all := make([]int, len(m.comps))
		for c := range all {
			all[c] = c
		}
		err = m.purifyComponents(ctx, tr, opt, scratch, all)
		sp.End()
		if err != nil {
			return nil, err
		}
	}

	m.gen = 1
	sp = root.Start("assemble")
	d, err := m.assemble(ctx, pop, m.comps, 0)
	sp.End()
	if err != nil {
		return nil, err
	}
	m.diagram = d
	tr.Add("csd.units.final", int64(len(d.Units)))
	return m, nil
}

// Diagram returns the current generation's diagram.
func (m *Maintainer) Diagram() *Diagram { return m.diagram }

// Generation returns the current generation number (1 after
// construction, +1 per applied delta).
func (m *Maintainer) Generation() int64 { return m.gen }

// SetGeneration renumbers the current generation (and the diagram's
// lineage header) without touching any retained state — the hook a
// restarted ingester uses to continue a checkpoint directory's
// generation sequence instead of restarting at 1. The parent
// generation is left untouched: renumbering changes the label, not the
// derivation.
func (m *Maintainer) SetGeneration(gen int64) {
	m.gen = gen
	m.diagram.Generation = gen
}

// StayCount returns the number of stay points accumulated so far.
func (m *Maintainer) StayCount() int { return m.stays.Len() }

// scratchDiagram wraps the maintainer's inputs and a popularity slice
// in a Diagram so the Build-phase methods (growClusters, purifyCluster,
// merge, finalize) run unchanged against it.
func (m *Maintainer) scratchDiagram(pop []float64) *Diagram {
	return &Diagram{Params: m.params, POIs: m.pois, Pop: pop, kernel: m.kernel}
}

// buildComponents decomposes the POI set into ε_p-connected components
// by flood fill over locIdx (shared with BuildFromPopularity's
// per-component clustering fan-out).
func (m *Maintainer) buildComponents() {
	var members [][]int
	m.comp, members = epsComponents(m.pois, m.locIdx, m.params.EpsP)
	m.comps = make([]compState, len(members))
	for c, ms := range members {
		m.comps[c].pois = ms
	}
}

// purifyComponents re-runs Algorithm 2 for every cluster of the listed
// components, fanning the clusters out over the worker pool exactly
// like Build's purify (results are deterministic per cluster, so the
// worker count never shows in the output).
func (m *Maintainer) purifyComponents(ctx context.Context, tr *obs.Trace, opt exec.Options, scratch *Diagram, comps []int) error {
	type ref struct{ c, i int }
	var refs []ref
	for _, c := range comps {
		cs := &m.comps[c]
		cs.purified = make([][][]int, len(cs.clusters))
		for i := range cs.clusters {
			refs = append(refs, ref{c, i})
		}
	}
	exec.Note(tr, len(refs), exec.Workers(opt.Workers))
	perCluster, err := exec.ParallelMap(ctx, opt.Workers, len(refs), func(k int) ([][]int, error) {
		r := refs[k]
		return scratch.purifyCluster(m.comps[r.c].clusters[r.i], tr), nil
	})
	if err != nil {
		return err
	}
	for k, units := range perCluster {
		r := refs[k]
		m.comps[r.c].purified[r.i] = units
	}
	return nil
}

// assemble materializes a diagram from per-component retained state:
// global cluster order is ascending seed id (components interleave
// exactly as the full build's single pass produced them), units are the
// reverse-order concatenation Build's purify emits, leftovers merge
// ascending, and the merge + singleton + finalize phases run globally
// on the new popularity. Unit member slices are deep-copied out of the
// retained state so the merge/finalize phases (which append and sort in
// place) can never corrupt the cache.
func (m *Maintainer) assemble(ctx context.Context, pop []float64, comps []compState, parent int64) (*Diagram, error) {
	nd := &Diagram{
		Params:           m.params,
		POIs:             m.pois,
		Pop:              pop,
		kernel:           m.kernel,
		Generation:       m.gen,
		ParentGeneration: parent,
	}
	type ref struct{ c, i int }
	var refs []ref
	for c := range comps {
		for i := range comps[c].clusters {
			refs = append(refs, ref{c, i})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		return comps[refs[a].c].clusters[refs[a].i][0] < comps[refs[b].c].clusters[refs[b].i][0]
	})

	var units [][]int
	if m.params.SkipPurification {
		for _, r := range refs {
			units = append(units, append([]int(nil), comps[r.c].clusters[r.i]...))
		}
	} else {
		// Build's purify concatenates per-cluster unit lists in reverse
		// cluster order (the shared-LIFO heritage); reproduce it.
		for j := len(refs) - 1; j >= 0; j-- {
			r := refs[j]
			for _, u := range comps[r.c].purified[r.i] {
				units = append(units, append([]int(nil), u...))
			}
		}
	}
	var leftover []int
	for c := range comps {
		leftover = append(leftover, comps[c].leftover...)
	}
	sort.Ints(leftover)

	if !m.params.SkipMerging {
		var err error
		units, leftover, err = nd.merge(ctx, units, leftover, m.kind)
		if err != nil {
			return nil, err
		}
	}
	if m.params.KeepSingletons {
		for _, i := range leftover {
			units = append(units, []int{i})
		}
	}
	nd.finalize(units, m.kind)
	return nd, nil
}

// ApplyDelta applies one batch of new stay points and returns the next
// generation's diagram: delta popularity over the batch only, α-flip
// dirty marking per ε_p component, Algorithm 1–2 re-runs restricted to
// the dirty components, and a global re-merge + finalize. The result is
// bit-identical to a full Build over the union of every stay point seen
// so far (same units, same member order, same popularity bits), for any
// worker count and index backend.
//
// On error (cancellation, deadline) the maintainer's retained state is
// unchanged and the batch is not applied; the caller may retry.
func (m *Maintainer) ApplyDelta(env stage.Env, batch []geo.Point) (*Diagram, DeltaStats, error) {
	ctx, tr, opt := env.Ctx, env.Trace, env.Opt
	root := env.StartSpan("csd.delta")
	defer root.End()
	st := DeltaStats{BatchStays: len(batch)}

	// Delta popularity: index the batch alone, and fold each affected
	// POI's new weights into its running sum in ascending id order —
	// batch-local ascending equals global ascending, because the batch's
	// ids all follow every existing stay's.
	sp := root.Start("delta.popularity")
	newPop := append([]float64(nil), m.pop...)
	batchPP := geo.Pack(batch)
	touched := make([]bool, len(m.pois))
	if len(batch) > 0 {
		batchIdx := index.NewPacked(opt.Index, batchPP, m.kernel.Radius())
		arenas := opt.AcquireArenas(exec.Slots(opt.Workers, len(m.pois)))
		err := exec.ParallelForSlots(ctx, opt.Workers, len(m.pois), func(slot, i int) error {
			loc := m.pois[i].Location
			buf := batchIdx.WithinAppend(loc, m.kernel.Radius(), arenas[slot].Ints[:0])
			arenas[slot].Ints = buf
			if len(buf) == 0 {
				return nil
			}
			sort.Ints(buf)
			newPop[i] = m.kernel.WeightSumInto(newPop[i], loc, batchPP, buf)
			touched[i] = true
			return nil
		})
		opt.ReleaseArenas(arenas)
		if err != nil {
			sp.End()
			return nil, st, err
		}
	}
	var affected []int
	for i, t := range touched {
		if t {
			affected = append(affected, i)
		}
	}
	sp.End()
	st.AffectedPOIs = len(affected)

	// Dirty marking: a component must re-cluster only when the α
	// popularity-ratio predicate flipped for some member pair — the one
	// input of Algorithm 1 that popularity feeds (locations, categories
	// and d_v are static). Checking affected×members pairs is
	// conservative and sound: growth examines a subset of those pairs,
	// so "no pair flipped" implies an identical re-run.
	sp = root.Start("delta.dirty")
	dirtySet := make(map[int]bool)
	for _, a := range affected {
		c := m.comp[a]
		if dirtySet[c] {
			continue
		}
		for _, b := range m.comps[c].pois {
			if popRatioOK(m.pop[a], m.pop[b], m.params.Alpha) !=
				popRatioOK(newPop[a], newPop[b], m.params.Alpha) {
				dirtySet[c] = true
				break
			}
		}
	}
	dirty := make([]int, 0, len(dirtySet))
	for c := range dirtySet {
		dirty = append(dirty, c)
	}
	sort.Ints(dirty)
	sp.End()
	st.DirtyComponents = len(dirty)
	tr.Add("csd.delta.dirty_components", int64(len(dirty)))

	// Re-run Algorithms 1–2 on the dirty components against the static
	// location index and the new popularity. Results go to a working
	// view first; the maintainer commits only after everything (merge
	// included) succeeded.
	scratch := m.scratchDiagram(newPop)
	view := make([]compState, len(m.comps))
	copy(view, m.comps)
	sp = root.Start("delta.clustering")
	for _, c := range dirty {
		members := m.comps[c].pois
		for _, i := range members {
			m.removed[i] = false
			m.inCluster[i] = false
		}
		clusters, leftover, err := scratch.growClusters(ctx, m.locIdx, members, m.removed, m.inCluster)
		if err != nil {
			sp.End()
			return nil, st, err
		}
		view[c] = compState{pois: members, clusters: clusters, leftover: leftover}
	}
	sp.End()

	if !m.params.SkipPurification {
		sp = root.Start("delta.purification")
		err := (&maintView{m: m, comps: view}).purify(ctx, tr, opt, scratch, dirty)
		sp.End()
		if err != nil {
			return nil, st, err
		}
	}
	for c := range view {
		n := 0
		if !m.params.SkipPurification {
			for _, us := range view[c].purified {
				n += len(us)
			}
		} else {
			n = len(view[c].clusters)
		}
		if dirtySet[c] {
			st.DirtyUnits += n
		} else {
			st.ReusedUnits += n
		}
	}
	tr.Add("csd.delta.dirty_units", int64(st.DirtyUnits))

	// Assemble the next generation, then commit.
	gen := m.gen + 1
	parent := m.gen
	m.gen = gen
	sp = root.Start("delta.assemble")
	d, err := m.assemble(ctx, newPop, view, parent)
	sp.End()
	if err != nil {
		m.gen = parent
		return nil, st, err
	}
	m.stays.Append(batch)
	m.pop = newPop
	m.comps = view
	m.diagram = d
	st.Generation = gen
	tr.Add("csd.delta.applied", 1)
	return d, st, nil
}

// maintView adapts purifyComponents to a working copy of the component
// state (ApplyDelta must not touch the retained state before commit).
type maintView struct {
	m     *Maintainer
	comps []compState
}

func (v *maintView) purify(ctx context.Context, tr *obs.Trace, opt exec.Options, scratch *Diagram, comps []int) error {
	type ref struct{ c, i int }
	var refs []ref
	for _, c := range comps {
		cs := &v.comps[c]
		cs.purified = make([][][]int, len(cs.clusters))
		for i := range cs.clusters {
			refs = append(refs, ref{c, i})
		}
	}
	exec.Note(tr, len(refs), exec.Workers(opt.Workers))
	perCluster, err := exec.ParallelMap(ctx, opt.Workers, len(refs), func(k int) ([][]int, error) {
		r := refs[k]
		return scratch.purifyCluster(v.comps[r.c].clusters[r.i], tr), nil
	})
	if err != nil {
		return err
	}
	for k, units := range perCluster {
		r := refs[k]
		v.comps[r.c].purified[r.i] = units
	}
	return nil
}
