package csd

import (
	"fmt"
	"testing"

	"csdm/internal/index"
)

// TestBuildFromPopularityMatchesBuild proves the split-phase
// constructor (precomputed popularity + per-component parallel
// clustering) is bit-identical to the one-shot BuildEnv across every
// index backend and worker count — the equivalence the sharded build
// rests on once the popularity vector itself is shown exact.
func TestBuildFromPopularityMatchesBuild(t *testing.T) {
	stays, city := maintWorkload(t)
	params := DefaultParams()
	params.KeepSingletons = true
	for _, kind := range []index.Kind{index.KindGrid, index.KindKDTree, index.KindRTree} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/w%d", kind, workers), func(t *testing.T) {
				env := envWith(workers, kind)
				ref, err := BuildEnv(env, city.POIs, stays, params)
				if err != nil {
					t.Fatal(err)
				}
				pop, err := popularity(env.Ctx, city.POIs, stays, newKernelFor(params), env.Opt)
				if err != nil {
					t.Fatal(err)
				}
				d, err := BuildFromPopularity(env, city.POIs, pop, params)
				if err != nil {
					t.Fatal(err)
				}
				requireSameDiagram(t, ref, d)
			})
		}
	}
}
