// compat.go quarantines the package's deprecated pre-engine wrappers:
// everything here only repacks parameters into a stage.Env and will be
// deleted once no caller threads them by hand (see DESIGN.md §5d). New
// code must use the Env-based constructors directly.
package csd

import (
	"context"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/stage"
)

// BuildContext is the pre-engine full-control constructor.
//
// Deprecated: use BuildEnv with a stage.Env; this wrapper only repacks
// its parameters and will be removed once no caller threads them by
// hand (see DESIGN.md §5d).
func BuildContext(ctx context.Context, pois []poi.POI, stays []geo.Point, params Params, tr *obs.Trace, opt exec.Options) (*Diagram, error) {
	return BuildEnv(stage.Env{Ctx: ctx, Run: ctx, Trace: tr, Opt: opt}, pois, stays, params)
}
