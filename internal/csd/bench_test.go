package csd

// Per-stage benchmarks for the diagram construction pipeline. Each
// stage is measured white-box on the same synthetic workload as the
// repository-level BenchmarkMine, with its inputs prebuilt, so a
// regression localizes to one stage instead of hiding inside the
// end-to-end number. All report allocations: the spatial-query scratch
// buffers and the purifier's cached kernel weights exist precisely to
// keep these lines flat.

import (
	"context"
	"sync"
	"testing"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/synth"
)

// stageFixture is the shared stage-benchmark state: the synthetic
// workload plus every intermediate input, built once. Sequential
// (Workers: 1) so the per-op numbers measure the algorithms, not the
// pool.
type stageFixtureT struct {
	pois     []poi.POI
	stays    []geo.Point
	d        *Diagram
	clusters [][]int
	leftover []int
	purified [][]int
}

var (
	stageOnce sync.Once
	stageFix  stageFixtureT
)

func stageFixture(b *testing.B) *stageFixtureT {
	stageOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Seed = 1
		cfg.NumPOIs = 3000
		cfg.NumPassengers = 600
		cfg.Days = 14
		city := synth.NewCity(cfg)
		w := city.GenerateWorkload()
		stageFix.pois = city.POIs
		stageFix.stays = make([]geo.Point, 0, 2*len(w.Journeys))
		for _, j := range w.Journeys {
			stageFix.stays = append(stageFix.stays, j.Pickup, j.Dropoff)
		}
		params := DefaultParams()
		d := &Diagram{Params: params, POIs: stageFix.pois, kernel: newKernelFor(params)}
		ctx := context.Background()
		pop, err := popularity(ctx, d.POIs, stageFix.stays, d.kernel, exec.Options{Workers: 1})
		if err != nil {
			panic(err)
		}
		d.Pop = pop
		stageFix.d = d
		stageFix.clusters, stageFix.leftover, err = d.popularityClusters(ctx, index.KindGrid)
		if err != nil {
			panic(err)
		}
		stageFix.purified, err = d.purify(ctx, stageFix.clusters, nil, exec.Options{Workers: 1})
		if err != nil {
			panic(err)
		}
	})
	return &stageFix
}

func BenchmarkPopularity(b *testing.B) {
	fix := stageFixture(b)
	ctx := context.Background()
	opt := exec.Options{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := popularity(ctx, fix.pois, fix.stays, fix.d.kernel, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClustering(b *testing.B) {
	fix := stageFixture(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var nc int
	for i := 0; i < b.N; i++ {
		clusters, _, err := fix.d.popularityClusters(ctx, index.KindGrid)
		if err != nil {
			b.Fatal(err)
		}
		nc = len(clusters)
	}
	b.ReportMetric(float64(nc), "clusters")
}

func BenchmarkPurify(b *testing.B) {
	fix := stageFixture(b)
	ctx := context.Background()
	opt := exec.Options{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var nu int
	for i := 0; i < b.N; i++ {
		units, err := fix.d.purify(ctx, fix.clusters, nil, opt)
		if err != nil {
			b.Fatal(err)
		}
		nu = len(units)
	}
	b.ReportMetric(float64(nu), "units")
}

func BenchmarkMerge(b *testing.B) {
	fix := stageFixture(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var nm int
	for i := 0; i < b.N; i++ {
		merged, _, err := fix.d.merge(ctx, fix.purified, fix.leftover, index.KindGrid)
		if err != nil {
			b.Fatal(err)
		}
		nm = len(merged)
	}
	b.ReportMetric(float64(nm), "merged-units")
}
