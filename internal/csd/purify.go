package csd

import (
	"csdm/internal/geo"
	"csdm/internal/poi"
)

// maxWeightCacheMembers caps the size of a purifier's pairwise kernel-
// weight matrix: a cluster of k members costs k² float64s, so 512 bounds
// the cache at 2 MiB per in-flight cluster. Larger clusters fall back to
// computing weights from the cached planar coordinates on demand —
// still cheaper than the Haversine the weights once required.
const maxWeightCacheMembers = 512

// purifier holds one cluster's purification state for the whole split
// tree (Algorithm 2). Members are addressed by local index [0, k); the
// planar coordinates, major categories and — lazily, on the first split
// — the full pairwise kernel-weight matrix are computed once per tree,
// where the per-level formulation recomputed every pairwise weight (a
// Haversine plus an exponential) at every level of the tree.
//
// Weights use the kernel's planar fast path: the distance fed to
// WeightDist is measured in the projection anchored at the cluster
// centroid. At the ≤150 m scale of a popularity cluster the projection
// error is parts-per-million of the 33 m kernel σ, far below the median
// contrast the split thresholds on.
type purifier struct {
	d      *Diagram
	cl     []int        // global POI indices; local index a ↔ cl[a]
	planar []geo.Meters // member locations projected at the cluster centroid
	majors []poi.Major
	// weights is the flattened k×k kernel-weight matrix, filled by the
	// first splitByKL; weightsDone distinguishes "not yet built" from
	// "over the cache cap".
	weights     []float64
	weightsDone bool
	// kls and sorted are per-tree scratch for the median-KL split.
	kls    []float64
	sorted []float64
}

func newPurifier(d *Diagram, cl []int) *purifier {
	pu := &purifier{
		d:      d,
		cl:     cl,
		planar: make([]geo.Meters, len(cl)),
		majors: make([]poi.Major, len(cl)),
	}
	pts := make([]geo.Point, len(cl))
	for a, i := range cl {
		pts[a] = d.POIs[i].Location
	}
	proj := geo.NewProjection(geo.Centroid(pts))
	for a, p := range pts {
		pu.planar[a] = proj.ToMeters(p)
		pu.majors[a] = d.POIs[cl[a]].Major()
	}
	return pu
}

// ensureWeights fills the pairwise weight matrix once per tree. It runs
// only when a split is actually needed, so single-semantic and
// spatially tight clusters never pay for it.
func (pu *purifier) ensureWeights() {
	if pu.weightsDone {
		return
	}
	pu.weightsDone = true
	k := len(pu.cl)
	if k > maxWeightCacheMembers {
		return
	}
	w0 := pu.d.kernel.WeightDist(0)
	pu.weights = make([]float64, k*k)
	for a := 0; a < k; a++ {
		pu.weights[a*k+a] = w0
		for b := a + 1; b < k; b++ {
			w := pu.d.kernel.WeightDist(pu.planar[a].Dist(pu.planar[b]))
			pu.weights[a*k+b] = w
			pu.weights[b*k+a] = w
		}
	}
}

// weight returns the kernel weight between members a and b.
func (pu *purifier) weight(a, b int) float64 {
	if pu.weights != nil {
		return pu.weights[a*len(pu.cl)+b]
	}
	return pu.d.kernel.WeightDist(pu.planar[a].Dist(pu.planar[b]))
}

// singleSemantic reports whether all members of ci share one major
// category (the SingleSemantic check of Definition 3).
func (pu *purifier) singleSemantic(ci []int) bool {
	if len(ci) == 0 {
		return true
	}
	first := pu.majors[ci[0]]
	for _, a := range ci[1:] {
		if pu.majors[a] != first {
			return false
		}
	}
	return true
}

// planarCentroid returns the mean of ci's cached planar coordinates.
// The projection is linear in lon/lat, so this is the projection of the
// sub-cluster's coordinate centroid.
func (pu *purifier) planarCentroid(ci []int) geo.Meters {
	var sx, sy float64
	for _, a := range ci {
		sx += pu.planar[a].X
		sy += pu.planar[a].Y
	}
	n := float64(len(ci))
	return geo.Meters{X: sx / n, Y: sy / n}
}

// variance computes the sub-cluster's spatial variance in m² from the
// cached planar coordinates (VarianceMeters re-projected per call).
func (pu *purifier) variance(ci []int) float64 {
	if len(ci) < 2 {
		return 0
	}
	c := pu.planarCentroid(ci)
	var sum float64
	for _, a := range ci {
		dx := pu.planar[a].X - c.X
		dy := pu.planar[a].Y - c.Y
		sum += dx*dx + dy*dy
	}
	return sum / float64(len(ci)-1)
}

// medoid returns the member of ci closest to ci's centroid (the paper's
// CenterPoint), first-wins on ties like geo.MedoidIndex.
func (pu *purifier) medoid(ci []int) int {
	c := pu.planarCentroid(ci)
	best, bestD := ci[0], -1.0
	for _, a := range ci {
		dx := pu.planar[a].X - c.X
		dy := pu.planar[a].Y - c.Y
		if d2 := dx*dx + dy*dy; bestD < 0 || d2 < bestD {
			best, bestD = a, d2
		}
	}
	return best
}

// semanticDistribution fills dist with Pr_{p_a}(s) of Equation (4): the
// kernel-weighted share of each major category as seen from member a.
func (pu *purifier) semanticDistribution(ci []int, a int, dist []float64) {
	for k := range dist {
		dist[k] = 0
	}
	var total float64
	for _, b := range ci {
		w := pu.weight(b, a)
		dist[pu.majors[b]] += w
		total += w
	}
	if total > 0 {
		for k := range dist {
			dist[k] /= total
		}
	}
}

// splitByKL performs the median-KL decomposition of Algorithm 2 lines
// 7–14: members whose semantic distribution diverges from the center
// member's by more than the median form the new cluster.
func (pu *purifier) splitByKL(ci []int) (kept, split []int) {
	pu.ensureWeights()
	center := pu.medoid(ci)
	var centerDist, memberDist [poi.NumMajors]float64
	pu.semanticDistribution(ci, center, centerDist[:])
	kls := pu.kls[:0]
	for _, a := range ci {
		pu.semanticDistribution(ci, a, memberDist[:])
		kls = append(kls, klDivergence(centerDist[:], memberDist[:]))
	}
	pu.kls = kls
	sorted := append(pu.sorted[:0], kls...)
	median := medianSorting(sorted)
	pu.sorted = sorted
	for j, a := range ci {
		if kls[j] > median {
			split = append(split, a)
		} else {
			kept = append(kept, a)
		}
	}
	return kept, split
}

// splitByMajor separates the largest single-major group from the rest.
func (pu *purifier) splitByMajor(ci []int) (kept, split []int) {
	var counts [poi.NumMajors]int
	for _, a := range ci {
		counts[pu.majors[a]]++
	}
	best := poi.Major(0)
	for mj := 1; mj < poi.NumMajors; mj++ {
		if counts[mj] > counts[best] {
			best = poi.Major(mj)
		}
	}
	if counts[best] == len(ci) {
		return ci, nil
	}
	for _, a := range ci {
		if pu.majors[a] == best {
			kept = append(kept, a)
		} else {
			split = append(split, a)
		}
	}
	return kept, split
}

// globalize rewrites a local-index slice into global POI indices in
// place. A sub-cluster is globalized only when emitted as a unit, after
// which its local indices are never read again.
func (pu *purifier) globalize(ci []int) []int {
	for j, a := range ci {
		ci[j] = pu.cl[a]
	}
	return ci
}
