package csd

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"csdm/internal/poi"
)

// buildSample constructs a small diagram with two distinct units.
func buildSample(t *testing.T) *Diagram {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.Restaurant, 0, 0, 10, 6)...)
	pois = append(pois, blockOf(rng, 100, poi.BusinessOffice, 500, 0, 10, 6)...)
	return Build(pois, uniformStays(700, 80), DefaultParams())
}

func TestDiagramRoundTrip(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Units) != len(d.Units) {
		t.Fatalf("units = %d, want %d", len(got.Units), len(d.Units))
	}
	for i := range d.Units {
		a, b := d.Units[i], got.Units[i]
		if a.Semantics != b.Semantics {
			t.Fatalf("unit %d semantics %v != %v", i, b.Semantics, a.Semantics)
		}
		if len(a.Members) != len(b.Members) {
			t.Fatalf("unit %d members %d != %d", i, len(b.Members), len(a.Members))
		}
	}
	for i := range d.POIs {
		if got.UnitOf(i) != d.UnitOf(i) {
			t.Fatalf("UnitOf(%d) = %d, want %d", i, got.UnitOf(i), d.UnitOf(i))
		}
		if got.Pop[i] != d.Pop[i] {
			t.Fatalf("Pop[%d] differs", i)
		}
	}
	// Queries behave identically.
	if a, b := d.MembersWithin(origin, 100), got.MembersWithin(origin, 100); len(a) != len(b) {
		t.Fatalf("MembersWithin: %d vs %d", len(b), len(a))
	}
	if got.Coverage() != d.Coverage() {
		t.Fatalf("coverage differs")
	}
}

func TestDiagramReadRejectsCorrupt(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()

	badCategory := regexp.MustCompile(`"minor":\d+`).ReplaceAllString(valid, `"minor":250`)
	cases := map[string]string{
		"truncated":      valid[:len(valid)/2],
		"bad version":    strings.Replace(valid, `"version":1`, `"version":9`, 1),
		"bad category":   badCategory,
		"member overlap": strings.Replace(valid, `"units":[[`, `"units":[[0,0,`, 1),
	}
	for name, data := range cases {
		if _, err := Read(strings.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
	// Popularity length mismatch.
	short := strings.Replace(valid, `"pop":[`, `"pop":[999999,[`, 1)
	if _, err := Read(strings.NewReader(short)); err == nil {
		t.Error("pop mismatch accepted")
	}
}

func TestDiagramReadRejectsOutOfRangeMember(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := strings.Replace(buf.String(), `"units":[[`, `"units":[[99999,`, 1)
	if _, err := Read(strings.NewReader(data)); err == nil {
		t.Error("out-of-range member accepted")
	}
}

// TestLineageRoundTrip: generation and parent live in the v2 header and
// must survive write/read; the JSON payload must NOT change with them,
// so identical content at different generations is payload-byte-equal.
func TestLineageRoundTrip(t *testing.T) {
	d := buildSample(t)
	d.Generation, d.ParentGeneration = 7, 6
	var a bytes.Buffer
	if err := d.Write(&a); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 7 || got.ParentGeneration != 6 {
		t.Fatalf("lineage: got %d/%d, want 7/6", got.Generation, got.ParentGeneration)
	}
	d.Generation, d.ParentGeneration = 12, 7
	var b bytes.Buffer
	if err := d.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes()[headerSize:], b.Bytes()[headerSize:]) {
		t.Fatal("payload bytes changed with generation; lineage leaked into the payload")
	}
	if bytes.Equal(a.Bytes()[:headerSize], b.Bytes()[:headerSize]) {
		t.Fatal("header did not change with generation")
	}
}

// TestReadFramingV1 keeps pre-lineage framed files loadable: a v1 header
// (no generation fields) around the same payload reads back with zero
// lineage.
func TestReadFramingV1(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[headerSize:]
	v1 := make([]byte, 0, headerSizeV1+len(payload))
	v1 = append(v1, diagramMagic...)
	v1 = append(v1, framingVersionV1)
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], uint64(len(payload)))
	v1 = append(v1, lenb[:]...)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(payload, crcTable))
	v1 = append(v1, crcb[:]...)
	v1 = append(v1, payload...)

	got, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 read: %v", err)
	}
	if got.Generation != 0 || got.ParentGeneration != 0 {
		t.Fatalf("v1 lineage: got %d/%d, want 0/0", got.Generation, got.ParentGeneration)
	}
	if len(got.Units) != len(d.Units) {
		t.Fatalf("v1 units: got %d, want %d", len(got.Units), len(d.Units))
	}
	// Truncated v1 header must be rejected, not misparsed.
	if _, err := Read(bytes.NewReader(v1[:headerSizeV1-3])); err == nil {
		t.Fatal("truncated v1 header accepted")
	}
}
