package csd

import (
	"bytes"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"csdm/internal/poi"
)

// buildSample constructs a small diagram with two distinct units.
func buildSample(t *testing.T) *Diagram {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.Restaurant, 0, 0, 10, 6)...)
	pois = append(pois, blockOf(rng, 100, poi.BusinessOffice, 500, 0, 10, 6)...)
	return Build(pois, uniformStays(700, 80), DefaultParams())
}

func TestDiagramRoundTrip(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Units) != len(d.Units) {
		t.Fatalf("units = %d, want %d", len(got.Units), len(d.Units))
	}
	for i := range d.Units {
		a, b := d.Units[i], got.Units[i]
		if a.Semantics != b.Semantics {
			t.Fatalf("unit %d semantics %v != %v", i, b.Semantics, a.Semantics)
		}
		if len(a.Members) != len(b.Members) {
			t.Fatalf("unit %d members %d != %d", i, len(b.Members), len(a.Members))
		}
	}
	for i := range d.POIs {
		if got.UnitOf(i) != d.UnitOf(i) {
			t.Fatalf("UnitOf(%d) = %d, want %d", i, got.UnitOf(i), d.UnitOf(i))
		}
		if got.Pop[i] != d.Pop[i] {
			t.Fatalf("Pop[%d] differs", i)
		}
	}
	// Queries behave identically.
	if a, b := d.MembersWithin(origin, 100), got.MembersWithin(origin, 100); len(a) != len(b) {
		t.Fatalf("MembersWithin: %d vs %d", len(b), len(a))
	}
	if got.Coverage() != d.Coverage() {
		t.Fatalf("coverage differs")
	}
}

func TestDiagramReadRejectsCorrupt(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()

	badCategory := regexp.MustCompile(`"minor":\d+`).ReplaceAllString(valid, `"minor":250`)
	cases := map[string]string{
		"truncated":      valid[:len(valid)/2],
		"bad version":    strings.Replace(valid, `"version":1`, `"version":9`, 1),
		"bad category":   badCategory,
		"member overlap": strings.Replace(valid, `"units":[[`, `"units":[[0,0,`, 1),
	}
	for name, data := range cases {
		if _, err := Read(strings.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
	// Popularity length mismatch.
	short := strings.Replace(valid, `"pop":[`, `"pop":[999999,[`, 1)
	if _, err := Read(strings.NewReader(short)); err == nil {
		t.Error("pop mismatch accepted")
	}
}

func TestDiagramReadRejectsOutOfRangeMember(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := strings.Replace(buf.String(), `"units":[[`, `"units":[[99999,`, 1)
	if _, err := Read(strings.NewReader(data)); err == nil {
		t.Error("out-of-range member accepted")
	}
}
