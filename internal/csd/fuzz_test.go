package csd

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"csdm/internal/poi"
)

// fuzzSeedDiagram serializes a small valid diagram for the fuzz corpus.
func fuzzSeedDiagram() []byte {
	rng := rand.New(rand.NewSource(7))
	var pois []poi.POI
	pois = append(pois, blockOf(rng, 1, poi.Restaurant, 0, 0, 8, 6)...)
	pois = append(pois, blockOf(rng, 50, poi.BusinessOffice, 400, 0, 8, 6)...)
	d := Build(pois, uniformStays(500, 60), DefaultParams())
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadDiagram pins the hardened-loader contract: Read on arbitrary
// bytes returns a descriptive error or a diagram that round-trips —
// never a panic, and never unbounded allocation from a hostile header.
func FuzzReadDiagram(f *testing.F) {
	valid := fuzzSeedDiagram()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])    // truncated payload
	f.Add(valid[:headerSize])      // header only
	f.Add(valid[:3])               // truncated header
	f.Add([]byte{})                // empty
	f.Add([]byte(`{"version":1}`)) // legacy JSON, incomplete
	f.Add([]byte("CSDFgarbagegarbagegarbage"))
	// Hostile length field: header claims 2^60 payload bytes.
	hostile := append([]byte(nil), valid[:headerSize]...)
	for i := lenOffset; i < lenOffset+8; i++ {
		hostile[i] = 0xff
	}
	f.Add(append(hostile, valid[headerSize:]...))
	// Bit flip in the payload (CRC must catch it).
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// A v1-framed file (no lineage fields) around the same payload.
	payload := valid[headerSize:]
	v1 := append([]byte(diagramMagic), framingVersionV1)
	v1 = binary.LittleEndian.AppendUint64(v1, uint64(len(payload)))
	v1 = binary.LittleEndian.AppendUint32(v1, crc32.Checksum(payload, crcTable))
	f.Add(append(v1, payload...))
	f.Add(v1[:headerSizeV1-2]) // truncated v1 header

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(bytes.NewReader(data))
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		// A diagram Read accepts must survive a write/read round trip.
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatalf("rewrite of accepted diagram: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("reread of accepted diagram: %v", err)
		}
	})
}

func TestReadRejectsCorruptInputs(t *testing.T) {
	valid := fuzzSeedDiagram()
	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:5],
		"bad magic":      append([]byte("XXXX"), valid[4:]...),
		"truncated":      valid[:len(valid)-10],
		"header only":    valid[:headerSize],
		"legacy garbage": []byte(`{"version":99}`),
		"not a file":     []byte("hello world, this is not a diagram"),
	}
	// Bit flips anywhere in the payload must fail the CRC.
	for _, off := range []int{headerSize, headerSize + 37, len(valid) - 2} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x01
		cases["bitflip@"+string(rune('a'+off%26))] = flipped
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
}

// TestReadLegacyFormat keeps the pre-framing bare-JSON format loadable.
func TestReadLegacyFormat(t *testing.T) {
	framed := fuzzSeedDiagram()
	legacy := framed[headerSize:] // the payload is exactly the legacy format
	d, err := Read(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if len(d.Units) == 0 {
		t.Fatal("legacy read lost the units")
	}
}

// TestReadHostileLengthDoesNotAllocate pins the no-unbounded-allocation
// property: a header claiming an enormous payload fails fast instead of
// sizing a buffer from the untrusted field.
func TestReadHostileLengthDoesNotAllocate(t *testing.T) {
	valid := fuzzSeedDiagram()
	hostile := append([]byte(nil), valid...)
	for i := lenOffset; i < lenOffset+8; i++ {
		hostile[i] = 0xff
	}
	if _, err := Read(bytes.NewReader(hostile)); err == nil {
		t.Fatal("hostile length accepted")
	}
}
