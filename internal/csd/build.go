package csd

import (
	"context"
	"math"
	"sort"

	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/stage"
)

// Build constructs the City Semantic Diagram from a POI dataset and the
// stay points derived from a trajectory corpus (§4.1). Stay points only
// drive the popularity model; they are not stored.
func Build(pois []poi.POI, stays []geo.Point, params Params) *Diagram {
	return BuildTraced(pois, stays, params, nil)
}

// BuildTraced is Build with telemetry recorded on tr (nil-safe).
func BuildTraced(pois []poi.POI, stays []geo.Point, params Params, tr *obs.Trace) *Diagram {
	env := stage.Background()
	env.Trace = tr
	d, _ := BuildEnv(env, pois, stays, params)
	return d
}

// BuildEnv is the full-control constructor: each construction stage —
// popularity model, popularity clustering (Algorithm 1), semantic
// purification (Algorithm 2), unit merging — records a span under
// "csd.build", with counters for clusters grown, purification splits,
// units merged and singletons kept. The popularity sums and the
// purification split trees run on env's worker pool; env.Opt.Index
// selects the spatial backend of every range structure built along the
// way. The diagram is identical for any worker budget. A canceled
// env.Ctx aborts between units of work with its error and a nil
// diagram.
func BuildEnv(env stage.Env, pois []poi.POI, stays []geo.Point, params Params) (*Diagram, error) {
	ctx, tr, opt := env.Ctx, env.Trace, env.Opt
	root := env.StartSpan("csd.build")
	defer root.End()
	tr.SetGauge("index.backend", float64(opt.Index))

	d := &Diagram{
		Params: params,
		POIs:   pois,
		kernel: newKernelFor(params),
	}
	sp := root.Start("popularity")
	err := fault.Hit("csd.popularity")
	var pop []float64
	if err == nil {
		pop, err = popularity(ctx, pois, stays, d.kernel, opt)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	d.Pop = pop
	exec.Note(tr, len(pois), exec.Workers(opt.Workers))

	sp = root.Start("clustering")
	var clusters [][]int
	var leftover []int
	if err = fault.Hit("csd.clustering"); err == nil {
		clusters, leftover, err = d.popularityClusters(ctx, opt.Index)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	tr.Add("csd.clusters.grown", int64(len(clusters)))

	if !params.SkipPurification {
		sp = root.Start("purification")
		if err = fault.Hit("csd.purification"); err == nil {
			clusters, err = d.purify(ctx, clusters, tr, opt)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	if !params.SkipMerging {
		sp = root.Start("merging")
		before := len(clusters)
		if err = fault.Hit("csd.merging"); err == nil {
			clusters, leftover, err = d.merge(ctx, clusters, leftover, opt.Index)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
		tr.Add("csd.units.merged", int64(before-len(clusters)))
	}
	if params.KeepSingletons {
		tr.Add("csd.singletons.kept", int64(len(leftover)))
		for _, i := range leftover {
			clusters = append(clusters, []int{i})
		}
	}
	sp = root.Start("finalize")
	d.finalize(clusters, opt.Index)
	sp.End()
	tr.Add("csd.units.final", int64(len(d.Units)))
	return d, nil
}

// newKernelFor builds the diagram's Gaussian kernel from its params.
func newKernelFor(params Params) geo.GaussianKernel {
	return geo.NewGaussianKernel(params.R3Sigma)
}

// popularityClusters implements Algorithm 1 (Popularity Based
// Clustering). It returns the coarse clusters (each a slice of POI
// indices) and the leftover POIs that were consumed into sub-MinPts
// clusters or never reached.
func (d *Diagram) popularityClusters(ctx context.Context, kind index.Kind) (clusters [][]int, leftover []int, err error) {
	n := len(d.POIs)
	locIdx := index.New(kind, poi.Locations(d.POIs), d.Params.EpsP)
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	return d.growClusters(ctx, locIdx, seeds, make([]bool, n), make([]bool, n))
}

// growClusters is the growth loop of Algorithm 1 over an explicit seed
// order: each not-yet-removed seed grows a cluster by flood-fill over
// the ε_p range structure, keeping clusters of MinPts or more; seeds
// that end up in no kept cluster come back as leftover, in seed order.
// removed ("P ← P − {p}") and inCluster are the caller's bookkeeping
// and must be false for every POI reachable from seeds.
//
// The full build passes every POI in ascending order. The incremental
// maintainer passes one ε_p-connected component's members (ascending)
// at a time, against the same location index: cluster growth only ever
// follows ≤ ε_p edges, so a component run touches exactly the POIs and
// produces exactly the clusters the full run produced within that
// component — the factorization the dirty-region rebuild rests on.
// Growth is inherently sequential (each removal changes the candidate
// set), so the loop stays on one goroutine and only polls ctx between
// seeds.
func (d *Diagram) growClusters(ctx context.Context, locIdx index.Index, seeds []int, removed, inCluster []bool) (clusters [][]int, leftover []int, err error) {
	// Scratch reused across seeds: the growth queue, the raw range-query
	// buffer and the candidate cluster. A kept cluster is copied out of
	// clBuf, so the reuse never aliases a result — and the (common)
	// sub-MinPts seeds allocate nothing at all.
	var queue, nbr, clBuf []int
	// enqueue appends the not-yet-removed POIs within ε_p of POI i —
	// the range(p, ε_p, P) of Algorithm 1's work queue V.
	enqueue := func(i int) {
		nbr = locIdx.WithinAppend(d.POIs[i].Location, d.Params.EpsP, nbr[:0])
		for _, j := range nbr {
			if !removed[j] {
				queue = append(queue, j)
			}
		}
	}
	for _, seed := range seeds {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if removed[seed] {
			continue
		}
		removed[seed] = true
		clBuf = append(clBuf[:0], seed)
		queue = queue[:0]
		enqueue(seed)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if removed[j] {
				continue
			}
			// Line 5: mutual popularity similarity against the seed.
			if !popRatioOK(d.Pop[seed], d.Pop[j], d.Params.Alpha) {
				continue
			}
			// Line 6: vertically stacked or same semantic property.
			if geo.Haversine(d.POIs[seed].Location, d.POIs[j].Location) > d.Params.DV &&
				d.POIs[j].Major() != d.POIs[seed].Major() {
				continue
			}
			removed[j] = true
			clBuf = append(clBuf, j)
			enqueue(j)
		}
		if len(clBuf) >= d.Params.MinPts {
			clusters = append(clusters, append([]int(nil), clBuf...))
			for _, i := range clBuf {
				inCluster[i] = true
			}
		}
	}
	for _, i := range seeds {
		if !inCluster[i] {
			leftover = append(leftover, i)
		}
	}
	return clusters, leftover, nil
}

// purify implements Algorithm 2 (Semantic Purification): clusters that
// are neither single-semantic nor spatially tight are split at the
// median KL divergence from the center POI's local semantic
// distribution, until every cluster qualifies as a fine-grained unit.
// KL and fallback-major splits are counted on tr (nil-safe).
//
// Each initial cluster's split tree is independent of the others, so
// the clusters fan out over the worker pool. The sequential version
// popped a shared LIFO stack seeded with all clusters, which processes
// cluster n-1's tree first, then n-2's, and so on; concatenating the
// per-cluster unit lists in reverse input order reproduces that unit
// order exactly.
func (d *Diagram) purify(ctx context.Context, clusters [][]int, tr *obs.Trace, opt exec.Options) ([][]int, error) {
	exec.Note(tr, len(clusters), exec.Workers(opt.Workers))
	perCluster, err := exec.ParallelMap(ctx, opt.Workers, len(clusters), func(i int) ([][]int, error) {
		return d.purifyCluster(clusters[i], tr), nil
	})
	if err != nil {
		return nil, err
	}
	var units [][]int
	for i := len(perCluster) - 1; i >= 0; i-- {
		units = append(units, perCluster[i]...)
	}
	return units, nil
}

// purifyCluster runs one cluster's split tree to completion. The paper
// picks sub-clusters randomly; a work stack is equivalent and
// deterministic. The purifier caches the cluster's planar coordinates,
// major categories and pairwise kernel weights for the whole tree, so
// every sub-cluster works in local index space and no weight is
// computed twice.
func (d *Diagram) purifyCluster(cl []int, tr *obs.Trace) [][]int {
	pu := newPurifier(d, cl)
	local := make([]int, len(cl))
	for a := range local {
		local[a] = a
	}
	work := [][]int{local}
	var units [][]int
	for len(work) > 0 {
		ci := work[len(work)-1]
		work = work[:len(work)-1]
		if pu.singleSemantic(ci) || pu.variance(ci) < d.Params.VMin {
			units = append(units, pu.globalize(ci))
			continue
		}
		kept, split := pu.splitByKL(ci)
		if len(split) == 0 || len(kept) == 0 {
			// All KL values coincide (perfectly symmetric mixture); no
			// median split is possible. Fall back to splitting off the
			// largest single-major group, which always makes progress
			// on a multi-semantic cluster.
			kept, split = pu.splitByMajor(ci)
			if len(split) == 0 {
				units = append(units, pu.globalize(ci))
				continue
			}
			tr.Add("csd.purify.major_splits", 1)
		} else {
			tr.Add("csd.purify.kl_splits", 1)
		}
		work = append(work, kept, split)
	}
	return units
}

func medianOf(vals []float64) float64 {
	return medianSorting(append([]float64(nil), vals...))
}

// medianSorting returns the median of s, sorting it in place.
func medianSorting(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// merge implements the semantic-unit merging step: nearby units whose
// popularity-weighted semantic distributions (Equation (6)) have cosine
// similarity (Equation (8)) above the threshold fuse into one, and
// leftover POIs attach to a compatible nearby unit. It returns the
// merged clusters and the leftovers that attached nowhere. Union-find
// order matters, so the step is sequential; ctx is polled per unit.
func (d *Diagram) merge(ctx context.Context, clusters [][]int, leftover []int, kind index.Kind) ([][]int, []int, error) {
	if len(clusters) == 0 {
		return clusters, leftover, nil
	}
	parent := make([]int, len(clusters))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	centers := make([]geo.Point, len(clusters))
	dists := make([][]float64, len(clusters))
	for i, cl := range clusters {
		centers[i] = d.clusterCentroid(cl)
		dists[i] = d.popWeightedDistribution(cl)
	}
	centerIdx := index.New(kind, centers, d.Params.MergeDist)
	var nbr []int // range-query scratch, reused across both query loops
	for i := range clusters {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		nbr = centerIdx.WithinAppend(centers[i], d.Params.MergeDist, nbr[:0])
		for _, j := range nbr {
			if j <= i {
				continue
			}
			if cosine(dists[i], dists[j]) >= d.Params.MergeCos {
				union(i, j)
			}
		}
	}

	groups := make(map[int][]int)
	for i := range clusters {
		r := find(i)
		groups[r] = append(groups[r], clusters[i]...)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	merged := make([][]int, 0, len(groups))
	for _, r := range roots {
		merged = append(merged, groups[r])
	}

	// Attach leftover POIs to compatible nearby units.
	mergedCenters := make([]geo.Point, len(merged))
	mergedDists := make([][]float64, len(merged))
	for i, cl := range merged {
		mergedCenters[i] = d.clusterCentroid(cl)
		mergedDists[i] = d.popWeightedDistribution(cl)
	}
	mIdx := index.New(kind, mergedCenters, d.Params.MergeDist)
	var unattached []int
	var single [poi.NumMajors]float64
	for _, p := range leftover {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		single[d.POIs[p].Major()] = 1
		bestUnit, bestDist := -1, d.Params.MergeDist+1
		nbr = mIdx.WithinAppend(d.POIs[p].Location, d.Params.MergeDist, nbr[:0])
		for _, u := range nbr {
			if cosine(single[:], mergedDists[u]) < d.Params.MergeCos {
				continue
			}
			if dd := geo.Haversine(d.POIs[p].Location, mergedCenters[u]); dd < bestDist {
				bestUnit, bestDist = u, dd
			}
		}
		if bestUnit >= 0 {
			merged[bestUnit] = append(merged[bestUnit], p)
		} else {
			unattached = append(unattached, p)
		}
		single[d.POIs[p].Major()] = 0
	}
	return merged, unattached, nil
}

// clusterCentroid returns the centroid of a cluster's POI locations.
func (d *Diagram) clusterCentroid(cl []int) geo.Point {
	pts := make([]geo.Point, len(cl))
	for k, i := range cl {
		pts[k] = d.POIs[i].Location
	}
	return geo.Centroid(pts)
}

// popWeightedDistribution computes Pr_u(s) of Equation (6): each major's
// share of the cluster's total popularity. Zero-popularity clusters fall
// back to uniform member counting so merging still has a signal.
func (d *Diagram) popWeightedDistribution(cl []int) []float64 {
	dist := make([]float64, poi.NumMajors)
	var total float64
	for _, i := range cl {
		dist[d.POIs[i].Major()] += d.Pop[i]
		total += d.Pop[i]
	}
	if total == 0 {
		for _, i := range cl {
			dist[d.POIs[i].Major()]++
		}
		total = float64(len(cl))
	}
	for k := range dist {
		dist[k] /= total
	}
	return dist
}

// cosine is the Cos(u_i, u_j) of Equations (7)–(8).
func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// finalize materializes the units, the POI→unit map and the member
// spatial index (built on the requested backend).
func (d *Diagram) finalize(clusters [][]int, kind index.Kind) {
	d.unitOf = make([]int, len(d.POIs))
	for i := range d.unitOf {
		d.unitOf[i] = -1
	}
	d.Units = make([]Unit, 0, len(clusters))
	for _, cl := range clusters {
		if len(cl) == 0 {
			continue
		}
		sort.Ints(cl)
		u := Unit{ID: len(d.Units), Members: cl, Center: d.clusterCentroid(cl)}
		for _, i := range cl {
			u.Semantics = u.Semantics.Union(d.POIs[i].Semantics())
			d.unitOf[i] = u.ID
		}
		d.Units = append(d.Units, u)
	}
	for i, uid := range d.unitOf {
		if uid >= 0 {
			d.members = append(d.members, i)
		}
	}
	pts := make([]geo.Point, len(d.members))
	for k, i := range d.members {
		pts[k] = d.POIs[i].Location
	}
	d.memberIdx = index.New(kind, pts, d.Params.R3Sigma)
}
