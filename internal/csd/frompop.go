package csd

import (
	"context"
	"sort"

	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/stage"
)

// BuildFromPopularity runs construction phase 2 — Algorithm 1
// clustering, Algorithm 2 purification, unit merging and finalize — on
// a popularity vector computed elsewhere. It is the assembly half of
// the sharded build: internal/shard computes per-POI popularity one
// tile at a time (exact, because the Gaussian kernel has compact R3σ
// support), scatters it into one global vector, and hands it here. The
// result is bit-identical to BuildEnv on the same (pois, stays) pair
// whenever pop matches BuildEnv's popularity stage bit-for-bit, for
// any worker count and index backend.
//
// Unlike BuildEnv's single sequential Algorithm 1 pass, clustering here
// fans out over the ε_p-connected components of the POI graph — the
// same factorization the incremental Maintainer rests on (growth only
// follows ≤ ε_p edges, so a per-component run reproduces exactly the
// clusters the global pass grew within that component). Components are
// disjoint, so the shared bookkeeping arrays are written race-free,
// and re-sorting clusters by seed id restores the global pass's order.
func BuildFromPopularity(env stage.Env, pois []poi.POI, pop []float64, params Params) (*Diagram, error) {
	ctx, tr, opt := env.Ctx, env.Trace, env.Opt
	root := env.StartSpan("csd.frompop")
	defer root.End()
	tr.SetGauge("index.backend", float64(opt.Index))

	d := &Diagram{
		Params: params,
		POIs:   pois,
		Pop:    pop,
		kernel: newKernelFor(params),
	}

	sp := root.Start("clustering")
	var clusters [][]int
	var leftover []int
	err := fault.Hit("csd.clustering")
	if err == nil {
		clusters, leftover, err = d.componentClusters(ctx, opt)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	tr.Add("csd.clusters.grown", int64(len(clusters)))

	if !params.SkipPurification {
		sp = root.Start("purification")
		if err = fault.Hit("csd.purification"); err == nil {
			clusters, err = d.purify(ctx, clusters, tr, opt)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	if !params.SkipMerging {
		sp = root.Start("merging")
		before := len(clusters)
		if err = fault.Hit("csd.merging"); err == nil {
			clusters, leftover, err = d.merge(ctx, clusters, leftover, opt.Index)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
		tr.Add("csd.units.merged", int64(before-len(clusters)))
	}
	if params.KeepSingletons {
		tr.Add("csd.singletons.kept", int64(len(leftover)))
		for _, i := range leftover {
			clusters = append(clusters, []int{i})
		}
	}
	sp = root.Start("finalize")
	d.finalize(clusters, opt.Index)
	sp.End()
	tr.Add("csd.units.final", int64(len(d.Units)))
	return d, nil
}

// componentClusters is Algorithm 1 factorized over ε_p components and
// fanned out on the worker pool. Per-component cluster lists ascend by
// seed id but components interleave in id space, so the concatenation
// is re-sorted by each cluster's seed (its first, minimum member) to
// reproduce the sequential pass's ascending-seed order; leftovers sort
// to the sequential pass's ascending order the same way. Seeds are
// unique across clusters, so the sort is a total order.
func (d *Diagram) componentClusters(ctx context.Context, opt exec.Options) ([][]int, []int, error) {
	n := len(d.POIs)
	locIdx := index.New(opt.Index, poi.Locations(d.POIs), d.Params.EpsP)
	_, members := epsComponents(d.POIs, locIdx, d.Params.EpsP)

	// Shared across the fan-out: every POI a component run touches is a
	// member of that component (growth follows ≤ ε_p edges only), so
	// concurrent runs write disjoint elements.
	removed := make([]bool, n)
	inCluster := make([]bool, n)
	type compResult struct {
		clusters [][]int
		leftover []int
	}
	per, err := exec.ParallelMap(ctx, opt.Workers, len(members), func(c int) (compResult, error) {
		cls, lo, err := d.growClusters(ctx, locIdx, members[c], removed, inCluster)
		return compResult{clusters: cls, leftover: lo}, err
	})
	if err != nil {
		return nil, nil, err
	}
	var clusters [][]int
	var leftover []int
	for _, r := range per {
		clusters = append(clusters, r.clusters...)
		leftover = append(leftover, r.leftover...)
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a][0] < clusters[b][0] })
	sort.Ints(leftover)
	return clusters, leftover, nil
}

// epsComponents decomposes the POI set into ε_p-connected components by
// flood fill over locIdx. comp maps POI id → component id; members
// lists each component's POIs ascending, with components ordered by
// their minimum member id.
func epsComponents(pois []poi.POI, locIdx index.Index, epsP float64) (comp []int, members [][]int) {
	n := len(pois)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue, nbr []int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		c := len(members)
		comp[i] = c
		queue = append(queue[:0], i)
		ms := []int{i}
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			nbr = locIdx.WithinAppend(pois[j].Location, epsP, nbr[:0])
			for _, k := range nbr {
				if comp[k] < 0 {
					comp[k] = c
					queue = append(queue, k)
					ms = append(ms, k)
				}
			}
		}
		sort.Ints(ms)
		members = append(members, ms)
	}
	return comp, members
}
