// Package csd implements the City Semantic Diagram (CSD), the paper's
// central data structure: a set of fine-grained semantic units
// (Definition 3) covering a city, built from a POI dataset and the
// stay points of a trajectory corpus in three steps (§4.1):
//
//  1. popularity-based clustering (Algorithm 1) groups POIs with
//     mutually similar popularity that are vertically stacked or share a
//     semantic category;
//  2. semantic purification (Algorithm 2) splits mixed clusters at the
//     median Kullback–Leibler divergence from the cluster center's local
//     semantic distribution, detecting semantic complexity;
//  3. semantic-unit merging joins nearby fragments whose popularity-
//     weighted semantic distributions have cosine similarity above a
//     threshold, and attaches leftover unclustered POIs to compatible
//     units.
package csd

import (
	"context"
	"math"
	"sort"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
)

// Params are the CSD construction parameters with the defaults of §4.1.
type Params struct {
	// R3Sigma is the Gaussian kernel's 3σ radius in meters (100 m).
	R3Sigma float64
	// DV is the vertical-overlap distance d_v (15 m): POIs this close
	// are treated as stacked in one building regardless of semantics.
	DV float64
	// MinPts is MinPts_p (5): the minimum cluster size kept by
	// Algorithm 1.
	MinPts int
	// EpsP is the search radius ε_p (30 m) of Algorithm 1.
	EpsP float64
	// Alpha is the popularity-ratio threshold α (0.8): two POIs join
	// only when each's popularity is at least α of the other's.
	Alpha float64
	// VMin is the spatial-variance threshold (m²) below which a mixed-
	// semantics cluster is accepted as a unit (the skyscraper case of
	// Definition 3). 150 m² ≈ a 12 m spread.
	VMin float64
	// MergeCos is the cosine-similarity threshold of the merging step
	// (0.9 in the paper's experiments).
	MergeCos float64
	// MergeDist bounds the centroid distance (meters) between units
	// considered "nearby" for merging.
	MergeDist float64
	// KeepSingletons, when set, turns leftover POIs that merge with no
	// unit into singleton units instead of dropping them from the CSD.
	// The paper drops them; recognition ablations flip this.
	KeepSingletons bool
	// SkipPurification disables Algorithm 2 (ablation only).
	SkipPurification bool
	// SkipMerging disables the merging step (ablation only).
	SkipMerging bool
}

// DefaultParams returns the parameter values the paper settles on after
// testing (§4.1).
func DefaultParams() Params {
	return Params{
		R3Sigma:   100,
		DV:        15,
		MinPts:    5,
		EpsP:      30,
		Alpha:     0.8,
		VMin:      150,
		MergeCos:  0.9,
		MergeDist: 150,
	}
}

// Unit is one fine-grained semantic unit: a set of POIs homogeneous in
// location or semantics (Definition 3).
type Unit struct {
	// ID is the unit's index within the diagram.
	ID int
	// Members are indices into the diagram's POI slice.
	Members []int
	// Semantics is the union of the members' semantic properties.
	Semantics poi.Semantics
	// Center is the centroid of the members' locations.
	Center geo.Point
}

// Diagram is a built City Semantic Diagram (Definition 4). It is
// immutable after Build and safe for concurrent readers.
type Diagram struct {
	Params Params
	// POIs is the full input POI dataset.
	POIs []poi.POI
	// Pop[i] is pop(POIs[i]) per Equation (3).
	Pop []float64
	// Units are the fine-grained semantic units.
	Units []Unit
	// Generation is the diagram's lineage number under incremental
	// maintenance: 0 for a one-shot Build, 1 for a Maintainer's initial
	// construction, +1 per applied delta batch. It is carried in the
	// framed snapshot header (framing v2), not the JSON payload, so two
	// generations with identical content have byte-identical payloads.
	Generation int64
	// ParentGeneration is the generation this diagram was derived from
	// (0 when it has no parent).
	ParentGeneration int64
	// unitOf maps each POI index to its unit ID, or -1 when the POI
	// belongs to no unit.
	unitOf []int
	// memberIdx indexes the locations of unit-member POIs only; ids are
	// POI indices (remapped through members).
	memberIdx index.Index
	members   []int
	kernel    geo.GaussianKernel
}

// UnitOf returns the unit ID of POI i, or -1 when the POI is in no unit
// — the FindSemanticUnit(p, CSD) of Algorithm 3.
func (d *Diagram) UnitOf(i int) int { return d.unitOf[i] }

// Extent returns the bounding rectangle of the diagram's POI dataset
// (the zero Rect for an empty diagram). The serving layer uses it to
// sanity-check a replacement snapshot before hot-swapping: a diagram
// for a different city has a disjoint extent.
func (d *Diagram) Extent() geo.Rect {
	return geo.BoundingRect(poi.Locations(d.POIs))
}

// Kernel returns the Gaussian kernel the diagram was built with.
func (d *Diagram) Kernel() geo.GaussianKernel { return d.kernel }

// MembersWithin returns the indices of unit-member POIs within radius
// meters of p — the range(sp, R3σ, CSD) of Algorithm 3 (POIs outside
// every unit do not participate in recognition).
func (d *Diagram) MembersWithin(p geo.Point, radius float64) []int {
	return d.MembersWithinAppend(p, radius, nil)
}

// MembersWithinAppend is MembersWithin appending into buf, under the
// same aliasing contract as index.Index.WithinAppend: the diagram never
// retains buf, and the caller must use the returned slice. Recognition
// loops reuse one buffer per worker to keep Algorithm 3 allocation-free.
func (d *Diagram) MembersWithinAppend(p geo.Point, radius float64, buf []int) []int {
	start := len(buf)
	buf = d.memberIdx.WithinAppend(p, radius, buf)
	for k := start; k < len(buf); k++ {
		buf[k] = d.members[buf[k]]
	}
	return buf
}

// Coverage returns the fraction of input POIs that belong to some unit.
func (d *Diagram) Coverage() float64 {
	if len(d.POIs) == 0 {
		return 0
	}
	return float64(len(d.members)) / float64(len(d.POIs))
}

// UnitPurity returns the share of a unit's members belonging to its
// dominant major category — the semantic-consistency statistic reported
// for Figure 6.
func (d *Diagram) UnitPurity(u Unit) float64 {
	if len(u.Members) == 0 {
		return 0
	}
	var counts [poi.NumMajors]int
	for _, i := range u.Members {
		counts[d.POIs[i].Major()]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(len(u.Members))
}

// MeanUnitPurity averages UnitPurity over all units (0 when empty).
func (d *Diagram) MeanUnitPurity() float64 {
	if len(d.Units) == 0 {
		return 0
	}
	var sum float64
	for _, u := range d.Units {
		sum += d.UnitPurity(u)
	}
	return sum / float64(len(d.Units))
}

// Popularity computes pop(p^I) for every POI per Equations (2)–(3):
// the Gaussian-kernel sum over the stay points within R3σ.
func Popularity(pois []poi.POI, stays []geo.Point, kernel geo.GaussianKernel) []float64 {
	pop, _ := popularity(context.Background(), pois, stays, kernel, exec.Options{})
	return pop
}

// popularity is the execution-layer core of Popularity: each POI's
// kernel sum is independent, so the loop fans out over the worker pool.
// pop[i] is accumulated in ascending stay-id order regardless of the
// worker count or the index backend's result order, so the sums are
// bit-identical across budgets AND across spatial backends — and, since
// stay points are only ever appended, a later delta batch continues
// each POI's float-addition chain exactly where the full build left it
// (the Maintainer's incremental update depends on this canonical
// order). Each worker slot borrows one range-query buffer from the
// cross-stage arena pool — the sums depend only on the query results,
// never on leftover buffer contents, so reuse within and across stage
// invocations cannot perturb determinism.
func popularity(ctx context.Context, pois []poi.POI, stays []geo.Point, kernel geo.GaussianKernel, opt exec.Options) ([]float64, error) {
	pop := make([]float64, len(pois))
	if len(stays) == 0 {
		return pop, nil
	}
	stayIdx := index.New(opt.Index, stays, kernel.Radius())
	arenas := opt.AcquireArenas(exec.Slots(opt.Workers, len(pois)))
	err := exec.ParallelForSlots(ctx, opt.Workers, len(pois), func(slot, i int) error {
		loc := pois[i].Location
		buf := stayIdx.WithinAppend(loc, kernel.Radius(), arenas[slot].Ints[:0])
		arenas[slot].Ints = buf
		sort.Ints(buf)
		var sum float64
		for _, s := range buf {
			sum += kernel.Weight(loc, stays[s])
		}
		pop[i] = sum
		return nil
	})
	opt.ReleaseArenas(arenas)
	if err != nil {
		return nil, err
	}
	return pop, nil
}

// popRatioOK implements line 5 of Algorithm 1: both popularity ratios
// must be at least α. Two zero-popularity POIs are mutually similar;
// a zero against a non-zero is not.
func popRatioOK(a, b, alpha float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	if a == 0 || b == 0 {
		return false
	}
	return a/b >= alpha && b/a >= alpha
}

// klEpsilon smooths zero probabilities in Equation (5); the paper does
// not define KL at zero mass.
const klEpsilon = 1e-6

// klDivergence computes KL(p‖q) over aligned distributions with additive
// smoothing.
func klDivergence(p, q []float64) float64 {
	n := float64(len(p))
	var kl float64
	for i := range p {
		ps := (p[i] + klEpsilon) / (1 + klEpsilon*n)
		qs := (q[i] + klEpsilon) / (1 + klEpsilon*n)
		kl += ps * math.Log(ps/qs)
	}
	if kl < 0 {
		kl = 0 // numerical floor: KL is non-negative
	}
	return kl
}
