package load

import (
	"errors"
	"fmt"
	"testing"

	"csdm/internal/obs"
)

func TestStatsSkipAndBudget(t *testing.T) {
	var s Stats
	s.Rows = 10
	s.Skip("coord-nan")
	s.Skip("coord-nan")
	s.Skip("time")
	if got := s.TotalSkipped(); got != 3 {
		t.Fatalf("TotalSkipped = %d, want 3", got)
	}
	if s.OverBudget(Options{}) {
		t.Error("over budget with no budget set")
	}
	if s.OverBudget(Options{MaxBadRows: 3}) {
		t.Error("over budget at exactly the budget")
	}
	if !s.OverBudget(Options{MaxBadRows: 2}) {
		t.Error("not over budget one past it")
	}
	if got, want := s.String(), "10 rows, 3 skipped (coord-nan:2 time:1)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestStatsString_Clean(t *testing.T) {
	s := Stats{Rows: 5}
	if got := s.String(); got != "5 rows, 0 skipped" {
		t.Errorf("String() = %q", got)
	}
}

func TestStatsNote(t *testing.T) {
	var s Stats
	s.Rows = 7
	s.Skip("id")
	tr := obs.New()
	s.Note(tr, "poi")
	if got := tr.Counter("load.poi.rows"); got != 7 {
		t.Errorf("rows counter = %d", got)
	}
	if got := tr.Counter("load.poi.skipped.id"); got != 1 {
		t.Errorf("skip counter = %d", got)
	}
	// A nil trace is a no-op, not a crash.
	s.Note(nil, "poi")
}

func TestRowErrorReasonAndUnwrap(t *testing.T) {
	inner := errors.New("bad id")
	re := &RowError{Reason: "id", Err: fmt.Errorf("line 3: %w", inner)}
	if Reason(re) != "id" {
		t.Errorf("Reason = %q", Reason(re))
	}
	if Reason(fmt.Errorf("wrapped: %w", re)) != "id" {
		t.Error("Reason does not see through wrapping")
	}
	if Reason(errors.New("reader exploded")) != "csv" {
		t.Error("untagged error did not default to csv")
	}
	if !errors.Is(re, inner) {
		t.Error("Unwrap chain broken")
	}
	if re.Error() != "line 3: bad id" {
		t.Errorf("Error() = %q", re.Error())
	}
}

func TestStatsMerge(t *testing.T) {
	var a Stats
	a.Rows = 3
	a.Skip("time")
	b := Stats{Rows: 5, Skipped: map[string]int{"time": 2, "coord-nan": 1}}
	a.Merge(b)
	if a.Rows != 8 || a.Skipped["time"] != 3 || a.Skipped["coord-nan"] != 1 {
		t.Fatalf("merged stats = %+v", a)
	}

	// Merging into a zero Stats allocates the map only when needed.
	var c Stats
	c.Merge(Stats{Rows: 2})
	if c.Rows != 2 || c.Skipped != nil {
		t.Fatalf("zero merge = %+v", c)
	}
	c.Merge(b)
	if c.Rows != 7 || c.TotalSkipped() != 3 {
		t.Fatalf("second merge = %+v", c)
	}
}
