// Package load holds the lenient-ingestion plumbing the POI and journey
// loaders share: the option bundle that switches a loader from
// fail-fast to skip-and-count, the per-reason skip statistics, and the
// bad-row budget that keeps "lenient" from meaning "silently eat a
// garbage file". Real municipal GPS feeds are dirty as a rule — rows
// with NaN coordinates, truncated lines, unparseable timestamps — and
// the pipeline's job is to mine around them while reporting exactly
// what it dropped and why.
package load

import (
	"errors"
	"fmt"
	"sort"

	"csdm/internal/obs"
)

// ErrBudget is the sentinel wrapped by the error a loader returns when
// a lenient load skips more rows than its budget allows.
var ErrBudget = errors.New("bad-row budget exceeded")

// Options selects a loader's failure policy. The zero value is the
// strict historical behavior: the first malformed row fails the load.
type Options struct {
	// Lenient skips malformed rows (counting each skip by reason)
	// instead of failing the load.
	Lenient bool
	// MaxBadRows caps the rows a lenient load may skip; once exceeded
	// the load fails with an error wrapping ErrBudget. Zero or negative
	// means unlimited.
	MaxBadRows int
	// Trace receives per-reason skip counters (nil-safe).
	Trace *obs.Trace
}

// Stats reports what one load accepted and skipped.
type Stats struct {
	// Rows is the count of rows parsed and kept.
	Rows int
	// Skipped counts skipped rows by reason key (e.g. "coord-nan",
	// "time", "csv").
	Skipped map[string]int
}

// Skip records one skipped row under the given reason.
func (s *Stats) Skip(reason string) {
	if s.Skipped == nil {
		s.Skipped = make(map[string]int)
	}
	s.Skipped[reason]++
}

// TotalSkipped returns the number of rows skipped across all reasons.
func (s *Stats) TotalSkipped() int {
	n := 0
	for _, c := range s.Skipped {
		n += c
	}
	return n
}

// OverBudget reports whether the skips exceed the options' budget.
func (s *Stats) OverBudget(opts Options) bool {
	return opts.MaxBadRows > 0 && s.TotalSkipped() > opts.MaxBadRows
}

// Merge folds another load's stats into s — row counts add, per-reason
// skip counts add. Multi-file ingestion (one stats per input) reports
// one aggregate this way.
func (s *Stats) Merge(o Stats) {
	s.Rows += o.Rows
	if len(o.Skipped) > 0 && s.Skipped == nil {
		s.Skipped = make(map[string]int)
	}
	for reason, count := range o.Skipped {
		s.Skipped[reason] += count
	}
}

// String renders the stats compactly, reasons in sorted order, e.g.
// "9500 rows, 12 skipped (coord-nan:7 time:5)".
func (s *Stats) String() string {
	if s.TotalSkipped() == 0 {
		return fmt.Sprintf("%d rows, 0 skipped", s.Rows)
	}
	reasons := make([]string, 0, len(s.Skipped))
	for r := range s.Skipped {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	out := fmt.Sprintf("%d rows, %d skipped (", s.Rows, s.TotalSkipped())
	for i, r := range reasons {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", r, s.Skipped[r])
	}
	return out + ")"
}

// Note publishes the stats on a trace as load.<name>.rows plus one
// load.<name>.skipped.<reason> counter per reason (nil-safe).
func (s *Stats) Note(tr *obs.Trace, name string) {
	tr.Add("load."+name+".rows", int64(s.Rows))
	for reason, count := range s.Skipped {
		tr.Add("load."+name+".skipped."+reason, int64(count))
	}
}

// RowError tags a row-level parse failure with the stable reason key
// the skip statistics use. Loaders wrap every row rejection in one so
// lenient mode can classify it and strict mode can surface the
// underlying message unchanged.
type RowError struct {
	Reason string
	Err    error
}

// Error implements the error interface, delegating to the wrapped
// error so strict-mode messages are unchanged by the tagging.
func (e *RowError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RowError) Unwrap() error { return e.Err }

// Reason extracts a RowError's reason key, defaulting to "csv" for
// reader-level errors that never got a tag.
func Reason(err error) string {
	var re *RowError
	if errors.As(err, &re) {
		return re.Reason
	}
	return "csv"
}
