package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-exposition (0.0.4) document — the
// output of WritePrometheus or any /metrics endpoint — without external
// dependencies. It checks the line grammar (HELP/TYPE comments, sample
// lines), metric-name and label syntax including escape sequences,
// TYPE placement and uniqueness, duplicate series, negative counters,
// and histogram invariants: parseable le bounds, monotone
// non-decreasing cumulative bucket counts, a +Inf bucket, and
// _count == the +Inf bucket. It returns every violation found (nil for
// a clean document), so CI can report them all at once.
func Lint(r io.Reader) []error {
	l := &linter{
		types:   make(map[string]string),
		helps:   make(map[string]bool),
		sampled: make(map[string]bool),
		seen:    make(map[string]int),
		hists:   make(map[string]map[string][]bucketSample),
		hcount:  make(map[string]map[string]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		l.line(line, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("lint: read: %w", err))
	}
	l.finish()
	return l.errs
}

// bucketSample is one _bucket series occurrence inside a histogram
// group (same family, same non-le labels).
type bucketSample struct {
	le    float64
	value float64
	line  int
}

type linter struct {
	errs    []error
	types   map[string]string // family -> declared TYPE
	helps   map[string]bool   // family -> HELP seen
	sampled map[string]bool   // family -> samples emitted already
	seen    map[string]int    // exact series -> first line
	// hists groups histogram bucket samples: family -> non-le label
	// body -> buckets, for the post-scan monotonicity check.
	hists  map[string]map[string][]bucketSample
	hcount map[string]map[string]float64 // family -> labels -> _count value
}

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		l.comment(n, s)
		return
	}
	l.sample(n, s)
}

// comment handles # HELP and # TYPE lines; other comments are legal
// and ignored.
func (l *linter) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			l.errf(n, "HELP without a metric name")
			return
		}
		fam := fields[2]
		if !validMetricName(fam) {
			l.errf(n, "HELP for invalid metric name %q", fam)
		}
		if l.helps[fam] {
			l.errf(n, "second HELP for %s", fam)
		}
		l.helps[fam] = true
		if len(fields) == 4 && !validEscapes(fields[3], false) {
			l.errf(n, "HELP text for %s has an invalid escape sequence", fam)
		}
	case "TYPE":
		if len(fields) < 4 {
			l.errf(n, "TYPE needs a metric name and a type")
			return
		}
		fam, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(fam) {
			l.errf(n, "TYPE for invalid metric name %q", fam)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown TYPE %q for %s", typ, fam)
		}
		if _, dup := l.types[fam]; dup {
			l.errf(n, "second TYPE for %s", fam)
		}
		if l.sampled[fam] {
			l.errf(n, "TYPE for %s after its samples", fam)
		}
		l.types[fam] = typ
	}
}

// sample parses one sample line: name[{labels}] value [timestamp].
func (l *linter) sample(n int, s string) {
	name, rest, ok := splitSampleName(s)
	if !ok {
		l.errf(n, "malformed sample %q", s)
		return
	}
	if !validMetricName(name) {
		l.errf(n, "invalid metric name %q", name)
		return
	}
	var labelBody string
	if strings.HasPrefix(rest, "{") {
		end := findLabelEnd(rest)
		if end < 0 {
			l.errf(n, "unterminated label set in %q", s)
			return
		}
		labelBody = rest[1:end]
		rest = rest[end+1:]
	}
	labels, lerr := parseLabels(labelBody)
	if lerr != nil {
		l.errf(n, "%s: %v", name, lerr)
		return
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		l.errf(n, "%s: want 'value [timestamp]', got %q", name, strings.TrimSpace(rest))
		return
	}
	value, verr := parseValue(fields[0])
	if verr != nil {
		l.errf(n, "%s: bad value %q", name, fields[0])
		return
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			l.errf(n, "%s: bad timestamp %q", name, fields[1])
		}
	}

	key := name + "{" + canonicalLabels(labels) + "}"
	if first, dup := l.seen[key]; dup {
		l.errf(n, "duplicate series %s (first at line %d)", key, first)
	} else {
		l.seen[key] = n
	}

	fam, role := histFamily(name, l.types)
	l.sampled[fam] = true
	if typ := l.types[fam]; typ == "counter" && value < 0 {
		l.errf(n, "counter %s has negative value %g", key, value)
	}
	switch role {
	case "bucket":
		le, ok := labels["le"]
		if !ok {
			l.errf(n, "%s without an le label", name)
			return
		}
		bound, err := parseValue(le)
		if err != nil {
			l.errf(n, "%s: unparseable le %q", name, le)
			return
		}
		group := canonicalLabelsExcept(labels, "le")
		if l.hists[fam] == nil {
			l.hists[fam] = make(map[string][]bucketSample)
		}
		l.hists[fam][group] = append(l.hists[fam][group], bucketSample{le: bound, value: value, line: n})
	case "count":
		group := canonicalLabels(labels)
		if l.hcount[fam] == nil {
			l.hcount[fam] = make(map[string]float64)
		}
		l.hcount[fam][group] = value
	}
}

// finish runs the whole-document histogram checks.
func (l *linter) finish() {
	fams := make([]string, 0, len(l.hists))
	for fam := range l.hists {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		groups := make([]string, 0, len(l.hists[fam]))
		for g := range l.hists[fam] {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		for _, g := range groups {
			buckets := l.hists[fam][g]
			sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
			last := buckets[len(buckets)-1]
			if !isInf(last.le) {
				l.errs = append(l.errs, fmt.Errorf("histogram %s{%s} has no +Inf bucket", fam, g))
			}
			prev := -1.0
			for _, b := range buckets {
				if b.value < prev {
					l.errf(b.line, "histogram %s{%s} bucket le=%g count %g below previous %g (not cumulative)",
						fam, g, b.le, b.value, prev)
				}
				prev = b.value
			}
			if counts, ok := l.hcount[fam]; ok {
				if c, ok := counts[g]; ok && isInf(last.le) && c != last.value {
					l.errs = append(l.errs, fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", fam, g, c, last.value))
				}
			}
		}
	}
}

func isInf(v float64) bool { return v > 1.7e308 }

// histFamily maps a sample name onto its histogram family and role
// when the _bucket/_sum/_count suffix belongs to a declared histogram.
func histFamily(name string, types map[string]string) (fam, role string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base, suf[1:]
		}
	}
	return name, ""
}

// splitSampleName cuts the metric name off the front of a sample line.
func splitSampleName(s string) (name, rest string, ok bool) {
	i := 0
	for i < len(s) && !strings.ContainsRune(" \t{", rune(s[i])) {
		i++
	}
	if i == 0 {
		return "", "", false
	}
	return s[:i], strings.TrimLeft(s[i:], " \t"), true
}

// findLabelEnd locates the closing brace of a label set, honoring
// escapes inside quoted values. s starts with '{'.
func findLabelEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip escaped char
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// parseLabels decodes a label body (`k="v",k2="v2"`) into a map,
// validating names, quoting and escape sequences.
func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	if body == "" {
		return labels, nil
	}
	i := 0
	for i < len(body) {
		// label name
		j := i
		for j < len(body) && body[j] != '=' {
			j++
		}
		if j == len(body) {
			return nil, fmt.Errorf("label %q missing '='", body[i:])
		}
		name := strings.TrimSpace(body[i:j])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		// opening quote
		j++
		if j >= len(body) || body[j] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", name)
		}
		// value with escapes
		var val strings.Builder
		j++
		for {
			if j >= len(body) {
				return nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := body[j]
			if c == '"' {
				break
			}
			if c == '\\' {
				if j+1 >= len(body) {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch body[j+1] {
				case '\\', '"':
					val.WriteByte(body[j+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: invalid escape \\%c", name, body[j+1])
				}
				j += 2
				continue
			}
			val.WriteByte(c)
			j++
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		j++ // past closing quote
		if j < len(body) {
			if body[j] != ',' {
				return nil, fmt.Errorf("label %s: expected ',' at %q", name, body[j:])
			}
			j++
		}
		i = j
	}
	return labels, nil
}

// parseValue parses a sample value: a Go float, +Inf, -Inf or NaN.
func parseValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validEscapes reports whether every backslash in s starts a legal
// escape (\\ and \n everywhere; additionally \" inside label values).
func validEscapes(s string, inLabel bool) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) {
			return false
		}
		switch s[i+1] {
		case '\\', 'n':
		case '"':
			if !inLabel {
				return false
			}
		default:
			return false
		}
		i++
	}
	return true
}
