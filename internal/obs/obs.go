// Package obs is the pipeline telemetry layer: hierarchical wall-time
// spans plus atomically updated named counters and gauges, collected
// into a Trace that renders as an indented text report or as JSON.
//
// Every method is nil-safe: a nil *Trace — and the nil *Span that its
// Start returns — is a complete no-op, so instrumented code threads a
// trace unconditionally and never branches on whether telemetry is on.
// The nil fast path is a single pointer comparison, keeping untraced
// pipeline runs at their uninstrumented speed.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace owns the spans, counters and gauges of one pipeline run. The
// zero value is not useful; use New. All methods are safe for
// concurrent use — extraction stages update counters from worker
// goroutines.
type Trace struct {
	mu    sync.Mutex
	roots []*Span

	counters sync.Map // string -> *int64
	gauges   sync.Map // string -> *uint64 (math.Float64bits)
	hists    sync.Map // string -> *Histogram

	// mirror, when set, receives a copy of every counter delta, gauge
	// set and histogram observation — the bridge from the per-run Trace
	// to the process-lifetime Registry behind /metrics.
	mirror atomic.Pointer[Registry]
}

// New returns an empty trace ready to collect telemetry.
func New() *Trace { return &Trace{} }

// Mirror forwards every future counter delta, gauge set and histogram
// observation to r as well, so a process-lifetime Registry accumulates
// across runs while the Trace stays per-run. Passing nil detaches.
// Attach before the run starts; the forwarding pointer is read
// atomically, so a late attach is safe but misses earlier updates.
func (t *Trace) Mirror(r *Registry) {
	if t == nil {
		return
	}
	t.mirror.Store(r)
}

// Start opens a root span. On a nil trace it returns a nil span, whose
// methods are all no-ops.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{trace: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Add increments the named counter by delta, creating it at zero on
// first use.
func (t *Trace) Add(name string, delta int64) {
	if t == nil {
		return
	}
	v, ok := t.counters.Load(name)
	if !ok {
		v, _ = t.counters.LoadOrStore(name, new(int64))
	}
	atomic.AddInt64(v.(*int64), delta)
	if r := t.mirror.Load(); r != nil {
		r.Add(name, delta)
	}
}

// Counter returns the named counter's current value (zero when the
// counter was never incremented).
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	v, ok := t.counters.Load(name)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(v.(*int64))
}

// Counters snapshots every counter.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	out := make(map[string]int64)
	t.counters.Range(func(k, v any) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	return out
}

// SetGauge records the latest value of the named gauge.
func (t *Trace) SetGauge(name string, value float64) {
	if t == nil {
		return
	}
	v, ok := t.gauges.Load(name)
	if !ok {
		v, _ = t.gauges.LoadOrStore(name, new(uint64))
	}
	atomic.StoreUint64(v.(*uint64), math.Float64bits(value))
	if r := t.mirror.Load(); r != nil {
		r.SetGauge(name, value)
	}
}

// Gauge returns the named gauge's latest value and whether it was set.
func (t *Trace) Gauge(name string) (float64, bool) {
	if t == nil {
		return 0, false
	}
	v, ok := t.gauges.Load(name)
	if !ok {
		return 0, false
	}
	return math.Float64frombits(atomic.LoadUint64(v.(*uint64))), true
}

// Gauges snapshots every gauge.
func (t *Trace) Gauges() map[string]float64 {
	if t == nil {
		return nil
	}
	out := make(map[string]float64)
	t.gauges.Range(func(k, v any) bool {
		out[k.(string)] = math.Float64frombits(atomic.LoadUint64(v.(*uint64)))
		return true
	})
	return out
}

// Observe records one observation on the named histogram, creating it
// with the DefBuckets ladder on first use. Latency observations are in
// seconds by convention (name the metric *_seconds). Names may carry a
// Prometheus label suffix built with Label, which the exposition
// writer splits back into family and labels.
func (t *Trace) Observe(name string, v float64) {
	if t == nil {
		return
	}
	h, ok := t.hists.Load(name)
	if !ok {
		h, _ = t.hists.LoadOrStore(name, NewHistogram(DefBuckets))
	}
	h.(*Histogram).Observe(v)
	if r := t.mirror.Load(); r != nil {
		r.Observe(name, v)
	}
}

// HistogramSnapshot returns the named histogram's current state (the
// zero snapshot when it was never observed).
func (t *Trace) HistogramSnapshot(name string) HistogramSnapshot {
	if t == nil {
		return HistogramSnapshot{}
	}
	h, ok := t.hists.Load(name)
	if !ok {
		return HistogramSnapshot{}
	}
	return h.(*Histogram).Snapshot()
}

// Histograms snapshots every histogram.
func (t *Trace) Histograms() map[string]HistogramSnapshot {
	if t == nil {
		return nil
	}
	out := make(map[string]HistogramSnapshot)
	t.hists.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}

// Span is one timed region of the pipeline. Spans nest: children are
// opened with Start and closed with End. A nil *Span is a no-op.
type Span struct {
	trace *Trace
	name  string
	start time.Time

	mu       sync.Mutex
	children []*Span
	ended    bool
	dur      time.Duration
}

// Start opens a child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its wall time. Ending twice is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Add increments a counter on the span's trace — a convenience so
// stage code holding only a span can still count.
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.trace.Add(name, delta)
}

// Name returns the span's name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall time; for a still-open span, the
// time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanSnapshot is the serializable form of one span.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Millis   float64        `json:"ms"`
	Running  bool           `json:"running,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot is the serializable form of a whole trace. Every field
// marshals as an empty (never null) collection when unpopulated, so
// the /debug/trace JSON shape is stable for consumers regardless of
// which telemetry kinds a run produced.
type Snapshot struct {
	Spans      []SpanSnapshot               `json:"spans"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	running := !s.ended
	dur := s.dur
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if running {
		dur = time.Since(s.start)
	}
	snap := SpanSnapshot{
		Name:    s.name,
		Millis:  float64(dur) / float64(time.Millisecond),
		Running: running,
	}
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}

// Snapshot captures the trace's current spans, counters and gauges.
// Open spans report their elapsed time so far, so a live debug
// endpoint can snapshot mid-run.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{
			Spans:      []SpanSnapshot{},
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	snap := Snapshot{
		Spans:      make([]SpanSnapshot, 0, len(roots)),
		Counters:   t.Counters(),
		Gauges:     t.Gauges(),
		Histograms: t.Histograms(),
	}
	for _, r := range roots {
		snap.Spans = append(snap.Spans, r.snapshot())
	}
	return snap
}

// MarshalJSON renders the trace's snapshot.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Snapshot())
}

// WriteText writes the indented stage report: the span tree with wall
// times, then counters and gauges sorted by name.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	snap := t.Snapshot()
	var b strings.Builder
	if len(snap.Spans) > 0 {
		b.WriteString("spans:\n")
		for _, s := range snap.Spans {
			writeSpanText(&b, s, 1)
		}
	}
	if len(snap.Counters) > 0 {
		b.WriteString("counters:\n")
		names := make([]string, 0, len(snap.Counters))
		for n := range snap.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-52s %d\n", n, snap.Counters[n])
		}
	}
	if len(snap.Gauges) > 0 {
		b.WriteString("gauges:\n")
		names := make([]string, 0, len(snap.Gauges))
		for n := range snap.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-52s %g\n", n, snap.Gauges[n])
		}
	}
	if len(snap.Histograms) > 0 {
		b.WriteString("histograms:\n")
		names := make([]string, 0, len(snap.Histograms))
		for n := range snap.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := snap.Histograms[n]
			fmt.Fprintf(&b, "  %-52s n=%d p50=%.4g p95=%.4g p99=%.4g sum=%.4g\n",
				n, h.Count, h.P50, h.P95, h.P99, h.Sum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSpanText(b *strings.Builder, s SpanSnapshot, depth int) {
	indent := strings.Repeat("  ", depth)
	state := ""
	if s.Running {
		state = " (running)"
	}
	fmt.Fprintf(b, "%s%-*s %9.1fms%s\n", indent, 54-2*depth, s.Name, s.Millis, state)
	for _, c := range s.Children {
		writeSpanText(b, c, depth+1)
	}
}

// Report returns the text report as a string ("" for a nil trace).
func (t *Trace) Report() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.WriteText(&b)
	return b.String()
}
