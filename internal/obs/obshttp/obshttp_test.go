package obshttp

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"csdm/internal/obs"
	"csdm/internal/stage"
)

func get(t *testing.T, srv *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestDebugEndpoints(t *testing.T) {
	tr := obs.New()
	reg := obs.NewRegistry()
	tr.Mirror(reg)
	sp := tr.Start("stage.test")
	tr.Add("ckpt.saved.diagram", 2)
	tr.Observe("csdm_stage_duration_seconds", 0.01)
	sp.End()

	stages := func() []stage.Info {
		return []stage.Info{
			{Name: "csd.build", Deps: []string{"stays"}, Artifact: "diagram", File: "d.json", Origin: stage.OriginBuilt},
			{Name: "broken", Err: errors.New("nope")},
		}
	}
	srv := httptest.NewServer(NewMux(Options{Trace: tr, Registry: reg, Stages: stages, ExpvarName: "csdm_test_a"}))
	defer srv.Close()

	// /debug/trace: stable-shape JSON with the right content type.
	body, ct := get(t, srv, "/debug/trace")
	if ct != "application/json" {
		t.Fatalf("/debug/trace Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/trace not JSON: %v\n%s", err, body)
	}
	if len(snap.Spans) != 1 || snap.Counters["ckpt.saved.diagram"] != 2 {
		t.Fatalf("bad trace snapshot: %s", body)
	}
	if strings.Contains(body, `"histograms":null`) {
		t.Fatalf("trace JSON has null collections: %s", body)
	}

	// /debug/stages: JSON list with origins and errors.
	body, ct = get(t, srv, "/debug/stages")
	if ct != "application/json" {
		t.Fatalf("/debug/stages Content-Type = %q", ct)
	}
	var infos []map[string]any
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatalf("/debug/stages not JSON: %v\n%s", err, body)
	}
	if len(infos) != 2 || infos[0]["name"] != "csd.build" || infos[0]["origin"] != "built" {
		t.Fatalf("bad stages payload: %s", body)
	}
	if infos[1]["error"] != "nope" {
		t.Fatalf("stage error not surfaced: %s", body)
	}

	// /metrics: Prometheus exposition carrying the mirrored telemetry,
	// clean under the package linter.
	body, ct = get(t, srv, "/metrics")
	if ct != ContentTypeMetrics {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{"ckpt_saved_diagram 2", "csdm_stage_duration_seconds_count 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if errs := obs.Lint(strings.NewReader(body)); len(errs) != 0 {
		t.Fatalf("/metrics fails lint: %v\n%s", errs, body)
	}

	// /debug/vars: expvar still works and carries the csdm block.
	body, _ = get(t, srv, "/debug/vars")
	if !strings.Contains(body, "csdm_test_a") {
		t.Fatalf("/debug/vars missing published block:\n%s", body)
	}

	// /debug/pprof/ index renders.
	body, _ = get(t, srv, "/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

// TestNilTolerance: a mux over nothing still serves stable responses.
func TestNilTolerance(t *testing.T) {
	srv := httptest.NewServer(NewMux(Options{ExpvarName: "csdm_test_b"}))
	defer srv.Close()
	body, _ := get(t, srv, "/debug/trace")
	for _, want := range []string{`"spans": []`, `"counters": {}`, `"histograms": {}`} {
		if !strings.Contains(body, want) {
			t.Fatalf("nil trace JSON missing %s:\n%s", want, body)
		}
	}
	body, _ = get(t, srv, "/debug/stages")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("nil stages = %q, want []", body)
	}
	body, _ = get(t, srv, "/metrics")
	if body != "" {
		t.Fatalf("nil registry /metrics = %q, want empty", body)
	}
}

// TestRepeatedPublish: building two muxes with the same expvar name
// must not panic (expvar.Publish would).
func TestRepeatedPublish(t *testing.T) {
	NewMux(Options{ExpvarName: "csdm_test_c"})
	NewMux(Options{ExpvarName: "csdm_test_c"})
}
