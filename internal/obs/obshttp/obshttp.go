// Package obshttp serves the observability surface over HTTP: the
// pprof and expvar debug endpoints, the per-run trace snapshot
// (/debug/trace), the stage graph with build origins (/debug/stages),
// and the process-lifetime metrics registry in Prometheus text
// exposition format (/metrics). It exists so every binary that wants a
// debug server — csdminer today, a serving daemon tomorrow — wires the
// same endpoints the same way instead of hand-registering handlers on
// the default mux.
//
// All endpoints are nil-tolerant: a nil Trace serves an empty (but
// structurally stable) snapshot, a nil Registry serves an empty
// exposition, and a nil Stages func serves an empty list — so callers
// wire what they have and the surface stays uniform.
package obshttp

import (
	"encoding/json"
	"expvar"
	"log"
	"net/http"
	"net/http/pprof"
	"sync"

	"csdm/internal/obs"
	"csdm/internal/stage"
)

// Options selects what the debug server exposes.
type Options struct {
	// Trace backs /debug/trace and the expvar counters/gauges block.
	// The per-run telemetry; nil serves empty-but-stable JSON.
	Trace *obs.Trace
	// Registry backs /metrics (Prometheus text exposition 0.0.4). The
	// process-lifetime metrics; nil serves an empty document.
	Registry *obs.Registry
	// Stages backs /debug/stages: the declared stage graph with each
	// artifact's build origin. Nil serves an empty list.
	Stages func() []stage.Info
	// ExpvarName is the expvar key the trace's counters and gauges are
	// published under; empty means "csdm". Publishing is idempotent
	// per name — later registrations for the same name are ignored
	// (expvar itself panics on duplicates).
	ExpvarName string
	// Logf, when set, receives the server's status messages (listen
	// address, serve errors). Nil logs errors via the log package and
	// drops status messages.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// publishedVars guards expvar.Publish, which panics on a duplicate
// name; tests (and a process restarting its debug server) re-register.
var (
	publishedMu   sync.Mutex
	publishedVars = map[string]bool{}
)

func publishOnce(name string, v expvar.Var) {
	publishedMu.Lock()
	defer publishedMu.Unlock()
	if publishedVars[name] {
		return
	}
	publishedVars[name] = true
	expvar.Publish(name, v)
}

// ContentTypeMetrics is the Prometheus text exposition content type.
const ContentTypeMetrics = "text/plain; version=0.0.4; charset=utf-8"

// NewMux builds the debug mux: /debug/pprof/*, /debug/vars (expvar,
// with the trace's live counters and gauges under o.ExpvarName),
// /debug/trace, /debug/stages, and /metrics. It registers nothing on
// the default mux, so two servers with different options can coexist
// in one process (the expvar surface, a package-global by design, is
// first-registration-wins per name).
func NewMux(o Options) *http.ServeMux {
	mux := http.NewServeMux()
	Register(mux, o)
	return mux
}

// Register mounts the debug endpoints on an existing mux, so a binary
// with its own application routes — csdserve's recognition API — adds
// the uniform observability surface next to them instead of running a
// second listener.
func Register(mux *http.ServeMux, o Options) {
	name := o.ExpvarName
	if name == "" {
		name = "csdm"
	}
	tr := o.Trace
	publishOnce(name, expvar.Func(func() any {
		return map[string]any{
			"counters": tr.Counters(),
			"gauges":   tr.Gauges(),
		}
	}))

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr.Snapshot())
	})

	mux.HandleFunc("/debug/stages", func(w http.ResponseWriter, _ *http.Request) {
		var infos []stage.Info
		if o.Stages != nil {
			infos = o.Stages()
		}
		out := make([]map[string]any, 0, len(infos))
		for _, in := range infos {
			m := map[string]any{
				"name":   in.Name,
				"deps":   in.Deps,
				"origin": in.Origin.String(),
			}
			if in.Site != "" {
				m["fault_site"] = in.Site
			}
			if in.Artifact != "" {
				m["artifact"], m["file"] = in.Artifact, in.File
			}
			if in.Err != nil {
				m["error"] = in.Err.Error()
			}
			out = append(out, m)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypeMetrics)
		if err := o.Registry.WritePrometheus(w); err != nil {
			o.logf("metrics write: %v", err)
		}
	})
}

// Serve starts the debug server in the background and returns
// immediately; a listen failure is logged, not fatal — the pipeline
// run matters more than its observability side-channel.
func Serve(addr string, o Options) {
	mux := NewMux(o)
	o.logf("debug server listening on http://%s/debug/pprof/ (also /debug/vars, /debug/trace, /debug/stages, /metrics)", addr)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			if o.Logf != nil {
				o.Logf("debug server: %v", err)
			} else {
				log.Printf("debug server: %v", err)
			}
		}
	}()
}
