package obs

import (
	"strings"
	"testing"
)

func lintStr(s string) []error { return Lint(strings.NewReader(s)) }

func wantErr(t *testing.T, doc, substr string) {
	t.Helper()
	errs := lintStr(doc)
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Fatalf("lint errors %v missing %q for doc:\n%s", errs, substr, doc)
}

func TestLintClean(t *testing.T) {
	doc := `# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total{path="/metrics"} 5
requests_total{path="/debug/trace"} 2
# TYPE temp gauge
temp -3.5
temp_k{unit="weird\nvalue\\x\"q"} 2
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="0.2"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 0.9
lat_seconds_count 4
untyped_thing 9 1700000000
`
	if errs := lintStr(doc); len(errs) != 0 {
		t.Fatalf("clean document produced errors: %v", errs)
	}
}

func TestLintViolations(t *testing.T) {
	wantErr(t, "9bad_name 1\n", "invalid metric name")
	wantErr(t, "ok 1\nok 2\n", "duplicate series")
	wantErr(t, "# TYPE m counter\nm -1\n", "negative value")
	wantErr(t, "# TYPE m widget\n", "unknown TYPE")
	wantErr(t, "# TYPE m counter\n# TYPE m counter\n", "second TYPE")
	wantErr(t, "# HELP m a\n# HELP m b\n", "second HELP")
	wantErr(t, "m 1\n# TYPE m counter\n", "after its samples")
	wantErr(t, "m{le=\"0.1\" 1\n", "unterminated label set")
	wantErr(t, "m{x=unquoted} 1\n", "unquoted value")
	wantErr(t, `m{x="bad\q"} 1`+"\n", "invalid escape")
	wantErr(t, `m{x="a",x="b"} 1`+"\n", "duplicate label")
	wantErr(t, "m notanumber\n", "bad value")
	wantErr(t, "m 1 notatime\n", "bad timestamp")
	wantErr(t, "m 1 2 3\n", "want 'value [timestamp]'")
}

func TestLintHistogramInvariants(t *testing.T) {
	// Non-cumulative buckets.
	wantErr(t, `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="0.2"} 3
h_bucket{le="+Inf"} 5
h_count 5
`, "not cumulative")
	// Missing +Inf bucket.
	wantErr(t, `# TYPE h histogram
h_bucket{le="0.1"} 1
h_count 1
`, "no +Inf bucket")
	// _count disagrees with +Inf.
	wantErr(t, `# TYPE h histogram
h_bucket{le="+Inf"} 4
h_count 5
`, "_count 5 != +Inf bucket 4")
	// Bucket with no le label.
	wantErr(t, `# TYPE h histogram
h_bucket 4
`, "without an le label")
	// Unparseable le.
	wantErr(t, `# TYPE h histogram
h_bucket{le="abc"} 4
`, "unparseable le")
	// Labeled histograms are checked per label set.
	doc := `# TYPE h histogram
h_bucket{stage="a",le="0.1"} 1
h_bucket{stage="a",le="+Inf"} 2
h_count{stage="a"} 2
h_bucket{stage="b",le="0.1"} 9
h_bucket{stage="b",le="+Inf"} 9
h_count{stage="b"} 9
`
	if errs := lintStr(doc); len(errs) != 0 {
		t.Fatalf("per-label histogram groups flagged: %v", errs)
	}
}

// TestLintIgnoresUndeclaredSuffixes: _bucket on a family never declared
// as a histogram is just a plain metric, not a histogram member.
func TestLintIgnoresUndeclaredSuffixes(t *testing.T) {
	if errs := lintStr("water_bucket 3\n"); len(errs) != 0 {
		t.Fatalf("plain *_bucket metric flagged: %v", errs)
	}
}
