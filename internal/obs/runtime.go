package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples are the runtime/metrics series the sampler polls and
// the gauge names they are exposed under. Kept small on purpose: the
// process-health signals a serving deployment alerts on (heap, GC,
// goroutines), not the full runtime/metrics catalog.
var runtimeSamples = []struct {
	runtime string
	gauge   string
	help    string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Number of live goroutines."},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "Total bytes of memory mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles since process start."},
	{"/gc/pauses:seconds", "go_gc_pause_seconds", "Distribution of GC stop-the-world pause latencies (quantile gauges)."},
}

// StartRuntimeSampler registers the Go runtime's health metrics on r
// and samples them once immediately and then on every tick: goroutine
// count, live heap bytes, total mapped memory, GC cycle count, and GC
// pause quantiles (p50/p95/p99, from the runtime's own pause
// histogram). The returned stop function halts the ticker goroutine
// (idempotent). A nil registry gets a no-op stop and no goroutine; a
// non-positive interval defaults to one second.
func StartRuntimeSampler(r *Registry, every time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if every <= 0 {
		every = time.Second
	}
	for _, s := range runtimeSamples {
		r.Describe(s.gauge, s.help)
	}
	r.Describe("csdm_runtime_samples_total", "Completed runtime-metrics sampling passes.")
	sampleRuntime(r)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sampleRuntime(r)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// sampleRuntime reads one batch of runtime/metrics samples into r.
func sampleRuntime(r *Registry) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, s := range runtimeSamples {
		samples[i].Name = s.runtime
	}
	metrics.Read(samples)
	for i, s := range samples {
		gauge := runtimeSamples[i].gauge
		switch s.Value.Kind() {
		case metrics.KindUint64:
			r.SetGauge(gauge, float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			r.SetGauge(gauge, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			for _, q := range []struct {
				q     float64
				label string
			}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
				r.SetGauge(Label(gauge, "quantile", q.label), runtimeHistQuantile(h, q.q))
			}
		}
	}
	r.Add("csdm_runtime_samples_total", 1)
}

// runtimeHistQuantile estimates a quantile of a runtime/metrics
// histogram as the upper bound of the bucket holding the q-th sample
// (the runtime's buckets are fine enough that interpolation buys
// nothing for alerting gauges). Returns 0 for an empty histogram.
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
