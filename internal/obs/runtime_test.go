package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerNilRegistry(t *testing.T) {
	stop := StartRuntimeSampler(nil, time.Millisecond)
	stop() // must be a callable no-op
	stop()
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Hour) // immediate sample only
	defer stop()

	if v, ok := r.Gauge("go_goroutines"); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v (set=%v), want >= 1", v, ok)
	}
	if v, ok := r.Gauge("go_memory_total_bytes"); !ok || v <= 0 {
		t.Fatalf("go_memory_total_bytes = %v (set=%v), want > 0", v, ok)
	}
	if _, ok := r.Gauge("go_heap_objects_bytes"); !ok {
		t.Fatal("go_heap_objects_bytes not sampled")
	}
	if got := r.Counter("csdm_runtime_samples_total"); got != 1 {
		t.Fatalf("samples_total = %d, want 1", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP go_goroutines Number of live goroutines.",
		"# TYPE go_goroutines gauge",
		`go_gc_pause_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q", want)
		}
	}
	if errs := Lint(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("runtime metrics fail lint: %v\n%s", errs, out)
	}

	stop()
	stop() // idempotent
}

func TestRuntimeSamplerTicks(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, 5*time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for r.Counter("csdm_runtime_samples_total") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler did not tick: %d samples", r.Counter("csdm_runtime_samples_total"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
