package obs

import (
	"strings"
	"testing"
)

func TestRegistryNilNoOp(t *testing.T) {
	var r *Registry
	r.Add("c", 1)
	if r.Counter("c") != 0 {
		t.Fatal("nil registry recorded a counter")
	}
	r.SetGauge("g", 1)
	if _, ok := r.Gauge("g"); ok {
		t.Fatal("nil registry recorded a gauge")
	}
	r.Observe("h", 1)
	if r.HistogramSnapshot("h").Count != 0 {
		t.Fatal("nil registry recorded an observation")
	}
	h := r.Histogram("h", DefBuckets)
	if h != nil {
		t.Fatal("nil registry returned a non-nil histogram")
	}
	h.Observe(1) // nil histogram from nil registry is a valid no-op
	r.Describe("h", "help")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote output: %q err=%v", b.String(), err)
	}
}

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	r.Add("requests_total", 0) // pre-declare
	if got := r.Counter("requests_total"); got != 0 {
		t.Fatalf("pre-declared counter = %d, want 0", got)
	}
	r.Add("requests_total", 5)
	r.Add("requests_total", 2)
	if got := r.Counter("requests_total"); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	r.SetGauge("temp", 1.5)
	r.SetGauge("temp", 2.5)
	if v, ok := r.Gauge("temp"); !ok || v != 2.5 {
		t.Fatalf("gauge = %v (set=%v), want 2.5", v, ok)
	}
	if _, ok := r.Gauge("missing"); ok {
		t.Fatal("unknown gauge reported set")
	}
}

func TestRegistryHistogramReuse(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat", DefBuckets)
	h2 := r.Histogram("lat", SizeBuckets) // existing keeps its bounds
	if h1 != h2 {
		t.Fatal("same name returned different histograms")
	}
	h1.Observe(0.001)
	if got := r.HistogramSnapshot("lat").Count; got != 1 {
		t.Fatalf("snapshot count = %d, want 1", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("q_seconds", "backend", "grid"); got != `q_seconds{backend="grid"}` {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Fatalf("Label two pairs = %q", got)
	}
	got := Label("m", "k", "a\\b\"c\nd")
	want := `m{k="a\\b\"c\nd"}`
	if got != want {
		t.Fatalf("escaped Label = %q, want %q", got, want)
	}
}

func TestSplitAndSanitize(t *testing.T) {
	fam, labels := splitName(`stage_seconds{stage="csd.build"}`)
	if fam != "stage_seconds" || labels != `stage="csd.build"` {
		t.Fatalf("splitName = %q / %q", fam, labels)
	}
	fam, labels = splitName("plain")
	if fam != "plain" || labels != "" {
		t.Fatalf("splitName plain = %q / %q", fam, labels)
	}
	for in, want := range map[string]string{
		"ckpt.saved.diagram": "ckpt_saved_diagram",
		"exec.tasks":         "exec_tasks",
		"already_ok:total":   "already_ok:total",
		"9lives":             "_lives",
		"":                   "_",
		"a-b c":              "a_b_c",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusRoundTrip is the exposition guarantee: everything
// the registry writes must pass the package's own linter, and the
// output must contain the expected families, series and histogram
// structure.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Describe("csdm_stage_duration_seconds", "Stage wall time.")
	r.Add(Label("csdm_stage_errors_total", "stage", "csd.build"), 2)
	r.Add("ckpt.saved.diagram", 1) // dotted legacy name
	r.SetGauge("go_goroutines", 12)
	r.SetGauge(Label("go_gc_pause_seconds", "quantile", "0.99"), 0.001)
	h := r.Histogram(Label("csdm_stage_duration_seconds", "stage", "csd.build"), ExpBuckets(0.001, 2, 4))
	h.Observe(0.0005)
	h.Observe(0.003)
	h.Observe(100) // overflow
	r.Histogram(Label("csdm_stage_duration_seconds", "stage", "roi.detect"), ExpBuckets(0.001, 2, 4)).Observe(0.002)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP csdm_stage_duration_seconds Stage wall time.\n",
		"# TYPE csdm_stage_duration_seconds histogram\n",
		"# TYPE csdm_stage_errors_total counter\n",
		"# TYPE go_goroutines gauge\n",
		`csdm_stage_errors_total{stage="csd.build"} 2`,
		"ckpt_saved_diagram 1",
		"go_goroutines 12",
		`go_gc_pause_seconds{quantile="0.99"} 0.001`,
		`csdm_stage_duration_seconds_bucket{stage="csd.build",le="0.001"} 1`,
		`csdm_stage_duration_seconds_bucket{stage="csd.build",le="+Inf"} 3`,
		`csdm_stage_duration_seconds_count{stage="csd.build"} 3`,
		`csdm_stage_duration_seconds_count{stage="roi.detect"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: le=0.004 must already include the 0.002 bucket.
	if !strings.Contains(out, `csdm_stage_duration_seconds_bucket{stage="csd.build",le="0.004"} 2`) {
		t.Errorf("buckets not cumulative:\n%s", out)
	}
	if errs := Lint(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("registry output fails its own linter: %v\n%s", errs, out)
	}
}

// TestWritePrometheusDeterministic pins stable ordering: two writes of
// the same registry produce identical bytes (families and series
// sorted), which CI diffing and scrape dedup both rely on.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"b_total", "a_total", "c_total"} {
		r.Add(n, 1)
	}
	r.Add(Label("d_total", "x", "2"), 1)
	r.Add(Label("d_total", "x", "1"), 1)
	var b1, b2 strings.Builder
	r.WritePrometheus(&b1)
	r.WritePrometheus(&b2)
	if b1.String() != b2.String() {
		t.Fatalf("non-deterministic output:\n%s\n---\n%s", b1.String(), b2.String())
	}
	iA := strings.Index(b1.String(), "\na_total")
	iB := strings.Index(b1.String(), "\nb_total")
	iC := strings.Index(b1.String(), "\nc_total")
	if !(iA < iB && iB < iC) {
		t.Fatalf("families not sorted:\n%s", b1.String())
	}
	x1 := strings.Index(b1.String(), `d_total{x="1"}`)
	x2 := strings.Index(b1.String(), `d_total{x="2"}`)
	if !(x1 >= 0 && x2 > x1) {
		t.Fatalf("series not sorted by labels:\n%s", b1.String())
	}
}
