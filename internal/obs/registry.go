package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the process-lifetime metrics store behind /metrics: named
// counters, gauges and histograms that accumulate across pipeline runs,
// written out in the Prometheus text exposition format (0.0.4). It is
// distinct from the per-run Trace — a Trace is created, filled and
// reported per pipeline run, while one Registry outlives every run in
// the process (the shape a serving deployment scrapes). Wire a Trace
// into a Registry with Trace.Mirror; instrument hot paths directly with
// Histogram so the per-observation cost is one pointer's worth of
// indirection and no map lookup.
//
// Metric names may be plain ("go_goroutines"), dotted legacy telemetry
// names ("ckpt.saved.diagram" — sanitized to ckpt_saved_diagram at
// exposition), or carry a label suffix built with Label
// (`stage_duration_seconds{stage="csd.build"}`), which the writer
// splits back into one metric family with labeled series.
//
// All methods are nil-safe: a nil *Registry records nothing, returns
// nil histograms (whose Observe is a no-op), and writes nothing.
type Registry struct {
	counters sync.Map // string -> *int64
	gauges   sync.Map // string -> *uint64 (math.Float64bits)
	hists    sync.Map // string -> *Histogram
	help     sync.Map // family -> string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add increments the named counter by delta, creating it at zero on
// first use (Add with delta 0 pre-declares a series so it is exposed
// before its first real event).
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	v, ok := r.counters.Load(name)
	if !ok {
		v, _ = r.counters.LoadOrStore(name, new(int64))
	}
	atomic.AddInt64(v.(*int64), delta)
}

// Counter returns the named counter's current value.
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	v, ok := r.counters.Load(name)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(v.(*int64))
}

// SetGauge records the latest value of the named gauge.
func (r *Registry) SetGauge(name string, value float64) {
	if r == nil {
		return
	}
	v, ok := r.gauges.Load(name)
	if !ok {
		v, _ = r.gauges.LoadOrStore(name, new(uint64))
	}
	atomic.StoreUint64(v.(*uint64), math.Float64bits(value))
}

// Gauge returns the named gauge's latest value and whether it was set.
func (r *Registry) Gauge(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	v, ok := r.gauges.Load(name)
	if !ok {
		return 0, false
	}
	return math.Float64frombits(atomic.LoadUint64(v.(*uint64))), true
}

// Observe records one observation on the named histogram, creating it
// with the DefBuckets ladder on first use.
func (r *Registry) Observe(name string, v float64) {
	r.Histogram(name, DefBuckets).Observe(v)
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (an existing histogram keeps its original
// bounds). Hot paths call this once at setup and hold the returned
// pointer, so each Observe skips the name lookup. On a nil registry it
// returns nil — a valid no-op histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists.Load(name)
	if !ok {
		h, _ = r.hists.LoadOrStore(name, NewHistogram(bounds))
	}
	return h.(*Histogram)
}

// HistogramSnapshot returns the named histogram's current state.
func (r *Registry) HistogramSnapshot(name string) HistogramSnapshot {
	if r == nil {
		return HistogramSnapshot{}
	}
	h, ok := r.hists.Load(name)
	if !ok {
		return HistogramSnapshot{}
	}
	return h.(*Histogram).Snapshot()
}

// Describe sets the HELP text for a metric family (the name without
// any label suffix). Families without a description get a generic one.
func (r *Registry) Describe(family, help string) {
	if r == nil {
		return
	}
	r.help.Store(family, help)
}

// Label appends a Prometheus label suffix to a metric family name:
// Label("q_seconds", "backend", "grid") is `q_seconds{backend="grid"}`.
// Values are escaped per the exposition format (backslash, quote,
// newline); kv must alternate key, value. Build labeled names once at
// setup, not per observation — the result is a fresh string.
func Label(family string, kv ...string) string {
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// splitName separates a metric name from its optional label suffix.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i > 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// sanitizeMetricName maps an arbitrary telemetry name onto the
// Prometheus metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*, replacing
// every invalid rune (the dots of legacy counter names, dashes of
// approach names) with '_'.
func sanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	valid := func(i int, c byte) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return i > 0
		default:
			return false
		}
	}
	for i := 0; i < len(s); i++ {
		if !valid(i, s[i]) {
			b := []byte(s)
			for j := range b {
				if !valid(j, b[j]) {
					b[j] = '_'
				}
			}
			return string(b)
		}
	}
	return s
}

// series is one exposed time series inside a family.
type series struct {
	labels string // raw label body, "" for none
	kind   byte   // 'c' counter, 'g' gauge, 'h' histogram
	ival   int64
	fval   float64
	hist   HistogramSnapshot
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format 0.0.4: families sorted by name, each with its HELP and TYPE
// line; histogram families expose cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`, so p50/p95/p99 are derivable by any
// Prometheus-compatible scraper via histogram_quantile.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := make(map[string][]series)
	add := func(name string, s series) {
		fam, labels := splitName(name)
		fam = sanitizeMetricName(fam)
		s.labels = labels
		fams[fam] = append(fams[fam], s)
	}
	r.counters.Range(func(k, v any) bool {
		add(k.(string), series{kind: 'c', ival: atomic.LoadInt64(v.(*int64))})
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		add(k.(string), series{kind: 'g', fval: math.Float64frombits(atomic.LoadUint64(v.(*uint64)))})
		return true
	})
	r.hists.Range(func(k, v any) bool {
		add(k.(string), series{kind: 'h', hist: v.(*Histogram).Snapshot()})
		return true
	})

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, fam := range names {
		ss := fams[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		help := "csdm telemetry metric " + fam
		if h, ok := r.help.Load(fam); ok {
			help = h.(string)
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", fam, escapeHelp(help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, typeName(ss[0].kind))
		for _, s := range ss {
			switch s.kind {
			case 'c':
				fmt.Fprintf(&b, "%s%s %d\n", fam, wrapLabels(s.labels), s.ival)
			case 'g':
				fmt.Fprintf(&b, "%s%s %s\n", fam, wrapLabels(s.labels), formatValue(s.fval))
			case 'h':
				writeHistogram(&b, fam, s.labels, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeName(kind byte) string {
	switch kind {
	case 'g':
		return "gauge"
	case 'h':
		return "histogram"
	default:
		return "counter"
	}
}

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLE merges an le label into an existing label body.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func writeHistogram(b *strings.Builder, fam, labels string, h HistogramSnapshot) {
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", fam, withLE(labels, formatValue(bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", fam, withLE(labels, "+Inf"), h.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", fam, wrapLabels(labels), formatValue(h.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", fam, wrapLabels(labels), h.Count)
}
