package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	root := tr.Start("build")
	child := root.Start("clustering")
	grand := child.Start("grid")
	grand.End()
	child.End()
	sibling := root.Start("merging")
	sibling.End()
	root.End()
	other := tr.Start("extract")
	other.End()

	snap := tr.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d root spans, want 2", len(snap.Spans))
	}
	b := snap.Spans[0]
	if b.Name != "build" || len(b.Children) != 2 {
		t.Fatalf("root span = %q with %d children, want build with 2", b.Name, len(b.Children))
	}
	if b.Children[0].Name != "clustering" || len(b.Children[0].Children) != 1 {
		t.Fatalf("first child = %q with %d children, want clustering with 1", b.Children[0].Name, len(b.Children[0].Children))
	}
	if b.Children[0].Children[0].Name != "grid" {
		t.Fatalf("grandchild = %q, want grid", b.Children[0].Children[0].Name)
	}
	if b.Running {
		t.Fatal("ended root span still reported running")
	}

	report := tr.Report()
	for _, name := range []string{"build", "clustering", "grid", "merging", "extract"} {
		if !strings.Contains(report, name) {
			t.Fatalf("report missing span %q:\n%s", name, report)
		}
	}
	// Children indent deeper than their parent.
	lines := strings.Split(report, "\n")
	indentOf := func(name string) int {
		for _, l := range lines {
			if strings.Contains(l, name) {
				return len(l) - len(strings.TrimLeft(l, " "))
			}
		}
		t.Fatalf("line for %q not found", name)
		return 0
	}
	if !(indentOf("grid") > indentOf("clustering") && indentOf("clustering") > indentOf("build")) {
		t.Fatalf("indentation does not reflect nesting:\n%s", report)
	}
}

func TestOpenSpanReportsElapsed(t *testing.T) {
	tr := New()
	sp := tr.Start("long")
	time.Sleep(5 * time.Millisecond)
	snap := tr.Snapshot()
	if !snap.Spans[0].Running {
		t.Fatal("open span not reported running")
	}
	if snap.Spans[0].Millis <= 0 {
		t.Fatalf("open span elapsed = %v, want > 0", snap.Spans[0].Millis)
	}
	sp.End()
	d := sp.Duration()
	sp.End() // double End is harmless
	if sp.Duration() != d {
		t.Fatal("second End changed the duration")
	}
}

// TestNilTraceNoOp exercises the full nil no-op path that untraced
// pipeline runs take.
func TestNilTraceNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("anything")
	if sp != nil {
		t.Fatal("nil trace returned a non-nil span")
	}
	child := sp.Start("child")
	child.Add("c", 1)
	child.End()
	sp.End()
	if sp.Name() != "" || sp.Duration() != 0 {
		t.Fatal("nil span has non-zero name or duration")
	}
	tr.Add("counter", 7)
	if tr.Counter("counter") != 0 {
		t.Fatal("nil trace recorded a counter")
	}
	tr.SetGauge("g", 1)
	if _, ok := tr.Gauge("g"); ok {
		t.Fatal("nil trace recorded a gauge")
	}
	tr.Observe("h", 0.5)
	if tr.HistogramSnapshot("h").Count != 0 {
		t.Fatal("nil trace recorded a histogram observation")
	}
	tr.Mirror(NewRegistry()) // no-op, must not panic
	if tr.Counters() != nil || tr.Gauges() != nil || tr.Histograms() != nil {
		t.Fatal("nil trace returned non-nil maps")
	}
	if tr.Report() != "" {
		t.Fatal("nil trace produced a report")
	}
	if err := tr.WriteText(nil); err != nil {
		t.Fatalf("nil trace WriteText: %v", err)
	}
	// The snapshot shape is stable even for a nil trace: empty, never
	// null, collections — so /debug/trace JSON always has the same keys.
	snap := tr.Snapshot()
	if snap.Spans == nil || len(snap.Spans) != 0 {
		t.Fatal("nil trace snapshot spans not an empty slice")
	}
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Fatal("nil trace snapshot has null collections")
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"spans":[]`, `"counters":{}`, `"gauges":{}`, `"histograms":{}`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("nil snapshot JSON %s missing %s", data, key)
		}
	}
}

// TestSnapshotStableShape pins the satellite fix: an empty live trace
// must marshal empty collections, not nulls.
func TestSnapshotStableShape(t *testing.T) {
	data, err := json.Marshal(New().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "null") {
		t.Fatalf("empty trace snapshot JSON contains null: %s", data)
	}
}

// TestTraceObserve covers the Trace-level histogram surface and its
// appearance in snapshots and the text report.
func TestTraceObserve(t *testing.T) {
	tr := New()
	for i := 1; i <= 100; i++ {
		tr.Observe("lat_seconds", float64(i)/1000)
	}
	h := tr.HistogramSnapshot("lat_seconds")
	if h.Count != 100 {
		t.Fatalf("count = %d, want 100", h.Count)
	}
	if h.P50 <= 0 || h.P95 < h.P50 || h.P99 < h.P95 {
		t.Fatalf("quantiles not ordered: p50=%g p95=%g p99=%g", h.P50, h.P95, h.P99)
	}
	all := tr.Histograms()
	if len(all) != 1 || all["lat_seconds"].Count != 100 {
		t.Fatalf("Histograms() = %+v, want one entry with count 100", all)
	}
	if rep := tr.Report(); !strings.Contains(rep, "histograms:") || !strings.Contains(rep, "lat_seconds") {
		t.Fatalf("report missing histogram section:\n%s", rep)
	}
	if tr.HistogramSnapshot("missing").Count != 0 {
		t.Fatal("unknown histogram not zero")
	}
}

// TestMirror verifies the Trace→Registry bridge: counters, gauges and
// observations recorded on a mirrored trace land in the registry too.
func TestMirror(t *testing.T) {
	tr := New()
	reg := NewRegistry()
	tr.Mirror(reg)
	tr.Add("ckpt.saved.diagram", 3)
	tr.SetGauge("csd.coverage", 0.75)
	tr.Observe("stage_seconds", 0.01)
	if got := reg.Counter("ckpt.saved.diagram"); got != 3 {
		t.Fatalf("mirrored counter = %d, want 3", got)
	}
	if v, ok := reg.Gauge("csd.coverage"); !ok || v != 0.75 {
		t.Fatalf("mirrored gauge = %v (set=%v), want 0.75", v, ok)
	}
	if got := reg.HistogramSnapshot("stage_seconds").Count; got != 1 {
		t.Fatalf("mirrored histogram count = %d, want 1", got)
	}
	// Detach: further updates stay local.
	tr.Mirror(nil)
	tr.Add("ckpt.saved.diagram", 1)
	if got := reg.Counter("ckpt.saved.diagram"); got != 3 {
		t.Fatalf("detached mirror still updated: %d", got)
	}
	if got := tr.Counter("ckpt.saved.diagram"); got != 4 {
		t.Fatalf("trace counter = %d, want 4", got)
	}
}

// TestConcurrentCounters hammers one counter and one gauge from many
// goroutines; run under -race this doubles as the data-race check for
// the extraction workers' telemetry path.
func TestConcurrentCounters(t *testing.T) {
	tr := New()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := tr.Start("worker")
			for i := 0; i < perWorker; i++ {
				tr.Add("shared", 1)
				sp.Add("via-span", 2)
				tr.SetGauge("last", float64(i))
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	if got := tr.Counter("shared"); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := tr.Counter("via-span"); got != 2*workers*perWorker {
		t.Fatalf("via-span counter = %d, want %d", got, 2*workers*perWorker)
	}
	if v, ok := tr.Gauge("last"); !ok || v != perWorker-1 {
		t.Fatalf("gauge = %v (set=%v), want %d", v, ok, perWorker-1)
	}
	if n := len(tr.Snapshot().Spans); n != workers {
		t.Fatalf("got %d root spans, want %d", n, workers)
	}
}

func TestJSONSnapshot(t *testing.T) {
	tr := New()
	sp := tr.Start("build")
	sp.Start("clustering").End()
	sp.End()
	tr.Add("csd.clusters.grown", 42)
	tr.SetGauge("csd.coverage", 0.9)

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "build" || len(snap.Spans[0].Children) != 1 {
		t.Fatalf("bad span round-trip: %+v", snap.Spans)
	}
	if snap.Counters["csd.clusters.grown"] != 42 {
		t.Fatalf("bad counter round-trip: %+v", snap.Counters)
	}
	if snap.Gauges["csd.coverage"] != 0.9 {
		t.Fatalf("bad gauge round-trip: %+v", snap.Gauges)
	}
}
