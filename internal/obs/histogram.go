package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a lock-free bucketed distribution: a fixed ladder of
// upper bounds plus an implicit +Inf overflow bucket, each backed by an
// atomic counter, with an atomically accumulated sum. Observe is wait-
// free apart from the CAS loop on the sum, allocates nothing, and is
// safe for any number of concurrent writers — the properties the hot
// paths (per-task latencies, sampled index queries) need.
//
// A nil *Histogram is a complete no-op, matching the package's nil-
// safety contract: instrumented code holds a histogram pointer
// unconditionally and never branches on whether telemetry is on beyond
// a single pointer comparison.
type Histogram struct {
	bounds []float64 // ascending upper bounds; bucket i counts v <= bounds[i]
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// DefBuckets is the default bucket ladder: exponential, base 2, from
// 1µs to ~9 minutes when observations are in seconds. It spans index
// queries (sub-microsecond) through full diagram builds with a
// relative quantile error bounded by one factor-of-two bucket.
var DefBuckets = ExpBuckets(1e-6, 2, 30)

// SizeBuckets is the default ladder for count-valued observations
// (result sizes, batch sizes): powers of two from 1 to ~8M.
var SizeBuckets = ExpBuckets(1, 2, 24)

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor. It panics on a non-positive start, a
// factor <= 1, or n < 1 — all wiring bugs.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (callers usually pass DefBuckets or SizeBuckets). The bounds
// slice is retained and must not be mutated.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. NaN observations are dropped — they would
// poison the sum while fitting no bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is the serializable point-in-time state of a
// histogram: totals, estimated quantiles, and the raw buckets (Counts
// holds per-bucket counts, not cumulative; its last entry is the +Inf
// overflow bucket).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// Snapshot captures the histogram's current state. Because bucket
// counters and the total are updated without a global lock, a snapshot
// taken mid-Observe may be off by in-flight observations; it is never
// torn within one counter.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket holding the q-th observation — the
// same estimator Prometheus's histogram_quantile uses. Observations
// are assumed non-negative (the first bucket interpolates from zero);
// a quantile landing in the +Inf overflow bucket reports the largest
// finite bound. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
