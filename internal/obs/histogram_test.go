package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	if len(b) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(DefBuckets) || !sort.Float64sAreSorted(SizeBuckets) {
		t.Fatal("default ladders not ascending")
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad ExpBuckets args did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramNilNoOp(t *testing.T) {
	var h *Histogram
	h.Observe(1.5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram has non-zero totals")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatalf("nil histogram snapshot = %+v, want zero", s)
	}
}

// TestBucketBoundaries pins the le (inclusive upper bound) semantics:
// an observation exactly on a bound lands in that bound's bucket, just
// above it lands in the next, and anything beyond the last bound lands
// in the +Inf overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1)          // bucket 0 (le=1)
	h.Observe(1.5)        // bucket 1 (le=2)
	h.Observe(2)          // bucket 1 (le=2)
	h.Observe(4)          // bucket 2 (le=4)
	h.Observe(4.1)        // overflow
	h.Observe(0)          // bucket 0
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	wantCounts := []int64{2, 2, 1, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6 (NaN dropped)", s.Count)
	}
	if math.Abs(s.Sum-12.6) > 1e-9 {
		t.Fatalf("sum = %g, want 12.6", s.Sum)
	}
}

// TestQuantileAccuracy checks the interpolated quantile estimate
// against a reference sort on random inputs: with exponential base-2
// buckets the estimate must be within one bucket (a factor of two) of
// the exact order statistic.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram(DefBuckets)
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over [10µs, 10s] — spans many buckets like real
		// latency data.
		vals[i] = 1e-5 * math.Pow(10, rng.Float64()*6)
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	s := h.Snapshot()
	for _, tc := range []struct {
		q   float64
		got float64
	}{{0.50, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
		exact := vals[int(tc.q*float64(n))-1]
		if tc.got < exact/2 || tc.got > exact*2 {
			t.Errorf("q=%.2f: estimate %g not within 2x of exact %g", tc.q, tc.got, exact)
		}
	}
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	wantSum := 0.0
	for _, v := range vals {
		wantSum += v
	}
	if math.Abs(s.Sum-wantSum)/wantSum > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile not 0")
	}
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(100) // everything overflows
	}
	if q := h.Snapshot().Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %g, want last finite bound 2", q)
	}
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(0.5)
	s := h2.Snapshot()
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q=0 -> %g, want within first bucket", q)
	}
	if q := s.Quantile(1); q < 0 || q > 1 {
		t.Fatalf("q=1 -> %g, want within first bucket", q)
	}
	if q := s.Quantile(-1); q != s.Quantile(0) {
		t.Fatalf("q<0 not clamped: %g", q)
	}
	if q := s.Quantile(2); q != s.Quantile(1) {
		t.Fatalf("q>1 not clamped: %g", q)
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines;
// under -race this is the data-race check for the hot-path telemetry,
// and the totals prove no observation is lost.
func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefBuckets)
	const workers = 16
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w+1) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	wantSum := 0.0
	for w := 1; w <= workers; w++ {
		wantSum += float64(w) * 1e-4 * perWorker
	}
	if math.Abs(h.Sum()-wantSum)/wantSum > 1e-9 {
		t.Fatalf("sum = %g, want %g (CAS loop lost updates)", h.Sum(), wantSum)
	}
	var inBuckets int64
	for _, c := range h.Snapshot().Counts {
		inBuckets += c
	}
	if inBuckets != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", inBuckets, workers*perWorker)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}
