package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"csdm/internal/load"
	"csdm/internal/poi"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

// corruption mangles one CSV data line and names the skip reason the
// lenient loader must report for it.
type corruption struct {
	reason string
	mangle func(fields []string) []string
}

// corruptEvery rewrites every n-th data line of a CSV (the header is
// left alone), rotating through the corruption flavors, and returns
// the dirty text plus the exact per-reason damage counts.
func corruptEvery(text string, n int, flavors []corruption) (string, map[string]int, int) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	want := map[string]int{}
	clean := 0
	for i := 1; i < len(lines); i++ {
		if i%n != 0 {
			clean++
			continue
		}
		c := flavors[(i/n)%len(flavors)]
		lines[i] = strings.Join(c.mangle(strings.Split(lines[i], ",")), ",")
		want[c.reason]++
	}
	return strings.Join(lines, "\n") + "\n", want, clean
}

// TestDirtyDatasetEndToEnd is the ingestion acceptance check: a
// synthetic dataset with ~5% of rows corrupted loads leniently with
// exactly the damaged rows skipped — counted by reason — and the
// pipeline mines all six approaches from what survived.
func TestDirtyDatasetEndToEnd(t *testing.T) {
	scfg := synth.DefaultConfig()
	scfg.Seed = 11
	scfg.NumPOIs = 1000
	scfg.NumPassengers = 100
	scfg.Days = 3
	city := synth.NewCity(scfg)
	w := city.GenerateWorkload()

	var poiCSV, jCSV bytes.Buffer
	if err := poi.WriteCSV(&poiCSV, city.POIs); err != nil {
		t.Fatal(err)
	}
	if err := trajectory.WriteJourneysCSV(&jCSV, w.Journeys); err != nil {
		t.Fatal(err)
	}

	// POI rows are id,name,lon,lat,minor; journey rows are
	// taxi,passenger,plon,plat,ptime,dlon,dlat,dtime. Every 20th row
	// (5%) is damaged, rotating through distinct failure flavors.
	dirtyPOIs, wantPOI, cleanPOIs := corruptEvery(poiCSV.String(), 20, []corruption{
		{"id", func(f []string) []string { f[0] = "x"; return f }},
		{"coord-nan", func(f []string) []string { f[2] = "NaN"; return f }},
		{"coord-lat-range", func(f []string) []string { f[3] = "95"; return f }},
		{"csv", func(f []string) []string { return f[:3] }},
	})
	dirtyJs, wantJ, cleanJs := corruptEvery(jCSV.String(), 20, []corruption{
		{"id", func(f []string) []string { f[0] = "x"; return f }},
		{"coord-nan", func(f []string) []string { f[2] = "NaN"; return f }},
		{"time", func(f []string) []string { f[4] = "never"; return f }},
		{"csv", func(f []string) []string { return f[:3] }},
	})

	ps, pstats, err := poi.ReadCSVOptions(strings.NewReader(dirtyPOIs), load.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	js, jstats, err := trajectory.ReadJourneysCSVOptions(strings.NewReader(dirtyJs), load.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}

	if len(ps) != cleanPOIs || pstats.Rows != cleanPOIs {
		t.Fatalf("POIs kept %d (stats %d), want %d", len(ps), pstats.Rows, cleanPOIs)
	}
	if len(js) != cleanJs || jstats.Rows != cleanJs {
		t.Fatalf("journeys kept %d (stats %d), want %d", len(js), jstats.Rows, cleanJs)
	}
	for reason, want := range wantPOI {
		if got := pstats.Skipped[reason]; got != want {
			t.Errorf("poi skipped[%s] = %d, want %d", reason, got, want)
		}
	}
	for reason, want := range wantJ {
		if got := jstats.Skipped[reason]; got != want {
			t.Errorf("journey skipped[%s] = %d, want %d", reason, got, want)
		}
	}

	p := NewPipeline(ps, js, DefaultConfig())
	res, err := p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	mined := 0
	for _, r := range res {
		if r.Err != nil {
			t.Errorf("%s on dirty data: %v", r.Approach, r.Err)
		}
		mined += len(r.Patterns)
	}
	if mined == 0 {
		t.Error("no approach mined any pattern from the surviving 95%")
	}
}
