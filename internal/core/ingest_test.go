package core

import (
	"context"
	"errors"
	"testing"

	"csdm/internal/csd"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/synth"
)

// ingestFixture builds a pipeline over the first half of a journey
// stream and returns the remaining stay points as contiguous delta
// batches, plus the full union for the bit-identity reference.
func ingestFixture(t *testing.T, nBatches int) (*Pipeline, [][]geo.Point, []geo.Point) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = 11
	cfg.NumPOIs = 500
	cfg.NumPassengers = 90
	cfg.Days = 4
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	cut := len(w.Journeys) / 2
	base, rest := w.Journeys[:cut], w.Journeys[cut:]

	all := make([]geo.Point, 0, 2*len(w.Journeys))
	for _, j := range w.Journeys {
		all = append(all, j.Pickup, j.Dropoff)
	}
	stream := make([]geo.Point, 0, 2*len(rest))
	for _, j := range rest {
		stream = append(stream, j.Pickup, j.Dropoff)
	}
	batches := make([][]geo.Point, 0, nBatches)
	for b := 0; b < nBatches; b++ {
		lo, hi := len(stream)*b/nBatches, len(stream)*(b+1)/nBatches
		batches = append(batches, stream[lo:hi])
	}
	return NewPipeline(city.POIs, base, DefaultConfig()), batches, all
}

// TestIngestBatchMatchesFullPipeline: ingesting the stream through the
// engine stage reproduces, bit for bit, a one-shot build over the full
// union of stay points.
func TestIngestBatchMatchesFullPipeline(t *testing.T) {
	p, batches, all := ingestFixture(t, 3)
	tr := obs.New()
	p.SetTrace(tr)
	ctx := context.Background()
	var got *csd.Diagram
	for bi, batch := range batches {
		d, st, err := p.IngestBatch(ctx, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if st.Generation != int64(bi+2) {
			t.Fatalf("batch %d: generation %d, want %d", bi, st.Generation, bi+2)
		}
		got = d
	}
	m, err := p.MaintainerCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation() != got.Generation {
		t.Fatalf("maintainer generation %d, diagram %d", m.Generation(), got.Generation)
	}
	if m.StayCount() != len(all) {
		t.Fatalf("stay count %d, want %d", m.StayCount(), len(all))
	}

	want := csd.Build(p.POIs(), all, p.cfg.CSD)
	if len(got.Units) != len(want.Units) {
		t.Fatalf("unit count: got %d, want %d", len(got.Units), len(want.Units))
	}
	for i := range want.Pop {
		if got.Pop[i] != want.Pop[i] {
			t.Fatalf("Pop[%d] bits differ", i)
		}
	}
	for u := range want.Units {
		if len(got.Units[u].Members) != len(want.Units[u].Members) {
			t.Fatalf("unit %d size differs", u)
		}
		for k, mbr := range want.Units[u].Members {
			if got.Units[u].Members[k] != mbr {
				t.Fatalf("unit %d member %d differs", u, k)
			}
		}
	}
	if n := tr.Counter("csdm_ingest_batches_total"); n != int64(len(batches)) {
		t.Fatalf("ingest batches counter: %d, want %d", n, len(batches))
	}
}

// TestIngestBatchFaultLeavesMaintainerIntact: an injected csd.ingest
// fault fails the batch, the maintainer stays on its previous
// generation, and a retry succeeds.
func TestIngestBatchFaultLeavesMaintainerIntact(t *testing.T) {
	p, batches, _ := ingestFixture(t, 2)
	ctx := context.Background()
	if _, _, err := p.IngestBatch(ctx, batches[0]); err != nil {
		t.Fatal(err)
	}
	m, err := p.MaintainerCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	genBefore, staysBefore := m.Generation(), m.StayCount()

	in, err := fault.Parse("csd.ingest:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	t.Cleanup(func() { fault.Activate(nil) })
	if _, _, err := p.IngestBatch(ctx, batches[1]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if m.Generation() != genBefore || m.StayCount() != staysBefore {
		t.Fatal("failed batch mutated the maintainer")
	}
	// Retry: the one-shot rule has fired, the batch must now apply.
	d, st, err := p.IngestBatch(ctx, batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if d.Generation != genBefore+1 || st.Generation != genBefore+1 {
		t.Fatalf("retry generation: %d, want %d", d.Generation, genBefore+1)
	}
}
