package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"csdm/internal/synth"
)

// determinismPipeline builds a pipeline over a seeded synthetic city
// with the given worker budget. Each call regenerates the identical
// workload, so two pipelines differ only in their execution plan.
func determinismPipeline(t testing.TB, workers int) *Pipeline {
	t.Helper()
	scfg := synth.DefaultConfig()
	scfg.Seed = 42
	scfg.NumPOIs = 2500
	scfg.NumPassengers = 400
	scfg.Days = 7
	city := synth.NewCity(scfg)
	w := city.GenerateWorkload()
	cfg := DefaultConfig()
	cfg.Workers = workers
	return NewPipeline(city.POIs, w.Journeys, cfg)
}

// TestWorkerCountDeterminism pins the execution layer's core contract:
// the pipeline's output is bit-identical for any worker budget. The
// sequential (Workers=1) run is the reference; the parallel run must
// reproduce the serialized diagram byte for byte, both annotated
// databases, and every approach's mined pattern list in the same order.
func TestWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline comparison")
	}
	seq := determinismPipeline(t, 1)
	par := determinismPipeline(t, 8)
	params := testMiningParams()

	var seqDiagram, parDiagram bytes.Buffer
	if err := seq.Diagram().Write(&seqDiagram); err != nil {
		t.Fatal(err)
	}
	if err := par.Diagram().Write(&parDiagram); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqDiagram.Bytes(), parDiagram.Bytes()) {
		t.Fatal("serialized diagrams differ between Workers=1 and Workers=8")
	}

	for _, kind := range []RecognizerKind{RecCSD, RecROI} {
		if !reflect.DeepEqual(seq.Database(kind), par.Database(kind)) {
			t.Fatalf("database %d differs between Workers=1 and Workers=8", kind)
		}
	}

	ctx := context.Background()
	seqRes, err := seq.MineAllCtx(ctx, params)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := par.MineAllCtx(ctx, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRes) != len(parRes) {
		t.Fatalf("result counts differ: %d vs %d", len(seqRes), len(parRes))
	}
	for i := range seqRes {
		if seqRes[i].Approach != parRes[i].Approach {
			t.Fatalf("result %d approach order differs: %s vs %s",
				i, seqRes[i].Approach, parRes[i].Approach)
		}
		if !reflect.DeepEqual(seqRes[i].Patterns, parRes[i].Patterns) {
			t.Errorf("%s: patterns differ between Workers=1 and Workers=8 (%d vs %d)",
				seqRes[i].Approach, len(seqRes[i].Patterns), len(parRes[i].Patterns))
		}
	}
}

// TestMineAllOrder checks that MineAllCtx reports results in
// Approaches() order regardless of which extraction finishes first.
func TestMineAllOrder(t *testing.T) {
	p := buildPipeline(t)
	res, err := p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	as := Approaches()
	if len(res) != len(as) {
		t.Fatalf("got %d results, want %d", len(res), len(as))
	}
	for i, r := range res {
		if r.Approach != as[i] {
			t.Errorf("result %d = %s, want %s", i, r.Approach, as[i])
		}
	}
}

// TestCancellation checks that a canceled context aborts the expensive
// stages with ctx.Err() instead of completing or hanging, and that the
// aborted build does not poison the lazy cells — the same pipeline must
// still build everything on a later, live context.
func TestCancellation(t *testing.T) {
	p := determinismPipeline(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := p.DiagramCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("DiagramCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := p.DatabaseCtx(ctx, RecCSD); !errors.Is(err, context.Canceled) {
		t.Fatalf("DatabaseCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := p.MineAllCtx(ctx, testMiningParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineAllCtx on canceled ctx: err = %v, want context.Canceled", err)
	}

	// The aborted attempts must not have cached partial artifacts.
	if d, err := p.DiagramCtx(context.Background()); err != nil || len(d.Units) == 0 {
		t.Fatalf("rebuild after cancellation: diagram = %v units, err = %v", d, err)
	}
	if _, err := p.MineCtx(context.Background(), CSDPM, testMiningParams()); err != nil {
		t.Fatalf("mine after cancellation: %v", err)
	}
}
