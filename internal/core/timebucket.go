package core

import (
	"time"

	"csdm/internal/trajectory"
)

// TimeBucket is one of the six weekly intervals of the Figure 14 demos.
type TimeBucket int

// The six buckets: day type × time of day.
const (
	WeekdayMorning TimeBucket = iota
	WeekdayAfternoon
	WeekdayNight
	WeekendMorning
	WeekendAfternoon
	WeekendNight
	NumTimeBuckets int = iota
)

var bucketNames = [NumTimeBuckets]string{
	"weekday morning", "weekday afternoon", "weekday night",
	"weekend morning", "weekend afternoon", "weekend night",
}

// String implements fmt.Stringer.
func (b TimeBucket) String() string {
	if int(b) < NumTimeBuckets {
		return bucketNames[b]
	}
	return "unknown"
}

// TimeBuckets lists all buckets in display order.
func TimeBuckets() []TimeBucket {
	out := make([]TimeBucket, NumTimeBuckets)
	for i := range out {
		out[i] = TimeBucket(i)
	}
	return out
}

// BucketOf classifies a timestamp: morning is 05:00–12:00, afternoon
// 12:00–18:00, night 18:00–05:00.
func BucketOf(t time.Time) TimeBucket {
	weekend := t.Weekday() == time.Saturday || t.Weekday() == time.Sunday
	var slot TimeBucket
	switch h := t.Hour(); {
	case h >= 5 && h < 12:
		slot = WeekdayMorning
	case h >= 12 && h < 18:
		slot = WeekdayAfternoon
	default:
		slot = WeekdayNight
	}
	if weekend {
		slot += 3
	}
	return slot
}

// FilterJourneys returns the journeys whose pick-up time falls into the
// bucket.
func FilterJourneys(js []trajectory.Journey, b TimeBucket) []trajectory.Journey {
	var out []trajectory.Journey
	for _, j := range js {
		if BucketOf(j.PickupTime) == b {
			out = append(out, j)
		}
	}
	return out
}
