package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/synth"
)

// TestSilentWrapperErrorsAreObservable: the no-error convenience
// wrappers no longer swallow failures invisibly — each failure bumps
// core.silent.errors and is returned by LastErr.
func TestSilentWrapperErrorsAreObservable(t *testing.T) {
	p := faultPipeline(t, DefaultConfig())
	tr := obs.New()
	p.SetTrace(tr)
	activateFault(t, "core.extract:error:*")

	if p.LastErr() != nil {
		t.Fatal("LastErr before any failure")
	}
	if ps := p.Mine(CSDPM, testMiningParams()); ps != nil {
		t.Fatalf("Mine returned %d patterns under an extraction fault", len(ps))
	}
	if p.LastErr() == nil {
		t.Fatal("Mine swallowed its error without recording it")
	}
	if got := tr.Counter("core.silent.errors"); got != 1 {
		t.Fatalf("core.silent.errors = %d, want 1", got)
	}
}

// TestMineAllCtxConcurrentReaders runs two MineAllCtx calls on one
// Pipeline from concurrent goroutines (run under -race in CI): the
// stage cells must serialize the shared-artifact builds and both
// readers must see identical results.
func TestMineAllCtxConcurrentReaders(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 1200
	cfg.NumPassengers = 120
	cfg.Days = 2
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	params := pattern.DefaultParams()
	params.Sigma = 8

	p := NewPipeline(city.POIs, w.Journeys, DefaultConfig())

	var wg sync.WaitGroup
	results := make([][]ApproachResult, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.MineAllCtx(context.Background(), params)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	for k := range results[0] {
		a, b := results[0][k], results[1][k]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s failed: %v / %v", a.Approach, a.Err, b.Err)
		}
		if !reflect.DeepEqual(a.Patterns, b.Patterns) {
			t.Fatalf("%s: concurrent readers disagree (%d vs %d patterns)",
				a.Approach, len(a.Patterns), len(b.Patterns))
		}
	}
}
