package core

import (
	"testing"

	"csdm/internal/pattern"
	"csdm/internal/synth"
)

// TestPipelineEmptyInputs exercises every stage with degenerate data:
// the pipeline must stay silent, not panic.
func TestPipelineEmptyInputs(t *testing.T) {
	params := pattern.DefaultParams()

	empty := NewPipeline(nil, nil, DefaultConfig())
	if d := empty.Diagram(); len(d.Units) != 0 {
		t.Fatal("units from nothing")
	}
	for _, a := range Approaches() {
		if ps := empty.Mine(a, params); len(ps) != 0 {
			t.Fatalf("%v mined %d patterns from nothing", a, len(ps))
		}
	}
}

func TestPipelinePOIsWithoutJourneys(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 500
	cfg.NumPassengers = 10
	cfg.Days = 1
	city := synth.NewCity(cfg)
	p := NewPipeline(city.POIs, nil, DefaultConfig())
	// The CSD builds (popularity all zero), mining yields nothing.
	d := p.Diagram()
	for _, pop := range d.Pop {
		if pop != 0 {
			t.Fatal("popularity without stay points")
		}
	}
	if ps := p.Mine(CSDPM, pattern.DefaultParams()); len(ps) != 0 {
		t.Fatal("patterns without journeys")
	}
}

func TestPipelineJourneysWithoutPOIs(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 200 // city needs some POIs to build sites
	cfg.NumPassengers = 50
	cfg.Days = 2
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	p := NewPipeline(nil, w.Journeys, DefaultConfig())
	// Without POIs, no stay can be annotated and no pattern can form.
	for _, st := range p.Database(RecCSD) {
		for _, sp := range st.Stays {
			if !sp.S.IsEmpty() {
				t.Fatal("annotation without POIs")
			}
		}
	}
	if ps := p.Mine(CSDPM, pattern.DefaultParams()); len(ps) != 0 {
		t.Fatal("patterns without POIs")
	}
}

// TestUseDiagramWins confirms a preloaded diagram short-circuits
// construction.
func TestUseDiagramWins(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 800
	cfg.NumPassengers = 60
	cfg.Days = 2
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()

	built := NewPipeline(city.POIs, w.Journeys, DefaultConfig()).Diagram()
	p := NewPipeline(city.POIs, w.Journeys, DefaultConfig())
	p.UseDiagram(built)
	if p.Diagram() != built {
		t.Fatal("UseDiagram did not take effect")
	}
}

// TestMineAllConcurrentSafe runs MineAll twice and cross-checks results
// for determinism under the concurrent extraction path.
func TestMineAllConcurrentSafe(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 1500
	cfg.NumPassengers = 150
	cfg.Days = 3
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	params := pattern.DefaultParams()
	params.Sigma = 10

	p := NewPipeline(city.POIs, w.Journeys, DefaultConfig())
	a := p.MineAll(params)
	b := p.MineAll(params)
	for name := range a {
		if len(a[name]) != len(b[name]) {
			t.Fatalf("%s nondeterministic: %d vs %d patterns", name, len(a[name]), len(b[name]))
		}
	}
}
