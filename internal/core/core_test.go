package core

import (
	"testing"
	"time"

	"csdm/internal/metrics"
	"csdm/internal/pattern"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

// buildPipeline generates a small synthetic city and wraps it in a
// pipeline. Shared across tests (read-only use).
func buildPipeline(t testing.TB) *Pipeline {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.NumPOIs = 4000
	cfg.NumPassengers = 600
	cfg.Days = 7
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	return NewPipeline(city.POIs, w.Journeys, DefaultConfig())
}

// testMiningParams scales σ to the small test workload.
func testMiningParams() pattern.Params {
	p := pattern.DefaultParams()
	p.Sigma = 25
	return p
}

func TestApproachNames(t *testing.T) {
	want := []string{"CSD-PM", "ROI-PM", "CSD-Splitter", "ROI-Splitter", "CSD-SDBSCAN", "ROI-SDBSCAN"}
	got := Approaches()
	if len(got) != len(want) {
		t.Fatalf("approaches = %d", len(got))
	}
	for i, a := range got {
		if a.String() != want[i] {
			t.Errorf("approach %d = %q, want %q", i, a, want[i])
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p := buildPipeline(t)
	params := testMiningParams()

	d := p.Diagram()
	if len(d.Units) == 0 {
		t.Fatal("no semantic units built")
	}
	if p.ROIRecognizer().NumRegions() == 0 {
		t.Fatal("no hot regions detected")
	}
	if len(p.Database(RecCSD)) == 0 || len(p.Database(RecROI)) == 0 {
		t.Fatal("empty annotated databases")
	}

	results := p.MineAll(params)
	if len(results) != 6 {
		t.Fatalf("results = %d approaches", len(results))
	}
	csdpm := metrics.Summarize(results["CSD-PM"])
	if csdpm.NumPatterns == 0 {
		t.Fatal("CSD-PM found no patterns")
	}
	t.Logf("pipeline %s", p.Describe())
	for name, ps := range results {
		s := metrics.Summarize(ps)
		t.Logf("%-13s #patterns=%3d coverage=%5d ss=%6.1f sc=%.3f",
			name, s.NumPatterns, s.Coverage, s.MeanSparsity, s.MeanConsistency)
	}
}

func TestCSDConsistencyBeatsROI(t *testing.T) {
	// The headline Figure 10 claim: CSD-based approaches keep semantic
	// consistency near 1 while ROI-based ones are lower and wider.
	p := buildPipeline(t)
	params := testMiningParams()
	results := p.MineAll(params)

	for _, ext := range []string{"PM", "Splitter", "SDBSCAN"} {
		csdRes := metrics.Summarize(results["CSD-"+ext])
		roiRes := metrics.Summarize(results["ROI-"+ext])
		if csdRes.NumPatterns == 0 {
			t.Errorf("CSD-%s found no patterns", ext)
			continue
		}
		// The separation grows with workload size; at test scale require
		// only that CSD is not meaningfully below ROI.
		if roiRes.NumPatterns > 0 && csdRes.MeanConsistency < roiRes.MeanConsistency-0.005 {
			t.Errorf("CSD-%s consistency %.3f < ROI-%s %.3f",
				ext, csdRes.MeanConsistency, ext, roiRes.MeanConsistency)
		}
		if csdRes.MeanConsistency < 0.95 {
			t.Errorf("CSD-%s consistency %.3f, paper reports ≥0.98", ext, csdRes.MeanConsistency)
		}
	}
}

func TestCSDSparsityBeatsROI(t *testing.T) {
	// Figure 9's claim: CSD-based approaches produce denser patterns
	// (lower spatial sparsity) than their ROI counterparts, and ROI
	// exhibits the sparse tail.
	p := buildPipeline(t)
	results := p.MineAll(testMiningParams())
	for _, ext := range []string{"PM", "Splitter", "SDBSCAN"} {
		csdRes := metrics.Summarize(results["CSD-"+ext])
		roiRes := metrics.Summarize(results["ROI-"+ext])
		if csdRes.NumPatterns == 0 || roiRes.NumPatterns == 0 {
			t.Errorf("%s: no patterns (CSD %d, ROI %d)", ext, csdRes.NumPatterns, roiRes.NumPatterns)
			continue
		}
		if csdRes.MeanSparsity >= roiRes.MeanSparsity {
			t.Errorf("CSD-%s sparsity %.1f should be below ROI-%s %.1f",
				ext, csdRes.MeanSparsity, ext, roiRes.MeanSparsity)
		}
	}
}

func TestSupportThresholdTradeoff(t *testing.T) {
	// Figure 11's trend: raising σ lowers pattern count and coverage.
	p := buildPipeline(t)
	params := testMiningParams()
	low := metrics.Summarize(p.Mine(CSDPM, params))
	params.Sigma *= 3
	high := metrics.Summarize(p.Mine(CSDPM, params))
	if high.NumPatterns > low.NumPatterns {
		t.Errorf("σ↑ should not raise #patterns: %d -> %d", low.NumPatterns, high.NumPatterns)
	}
	if high.Coverage > low.Coverage {
		t.Errorf("σ↑ should not raise coverage: %d -> %d", low.Coverage, high.Coverage)
	}
}

func TestDatabasesAreCached(t *testing.T) {
	p := buildPipeline(t)
	db1 := p.Database(RecCSD)
	db2 := p.Database(RecCSD)
	if &db1[0] != &db2[0] {
		t.Fatal("Database(RecCSD) rebuilt instead of cached")
	}
	d1, d2 := p.Diagram(), p.Diagram()
	if d1 != d2 {
		t.Fatal("Diagram rebuilt instead of cached")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		t    time.Time
		want TimeBucket
	}{
		{time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC), WeekdayMorning},    // Monday
		{time.Date(2015, 4, 6, 14, 0, 0, 0, time.UTC), WeekdayAfternoon}, // Monday
		{time.Date(2015, 4, 6, 22, 0, 0, 0, time.UTC), WeekdayNight},
		{time.Date(2015, 4, 6, 2, 0, 0, 0, time.UTC), WeekdayNight},       // pre-dawn
		{time.Date(2015, 4, 11, 9, 0, 0, 0, time.UTC), WeekendMorning},    // Saturday
		{time.Date(2015, 4, 12, 15, 0, 0, 0, time.UTC), WeekendAfternoon}, // Sunday
		{time.Date(2015, 4, 11, 19, 0, 0, 0, time.UTC), WeekendNight},
	}
	for _, c := range cases {
		if got := BucketOf(c.t); got != c.want {
			t.Errorf("BucketOf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTimeBucketNames(t *testing.T) {
	if len(TimeBuckets()) != 6 {
		t.Fatal("want 6 buckets")
	}
	if WeekdayMorning.String() != "weekday morning" || WeekendNight.String() != "weekend night" {
		t.Fatal("bucket names wrong")
	}
	if TimeBucket(99).String() != "unknown" {
		t.Fatal("invalid bucket should stringify to unknown")
	}
}

func TestFilterJourneys(t *testing.T) {
	mon8 := time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)
	sat20 := time.Date(2015, 4, 11, 20, 0, 0, 0, time.UTC)
	js := []trajectory.Journey{
		{PickupTime: mon8},
		{PickupTime: sat20},
		{PickupTime: mon8.Add(time.Hour)},
	}
	if got := FilterJourneys(js, WeekdayMorning); len(got) != 2 {
		t.Fatalf("weekday morning = %d, want 2", len(got))
	}
	if got := FilterJourneys(js, WeekendNight); len(got) != 1 {
		t.Fatalf("weekend night = %d, want 1", len(got))
	}
	if got := FilterJourneys(js, WeekendAfternoon); len(got) != 0 {
		t.Fatalf("weekend afternoon = %d, want 0", len(got))
	}
}
