package core

import (
	"context"
	"time"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/stage"
)

// Streaming ingestion: the pipeline's incremental face. Where the
// batch pipeline builds the diagram once from the full journey log,
// ingestion seeds a csd.Maintainer from the initial log (the
// "csd.maintain" stage, sharing the stays cell and every engine
// middleware — spans, stage deadlines, checkpoint-era telemetry) and
// then applies stay-point delta batches one at a time. Each applied
// batch runs as its own one-shot engine stage guarded by the
// "csd.ingest" fault site, so an injected error or deadline hits one
// batch, leaves the maintainer on its previous generation, and the
// stream can retry — the same containment story the serving layer gives
// requests.

// MaintainerCtx returns the pipeline's diagram maintainer, seeding it
// from the journey log's stay points on first use. The maintainer's
// initial diagram (generation 1) is bit-identical to DiagramCtx's
// one-shot build on the same inputs.
func (p *Pipeline) MaintainerCtx(ctx context.Context) (*csd.Maintainer, error) {
	return p.maintainer.Get(ctx)
}

// IngestBatch applies one delta batch of stay points through the
// maintainer as a one-shot "csd.ingest" stage (own span, own
// Config.StageTimeout deadline, "csd.ingest" fault site) and returns
// the new generation's diagram. On error the maintainer's retained
// state is unchanged: a timed-out or fault-injected batch may simply be
// retried.
//
// Telemetry (when a trace is attached): csdm_ingest_batches_total,
// csdm_ingest_stays_total, csdm_ingest_dirty_units_total and
// csdm_ingest_reused_units_total counters, and the
// csdm_ingest_delta_build_seconds histogram.
func (p *Pipeline) IngestBatch(ctx context.Context, batch []geo.Point) (*csd.Diagram, csd.DeltaStats, error) {
	m, err := p.MaintainerCtx(ctx)
	if err != nil {
		return nil, csd.DeltaStats{}, err
	}
	type applied struct {
		d  *csd.Diagram
		st csd.DeltaStats
	}
	start := time.Now()
	res, err := stage.Run(p.graph, ctx,
		stage.Decl{Name: "csd.ingest", Site: "csd.ingest"},
		func(env stage.Env) (applied, error) {
			d, st, aerr := m.ApplyDelta(env, batch)
			return applied{d, st}, aerr
		})
	if err != nil {
		p.trace.Add("csdm_ingest_failures_total", 1)
		return nil, csd.DeltaStats{}, err
	}
	p.trace.Add("csdm_ingest_batches_total", 1)
	p.trace.Add("csdm_ingest_stays_total", int64(res.st.BatchStays))
	p.trace.Add("csdm_ingest_dirty_units_total", int64(res.st.DirtyUnits))
	p.trace.Add("csdm_ingest_reused_units_total", int64(res.st.ReusedUnits))
	p.trace.Observe("csdm_ingest_delta_build_seconds", time.Since(start).Seconds())
	p.trace.SetGauge("csdm_ingest_generation", float64(res.st.Generation))
	return res.d, res.st, nil
}
