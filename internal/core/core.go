// Package core composes the full Pervasive Miner pipeline (Figure 2) and
// the five competitor systems of §5. A Pipeline owns the shared inputs
// (POI dataset, taxi journeys) and declares the shared expensive
// artifacts — the City Semantic Diagram, the ROI hot regions, and the
// two annotated trajectory databases — as memoized stages on an
// internal/stage graph (stays → diagram/roi → dbCSD/dbROI → six
// extractions), so that parameter sweeps over σ/ρ/δ_t re-run only the
// extraction stage, exactly as the paper's experiments do.
//
// The stage engine supplies every cross-cutting concern as middleware:
// telemetry spans, per-stage deadlines (Config.StageTimeout), fault
// sites, checkpoint resume/save (SetCheckpoints), and retry-safe
// memoization. core declares the graph and the mining policy — the
// degraded-fallback ladder and the per-approach failure isolation of
// MineAll — and nothing else.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"csdm/internal/ckpt"
	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// RecognizerKind selects the semantic-recognition stage.
type RecognizerKind int

// The recognizer kinds of §5.
const (
	// RecCSD is City Semantic Diagram recognition (Algorithm 3).
	RecCSD RecognizerKind = iota
	// RecROI is the hot-region baseline of [21].
	RecROI
)

// ExtractorKind selects the pattern-extraction stage.
type ExtractorKind int

// The extractor kinds of §5.
const (
	// ExtPM is Pervasive Miner's CounterpartCluster (Algorithm 4).
	ExtPM ExtractorKind = iota
	// ExtSplitter is the Mean-Shift baseline of [17].
	ExtSplitter
	// ExtSDBSCAN is the DBSCAN baseline of [19].
	ExtSDBSCAN
)

// Approach is one of the six implementations compared in §5.
type Approach struct {
	Recognizer RecognizerKind
	Extractor  ExtractorKind
}

// The six approaches, named as in the paper.
var (
	CSDPM       = Approach{RecCSD, ExtPM}
	ROIPM       = Approach{RecROI, ExtPM}
	CSDSplitter = Approach{RecCSD, ExtSplitter}
	ROISplitter = Approach{RecROI, ExtSplitter}
	CSDSDBSCAN  = Approach{RecCSD, ExtSDBSCAN}
	ROISDBSCAN  = Approach{RecROI, ExtSDBSCAN}
)

// Approaches lists all six systems in the paper's order.
func Approaches() []Approach {
	return []Approach{CSDPM, ROIPM, CSDSplitter, ROISplitter, CSDSDBSCAN, ROISDBSCAN}
}

// String implements fmt.Stringer with the paper's naming.
func (a Approach) String() string {
	rec := "CSD"
	if a.Recognizer == RecROI {
		rec = "ROI"
	}
	switch a.Extractor {
	case ExtSplitter:
		return rec + "-Splitter"
	case ExtSDBSCAN:
		return rec + "-SDBSCAN"
	default:
		return rec + "-PM"
	}
}

// ApproachByName resolves one of the paper's six approach names
// (e.g. "CSD-PM", "ROI-SDBSCAN").
func ApproachByName(name string) (Approach, error) {
	for _, a := range Approaches() {
		if a.String() == name {
			return a, nil
		}
	}
	return Approach{}, fmt.Errorf("unknown approach %q", name)
}

// Config bundles the construction parameters of the shared stages.
type Config struct {
	// CSD parameterizes diagram construction (§4.1 defaults).
	CSD csd.Params
	// ROI parameterizes the hot-region baseline.
	ROI recognize.ROIParams
	// Chain parameterizes journey chaining (§5).
	Chain trajectory.ChainParams
	// Workers bounds the parallelism of every pipeline stage. Zero or
	// negative means runtime.NumCPU(); one runs the whole pipeline
	// sequentially. Every output is identical for any worker count.
	Workers int
	// Index selects the spatial-index backend of every stage.
	Index index.Kind
	// StageTimeout bounds each expensive stage — diagram construction,
	// database annotation, per-approach extraction — with its own
	// deadline. A stage that overruns fails with an error wrapping
	// context.DeadlineExceeded while the run's own context stays live,
	// so one stuck stage cannot hang a whole MineAll. Zero disables
	// stage deadlines.
	StageTimeout time.Duration
	// DegradedFallback lets MineAll degrade instead of fail: when the
	// CSD build or its annotation errors out (or hits StageTimeout),
	// the CSD-recognizer approaches rerun on the ROI hot-region
	// database and their results are flagged Degraded, trading the
	// paper's recognition quality for availability.
	DegradedFallback bool
}

// ExecOptions derives the execution-layer option bundle every stage
// receives from the config.
func (c Config) ExecOptions() exec.Options {
	return exec.Options{Workers: c.Workers, Index: c.Index}
}

// DefaultConfig returns the paper's default construction parameters,
// with one adaptation: KeepSingletons is enabled so that POIs left over
// by popularity clustering still participate in recognition as
// singleton units. The paper's 1.2M-POI dataset is two orders of
// magnitude denser than laptop-scale workloads, so its units cover the
// city wall to wall; at lower densities the paper-exact setting leaves
// anchor neighborhoods without any unit and recognition degrades to
// "unknown" exactly where traffic is highest.
func DefaultConfig() Config {
	c := Config{
		CSD:     csd.DefaultParams(),
		ROI:     recognize.DefaultROIParams(),
		Chain:   trajectory.DefaultChainParams(),
		Workers: runtime.NumCPU(),
		Index:   index.KindGrid,
	}
	c.CSD.KeepSingletons = true
	return c
}

// Pipeline owns the inputs and the declared stage graph over the
// shared artifacts.
type Pipeline struct {
	cfg      Config
	pois     []poi.POI
	journeys []trajectory.Journey

	// arenas is the pipeline-lifetime scratch pool every stage shares
	// (via exec.Options.Arenas on stage.Env): parallel regions check
	// per-slot arenas out of it, so scratch buffers grown by one stage
	// invocation are reused by the next instead of reallocated.
	arenas *exec.ArenaPool

	// trace is the optional telemetry sink (nil-safe no-op when absent).
	trace *obs.Trace
	// store is the optional checkpoint store (nil disables resume/save).
	store stage.Store

	graph      *stage.Graph
	stays      *stage.Cell[[]geo.Point]
	diagram    *stage.Cell[*csd.Diagram]
	maintainer *stage.Cell[*csd.Maintainer]
	roi        *stage.Cell[*recognize.ROIRecognizer]
	dbCSD      *stage.Cell[[]trajectory.SemanticTrajectory]
	dbROI      *stage.Cell[[]trajectory.SemanticTrajectory]

	// lastErr keeps the most recent error a no-error convenience
	// wrapper swallowed, for LastErr.
	lastErr atomic.Pointer[error]
}

// SetTrace attaches a telemetry trace; every stage built afterwards
// records spans and counters on it. Attach before the first Diagram,
// Database or Mine call — already-built artifacts are not re-traced.
func (p *Pipeline) SetTrace(t *obs.Trace) { p.trace = t }

// Trace returns the attached telemetry trace (nil when tracing is off).
func (p *Pipeline) Trace() *obs.Trace { return p.trace }

// SetCheckpoints attaches a checkpoint store (e.g. *ckpt.Manager): the
// stages that declare an artifact — the diagram and the two annotated
// databases — resume from it when a valid checkpoint is there and save
// to it after building. Attach before the first build; already-built
// artifacts are neither re-loaded nor saved.
func (p *Pipeline) SetCheckpoints(s stage.Store) { p.store = s }

// NewPipeline prepares a pipeline over the given POI dataset and taxi
// Stays derives the stay-point sequence from a journey log: pickup
// then dropoff per journey, in journey order. This ordering IS the
// canonical global stay-id assignment every bit-identity argument in
// the codebase refers to — the monolithic pipeline's stays stage, the
// incremental maintainer's append contract and the sharded build's
// out-of-core spill all produce or consume exactly this sequence.
func Stays(journeys []trajectory.Journey) []geo.Point {
	out := make([]geo.Point, 0, 2*len(journeys))
	for _, j := range journeys {
		out = append(out, j.Pickup, j.Dropoff)
	}
	return out
}

// journey log, declaring the shared-artifact stage graph:
//
//	stays → csd.build → recognize.CSD
//	stays → roi.detect → recognize.ROI
//
// with the six per-approach extractions running as one-shot stages on
// top (MineCtx / MineAllCtx).
func NewPipeline(pois []poi.POI, journeys []trajectory.Journey, cfg Config) *Pipeline {
	p := &Pipeline{cfg: cfg, pois: pois, journeys: journeys, arenas: exec.NewArenaPool()}
	// The config closure is re-read on every stage run, so SetTrace and
	// SetCheckpoints may be wired after construction.
	p.graph = stage.NewGraph(func() stage.Config {
		opt := p.cfg.ExecOptions()
		opt.Arenas = p.arenas
		return stage.Config{
			Trace:         p.trace,
			Opt:           opt,
			StageTimeout:  p.cfg.StageTimeout,
			Store:         p.store,
			CounterPrefix: "core.stage",
		}
	})

	p.stays = stage.Add(p.graph, stage.Decl{Name: "stays"},
		func(stage.Env) ([]geo.Point, error) {
			return Stays(p.journeys), nil
		})

	p.diagram = stage.Add(p.graph, stage.Decl{
		Name:     "csd.build",
		Deps:     []string{"stays"},
		Artifact: "diagram",
		File:     ckpt.DiagramFile,
	}, func(env stage.Env) (*csd.Diagram, error) {
		stays, err := p.stays.Get(env.Run)
		if err != nil {
			return nil, err
		}
		return csd.BuildEnv(env, p.pois, stays, p.cfg.CSD)
	}).Checkpoint(stage.Codec[*csd.Diagram]{
		Encode: func(w io.Writer, d *csd.Diagram) error { return d.Write(w) },
		Decode: csd.Read,
	})

	p.maintainer = stage.Add(p.graph, stage.Decl{
		Name: "csd.maintain",
		Deps: []string{"stays"},
	}, func(env stage.Env) (*csd.Maintainer, error) {
		stays, err := p.stays.Get(env.Run)
		if err != nil {
			return nil, err
		}
		return csd.NewMaintainerEnv(env, p.pois, stays, p.cfg.CSD)
	})

	p.roi = stage.Add(p.graph, stage.Decl{
		Name: "roi.detect",
		Deps: []string{"stays"},
	}, func(env stage.Env) (*recognize.ROIRecognizer, error) {
		stays, err := p.stays.Get(env.Run)
		if err != nil {
			return nil, err
		}
		return recognize.NewROIRecognizerEnv(env, stays, p.pois, p.cfg.ROI), nil
	})

	dbCodec := stage.Codec[[]trajectory.SemanticTrajectory]{
		Encode: trajectory.WriteSemanticJSON,
		Decode: trajectory.ReadSemanticJSON,
	}
	p.dbCSD = stage.Add(p.graph, stage.Decl{
		Name:     "recognize.CSD",
		Deps:     []string{"csd.build"},
		Artifact: "db-csd",
		File:     ckpt.DBFile("db-csd"),
	}, func(env stage.Env) ([]trajectory.SemanticTrajectory, error) {
		d, err := p.diagram.Get(env.Run)
		if err != nil {
			return nil, err
		}
		return recognize.AnnotateJourneysEnv(env, p.journeys, p.cfg.Chain, recognize.NewCSDRecognizer(d))
	}).Checkpoint(dbCodec)

	p.dbROI = stage.Add(p.graph, stage.Decl{
		Name:     "recognize.ROI",
		Deps:     []string{"roi.detect"},
		Artifact: "db-roi",
		File:     ckpt.DBFile("db-roi"),
	}, func(env stage.Env) ([]trajectory.SemanticTrajectory, error) {
		r, err := p.roi.Get(env.Run)
		if err != nil {
			return nil, err
		}
		return recognize.AnnotateJourneysEnv(env, p.journeys, p.cfg.Chain, r)
	}).Checkpoint(dbCodec)

	return p
}

// noteSilent records an error a no-error convenience wrapper is about
// to swallow: counted on the trace as core.silent.errors and kept for
// LastErr, so the failure stays observable.
func (p *Pipeline) noteSilent(err error) {
	if err == nil {
		return
	}
	p.trace.Add("core.silent.errors", 1)
	p.lastErr.Store(&err)
}

// LastErr returns the most recent error swallowed by one of the
// no-error convenience wrappers (StayPoints, Diagram, ROIRecognizer,
// Database, Mine, MineAll); nil when none has failed. Every swallowed
// error is also counted on the trace as core.silent.errors. Callers
// that need real error handling should prefer the Ctx variants — this
// accessor exists so a wrapper's failure is diagnosable instead of an
// unexplained nil result.
func (p *Pipeline) LastErr() error {
	if e := p.lastErr.Load(); e != nil {
		return *e
	}
	return nil
}

// Stages returns the introspection records of the declared stage graph
// (name, dependencies, fault site, checkpoint artifact and file, build
// origin, last build error), in declaration order.
func (p *Pipeline) Stages() []stage.Info { return p.graph.Stages() }

// StayPoints returns the pick-up/drop-off locations of every journey
// (built once; the popularity model and ROI detection share them). A
// build failure surfaces via LastErr and core.silent.errors.
func (p *Pipeline) StayPoints() []geo.Point {
	stays, err := p.stays.Get(context.Background())
	p.noteSilent(err)
	return stays
}

// Diagram returns the City Semantic Diagram, building it on first use.
// A build failure yields nil and surfaces via LastErr and the
// core.silent.errors counter; use DiagramCtx to handle it directly.
func (p *Pipeline) Diagram() *csd.Diagram {
	d, err := p.DiagramCtx(context.Background())
	p.noteSilent(err)
	return d
}

// DiagramCtx is Diagram under a cancellation context: a canceled ctx
// aborts an in-flight build with ctx.Err() without poisoning the cell —
// a later call rebuilds. With Config.StageTimeout set the build runs
// under its own stage deadline.
func (p *Pipeline) DiagramCtx(ctx context.Context) (*csd.Diagram, error) {
	return p.diagram.Get(ctx)
}

// DiagramOrigin reports how the diagram materialized (built, resumed
// from a checkpoint, installed via UseDiagram, or not yet built).
func (p *Pipeline) DiagramOrigin() stage.Origin { return p.diagram.Origin() }

// UseDiagram installs a pre-built (e.g. deserialized) diagram instead
// of constructing one. It must be called before the first Diagram or
// Database call; afterwards it has no effect.
func (p *Pipeline) UseDiagram(d *csd.Diagram) { p.diagram.Set(d) }

// databaseCell maps a recognizer kind to its database stage.
func (p *Pipeline) databaseCell(kind RecognizerKind) *stage.Cell[[]trajectory.SemanticTrajectory] {
	if kind == RecROI {
		return p.dbROI
	}
	return p.dbCSD
}

// UseDatabase installs a pre-built (e.g. checkpoint-resumed) annotated
// database for the given recognizer kind, skipping chaining and
// annotation. It must be called before the first Database or Mine
// call for that kind; afterwards it has no effect.
func (p *Pipeline) UseDatabase(kind RecognizerKind, db []trajectory.SemanticTrajectory) {
	p.databaseCell(kind).Set(db)
}

// DatabaseArtifact returns the checkpoint artifact name of the kind's
// database stage, as declared on the stage graph ("db-csd", "db-roi").
func (p *Pipeline) DatabaseArtifact(kind RecognizerKind) string {
	return p.databaseCell(kind).Decl().Artifact
}

// DatabaseOrigin reports how the kind's database materialized.
func (p *Pipeline) DatabaseOrigin(kind RecognizerKind) stage.Origin {
	return p.databaseCell(kind).Origin()
}

// ROIRecognizer returns the hot-region baseline recognizer, building it
// on first use. A build failure surfaces via LastErr.
func (p *Pipeline) ROIRecognizer() *recognize.ROIRecognizer {
	r, err := p.roi.Get(context.Background())
	p.noteSilent(err)
	return r
}

// Database returns the annotated semantic-trajectory database for the
// given recognizer kind, building it on first use. A build failure
// yields nil and surfaces via LastErr and the core.silent.errors
// counter; use DatabaseCtx to handle it directly.
func (p *Pipeline) Database(kind RecognizerKind) []trajectory.SemanticTrajectory {
	db, err := p.DatabaseCtx(context.Background(), kind)
	p.noteSilent(err)
	return db
}

// DatabaseCtx is Database under a cancellation context; annotation runs
// on the configured worker pool, under its own stage deadline when
// Config.StageTimeout is set (the upstream diagram or ROI detection is
// its own stage with its own deadline). A canceled ctx aborts with
// ctx.Err() and leaves the artifact unbuilt.
func (p *Pipeline) DatabaseCtx(ctx context.Context, kind RecognizerKind) ([]trajectory.SemanticTrajectory, error) {
	return p.databaseCell(kind).Get(ctx)
}

// extractor instantiates the extraction stage for an approach.
func extractor(kind ExtractorKind) pattern.Extractor {
	switch kind {
	case ExtSplitter:
		return pattern.NewSplitter()
	case ExtSDBSCAN:
		return pattern.NewSDBSCAN()
	default:
		return pattern.NewCounterpartCluster()
	}
}

// Mine runs one approach end to end under the given mining parameters.
// A failure yields nil and surfaces via LastErr and the
// core.silent.errors counter; use MineCtx to handle it directly.
func (p *Pipeline) Mine(a Approach, params pattern.Params) []pattern.Pattern {
	ps, err := p.MineCtx(context.Background(), a, params)
	p.noteSilent(err)
	return ps
}

// extract runs one approach's extraction as a one-shot engine stage —
// span "stage.extract.<approach>", the approach's own deadline under
// Config.StageTimeout, and the "core.extract" fault site guarding the
// entry.
func (p *Pipeline) extract(ctx context.Context, a Approach, db []trajectory.SemanticTrajectory, params pattern.Params) ([]pattern.Pattern, error) {
	ps, err := stage.Run(p.graph, ctx,
		stage.Decl{Name: "extract." + a.String(), Site: "core.extract"},
		func(env stage.Env) ([]pattern.Pattern, error) {
			return extractor(a.Extractor).Extract(env, db, params)
		})
	if err == nil && p.trace != nil {
		p.trace.Add(obs.Label("csdm_patterns_mined_total", "approach", a.String()), int64(len(ps)))
	}
	return ps, err
}

// MineCtx is Mine under a cancellation context: recognition and
// extraction run on the configured worker pool and a canceled ctx
// aborts with ctx.Err(). With Config.DegradedFallback set, a CSD
// approach whose database fails falls back to the ROI database
// (counted as core.approach.degraded), same as in MineAllCtx.
func (p *Pipeline) MineCtx(ctx context.Context, a Approach, params pattern.Params) ([]pattern.Pattern, error) {
	db, err := p.DatabaseCtx(ctx, a.Recognizer)
	if err != nil && a.Recognizer == RecCSD && p.cfg.DegradedFallback && ctx.Err() == nil {
		if roiDB, roiErr := p.DatabaseCtx(ctx, RecROI); roiErr == nil {
			p.trace.Add("core.approach.degraded", 1)
			if p.trace != nil {
				p.trace.Add(obs.Label("csdm_mine_degraded_total", "approach", a.String()), 1)
			}
			db, err = roiDB, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return p.extract(ctx, a, db, params)
}

// ApproachResult pairs an approach with its mined patterns. Since a
// MineAll no longer aborts on the first failing approach, the result
// carries that approach's own error and degradation state.
type ApproachResult struct {
	Approach Approach
	Patterns []pattern.Pattern
	// Err is the approach's own failure (nil on success). One failed
	// approach never hides the other five.
	Err error
	// Degraded marks a CSD approach that fell back to ROI recognition
	// under Config.DegradedFallback after the CSD artifacts failed.
	Degraded bool
}

// MineAll runs all six approaches under the same mining parameters; the
// result is keyed by the approach's paper name. Failed approaches are
// omitted (each surfaces via LastErr and core.silent.errors); degraded
// ones are included under their original name.
func (p *Pipeline) MineAll(params pattern.Params) map[string][]pattern.Pattern {
	res, err := p.MineAllCtx(context.Background(), params)
	p.noteSilent(err)
	out := make(map[string][]pattern.Pattern, len(res))
	for _, r := range res {
		if r.Err == nil {
			out[r.Approach.String()] = r.Patterns
		}
	}
	return out
}

// shared is the per-MineAll snapshot of the two annotated databases.
// Building them exactly once up front keeps the fan-out from racing on
// the stage cells and — deliberately — from retrying a failed build six
// times: within one MineAll, a database either exists or is failed.
type shared struct {
	db  map[RecognizerKind][]trajectory.SemanticTrajectory
	err map[RecognizerKind]error
}

// MineAllCtx runs all six approaches under the shared worker budget:
// the shared recognition artifacts are built first, then the six
// extractions fan out over the engine (stage.RunEach) and the results
// come back in Approaches() order for stable experiment output.
//
// Failure is isolated per approach: a failed or timed-out CSD build
// fails (or, with Config.DegradedFallback, degrades) only the three
// CSD approaches, a panicking extraction worker fails only its own
// approach, and everything that succeeded is returned with a nil Err.
// The returned error is non-nil only when the run's own context is
// canceled — the one failure that genuinely applies to every approach.
func (p *Pipeline) MineAllCtx(ctx context.Context, params pattern.Params) ([]ApproachResult, error) {
	sh := shared{
		db:  make(map[RecognizerKind][]trajectory.SemanticTrajectory),
		err: make(map[RecognizerKind]error),
	}
	for _, kind := range []RecognizerKind{RecCSD, RecROI} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sh.db[kind], sh.err[kind] = p.DatabaseCtx(ctx, kind)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	as := Approaches()
	opt := p.cfg.ExecOptions()
	p.trace.SetGauge("index.backend", float64(opt.Index))
	exec.Note(p.trace, len(as), exec.Workers(opt.Workers))
	slots := stage.RunEach(p.graph, ctx, len(as), func(i int, _ stage.Env) (ApproachResult, error) {
		return p.mineOne(ctx, as[i], params, sh), nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]ApproachResult, len(as))
	for i, s := range slots {
		if s.Err != nil {
			// A slot-level failure: the approach panicked (recovered by
			// the engine into an *exec.PanicError) or was never reached.
			out[i] = ApproachResult{Approach: as[i], Err: s.Err}
			continue
		}
		out[i] = s.V
	}
	for _, r := range out {
		if r.Err != nil {
			p.trace.Add("core.approach.failures", 1)
			var pe *exec.PanicError
			if errors.As(r.Err, &pe) {
				p.trace.Add("exec.panics", 1)
			}
		}
	}
	return out, nil
}

// mineOne runs one approach inside a MineAll fan-out. Errors land in
// the result's Err (panic isolation is the engine's job — stage.RunEach
// recovers a panicking slot into its own *exec.PanicError).
func (p *Pipeline) mineOne(ctx context.Context, a Approach, params pattern.Params, sh shared) ApproachResult {
	res := ApproachResult{Approach: a}
	kind := a.Recognizer
	if sh.err[kind] != nil && kind == RecCSD && p.cfg.DegradedFallback && sh.err[RecROI] == nil {
		// The degradation ladder's one rung: CSD recognition is gone,
		// ROI recognition still works — mine on the coarser database
		// rather than returning nothing.
		p.trace.Add("core.approach.degraded", 1)
		if p.trace != nil {
			p.trace.Add(obs.Label("csdm_mine_degraded_total", "approach", a.String()), 1)
		}
		kind, res.Degraded = RecROI, true
	}
	if err := sh.err[kind]; err != nil {
		res.Err = err
		return res
	}
	res.Patterns, res.Err = p.extract(ctx, a, sh.db[kind], params)
	return res
}

// Journeys returns the pipeline's journey log.
func (p *Pipeline) Journeys() []trajectory.Journey { return p.journeys }

// POIs returns the pipeline's POI dataset.
func (p *Pipeline) POIs() []poi.POI { return p.pois }

// Describe returns a short human-readable description of the pipeline's
// inputs, for experiment headers.
func (p *Pipeline) Describe() string {
	return fmt.Sprintf("%d POIs, %d journeys", len(p.pois), len(p.journeys))
}
