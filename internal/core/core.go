// Package core composes the full Pervasive Miner pipeline (Figure 2) and
// the five competitor systems of §5. A Pipeline owns the shared inputs
// (POI dataset, taxi journeys) and lazily builds the expensive shared
// artifacts — the City Semantic Diagram, the ROI hot regions, and the
// two annotated trajectory databases — so that parameter sweeps over
// σ/ρ/δ_t re-run only the extraction stage, exactly as the paper's
// experiments do.
package core

import (
	"fmt"
	"sync"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/trajectory"
)

// RecognizerKind selects the semantic-recognition stage.
type RecognizerKind int

// The recognizer kinds of §5.
const (
	// RecCSD is City Semantic Diagram recognition (Algorithm 3).
	RecCSD RecognizerKind = iota
	// RecROI is the hot-region baseline of [21].
	RecROI
)

// ExtractorKind selects the pattern-extraction stage.
type ExtractorKind int

// The extractor kinds of §5.
const (
	// ExtPM is Pervasive Miner's CounterpartCluster (Algorithm 4).
	ExtPM ExtractorKind = iota
	// ExtSplitter is the Mean-Shift baseline of [17].
	ExtSplitter
	// ExtSDBSCAN is the DBSCAN baseline of [19].
	ExtSDBSCAN
)

// Approach is one of the six implementations compared in §5.
type Approach struct {
	Recognizer RecognizerKind
	Extractor  ExtractorKind
}

// The six approaches, named as in the paper.
var (
	CSDPM       = Approach{RecCSD, ExtPM}
	ROIPM       = Approach{RecROI, ExtPM}
	CSDSplitter = Approach{RecCSD, ExtSplitter}
	ROISplitter = Approach{RecROI, ExtSplitter}
	CSDSDBSCAN  = Approach{RecCSD, ExtSDBSCAN}
	ROISDBSCAN  = Approach{RecROI, ExtSDBSCAN}
)

// Approaches lists all six systems in the paper's order.
func Approaches() []Approach {
	return []Approach{CSDPM, ROIPM, CSDSplitter, ROISplitter, CSDSDBSCAN, ROISDBSCAN}
}

// String implements fmt.Stringer with the paper's naming.
func (a Approach) String() string {
	rec := "CSD"
	if a.Recognizer == RecROI {
		rec = "ROI"
	}
	switch a.Extractor {
	case ExtSplitter:
		return rec + "-Splitter"
	case ExtSDBSCAN:
		return rec + "-SDBSCAN"
	default:
		return rec + "-PM"
	}
}

// Config bundles the construction parameters of the shared stages.
type Config struct {
	// CSD parameterizes diagram construction (§4.1 defaults).
	CSD csd.Params
	// ROI parameterizes the hot-region baseline.
	ROI recognize.ROIParams
	// Chain parameterizes journey chaining (§5).
	Chain trajectory.ChainParams
}

// DefaultConfig returns the paper's default construction parameters,
// with one adaptation: KeepSingletons is enabled so that POIs left over
// by popularity clustering still participate in recognition as
// singleton units. The paper's 1.2M-POI dataset is two orders of
// magnitude denser than laptop-scale workloads, so its units cover the
// city wall to wall; at lower densities the paper-exact setting leaves
// anchor neighborhoods without any unit and recognition degrades to
// "unknown" exactly where traffic is highest.
func DefaultConfig() Config {
	c := Config{
		CSD:   csd.DefaultParams(),
		ROI:   recognize.DefaultROIParams(),
		Chain: trajectory.DefaultChainParams(),
	}
	c.CSD.KeepSingletons = true
	return c
}

// Pipeline owns the inputs and the lazily built shared artifacts.
type Pipeline struct {
	cfg      Config
	pois     []poi.POI
	journeys []trajectory.Journey

	// trace is the optional telemetry sink (nil-safe no-op when absent).
	trace *obs.Trace

	once struct {
		stays, diagram, roi, dbCSD, dbROI sync.Once
	}
	stays   []geo.Point
	diagram *csd.Diagram
	roi     *recognize.ROIRecognizer
	dbCSD   []trajectory.SemanticTrajectory
	dbROI   []trajectory.SemanticTrajectory
}

// SetTrace attaches a telemetry trace; every stage built afterwards
// records spans and counters on it. Attach before the first Diagram,
// Database or Mine call — already-built artifacts are not re-traced.
func (p *Pipeline) SetTrace(t *obs.Trace) { p.trace = t }

// Trace returns the attached telemetry trace (nil when tracing is off).
func (p *Pipeline) Trace() *obs.Trace { return p.trace }

// NewPipeline prepares a pipeline over the given POI dataset and taxi
// journey log.
func NewPipeline(pois []poi.POI, journeys []trajectory.Journey, cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg, pois: pois, journeys: journeys}
}

// StayPoints returns the pick-up/drop-off locations of every journey
// (built once; the popularity model and ROI detection share them).
func (p *Pipeline) StayPoints() []geo.Point {
	p.once.stays.Do(func() {
		p.stays = make([]geo.Point, 0, 2*len(p.journeys))
		for _, j := range p.journeys {
			p.stays = append(p.stays, j.Pickup, j.Dropoff)
		}
	})
	return p.stays
}

// Diagram returns the City Semantic Diagram, building it on first use.
func (p *Pipeline) Diagram() *csd.Diagram {
	p.once.diagram.Do(func() {
		p.diagram = csd.BuildTraced(p.pois, p.StayPoints(), p.cfg.CSD, p.trace)
	})
	return p.diagram
}

// UseDiagram installs a pre-built (e.g. deserialized) diagram instead
// of constructing one. It must be called before the first Diagram or
// Database call; afterwards it has no effect.
func (p *Pipeline) UseDiagram(d *csd.Diagram) {
	p.once.diagram.Do(func() { p.diagram = d })
}

// ROIRecognizer returns the hot-region baseline recognizer, building it
// on first use.
func (p *Pipeline) ROIRecognizer() *recognize.ROIRecognizer {
	p.once.roi.Do(func() {
		p.roi = recognize.NewROIRecognizer(p.StayPoints(), p.pois, p.cfg.ROI)
	})
	return p.roi
}

// Database returns the annotated semantic-trajectory database for the
// given recognizer kind, building it on first use.
func (p *Pipeline) Database(kind RecognizerKind) []trajectory.SemanticTrajectory {
	switch kind {
	case RecROI:
		p.once.dbROI.Do(func() {
			p.dbROI = recognize.AnnotateJourneysTraced(p.journeys, p.cfg.Chain, p.ROIRecognizer(), p.trace)
		})
		return p.dbROI
	default:
		p.once.dbCSD.Do(func() {
			p.dbCSD = recognize.AnnotateJourneysTraced(p.journeys, p.cfg.Chain, recognize.NewCSDRecognizer(p.Diagram()), p.trace)
		})
		return p.dbCSD
	}
}

// extractor instantiates the extraction stage for an approach.
func extractor(kind ExtractorKind) pattern.Extractor {
	switch kind {
	case ExtSplitter:
		return pattern.NewSplitter()
	case ExtSDBSCAN:
		return pattern.NewSDBSCAN()
	default:
		return pattern.NewCounterpartCluster()
	}
}

// Mine runs one approach end to end under the given mining parameters.
func (p *Pipeline) Mine(a Approach, params pattern.Params) []pattern.Pattern {
	db := p.Database(a.Recognizer)
	ex := extractor(a.Extractor)
	if te, ok := ex.(pattern.TracedExtractor); ok {
		return te.ExtractTraced(db, params, p.trace)
	}
	return ex.Extract(db, params)
}

// MineAll runs all six approaches under the same mining parameters; the
// result is keyed by the approach's paper name. The shared recognition
// artifacts are built first, then the six extractions run concurrently.
func (p *Pipeline) MineAll(params pattern.Params) map[string][]pattern.Pattern {
	p.Database(RecCSD)
	p.Database(RecROI)
	out := make(map[string][]pattern.Pattern, 6)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, a := range Approaches() {
		wg.Add(1)
		go func(a Approach) {
			defer wg.Done()
			ps := p.Mine(a, params)
			mu.Lock()
			out[a.String()] = ps
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	return out
}

// Journeys returns the pipeline's journey log.
func (p *Pipeline) Journeys() []trajectory.Journey { return p.journeys }

// POIs returns the pipeline's POI dataset.
func (p *Pipeline) POIs() []poi.POI { return p.pois }

// Describe returns a short human-readable description of the pipeline's
// inputs, for experiment headers.
func (p *Pipeline) Describe() string {
	return fmt.Sprintf("%d POIs, %d journeys", len(p.pois), len(p.journeys))
}
