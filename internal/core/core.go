// Package core composes the full Pervasive Miner pipeline (Figure 2) and
// the five competitor systems of §5. A Pipeline owns the shared inputs
// (POI dataset, taxi journeys) and lazily builds the expensive shared
// artifacts — the City Semantic Diagram, the ROI hot regions, and the
// two annotated trajectory databases — so that parameter sweeps over
// σ/ρ/δ_t re-run only the extraction stage, exactly as the paper's
// experiments do.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/trajectory"
)

// RecognizerKind selects the semantic-recognition stage.
type RecognizerKind int

// The recognizer kinds of §5.
const (
	// RecCSD is City Semantic Diagram recognition (Algorithm 3).
	RecCSD RecognizerKind = iota
	// RecROI is the hot-region baseline of [21].
	RecROI
)

// ExtractorKind selects the pattern-extraction stage.
type ExtractorKind int

// The extractor kinds of §5.
const (
	// ExtPM is Pervasive Miner's CounterpartCluster (Algorithm 4).
	ExtPM ExtractorKind = iota
	// ExtSplitter is the Mean-Shift baseline of [17].
	ExtSplitter
	// ExtSDBSCAN is the DBSCAN baseline of [19].
	ExtSDBSCAN
)

// Approach is one of the six implementations compared in §5.
type Approach struct {
	Recognizer RecognizerKind
	Extractor  ExtractorKind
}

// The six approaches, named as in the paper.
var (
	CSDPM       = Approach{RecCSD, ExtPM}
	ROIPM       = Approach{RecROI, ExtPM}
	CSDSplitter = Approach{RecCSD, ExtSplitter}
	ROISplitter = Approach{RecROI, ExtSplitter}
	CSDSDBSCAN  = Approach{RecCSD, ExtSDBSCAN}
	ROISDBSCAN  = Approach{RecROI, ExtSDBSCAN}
)

// Approaches lists all six systems in the paper's order.
func Approaches() []Approach {
	return []Approach{CSDPM, ROIPM, CSDSplitter, ROISplitter, CSDSDBSCAN, ROISDBSCAN}
}

// String implements fmt.Stringer with the paper's naming.
func (a Approach) String() string {
	rec := "CSD"
	if a.Recognizer == RecROI {
		rec = "ROI"
	}
	switch a.Extractor {
	case ExtSplitter:
		return rec + "-Splitter"
	case ExtSDBSCAN:
		return rec + "-SDBSCAN"
	default:
		return rec + "-PM"
	}
}

// Config bundles the construction parameters of the shared stages.
type Config struct {
	// CSD parameterizes diagram construction (§4.1 defaults).
	CSD csd.Params
	// ROI parameterizes the hot-region baseline.
	ROI recognize.ROIParams
	// Chain parameterizes journey chaining (§5).
	Chain trajectory.ChainParams
	// Workers bounds the parallelism of every pipeline stage. Zero or
	// negative means runtime.NumCPU(); one runs the whole pipeline
	// sequentially. Every output is identical for any worker count.
	Workers int
	// Index selects the spatial-index backend of every stage.
	Index index.Kind
	// StageTimeout bounds each expensive stage — diagram construction,
	// database annotation, per-approach extraction — with its own
	// deadline. A stage that overruns fails with an error wrapping
	// context.DeadlineExceeded while the run's own context stays live,
	// so one stuck stage cannot hang a whole MineAll. Zero disables
	// stage deadlines.
	StageTimeout time.Duration
	// DegradedFallback lets MineAll degrade instead of fail: when the
	// CSD build or its annotation errors out (or hits StageTimeout),
	// the CSD-recognizer approaches rerun on the ROI hot-region
	// database and their results are flagged Degraded, trading the
	// paper's recognition quality for availability.
	DegradedFallback bool
}

// ExecOptions derives the execution-layer option bundle every stage
// receives from the config.
func (c Config) ExecOptions() exec.Options {
	return exec.Options{Workers: c.Workers, Index: c.Index}
}

// DefaultConfig returns the paper's default construction parameters,
// with one adaptation: KeepSingletons is enabled so that POIs left over
// by popularity clustering still participate in recognition as
// singleton units. The paper's 1.2M-POI dataset is two orders of
// magnitude denser than laptop-scale workloads, so its units cover the
// city wall to wall; at lower densities the paper-exact setting leaves
// anchor neighborhoods without any unit and recognition degrades to
// "unknown" exactly where traffic is highest.
func DefaultConfig() Config {
	c := Config{
		CSD:     csd.DefaultParams(),
		ROI:     recognize.DefaultROIParams(),
		Chain:   trajectory.DefaultChainParams(),
		Workers: runtime.NumCPU(),
		Index:   index.KindGrid,
	}
	c.CSD.KeepSingletons = true
	return c
}

// lazy is a build-once artifact cell. Unlike sync.Once, a build that
// fails (e.g. a canceled context) does not poison the cell: the next
// get retries, so a pipeline survives an aborted warm-up.
type lazy[T any] struct {
	mu   sync.Mutex
	done bool
	v    T
}

// get returns the cached value, building it first when absent. The
// cell's lock is held across the build, so concurrent callers wait for
// one build instead of duplicating it.
func (l *lazy[T]) get(build func() (T, error)) (T, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return l.v, nil
	}
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	l.v, l.done = v, true
	return l.v, nil
}

// set installs v unless the cell is already built.
func (l *lazy[T]) set(v T) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.done {
		l.v, l.done = v, true
	}
}

// Pipeline owns the inputs and the lazily built shared artifacts.
type Pipeline struct {
	cfg      Config
	pois     []poi.POI
	journeys []trajectory.Journey

	// trace is the optional telemetry sink (nil-safe no-op when absent).
	trace *obs.Trace

	stays   lazy[[]geo.Point]
	diagram lazy[*csd.Diagram]
	roi     lazy[*recognize.ROIRecognizer]
	dbCSD   lazy[[]trajectory.SemanticTrajectory]
	dbROI   lazy[[]trajectory.SemanticTrajectory]
}

// SetTrace attaches a telemetry trace; every stage built afterwards
// records spans and counters on it. Attach before the first Diagram,
// Database or Mine call — already-built artifacts are not re-traced.
func (p *Pipeline) SetTrace(t *obs.Trace) { p.trace = t }

// Trace returns the attached telemetry trace (nil when tracing is off).
func (p *Pipeline) Trace() *obs.Trace { return p.trace }

// NewPipeline prepares a pipeline over the given POI dataset and taxi
// journey log.
func NewPipeline(pois []poi.POI, journeys []trajectory.Journey, cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg, pois: pois, journeys: journeys}
}

// StayPoints returns the pick-up/drop-off locations of every journey
// (built once; the popularity model and ROI detection share them).
func (p *Pipeline) StayPoints() []geo.Point {
	stays, _ := p.stays.get(func() ([]geo.Point, error) {
		out := make([]geo.Point, 0, 2*len(p.journeys))
		for _, j := range p.journeys {
			out = append(out, j.Pickup, j.Dropoff)
		}
		return out, nil
	})
	return stays
}

// Diagram returns the City Semantic Diagram, building it on first use.
func (p *Pipeline) Diagram() *csd.Diagram {
	d, _ := p.DiagramCtx(context.Background())
	return d
}

// stageCtx derives a stage-scoped context: with Config.StageTimeout
// set, the stage gets its own deadline on top of the run's context.
func (p *Pipeline) stageCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.cfg.StageTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, p.cfg.StageTimeout)
}

// stageErr classifies a stage failure: an overrun of the stage's own
// deadline (run context still live) is wrapped with the stage name and
// counted as core.stage.timeouts, so callers can tell "this stage was
// too slow" from "the whole run was canceled".
func (p *Pipeline) stageErr(run, stage context.Context, name string, err error) error {
	if err == nil || run.Err() != nil {
		return err
	}
	if errors.Is(stage.Err(), context.DeadlineExceeded) {
		p.trace.Add("core.stage.timeouts", 1)
		return fmt.Errorf("core: stage %s exceeded its %v deadline: %w", name, p.cfg.StageTimeout, err)
	}
	return err
}

// DiagramCtx is Diagram under a cancellation context: a canceled ctx
// aborts an in-flight build with ctx.Err() without poisoning the cell —
// a later call rebuilds. With Config.StageTimeout set the build runs
// under its own stage deadline.
func (p *Pipeline) DiagramCtx(ctx context.Context) (*csd.Diagram, error) {
	return p.diagram.get(func() (*csd.Diagram, error) {
		sctx, cancel := p.stageCtx(ctx)
		defer cancel()
		d, err := csd.BuildContext(sctx, p.pois, p.StayPoints(), p.cfg.CSD, p.trace, p.cfg.ExecOptions())
		return d, p.stageErr(ctx, sctx, "csd.build", err)
	})
}

// UseDiagram installs a pre-built (e.g. deserialized) diagram instead
// of constructing one. It must be called before the first Diagram or
// Database call; afterwards it has no effect.
func (p *Pipeline) UseDiagram(d *csd.Diagram) { p.diagram.set(d) }

// UseDatabase installs a pre-built (e.g. checkpoint-resumed) annotated
// database for the given recognizer kind, skipping chaining and
// annotation. It must be called before the first Database or Mine
// call for that kind; afterwards it has no effect.
func (p *Pipeline) UseDatabase(kind RecognizerKind, db []trajectory.SemanticTrajectory) {
	switch kind {
	case RecROI:
		p.dbROI.set(db)
	default:
		p.dbCSD.set(db)
	}
}

// ROIRecognizer returns the hot-region baseline recognizer, building it
// on first use.
func (p *Pipeline) ROIRecognizer() *recognize.ROIRecognizer {
	r, _ := p.roi.get(func() (*recognize.ROIRecognizer, error) {
		return recognize.NewROIRecognizerWith(p.StayPoints(), p.pois, p.cfg.ROI, p.cfg.ExecOptions()), nil
	})
	return r
}

// Database returns the annotated semantic-trajectory database for the
// given recognizer kind, building it on first use.
func (p *Pipeline) Database(kind RecognizerKind) []trajectory.SemanticTrajectory {
	db, _ := p.DatabaseCtx(context.Background(), kind)
	return db
}

// DatabaseCtx is Database under a cancellation context; annotation runs
// on the configured worker pool, under its own stage deadline when
// Config.StageTimeout is set. A canceled ctx aborts with ctx.Err() and
// leaves the artifact unbuilt.
func (p *Pipeline) DatabaseCtx(ctx context.Context, kind RecognizerKind) ([]trajectory.SemanticTrajectory, error) {
	annotate := func(r recognize.Recognizer) ([]trajectory.SemanticTrajectory, error) {
		sctx, cancel := p.stageCtx(ctx)
		defer cancel()
		db, err := recognize.AnnotateJourneysCtx(sctx, p.journeys, p.cfg.Chain, r, p.trace, p.cfg.ExecOptions())
		return db, p.stageErr(ctx, sctx, "recognize."+r.Name(), err)
	}
	switch kind {
	case RecROI:
		return p.dbROI.get(func() ([]trajectory.SemanticTrajectory, error) {
			return annotate(p.ROIRecognizer())
		})
	default:
		return p.dbCSD.get(func() ([]trajectory.SemanticTrajectory, error) {
			d, err := p.DiagramCtx(ctx)
			if err != nil {
				return nil, err
			}
			return annotate(recognize.NewCSDRecognizer(d))
		})
	}
}

// extractor instantiates the extraction stage for an approach.
func extractor(kind ExtractorKind) pattern.ContextExtractor {
	switch kind {
	case ExtSplitter:
		return pattern.NewSplitter()
	case ExtSDBSCAN:
		return pattern.NewSDBSCAN()
	default:
		return pattern.NewCounterpartCluster()
	}
}

// Mine runs one approach end to end under the given mining parameters.
func (p *Pipeline) Mine(a Approach, params pattern.Params) []pattern.Pattern {
	ps, _ := p.MineCtx(context.Background(), a, params)
	return ps
}

// extractCtx runs one approach's extraction stage under a stage
// deadline, with the "core.extract" fault site guarding the entry.
func (p *Pipeline) extractCtx(ctx context.Context, a Approach, db []trajectory.SemanticTrajectory, params pattern.Params) ([]pattern.Pattern, error) {
	if err := fault.Hit("core.extract"); err != nil {
		return nil, err
	}
	sctx, cancel := p.stageCtx(ctx)
	defer cancel()
	ps, err := extractor(a.Extractor).ExtractCtx(sctx, db, params, p.trace, p.cfg.ExecOptions())
	return ps, p.stageErr(ctx, sctx, "extract."+a.String(), err)
}

// MineCtx is Mine under a cancellation context: recognition and
// extraction run on the configured worker pool and a canceled ctx
// aborts with ctx.Err(). With Config.DegradedFallback set, a CSD
// approach whose database fails falls back to the ROI database
// (counted as core.approach.degraded), same as in MineAllCtx.
func (p *Pipeline) MineCtx(ctx context.Context, a Approach, params pattern.Params) ([]pattern.Pattern, error) {
	db, err := p.DatabaseCtx(ctx, a.Recognizer)
	if err != nil && a.Recognizer == RecCSD && p.cfg.DegradedFallback && ctx.Err() == nil {
		if roiDB, roiErr := p.DatabaseCtx(ctx, RecROI); roiErr == nil {
			p.trace.Add("core.approach.degraded", 1)
			db, err = roiDB, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return p.extractCtx(ctx, a, db, params)
}

// ApproachResult pairs an approach with its mined patterns. Since a
// MineAll no longer aborts on the first failing approach, the result
// carries that approach's own error and degradation state.
type ApproachResult struct {
	Approach Approach
	Patterns []pattern.Pattern
	// Err is the approach's own failure (nil on success). One failed
	// approach never hides the other five.
	Err error
	// Degraded marks a CSD approach that fell back to ROI recognition
	// under Config.DegradedFallback after the CSD artifacts failed.
	Degraded bool
}

// MineAll runs all six approaches under the same mining parameters; the
// result is keyed by the approach's paper name. Failed approaches are
// omitted; degraded ones are included under their original name.
func (p *Pipeline) MineAll(params pattern.Params) map[string][]pattern.Pattern {
	res, _ := p.MineAllCtx(context.Background(), params)
	out := make(map[string][]pattern.Pattern, len(res))
	for _, r := range res {
		if r.Err == nil {
			out[r.Approach.String()] = r.Patterns
		}
	}
	return out
}

// errNotRun marks an approach whose fan-out task never executed
// because the pool aborted first (cancellation or an injected fault).
var errNotRun = errors.New("core: approach not run: fan-out aborted early")

// shared is the per-MineAll snapshot of the two annotated databases.
// Building them exactly once up front keeps the fan-out from racing on
// the lazy cells and — deliberately — from retrying a failed build six
// times: within one MineAll, a database either exists or is failed.
type shared struct {
	db  map[RecognizerKind][]trajectory.SemanticTrajectory
	err map[RecognizerKind]error
}

// MineAllCtx runs all six approaches under the shared worker budget:
// the shared recognition artifacts are built first, then the six
// extractions fan out over the configured pool and the results come
// back in Approaches() order for stable experiment output.
//
// Failure is isolated per approach: a failed or timed-out CSD build
// fails (or, with Config.DegradedFallback, degrades) only the three
// CSD approaches, a panicking extraction worker fails only its own
// approach, and everything that succeeded is returned with a nil Err.
// The returned error is non-nil only when the run's own context is
// canceled — the one failure that genuinely applies to every approach.
func (p *Pipeline) MineAllCtx(ctx context.Context, params pattern.Params) ([]ApproachResult, error) {
	sh := shared{
		db:  make(map[RecognizerKind][]trajectory.SemanticTrajectory),
		err: make(map[RecognizerKind]error),
	}
	for _, kind := range []RecognizerKind{RecCSD, RecROI} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sh.db[kind], sh.err[kind] = p.DatabaseCtx(ctx, kind)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	as := Approaches()
	opt := p.cfg.ExecOptions()
	p.trace.SetGauge("index.backend", float64(opt.Index))
	exec.Note(p.trace, len(as), exec.Workers(opt.Workers))
	out := make([]ApproachResult, len(as))
	for i, a := range as {
		// Prefill with a sentinel so a slot the fan-out never reaches
		// (aborted pool) reads as failed, not as an empty success.
		out[i] = ApproachResult{Approach: a, Err: errNotRun}
	}
	if pfErr := exec.ParallelFor(ctx, opt.Workers, len(as), func(i int) error {
		out[i] = p.mineOne(ctx, as[i], params, sh)
		return nil
	}); pfErr != nil {
		for i := range out {
			if errors.Is(out[i].Err, errNotRun) {
				out[i].Err = fmt.Errorf("%w: %w", errNotRun, pfErr)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range out {
		if r.Err != nil {
			p.trace.Add("core.approach.failures", 1)
			var pe *exec.PanicError
			if errors.As(r.Err, &pe) {
				p.trace.Add("exec.panics", 1)
			}
		}
	}
	return out, nil
}

// mineOne runs one approach inside a MineAll fan-out. It never lets a
// failure escape: errors land in the result's Err, and a panic from
// the approach's own goroutine is recovered into an *exec.PanicError
// so the sibling approaches keep running.
func (p *Pipeline) mineOne(ctx context.Context, a Approach, params pattern.Params, sh shared) (res ApproachResult) {
	res.Approach = a
	defer func() {
		if v := recover(); v != nil {
			res.Err = exec.NewPanicError(v)
		}
	}()
	kind := a.Recognizer
	if sh.err[kind] != nil && kind == RecCSD && p.cfg.DegradedFallback && sh.err[RecROI] == nil {
		// The degradation ladder's one rung: CSD recognition is gone,
		// ROI recognition still works — mine on the coarser database
		// rather than returning nothing.
		p.trace.Add("core.approach.degraded", 1)
		kind, res.Degraded = RecROI, true
	}
	if err := sh.err[kind]; err != nil {
		res.Err = err
		return res
	}
	res.Patterns, res.Err = p.extractCtx(ctx, a, sh.db[kind], params)
	return res
}

// Journeys returns the pipeline's journey log.
func (p *Pipeline) Journeys() []trajectory.Journey { return p.journeys }

// POIs returns the pipeline's POI dataset.
func (p *Pipeline) POIs() []poi.POI { return p.pois }

// Describe returns a short human-readable description of the pipeline's
// inputs, for experiment headers.
func (p *Pipeline) Describe() string {
	return fmt.Sprintf("%d POIs, %d journeys", len(p.pois), len(p.journeys))
}
