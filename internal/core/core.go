// Package core composes the full Pervasive Miner pipeline (Figure 2) and
// the five competitor systems of §5. A Pipeline owns the shared inputs
// (POI dataset, taxi journeys) and lazily builds the expensive shared
// artifacts — the City Semantic Diagram, the ROI hot regions, and the
// two annotated trajectory databases — so that parameter sweeps over
// σ/ρ/δ_t re-run only the extraction stage, exactly as the paper's
// experiments do.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/trajectory"
)

// RecognizerKind selects the semantic-recognition stage.
type RecognizerKind int

// The recognizer kinds of §5.
const (
	// RecCSD is City Semantic Diagram recognition (Algorithm 3).
	RecCSD RecognizerKind = iota
	// RecROI is the hot-region baseline of [21].
	RecROI
)

// ExtractorKind selects the pattern-extraction stage.
type ExtractorKind int

// The extractor kinds of §5.
const (
	// ExtPM is Pervasive Miner's CounterpartCluster (Algorithm 4).
	ExtPM ExtractorKind = iota
	// ExtSplitter is the Mean-Shift baseline of [17].
	ExtSplitter
	// ExtSDBSCAN is the DBSCAN baseline of [19].
	ExtSDBSCAN
)

// Approach is one of the six implementations compared in §5.
type Approach struct {
	Recognizer RecognizerKind
	Extractor  ExtractorKind
}

// The six approaches, named as in the paper.
var (
	CSDPM       = Approach{RecCSD, ExtPM}
	ROIPM       = Approach{RecROI, ExtPM}
	CSDSplitter = Approach{RecCSD, ExtSplitter}
	ROISplitter = Approach{RecROI, ExtSplitter}
	CSDSDBSCAN  = Approach{RecCSD, ExtSDBSCAN}
	ROISDBSCAN  = Approach{RecROI, ExtSDBSCAN}
)

// Approaches lists all six systems in the paper's order.
func Approaches() []Approach {
	return []Approach{CSDPM, ROIPM, CSDSplitter, ROISplitter, CSDSDBSCAN, ROISDBSCAN}
}

// String implements fmt.Stringer with the paper's naming.
func (a Approach) String() string {
	rec := "CSD"
	if a.Recognizer == RecROI {
		rec = "ROI"
	}
	switch a.Extractor {
	case ExtSplitter:
		return rec + "-Splitter"
	case ExtSDBSCAN:
		return rec + "-SDBSCAN"
	default:
		return rec + "-PM"
	}
}

// Config bundles the construction parameters of the shared stages.
type Config struct {
	// CSD parameterizes diagram construction (§4.1 defaults).
	CSD csd.Params
	// ROI parameterizes the hot-region baseline.
	ROI recognize.ROIParams
	// Chain parameterizes journey chaining (§5).
	Chain trajectory.ChainParams
	// Workers bounds the parallelism of every pipeline stage. Zero or
	// negative means runtime.NumCPU(); one runs the whole pipeline
	// sequentially. Every output is identical for any worker count.
	Workers int
	// Index selects the spatial-index backend of every stage.
	Index index.Kind
}

// ExecOptions derives the execution-layer option bundle every stage
// receives from the config.
func (c Config) ExecOptions() exec.Options {
	return exec.Options{Workers: c.Workers, Index: c.Index}
}

// DefaultConfig returns the paper's default construction parameters,
// with one adaptation: KeepSingletons is enabled so that POIs left over
// by popularity clustering still participate in recognition as
// singleton units. The paper's 1.2M-POI dataset is two orders of
// magnitude denser than laptop-scale workloads, so its units cover the
// city wall to wall; at lower densities the paper-exact setting leaves
// anchor neighborhoods without any unit and recognition degrades to
// "unknown" exactly where traffic is highest.
func DefaultConfig() Config {
	c := Config{
		CSD:     csd.DefaultParams(),
		ROI:     recognize.DefaultROIParams(),
		Chain:   trajectory.DefaultChainParams(),
		Workers: runtime.NumCPU(),
		Index:   index.KindGrid,
	}
	c.CSD.KeepSingletons = true
	return c
}

// lazy is a build-once artifact cell. Unlike sync.Once, a build that
// fails (e.g. a canceled context) does not poison the cell: the next
// get retries, so a pipeline survives an aborted warm-up.
type lazy[T any] struct {
	mu   sync.Mutex
	done bool
	v    T
}

// get returns the cached value, building it first when absent. The
// cell's lock is held across the build, so concurrent callers wait for
// one build instead of duplicating it.
func (l *lazy[T]) get(build func() (T, error)) (T, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return l.v, nil
	}
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	l.v, l.done = v, true
	return l.v, nil
}

// set installs v unless the cell is already built.
func (l *lazy[T]) set(v T) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.done {
		l.v, l.done = v, true
	}
}

// Pipeline owns the inputs and the lazily built shared artifacts.
type Pipeline struct {
	cfg      Config
	pois     []poi.POI
	journeys []trajectory.Journey

	// trace is the optional telemetry sink (nil-safe no-op when absent).
	trace *obs.Trace

	stays   lazy[[]geo.Point]
	diagram lazy[*csd.Diagram]
	roi     lazy[*recognize.ROIRecognizer]
	dbCSD   lazy[[]trajectory.SemanticTrajectory]
	dbROI   lazy[[]trajectory.SemanticTrajectory]
}

// SetTrace attaches a telemetry trace; every stage built afterwards
// records spans and counters on it. Attach before the first Diagram,
// Database or Mine call — already-built artifacts are not re-traced.
func (p *Pipeline) SetTrace(t *obs.Trace) { p.trace = t }

// Trace returns the attached telemetry trace (nil when tracing is off).
func (p *Pipeline) Trace() *obs.Trace { return p.trace }

// NewPipeline prepares a pipeline over the given POI dataset and taxi
// journey log.
func NewPipeline(pois []poi.POI, journeys []trajectory.Journey, cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg, pois: pois, journeys: journeys}
}

// StayPoints returns the pick-up/drop-off locations of every journey
// (built once; the popularity model and ROI detection share them).
func (p *Pipeline) StayPoints() []geo.Point {
	stays, _ := p.stays.get(func() ([]geo.Point, error) {
		out := make([]geo.Point, 0, 2*len(p.journeys))
		for _, j := range p.journeys {
			out = append(out, j.Pickup, j.Dropoff)
		}
		return out, nil
	})
	return stays
}

// Diagram returns the City Semantic Diagram, building it on first use.
func (p *Pipeline) Diagram() *csd.Diagram {
	d, _ := p.DiagramCtx(context.Background())
	return d
}

// DiagramCtx is Diagram under a cancellation context: a canceled ctx
// aborts an in-flight build with ctx.Err() without poisoning the cell —
// a later call rebuilds.
func (p *Pipeline) DiagramCtx(ctx context.Context) (*csd.Diagram, error) {
	return p.diagram.get(func() (*csd.Diagram, error) {
		return csd.BuildContext(ctx, p.pois, p.StayPoints(), p.cfg.CSD, p.trace, p.cfg.ExecOptions())
	})
}

// UseDiagram installs a pre-built (e.g. deserialized) diagram instead
// of constructing one. It must be called before the first Diagram or
// Database call; afterwards it has no effect.
func (p *Pipeline) UseDiagram(d *csd.Diagram) { p.diagram.set(d) }

// ROIRecognizer returns the hot-region baseline recognizer, building it
// on first use.
func (p *Pipeline) ROIRecognizer() *recognize.ROIRecognizer {
	r, _ := p.roi.get(func() (*recognize.ROIRecognizer, error) {
		return recognize.NewROIRecognizerWith(p.StayPoints(), p.pois, p.cfg.ROI, p.cfg.ExecOptions()), nil
	})
	return r
}

// Database returns the annotated semantic-trajectory database for the
// given recognizer kind, building it on first use.
func (p *Pipeline) Database(kind RecognizerKind) []trajectory.SemanticTrajectory {
	db, _ := p.DatabaseCtx(context.Background(), kind)
	return db
}

// DatabaseCtx is Database under a cancellation context; annotation runs
// on the configured worker pool. A canceled ctx aborts with ctx.Err()
// and leaves the artifact unbuilt.
func (p *Pipeline) DatabaseCtx(ctx context.Context, kind RecognizerKind) ([]trajectory.SemanticTrajectory, error) {
	switch kind {
	case RecROI:
		return p.dbROI.get(func() ([]trajectory.SemanticTrajectory, error) {
			return recognize.AnnotateJourneysCtx(ctx, p.journeys, p.cfg.Chain, p.ROIRecognizer(), p.trace, p.cfg.ExecOptions())
		})
	default:
		return p.dbCSD.get(func() ([]trajectory.SemanticTrajectory, error) {
			d, err := p.DiagramCtx(ctx)
			if err != nil {
				return nil, err
			}
			return recognize.AnnotateJourneysCtx(ctx, p.journeys, p.cfg.Chain, recognize.NewCSDRecognizer(d), p.trace, p.cfg.ExecOptions())
		})
	}
}

// extractor instantiates the extraction stage for an approach.
func extractor(kind ExtractorKind) pattern.ContextExtractor {
	switch kind {
	case ExtSplitter:
		return pattern.NewSplitter()
	case ExtSDBSCAN:
		return pattern.NewSDBSCAN()
	default:
		return pattern.NewCounterpartCluster()
	}
}

// Mine runs one approach end to end under the given mining parameters.
func (p *Pipeline) Mine(a Approach, params pattern.Params) []pattern.Pattern {
	ps, _ := p.MineCtx(context.Background(), a, params)
	return ps
}

// MineCtx is Mine under a cancellation context: recognition and
// extraction run on the configured worker pool and a canceled ctx
// aborts with ctx.Err().
func (p *Pipeline) MineCtx(ctx context.Context, a Approach, params pattern.Params) ([]pattern.Pattern, error) {
	db, err := p.DatabaseCtx(ctx, a.Recognizer)
	if err != nil {
		return nil, err
	}
	return extractor(a.Extractor).ExtractCtx(ctx, db, params, p.trace, p.cfg.ExecOptions())
}

// ApproachResult pairs an approach with its mined patterns.
type ApproachResult struct {
	Approach Approach
	Patterns []pattern.Pattern
}

// MineAll runs all six approaches under the same mining parameters; the
// result is keyed by the approach's paper name.
func (p *Pipeline) MineAll(params pattern.Params) map[string][]pattern.Pattern {
	res, _ := p.MineAllCtx(context.Background(), params)
	out := make(map[string][]pattern.Pattern, len(res))
	for _, r := range res {
		out[r.Approach.String()] = r.Patterns
	}
	return out
}

// MineAllCtx runs all six approaches under the shared worker budget:
// the shared recognition artifacts are built first, then the six
// extractions fan out over the configured pool (bounded, unlike the
// unbounded per-approach goroutines it replaces) and the results come
// back in Approaches() order for stable experiment output.
func (p *Pipeline) MineAllCtx(ctx context.Context, params pattern.Params) ([]ApproachResult, error) {
	if _, err := p.DatabaseCtx(ctx, RecCSD); err != nil {
		return nil, err
	}
	if _, err := p.DatabaseCtx(ctx, RecROI); err != nil {
		return nil, err
	}
	as := Approaches()
	opt := p.cfg.ExecOptions()
	p.trace.SetGauge("index.backend", float64(opt.Index))
	exec.Note(p.trace, len(as), exec.Workers(opt.Workers))
	patterns, err := exec.ParallelMap(ctx, opt.Workers, len(as), func(i int) ([]pattern.Pattern, error) {
		return p.MineCtx(ctx, as[i], params)
	})
	if err != nil {
		return nil, err
	}
	out := make([]ApproachResult, len(as))
	for i, a := range as {
		out[i] = ApproachResult{Approach: a, Patterns: patterns[i]}
	}
	return out, nil
}

// Journeys returns the pipeline's journey log.
func (p *Pipeline) Journeys() []trajectory.Journey { return p.journeys }

// POIs returns the pipeline's POI dataset.
func (p *Pipeline) POIs() []poi.POI { return p.pois }

// Describe returns a short human-readable description of the pipeline's
// inputs, for experiment headers.
func (p *Pipeline) Describe() string {
	return fmt.Sprintf("%d POIs, %d journeys", len(p.pois), len(p.journeys))
}
