package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/obs"
	"csdm/internal/synth"
)

// faultPipeline builds a small seeded pipeline for fault-injection
// tests: big enough that every stage does real work, small enough that
// a test can rebuild it several times.
func faultPipeline(t testing.TB, cfg Config) *Pipeline {
	t.Helper()
	scfg := synth.DefaultConfig()
	scfg.Seed = 7
	scfg.NumPOIs = 1200
	scfg.NumPassengers = 120
	scfg.Days = 3
	city := synth.NewCity(scfg)
	w := city.GenerateWorkload()
	return NewPipeline(city.POIs, w.Journeys, cfg)
}

// activateFault installs a process-wide injector for the test and
// guarantees deactivation on exit.
func activateFault(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	in, err := fault.Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	t.Cleanup(func() { fault.Activate(nil) })
	return in
}

// TestMineAllSurvivesCSDBuildFault is the tentpole's acceptance check:
// with the CSD build failing, MineAllCtx still returns all six
// approaches, the three ROI ones with nil Err and real patterns, the
// three CSD ones carrying the injected error — and once the fault
// clears, the same pipeline rebuilds and fully recovers (the failed
// build must not poison the lazy cells).
func TestMineAllSurvivesCSDBuildFault(t *testing.T) {
	p := faultPipeline(t, DefaultConfig())
	activateFault(t, "csd.popularity:error:1")

	res, err := p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Approaches()) {
		t.Fatalf("got %d results, want %d", len(res), len(Approaches()))
	}
	for _, r := range res {
		switch r.Approach.Recognizer {
		case RecROI:
			if r.Err != nil {
				t.Errorf("%s: err = %v, want nil", r.Approach, r.Err)
			}
			if len(r.Patterns) == 0 {
				t.Errorf("%s: no patterns despite healthy ROI path", r.Approach)
			}
		default:
			if !errors.Is(r.Err, fault.ErrInjected) {
				t.Errorf("%s: err = %v, want injected fault", r.Approach, r.Err)
			}
			if r.Degraded {
				t.Errorf("%s: degraded without DegradedFallback", r.Approach)
			}
		}
	}

	// Fault cleared: the same pipeline must rebuild the diagram and
	// succeed across the board.
	fault.Activate(nil)
	res, err = p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Errorf("after recovery %s: err = %v", r.Approach, r.Err)
		}
	}
}

// TestMineAllDegradedFallback checks the degradation ladder: with
// DegradedFallback set and the CSD build failing on every attempt, the
// three CSD approaches rerun on the ROI database, come back flagged
// Degraded with nil Err, and mine exactly what their ROI twins mine.
func TestMineAllDegradedFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DegradedFallback = true
	p := faultPipeline(t, cfg)
	tr := obs.New()
	p.SetTrace(tr)
	activateFault(t, "csd.popularity:error:*")

	res, err := p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	roiPatterns := make(map[ExtractorKind][]ApproachResult)
	for _, r := range res {
		if r.Approach.Recognizer == RecROI {
			roiPatterns[r.Approach.Extractor] = append(roiPatterns[r.Approach.Extractor], r)
		}
	}
	degraded := 0
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: err = %v, want degraded success", r.Approach, r.Err)
		}
		if r.Approach.Recognizer == RecROI {
			if r.Degraded {
				t.Errorf("%s: ROI approach flagged degraded", r.Approach)
			}
			continue
		}
		if !r.Degraded {
			t.Errorf("%s: not flagged degraded", r.Approach)
		}
		degraded++
		twin := roiPatterns[r.Approach.Extractor]
		if len(twin) != 1 || !reflect.DeepEqual(r.Patterns, twin[0].Patterns) {
			t.Errorf("%s: degraded patterns differ from its ROI twin", r.Approach)
		}
	}
	if degraded != 3 {
		t.Errorf("degraded approaches = %d, want 3", degraded)
	}
	if got := tr.Counter("core.approach.degraded"); got != 3 {
		t.Errorf("counter core.approach.degraded = %d, want 3", got)
	}
}

// TestMineCtxDegradedFallback checks that single-approach mining
// honors DegradedFallback too: a CSD approach whose diagram build
// fails silently reruns on the ROI database and mines what its ROI
// twin mines (this is the path the csdminer `mine` subcommand takes).
func TestMineCtxDegradedFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DegradedFallback = true
	p := faultPipeline(t, cfg)
	tr := obs.New()
	p.SetTrace(tr)
	activateFault(t, "csd.popularity:error:*")

	got, err := p.MineCtx(context.Background(), CSDPM, testMiningParams())
	if err != nil {
		t.Fatalf("MineCtx with DegradedFallback: %v", err)
	}
	if tr.Counter("core.approach.degraded") != 1 {
		t.Error("counter core.approach.degraded not bumped")
	}
	want, err := p.MineCtx(context.Background(), ROIPM, testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("degraded MineCtx patterns differ from the ROI twin's")
	}

	// Without the flag the same failure is surfaced, not masked.
	cfg.DegradedFallback = false
	strict := faultPipeline(t, cfg)
	if _, err := strict.MineCtx(context.Background(), CSDPM, testMiningParams()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("strict MineCtx err = %v, want injected fault", err)
	}
}

// TestMineAllIsolatesExtractionPanic checks that a panic inside one
// approach's extraction becomes that approach's own *exec.PanicError
// while the other five mine normally, with the failure visible on the
// trace counters.
func TestMineAllIsolatesExtractionPanic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1 // sequential fan-out: the first extraction panics
	p := faultPipeline(t, cfg)
	tr := obs.New()
	p.SetTrace(tr)
	activateFault(t, "core.extract:panic:1")

	res, err := p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if i == 0 {
			var pe *exec.PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("%s: err = %v, want *exec.PanicError", r.Approach, r.Err)
			}
			if !fault.IsInjectedPanic(pe.Value) {
				t.Errorf("%s: panic value = %v, want injected", r.Approach, pe.Value)
			}
			if !strings.Contains(pe.Error(), "core.extract") {
				t.Errorf("%s: panic error lacks the site name: %v", r.Approach, pe)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: err = %v, want isolation from the panic", r.Approach, r.Err)
		}
	}
	if got := tr.Counter("exec.panics"); got != 1 {
		t.Errorf("counter exec.panics = %d, want 1", got)
	}
	if got := tr.Counter("core.approach.failures"); got != 1 {
		t.Errorf("counter core.approach.failures = %d, want 1", got)
	}
}

// TestMineAllCancellationMidFlight cancels the run context while the
// fan-out is working (a delay fault holds every extraction open long
// enough for the cancel to land mid-MineAll): the call must return
// ctx.Err() promptly, the pool must drain without leaking, and the
// same pipeline must mine cleanly afterwards — cancellation never
// poisons the shared artifacts.
func TestMineAllCancellationMidFlight(t *testing.T) {
	p := faultPipeline(t, DefaultConfig())
	activateFault(t, "core.extract:delay:*:500ms")

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := p.MineAllCtx(ctx, testMiningParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
	}

	fault.Activate(nil)
	res, err := p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Errorf("after cancel %s: err = %v", r.Approach, r.Err)
		}
	}
}

// TestStageTimeoutFailsSlowStage checks that a stage overrunning
// Config.StageTimeout fails with an error naming the stage and
// wrapping context.DeadlineExceeded while the run context stays live —
// and that once the slowness clears, the stage rebuilds.
func TestStageTimeoutFailsSlowStage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StageTimeout = 2 * time.Second
	p := faultPipeline(t, cfg)
	tr := obs.New()
	p.SetTrace(tr)
	activateFault(t, "csd.clustering:delay:*:3s")

	_, err := p.DiagramCtx(context.Background())
	if err == nil {
		t.Fatal("slow stage beat its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "csd.build") {
		t.Errorf("err does not name the stage: %v", err)
	}
	if got := tr.Counter("core.stage.timeouts"); got == 0 {
		t.Error("counter core.stage.timeouts not bumped")
	}

	fault.Activate(nil)
	if d, err := p.DiagramCtx(context.Background()); err != nil {
		t.Fatalf("rebuild after timeout: %v", err)
	} else if len(d.Units) == 0 {
		t.Fatal("rebuild after timeout produced an empty diagram")
	}
}

// TestStageTimeoutDegradesMineAll combines the two mechanisms: a CSD
// build that times out under StageTimeout degrades to ROI recognition
// when DegradedFallback is set, so MineAll still returns six usable
// results.
func TestStageTimeoutDegradesMineAll(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StageTimeout = 2 * time.Second
	cfg.DegradedFallback = true
	p := faultPipeline(t, cfg)
	activateFault(t, "csd.clustering:delay:*:3s")

	// Only the CSD build overruns the deadline: the delay fires inside
	// it, while annotation and extraction finish well within 2s on
	// this workload.
	res, err := p.MineAllCtx(context.Background(), testMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Approach.Recognizer == RecCSD && !r.Degraded {
			t.Errorf("%s: not degraded after CSD timeout", r.Approach)
		}
		if r.Err != nil && !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v", r.Approach, r.Err)
		}
	}
}
