package core

import (
	"strings"
	"testing"

	"csdm/internal/obs"
)

// TestPipelineTrace runs CSD-PM end to end with a trace attached and
// checks that every Figure-2 stage left spans and non-zero counters.
func TestPipelineTrace(t *testing.T) {
	p := buildPipeline(t)
	tr := obs.New()
	p.SetTrace(tr)
	if p.Trace() != tr {
		t.Fatal("Trace() did not return the attached trace")
	}

	ps := p.Mine(CSDPM, testMiningParams())
	if len(ps) == 0 {
		t.Fatal("CSD-PM found no patterns")
	}

	report := tr.Report()
	for _, span := range []string{
		"csd.build", "popularity", "clustering", "purification", "merging",
		"recognize.CSD", "chain", "annotate",
		"extract.CounterpartCluster", "prefixspan", "refine", "closure",
	} {
		if !strings.Contains(report, span) {
			t.Errorf("report missing span %q:\n%s", span, report)
		}
	}
	for _, counter := range []string{
		"csd.clusters.grown",
		"csd.units.final",
		"recognize.CSD.stays.annotated",
		"extract.CounterpartCluster.coarse",
		"extract.CounterpartCluster.candidates",
		"extract.CounterpartCluster.patterns",
	} {
		if tr.Counter(counter) <= 0 {
			t.Errorf("counter %q = %d, want > 0", counter, tr.Counter(counter))
		}
	}
	// The pipeline's synthetic city mixes single- and multi-purpose
	// sites, so purification must have split something.
	if tr.Counter("csd.purify.kl_splits")+tr.Counter("csd.purify.major_splits") == 0 {
		t.Error("no purification splits recorded")
	}
	// Patterns surviving must not exceed candidates generated.
	pfx := "extract.CounterpartCluster"
	if tr.Counter(pfx+".patterns") > tr.Counter(pfx+".candidates") {
		t.Errorf("patterns %d > candidates %d",
			tr.Counter(pfx+".patterns"), tr.Counter(pfx+".candidates"))
	}
}

// TestMineAllTraceConcurrent attaches a trace and runs all six
// approaches concurrently via MineAll — under -race this checks the
// telemetry path's thread safety across extractors.
func TestMineAllTraceConcurrent(t *testing.T) {
	p := buildPipeline(t)
	tr := obs.New()
	p.SetTrace(tr)
	results := p.MineAll(testMiningParams())
	if len(results) != 6 {
		t.Fatalf("results = %d approaches", len(results))
	}
	for _, name := range []string{"CounterpartCluster", "Splitter", "SDBSCAN"} {
		if tr.Counter("extract."+name+".coarse") <= 0 {
			t.Errorf("extractor %s recorded no coarse patterns", name)
		}
	}
	if tr.Counter("recognize.ROI.stays.annotated")+tr.Counter("recognize.ROI.stays.unknown") == 0 {
		t.Error("ROI recognizer recorded no stays")
	}
}
