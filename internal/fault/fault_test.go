package fault

import (
	"errors"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"siteonly",
		"a:b",
		"a:explode:1",
		"a:error:0",
		"a:error:-2",
		"a:error:pnope",
		"a:error:p1.5",
		"a:error:1:50ms", // duration on a non-delay rule
		"a:delay:1:nope",
		":error:1",
		"a:error:1:50ms:extra",
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseEmptySpecIsNil(t *testing.T) {
	in, err := Parse("  ", 1)
	if err != nil || in != nil {
		t.Fatalf("Parse(blank) = %v, %v", in, err)
	}
	// And a nil injector never fires.
	if err := in.Hit("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if n := in.Hits("anything"); n != 0 {
		t.Fatalf("nil injector counted %d hits", n)
	}
}

func TestNthHitError(t *testing.T) {
	in, err := Parse("s:error:3", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := in.Hit("s")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: not ErrInjected: %v", i, err)
		}
	}
	if got := in.Hits("s"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
	if got := in.Hits("other"); got != 0 {
		t.Fatalf("unknown site Hits = %d", got)
	}
}

func TestEveryHitAndUnlistedSite(t *testing.T) {
	in, _ := Parse("s:error:*", 1)
	for i := 0; i < 3; i++ {
		if err := in.Hit("s"); !errors.Is(err, ErrInjected) {
			t.Fatalf("every-hit rule missed hit %d: %v", i, err)
		}
	}
	if err := in.Hit("unlisted"); err != nil {
		t.Fatalf("unlisted site fired: %v", err)
	}
}

func TestInjectedPanicCarriesSiteAndHit(t *testing.T) {
	in, _ := Parse("s:panic:2", 1)
	if err := in.Hit("s"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if !IsInjectedPanic(v) {
			t.Fatalf("recovered %v, want PanicValue", v)
		}
		pv := v.(PanicValue)
		if pv.Site != "s" || pv.Hit != 2 {
			t.Fatalf("PanicValue = %+v", pv)
		}
	}()
	in.Hit("s")
	t.Fatal("second hit did not panic")
}

func TestDelayRuleSleeps(t *testing.T) {
	in, _ := Parse("s:delay:1:30ms", 1)
	t0 := time.Now()
	if err := in.Hit("s"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("delay rule slept %v, want ≥ 30ms", d)
	}
}

// TestProbabilisticDeterminism pins the seeded-RNG contract: equal spec
// and seed fire on the same hits.
func TestProbabilisticDeterminism(t *testing.T) {
	fire := func(seed int64) []bool {
		in, err := Parse("s:error:p0.3", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 50)
		for i := range out {
			out[i] = in.Hit("s") != nil
		}
		return out
	}
	a, b := fire(7), fire(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across equal seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p0.3 fired %d/%d times", fired, len(a))
	}
}

func TestActivateGlobal(t *testing.T) {
	in, _ := Parse("g:error:1", 1)
	Activate(in)
	defer Activate(nil)
	if err := Hit("g"); !errors.Is(err, ErrInjected) {
		t.Fatalf("global Hit = %v", err)
	}
	if Active() != in {
		t.Fatal("Active() lost the injector")
	}
	Activate(nil)
	if err := Hit("g"); err != nil {
		t.Fatalf("deactivated injector fired: %v", err)
	}
}

func TestConcurrentHitsCountExactly(t *testing.T) {
	in, _ := Parse("s:error:1000000", 1)
	done := make(chan struct{})
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				in.Hit("s")
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := in.Hits("s"); got != workers*per {
		t.Fatalf("Hits = %d, want %d", got, workers*per)
	}
}
