// Package fault is the pipeline's deterministic fault injector. Every
// hardened stage names an injection site and calls Hit (or guards a
// panic with MaybePanic inside Hit) on its hot path; with no injector
// active the call is a single atomic pointer load, so production runs
// pay nothing. Tests and the hidden csdminer -fault flag activate an
// Injector parsed from a compact spec, and the injector then raises
// errors, panics, or delays at exact, reproducible moments: either the
// n-th time a site is hit or with a seeded per-site probability. Equal
// specs and seeds fault at equal hits, which is what makes
// fault-injection tests assertable rather than flaky.
//
// Spec grammar (comma-separated rules):
//
//	site:kind:trigger[:duration]
//
// where kind is error, panic or delay; trigger is either an integer n
// ("fire on the n-th hit", 1-based), "*" ("fire on every hit"), or
// "p<fraction>" ("fire each hit with probability <fraction>", drawn
// from the injector's seeded RNG); duration applies to delay rules
// (default 50ms). Examples:
//
//	csd.popularity:error:1        error the first time popularity runs
//	exec.task:panic:3             panic on the third pool task
//	csd.merging:delay:*:200ms     every merge pass sleeps 200ms
//	load.poi.row:error:p0.01      ~1% of POI rows fail, seeded
//
// Sites currently wired: the diagram builder's stage boundaries
// (csd.popularity, csd.clustering, csd.purification, csd.merging), the
// streaming delta-apply boundary (csd.ingest — fires at the top of each
// ingested batch, so an injected error proves a failed batch leaves the
// maintainer on its previous generation and is retryable), the
// worker pool (exec.task), and the recognition service's two hardened
// paths — serve.request fires inside every contained request handler
// (so an injected panic exercises per-request isolation, never the
// process) and serve.reload fires at the top of the snapshot hot-swap
// (so an injected error proves a failed reload rolls back to the live
// diagram). Both serve sites are reachable via csdserve's -fault flag.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csdm/internal/obs"
)

// metricsHook is the process-metrics registry, when one is attached.
// Firing a fault is by construction a rare event, so the accounting
// below (labeled counter names) may allocate; the not-firing path never
// touches it beyond the loads Hit already does.
var metricsHook atomic.Pointer[obs.Registry]

// SetMetrics wires fault injection to a process-lifetime metrics
// registry: every fired fault bumps csdm_fault_injected_total
// (pre-declared at zero, so the series is scrapable before — ideally
// instead of — any fault) and a per-site, per-kind detail counter
// csdm_fault_fired_total{site,kind}. Passing nil detaches.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		metricsHook.Store(nil)
		return
	}
	r.Describe("csdm_fault_injected_total", "Faults fired by the deterministic injector.")
	r.Describe("csdm_fault_fired_total", "Faults fired by the deterministic injector, by site and kind.")
	r.Add("csdm_fault_injected_total", 0)
	metricsHook.Store(r)
}

// Kind is the behavior a rule injects at its site.
type Kind int

// The injectable fault kinds.
const (
	// KindError makes Hit return ErrInjected (wrapped with site context).
	KindError Kind = iota
	// KindPanic makes Hit panic with a PanicValue.
	KindPanic
	// KindDelay makes Hit sleep for the rule's duration.
	KindDelay
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	default:
		return "error"
	}
}

// ErrInjected is the sentinel every injected error wraps; tests assert
// provenance with errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("injected fault")

// PanicValue is the value an injected panic carries, so recover sites
// can distinguish injected panics from real ones.
type PanicValue struct {
	// Site is the injection site that fired.
	Site string
	// Hit is the 1-based hit count at which it fired.
	Hit int64
}

// String implements fmt.Stringer.
func (v PanicValue) String() string {
	return fmt.Sprintf("fault: injected panic at %s (hit %d)", v.Site, v.Hit)
}

// rule is one parsed spec clause.
type rule struct {
	kind  Kind
	nth   int64         // fire on this exact hit; 0 when unused
	every bool          // fire on every hit
	prob  float64       // fire with this probability; 0 when unused
	delay time.Duration // sleep length for KindDelay
}

// Injector holds the active rules and the per-site hit counters. All
// methods are safe for concurrent use and nil-safe: a nil *Injector
// never fires.
type Injector struct {
	rules map[string][]rule

	mu   sync.Mutex
	rng  *rand.Rand
	hits map[string]*int64
}

// Parse builds an Injector from a spec string (see the package comment
// for the grammar). The seed drives every probabilistic rule; equal
// specs and seeds inject identically. An empty spec yields a nil
// injector (inject nothing).
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{
		rules: make(map[string][]rule),
		rng:   rand.New(rand.NewSource(seed)),
		hits:  make(map[string]*int64),
	}
	for _, clause := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("fault: bad rule %q: want site:kind:trigger[:duration]", clause)
		}
		site := parts[0]
		if site == "" {
			return nil, fmt.Errorf("fault: bad rule %q: empty site", clause)
		}
		var r rule
		switch parts[1] {
		case "error":
			r.kind = KindError
		case "panic":
			r.kind = KindPanic
		case "delay":
			r.kind = KindDelay
		default:
			return nil, fmt.Errorf("fault: bad rule %q: unknown kind %q", clause, parts[1])
		}
		switch trig := parts[2]; {
		case trig == "*":
			r.every = true
		case strings.HasPrefix(trig, "p"):
			p, err := strconv.ParseFloat(trig[1:], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("fault: bad rule %q: probability %q", clause, trig)
			}
			r.prob = p
		default:
			n, err := strconv.ParseInt(trig, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad rule %q: trigger %q", clause, trig)
			}
			r.nth = n
		}
		r.delay = 50 * time.Millisecond
		if len(parts) == 4 {
			if r.kind != KindDelay {
				return nil, fmt.Errorf("fault: bad rule %q: duration on a %s rule", clause, r.kind)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad rule %q: duration %q", clause, parts[3])
			}
			r.delay = d
		}
		in.rules[site] = append(in.rules[site], r)
	}
	return in, nil
}

// Hit records one pass through the named site and fires any rule whose
// trigger matches. A matching error rule returns a wrapped ErrInjected;
// a panic rule panics with a PanicValue; a delay rule sleeps and
// returns nil. On a nil injector Hit is a no-op returning nil.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	rules, ok := in.rules[site]
	if !ok {
		return nil
	}
	in.mu.Lock()
	c := in.hits[site]
	if c == nil {
		c = new(int64)
		in.hits[site] = c
	}
	n := atomic.AddInt64(c, 1)
	var fire *rule
	for i := range rules {
		r := &rules[i]
		if r.every || r.nth == n || (r.prob > 0 && in.rng.Float64() < r.prob) {
			fire = r
			break
		}
	}
	in.mu.Unlock()
	if fire == nil {
		return nil
	}
	if r := metricsHook.Load(); r != nil {
		r.Add("csdm_fault_injected_total", 1)
		r.Add(obs.Label("csdm_fault_fired_total", "site", site, "kind", fire.kind.String()), 1)
	}
	switch fire.kind {
	case KindPanic:
		panic(PanicValue{Site: site, Hit: n})
	case KindDelay:
		time.Sleep(fire.delay)
		return nil
	default:
		return fmt.Errorf("fault: %w at %s (hit %d)", ErrInjected, site, n)
	}
}

// Hits returns how many times the named site was reached (fired or
// not); zero on a nil injector or an unknown site.
func (in *Injector) Hits(site string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.hits[site]
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(c)
}

// active is the process-wide injector. Production never sets it, so the
// fast path of the package-level Hit is one atomic load and a nil test.
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector (nil deactivates).
// Tests pair it with a deferred Activate(nil).
func Activate(in *Injector) { active.Store(in) }

// Active returns the process-wide injector (nil when injection is off).
func Active() *Injector { return active.Load() }

// Hit is Injector.Hit on the process-wide injector — the call sites'
// entry point. With no injector active it costs one atomic load.
func Hit(site string) error { return active.Load().Hit(site) }

// IsInjectedPanic reports whether a recovered panic value came from an
// injected fault.
func IsInjectedPanic(v any) bool {
	_, ok := v.(PanicValue)
	return ok
}
