package fault

import (
	"errors"
	"strings"
	"testing"

	"csdm/internal/obs"
)

// TestFaultMetrics: fired faults are counted in total and by site/kind;
// sites that are hit but never fire count nothing.
func TestFaultMetrics(t *testing.T) {
	r := obs.NewRegistry()
	SetMetrics(r)
	defer SetMetrics(nil)

	if got := r.Counter("csdm_fault_injected_total"); got != 0 {
		t.Fatalf("injected_total not pre-declared at 0: %d", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "csdm_fault_injected_total 0") {
		t.Fatalf("zero-valued series not exposed:\n%s", b.String())
	}

	in, err := Parse("csd.popularity:error:2,csd.merging:delay:1:1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	Activate(in)
	defer Activate(nil)

	if err := Hit("csd.popularity"); err != nil {
		t.Fatalf("first hit fired early: %v", err)
	}
	if err := Hit("csd.popularity"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second hit did not fire: %v", err)
	}
	if err := Hit("csd.merging"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if err := Hit("unknown.site"); err != nil {
		t.Fatal(err)
	}

	if got := r.Counter("csdm_fault_injected_total"); got != 2 {
		t.Fatalf("injected_total = %d, want 2 (one error, one delay)", got)
	}
	if got := r.Counter(obs.Label("csdm_fault_fired_total", "site", "csd.popularity", "kind", "error")); got != 1 {
		t.Fatalf("per-site error counter = %d, want 1", got)
	}
	if got := r.Counter(obs.Label("csdm_fault_fired_total", "site", "csd.merging", "kind", "delay")); got != 1 {
		t.Fatalf("per-site delay counter = %d, want 1", got)
	}
}
