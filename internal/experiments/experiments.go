// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§6) on the synthetic Shanghai workload. Each experiment
// has a typed result and a text renderer; cmd/experiments and the
// repository's benchmark suite are thin wrappers over this package.
//
// Absolute numbers differ from the paper — the substrate is a synthetic
// city, not 2.2×10⁷ real journeys — but each experiment reproduces the
// paper's qualitative shape, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"time"

	"csdm/internal/core"
	"csdm/internal/pattern"
	"csdm/internal/synth"
)

// Scale sizes the synthetic workload. The default is laptop-scale;
// raise the numbers to stress the system.
type Scale struct {
	Seed          int64
	NumPOIs       int
	NumPassengers int
	Days          int
}

// DefaultScale mines in tens of seconds on a laptop while leaving every
// stage with realistic structure.
func DefaultScale() Scale {
	return Scale{Seed: 1, NumPOIs: 6000, NumPassengers: 1000, Days: 14}
}

// MiningParams returns the paper's normal condition (§5): σ = 50,
// δ_t = 60 min, ρ = 0.002 m⁻².
func MiningParams() pattern.Params { return pattern.DefaultParams() }

// Env is a generated city, its workload, and a ready pipeline — the
// shared input of all experiments.
type Env struct {
	City     *synth.City
	Workload synth.Workload
	Pipeline *core.Pipeline
	// Cfg is the pipeline configuration the environment was set up with,
	// so experiments build their side structures (check-in indexes,
	// ablation recognizers) on the same backend as the pipeline.
	Cfg core.Config
}

// Setup generates the synthetic environment for a scale with the
// default pipeline configuration.
func Setup(s Scale) *Env {
	return SetupConfig(s, core.DefaultConfig())
}

// SetupConfig generates the synthetic environment for a scale with an
// explicit pipeline configuration (worker budget, index backend, stage
// parameters).
func SetupConfig(s Scale, pipeCfg core.Config) *Env {
	cfg := synth.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.NumPOIs = s.NumPOIs
	cfg.NumPassengers = s.NumPassengers
	cfg.Days = s.Days
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	return &Env{
		City:     city,
		Workload: w,
		Pipeline: core.NewPipeline(city.POIs, w.Journeys, pipeCfg),
		Cfg:      pipeCfg,
	}
}

// header prints a section header for an experiment report.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// sweepValues returns the four settings of a parameter sweep around a
// default, matching the paper's four-point sweeps.
func sigmaSweep() []int   { return []int{25, 50, 75, 100} }
func rhoSweep() []float64 { return []float64{0.001, 0.002, 0.003, 0.004} }
func deltaSweep() []time.Duration {
	return []time.Duration{15 * time.Minute, 30 * time.Minute, 45 * time.Minute, 60 * time.Minute}
}
