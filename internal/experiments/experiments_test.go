package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"csdm/internal/pattern"
	"csdm/internal/poi"
)

// testEnv is shared read-only across tests (Setup is deterministic).
var (
	envOnce sync.Once
	env     *Env
)

func testSetup(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		env = Setup(Scale{Seed: 1, NumPOIs: 3000, NumPassengers: 600, Days: 14})
	})
	return env
}

// testParams scales σ to the small test workload.
func testParams() pattern.Params {
	p := MiningParams()
	p.Sigma = 20
	return p
}

func TestSetupDeterministic(t *testing.T) {
	a := Setup(Scale{Seed: 7, NumPOIs: 500, NumPassengers: 50, Days: 2})
	b := Setup(Scale{Seed: 7, NumPOIs: 500, NumPassengers: 50, Days: 2})
	if len(a.City.POIs) != len(b.City.POIs) || len(a.Workload.Journeys) != len(b.Workload.Journeys) {
		t.Fatal("equal scales should produce equal environments")
	}
}

func TestTable1Shape(t *testing.T) {
	e := testSetup(t)
	res := e.Table1()
	if len(res) != 2 {
		t.Fatalf("profiles = %d", len(res))
	}
	ny, tk := res[0], res[1]
	if tk.StationShare <= ny.StationShare {
		t.Errorf("Tokyo station share %.3f should exceed NY %.3f", tk.StationShare, ny.StationShare)
	}
	if ny.ResidentShare <= tk.ResidentShare {
		t.Errorf("NY residence share %.3f should exceed Tokyo %.3f", ny.ResidentShare, tk.ResidentShare)
	}
	for _, r := range res {
		if r.MedicalShare > 0.01 {
			t.Errorf("%s medical share %.3f should be suppressed", r.Profile, r.MedicalShare)
		}
		if len(r.Top) == 0 || len(r.Top) > 10 {
			t.Errorf("%s top topics = %d", r.Profile, len(r.Top))
		}
	}
}

func TestTable3SharesMatchPaper(t *testing.T) {
	e := testSetup(t)
	rows := e.Table3()
	if len(rows) != poi.NumMajors {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Percentage-r.PaperShare) > 0.03 {
			t.Errorf("%v share %.3f deviates from paper %.3f", r.Category, r.Percentage, r.PaperShare)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	e := testSetup(t)
	r := e.Fig6()
	if r.Units == 0 {
		t.Fatal("no units")
	}
	if r.Coverage <= 0.9 {
		t.Errorf("coverage = %.3f (KeepSingletons should push it to ~1)", r.Coverage)
	}
	if r.MeanPurity < 0.8 {
		t.Errorf("purity = %.3f", r.MeanPurity)
	}
	if !strings.Contains(r.Map, "\n") {
		t.Error("map not rendered")
	}
}

func TestFig8Shape(t *testing.T) {
	e := testSetup(t)
	r := e.Fig8()
	if r.StayPoints != 2*r.Journeys {
		t.Fatalf("staypoints %d != 2×journeys %d", r.StayPoints, r.Journeys)
	}
	if r.MeanTripMin < 5 || r.MeanTripMin > 45 {
		t.Errorf("mean trip %.1f min implausible", r.MeanTripMin)
	}
}

func TestFig9Shape(t *testing.T) {
	e := testSetup(t)
	r := e.Fig9(testParams())
	if len(r.Curves) != 6 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	// Histogram totals match pattern counts, and CSD-PM is denser than
	// ROI-PM on average.
	for name, h := range r.Curves {
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		if total != r.Summaries[name].NumPatterns {
			t.Errorf("%s histogram total %d != #patterns %d", name, total, r.Summaries[name].NumPatterns)
		}
	}
	if r.Summaries["CSD-PM"].MeanSparsity >= r.Summaries["ROI-PM"].MeanSparsity {
		t.Errorf("CSD-PM sparsity %.1f should be below ROI-PM %.1f",
			r.Summaries["CSD-PM"].MeanSparsity, r.Summaries["ROI-PM"].MeanSparsity)
	}
}

func TestFig10Shape(t *testing.T) {
	e := testSetup(t)
	r := e.Fig10(testParams())
	csdpm := r.Boxes["CSD-PM"]
	roipm := r.Boxes["ROI-PM"]
	if csdpm.Mean < 0.95 {
		t.Errorf("CSD-PM consistency %.3f, paper reports ≥0.99", csdpm.Mean)
	}
	// The separation grows with workload size; at test scale require
	// only that CSD-PM is not meaningfully below ROI-PM.
	if csdpm.Mean < roipm.Mean-0.005 {
		t.Errorf("CSD-PM consistency %.3f below ROI-PM %.3f", csdpm.Mean, roipm.Mean)
	}
	// Box ordering invariants.
	for name, b := range r.Boxes {
		if b.N > 0 && !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			t.Errorf("%s box not ordered: %+v", name, b)
		}
	}
}

func TestSweepsMonotoneTrends(t *testing.T) {
	e := testSetup(t)
	r := e.Fig11()
	if len(r.Points) != 4*6 {
		t.Fatalf("sweep points = %d", len(r.Points))
	}
	// For each approach, #patterns must not increase as σ grows.
	byApproach := map[string][]SweepPoint{}
	for _, p := range r.Points {
		byApproach[p.Approach] = append(byApproach[p.Approach], p)
	}
	for name, pts := range byApproach {
		for i := 1; i < len(pts); i++ {
			if pts[i].Summary.NumPatterns > pts[i-1].Summary.NumPatterns {
				t.Errorf("%s: #patterns rose from %d to %d as σ grew",
					name, pts[i-1].Summary.NumPatterns, pts[i].Summary.NumPatterns)
			}
		}
	}
}

func TestFig13PlateauBeyond30Minutes(t *testing.T) {
	e := testSetup(t)
	r := e.Fig13()
	// The paper observes almost no fluctuation for δ_t ≥ 30 min because
	// most trips are shorter; check CSD-PM's #patterns stabilizes.
	var vals []int
	for _, p := range r.Points {
		if p.Approach == "CSD-PM" {
			vals = append(vals, p.Summary.NumPatterns)
		}
	}
	if len(vals) != 4 {
		t.Fatalf("CSD-PM sweep points = %d", len(vals))
	}
	// The 15-minute constraint cuts below the mean trip duration, so it
	// must filter out most patterns…
	if vals[3] == 0 || float64(vals[0])/float64(vals[3]) > 0.5 {
		t.Errorf("no 15-minute cliff: #patterns %v", vals)
	}
	// …while the curve levels off toward the top of the sweep.
	lo, hi := vals[2], vals[3]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 0 && float64(lo)/float64(hi) < 0.8 {
		t.Errorf("no plateau at the top of the sweep: #patterns %v", vals)
	}
}

func TestFig14WeekdayRegularity(t *testing.T) {
	e := testSetup(t)
	res := e.Fig14(testParams())
	if len(res) != 6 {
		t.Fatalf("buckets = %d", len(res))
	}
	weekday, weekend := 0, 0
	for _, r := range res {
		if int(r.Bucket) < 3 {
			weekday += r.NumPatterns
		} else {
			weekend += r.NumPatterns
		}
	}
	if weekday <= weekend {
		t.Errorf("weekday patterns (%d) should exceed weekend (%d)", weekday, weekend)
	}
	// Weekday morning should surface Residence → … transitions.
	morning := res[0]
	found := false
	for _, tc := range morning.Top {
		if strings.HasPrefix(tc.Transition, "Residence") {
			found = true
		}
	}
	if !found {
		t.Error("weekday morning lacks Residence→ transitions")
	}
}

func TestFig14gAirportHotspot(t *testing.T) {
	e := testSetup(t)
	r := e.Fig14g(testParams())
	if r.AirportShare < 0.02 {
		t.Errorf("airport share %.3f too small", r.AirportShare)
	}
	if r.AirportPatterns == 0 {
		t.Error("no airport patterns")
	}
}

func TestFig14hHospitalVisibleInGPSOnly(t *testing.T) {
	e := testSetup(t)
	r := e.Fig14h(testParams())
	if r.HospitalTrips == 0 {
		t.Fatal("no hospital trips generated")
	}
	if r.HospitalPatterns == 0 {
		t.Error("GPS mining should surface hospital patterns")
	}
	if r.CheckinShareNY > 0.01 || r.CheckinShareTK > 0.01 {
		t.Errorf("check-in medical shares %.4f/%.4f should be suppressed",
			r.CheckinShareNY, r.CheckinShareTK)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	e := testSetup(t)
	params := testParams()
	var buf bytes.Buffer
	e.RenderTable1(&buf)
	e.RenderTable3(&buf)
	e.RenderFig6(&buf)
	e.RenderFig8(&buf)
	e.RenderFig9(&buf, params)
	e.RenderFig10(&buf, params)
	RenderSweep(&buf, "Figure 11", e.Fig11())
	e.RenderFig14(&buf, params)
	e.RenderFig14g(&buf, params)
	e.RenderFig14h(&buf, params)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 3", "Figure 6", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Figure 14", "airport", "hospital",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
