package experiments

import (
	"fmt"
	"io"

	"csdm/internal/poi"
	"csdm/internal/synth"
)

// Table1Result reproduces Table 1: the top check-in topics of two
// communities with different sharing cultures, demonstrating semantic
// bias.
type Table1Result struct {
	Profile       string
	Top           []synth.TopicCount
	MedicalShare  float64
	ResidentShare float64
	StationShare  float64
}

// Table1 samples biased check-in streams from the taxi visits under the
// New York-like and Tokyo-like profiles and ranks their topics.
func (e *Env) Table1() []Table1Result {
	var out []Table1Result
	for _, profile := range []synth.CheckinProfile{synth.ProfileNewYork(), synth.ProfileTokyo()} {
		cs := e.City.SampleCheckins(e.Workload.Journeys, profile, e.City.Seed+101, e.Cfg.Index)
		out = append(out, Table1Result{
			Profile:       profile.Name,
			Top:           synth.TopTopics(cs, 10),
			MedicalShare:  synth.MajorShare(cs, poi.MedicalService),
			ResidentShare: synth.MajorShare(cs, poi.Residence),
			StationShare:  synth.MajorShare(cs, poi.TrafficStations),
		})
	}
	return out
}

// RenderTable1 writes the Table 1 reproduction.
func (e *Env) RenderTable1(w io.Writer) []Table1Result {
	res := e.Table1()
	header(w, "Table 1 — top-10 check-in topics under two bias profiles")
	for _, r := range res {
		fmt.Fprintf(w, "%s:\n", r.Profile)
		for i, tc := range r.Top {
			fmt.Fprintf(w, "  %2d. %-22s %6.2f%%\n", i+1, tc.Topic, tc.Ratio*100)
		}
		fmt.Fprintf(w, "  medical share %.2f%%  residence share %.2f%%  station share %.2f%%\n",
			r.MedicalShare*100, r.ResidentShare*100, r.StationShare*100)
	}
	fmt.Fprintln(w, "shape check: stations dominate the Tokyo-like profile, homes are visible")
	fmt.Fprintln(w, "only in the NY-like one, and medical topics top neither list (semantic bias).")
	return res
}

// Table3Row is one row of the POI category statistic.
type Table3Row struct {
	Category   poi.Major
	Count      int
	Percentage float64
	PaperShare float64
}

// Table3 tallies the synthetic POI dataset per major category and
// compares against the paper's shares.
func (e *Env) Table3() []Table3Row {
	counts := poi.CategoryCount(e.City.POIs)
	total := 0
	for _, n := range counts {
		total += n
	}
	rows := make([]Table3Row, 0, poi.NumMajors)
	for _, mj := range poi.Majors() {
		rows = append(rows, Table3Row{
			Category:   mj,
			Count:      counts[mj],
			Percentage: float64(counts[mj]) / float64(total),
			PaperShare: synth.TableThreeShare(mj),
		})
	}
	return rows
}

// RenderTable3 writes the Table 3 reproduction.
func (e *Env) RenderTable3(w io.Writer) []Table3Row {
	rows := e.Table3()
	header(w, "Table 3 — POI category statistics (synthetic vs paper)")
	fmt.Fprintf(w, "%-24s %8s %9s %9s\n", "Category", "Count", "Share", "Paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8d %8.2f%% %8.2f%%\n",
			r.Category, r.Count, r.Percentage*100, r.PaperShare*100)
	}
	return rows
}
