package experiments

import (
	"fmt"
	"io"
	"sort"

	"csdm/internal/core"
	"csdm/internal/geo"
	"csdm/internal/metrics"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

// TransitionCount is one semantic transition with its frequency.
type TransitionCount struct {
	Transition string
	Patterns   int
	Coverage   int
}

// Fig14BucketResult describes the patterns of one weekly time bucket.
type Fig14BucketResult struct {
	Bucket      core.TimeBucket
	Journeys    int
	NumPatterns int
	Coverage    int
	Top         []TransitionCount
}

// Fig14 mines each of the six weekly time buckets separately with
// CSD-PM, as in the §6 demonstration. Mining per bucket uses a support
// threshold scaled to the bucket's journey count.
func (e *Env) Fig14(params pattern.Params) []Fig14BucketResult {
	var out []Fig14BucketResult
	d := e.Pipeline.Diagram()
	rec := recognize.NewCSDRecognizer(d)
	for _, b := range core.TimeBuckets() {
		js := core.FilterJourneys(e.Workload.Journeys, b)
		bucketParams := params
		// Buckets hold a fraction of the week's journeys; scale σ so the
		// per-bucket mining keeps the same relative selectivity.
		if scaled := params.Sigma * len(js) / max(len(e.Workload.Journeys), 1); scaled >= 2 {
			bucketParams.Sigma = scaled
		} else {
			bucketParams.Sigma = 2
		}
		db := recognize.AnnotateJourneys(js, trajectory.DefaultChainParams(), rec)
		ps := pattern.Compat{E: pattern.NewCounterpartCluster()}.Extract(db, bucketParams)
		res := Fig14BucketResult{
			Bucket:      b,
			Journeys:    len(js),
			NumPatterns: len(ps),
			Coverage:    metrics.Coverage(ps),
			Top:         topTransitions(ps, 5),
		}
		out = append(out, res)
	}
	return out
}

// topTransitions ranks the semantic transitions of a pattern set.
func topTransitions(ps []pattern.Pattern, n int) []TransitionCount {
	agg := make(map[string]*TransitionCount)
	for _, p := range ps {
		name := ""
		for i, it := range p.Items {
			if i > 0 {
				name += " → "
			}
			name += it.String()
		}
		tc, ok := agg[name]
		if !ok {
			tc = &TransitionCount{Transition: name}
			agg[name] = tc
		}
		tc.Patterns++
		tc.Coverage += p.Support
	}
	out := make([]TransitionCount, 0, len(agg))
	for _, tc := range agg {
		out = append(out, *tc)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Coverage != out[b].Coverage {
			return out[a].Coverage > out[b].Coverage
		}
		return out[a].Transition < out[b].Transition
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// RenderFig14 writes the §6 time-bucket demonstration.
func (e *Env) RenderFig14(w io.Writer, params pattern.Params) []Fig14BucketResult {
	res := e.Fig14(params)
	header(w, "Figure 14(a–f) — patterns per weekly time bucket (CSD-PM)")
	for _, r := range res {
		fmt.Fprintf(w, "%-18s journeys=%6d  #patterns=%4d  coverage=%6d\n",
			r.Bucket, r.Journeys, r.NumPatterns, r.Coverage)
		for _, tc := range r.Top {
			fmt.Fprintf(w, "    %-60s ×%d (coverage %d)\n", tc.Transition, tc.Patterns, tc.Coverage)
		}
	}
	fmt.Fprintln(w, "shape check: weekday buckets are denser and more regular than weekend ones;")
	fmt.Fprintln(w, "mornings are dominated by Residence → work-type transitions.")
	return res
}

// Fig14gResult quantifies the airport hotspot.
type Fig14gResult struct {
	AirportShare    float64
	AirportPatterns int
	AirportCoverage int
}

// Fig14g measures how much taxi demand the airport concentrates and how
// many mined patterns point at it.
func (e *Env) Fig14g(params pattern.Params) Fig14gResult {
	// Airport flows fan out from every neighborhood; drill down with a
	// lower support threshold, as for the hospital demo.
	if params.Sigma > 12 {
		params.Sigma = 12
	}
	var r Fig14gResult
	near := 0
	for _, j := range e.Workload.Journeys {
		if geo.Haversine(j.Pickup, e.City.Airport) < 500 || geo.Haversine(j.Dropoff, e.City.Airport) < 500 {
			near++
		}
	}
	r.AirportShare = float64(near) / float64(max(len(e.Workload.Journeys), 1))
	for _, p := range e.Pipeline.Mine(core.CSDPM, params) {
		for _, sp := range p.Stays {
			if geo.Haversine(sp.P, e.City.Airport) < 500 {
				r.AirportPatterns++
				r.AirportCoverage += p.Support
				break
			}
		}
	}
	return r
}

// RenderFig14g writes the airport demonstration.
func (e *Env) RenderFig14g(w io.Writer, params pattern.Params) Fig14gResult {
	r := e.Fig14g(params)
	header(w, "Figure 14(g) — airport hotspot")
	fmt.Fprintf(w, "journeys touching the airport: %.1f%% of all records\n", r.AirportShare*100)
	fmt.Fprintf(w, "CSD-PM patterns anchored at the airport: %d (coverage %d)\n",
		r.AirportPatterns, r.AirportCoverage)
	return r
}

// Fig14hResult contrasts hospital visibility in GPS patterns vs
// check-in data (the semantic-bias demonstration).
type Fig14hResult struct {
	HospitalTrips    int
	HospitalPatterns int
	HospitalCoverage int
	CheckinShareNY   float64
	CheckinShareTK   float64
}

// Fig14h measures hospital-anchored patterns and the suppression of
// medical topics in biased check-in streams.
func (e *Env) Fig14h(params pattern.Params) Fig14hResult {
	// Hospital flows fan out from many residential origins, so each
	// origin-hospital pair is thin; mine this demo at a lower support
	// threshold, as a per-venue drill-down would.
	if params.Sigma > 12 {
		params.Sigma = 12
	}
	var r Fig14hResult
	for _, j := range e.Workload.Journeys {
		if geo.Haversine(j.Dropoff, e.City.Hospital) < 400 {
			r.HospitalTrips++
		}
	}
	for _, p := range e.Pipeline.Mine(core.CSDPM, params) {
		for _, sp := range p.Stays {
			if geo.Haversine(sp.P, e.City.Hospital) < 400 && sp.S.Has(poi.MedicalService) {
				r.HospitalPatterns++
				r.HospitalCoverage += p.Support
				break
			}
		}
	}
	ny := e.City.SampleCheckins(e.Workload.Journeys, synth.ProfileNewYork(), e.City.Seed+101, e.Cfg.Index)
	tk := e.City.SampleCheckins(e.Workload.Journeys, synth.ProfileTokyo(), e.City.Seed+101, e.Cfg.Index)
	r.CheckinShareNY = synth.MajorShare(ny, poi.MedicalService)
	r.CheckinShareTK = synth.MajorShare(tk, poi.MedicalService)
	return r
}

// RenderFig14h writes the hospital demonstration.
func (e *Env) RenderFig14h(w io.Writer, params pattern.Params) Fig14hResult {
	r := e.Fig14h(params)
	header(w, "Figure 14(h) — hospital patterns invisible to check-ins")
	fmt.Fprintf(w, "taxi drop-offs at the children's hospital: %d\n", r.HospitalTrips)
	fmt.Fprintf(w, "CSD-PM medical patterns at the hospital: %d (coverage %d)\n",
		r.HospitalPatterns, r.HospitalCoverage)
	fmt.Fprintf(w, "medical share of check-ins: NY-like %.2f%%, Tokyo-like %.2f%% (suppressed)\n",
		r.CheckinShareNY*100, r.CheckinShareTK*100)
	return r
}
