package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"csdm/internal/core"
	"csdm/internal/geo"
	"csdm/internal/metrics"
	"csdm/internal/pattern"
)

// Fig6Result summarizes the built City Semantic Diagram (the paper
// visualizes it as a colored unit map over Shanghai).
type Fig6Result struct {
	Units      int
	Coverage   float64
	MeanPurity float64
	MeanSize   float64
	MaxSize    int
	Map        string // ASCII raster of unit density
}

// Fig6 builds the CSD and summarizes its units.
func (e *Env) Fig6() Fig6Result {
	d := e.Pipeline.Diagram()
	r := Fig6Result{
		Units:      len(d.Units),
		Coverage:   d.Coverage(),
		MeanPurity: d.MeanUnitPurity(),
	}
	total := 0
	for _, u := range d.Units {
		total += len(u.Members)
		if len(u.Members) > r.MaxSize {
			r.MaxSize = len(u.Members)
		}
	}
	if len(d.Units) > 0 {
		r.MeanSize = float64(total) / float64(len(d.Units))
	}
	var centers []geo.Point
	for _, u := range d.Units {
		centers = append(centers, u.Center)
	}
	r.Map = asciiRaster(e, centers, 60, 24)
	return r
}

// RenderFig6 writes the Figure 6 reproduction.
func (e *Env) RenderFig6(w io.Writer) Fig6Result {
	r := e.Fig6()
	header(w, "Figure 6 — City Semantic Diagram")
	fmt.Fprintf(w, "units=%d  POI coverage=%.1f%%  mean unit purity=%.3f  mean size=%.1f  max size=%d\n",
		r.Units, r.Coverage*100, r.MeanPurity, r.MeanSize, r.MaxSize)
	fmt.Fprintln(w, "unit-center density map (darker = more units):")
	fmt.Fprintln(w, r.Map)
	return r
}

// Fig8Result summarizes the stay points (the pick-up/drop-off map).
type Fig8Result struct {
	Journeys    int
	StayPoints  int
	MeanTripMin float64
	Map         string
}

// Fig8 summarizes the workload's stay points.
func (e *Env) Fig8() Fig8Result {
	stays := e.Pipeline.StayPoints()
	return Fig8Result{
		Journeys:    len(e.Workload.Journeys),
		StayPoints:  len(stays),
		MeanTripMin: meanTripMinutes(e),
		Map:         asciiRaster(e, stays, 60, 24),
	}
}

func meanTripMinutes(e *Env) float64 {
	var sum float64
	for _, j := range e.Workload.Journeys {
		sum += j.DropoffTime.Sub(j.PickupTime).Minutes()
	}
	if len(e.Workload.Journeys) == 0 {
		return 0
	}
	return sum / float64(len(e.Workload.Journeys))
}

// RenderFig8 writes the Figure 8 reproduction.
func (e *Env) RenderFig8(w io.Writer) Fig8Result {
	r := e.Fig8()
	header(w, "Figure 8 — taxi stay points (pick-up/drop-off)")
	fmt.Fprintf(w, "journeys=%d  stay points=%d  mean trip=%.1f min (paper: ~30 min)\n",
		r.Journeys, r.StayPoints, r.MeanTripMin)
	fmt.Fprintln(w, "stay-point density map:")
	fmt.Fprintln(w, r.Map)
	return r
}

// Fig9Result holds the spatial-sparsity frequency curves of all six
// approaches under the normal condition.
type Fig9Result struct {
	// Curves maps approach name to its 20-bin histogram over [0, 100] m.
	Curves map[string]metrics.Histogram
	// Summaries holds the legend statistics (avg ss, #patterns,
	// coverage) per approach.
	Summaries map[string]metrics.Summary
}

// Fig9 mines with all six approaches and bins pattern sparsity.
func (e *Env) Fig9(params pattern.Params) Fig9Result {
	r := Fig9Result{
		Curves:    make(map[string]metrics.Histogram),
		Summaries: make(map[string]metrics.Summary),
	}
	for name, ps := range e.Pipeline.MineAll(params) {
		r.Curves[name] = metrics.SparsityHistogram(ps, 0, 5, 20)
		r.Summaries[name] = metrics.Summarize(ps)
	}
	return r
}

// RenderFig9 writes the Figure 9 reproduction.
func (e *Env) RenderFig9(w io.Writer, params pattern.Params) Fig9Result {
	r := e.Fig9(params)
	header(w, "Figure 9 — spatial-sparsity frequency distribution")
	fmt.Fprintf(w, "bins of width 5 m over [0, 100); row = approach, column = bin count\n")
	for _, a := range core.Approaches() {
		name := a.String()
		h := r.Curves[name]
		s := r.Summaries[name]
		cells := make([]string, len(h.Counts))
		for i, c := range h.Counts {
			cells[i] = fmt.Sprintf("%d", c)
		}
		fmt.Fprintf(w, "%-13s [%s]  avg ss=%.1f m, #patterns=%d, coverage=%d\n",
			name, strings.Join(cells, " "), s.MeanSparsity, s.NumPatterns, s.Coverage)
	}
	return r
}

// Fig10Result holds the semantic-consistency box plots.
type Fig10Result struct {
	Boxes map[string]metrics.BoxStats
}

// Fig10 mines with all six approaches and computes consistency boxes.
func (e *Env) Fig10(params pattern.Params) Fig10Result {
	r := Fig10Result{Boxes: make(map[string]metrics.BoxStats)}
	for name, ps := range e.Pipeline.MineAll(params) {
		r.Boxes[name] = metrics.ConsistencyBox(ps)
	}
	return r
}

// RenderFig10 writes the Figure 10 reproduction.
func (e *Env) RenderFig10(w io.Writer, params pattern.Params) Fig10Result {
	r := e.Fig10(params)
	header(w, "Figure 10 — semantic-consistency box plots")
	fmt.Fprintf(w, "%-13s %7s %7s %7s %7s %7s %7s %5s\n", "approach", "min", "Q1", "median", "Q3", "max", "mean", "n")
	for _, a := range core.Approaches() {
		b := r.Boxes[a.String()]
		fmt.Fprintf(w, "%-13s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %5d\n",
			a, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
	}
	return r
}

// asciiRaster renders points as a character raster over the city extent.
func asciiRaster(e *Env, pts []geo.Point, cols, rows int) string {
	if len(pts) == 0 {
		return "(no points)"
	}
	ext := e.City.ExtentMeters
	grid := make([]int, cols*rows)
	maxCount := 0
	for _, p := range pts {
		m := e.City.Proj.ToMeters(p)
		cx := int((m.X + ext) / (2 * ext) * float64(cols))
		cy := int((ext - m.Y) / (2 * ext) * float64(rows))
		if cx < 0 || cx >= cols || cy < 0 || cy >= rows {
			continue
		}
		grid[cy*cols+cx]++
		if grid[cy*cols+cx] > maxCount {
			maxCount = grid[cy*cols+cx]
		}
	}
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			c := grid[y*cols+x]
			if c == 0 {
				b.WriteByte(' ')
				continue
			}
			level := int(math.Ceil(float64(c) / float64(maxCount) * float64(len(shades)-1)))
			if level >= len(shades) {
				level = len(shades) - 1
			}
			b.WriteByte(shades[level])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
