package experiments

import (
	"fmt"
	"io"
	"time"

	"csdm/internal/core"
	"csdm/internal/metrics"
	"csdm/internal/pattern"
)

// SweepPoint is one (approach, parameter value) measurement of the four
// §5 metrics.
type SweepPoint struct {
	Approach string
	Value    string
	Summary  metrics.Summary
}

// SweepResult is the full grid of one parameter sweep (Figures 11–13).
type SweepResult struct {
	Parameter string
	Points    []SweepPoint
}

// sweep runs all six approaches for each parameter setting produced by
// vary.
func (e *Env) sweep(parameter string, n int, vary func(i int, p *pattern.Params) string) SweepResult {
	r := SweepResult{Parameter: parameter}
	for i := 0; i < n; i++ {
		params := MiningParams()
		label := vary(i, &params)
		for _, a := range core.Approaches() {
			ps := e.Pipeline.Mine(a, params)
			r.Points = append(r.Points, SweepPoint{
				Approach: a.String(),
				Value:    label,
				Summary:  metrics.Summarize(ps),
			})
		}
	}
	return r
}

// Fig11 sweeps the support threshold σ.
func (e *Env) Fig11() SweepResult {
	vals := sigmaSweep()
	return e.sweep("support σ", len(vals), func(i int, p *pattern.Params) string {
		p.Sigma = vals[i]
		return fmt.Sprintf("%d", vals[i])
	})
}

// Fig12 sweeps the density threshold ρ.
func (e *Env) Fig12() SweepResult {
	vals := rhoSweep()
	return e.sweep("density ρ", len(vals), func(i int, p *pattern.Params) string {
		p.Rho = vals[i]
		return fmt.Sprintf("%.3f", vals[i])
	})
}

// Fig13 sweeps the temporal constraint δ_t.
func (e *Env) Fig13() SweepResult {
	vals := deltaSweep()
	return e.sweep("temporal δt", len(vals), func(i int, p *pattern.Params) string {
		p.DeltaT = vals[i]
		return fmt.Sprintf("%dmin", int(vals[i]/time.Minute))
	})
}

// RenderSweep writes one sweep as four metric tables (the four subplots
// of Figures 11–13).
func RenderSweep(w io.Writer, figure string, r SweepResult) {
	header(w, fmt.Sprintf("%s — sweep of %s", figure, r.Parameter))
	byApproach := make(map[string][]SweepPoint)
	var values []string
	seen := make(map[string]bool)
	for _, p := range r.Points {
		byApproach[p.Approach] = append(byApproach[p.Approach], p)
		if !seen[p.Value] {
			seen[p.Value] = true
			values = append(values, p.Value)
		}
	}
	metricsOf := []struct {
		name string
		get  func(metrics.Summary) string
	}{
		{"#patterns", func(s metrics.Summary) string { return fmt.Sprintf("%8d", s.NumPatterns) }},
		{"coverage", func(s metrics.Summary) string { return fmt.Sprintf("%8d", s.Coverage) }},
		{"avg spatial sparsity (m)", func(s metrics.Summary) string { return fmt.Sprintf("%8.1f", s.MeanSparsity) }},
		{"avg semantic consistency", func(s metrics.Summary) string { return fmt.Sprintf("%8.3f", s.MeanConsistency) }},
	}
	for _, m := range metricsOf {
		fmt.Fprintf(w, "(%s)\n%-13s", m.name, r.Parameter)
		for _, v := range values {
			fmt.Fprintf(w, "%9s", v)
		}
		fmt.Fprintln(w)
		for _, a := range core.Approaches() {
			fmt.Fprintf(w, "%-13s", a.String())
			for _, p := range byApproach[a.String()] {
				fmt.Fprintf(w, " %s", m.get(p.Summary))
			}
			fmt.Fprintln(w)
		}
	}
}
