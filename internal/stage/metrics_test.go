package stage

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"csdm/internal/obs"
)

// TestStageMetrics runs stages through the engine with a traced,
// registry-mirrored config and checks the per-stage duration histogram
// and error/timeout counters land under their labeled families.
func TestStageMetrics(t *testing.T) {
	tr := obs.New()
	reg := obs.NewRegistry()
	tr.Mirror(reg)
	g := staticGraph(Config{Trace: tr})

	ok := Add(g, Decl{Name: "fine"}, func(Env) (int, error) { return 1, nil })
	boom := errors.New("boom")
	bad := Add(g, Decl{Name: "broken"}, func(Env) (int, error) { return 0, boom })

	if _, err := ok.Get(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Get(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}

	for _, name := range []string{
		obs.Label("csdm_stage_duration_seconds", "stage", "fine"),
		obs.Label("csdm_stage_duration_seconds", "stage", "broken"),
	} {
		if got := reg.HistogramSnapshot(name).Count; got != 1 {
			t.Fatalf("%s observations = %d, want 1", name, got)
		}
	}
	if got := reg.Counter(obs.Label("csdm_stage_errors_total", "stage", "broken")); got != 1 {
		t.Fatalf("broken error counter = %d, want 1", got)
	}
	if got := reg.Counter(obs.Label("csdm_stage_errors_total", "stage", "fine")); got != 0 {
		t.Fatalf("fine stage counted an error: %d", got)
	}
	if got := tr.Counter("stage.errors"); got != 1 {
		t.Fatalf("stage.errors = %d, want 1", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := obs.Lint(strings.NewReader(b.String())); len(errs) != 0 {
		t.Fatalf("stage metrics fail lint: %v\n%s", errs, b.String())
	}
}

// TestStageTimeoutMetric: a deadline overrun bumps the labeled timeout
// counter alongside the legacy dotted one.
func TestStageTimeoutMetric(t *testing.T) {
	tr := obs.New()
	reg := obs.NewRegistry()
	tr.Mirror(reg)
	g := staticGraph(Config{Trace: tr, StageTimeout: 5 * time.Millisecond})
	slow := Add(g, Decl{Name: "slow"}, func(env Env) (int, error) {
		<-env.Ctx.Done()
		return 0, env.Ctx.Err()
	})
	if _, err := slow.Get(context.Background()); err == nil {
		t.Fatal("slow stage did not time out")
	}
	if got := reg.Counter(obs.Label("csdm_stage_timeouts_total", "stage", "slow")); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
	if got := tr.Counter("stage.timeouts"); got != 1 {
		t.Fatalf("stage.timeouts = %d, want 1", got)
	}
}

// TestUntracedStageRecordsNothing: with no trace configured the engine
// must not fabricate metrics (the disabled path stays uninstrumented).
func TestUntracedStageRecordsNothing(t *testing.T) {
	g := staticGraph(Config{})
	c := Add(g, Decl{Name: "quiet"}, func(Env) (int, error) { return 1, nil })
	if _, err := c.Get(context.Background()); err != nil {
		t.Fatal(err)
	}
}
