package stage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"csdm/internal/exec"
	"csdm/internal/obs"
)

// fakeStore is an in-memory checkpoint store.
type fakeStore struct {
	mu    sync.Mutex
	files map[string][]byte
	saves int
}

func newFakeStore() *fakeStore { return &fakeStore{files: make(map[string][]byte)} }

func (s *fakeStore) Load(artifact, file string, read func(io.Reader) error) bool {
	s.mu.Lock()
	b, ok := s.files[file]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return read(bytes.NewReader(b)) == nil
}

func (s *fakeStore) Save(artifact, file string, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	s.files[file] = buf.Bytes()
	s.saves++
	s.mu.Unlock()
	return nil
}

// intCodec round-trips an int as decimal text.
var intCodec = Codec[int]{
	Encode: func(w io.Writer, v int) error { _, err := fmt.Fprintf(w, "%d", v); return err },
	Decode: func(r io.Reader) (int, error) { var v int; _, err := fmt.Fscan(r, &v); return v, err },
}

func staticGraph(cfg Config) *Graph { return NewGraph(func() Config { return cfg }) }

// TestMiddlewareOrder pins the engine's documented middleware order —
// span → deadline → fault → checkpoint → body — by walking the span
// tree a fully-engaged stage leaves on the trace.
func TestMiddlewareOrder(t *testing.T) {
	tr := obs.New()
	g := staticGraph(Config{
		Trace:        tr,
		StageTimeout: time.Minute,
		Store:        newFakeStore(),
	})
	c := Add(g, Decl{Name: "order", Site: "test.order", Artifact: "art", File: "art.txt"},
		func(Env) (int, error) { return 7, nil }).Checkpoint(intCodec)
	if _, err := c.Get(context.Background()); err != nil {
		t.Fatal(err)
	}

	snap := tr.Snapshot()
	var root *obs.SpanSnapshot
	for i := range snap.Spans {
		if snap.Spans[i].Name == "stage.order" {
			root = &snap.Spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no stage.order span in %+v", snap.Spans)
	}
	cur := root
	for _, want := range []string{"deadline", "fault", "checkpoint"} {
		if len(cur.Children) != 1 || cur.Children[0].Name != want {
			t.Fatalf("under %s: children %+v, want exactly [%s]", cur.Name, cur.Children, want)
		}
		cur = &cur.Children[0]
	}
	if got := tr.Counter("stage.runs"); got != 1 {
		t.Fatalf("stage.runs = %d, want 1", got)
	}
}

// TestCellMemoizesAndRetries: a failed build never poisons the cell,
// a successful one is never repeated.
func TestCellMemoizesAndRetries(t *testing.T) {
	g := staticGraph(Config{})
	calls := 0
	c := Add(g, Decl{Name: "flaky"}, func(Env) (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 42, nil
	})
	if c.Origin() != OriginUnbuilt {
		t.Fatal("origin before first Get")
	}
	if _, err := c.Get(context.Background()); err == nil {
		t.Fatal("first Get should fail")
	}
	if c.Err() == nil {
		t.Fatal("Err should report the failed build")
	}
	v, err := c.Get(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("retry: v=%d err=%v", v, err)
	}
	if c.Err() != nil {
		t.Fatalf("Err after success: %v", c.Err())
	}
	if _, _ = c.Get(context.Background()); calls != 2 {
		t.Fatalf("body ran %d times, want 2", calls)
	}
	if c.Origin() != OriginBuilt {
		t.Fatalf("origin = %v, want built", c.Origin())
	}
}

// TestCellConcurrentGet: concurrent callers share one build.
func TestCellConcurrentGet(t *testing.T) {
	g := staticGraph(Config{Opt: exec.Options{Workers: 4}})
	var calls int32
	c := Add(g, Decl{Name: "shared"}, func(Env) (int, error) {
		calls++ // safe: the cell lock is held across the build
		time.Sleep(10 * time.Millisecond)
		return 1, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := c.Get(context.Background()); err != nil || v != 1 {
				t.Errorf("Get: v=%d err=%v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("body ran %d times under concurrent Get, want 1", calls)
	}
}

// TestCheckpointSaveAndResume: the first build persists the artifact,
// a fresh cell over the same store resumes without running its body.
func TestCheckpointSaveAndResume(t *testing.T) {
	store := newFakeStore()
	decl := Decl{Name: "ck", Artifact: "art", File: "art.txt"}

	g1 := staticGraph(Config{Store: store})
	c1 := Add(g1, decl, func(Env) (int, error) { return 99, nil }).Checkpoint(intCodec)
	if v, err := c1.Get(context.Background()); err != nil || v != 99 {
		t.Fatalf("build: v=%d err=%v", v, err)
	}
	if c1.Origin() != OriginBuilt || store.saves != 1 {
		t.Fatalf("origin=%v saves=%d after first build", c1.Origin(), store.saves)
	}

	g2 := staticGraph(Config{Store: store})
	c2 := Add(g2, decl, func(Env) (int, error) {
		t.Error("body ran despite a valid checkpoint")
		return 0, nil
	}).Checkpoint(intCodec)
	if v, err := c2.Get(context.Background()); err != nil || v != 99 {
		t.Fatalf("resume: v=%d err=%v", v, err)
	}
	if c2.Origin() != OriginResumed {
		t.Fatalf("origin = %v, want resumed", c2.Origin())
	}
}

// TestSetInstallsOnce: Set wins over the body and the store, and never
// overwrites a built value.
func TestSetInstallsOnce(t *testing.T) {
	g := staticGraph(Config{Store: newFakeStore()})
	c := Add(g, Decl{Name: "inst", Artifact: "a", File: "a.txt"}, func(Env) (int, error) {
		t.Error("body ran despite Set")
		return 0, nil
	}).Checkpoint(intCodec)
	c.Set(5)
	if v, _ := c.Get(context.Background()); v != 5 || c.Origin() != OriginInstalled {
		t.Fatalf("v=%d origin=%v", v, c.Origin())
	}
	c.Set(6) // too late
	if v, _ := c.Get(context.Background()); v != 5 {
		t.Fatalf("Set overwrote a built cell: %d", v)
	}
}

// TestDependencyResolution: declared deps build before the dependent's
// body runs, and a dep's failure surfaces as-is.
func TestDependencyResolution(t *testing.T) {
	g := staticGraph(Config{})
	depErr := errors.New("dep down")
	failing := true
	var order []string
	a := Add(g, Decl{Name: "a"}, func(Env) (int, error) {
		if failing {
			return 0, depErr
		}
		order = append(order, "a")
		return 10, nil
	})
	b := Add(g, Decl{Name: "b", Deps: []string{"a"}}, func(env Env) (int, error) {
		order = append(order, "b")
		v, err := a.Get(env.Run)
		return v + 1, err
	})

	if _, err := b.Get(context.Background()); !errors.Is(err, depErr) {
		t.Fatalf("dep failure surfaced as %v, want %v as-is", err, depErr)
	}
	failing = false
	v, err := b.Get(context.Background())
	if err != nil || v != 11 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("build order %v, want [a b]", order)
	}
}

// TestStageDeadline: an overrun of the stage's own deadline is wrapped
// with the stage name and counted, and errors.Is-compatible with
// context.DeadlineExceeded.
func TestStageDeadline(t *testing.T) {
	tr := obs.New()
	g := staticGraph(Config{Trace: tr, StageTimeout: 20 * time.Millisecond})
	c := Add(g, Decl{Name: "slow"}, func(env Env) (int, error) {
		<-env.Ctx.Done()
		return 0, env.Ctx.Err()
	})
	_, err := c.Get(context.Background())
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "stage slow exceeded its") {
		t.Fatalf("timeout error not classified: %v", err)
	}
	if got := tr.Counter("stage.timeouts"); got != 1 {
		t.Fatalf("stage.timeouts = %d, want 1", got)
	}
}

// TestRunCancelNotRelabeled: a run-level cancellation is never dressed
// up as a stage timeout.
func TestRunCancelNotRelabeled(t *testing.T) {
	tr := obs.New()
	g := staticGraph(Config{Trace: tr, StageTimeout: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	c := Add(g, Decl{Name: "canceled"}, func(env Env) (int, error) {
		cancel()
		<-env.Ctx.Done()
		return 0, env.Ctx.Err()
	})
	_, err := c.Get(ctx)
	if !errors.Is(err, context.Canceled) || strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want plain cancellation", err)
	}
	if got := tr.Counter("stage.timeouts"); got != 0 {
		t.Fatalf("stage.timeouts = %d, want 0", got)
	}
}

// TestRunEachIsolation: a panicking slot fails alone, as its own
// *exec.PanicError; its siblings complete.
func TestRunEachIsolation(t *testing.T) {
	g := staticGraph(Config{Opt: exec.Options{Workers: 2}})
	out := RunEach(g, context.Background(), 4, func(i int, _ Env) (int, error) {
		if i == 2 {
			panic("slot 2 exploded")
		}
		return i * i, nil
	})
	for i, r := range out {
		if i == 2 {
			var pe *exec.PanicError
			if !errors.As(r.Err, &pe) || !strings.Contains(pe.Error(), "slot 2 exploded") {
				t.Fatalf("slot 2: err = %v, want PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil || r.V != i*i {
			t.Fatalf("slot %d: v=%d err=%v", i, r.V, r.Err)
		}
	}
}

// TestRunEachNotRun: slots the aborted pool never reached read
// ErrNotRun instead of an empty success.
func TestRunEachNotRun(t *testing.T) {
	g := staticGraph(Config{Opt: exec.Options{Workers: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := RunEach(g, ctx, 3, func(i int, _ Env) (int, error) { return i, nil })
	for i, r := range out {
		if !errors.Is(r.Err, ErrNotRun) {
			t.Fatalf("slot %d: err = %v, want ErrNotRun", i, r.Err)
		}
	}
}

// TestAddPanicsOnWiringBugs: duplicate names and undeclared deps are
// programmer errors, caught at declaration time.
func TestAddPanicsOnWiringBugs(t *testing.T) {
	g := staticGraph(Config{})
	Add(g, Decl{Name: "x"}, func(Env) (int, error) { return 0, nil })
	mustPanic(t, "duplicate name", func() {
		Add(g, Decl{Name: "x"}, func(Env) (int, error) { return 0, nil })
	})
	mustPanic(t, "undeclared dep", func() {
		Add(g, Decl{Name: "y", Deps: []string{"ghost"}}, func(Env) (int, error) { return 0, nil })
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestStagesIntrospection: the graph reports declarations and origins.
func TestStagesIntrospection(t *testing.T) {
	g := staticGraph(Config{})
	a := Add(g, Decl{Name: "a", Artifact: "art", File: "f"}, func(Env) (int, error) { return 1, nil })
	Add(g, Decl{Name: "b", Deps: []string{"a"}, Site: "s"}, func(Env) (int, error) { return 2, nil })
	infos := g.Stages()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("stages = %+v", infos)
	}
	if infos[0].Artifact != "art" || infos[1].Site != "s" || infos[1].Deps[0] != "a" {
		t.Fatalf("declarations lost: %+v", infos)
	}
	if infos[0].Origin != OriginUnbuilt {
		t.Fatal("origin before build")
	}
	if _, err := a.Get(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := g.Stages()[0].Origin; got != OriginBuilt {
		t.Fatalf("origin after build = %v", got)
	}
}
