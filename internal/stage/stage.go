// Package stage is the pipeline's stage-graph engine: one execution
// environment and one middleware stack for every stage of the Pervasive
// Miner, replacing the per-concern plumbing (trace, worker options,
// per-stage deadlines, fault sites, checkpoints, lazy cells) that PRs
// 1–3 threaded through every stage signature by hand.
//
// A stage is a named func(Env) (T, error). Env carries everything a
// stage body needs — the stage-scoped context, the run's context for
// launching dependencies, the telemetry trace and span, and the
// execution-layer options — so adding a cross-cutting concern means
// adding one middleware here, not another parameter to six signatures.
//
// The engine composes a fixed middleware stack around every body, in
// this order (outermost first):
//
//	span       a "stage.<name>" telemetry span wrapping the whole run
//	deadline   the per-stage timeout (Config.StageTimeout), classifying
//	           an overrun as a stage timeout distinct from a run cancel
//	fault      the stage's declared fault-injection site (Decl.Site)
//	checkpoint resume-from / save-to the configured Store for stages
//	           that declare an artifact (Decl.Artifact + Decl.File)
//
// Each engaged middleware opens a child span, so the stack's order is
// observable on any trace snapshot — and pinned by the engine tests.
//
// Declared stages (Add) are memoized in retry-safe once-cells: a build
// that fails — a canceled context, an injected fault, a timeout — never
// poisons the cell; the next Get retries. One-shot stages (Run) go
// through the same middleware without memoization, and RunEach fans a
// batch of them out over the bounded worker pool with per-slot panic
// isolation — the semantics core.MineAllCtx used to hand-roll.
package stage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/obs"
)

// Env is the execution environment a stage body runs in. It bundles
// the values that used to ride as extra parameters on every stage
// signature (ctx, *obs.Trace, exec.Options).
type Env struct {
	// Ctx is the stage-scoped context: the run's context with the
	// per-stage deadline applied. Bodies poll and pass down this one.
	Ctx context.Context
	// Run is the enclosing run's context, without this stage's
	// deadline. Dependency stages launched from a body (Cell.Get) take
	// Run, so each stage gets its own full deadline instead of
	// inheriting the remainder of its caller's.
	Run context.Context
	// Span is the stage's telemetry span (nil when tracing is off).
	Span *obs.Span
	// Trace is the run's telemetry sink. All obs methods are nil-safe.
	Trace *obs.Trace
	// Opt carries the execution-layer knobs (worker budget, spatial
	// index backend) and the cross-stage arena handle: Opt.Arenas is the
	// pipeline-lifetime scratch pool a stage body checks per-slot arenas
	// out of (Opt.AcquireArenas / Opt.ReleaseArenas) so scratch grown by
	// one stage invocation is reused by the next. The handle rides on
	// Options rather than Env so legacy call paths that only thread
	// exec.Options get arena reuse too.
	Opt exec.Options
}

// StartSpan opens a child span under the stage's span, or a root span
// on the trace when the engine span is absent (legacy entry points).
func (e Env) StartSpan(name string) *obs.Span {
	if e.Span != nil {
		return e.Span.Start(name)
	}
	return e.Trace.Start(name)
}

// Background returns a minimal environment — background contexts, no
// telemetry, default execution options — for legacy wrappers and tests.
func Background() Env {
	return Env{Ctx: context.Background(), Run: context.Background()}
}

// Func is a stage body.
type Func[T any] func(Env) (T, error)

// Store abstracts checkpoint persistence for stages that declare an
// artifact. *ckpt.Manager implements it; a nil-pointer store is valid
// (every Load misses, every Save no-ops).
type Store interface {
	// Load decodes the named artifact from file via read, reporting
	// whether a valid checkpoint was found.
	Load(artifact, file string, read func(io.Reader) error) bool
	// Save atomically persists the named artifact to file via write.
	Save(artifact, file string, write func(io.Writer) error) error
}

// Config is the graph's cross-cutting configuration, re-read on every
// stage run so late wiring (SetTrace before the first build) is seen.
type Config struct {
	// Trace is the telemetry sink (nil disables tracing).
	Trace *obs.Trace
	// Opt is the execution-layer option bundle every stage receives.
	Opt exec.Options
	// StageTimeout bounds each stage with its own deadline; zero
	// disables the deadline middleware.
	StageTimeout time.Duration
	// Store enables the checkpoint middleware for stages declaring an
	// artifact; nil disables it.
	Store Store
	// CounterPrefix prefixes the engine's counters ("<prefix>.timeouts",
	// "<prefix>.runs"). Empty means "stage". core sets "core.stage" to
	// keep the historical counter names.
	CounterPrefix string
}

func (c Config) prefix() string {
	if c.CounterPrefix == "" {
		return "stage"
	}
	return c.CounterPrefix
}

// Decl is the static description of a stage: its name, documented
// dependencies, optional fault site, and optional checkpoint artifact.
type Decl struct {
	// Name identifies the stage in spans ("stage.<name>"), timeout
	// errors and introspection.
	Name string
	// Deps names the stages this one pulls via Cell.Get, for graph
	// introspection. Add panics on a dep that is not yet declared.
	Deps []string
	// Site is the fault-injection site guarding the body ("" for none).
	Site string
	// Artifact names the stage's checkpoint artifact ("" for none);
	// File is the filename inside the store. Declaring them here is
	// what keeps the CLI and the checkpoint layer from each holding
	// their own copy of the name→file mapping.
	Artifact string
	File     string
}

// Origin reports how a cell's value materialized.
type Origin int

const (
	// OriginUnbuilt means the cell has no value yet.
	OriginUnbuilt Origin = iota
	// OriginBuilt means the body ran (and, if checkpointed, saved).
	OriginBuilt
	// OriginResumed means the value was loaded from the Store.
	OriginResumed
	// OriginInstalled means Set installed a pre-built value.
	OriginInstalled
)

// String implements fmt.Stringer.
func (o Origin) String() string {
	switch o {
	case OriginBuilt:
		return "built"
	case OriginResumed:
		return "resumed"
	case OriginInstalled:
		return "installed"
	default:
		return "unbuilt"
	}
}

// Info is the introspection record of one declared stage.
type Info struct {
	Name     string
	Deps     []string
	Site     string
	Artifact string
	File     string
	Origin   Origin
	// Err is the stage's most recent build error (nil after a success;
	// failed builds are retried, so this is diagnostic, not sticky).
	Err error
}

// Graph owns the stage declarations and the shared configuration.
type Graph struct {
	cfg func() Config

	mu      sync.Mutex
	names   map[string]bool
	runners map[string]func(context.Context) error
	cells   []func() Info
}

// NewGraph returns an empty graph. cfg is re-invoked on every stage
// run, so the owner can wire the trace or checkpoint store after
// construction (but before the first build).
func NewGraph(cfg func() Config) *Graph {
	return &Graph{
		cfg:     cfg,
		names:   make(map[string]bool),
		runners: make(map[string]func(context.Context) error),
	}
}

// runner returns the named stage's build function (nil for one-shot
// stages, which have no cell to build).
func (g *Graph) runner(name string) func(context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runners[name]
}

// Stages returns the introspection records of every declared stage, in
// declaration order.
func (g *Graph) Stages() []Info {
	g.mu.Lock()
	cells := append([]func() Info(nil), g.cells...)
	g.mu.Unlock()
	out := make([]Info, len(cells))
	for i, f := range cells {
		out[i] = f()
	}
	return out
}

// Cell is a declared, memoized stage: a build-once artifact holder run
// through the engine's middleware. Unlike sync.Once, a failed build
// does not poison the cell — the next Get retries — so a pipeline
// survives an aborted warm-up, an injected fault, or a stage timeout.
type Cell[T any] struct {
	g     *Graph
	decl  Decl
	fn    Func[T]
	codec *Codec[T]

	mu      sync.Mutex
	done    bool
	v       T
	origin  Origin
	lastErr error
}

// Codec (de)serializes a cell's artifact for the checkpoint middleware.
type Codec[T any] struct {
	Encode func(io.Writer, T) error
	Decode func(io.Reader) (T, error)
}

// Add declares a memoized stage on the graph. It panics on a duplicate
// name or an undeclared dependency — both are wiring bugs.
func Add[T any](g *Graph, decl Decl, fn Func[T]) *Cell[T] {
	g.mu.Lock()
	defer g.mu.Unlock()
	if decl.Name == "" || g.names[decl.Name] {
		panic(fmt.Sprintf("stage: duplicate or empty stage name %q", decl.Name))
	}
	for _, d := range decl.Deps {
		if !g.names[d] {
			panic(fmt.Sprintf("stage: %s depends on undeclared stage %q", decl.Name, d))
		}
	}
	g.names[decl.Name] = true
	c := &Cell[T]{g: g, decl: decl, fn: fn}
	g.cells = append(g.cells, c.info)
	g.runners[decl.Name] = func(ctx context.Context) error {
		_, err := c.Get(ctx)
		return err
	}
	return c
}

// Checkpoint attaches a codec, enabling the checkpoint middleware for
// this cell whenever the graph's Store is configured.
func (c *Cell[T]) Checkpoint(codec Codec[T]) *Cell[T] {
	c.codec = &codec
	return c
}

// Name returns the stage's declared name.
func (c *Cell[T]) Name() string { return c.decl.Name }

// Decl returns the stage's declaration (the single source of its
// artifact and file names).
func (c *Cell[T]) Decl() Decl { return c.decl }

func (c *Cell[T]) info() Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Info{
		Name:     c.decl.Name,
		Deps:     c.decl.Deps,
		Site:     c.decl.Site,
		Artifact: c.decl.Artifact,
		File:     c.decl.File,
		Origin:   c.origin,
		Err:      c.lastErr,
	}
}

// Origin reports how the cell's current value materialized
// (OriginUnbuilt when it has none).
func (c *Cell[T]) Origin() Origin {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.origin
}

// Err returns the cell's most recent build error (nil after a success).
func (c *Cell[T]) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Get returns the cell's value, building it through the middleware
// stack on first use. The cell's lock is held across the build, so
// concurrent callers wait for one build instead of duplicating it. A
// failed build returns its error without memoizing — the next Get
// retries.
func (c *Cell[T]) Get(ctx context.Context) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.v, nil
	}
	v, origin, err := run(c.g, ctx, c.decl, c.codec, c.fn)
	c.lastErr = err
	if err != nil {
		var zero T
		return zero, err
	}
	c.v, c.done, c.origin = v, true, origin
	return c.v, nil
}

// Set installs v (e.g. a deserialized artifact) unless the cell is
// already built; the checkpoint middleware never overwrites an
// installed value.
func (c *Cell[T]) Set(v T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		c.v, c.done, c.origin = v, true, OriginInstalled
	}
}

// Run executes a one-shot stage — same middleware stack, no
// memoization — for dynamic work like per-approach extraction, where
// the stage identity depends on runtime parameters.
func Run[T any](g *Graph, ctx context.Context, decl Decl, fn Func[T]) (T, error) {
	v, _, err := run[T](g, ctx, decl, nil, fn)
	return v, err
}

// run is the engine core: one stage execution through the composed
// middleware stack (span → deadline → fault → checkpoint → body).
//
// Declared dependencies build first, before any of this stage's
// middleware engages: each dependency is its own stage with its own
// full deadline, and a dependency's failure is returned as-is — the
// stage never relabels someone else's error as its own timeout.
func run[T any](g *Graph, ctx context.Context, decl Decl, codec *Codec[T], fn Func[T]) (T, Origin, error) {
	cfg := g.cfg()
	origin := OriginBuilt
	for _, dep := range decl.Deps {
		if r := g.runner(dep); r != nil {
			if err := r(ctx); err != nil {
				var zero T
				return zero, origin, err
			}
		}
	}

	// Innermost: checkpoint (resume-or-build-and-save).
	body := fn
	if codec != nil {
		body = func(env Env) (T, error) {
			if cfg.Store == nil || decl.Artifact == "" {
				return fn(env)
			}
			sp := env.StartSpan("checkpoint")
			defer sp.End()
			env.Span = sp
			var v T
			var derr error
			if cfg.Store.Load(decl.Artifact, decl.File, func(r io.Reader) error {
				v, derr = codec.Decode(r)
				return derr
			}) {
				origin = OriginResumed
				return v, nil
			}
			v, err := fn(env)
			if err != nil {
				return v, err
			}
			if serr := cfg.Store.Save(decl.Artifact, decl.File, func(w io.Writer) error {
				return codec.Encode(w, v)
			}); serr != nil {
				var zero T
				return zero, fmt.Errorf("stage %s: checkpoint: %w", decl.Name, serr)
			}
			return v, nil
		}
	}

	// Fault-site injection.
	if decl.Site != "" {
		next := body
		body = func(env Env) (T, error) {
			sp := env.StartSpan("fault")
			defer sp.End()
			env.Span = sp
			if err := fault.Hit(decl.Site); err != nil {
				var zero T
				return zero, err
			}
			return next(env)
		}
	}

	// Per-stage deadline: an overrun of the stage's own deadline (run
	// context still live) is wrapped with the stage name and counted,
	// so callers can tell "this stage was too slow" from "the whole
	// run was canceled".
	if cfg.StageTimeout > 0 {
		next := body
		body = func(env Env) (T, error) {
			sp := env.StartSpan("deadline")
			defer sp.End()
			env.Span = sp
			sctx, cancel := context.WithTimeout(env.Ctx, cfg.StageTimeout)
			defer cancel()
			env.Ctx = sctx
			v, err := next(env)
			if err != nil && env.Run.Err() == nil && errors.Is(sctx.Err(), context.DeadlineExceeded) {
				cfg.Trace.Add(cfg.prefix()+".timeouts", 1)
				if cfg.Trace != nil {
					cfg.Trace.Add(obs.Label("csdm_stage_timeouts_total", "stage", decl.Name), 1)
				}
				var zero T
				return zero, fmt.Errorf("stage %s exceeded its %v deadline: %w", decl.Name, cfg.StageTimeout, err)
			}
			return v, err
		}
	}

	// Outermost: the stage span, plus the per-stage duration histogram
	// and error counter. Both are label-keyed metrics mirrored onto the
	// process Registry when one is attached; the whole block is guarded
	// on cfg.Trace so untraced runs pay nothing (the labeled-name
	// construction allocates), and it opens no child spans — the span
	// tree stays exactly the middleware chain the engine tests pin.
	sp := cfg.Trace.Start("stage." + decl.Name)
	defer sp.End()
	cfg.Trace.Add(cfg.prefix()+".runs", 1)
	env := Env{Ctx: ctx, Run: ctx, Span: sp, Trace: cfg.Trace, Opt: cfg.Opt}
	var started time.Time
	if cfg.Trace != nil {
		started = time.Now()
	}
	v, err := body(env)
	if cfg.Trace != nil {
		cfg.Trace.Observe(obs.Label("csdm_stage_duration_seconds", "stage", decl.Name), time.Since(started).Seconds())
		if err != nil {
			cfg.Trace.Add(cfg.prefix()+".errors", 1)
			cfg.Trace.Add(obs.Label("csdm_stage_errors_total", "stage", decl.Name), 1)
		}
	}
	if err != nil {
		var zero T
		return zero, origin, err
	}
	return v, origin, nil
}

// Result is one RunEach slot: the stage's value or its own failure.
type Result[T any] struct {
	V   T
	Err error
}

// ErrNotRun marks a fan-out slot whose task never executed because the
// pool aborted first (cancellation or an injected pool fault).
var ErrNotRun = errors.New("stage: not run: fan-out aborted early")

// RunEach fans n dynamic stage instances out over the graph's bounded
// worker pool, with the isolation semantics a MineAll needs: each
// slot's failure — error or panic — lands in its own Result and never
// stops the siblings; results come back in index order for any worker
// budget; slots the pool never reached (aborted by cancellation) read
// ErrNotRun instead of an empty success. A panicking slot yields an
// *exec.PanicError carrying the panic site's stack.
func RunEach[T any](g *Graph, ctx context.Context, n int, fn func(i int, env Env) (T, error)) []Result[T] {
	cfg := g.cfg()
	out := make([]Result[T], n)
	for i := range out {
		out[i].Err = ErrNotRun
	}
	pfErr := exec.ParallelFor(ctx, cfg.Opt.Workers, n, func(i int) error {
		v, err := func() (v T, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = exec.NewPanicError(r)
				}
			}()
			return fn(i, Env{Ctx: ctx, Run: ctx, Trace: cfg.Trace, Opt: cfg.Opt})
		}()
		out[i] = Result[T]{V: v, Err: err}
		return nil
	})
	if pfErr != nil {
		for i := range out {
			if errors.Is(out[i].Err, ErrNotRun) {
				out[i].Err = fmt.Errorf("%w: %w", ErrNotRun, pfErr)
			}
		}
	}
	return out
}
