package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"csdm/internal/csd"
	"csdm/internal/obs"
)

func lineageManager(t *testing.T) (*Manager, string) {
	t.Helper()
	dir := t.TempDir()
	m, err := New(dir, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	return m, dir
}

func TestSaveGenerationAndResolveCurrent(t *testing.T) {
	m, dir := lineageManager(t)
	d := testDiagram(t)
	for gen := int64(1); gen <= 3; gen++ {
		d.Generation = gen
		d.ParentGeneration = gen - 1
		if err := m.SaveGenerationDiagram(d); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		path, err := ResolveCurrent(dir)
		if err != nil {
			t.Fatalf("gen %d resolve: %v", gen, err)
		}
		if filepath.Base(path) != GenerationFile(gen) {
			t.Fatalf("CURRENT: got %s, want %s", filepath.Base(path), GenerationFile(gen))
		}
		got, err := csd.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Generation != gen || got.ParentGeneration != gen-1 {
			t.Fatalf("lineage: got %d/%d, want %d/%d",
				got.Generation, got.ParentGeneration, gen, gen-1)
		}
	}
	gens, err := Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gens, []int64{1, 2, 3}) {
		t.Fatalf("generations: %v", gens)
	}
}

func TestResolveCurrentRejectsMalformed(t *testing.T) {
	_, dir := lineageManager(t)
	if _, err := ResolveCurrent(dir); err == nil {
		t.Fatal("missing CURRENT resolved")
	}
	for name, content := range map[string]string{
		"empty":     "\n",
		"traversal": "../etc/passwd\n",
		"dangling":  "diagram.99.csdf\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, CurrentFile), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ResolveCurrent(dir); err == nil {
			t.Errorf("%s CURRENT resolved", name)
		}
	}
}

func TestPublishCurrentRefusesDangling(t *testing.T) {
	m, _ := lineageManager(t)
	if err := m.PublishCurrent("diagram.7.csdf"); err == nil {
		t.Fatal("dangling publish accepted")
	}
	if err := m.PublishCurrent("sub/dir.csdf"); err == nil {
		t.Fatal("path-separator publish accepted")
	}
}

func TestPruneGenerationsKeepsNewestAndCurrent(t *testing.T) {
	m, dir := lineageManager(t)
	d := testDiagram(t)
	for gen := int64(1); gen <= 5; gen++ {
		d.Generation = gen
		if err := m.SaveGenerationDiagram(d); err != nil {
			t.Fatal(err)
		}
	}
	// Point CURRENT back at an old generation; prune must spare it.
	if err := m.PublishCurrent(GenerationFile(2)); err != nil {
		t.Fatal(err)
	}
	removed, err := m.PruneGenerations(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // 1 and 3 go; 2 (current), 4, 5 stay
		t.Fatalf("removed %d, want 2", removed)
	}
	gens, err := Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gens, []int64{2, 4, 5}) {
		t.Fatalf("surviving generations: %v", gens)
	}
	if path, err := ResolveCurrent(dir); err != nil || filepath.Base(path) != GenerationFile(2) {
		t.Fatalf("CURRENT after prune: %v, %v", path, err)
	}
}

func TestLineageNilManager(t *testing.T) {
	var m *Manager
	if err := m.SaveGenerationDiagram(testDiagram(t)); err != nil {
		t.Fatal(err)
	}
	if err := m.PublishCurrent("x"); err != nil {
		t.Fatal(err)
	}
	if n, err := m.PruneGenerations(1); n != 0 || err != nil {
		t.Fatal(n, err)
	}
}

func TestGenerationFileParsing(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  int64
		ok   bool
	}{
		{"diagram.1.csdf", 1, true},
		{"diagram.42.csdf", 42, true},
		{"diagram.csdf", 0, false},
		{"diagram..csdf", 0, false},
		{"diagram.-3.csdf", 0, false},
		{"diagram.1.csdf.tmp-x", 0, false},
		{"db-csd.json", 0, false},
	} {
		gen, ok := generationOf(tc.name)
		if ok != tc.ok || (ok && gen != tc.gen) {
			t.Errorf("%s: got (%d,%v), want (%d,%v)", tc.name, gen, ok, tc.gen, tc.ok)
		}
	}
}

func TestResolveCurrentNoCurrentSentinel(t *testing.T) {
	_, err := ResolveCurrent(t.TempDir())
	if err == nil {
		t.Fatal("empty dir resolved")
	}
	if !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("error %v does not wrap ErrNoCurrent", err)
	}
	// A dangling pointer is a real error, not "not yet published".
	_, dir := lineageManager(t)
	if werr := os.WriteFile(filepath.Join(dir, CurrentFile), []byte("diagram.99.csdf\n"), 0o644); werr != nil {
		t.Fatal(werr)
	}
	if _, err := ResolveCurrent(dir); err == nil || errors.Is(err, ErrNoCurrent) {
		t.Fatalf("dangling pointer classified as ErrNoCurrent: %v", err)
	}
}

func TestPruneGenerationsCountsPartialFailure(t *testing.T) {
	dir := t.TempDir()
	tr := obs.New()
	m, err := New(dir, tr)
	if err != nil {
		t.Fatal(err)
	}
	d := testDiagram(t)
	for gen := int64(1); gen <= 5; gen++ {
		d.Generation = gen
		if err := m.SaveGenerationDiagram(d); err != nil {
			t.Fatal(err)
		}
	}
	// Generation 2 refuses to die; 1 goes first, then the failure.
	removeFile = func(path string) error {
		if filepath.Base(path) == GenerationFile(2) {
			return errors.New("injected: undeletable generation")
		}
		return os.Remove(path)
	}
	defer func() { removeFile = os.Remove }()
	removed, err := m.PruneGenerations(1)
	if err == nil {
		t.Fatal("prune with an undeletable generation succeeded")
	}
	if removed != 1 {
		t.Fatalf("removed %d before the failure, want 1", removed)
	}
	// The counter must record the partial progress even on the error
	// path — the pre-fix code returned before ever touching it.
	if got := tr.Counter("ckpt.generations_pruned"); got != int64(removed) {
		t.Fatalf("ckpt.generations_pruned = %d, want %d", got, removed)
	}
	gens, err := Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gens, []int64{2, 3, 4, 5}) {
		t.Fatalf("surviving generations: %v", gens)
	}
}
