package ckpt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// testDiagram builds a tiny but real diagram for roundtrip tests.
func testDiagram(t *testing.T) *csd.Diagram {
	t.Helper()
	restaurant, ok := poi.MinorByName("Chinese Restaurant")
	if !ok {
		t.Fatal("category table missing Chinese Restaurant")
	}
	var pois []poi.POI
	for i := 0; i < 12; i++ {
		pois = append(pois, poi.POI{
			ID:       int64(i + 1),
			Name:     "p",
			Location: geo.Point{Lon: 121.4 + float64(i)*1e-4, Lat: 31.2},
			Minor:    restaurant,
		})
	}
	params := csd.DefaultParams()
	params.KeepSingletons = true
	return csd.Build(pois, nil, params)
}

func testDB() []trajectory.SemanticTrajectory {
	return []trajectory.SemanticTrajectory{{
		ID:          1,
		PassengerID: 9,
		Stays: []trajectory.StayPoint{{
			P: geo.Point{Lon: 121.4, Lat: 31.2},
			T: time.Date(2019, 4, 1, 8, 0, 0, 0, time.UTC),
		}},
	}}
}

func TestManagerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := obs.New()
	m, err := New(dir, tr)
	if err != nil {
		t.Fatal(err)
	}
	d := testDiagram(t)
	db := testDB()
	if err := m.SaveDiagram(d); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveDatabase("db-csd", db); err != nil {
		t.Fatal(err)
	}
	if got := tr.Counter("ckpt.saved.diagram"); got != 1 {
		t.Errorf("counter ckpt.saved.diagram = %d", got)
	}

	// A second manager over the same dir (a rerun) resumes both stages.
	tr2 := obs.New()
	m2, err := New(dir, tr2)
	if err != nil {
		t.Fatal(err)
	}
	d2, ok := m2.LoadDiagram()
	if !ok {
		t.Fatal("diagram checkpoint not found on rerun")
	}
	var want, got bytes.Buffer
	if err := d.Write(&want); err != nil {
		t.Fatal(err)
	}
	if err := d2.Write(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("resumed diagram serializes differently")
	}
	db2, ok := m2.LoadDatabase("db-csd")
	if !ok || !reflect.DeepEqual(db, db2) {
		t.Fatalf("resumed database mismatch (ok=%v)", ok)
	}
	if tr2.Counter("ckpt.resume.diagram") != 1 || tr2.Counter("ckpt.resume.db-csd") != 1 {
		t.Errorf("resume counters = %d/%d, want 1/1",
			tr2.Counter("ckpt.resume.diagram"), tr2.Counter("ckpt.resume.db-csd"))
	}
}

func TestManagerMissingIsAbsentNotError(t *testing.T) {
	m, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LoadDiagram(); ok {
		t.Error("empty dir produced a diagram")
	}
	if _, ok := m.LoadDatabase("db-roi"); ok {
		t.Error("empty dir produced a database")
	}
}

// TestManagerCorruptCheckpointRebuilds covers the crash-safety
// contract: a truncated or garbage checkpoint is detected, counted,
// removed, and reported as absent — then a fresh save replaces it.
func TestManagerCorruptCheckpointRebuilds(t *testing.T) {
	dir := t.TempDir()
	tr := obs.New()
	m, err := New(dir, tr)
	if err != nil {
		t.Fatal(err)
	}
	d := testDiagram(t)
	if err := m.SaveDiagram(d); err != nil {
		t.Fatal(err)
	}
	// Truncate the checkpoint to half its size: the CRC frame must
	// reject it.
	path := filepath.Join(dir, "diagram.csdf")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LoadDiagram(); ok {
		t.Fatal("truncated checkpoint loaded")
	}
	if got := tr.Counter("ckpt.corrupt.diagram"); got != 1 {
		t.Errorf("counter ckpt.corrupt.diagram = %d, want 1", got)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt checkpoint not removed")
	}
	// The stage rebuilds and re-checkpoints over the damage.
	if err := m.SaveDiagram(d); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LoadDiagram(); !ok {
		t.Fatal("re-saved checkpoint does not load")
	}

	// Garbage databases are handled the same way.
	if err := os.WriteFile(filepath.Join(dir, "db-csd.json"), []byte("[{\"id\":1,"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LoadDatabase("db-csd"); ok {
		t.Fatal("truncated database loaded")
	}
	if got := tr.Counter("ckpt.corrupt.db-csd"); got != 1 {
		t.Errorf("counter ckpt.corrupt.db-csd = %d, want 1", got)
	}
}

// TestWriteAtomicPreservesOldOnFailure checks the torn-write defense:
// a failed write leaves the previous file intact and no temp litter.
func TestWriteAtomicPreservesOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "old")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half-written")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the write error", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "old" {
		t.Fatalf("file = %q, %v; want the old content intact", raw, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

// TestNilManager pins the nil-safety contract call sites rely on.
func TestNilManager(t *testing.T) {
	var m *Manager
	if m.Dir() != "" {
		t.Error("nil manager has a dir")
	}
	if _, ok := m.LoadDiagram(); ok {
		t.Error("nil manager loaded a diagram")
	}
	if _, ok := m.LoadDatabase("db-csd"); ok {
		t.Error("nil manager loaded a database")
	}
	if err := m.SaveDiagram(nil); err != nil {
		t.Errorf("nil manager SaveDiagram: %v", err)
	}
	if err := m.SaveDatabase("db-csd", nil); err != nil {
		t.Errorf("nil manager SaveDatabase: %v", err)
	}
}
