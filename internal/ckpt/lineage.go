package ckpt

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"csdm/internal/csd"
)

// Generation lineage: streaming ingestion persists each applied delta
// as its own immutable snapshot, diagram.<gen>.csdf, and publishes the
// active one by atomically rewriting a one-line CURRENT pointer file.
// Readers (csdserve's watcher, a resuming csdminer) resolve CURRENT and
// open exactly one complete, CRC-framed snapshot; because the pointer
// flip is a rename, a reader never observes a half-published
// generation. Old generations stay on disk for rollback until Prune
// trims the lineage.
const (
	// CurrentFile is the pointer file naming the active generation
	// snapshot (a bare filename, no path separators).
	CurrentFile = "CURRENT"
)

// GenerationFile names generation gen's snapshot file.
func GenerationFile(gen int64) string {
	return fmt.Sprintf("diagram.%d.csdf", gen)
}

// generationOf parses a GenerationFile name, reporting ok=false for
// anything else (including DiagramFile and temp files).
func generationOf(name string) (int64, bool) {
	rest, found := strings.CutPrefix(name, "diagram.")
	if !found {
		return 0, false
	}
	num, found := strings.CutSuffix(rest, ".csdf")
	if !found || num == "" {
		return 0, false
	}
	gen, err := strconv.ParseInt(num, 10, 64)
	if err != nil || gen < 0 {
		return 0, false
	}
	return gen, true
}

// SaveGenerationDiagram persists d as diagram.<d.Generation>.csdf and
// atomically republishes CURRENT to point at it. The snapshot lands
// (atomically, fsynced) before the pointer flips, so a crash between
// the two steps leaves CURRENT on the previous complete generation.
func (m *Manager) SaveGenerationDiagram(d *csd.Diagram) error {
	if m == nil {
		return nil
	}
	file := GenerationFile(d.Generation)
	if err := m.Save("diagram-gen", file, d.Write); err != nil {
		return err
	}
	return m.PublishCurrent(file)
}

// PublishCurrent atomically points CURRENT at the named snapshot file,
// which must already exist in the directory (publishing a dangling
// pointer would make every reader fail until the next delta).
func (m *Manager) PublishCurrent(file string) error {
	if m == nil {
		return nil
	}
	if strings.ContainsRune(file, os.PathSeparator) {
		return fmt.Errorf("ckpt: CURRENT must name a file in the checkpoint dir, got %q", file)
	}
	if _, err := os.Stat(filepath.Join(m.dir, file)); err != nil {
		return fmt.Errorf("ckpt: refusing to publish dangling CURRENT: %w", err)
	}
	err := WriteAtomic(filepath.Join(m.dir, CurrentFile), func(w io.Writer) error {
		_, werr := io.WriteString(w, file+"\n")
		return werr
	})
	if err != nil {
		return err
	}
	m.tr.Add("ckpt.current_published", 1)
	return nil
}

// ErrNoCurrent reports that a checkpoint directory has no CURRENT
// pointer at all — the normal state of a fresh ingestion dir before the
// first generation publishes, as opposed to a corrupt pointer or a
// dangling one (both real errors). Pollers distinguish it with
// errors.Is.
var ErrNoCurrent = errors.New("ckpt: no CURRENT pointer published yet")

// ResolveCurrent reads the CURRENT pointer and returns the full path of
// the active generation snapshot. It validates that the pointer names a
// plain file inside the directory and that the file exists, so a
// corrupt or hand-edited pointer surfaces as a descriptive error rather
// than a confusing open failure downstream. A missing CURRENT file
// returns an error wrapping ErrNoCurrent (and fs.ErrNotExist).
func ResolveCurrent(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, CurrentFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", fmt.Errorf("%w: %w", ErrNoCurrent, err)
		}
		return "", fmt.Errorf("ckpt: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(raw))
	if name == "" || strings.ContainsAny(name, "/\\\n") {
		return "", fmt.Errorf("ckpt: malformed CURRENT pointer %q", name)
	}
	path := filepath.Join(dir, name)
	if _, err := os.Stat(path); err != nil {
		return "", fmt.Errorf("ckpt: CURRENT points at missing snapshot: %w", err)
	}
	return path, nil
}

// Generations lists the generation numbers with snapshots on disk,
// ascending.
func Generations(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: list generations: %w", err)
	}
	var gens []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := generationOf(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// removeFile is os.Remove, indirected so the prune tests can make one
// generation undeletable on platforms (and users) where permission
// bits can't.
var removeFile = os.Remove

// PruneGenerations removes generation snapshots beyond the newest keep,
// never touching the one CURRENT points at (a lineage pruned down to
// its active snapshot must stay servable). It returns the number of
// snapshots removed. keep < 1 is treated as 1.
//
// On a mid-loop removal failure the error is returned with the count of
// snapshots already removed — and that count still lands on the
// ckpt.generations_pruned counter, so the trace never undercounts a
// partially successful prune.
func (m *Manager) PruneGenerations(keep int) (removed int, err error) {
	if m == nil {
		return 0, nil
	}
	if keep < 1 {
		keep = 1
	}
	gens, err := Generations(m.dir)
	if err != nil {
		return 0, err
	}
	var current string
	if path, err := ResolveCurrent(m.dir); err == nil {
		current = filepath.Base(path)
	}
	defer func() {
		m.tr.Add("ckpt.generations_pruned", int64(removed))
	}()
	for i := 0; i < len(gens)-keep; i++ {
		name := GenerationFile(gens[i])
		if name == current {
			continue
		}
		if rerr := removeFile(filepath.Join(m.dir, name)); rerr != nil {
			return removed, fmt.Errorf("ckpt: prune generation %d: %w", gens[i], rerr)
		}
		removed++
	}
	return removed, nil
}
