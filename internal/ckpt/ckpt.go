// Package ckpt persists the pipeline's expensive shared artifacts —
// the City Semantic Diagram and the annotated trajectory databases —
// so an interrupted run can resume past its completed stages instead
// of recomputing them. Every write is atomic (temp file + fsync +
// rename), so a checkpoint directory never holds a half-written
// artifact; a checkpoint that fails to load (truncated, bit-flipped,
// wrong format) is treated as absent, removed, and counted, never
// crashed on. Because the pipeline is deterministic for any worker
// count, a resumed run produces byte-identical output to an
// uninterrupted one.
package ckpt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"csdm/internal/csd"
	"csdm/internal/obs"
	"csdm/internal/trajectory"
)

// The checkpoint file names inside a manager's directory. The diagram
// uses the csd framed format (magic + length + CRC), so it is also a
// valid -load-diagram file; the databases are the semantic-trajectory
// JSON exchange format. Stage declarations (internal/core) reference
// these, so the artifact→file mapping lives here and nowhere else.
const (
	// DiagramFile is the diagram checkpoint's filename.
	DiagramFile = "diagram.csdf"
)

// DBFile names a database checkpoint ("db-csd.json", "db-roi.json").
func DBFile(artifact string) string { return artifact + ".json" }

// WriteAtomic writes a file through a same-directory temp file, fsyncs
// it, and renames it into place, so a crash mid-write leaves either
// the old file or nothing — never a torn one. The directory is synced
// after the rename so the new name itself survives a crash.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: install %s: %w", path, err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Manager owns one checkpoint directory. A nil Manager is valid and
// means "checkpointing off": every Load reports absent and every Save
// is a no-op, so call sites need no conditionals.
type Manager struct {
	dir string
	tr  *obs.Trace
}

// New opens (creating if needed) a checkpoint directory. The trace
// (nil-safe) receives ckpt.resume.<stage>, ckpt.saved.<stage> and
// ckpt.corrupt.<stage> counters, which is how tests — and operators —
// verify which stages a run actually skipped.
func New(dir string, tr *obs.Trace) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create checkpoint dir: %w", err)
	}
	return &Manager{dir: dir, tr: tr}, nil
}

// Dir returns the checkpoint directory ("" on a nil manager).
func (m *Manager) Dir() string {
	if m == nil {
		return ""
	}
	return m.dir
}

// Load opens the artifact's file and decodes it with read, reporting
// whether a valid checkpoint was found. A missing file is a plain "not
// checkpointed". A file that read rejects is corrupt: it is counted,
// removed so the rebuilt artifact can replace it, and reported as
// absent — resume degrades to recompute, never to a crash. Load and
// Save are the stage.Store implementation, so a *Manager (nil included)
// plugs straight into the stage engine's checkpoint middleware.
func (m *Manager) Load(stage, file string, read func(io.Reader) error) bool {
	if m == nil {
		return false
	}
	f, err := os.Open(filepath.Join(m.dir, file))
	if err != nil {
		return false
	}
	err = read(f)
	f.Close()
	if err != nil {
		m.tr.Add("ckpt.corrupt."+stage, 1)
		os.Remove(filepath.Join(m.dir, file))
		return false
	}
	m.tr.Add("ckpt.resume."+stage, 1)
	return true
}

// Save atomically writes the artifact's file.
func (m *Manager) Save(stage, file string, write func(io.Writer) error) error {
	if m == nil {
		return nil
	}
	if err := WriteAtomic(filepath.Join(m.dir, file), write); err != nil {
		return err
	}
	m.tr.Add("ckpt.saved."+stage, 1)
	return nil
}

// LoadDiagram returns the checkpointed City Semantic Diagram, or false
// when none is available (absent or corrupt).
func (m *Manager) LoadDiagram() (*csd.Diagram, bool) {
	var d *csd.Diagram
	ok := m.Load("diagram", DiagramFile, func(r io.Reader) error {
		var err error
		d, err = csd.Read(r)
		return err
	})
	return d, ok
}

// SaveDiagram checkpoints the diagram.
func (m *Manager) SaveDiagram(d *csd.Diagram) error {
	return m.Save("diagram", DiagramFile, d.Write)
}

// LoadDatabase returns the checkpointed annotated database under the
// given name ("db-csd", "db-roi"), or false when none is available.
func (m *Manager) LoadDatabase(name string) ([]trajectory.SemanticTrajectory, bool) {
	var db []trajectory.SemanticTrajectory
	ok := m.Load(name, DBFile(name), func(r io.Reader) error {
		var err error
		db, err = trajectory.ReadSemanticJSON(r)
		return err
	})
	return db, ok
}

// SaveDatabase checkpoints an annotated database under the given name.
func (m *Manager) SaveDatabase(name string, db []trajectory.SemanticTrajectory) error {
	return m.Save(name, DBFile(name), func(w io.Writer) error {
		return trajectory.WriteSemanticJSON(w, db)
	})
}
