// Package pattern implements fine-grained pattern extraction (§4.3):
// PrefixSpan detects coarse semantic patterns, and a refinement stage
// turns each coarse pattern into spatially tight fine-grained patterns
// (Definition 11). Three refiners are provided: the paper's
// CounterpartCluster (Algorithm 4, OPTICS-based), and the two baselines
// it is compared against — Splitter [17] (Mean-Shift top-down split)
// and SDBSCAN [19] (DBSCAN split). All three honor the universal
// parameters σ (support), δ_t (temporal constraint) and ρ (density).
package pattern

import (
	"context"
	"time"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/seqpattern"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// Params are the universal mining parameters of §5.
type Params struct {
	// Sigma σ is the support threshold: the minimum number of
	// trajectories a fine-grained pattern must represent.
	Sigma int
	// DeltaT δ_t bounds the time interval between consecutive stay
	// points of a supporting trajectory.
	DeltaT time.Duration
	// Rho ρ is the density threshold (points/m²) every position group
	// must reach.
	Rho float64
	// EpsT ε_t is the location-proximity bound (meters) of the
	// containment relation (Definition 7) used when computing a
	// pattern's support and groups.
	EpsT float64
	// MinLen/MaxLen bound the pattern length in stay points.
	MinLen int
	MaxLen int
}

// DefaultParams are the paper's normal condition: σ = 50, δ_t = 60 min,
// ρ = 0.002 m⁻², with ε_t set to the R3σ GPS envelope (100 m).
func DefaultParams() Params {
	return Params{Sigma: 50, DeltaT: 60 * time.Minute, Rho: 0.002, EpsT: 100, MinLen: 2, MaxLen: 5}
}

// normalized fills unset optional fields: a zero ε_t falls back to the
// default 100 m GPS envelope so that support evaluation never runs with
// an impossible zero-distance containment bound.
func (p Params) normalized() Params {
	if p.EpsT <= 0 {
		p.EpsT = 100
	}
	return p
}

// Pattern is one fine-grained pattern: a representative stay-point
// sequence plus the per-position groups (Definition 10) of the
// supporting trajectories, kept for the evaluation metrics.
type Pattern struct {
	// Stays is the representative sequence: per position, the group
	// member closest to the group centroid, with the group's mean
	// timestamp and the coarse pattern's semantic property.
	Stays []trajectory.StayPoint
	// Items is the coarse semantic sequence the pattern refines.
	Items []poi.Semantics
	// Groups[k] collects the k-th stay points of all supporting
	// trajectories.
	Groups [][]trajectory.StayPoint
	// Support is the number of supporting trajectories.
	Support int
}

// Len returns the pattern length in stay points.
func (p Pattern) Len() int { return len(p.Stays) }

// Extractor mines fine-grained patterns from an annotated semantic
// trajectory database. Extraction runs under a stage environment (see
// internal/stage): env carries the cancellation context, the telemetry
// trace — spans under "extract.<name>" plus counters for coarse
// patterns mined, candidates generated, candidates pruned by the σ/ρ
// thresholds, and patterns surviving — and the execution-layer options
// (worker budget, spatial backend). The mined pattern set is identical
// for any worker budget; a canceled env.Ctx aborts with its error. A
// zero environment (stage.Background()) degrades to plain sequential,
// untraced mining.
type Extractor interface {
	// Name identifies the extractor in experiment reports.
	Name() string
	// Extract mines all fine-grained patterns under the given params.
	Extract(env stage.Env, db []trajectory.SemanticTrajectory, params Params) ([]Pattern, error)
}

// Compat adapts an Extractor to the pre-engine call shape — no
// environment, no error — for callers outside the pipeline (examples,
// one-off experiments): mining runs on a background environment and a
// cancellation error (the only kind extraction produces) yields nil.
type Compat struct {
	E Extractor
}

// Name identifies the wrapped extractor.
func (c Compat) Name() string { return c.E.Name() }

// Extract mines on a background environment, discarding the error.
func (c Compat) Extract(db []trajectory.SemanticTrajectory, params Params) []Pattern {
	out, _ := c.E.Extract(stage.Background(), db, params)
	return out
}

// extractStages runs the shared coarse-detection → refinement →
// closure skeleton with spans and counters keyed by the extractor
// name. refine receives the trace (via env) so per-candidate counts
// land on the same counters from the refinement workers.
func extractStages(env stage.Env, name string, db []trajectory.SemanticTrajectory, params Params, refine func(coarsePattern) []Pattern) ([]Pattern, error) {
	tr := env.Trace
	root := env.StartSpan("extract." + name)
	defer root.End()

	sp := root.Start("prefixspan")
	coarse := minePrefixSpan(db, params, env.Opt)
	sp.End()
	tr.Add("extract."+name+".coarse", int64(len(coarse)))

	sp = root.Start("refine")
	exec.Note(tr, len(coarse), exec.Workers(env.Opt.Workers))
	out, err := refineAll(env.Ctx, env.Opt.Workers, coarse, refine)
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = root.Start("closure")
	final, err := finalize(env.Ctx, db, out, params, env.Opt)
	sp.End()
	if err != nil {
		return nil, err
	}
	tr.Add("extract."+name+".deduped", int64(len(out)-len(final)))
	tr.Add("extract."+name+".patterns", int64(len(final)))
	return final, nil
}

// coarsePattern is one PrefixSpan result resolved to stay points:
// support trajectories with, for each, the stay matched to each pattern
// position.
type coarsePattern struct {
	items []poi.Semantics
	// stays[i][k] is Pt^k of supporting trajectory i.
	stays [][]trajectory.StayPoint
	// trajIDs[i] is the database index of supporting trajectory i.
	trajIDs []int
}

// minePrefixSpan runs PrefixSpan over the semantic item sequences of db
// and materializes the coarse patterns. Items are whole semantic
// properties compared by equality, as in the paper's coarse detection
// (§4.3: "∃O = {o_1, …, o_m} … sp_ij.s = o_j"); the looser superset
// semantics of Definition 7 enters later, when a finished pattern's
// support and groups are computed over the containment closure.
// Unannotated stays carry the empty property, which forms no frequent
// item worth keeping: patterns containing it are dropped.
func minePrefixSpan(db []trajectory.SemanticTrajectory, params Params, opt exec.Options) []coarsePattern {
	seqs := make([]seqpattern.Sequence, len(db))
	for i, st := range db {
		seq := make(seqpattern.Sequence, st.Len())
		for k, sp := range st.Stays {
			seq[k] = seqpattern.Item(sp.S)
		}
		seqs[i] = seq
	}
	mined := seqpattern.MineWith(seqs, seqpattern.Config{
		MinSupport: params.Sigma,
		MinLen:     params.MinLen,
		MaxLen:     params.MaxLen,
	}, opt)
	var out []coarsePattern
	for _, m := range mined {
		if hasEmptyItem(m.Items) {
			continue
		}
		cp := coarsePattern{items: make([]poi.Semantics, len(m.Items))}
		for k, it := range m.Items {
			cp.items[k] = poi.Semantics(it)
		}
		for si, seqID := range m.SeqIDs {
			stays := make([]trajectory.StayPoint, len(m.Items))
			for k, pos := range m.Embeddings[si] {
				stays[k] = db[seqID].Stays[pos]
			}
			cp.stays = append(cp.stays, stays)
			cp.trajIDs = append(cp.trajIDs, seqID)
		}
		out = append(out, cp)
	}
	return out
}

// refineAll refines every coarse pattern on the worker pool (coarse
// patterns are independent) and concatenates the results in input
// order, so the pattern list is the same for any worker budget.
func refineAll(ctx context.Context, workers int, coarse []coarsePattern, refine func(coarsePattern) []Pattern) ([]Pattern, error) {
	results, err := exec.ParallelMap(ctx, workers, len(coarse), func(i int) ([]Pattern, error) {
		return refine(coarse[i]), nil
	})
	if err != nil {
		return nil, err
	}
	var out []Pattern
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

func hasEmptyItem(items []seqpattern.Item) bool {
	for _, it := range items {
		if poi.Semantics(it).IsEmpty() {
			return true
		}
	}
	return false
}

// respectsDeltaT reports whether the matched stays of one supporting
// trajectory keep every consecutive time gap within δ_t.
func respectsDeltaT(stays []trajectory.StayPoint, deltaT time.Duration) bool {
	for k := 1; k < len(stays); k++ {
		gap := stays[k].T.Sub(stays[k-1].T)
		if gap < 0 {
			gap = -gap
		}
		if gap > deltaT {
			return false
		}
	}
	return true
}

// groupPoints extracts the coordinates of a stay-point group.
func groupPoints(group []trajectory.StayPoint) []geo.Point {
	pts := make([]geo.Point, len(group))
	for i, sp := range group {
		pts[i] = sp.P
	}
	return pts
}

// buildPattern materializes a fine-grained pattern from its supporting
// trajectories' matched stays (Algorithm 4 lines 18–20): per position,
// the representative is the member closest to the group centroid and
// the timestamp is the group average.
func buildPattern(items []poi.Semantics, support [][]trajectory.StayPoint) Pattern {
	m := len(items)
	p := Pattern{
		Items:   items,
		Support: len(support),
		Groups:  make([][]trajectory.StayPoint, m),
		Stays:   make([]trajectory.StayPoint, m),
	}
	for k := 0; k < m; k++ {
		group := make([]trajectory.StayPoint, len(support))
		for i := range support {
			group[i] = support[i][k]
		}
		p.Groups[k] = group
		pts := groupPoints(group)
		rep := geo.MedoidIndex(pts)
		p.Stays[k] = trajectory.StayPoint{
			P: group[rep].P,
			T: meanTime(group),
			S: items[k],
		}
	}
	return p
}

func meanTime(group []trajectory.StayPoint) time.Time {
	if len(group) == 0 {
		return time.Time{}
	}
	base := group[0].T
	var sum int64
	for _, sp := range group {
		sum += sp.T.Sub(base).Nanoseconds()
	}
	return base.Add(time.Duration(sum / int64(len(group))))
}
