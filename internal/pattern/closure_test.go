package pattern

import (
	"testing"
	"time"

	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// closureScenario builds a db with a chain of Residence→Office
// trajectories drifting 80 m per step, so trajectory 0 is reached from
// the representative only via reachable containment.
func closureScenario() ([]trajectory.SemanticTrajectory, []trajectory.StayPoint) {
	var db []trajectory.SemanticTrajectory
	for i := 0; i < 4; i++ {
		off := float64(i) * 80
		db = append(db, trajectory.SemanticTrajectory{
			ID: int64(i),
			Stays: []trajectory.StayPoint{
				{P: at(off, 0), T: t0, S: home},
				{P: at(4000+off, 0), T: t0.Add(30 * time.Minute), S: office},
			},
		})
	}
	// Unrelated trajectory: wrong semantics at the right place.
	db = append(db, trajectory.SemanticTrajectory{
		ID: 99,
		Stays: []trajectory.StayPoint{
			{P: at(10, 0), T: t0, S: shop},
			{P: at(4010, 0), T: t0.Add(30 * time.Minute), S: shop},
		},
	})
	rep := []trajectory.StayPoint{
		{P: at(0, 0), T: t0, S: home},
		{P: at(4000, 0), T: t0.Add(30 * time.Minute), S: office},
	}
	return db, rep
}

func TestClosureMatchesTrajectoryDatabase(t *testing.T) {
	db, rep := closureScenario()
	params := testParams() // EpsT 100 via normalized? testParams has no EpsT
	params.EpsT = 100
	cc := newClosureComputer(db, params, index.KindGrid)
	sup, groups := cc.supportGroups(rep, newClosureScratch())

	// Reference: the trajectory package's Definition 8 closure.
	ref := trajectory.Database(db).Closure(
		trajectory.SemanticTrajectory{Stays: rep},
		trajectory.ContainParams{MaxDist: params.EpsT, MaxGap: params.DeltaT},
	)
	if sup != len(ref) {
		t.Fatalf("closure support = %d, reference = %d", sup, len(ref))
	}
	// Chain: trajectories 0,1 directly contain (0 m, 80 m); 2 via 1;
	// 3 via 2. The shop trajectory is excluded.
	if sup != 4 {
		t.Fatalf("support = %d, want 4 (chain of drifting trajectories)", sup)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	for k, g := range groups {
		if len(g) < sup {
			t.Fatalf("group %d size %d < support %d", k, len(g), sup)
		}
		for _, sp := range g {
			if !sp.S.Contains(rep[k].S) {
				t.Fatalf("group %d member with semantics %v cannot support item %v", k, sp.S, rep[k].S)
			}
		}
	}
}

func TestClosureCandidatePrefilterFindsSubsequenceMatches(t *testing.T) {
	// A 3-stay trajectory contains the 2-stay representative by
	// skipping its middle stay; its own endpoints are far from the
	// representative's, so the prefilter must look at all stays.
	db := []trajectory.SemanticTrajectory{
		{ID: 1, Stays: []trajectory.StayPoint{
			{P: at(-5000, 0), T: t0.Add(-30 * time.Minute), S: shop},
			{P: at(10, 0), T: t0, S: home},
			{P: at(4010, 0), T: t0.Add(30 * time.Minute), S: office},
		}},
	}
	rep := []trajectory.StayPoint{
		{P: at(0, 0), T: t0, S: home},
		{P: at(4000, 0), T: t0.Add(30 * time.Minute), S: office},
	}
	params := testParams()
	params.EpsT = 100
	cc := newClosureComputer(db, params, index.KindGrid)
	sup, _ := cc.supportGroups(rep, newClosureScratch())
	if sup != 1 {
		t.Fatalf("support = %d, want 1 (subsequence match)", sup)
	}
}

func TestDedupeMaximalDropsSubsumedPattern(t *testing.T) {
	rich := Pattern{
		Items: []poi.Semantics{home.Union(shop), office},
		Stays: []trajectory.StayPoint{
			{P: at(0, 0), S: home.Union(shop)},
			{P: at(4000, 0), S: office},
		},
		Support: 30,
	}
	thin := Pattern{
		Items: []poi.Semantics{home, office},
		Stays: []trajectory.StayPoint{
			{P: at(10, 0), S: home},
			{P: at(4010, 0), S: office},
		},
		Support: 40,
	}
	out := dedupeMaximal([]Pattern{thin, rich}, 100)
	if len(out) != 1 {
		t.Fatalf("deduped = %d patterns, want 1", len(out))
	}
	if out[0].Items[0] != home.Union(shop) {
		t.Fatalf("kept the thin flavor instead of the maximal one")
	}
}

func TestDedupeMaximalKeepsDistantSameItems(t *testing.T) {
	a := Pattern{
		Items:   []poi.Semantics{home, office},
		Stays:   []trajectory.StayPoint{{P: at(0, 0), S: home}, {P: at(4000, 0), S: office}},
		Support: 30,
	}
	b := Pattern{
		Items:   []poi.Semantics{home, office},
		Stays:   []trajectory.StayPoint{{P: at(2000, 0), S: home}, {P: at(6000, 0), S: office}},
		Support: 30,
	}
	if out := dedupeMaximal([]Pattern{a, b}, 100); len(out) != 2 {
		t.Fatalf("spatially distinct patterns were merged: %d", len(out))
	}
}

func TestDedupeMaximalIdenticalItemsKeepsStrongest(t *testing.T) {
	weak := Pattern{
		Items:   []poi.Semantics{home, office},
		Stays:   []trajectory.StayPoint{{P: at(0, 0), S: home}, {P: at(4000, 0), S: office}},
		Support: 10,
	}
	strong := weak
	strong.Support = 50
	strong.Stays = []trajectory.StayPoint{{P: at(5, 0), S: home}, {P: at(4005, 0), S: office}}
	out := dedupeMaximal([]Pattern{weak, strong}, 100)
	if len(out) != 1 || out[0].Support != 50 {
		t.Fatalf("dedupe kept %d patterns, support %d; want the stronger one", len(out), out[0].Support)
	}
}

func TestDedupeMaximalDifferentLengthsUntouched(t *testing.T) {
	short := Pattern{
		Items:   []poi.Semantics{home, office},
		Stays:   []trajectory.StayPoint{{P: at(0, 0), S: home}, {P: at(4000, 0), S: office}},
		Support: 10,
	}
	long := Pattern{
		Items: []poi.Semantics{home, office, shop},
		Stays: []trajectory.StayPoint{
			{P: at(0, 0), S: home}, {P: at(4000, 0), S: office}, {P: at(8000, 0), S: shop},
		},
		Support: 10,
	}
	if out := dedupeMaximal([]Pattern{short, long}, 100); len(out) != 2 {
		t.Fatalf("different-length patterns should never subsume each other")
	}
}

func TestParamsNormalized(t *testing.T) {
	p := Params{}.normalized()
	if p.EpsT != 100 {
		t.Fatalf("normalized EpsT = %v", p.EpsT)
	}
	q := Params{EpsT: 42}.normalized()
	if q.EpsT != 42 {
		t.Fatalf("explicit EpsT overwritten: %v", q.EpsT)
	}
}
