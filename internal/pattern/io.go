package pattern

import (
	"encoding/json"
	"fmt"
	"io"

	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// patternFile is the on-disk representation of a mined pattern set. The
// representative sequence and support are stored in full; the per-
// position groups are dropped — they exist for the evaluation metrics,
// not for serving, and carry the bulk of the bytes.
type patternFile struct {
	Version  int           `json:"version"`
	Patterns []patternJSON `json:"patterns"`
}

type patternJSON struct {
	Stays   []trajectory.StayPoint `json:"stays"`
	Items   []poi.Semantics        `json:"items"`
	Support int                    `json:"support"`
}

// patternFileVersion guards the persistence format.
const patternFileVersion = 1

// WriteJSON serializes a mined pattern set (csdminer mine
// -save-patterns) so a serving process can answer "patterns near a
// location" without re-mining. Groups are not persisted; a pattern
// read back has Support and the representative stay sequence only.
func WriteJSON(w io.Writer, ps []Pattern) error {
	f := patternFile{Version: patternFileVersion, Patterns: make([]patternJSON, len(ps))}
	for i, p := range ps {
		f.Patterns[i] = patternJSON{Stays: p.Stays, Items: p.Items, Support: p.Support}
	}
	if err := json.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("pattern: encode patterns: %w", err)
	}
	return nil
}

// ReadJSON loads a pattern set written by WriteJSON, validating the
// format version and every stay coordinate so a corrupt or hostile file
// yields an error, never a pattern with NaN coordinates in a serving
// response.
func ReadJSON(r io.Reader) ([]Pattern, error) {
	var f patternFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("pattern: decode patterns: %w", err)
	}
	if f.Version != patternFileVersion {
		return nil, fmt.Errorf("pattern: unsupported pattern file version %d", f.Version)
	}
	ps := make([]Pattern, len(f.Patterns))
	for i, p := range f.Patterns {
		if len(p.Stays) == 0 {
			return nil, fmt.Errorf("pattern: pattern %d has no stays", i)
		}
		if p.Support < 0 {
			return nil, fmt.Errorf("pattern: pattern %d has negative support %d", i, p.Support)
		}
		for k, sp := range p.Stays {
			if err := sp.P.Check(); err != nil {
				return nil, fmt.Errorf("pattern: pattern %d stay %d: %w", i, k, err)
			}
		}
		ps[i] = Pattern{Stays: p.Stays, Items: p.Items, Support: p.Support}
	}
	return ps, nil
}
