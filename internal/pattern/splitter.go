package pattern

import (
	"sort"

	"csdm/internal/cluster"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// Splitter is the baseline of Zhang et al. [17]: PrefixSpan's coarse
// patterns are broken top-down with Mean Shift — the k-th stay points
// of each coarse pattern hill-climb to their density modes, and
// trajectories whose stays converge to the same mode tuple form one
// fine pattern. The universal σ/δ_t/ρ thresholds apply afterwards.
type Splitter struct {
	// Bandwidth is the Mean-Shift kernel bandwidth in meters.
	Bandwidth float64
}

// NewSplitter returns the baseline with its published ~150 m bandwidth.
func NewSplitter() *Splitter { return &Splitter{Bandwidth: 150} }

// Name implements Extractor.
func (s *Splitter) Name() string { return "Splitter" }

// Extract implements Extractor.
func (s *Splitter) Extract(env stage.Env, db []trajectory.SemanticTrajectory, params Params) ([]Pattern, error) {
	params = params.normalized()
	return extractStages(env, s.Name(), db, params, func(pa coarsePattern) []Pattern {
		return refineByModes(pa, params, func(pts []geo.Point) []int {
			return cluster.MeanShiftWith(pts, s.Bandwidth, env.Opt).Labels
		}, env.Trace, "extract."+s.Name())
	})
}

// refineByModes groups a coarse pattern's trajectories by the tuple of
// per-position cluster labels produced by clusterFn, then applies the
// universal σ/δ_t/ρ filters. Both Splitter and SDBSCAN share this
// skeleton; they differ only in the clustering strategy (§2). Label
// tuples form the candidate fine patterns; candidate and prune counts
// land on tr under pfx (nil-safe).
func refineByModes(pa coarsePattern, params Params, clusterFn func([]geo.Point) []int, tr *obs.Trace, pfx string) []Pattern {
	m := len(pa.items)
	n := len(pa.stays)
	if n < params.Sigma {
		return nil
	}
	labels := make([][]int, m)
	for k := 0; k < m; k++ {
		pts := make([]geo.Point, n)
		for i := range pa.stays {
			pts[i] = pa.stays[i][k].P
		}
		labels[k] = clusterFn(pts)
	}

	// Group trajectories by label tuple, dropping any with a noise
	// label or a δ_t violation.
	groups := make(map[string][]int)
	var keys []string
	for i := 0; i < n; i++ {
		key := make([]byte, 0, m*3)
		ok := true
		for k := 0; k < m; k++ {
			l := labels[k][i]
			if l < 0 {
				ok = false
				break
			}
			key = append(key, byte(l), byte(l>>8), ',')
		}
		if !ok || !respectsDeltaT(pa.stays[i], params.DeltaT) {
			continue
		}
		ks := string(key)
		if _, seen := groups[ks]; !seen {
			keys = append(keys, ks)
		}
		groups[ks] = append(groups[ks], i)
	}
	sort.Strings(keys)

	var out []Pattern
	var pruned int64
	for _, ks := range keys {
		members := groups[ks]
		if len(members) < params.Sigma {
			pruned++
			continue
		}
		// Density threshold ρ on every position group.
		dense := true
		for k := 0; k < m && dense; k++ {
			pts := make([]geo.Point, len(members))
			for idx, i := range members {
				pts[idx] = pa.stays[i][k].P
			}
			if geo.Density(pts) < params.Rho {
				dense = false
			}
		}
		if !dense {
			pruned++
			continue
		}
		support := make([][]trajectory.StayPoint, len(members))
		for idx, i := range members {
			support[idx] = pa.stays[i]
		}
		out = append(out, buildPattern(pa.items, support))
	}
	tr.Add(pfx+".candidates", int64(len(keys)))
	tr.Add(pfx+".pruned", pruned)
	return out
}
