package pattern

import (
	"math/rand"
	"testing"
	"time"

	"csdm/internal/poi"
)

func TestTPatternFindsSpatialFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two spatially distinct flows without usable semantics.
	db := flow(rng, 40, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute,
		[2]poi.Semantics{0, 0})
	db = append(db, flow(rng, 40, [2]float64{0, 3000}, [2]float64{4000, 3000}, 20, 30*time.Minute,
		[2]poi.Semantics{0, 0})...)
	ex := NewTPattern()
	if ex.Name() != "T-Pattern" {
		t.Fatalf("Name = %q", ex.Name())
	}
	// Anchors near grid-cell corners split their visits across up to
	// four cells — the grid-granularity weakness §2 attributes to this
	// family — so the density threshold is set below the per-cell
	// worst case.
	ex.MinCellVisits = 8
	got := Compat{ex}.Extract(db, testParams())
	if len(got) != 2 {
		t.Fatalf("patterns = %d, want 2 (semantic-free mining)", len(got))
	}
	for _, p := range got {
		if p.Support < 20 {
			t.Errorf("support = %d", p.Support)
		}
		for _, it := range p.Items {
			if !it.IsEmpty() {
				t.Error("T-Pattern items must carry no semantics")
			}
		}
		for _, sp := range p.Stays {
			if !sp.S.IsEmpty() {
				t.Error("T-Pattern stays must carry no semantics")
			}
		}
	}
}

func TestTPatternRespectsThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := flow(rng, 10, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute,
		[2]poi.Semantics{0, 0})
	if got := (Compat{NewTPattern()}).Extract(db, testParams()); len(got) != 0 {
		t.Fatalf("sub-σ flow produced %d patterns", len(got))
	}
	// δ_t violation.
	slow := flow(rng, 40, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 3*time.Hour,
		[2]poi.Semantics{0, 0})
	if got := (Compat{NewTPattern()}).Extract(slow, testParams()); len(got) != 0 {
		t.Fatalf("δ_t-violating flow produced %d patterns", len(got))
	}
}

func TestTPatternEmptyAndDefaults(t *testing.T) {
	if got := (Compat{NewTPattern()}).Extract(nil, testParams()); got != nil {
		t.Fatal("empty db should produce nil")
	}
	rng := rand.New(rand.NewSource(3))
	db := flow(rng, 40, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute,
		[2]poi.Semantics{0, 0})
	zero := &TPattern{} // zero config falls back to defaults
	if got := (Compat{zero}).Extract(db, testParams()); len(got) == 0 {
		t.Fatal("zero-config TPattern found nothing")
	}
}

func TestTPatternMergesAdjacentDenseCells(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A flow whose endpoints straddle cell boundaries: the ~±120 m
	// stay scatter covers several adjacent 150 m cells that must merge
	// into one ROI each, or the flow fragments below σ.
	db := flow(rng, 60, [2]float64{0, 0}, [2]float64{4000, 0}, 60, 30*time.Minute,
		[2]poi.Semantics{0, 0})
	params := testParams()
	params.Sigma = 40
	params.Rho = 0 // wide endpoints: density check would reject otherwise
	ex := NewTPattern()
	ex.MinCellVisits = 6 // the scatter thins each 150 m cell to ~12 visits
	got := Compat{ex}.Extract(db, params)
	if len(got) == 0 {
		t.Fatal("adjacent dense cells did not merge into one ROI")
	}
}
