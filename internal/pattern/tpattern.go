package pattern

import (
	"sort"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/seqpattern"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// TPattern is the grid-based spatiotemporal miner of Giannotti et al.
// (KDD 2007), the §2 pre-semantic baseline: space is partitioned into a
// uniform grid, dense cells merge into Regions of Interest, trajectories
// become ROI-id sequences, and PrefixSpan mines frequent ROI sequences.
// It needs no semantic recognition at all — which is exactly its
// limitation: mined patterns say where people move, never why, so they
// cannot support semantic queries or services. csdm ships it to
// quantify what the City Semantic Diagram adds.
type TPattern struct {
	// CellMeters is the grid granularity.
	CellMeters float64
	// MinCellVisits marks a cell dense when at least this many stay
	// points fall into it.
	MinCellVisits int
}

// NewTPattern returns the baseline with a 150 m grid and a density
// threshold matched to city-scale workloads.
func NewTPattern() *TPattern { return &TPattern{CellMeters: 150, MinCellVisits: 20} }

// Name implements Extractor.
func (t *TPattern) Name() string { return "T-Pattern" }

// Extract implements Extractor. Emitted patterns carry empty semantic
// items — the defining gap of the approach — with representatives at
// the matched stay points, and support/groups computed like the other
// extractors' (spatial+temporal containment only, since there are no
// tags to constrain). The grid aggregation and PrefixSpan passes are
// inherently sequential; the per-candidate δ_t/ρ filtering fans out
// over env's worker pool, with results re-aggregated in mined order so
// the output is worker-count independent.
func (t *TPattern) Extract(env stage.Env, db []trajectory.SemanticTrajectory, params Params) ([]Pattern, error) {
	ctx, tr, opt := env.Ctx, env.Trace, env.Opt
	root := env.StartSpan("extract." + t.Name())
	defer root.End()
	params = params.normalized()
	cell := t.CellMeters
	if cell <= 0 {
		cell = 150
	}
	minVisits := t.MinCellVisits
	if minVisits <= 0 {
		minVisits = 1
	}

	// Pass 1: cell popularity over all stay points.
	var all []geo.Point
	for _, st := range db {
		for _, sp := range st.Stays {
			all = append(all, sp.P)
		}
	}
	if len(all) == 0 {
		return nil, nil
	}
	proj := geo.NewProjection(geo.Centroid(all))
	type cellKey struct{ x, y int32 }
	keyOf := func(p geo.Point) cellKey {
		m := proj.ToMeters(p)
		return cellKey{int32(m.X / cell), int32(m.Y / cell)}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	visits := make(map[cellKey]int)
	for _, p := range all {
		visits[keyOf(p)]++
	}

	// Dense cells become ROIs; adjacent dense cells merge (union-find
	// over the 4-neighborhood), as in the original's region growing.
	var cells []cellKey
	for k, n := range visits {
		if n >= minVisits {
			cells = append(cells, k)
		}
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].x != cells[b].x {
			return cells[a].x < cells[b].x
		}
		return cells[a].y < cells[b].y
	})
	parent := make([]int, len(cells))
	idx := make(map[cellKey]int, len(cells))
	for i, k := range cells {
		parent[i] = i
		idx[k] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, k := range cells {
		for _, nb := range []cellKey{{k.x + 1, k.y}, {k.x, k.y + 1}} {
			if j, ok := idx[nb]; ok {
				parent[find(i)] = find(j)
			}
		}
	}
	roiOf := make(map[cellKey]int, len(cells))
	roiIDs := make(map[int]int)
	for i, k := range cells {
		root := find(i)
		id, ok := roiIDs[root]
		if !ok {
			id = len(roiIDs)
			roiIDs[root] = id
		}
		roiOf[k] = id
	}

	// Pass 2: trajectories become ROI-id sequences (stays outside every
	// ROI get no item and fragment the match, as in the original).
	const noROI = seqpattern.Item(0xFFFF)
	seqs := make([]seqpattern.Sequence, len(db))
	for i, st := range db {
		seq := make(seqpattern.Sequence, st.Len())
		for k, sp := range st.Stays {
			if id, ok := roiOf[keyOf(sp.P)]; ok {
				seq[k] = seqpattern.Item(id)
			} else {
				seq[k] = noROI
			}
		}
		seqs[i] = seq
	}
	mined := seqpattern.MineWith(seqs, seqpattern.Config{
		MinSupport: params.Sigma,
		MinLen:     params.MinLen,
		MaxLen:     params.MaxLen,
	}, opt)

	pfx := "extract." + t.Name()
	tr.Add(pfx+".coarse", int64(len(mined)))
	exec.Note(tr, len(mined), exec.Workers(opt.Workers))
	type candidateResult struct {
		pattern   *Pattern
		candidate bool
		pruned    bool
	}
	results, err := exec.ParallelMap(ctx, opt.Workers, len(mined), func(mi int) (candidateResult, error) {
		m := mined[mi]
		if containsItem(m.Items, noROI) {
			return candidateResult{}, nil
		}
		res := candidateResult{candidate: true}
		var support [][]trajectory.StayPoint
		for si, seqID := range m.SeqIDs {
			stays := make([]trajectory.StayPoint, len(m.Items))
			for k, pos := range m.Embeddings[si] {
				stays[k] = db[seqID].Stays[pos]
				stays[k].S = 0 // the baseline carries no semantics
			}
			if !respectsDeltaT(stays, params.DeltaT) {
				continue
			}
			support = append(support, stays)
		}
		if len(support) < params.Sigma {
			res.pruned = true
			return res, nil
		}
		// ρ density check per position.
		for k := 0; k < len(m.Items); k++ {
			pts := make([]geo.Point, len(support))
			for i := range support {
				pts[i] = support[i][k].P
			}
			if geo.Density(pts) < params.Rho {
				res.pruned = true
				return res, nil
			}
		}
		p := buildPattern(make([]poi.Semantics, len(m.Items)), support)
		res.pattern = &p
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Pattern
	var candidates, pruned int64
	for _, res := range results {
		if res.candidate {
			candidates++
		}
		if res.pruned {
			pruned++
		}
		if res.pattern != nil {
			out = append(out, *res.pattern)
		}
	}
	tr.Add(pfx+".candidates", candidates)
	tr.Add(pfx+".pruned", pruned)
	tr.Add(pfx+".patterns", int64(len(out)))
	return out, nil
}

func containsItem(items []seqpattern.Item, it seqpattern.Item) bool {
	for _, x := range items {
		if x == it {
			return true
		}
	}
	return false
}
