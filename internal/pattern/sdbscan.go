package pattern

import (
	"context"

	"csdm/internal/cluster"
	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/trajectory"
)

// SDBSCAN is the baseline of Jiang et al. [19]: the modified Splitter
// that breaks PrefixSpan's coarse patterns with density-based DBSCAN
// clustering instead of top-down Mean Shift (§2). A fixed ε makes it
// chain adjacent dense areas together, which is what produces the
// sparse-pattern tail the paper observes for DBSCAN-based refinement.
type SDBSCAN struct {
	// Eps is the DBSCAN neighborhood radius in meters.
	Eps float64
	// MinPts is the DBSCAN core threshold; 0 means "use σ".
	MinPts int
}

// NewSDBSCAN returns the baseline with its published ~100 m radius.
func NewSDBSCAN() *SDBSCAN { return &SDBSCAN{Eps: 100} }

// Name implements Extractor.
func (s *SDBSCAN) Name() string { return "SDBSCAN" }

// Extract implements Extractor.
func (s *SDBSCAN) Extract(db []trajectory.SemanticTrajectory, params Params) []Pattern {
	return s.ExtractTraced(db, params, nil)
}

// ExtractTraced implements TracedExtractor.
func (s *SDBSCAN) ExtractTraced(db []trajectory.SemanticTrajectory, params Params, tr *obs.Trace) []Pattern {
	out, _ := s.ExtractCtx(context.Background(), db, params, tr, exec.Options{})
	return out
}

// ExtractCtx implements ContextExtractor.
func (s *SDBSCAN) ExtractCtx(ctx context.Context, db []trajectory.SemanticTrajectory, params Params, tr *obs.Trace, opt exec.Options) ([]Pattern, error) {
	params = params.normalized()
	minPts := s.MinPts
	if minPts <= 0 {
		minPts = params.Sigma
	}
	return extractStages(ctx, s.Name(), db, params, tr, opt, func(pa coarsePattern) []Pattern {
		return refineByModes(pa, params, func(pts []geo.Point) []int {
			return cluster.DBSCANWith(pts, s.Eps, minPts, opt).Labels
		}, tr, "extract."+s.Name())
	})
}
