package pattern

import (
	"csdm/internal/cluster"
	"csdm/internal/geo"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// SDBSCAN is the baseline of Jiang et al. [19]: the modified Splitter
// that breaks PrefixSpan's coarse patterns with density-based DBSCAN
// clustering instead of top-down Mean Shift (§2). A fixed ε makes it
// chain adjacent dense areas together, which is what produces the
// sparse-pattern tail the paper observes for DBSCAN-based refinement.
type SDBSCAN struct {
	// Eps is the DBSCAN neighborhood radius in meters.
	Eps float64
	// MinPts is the DBSCAN core threshold; 0 means "use σ".
	MinPts int
}

// NewSDBSCAN returns the baseline with its published ~100 m radius.
func NewSDBSCAN() *SDBSCAN { return &SDBSCAN{Eps: 100} }

// Name implements Extractor.
func (s *SDBSCAN) Name() string { return "SDBSCAN" }

// Extract implements Extractor.
func (s *SDBSCAN) Extract(env stage.Env, db []trajectory.SemanticTrajectory, params Params) ([]Pattern, error) {
	params = params.normalized()
	minPts := s.MinPts
	if minPts <= 0 {
		minPts = params.Sigma
	}
	return extractStages(env, s.Name(), db, params, func(pa coarsePattern) []Pattern {
		return refineByModes(pa, params, func(pts []geo.Point) []int {
			return cluster.DBSCANWith(pts, s.Eps, minPts, env.Opt).Labels
		}, env.Trace, "extract."+s.Name())
	})
}
