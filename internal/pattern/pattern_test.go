package pattern

import (
	"math/rand"
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

var (
	origin = geo.Point{Lon: 121.47, Lat: 31.23}
	proj   = geo.NewProjection(origin)
	t0     = time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)

	home   = poi.SemanticsOf(poi.Residence)
	office = poi.SemanticsOf(poi.BusinessOffice)
	shop   = poi.SemanticsOf(poi.ShopMarket)
)

func at(x, y float64) geo.Point { return proj.ToPoint(geo.Meters{X: x, Y: y}) }

// flow builds n annotated Home→Office trajectories whose stays scatter
// (spread meters) around the two given anchor offsets, with the given
// gap between stays.
func flow(rng *rand.Rand, n int, a, b [2]float64, spread float64, gap time.Duration, sems [2]poi.Semantics) []trajectory.SemanticTrajectory {
	var out []trajectory.SemanticTrajectory
	for i := 0; i < n; i++ {
		start := t0.Add(time.Duration(rng.Intn(60)) * time.Minute)
		out = append(out, trajectory.SemanticTrajectory{
			ID: int64(i),
			Stays: []trajectory.StayPoint{
				{P: at(a[0]+rng.NormFloat64()*spread, a[1]+rng.NormFloat64()*spread), T: start, S: sems[0]},
				{P: at(b[0]+rng.NormFloat64()*spread, b[1]+rng.NormFloat64()*spread), T: start.Add(gap), S: sems[1]},
			},
		})
	}
	return out
}

// extractors exercises every refiner through the Compat adapter — the
// same legacy call shape external callers use.
var extractors = []Compat{{NewCounterpartCluster()}, {NewSplitter()}, {NewSDBSCAN()}}

// testParams keeps the thresholds small for compact test databases.
func testParams() Params {
	return Params{Sigma: 20, DeltaT: time.Hour, Rho: 0.0005, MinLen: 2, MaxLen: 4}
}

func TestExtractorsFindTwoSpatialVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Same semantic sequence Home→Office at two distant anchor pairs:
	// one coarse pattern, two fine-grained patterns.
	db := flow(rng, 40, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute, [2]poi.Semantics{home, office})
	db = append(db, flow(rng, 40, [2]float64{0, 3000}, [2]float64{4000, 3000}, 20, 30*time.Minute, [2]poi.Semantics{home, office})...)

	for _, ex := range extractors {
		got := ex.Extract(db, testParams())
		if len(got) != 2 {
			t.Errorf("%s: patterns = %d, want 2", ex.Name(), len(got))
			continue
		}
		for _, p := range got {
			if p.Support < 20 {
				t.Errorf("%s: support = %d", ex.Name(), p.Support)
			}
			if p.Len() != 2 {
				t.Errorf("%s: length = %d", ex.Name(), p.Len())
			}
			if p.Items[0] != home || p.Items[1] != office {
				t.Errorf("%s: items = %v", ex.Name(), p.Items)
			}
			// Representative stays sit near an anchor.
			m := proj.ToMeters(p.Stays[0].P)
			if !(near(m.X, 0) && (near(m.Y, 0) || near(m.Y, 3000))) {
				t.Errorf("%s: representative at (%.0f, %.0f)", ex.Name(), m.X, m.Y)
			}
		}
	}
}

func near(v, target float64) bool { return v > target-120 && v < target+120 }

func TestExtractorsRespectSupportThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := flow(rng, 10, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute, [2]poi.Semantics{home, office})
	params := testParams() // σ=20 > 10 supporters
	for _, ex := range extractors {
		if got := ex.Extract(db, params); len(got) != 0 {
			t.Errorf("%s: %d patterns from sub-σ flow, want 0", ex.Name(), len(got))
		}
	}
}

func TestExtractorsRespectDeltaT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Gap of 3 h violates δ_t = 1 h.
	db := flow(rng, 40, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 3*time.Hour, [2]poi.Semantics{home, office})
	for _, ex := range extractors {
		if got := ex.Extract(db, testParams()); len(got) != 0 {
			t.Errorf("%s: %d patterns despite δ_t violation, want 0", ex.Name(), len(got))
		}
	}
}

func TestExtractorsRespectDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Stays scattered over ±2 km: any cluster that still forms has
	// density far below ρ.
	db := flow(rng, 60, [2]float64{0, 0}, [2]float64{8000, 0}, 2000, 30*time.Minute, [2]poi.Semantics{home, office})
	params := testParams()
	params.Rho = 0.002
	for _, ex := range extractors {
		for _, p := range ex.Extract(db, params) {
			for k, g := range p.Groups {
				if d := geo.Density(groupPoints(g)); d < params.Rho {
					t.Errorf("%s: group %d density %.5f < ρ", ex.Name(), k, d)
				}
			}
		}
	}
}

func TestExtractorsIgnoreUnannotatedStays(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := flow(rng, 40, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute,
		[2]poi.Semantics{0, 0}) // recognition failed everywhere
	for _, ex := range extractors {
		if got := ex.Extract(db, testParams()); len(got) != 0 {
			t.Errorf("%s: patterns from unannotated stays", ex.Name())
		}
	}
}

func TestExtractThreeStopPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var db []trajectory.SemanticTrajectory
	for i := 0; i < 40; i++ {
		start := t0.Add(time.Duration(rng.Intn(45)) * time.Minute)
		db = append(db, trajectory.SemanticTrajectory{
			ID: int64(i),
			Stays: []trajectory.StayPoint{
				{P: at(rng.NormFloat64()*15, 0), T: start, S: office},
				{P: at(3000+rng.NormFloat64()*15, 0), T: start.Add(40 * time.Minute), S: shop},
				{P: at(6000+rng.NormFloat64()*15, 0), T: start.Add(85 * time.Minute), S: home},
			},
		})
	}
	for _, ex := range extractors {
		got := ex.Extract(db, testParams())
		found := false
		for _, p := range got {
			if p.Len() == 3 && p.Items[0] == office && p.Items[1] == shop && p.Items[2] == home {
				found = true
				if p.Support < 20 {
					t.Errorf("%s: 3-stop support = %d", ex.Name(), p.Support)
				}
			}
		}
		if !found {
			t.Errorf("%s: Office→Shop→Home pattern not found", ex.Name())
		}
	}
}

func TestPatternGroupsAlignWithSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := flow(rng, 50, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute, [2]poi.Semantics{home, office})
	for _, ex := range extractors {
		for _, p := range ex.Extract(db, testParams()) {
			for k, g := range p.Groups {
				// Definition 10: one counterpart stay per supporter,
				// plus the representative itself when it is not
				// already one of them.
				if len(g) != p.Support && len(g) != p.Support+1 {
					t.Errorf("%s: group %d size %d, want %d or %d", ex.Name(), k, len(g), p.Support, p.Support+1)
				}
			}
			// Representative must be a member of its group.
			for k, rep := range p.Stays {
				member := false
				for _, sp := range p.Groups[k] {
					if sp.P == rep.P {
						member = true
						break
					}
				}
				if !member {
					t.Errorf("%s: representative %d not in group", ex.Name(), k)
				}
			}
		}
	}
}

func TestCounterpartClusterConsumesTrajectoriesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := flow(rng, 60, [2]float64{0, 0}, [2]float64{4000, 0}, 20, 30*time.Minute, [2]poi.Semantics{home, office})
	got := Compat{NewCounterpartCluster()}.Extract(db, testParams())
	total := 0
	for _, p := range got {
		total += p.Support
	}
	if total > len(db) {
		t.Fatalf("supports sum to %d > %d trajectories: double counting", total, len(db))
	}
}

func TestExtractEmptyDatabase(t *testing.T) {
	for _, ex := range extractors {
		if got := ex.Extract(nil, testParams()); len(got) != 0 {
			t.Errorf("%s: patterns from empty db", ex.Name())
		}
	}
}

func TestMeanTimeAndBuildPattern(t *testing.T) {
	support := [][]trajectory.StayPoint{
		{{P: at(0, 0), T: t0, S: home}},
		{{P: at(10, 0), T: t0.Add(2 * time.Hour), S: home}},
	}
	p := buildPattern([]poi.Semantics{home}, support)
	if p.Support != 2 || p.Len() != 1 {
		t.Fatalf("pattern = %+v", p)
	}
	if want := t0.Add(time.Hour); !p.Stays[0].T.Equal(want) {
		t.Fatalf("mean time = %v, want %v", p.Stays[0].T, want)
	}
	if p.Stays[0].S != home {
		t.Fatalf("semantics = %v", p.Stays[0].S)
	}
}

func TestRespectsDeltaT(t *testing.T) {
	stays := []trajectory.StayPoint{
		{T: t0}, {T: t0.Add(30 * time.Minute)}, {T: t0.Add(50 * time.Minute)},
	}
	if !respectsDeltaT(stays, time.Hour) {
		t.Error("within δ_t rejected")
	}
	if respectsDeltaT(stays, 25*time.Minute) {
		t.Error("δ_t violation accepted")
	}
	if !respectsDeltaT(stays[:1], time.Minute) {
		t.Error("single stay should always pass")
	}
}

func BenchmarkCounterpartCluster(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	db := flow(rng, 200, [2]float64{0, 0}, [2]float64{4000, 0}, 25, 30*time.Minute, [2]poi.Semantics{home, office})
	db = append(db, flow(rng, 200, [2]float64{500, 2000}, [2]float64{4500, 2000}, 25, 30*time.Minute, [2]poi.Semantics{home, office})...)
	params := testParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compat{NewCounterpartCluster()}.Extract(db, params)
	}
}
