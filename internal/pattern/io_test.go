package pattern

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

func samplePatterns() []Pattern {
	t0 := time.Date(2024, 3, 1, 8, 30, 0, 0, time.UTC)
	sem := poi.SemanticsOf(poi.ShopMarket)
	return []Pattern{
		{
			Stays: []trajectory.StayPoint{
				{P: geo.Point{Lon: 121.47, Lat: 31.23}, T: t0, S: sem},
				{P: geo.Point{Lon: 121.48, Lat: 31.24}, T: t0.Add(time.Hour), S: sem},
			},
			Items:   []poi.Semantics{sem, sem},
			Support: 7,
		},
		{
			Stays:   []trajectory.StayPoint{{P: geo.Point{Lon: 121.50, Lat: 31.20}, T: t0}},
			Items:   []poi.Semantics{sem},
			Support: 3,
		},
	}
}

func TestPatternJSONRoundTrip(t *testing.T) {
	want := samplePatterns()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d patterns, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Support != want[i].Support {
			t.Errorf("pattern %d support = %d, want %d", i, got[i].Support, want[i].Support)
		}
		if len(got[i].Stays) != len(want[i].Stays) {
			t.Fatalf("pattern %d stays = %d, want %d", i, len(got[i].Stays), len(want[i].Stays))
		}
		for k := range want[i].Stays {
			if got[i].Stays[k].P != want[i].Stays[k].P {
				t.Errorf("pattern %d stay %d point = %v, want %v", i, k, got[i].Stays[k].P, want[i].Stays[k].P)
			}
			if !got[i].Stays[k].T.Equal(want[i].Stays[k].T) {
				t.Errorf("pattern %d stay %d time = %v, want %v", i, k, got[i].Stays[k].T, want[i].Stays[k].T)
			}
			if got[i].Stays[k].S != want[i].Stays[k].S {
				t.Errorf("pattern %d stay %d semantics = %v, want %v", i, k, got[i].Stays[k].S, want[i].Stays[k].S)
			}
		}
		if len(got[i].Items) != len(want[i].Items) {
			t.Errorf("pattern %d items = %d, want %d", i, len(got[i].Items), len(want[i].Items))
		}
		// Groups are deliberately not persisted.
		if got[i].Groups != nil {
			t.Errorf("pattern %d Groups survived serialization", i)
		}
	}
}

func TestPatternJSONEmptySet(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("read %d patterns from an empty set", len(got))
	}
}

func TestPatternJSONRejectsCorrupt(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", `{{{`},
		{"wrong version", `{"version":99,"patterns":[]}`},
		{"no stays", `{"version":1,"patterns":[{"stays":[],"support":1}]}`},
		{"negative support", `{"version":1,"patterns":[{"stays":[{"p":{"lon":121.47,"lat":31.23}}],"support":-1}]}`},
		{"nan-free but out of range", `{"version":1,"patterns":[{"stays":[{"p":{"lon":999,"lat":31.23}}],"support":1}]}`},
	}
	for _, tc := range cases {
		if _, err := ReadJSON(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadJSON accepted corrupt input", tc.name)
		}
	}
}
