package pattern

import (
	"context"
	"fmt"
	"math"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/trajectory"
)

// closureComputer evaluates a finished pattern's true support and
// groups per Definitions 8–11: the set of database trajectories that
// contain or reachable contain the pattern's representative trajectory
// under (ε_t, δ_t, ⊇) containment, and the per-position collections of
// their counterpart stay points.
//
// A naive closure scans the whole database per BFS level. Two
// optimizations keep it fast without changing the result:
//
//   - spatial prefiltering: a trajectory can only contain a target if it
//     has stays within ε_t of the target's first and last stay, so a
//     grid index over all stays shortlists candidates;
//   - frontier deduplication: counterpart sequences whose stays
//     quantize to the same ε_t/4 cells (with equal semantics) expand to
//     near-identical searches, so only one representative is kept.
type closureComputer struct {
	db     []trajectory.SemanticTrajectory
	params trajectory.ContainParams
	// stayIdx indexes every stay of every trajectory; stayTraj maps the
	// indexed stay back to its trajectory.
	stayIdx  index.Index
	stayTraj []int
	quantum  float64
	// proj is a fixed projection for quantizing counterpart keys; it
	// must be shared so that spatially distinct counterparts get
	// distinct keys.
	proj geo.Projection
}

// newClosureComputer indexes the database once per extraction run on
// the requested backend.
func newClosureComputer(db []trajectory.SemanticTrajectory, params Params, kind index.Kind) *closureComputer {
	cc := &closureComputer{
		db: db,
		params: trajectory.ContainParams{
			MaxDist: params.EpsT,
			MaxGap:  params.DeltaT,
		},
		quantum: math.Max(params.EpsT/4, 1),
	}
	var pts []geo.Point
	for ti, st := range db {
		for _, sp := range st.Stays {
			pts = append(pts, sp.P)
			cc.stayTraj = append(cc.stayTraj, ti)
		}
	}
	cc.stayIdx = index.New(kind, pts, math.Max(params.EpsT, 50))
	cc.proj = geo.NewProjection(geo.Centroid(pts))
	return cc
}

// closureScratch is the per-worker reusable state of the closure BFS.
// The computer itself is shared across workers, so every mutable buffer
// lives here; maps are emptied with clear() instead of reallocated,
// which keeps their buckets warm across the many patterns one worker
// finalizes. Results never depend on leftover scratch contents, so the
// reuse cannot perturb worker-count determinism.
type closureScratch struct {
	ids       []int // range-query buffer
	cand      []int // candidate trajectory list, valid until the next candidates call
	nearFirst map[int]bool
	seen      map[int]bool
	found     map[int]bool
	tried     map[string]bool
	frontier  []trajectory.SemanticTrajectory
	next      []trajectory.SemanticTrajectory
	keyBuf    []byte
}

func newClosureScratch() *closureScratch {
	return &closureScratch{
		nearFirst: make(map[int]bool),
		seen:      make(map[int]bool),
		found:     make(map[int]bool),
		tried:     make(map[string]bool),
	}
}

// candidates returns the database trajectories having stays within
// ε_t of both endpoints of the target. The returned slice is sc's and
// only valid until the next candidates call on the same scratch.
func (cc *closureComputer) candidates(target trajectory.SemanticTrajectory, sc *closureScratch) []int {
	if target.Len() == 0 {
		return nil
	}
	first := target.Stays[0].P
	last := target.Stays[target.Len()-1].P
	clear(sc.nearFirst)
	clear(sc.seen)
	sc.ids = cc.stayIdx.WithinAppend(first, cc.params.MaxDist, sc.ids[:0])
	for _, si := range sc.ids {
		sc.nearFirst[cc.stayTraj[si]] = true
	}
	out := sc.cand[:0]
	sc.ids = cc.stayIdx.WithinAppend(last, cc.params.MaxDist, sc.ids[:0])
	for _, si := range sc.ids {
		ti := cc.stayTraj[si]
		if sc.nearFirst[ti] && !sc.seen[ti] {
			sc.seen[ti] = true
			out = append(out, ti)
		}
	}
	sc.cand = out
	return out
}

// key quantizes a counterpart sequence for frontier deduplication. The
// shared projection keeps keys tied to absolute positions.
func (cc *closureComputer) key(st trajectory.SemanticTrajectory, sc *closureScratch) string {
	out := sc.keyBuf[:0]
	for _, sp := range st.Stays {
		m := cc.proj.ToMeters(sp.P)
		out = fmt.Appendf(out, "%d:%d:%d;",
			int(math.Floor(m.X/cc.quantum)), int(math.Floor(m.Y/cc.quantum)), sp.S)
	}
	sc.keyBuf = out
	return string(out)
}

// supportGroups runs the closure BFS for one pattern representative and
// returns the support count and the per-position groups (Definition 10:
// the representative's own stays are members of their groups).
func (cc *closureComputer) supportGroups(rep []trajectory.StayPoint, sc *closureScratch) (int, [][]trajectory.StayPoint) {
	m := len(rep)
	groups := make([][]trajectory.StayPoint, m)
	query := trajectory.SemanticTrajectory{Stays: rep}

	clear(sc.found)
	clear(sc.tried)
	found, tried := sc.found, sc.tried
	tried[cc.key(query, sc)] = true
	frontier := append(sc.frontier[:0], query)
	next := sc.next[:0]

	for len(frontier) > 0 {
		next = next[:0]
		for _, target := range frontier {
			for _, ti := range cc.candidates(target, sc) {
				if found[ti] {
					continue
				}
				idxs, ok := trajectory.Contains(cc.db[ti], target, cc.params)
				if !ok {
					continue
				}
				found[ti] = true
				cp := make([]trajectory.StayPoint, len(idxs))
				for j, k := range idxs {
					cp[j] = cc.db[ti].Stays[k]
					groups[j] = append(groups[j], cp[j])
				}
				cpTraj := trajectory.SemanticTrajectory{Stays: cp}
				if k := cc.key(cpTraj, sc); !tried[k] {
					tried[k] = true
					next = append(next, cpTraj)
				}
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
	// Definition 10 includes sp_j itself in its group; as the
	// representative is usually a member of some closure counterpart,
	// add it only where it is not already present.
	for j, sp := range rep {
		present := false
		for _, g := range groups[j] {
			if g == sp {
				present = true
				break
			}
		}
		if !present {
			groups[j] = append(groups[j], sp)
		}
	}
	return len(found), groups
}

// dedupeMaximal keeps only maximal patterns: a pattern is dropped when
// another pattern of the same length sits at the same locations (reps
// within ε_t at every position) with positionwise superset semantics.
// Without this filter, tag flicker in the recognition stage makes one
// physical flow surface as a stack of near-duplicate patterns — one per
// tag flavor — inflating both pattern count and coverage. Reporting
// maximal patterns is the sequential-pattern-mining norm.
func dedupeMaximal(ps []Pattern, epsT float64) []Pattern {
	drop := make([]bool, len(ps))
	for i := range ps {
		if drop[i] {
			continue
		}
		for j := range ps {
			if i == j || drop[j] || len(ps[j].Stays) != len(ps[i].Stays) {
				continue
			}
			if subsumes(ps[j], ps[i], epsT) {
				// Identical semantics: keep the better-supported one
				// (ties break toward the earlier pattern).
				if sameItems(ps[i], ps[j]) &&
					(ps[i].Support > ps[j].Support || (ps[i].Support == ps[j].Support && i < j)) {
					continue
				}
				drop[i] = true
				break
			}
		}
	}
	out := ps[:0]
	for i := range ps {
		if !drop[i] {
			out = append(out, ps[i])
		}
	}
	return out
}

// subsumes reports whether b covers a: same length, positionwise
// superset items, and co-located representatives.
func subsumes(b, a Pattern, epsT float64) bool {
	for k := range a.Stays {
		if !b.Items[k].Contains(a.Items[k]) {
			return false
		}
		if geo.Haversine(b.Stays[k].P, a.Stays[k].P) > epsT {
			return false
		}
	}
	return true
}

func sameItems(a, b Pattern) bool {
	for k := range a.Items {
		if a.Items[k] != b.Items[k] {
			return false
		}
	}
	return true
}

// finalize recomputes every pattern's support and groups over the
// containment closure (the paper's Table 2 definition of support and
// Definition 10 groups), replacing the refinement-cluster approximation
// built by buildPattern. Patterns are independent, so the closures run
// on the worker pool; pattern i's support/groups land back at slot i,
// keeping the output worker-count independent.
func finalize(ctx context.Context, db []trajectory.SemanticTrajectory, ps []Pattern, params Params, opt exec.Options) ([]Pattern, error) {
	if len(ps) == 0 {
		return ps, nil
	}
	ps = dedupeMaximal(ps, params.EpsT)
	cc := newClosureComputer(db, params, opt.Index)
	scratch := make([]*closureScratch, exec.Slots(opt.Workers, len(ps)))
	for i := range scratch {
		scratch[i] = newClosureScratch()
	}
	err := exec.ParallelForSlots(ctx, opt.Workers, len(ps), func(slot, i int) error {
		sup, groups := cc.supportGroups(ps[i].Stays, scratch[slot])
		ps[i].Support = sup
		ps[i].Groups = groups
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}
