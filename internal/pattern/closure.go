package pattern

import (
	"context"
	"fmt"
	"math"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/trajectory"
)

// closureComputer evaluates a finished pattern's true support and
// groups per Definitions 8–11: the set of database trajectories that
// contain or reachable contain the pattern's representative trajectory
// under (ε_t, δ_t, ⊇) containment, and the per-position collections of
// their counterpart stay points.
//
// A naive closure scans the whole database per BFS level. Two
// optimizations keep it fast without changing the result:
//
//   - spatial prefiltering: a trajectory can only contain a target if it
//     has stays within ε_t of the target's first and last stay, so a
//     grid index over all stays shortlists candidates;
//   - frontier deduplication: counterpart sequences whose stays
//     quantize to the same ε_t/4 cells (with equal semantics) expand to
//     near-identical searches, so only one representative is kept.
type closureComputer struct {
	db     []trajectory.SemanticTrajectory
	params trajectory.ContainParams
	// stayIdx indexes every stay of every trajectory; stayTraj maps the
	// indexed stay back to its trajectory.
	stayIdx  index.Index
	stayTraj []int
	quantum  float64
	// proj is a fixed projection for quantizing counterpart keys; it
	// must be shared so that spatially distinct counterparts get
	// distinct keys.
	proj geo.Projection
}

// newClosureComputer indexes the database once per extraction run on
// the requested backend.
func newClosureComputer(db []trajectory.SemanticTrajectory, params Params, kind index.Kind) *closureComputer {
	cc := &closureComputer{
		db: db,
		params: trajectory.ContainParams{
			MaxDist: params.EpsT,
			MaxGap:  params.DeltaT,
		},
		quantum: math.Max(params.EpsT/4, 1),
	}
	var pts []geo.Point
	for ti, st := range db {
		for _, sp := range st.Stays {
			pts = append(pts, sp.P)
			cc.stayTraj = append(cc.stayTraj, ti)
		}
	}
	cc.stayIdx = index.New(kind, pts, math.Max(params.EpsT, 50))
	cc.proj = geo.NewProjection(geo.Centroid(pts))
	return cc
}

// candidates returns the database trajectories having stays within
// ε_t of both endpoints of the target.
func (cc *closureComputer) candidates(target trajectory.SemanticTrajectory) []int {
	if target.Len() == 0 {
		return nil
	}
	first := target.Stays[0].P
	last := target.Stays[target.Len()-1].P
	nearFirst := make(map[int]bool)
	for _, si := range cc.stayIdx.Within(first, cc.params.MaxDist) {
		nearFirst[cc.stayTraj[si]] = true
	}
	var out []int
	seen := make(map[int]bool)
	for _, si := range cc.stayIdx.Within(last, cc.params.MaxDist) {
		ti := cc.stayTraj[si]
		if nearFirst[ti] && !seen[ti] {
			seen[ti] = true
			out = append(out, ti)
		}
	}
	return out
}

// key quantizes a counterpart sequence for frontier deduplication. The
// shared projection keeps keys tied to absolute positions.
func (cc *closureComputer) key(st trajectory.SemanticTrajectory) string {
	out := make([]byte, 0, 16*st.Len())
	for _, sp := range st.Stays {
		m := cc.proj.ToMeters(sp.P)
		out = fmt.Appendf(out, "%d:%d:%d;",
			int(math.Floor(m.X/cc.quantum)), int(math.Floor(m.Y/cc.quantum)), sp.S)
	}
	return string(out)
}

// supportGroups runs the closure BFS for one pattern representative and
// returns the support count and the per-position groups (Definition 10:
// the representative's own stays are members of their groups).
func (cc *closureComputer) supportGroups(rep []trajectory.StayPoint) (int, [][]trajectory.StayPoint) {
	m := len(rep)
	groups := make([][]trajectory.StayPoint, m)
	query := trajectory.SemanticTrajectory{Stays: rep}

	found := make(map[int]bool)
	tried := map[string]bool{cc.key(query): true}
	frontier := []trajectory.SemanticTrajectory{query}

	for len(frontier) > 0 {
		var next []trajectory.SemanticTrajectory
		for _, target := range frontier {
			for _, ti := range cc.candidates(target) {
				if found[ti] {
					continue
				}
				idxs, ok := trajectory.Contains(cc.db[ti], target, cc.params)
				if !ok {
					continue
				}
				found[ti] = true
				cp := make([]trajectory.StayPoint, len(idxs))
				for j, k := range idxs {
					cp[j] = cc.db[ti].Stays[k]
					groups[j] = append(groups[j], cp[j])
				}
				cpTraj := trajectory.SemanticTrajectory{Stays: cp}
				if k := cc.key(cpTraj); !tried[k] {
					tried[k] = true
					next = append(next, cpTraj)
				}
			}
		}
		frontier = next
	}
	// Definition 10 includes sp_j itself in its group; as the
	// representative is usually a member of some closure counterpart,
	// add it only where it is not already present.
	for j, sp := range rep {
		present := false
		for _, g := range groups[j] {
			if g == sp {
				present = true
				break
			}
		}
		if !present {
			groups[j] = append(groups[j], sp)
		}
	}
	return len(found), groups
}

// dedupeMaximal keeps only maximal patterns: a pattern is dropped when
// another pattern of the same length sits at the same locations (reps
// within ε_t at every position) with positionwise superset semantics.
// Without this filter, tag flicker in the recognition stage makes one
// physical flow surface as a stack of near-duplicate patterns — one per
// tag flavor — inflating both pattern count and coverage. Reporting
// maximal patterns is the sequential-pattern-mining norm.
func dedupeMaximal(ps []Pattern, epsT float64) []Pattern {
	drop := make([]bool, len(ps))
	for i := range ps {
		if drop[i] {
			continue
		}
		for j := range ps {
			if i == j || drop[j] || len(ps[j].Stays) != len(ps[i].Stays) {
				continue
			}
			if subsumes(ps[j], ps[i], epsT) {
				// Identical semantics: keep the better-supported one
				// (ties break toward the earlier pattern).
				if sameItems(ps[i], ps[j]) &&
					(ps[i].Support > ps[j].Support || (ps[i].Support == ps[j].Support && i < j)) {
					continue
				}
				drop[i] = true
				break
			}
		}
	}
	out := ps[:0]
	for i := range ps {
		if !drop[i] {
			out = append(out, ps[i])
		}
	}
	return out
}

// subsumes reports whether b covers a: same length, positionwise
// superset items, and co-located representatives.
func subsumes(b, a Pattern, epsT float64) bool {
	for k := range a.Stays {
		if !b.Items[k].Contains(a.Items[k]) {
			return false
		}
		if geo.Haversine(b.Stays[k].P, a.Stays[k].P) > epsT {
			return false
		}
	}
	return true
}

func sameItems(a, b Pattern) bool {
	for k := range a.Items {
		if a.Items[k] != b.Items[k] {
			return false
		}
	}
	return true
}

// finalize recomputes every pattern's support and groups over the
// containment closure (the paper's Table 2 definition of support and
// Definition 10 groups), replacing the refinement-cluster approximation
// built by buildPattern. Patterns are independent, so the closures run
// on the worker pool; pattern i's support/groups land back at slot i,
// keeping the output worker-count independent.
func finalize(ctx context.Context, db []trajectory.SemanticTrajectory, ps []Pattern, params Params, opt exec.Options) ([]Pattern, error) {
	if len(ps) == 0 {
		return ps, nil
	}
	ps = dedupeMaximal(ps, params.EpsT)
	cc := newClosureComputer(db, params, opt.Index)
	err := exec.ParallelFor(ctx, opt.Workers, len(ps), func(i int) error {
		sup, groups := cc.supportGroups(ps[i].Stays)
		ps[i].Support = sup
		ps[i].Groups = groups
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}
