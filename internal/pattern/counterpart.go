package pattern

import (
	"csdm/internal/cluster"
	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// CounterpartCluster is the paper's extractor (Algorithm 4). Per coarse
// pattern, OPTICS clusters the k-th stay points with the support
// threshold σ as its size threshold and an automatically extracted
// distance cut; each trajectory then gathers its counterpart set
// position by position, enforcing δ_t and the group-density threshold
// ρ, and surviving counterpart sets of size ≥ σ become fine-grained
// patterns.
type CounterpartCluster struct {
	// OpticsMaxEps is the generating distance of the OPTICS runs
	// (the "default maximum distance threshold" of §4.3).
	OpticsMaxEps float64
}

// NewCounterpartCluster returns the extractor with the default OPTICS
// generating distance of 500 m.
func NewCounterpartCluster() *CounterpartCluster {
	return &CounterpartCluster{OpticsMaxEps: 500}
}

// Name implements Extractor.
func (c *CounterpartCluster) Name() string { return "CounterpartCluster" }

// Extract implements Extractor.
func (c *CounterpartCluster) Extract(env stage.Env, db []trajectory.SemanticTrajectory, params Params) ([]Pattern, error) {
	params = params.normalized()
	return extractStages(env, c.Name(), db, params, func(pa coarsePattern) []Pattern {
		return c.refine(pa, params, env.Trace, env.Opt)
	})
}

// refine runs Algorithm 4 lines 3–20 on one coarse pattern, counting
// gathered counterpart candidate sets and σ/ρ prunes on tr.
func (c *CounterpartCluster) refine(pa coarsePattern, params Params, tr *obs.Trace, opt exec.Options) []Pattern {
	m := len(pa.items)
	n := len(pa.stays)
	if n < params.Sigma {
		return nil
	}

	// Line 5–6: OPTICS clusters of the k-th points, σ as minPts.
	clusters := make([][]int, m) // clusters[k][i] = cluster of trajectory i's k-th point
	for k := 0; k < m; k++ {
		pts := make([]geo.Point, n)
		for i := range pa.stays {
			pts[i] = pa.stays[i][k].P
		}
		res := cluster.OpticsWith(pts, c.OpticsMaxEps, params.Sigma, opt).ExtractLeaves(params.Sigma)
		clusters[k] = res.Labels
	}

	removed := make([]bool, n) // "pa ← pa − …" bookkeeping
	var out []Pattern
	var candidates, pruned int64

	for i := 0; i < n; i++ {
		if removed[i] {
			continue
		}
		// Lines 8–14: gather the counterpart candidate set of ST_i.
		candidate := make([]int, 0, n)
		for j := 0; j < n; j++ {
			if !removed[j] {
				candidate = append(candidate, j)
			}
		}
		valid := true
		for k := 0; k < m && valid; k++ {
			ci := clusters[k][i]
			next := candidate[:0]
			for _, j := range candidate {
				if ci >= 0 && clusters[k][j] == ci {
					next = append(next, j)
				}
			}
			candidate = next
			// Line 11–12: temporal constraint between consecutive points.
			if k > 0 {
				filtered := candidate[:0]
				for _, j := range candidate {
					gap := pa.stays[j][k].T.Sub(pa.stays[j][k-1].T)
					if gap < 0 {
						gap = -gap
					}
					if gap <= params.DeltaT {
						filtered = append(filtered, j)
					}
				}
				candidate = filtered
			}
			// Line 13–14: group density check.
			pts := make([]geo.Point, len(candidate))
			for idx, j := range candidate {
				pts[idx] = pa.stays[j][k].P
			}
			if geo.Density(pts) < params.Rho {
				// The failed candidates leave the coarse pattern.
				for _, j := range candidate {
					removed[j] = true
				}
				valid = false
			}
		}
		// Line 15: the gathered counterpart set leaves the coarse pattern.
		for _, j := range candidate {
			removed[j] = true
		}
		candidates++
		if !valid || len(candidate) < params.Sigma {
			pruned++
			continue
		}
		// Lines 18–20: representative points form the fine pattern.
		support := make([][]trajectory.StayPoint, len(candidate))
		for idx, j := range candidate {
			support[idx] = pa.stays[j]
		}
		out = append(out, buildPattern(pa.items, support))
	}
	pfx := "extract." + c.Name()
	tr.Add(pfx+".candidates", candidates)
	tr.Add(pfx+".pruned", pruned)
	return out
}
