package serve

import (
	"time"

	"csdm/internal/ckpt"
)

// StartWatch polls the checkpoint directory's CURRENT pointer (set by
// LoadCurrent) every interval and runs a full validated Reload whenever
// the pointer names a different snapshot than the one serving — the
// pull half of the streaming-ingestion publish protocol. A failed
// reload is logged and counted (csdm_serve_reload_failures_total) and
// the watcher keeps polling; the old generation keeps serving, exactly
// as with SIGHUP. Polling (rather than inotify) keeps the watcher
// portable and is cheap at ingestion cadence: one ReadFile of a
// one-line pointer per tick.
//
// The returned stop function terminates the watcher and waits for a
// poll in flight to finish; it is safe to call once.
func (s *Server) StartWatch(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			s.reloadMu.Lock()
			dir, loaded := s.currentDir, s.snapshotPath
			s.reloadMu.Unlock()
			if dir == "" {
				continue
			}
			path, err := ckpt.ResolveCurrent(dir)
			if err != nil {
				s.cfg.logf("watch: %v", err)
				continue
			}
			if path == loaded {
				continue
			}
			if _, err := s.Reload(); err != nil {
				// Reload already counted and logged the failure; the
				// next tick retries.
				continue
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
