package serve

import (
	"errors"
	"time"

	"csdm/internal/ckpt"
)

// StartWatch polls the checkpoint directory's CURRENT pointer (set by
// LoadCurrent) every interval and runs a full validated Reload whenever
// the pointer names a different snapshot than the one serving — the
// pull half of the streaming-ingestion publish protocol. A failed
// reload is logged and counted (csdm_serve_reload_failures_total) and
// the watcher keeps polling; the old generation keeps serving, exactly
// as with SIGHUP. Polling (rather than inotify) keeps the watcher
// portable and is cheap at ingestion cadence: one ReadFile of a
// one-line pointer per tick.
//
// A checkpoint directory with no CURRENT yet is not an error — it is
// the normal state when csdserve starts before the ingester publishes
// its first generation. That condition logs a single "waiting" line on
// entry (not one per tick) and is exposed as the
// csdm_serve_watch_pending gauge; any other resolve failure is a real
// error and stays logged per occurrence.
//
// The returned stop function terminates the watcher and waits for a
// poll in flight to finish; it is safe to call once.
func (s *Server) StartWatch(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		pending := false
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			s.reloadMu.Lock()
			dir, loaded := s.currentDir, s.snapshotPath
			s.reloadMu.Unlock()
			if dir == "" {
				continue
			}
			path, err := ckpt.ResolveCurrent(dir)
			if err != nil {
				if errors.Is(err, ckpt.ErrNoCurrent) {
					if !pending {
						pending = true
						s.met.watchPending(true)
						s.cfg.logf("watch: waiting for first generation in %s", dir)
					}
					continue
				}
				s.cfg.logf("watch: %v", err)
				continue
			}
			if pending {
				pending = false
				s.met.watchPending(false)
			}
			if path == loaded {
				continue
			}
			if _, err := s.Reload(); err != nil {
				// Reload already counted and logged the failure; the
				// next tick retries.
				continue
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
