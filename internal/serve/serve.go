// Package serve is the online recognition service over a built City
// Semantic Diagram: it loads a framed .csdf snapshot and answers
// semantic queries — annotate a stay point or journey (Algorithm 3),
// look up the semantic units near a location, list mined patterns near
// a location — over HTTP at high QPS, wrapped in a full robustness
// envelope:
//
//   - Admission control. A bounded semaphore sized from
//     Config.AdmissionLimit plus a small wait queue caps the requests in
//     the system; when both are full the server sheds load immediately
//     with 503 + Retry-After instead of queuing unboundedly
//     (csdm_serve_shed_total counts the shed requests).
//   - Per-request containment. Every request runs under its own
//     deadline (Config.RequestTimeout, propagated via context into the
//     recognition loop), a recover wrapper that converts handler panics
//     into *exec.PanicError — 500 to the caller, counter bumped, server
//     stays up — and a per-request recognize.Scratch from a sync.Pool so
//     steady-state recognition allocates nothing. The "serve.request"
//     fault site fires inside the containment, so injected errors and
//     panics take exactly the paths real failures take.
//   - Validated hot-swap with rollback. Reload re-reads the snapshot
//     through the framed CRC path, sanity-checks it (non-empty units,
//     extent overlap with the live diagram), and only then swaps an
//     atomic.Pointer[Snapshot] — readers never block and never observe a
//     torn diagram. A corrupt or failed-validation snapshot keeps the
//     old diagram live and bumps csdm_serve_reload_failures_total. The
//     "serve.reload" fault site makes the rollback path testable
//     deterministically.
//   - Lifecycle. /healthz is pure liveness; /readyz flips to 503 the
//     moment draining begins, so a load balancer stops routing before
//     connections close; Drain bounds connection draining with a
//     timeout and reports whether every in-flight request finished.
//
// The package also houses the load-generation engine behind
// cmd/loadgen and the BENCH_SERVE.json emitter.
package serve

import (
	"errors"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"csdm/internal/ckpt"
	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/recognize"
)

// Config parameterizes the recognition server.
type Config struct {
	// AdmissionLimit caps the requests in service concurrently — the
	// bounded semaphore's size. Zero or negative means runtime.NumCPU().
	AdmissionLimit int
	// QueueSlack is the wait-queue depth beyond the admission limit:
	// requests that find every service slot busy wait here, and a
	// request that finds the queue full too is shed with 503. Negative
	// means "equal to the admission limit"; zero disables waiting
	// entirely (busy server sheds immediately).
	QueueSlack int
	// RequestTimeout bounds each request with its own deadline,
	// propagated via context into the recognition loop. Zero disables
	// per-request deadlines.
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint sent with every shed response;
	// zero means one second (the header is always present — clients and
	// tests key off it to distinguish shedding from failure).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies; zero means 1 MiB.
	MaxBodyBytes int64
	// Registry receives the serve metric families (nil records
	// nothing). Every family is pre-declared at zero on construction so
	// /metrics exposes them before the first request.
	Registry *obs.Registry
	// Logf receives status messages (reloads, drain). Nil drops them.
	Logf func(format string, args ...any)
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// withDefaults normalizes the zero values.
func (c Config) withDefaults() Config {
	if c.AdmissionLimit <= 0 {
		c.AdmissionLimit = runtime.NumCPU()
	}
	if c.QueueSlack < 0 {
		c.QueueSlack = c.AdmissionLimit
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Snapshot is one immutable generation of the served state: the
// diagram, its recognizer, and the precomputed extent the reload
// validator checks replacements against. Requests load the current
// snapshot once and use only it, so a concurrent hot-swap can never
// show one request two generations.
type Snapshot struct {
	// Diagram is the loaded City Semantic Diagram (immutable).
	Diagram *csd.Diagram
	// Rec is the Algorithm 3 recognizer over Diagram.
	Rec *recognize.CSDRecognizer
	// Extent is Diagram.Extent(), cached at swap time.
	Extent geo.Rect
	// Generation counts swaps, starting at 1 for the initial load. It
	// is the server's own counter — distinct from the diagram's lineage
	// generation below, which can stay constant across swaps (reloading
	// the same file) or jump (catching up on a stream).
	Generation int64
	// DiagramGeneration is the diagram's lineage generation from the
	// .csdf framing header (0 for one-shot builds and legacy files);
	// DiagramParent is the generation it was derived from. A watcher
	// following a streaming ingester sees these advance with each
	// published delta.
	DiagramGeneration int64
	DiagramParent     int64
	// LoadedAt is when this snapshot went live.
	LoadedAt time.Time
}

// Server is the recognition service. Construct with New, install a
// diagram with LoadSnapshot (or UseDiagram in tests), then expose
// Handler on a listener — or use Start/Drain for the managed lifecycle.
type Server struct {
	cfg Config
	adm *admission
	met *metricsSet
	mux *http.ServeMux

	snap     atomic.Pointer[Snapshot]
	patterns atomic.Pointer[[]pattern.Pattern]
	draining atomic.Bool

	// reloadMu serializes LoadSnapshot/Reload; request paths never
	// take it. snapshotPath is the last loaded snapshot file;
	// patternsPath, when set, is re-read inside every reload so the
	// pattern set swaps with the diagram; currentDir, when set, makes
	// every reload re-resolve the checkpoint directory's CURRENT
	// pointer first (the streaming-ingestion publish protocol).
	reloadMu     sync.Mutex
	snapshotPath string
	patternsPath string
	currentDir   string

	scratch sync.Pool // *recognize.Scratch

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New builds a server with no snapshot installed: /healthz answers,
// /readyz reports unready, and every recognition route answers 503
// until LoadSnapshot or UseDiagram installs a diagram. All metric
// families are seeded at zero immediately.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		adm: newAdmission(cfg.AdmissionLimit, cfg.QueueSlack),
		met: newMetrics(cfg.Registry),
	}
	s.scratch.New = func() any { return new(recognize.Scratch) }
	s.mux = http.NewServeMux()
	s.routes(s.mux)
	return s
}

// Mux returns the server's route mux, so callers can mount additional
// endpoints (the obshttp debug surface) next to the recognition API.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// Handler returns the HTTP handler serving the recognition API.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the live snapshot (nil before the first load).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Ready reports whether the server would pass /readyz: a snapshot is
// live and draining has not begun.
func (s *Server) Ready() bool { return s.snap.Load() != nil && !s.draining.Load() }

// install atomically swaps d in as the live snapshot.
func (s *Server) install(d *csd.Diagram) *Snapshot {
	var gen int64 = 1
	if old := s.snap.Load(); old != nil {
		gen = old.Generation + 1
	}
	snap := &Snapshot{
		Diagram:           d,
		Rec:               recognize.NewCSDRecognizer(d),
		Extent:            d.Extent(),
		Generation:        gen,
		DiagramGeneration: d.Generation,
		DiagramParent:     d.ParentGeneration,
		LoadedAt:          time.Now(),
	}
	s.snap.Store(snap)
	s.met.setGeneration(gen, d.Generation, len(d.Units))
	return snap
}

// UseDiagram installs an already-built diagram directly (tests and
// benchmarks); production paths go through LoadSnapshot so the framed
// CRC validation is never bypassed.
func (s *Server) UseDiagram(d *csd.Diagram) { s.install(d) }

// LoadSnapshot reads, validates and installs the snapshot at path, and
// remembers the path for Reload. Unlike Reload, a failed initial load
// is fatal to the caller — there is no previous diagram to keep.
func (s *Server) LoadSnapshot(path string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	d, err := csd.ReadFile(path)
	if err != nil {
		return err
	}
	if err := validateDiagram(d); err != nil {
		return err
	}
	s.snapshotPath = path
	snap := s.install(d)
	s.cfg.logf("snapshot %s live: generation %d, %d units, %d POIs",
		path, snap.Generation, len(d.Units), len(d.POIs))
	return nil
}

// SetPatterns installs the mined pattern set served by /v1/patterns.
func (s *Server) SetPatterns(ps []pattern.Pattern) { s.patterns.Store(&ps) }

// LoadPatterns reads the pattern file, installs it, and remembers the
// path: every subsequent Reload re-reads it inside the same validated
// swap, so the diagram and its patterns change together — and a reload
// whose pattern file is corrupt rolls the whole swap back, keeping
// both the old diagram and the old patterns live.
func (s *Server) LoadPatterns(path string) error {
	ps, err := readPatternsFile(path)
	if err != nil {
		return err
	}
	s.reloadMu.Lock()
	s.patternsPath = path
	s.reloadMu.Unlock()
	s.SetPatterns(ps)
	s.cfg.logf("serving %d mined patterns from %s", len(ps), path)
	return nil
}

// LoadCurrent resolves the checkpoint directory's CURRENT pointer
// (the streaming ingester's atomic publish) and loads the snapshot it
// names. The directory is remembered: every Reload re-resolves
// CURRENT first, so a SIGHUP — or StartWatch — follows the lineage to
// whatever generation is published now.
//
// A directory with no CURRENT yet is the normal cold-start race —
// csdserve came up before the ingester published its first generation.
// That is not an error: the directory is still remembered (so the
// watcher adopts the first generation the moment it lands), the
// csdm_serve_watch_pending gauge goes to 1, and the server answers 503
// on recognition routes until then.
func (s *Server) LoadCurrent(dir string) error {
	path, err := ckpt.ResolveCurrent(dir)
	if err != nil {
		if !errors.Is(err, ckpt.ErrNoCurrent) {
			return err
		}
		s.reloadMu.Lock()
		s.currentDir = dir
		s.reloadMu.Unlock()
		s.met.watchPending(true)
		s.cfg.logf("no generation published in %s yet; serving unready until one lands", dir)
		return nil
	}
	if err := s.LoadSnapshot(path); err != nil {
		return err
	}
	s.reloadMu.Lock()
	s.currentDir = dir
	s.reloadMu.Unlock()
	return nil
}

// Patterns returns the installed pattern set (nil when none).
func (s *Server) Patterns() []pattern.Pattern {
	if p := s.patterns.Load(); p != nil {
		return *p
	}
	return nil
}

// contain runs fn under the per-request containment: the serve.request
// fault site fires first (so injected errors and panics exercise the
// real failure paths), and a panicking fn is converted to an
// *exec.PanicError instead of unwinding the connection goroutine.
func contain(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = exec.NewPanicError(v)
		}
	}()
	if err := fault.Hit("serve.request"); err != nil {
		return err
	}
	return fn()
}

// Start listens on addr and serves the handler in the background,
// returning the bound address (so addr may use port 0). Pair with
// Drain for a bounded graceful shutdown.
func (s *Server) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			s.cfg.logf("serve: %v", err)
		}
	}()
	return l.Addr().String(), nil
}

// Drain performs the graceful shutdown sequence: flip /readyz to 503
// (so load balancers stop routing), stop accepting connections, and
// wait up to timeout for in-flight requests to finish. It returns nil
// when every request drained, or the shutdown context's error when the
// timeout expired with requests still running. Safe to call without
// Start (it only flips readiness).
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := timeoutContext(timeout)
	defer cancel()
	return srv.Shutdown(ctx)
}
