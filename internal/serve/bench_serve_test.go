package serve

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"csdm/internal/ckpt"
)

// benchServeDuration is the measurement window per concurrency line,
// overridable with $BENCH_SERVE_DURATION for quick CI smoke runs.
func benchServeDuration(t *testing.T) time.Duration {
	if env := os.Getenv("BENCH_SERVE_DURATION"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil || d <= 0 {
			t.Fatalf("BENCH_SERVE_DURATION: bad duration %q", env)
		}
		return d
	}
	return 3 * time.Second
}

// TestEmitBenchServeJSON measures the serving path end to end — real
// listener, real HTTP round trips, the same loadgen engine cmd/loadgen
// uses — and writes a BENCH_SERVE.json document to the path in
// $BENCH_SERVE_JSON for cmd/benchgate -serve and for refreshing the
// committed baseline. Unset, the test skips, so normal `go test` runs
// pay nothing.
//
// The measured lines are pinned, not machine-derived: an admission
// limit of 4 with one line at the limit (pure throughput, no shedding)
// and one at 4× the limit (overload: QPS should hold while the excess
// sheds). Pinning keeps baselines comparable across refreshes.
func TestEmitBenchServeJSON(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_JSON")
	if path == "" {
		t.Skip("BENCH_SERVE_JSON not set")
	}
	const admissionLimit = 4

	s := New(Config{AdmissionLimit: admissionLimit, RequestTimeout: 2 * time.Second})
	s.UseDiagram(testDiagram(t))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(5 * time.Second)
	base := "http://" + addr

	doc := BenchServeReport{
		Benchmark:      "LoadgenRecognize",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		AdmissionLimit: admissionLimit,
	}
	dur := benchServeDuration(t)
	for _, concurrency := range []int{admissionLimit, 4 * admissionLimit} {
		rep, err := RunLoad(context.Background(), base, LoadOptions{
			Concurrency: concurrency,
			Duration:    dur,
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK == 0 {
			t.Fatalf("concurrency %d: no requests served", concurrency)
		}
		if rep.Errors > 0 {
			t.Fatalf("concurrency %d: %d errored requests", concurrency, rep.Errors)
		}
		if rep.Shed > 0 && rep.ShedWithRetryAfter != rep.Shed {
			t.Fatalf("concurrency %d: %d shed responses missing Retry-After", concurrency, rep.Shed-rep.ShedWithRetryAfter)
		}
		t.Logf("concurrency %d: qps=%.1f p50=%.2fms p99=%.2fms ok=%d shed=%d",
			concurrency, rep.QPS, rep.P50Ms, rep.P99Ms, rep.OK, rep.Shed)
		doc.Results = append(doc.Results, rep.BenchResult())
	}

	if err := ckpt.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}); err != nil {
		t.Fatal(err)
	}
}
