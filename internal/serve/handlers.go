package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/trajectory"
)

// httpError carries a status code out of a handler; anything else that
// isn't a deadline or a panic is a plain 500.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// maxQueryRadius bounds /v1/units and /v1/patterns range queries so a
// single request cannot scan the whole city.
const maxQueryRadius = 10_000.0

func (s *Server) routes(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/info", s.instrument("info", http.MethodGet, s.handleInfo))
	mux.HandleFunc("/v1/recognize", s.guarded("recognize", http.MethodPost, s.handleRecognize))
	mux.HandleFunc("/v1/units", s.guarded("units", http.MethodGet, s.handleUnits))
	mux.HandleFunc("/v1/patterns", s.guarded("patterns", http.MethodGet, s.handlePatterns))
	mux.HandleFunc("/admin/reload", s.instrument("reload", http.MethodPost, s.handleReload))
}

// handleHealthz is pure liveness: the process is up and the handler
// runs. It stays 200 through draining, so an orchestrator does not
// kill a pod that is still finishing in-flight requests.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is routability: 200 only while a snapshot is live and
// draining has not begun. It flips to 503 the instant Drain starts.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.snap.Load() == nil:
		http.Error(w, "no snapshot loaded", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// instrument wraps a handler with method filtering, request counting,
// latency observation and per-request containment — everything in the
// robustness envelope except admission control. Routes that must work
// while the service slots are saturated (info, admin reload) use it
// directly; data-path routes go through guarded.
func (s *Server) instrument(route, method string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.met.request(route)
		start := time.Now()
		ctx, cancel := requestContext(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		err := contain(func() error { return h(ctx, w, r) })
		s.met.observe(route, time.Since(start).Seconds())
		if err != nil {
			s.fail(w, err)
		}
	}
}

// guarded is instrument plus admission control: the request first
// claims an admission slot (or is shed with 503 + Retry-After), and
// only then runs under the deadline and panic containment.
func (s *Server) guarded(route, method string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.met.request(route)
		if s.snap.Load() == nil {
			http.Error(w, "no snapshot loaded", http.StatusServiceUnavailable)
			return
		}
		if err := s.adm.acquire(r.Context()); err != nil {
			if errors.Is(err, errShed) {
				s.met.shed()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
				http.Error(w, "overloaded, retry later", http.StatusServiceUnavailable)
			}
			// The client gave up while queued; nothing useful to write.
			return
		}
		s.met.inflight(s.adm.inflight.Load())
		defer func() {
			s.adm.release()
			s.met.inflight(s.adm.inflight.Load())
		}()

		start := time.Now()
		ctx, cancel := requestContext(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		err := contain(func() error { return h(ctx, w, r) })
		s.met.observe(route, time.Since(start).Seconds())
		if err != nil {
			s.fail(w, err)
		}
	}
}

// fail classifies a handler error onto the wire and the counters. The
// response write is best-effort: a handler that panicked after writing
// its status line cannot be un-written, but the containment guarantees
// the connection goroutine survives either way.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var he *httpError
	var pe *exec.PanicError
	switch {
	case errors.As(err, &he):
		http.Error(w, he.msg, he.code)
	case errors.As(err, &pe):
		s.met.panicked()
		s.cfg.logf("request panic contained: %v", pe.Value)
		http.Error(w, "internal error", http.StatusInternalServerError)
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timedOut()
		http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
	default:
		s.met.errored()
		http.Error(w, "internal error: "+err.Error(), http.StatusInternalServerError)
	}
}

func requestContext(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(parent, d)
	}
	return context.WithCancel(parent)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// pointJSON is the wire form of a coordinate.
type pointJSON struct {
	Lon float64 `json:"lon"`
	Lat float64 `json:"lat"`
}

// semanticsNames renders a semantic property as its major-category
// names (empty slice, not null, for the unknown property).
func semanticsNames(s poi.Semantics) []string {
	majors := s.Majors()
	names := make([]string, 0, len(majors))
	for _, m := range majors {
		names = append(names, m.String())
	}
	return names
}

// handleInfo reports the live snapshot: generation, sizes, extent.
// loadgen reads it to sample query points inside the served city.
func (s *Server) handleInfo(_ context.Context, w http.ResponseWriter, _ *http.Request) error {
	snap := s.snap.Load()
	if snap == nil {
		return &httpError{code: http.StatusServiceUnavailable, msg: "no snapshot loaded"}
	}
	return writeJSON(w, map[string]any{
		"generation":                snap.Generation,
		"diagram_generation":        snap.DiagramGeneration,
		"diagram_parent_generation": snap.DiagramParent,
		"loaded_at":                 snap.LoadedAt.UTC().Format(time.RFC3339),
		"units":                     len(snap.Diagram.Units),
		"pois":                      len(snap.Diagram.POIs),
		"patterns":                  len(s.Patterns()),
		"extent": map[string]pointJSON{
			"min": {Lon: snap.Extent.Min.Lon, Lat: snap.Extent.Min.Lat},
			"max": {Lon: snap.Extent.Max.Lon, Lat: snap.Extent.Max.Lat},
		},
	})
}

// recognizeRequest is the /v1/recognize body: the stay points of one
// journey (or a single stay) to annotate.
type recognizeRequest struct {
	Stays []pointJSON `json:"stays"`
}

type recognizedStay struct {
	Lon       float64  `json:"lon"`
	Lat       float64  `json:"lat"`
	Semantics []string `json:"semantics"`
}

// handleRecognize annotates the posted stay points against the live
// snapshot (Algorithm 3), loading the snapshot exactly once so a
// concurrent hot-swap cannot split one journey across generations.
func (s *Server) handleRecognize(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	snap := s.snap.Load()
	if snap == nil {
		return &httpError{code: http.StatusServiceUnavailable, msg: "no snapshot loaded"}
	}
	var req recognizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if len(req.Stays) == 0 {
		return badRequest("no stays to recognize")
	}
	stays := make([]trajectory.StayPoint, len(req.Stays))
	for i, p := range req.Stays {
		if err := geo.CheckCoord(p.Lon, p.Lat); err != nil {
			return badRequest("stay %d: %v", i, err)
		}
		stays[i].P = geo.Point{Lon: p.Lon, Lat: p.Lat}
	}
	sc := s.scratch.Get().(*recognize.Scratch)
	defer s.scratch.Put(sc)
	if err := recognize.RecognizeStays(ctx, stays, snap.Rec, sc); err != nil {
		return err
	}
	out := make([]recognizedStay, len(stays))
	for i, st := range stays {
		out[i] = recognizedStay{Lon: st.P.Lon, Lat: st.P.Lat, Semantics: semanticsNames(st.S)}
	}
	return writeJSON(w, map[string]any{"generation": snap.Generation, "stays": out})
}

// queryPoint parses the lon/lat[/radius] query parameters shared by
// the range-query routes. fallback is the radius when the parameter is
// absent.
func queryPoint(r *http.Request, fallback float64) (geo.Point, float64, error) {
	q := r.URL.Query()
	lon, err := strconv.ParseFloat(q.Get("lon"), 64)
	if err != nil {
		return geo.Point{}, 0, badRequest("bad or missing lon")
	}
	lat, err := strconv.ParseFloat(q.Get("lat"), 64)
	if err != nil {
		return geo.Point{}, 0, badRequest("bad or missing lat")
	}
	if err := geo.CheckCoord(lon, lat); err != nil {
		return geo.Point{}, 0, badRequest("%v", err)
	}
	radius := fallback
	if v := q.Get("radius"); v != "" {
		radius, err = strconv.ParseFloat(v, 64)
		if err != nil || radius <= 0 {
			return geo.Point{}, 0, badRequest("bad radius %q", v)
		}
	}
	if radius > maxQueryRadius {
		return geo.Point{}, 0, badRequest("radius %g exceeds the %g m cap", radius, maxQueryRadius)
	}
	return geo.Point{Lon: lon, Lat: lat}, radius, nil
}

type unitJSON struct {
	ID        int       `json:"id"`
	Center    pointJSON `json:"center"`
	Semantics []string  `json:"semantics"`
	Members   int       `json:"members"`
}

// handleUnits returns the semantic units with a member POI within
// radius meters of the query point (default radius: the snapshot's
// R3σ), ordered by unit ID.
func (s *Server) handleUnits(_ context.Context, w http.ResponseWriter, r *http.Request) error {
	snap := s.snap.Load()
	if snap == nil {
		return &httpError{code: http.StatusServiceUnavailable, msg: "no snapshot loaded"}
	}
	d := snap.Diagram
	p, radius, err := queryPoint(r, d.Params.R3Sigma)
	if err != nil {
		return err
	}
	members := d.MembersWithin(p, radius)
	seen := make(map[int]bool, 8)
	units := make([]unitJSON, 0, 8)
	for _, i := range members {
		uid := d.UnitOf(i)
		if uid < 0 || seen[uid] {
			continue
		}
		seen[uid] = true
		u := d.Units[uid]
		units = append(units, unitJSON{
			ID:        u.ID,
			Center:    pointJSON{Lon: u.Center.Lon, Lat: u.Center.Lat},
			Semantics: semanticsNames(u.Semantics),
			Members:   len(u.Members),
		})
	}
	sort.Slice(units, func(a, b int) bool { return units[a].ID < units[b].ID })
	return writeJSON(w, map[string]any{"generation": snap.Generation, "units": units})
}

type patternStayJSON struct {
	Lon       float64  `json:"lon"`
	Lat       float64  `json:"lat"`
	Semantics []string `json:"semantics"`
}

type patternJSONOut struct {
	Support int               `json:"support"`
	Stays   []patternStayJSON `json:"stays"`
}

// handlePatterns lists the mined patterns with a representative stay
// within radius meters of the query point, strongest support first.
// With no pattern set loaded the route answers an empty list, not an
// error — the capability is optional per deployment.
func (s *Server) handlePatterns(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	snap := s.snap.Load()
	if snap == nil {
		return &httpError{code: http.StatusServiceUnavailable, msg: "no snapshot loaded"}
	}
	p, radius, err := queryPoint(r, snap.Diagram.Params.R3Sigma)
	if err != nil {
		return err
	}
	limit := 20
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 || limit > 1000 {
			return badRequest("bad limit %q", v)
		}
	}
	var hits []patternJSONOut
	for pi, pat := range s.Patterns() {
		if pi%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		near := false
		for _, st := range pat.Stays {
			if geo.Haversine(st.P, p) <= radius {
				near = true
				break
			}
		}
		if !near {
			continue
		}
		out := patternJSONOut{Support: pat.Support, Stays: make([]patternStayJSON, len(pat.Stays))}
		for k, st := range pat.Stays {
			out.Stays[k] = patternStayJSON{Lon: st.P.Lon, Lat: st.P.Lat, Semantics: semanticsNames(st.S)}
		}
		hits = append(hits, out)
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Support > hits[b].Support })
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return writeJSON(w, map[string]any{"generation": snap.Generation, "patterns": hits, "count": len(hits)})
}

// handleReload triggers a validated hot-swap. A failed reload answers
// 500 with the validation error while the old snapshot keeps serving.
func (s *Server) handleReload(_ context.Context, w http.ResponseWriter, _ *http.Request) error {
	snap, err := s.Reload()
	if err != nil {
		return &httpError{code: http.StatusInternalServerError, msg: fmt.Sprintf("reload failed, previous snapshot still live: %v", err)}
	}
	return writeJSON(w, map[string]any{
		"generation": snap.Generation,
		"units":      len(snap.Diagram.Units),
		"pois":       len(snap.Diagram.POIs),
	})
}
