package serve

import "csdm/internal/obs"

// The serve metric families. Every one is pre-declared at zero when
// the server is constructed, so a scrape taken before the first
// request (or the first shed, panic, or reload failure) already
// exposes the full family set — cmd/promlint -require enforces this
// in CI.
const (
	mRequests       = "csdm_serve_requests_total"
	mShed           = "csdm_serve_shed_total"
	mPanics         = "csdm_serve_panics_total"
	mErrors         = "csdm_serve_errors_total"
	mTimeouts       = "csdm_serve_timeouts_total"
	mReloads        = "csdm_serve_reloads_total"
	mReloadFailures = "csdm_serve_reload_failures_total"
	mInflight       = "csdm_serve_inflight"
	mGeneration     = "csdm_serve_snapshot_generation"
	mDiagramGen     = "csdm_serve_diagram_generation"
	mUnits          = "csdm_serve_snapshot_units"
	mWatchPending   = "csdm_serve_watch_pending"
	famReqSeconds   = "csdm_serve_request_seconds"
)

// routeNames lists every instrumented route, so the per-route request
// histograms exist (at zero observations) from process start.
var routeNames = []string{"recognize", "units", "patterns", "info", "reload"}

// metricsSet is the server's pre-resolved metrics: counters by name
// (the registry's atomic fast path) and one latency histogram per
// route so the per-request cost is two time reads and a few atomic
// bumps, never a map lookup on the histogram. All of it is nil-safe —
// with no registry the histograms are nil (no-op Observe) and the
// counter adds return immediately.
type metricsSet struct {
	reg     *obs.Registry
	reqHist map[string]*obs.Histogram
}

func newMetrics(reg *obs.Registry) *metricsSet {
	m := &metricsSet{reg: reg, reqHist: make(map[string]*obs.Histogram, len(routeNames))}
	reg.Describe(mRequests, "Requests received by the recognition service, by route.")
	reg.Describe(mShed, "Requests shed by admission control with 503 + Retry-After.")
	reg.Describe(mPanics, "Handler panics contained per-request (500 to the caller, server stays up).")
	reg.Describe(mErrors, "Requests that failed with a 5xx other than shedding.")
	reg.Describe(mTimeouts, "Requests that exceeded the per-request deadline.")
	reg.Describe(mReloads, "Snapshot hot-swaps that passed validation and went live.")
	reg.Describe(mReloadFailures, "Snapshot reloads rejected (corrupt file or failed validation); the prior diagram stayed live.")
	reg.Describe(mInflight, "Requests currently holding an admission slot.")
	reg.Describe(mGeneration, "Generation of the live snapshot (increments on every successful swap).")
	reg.Describe(mDiagramGen, "Diagram lineage generation of the live snapshot, from the .csdf framing header (0 for one-shot builds).")
	reg.Describe(mUnits, "Semantic units in the live snapshot.")
	reg.Describe(mWatchPending, "1 while the watcher is waiting for the checkpoint dir's first published generation, else 0.")
	reg.Describe(famReqSeconds, "Latency of recognition-service requests, by route.")
	// Seed every family at zero so /metrics is complete before the
	// first event of each kind.
	for _, name := range []string{mShed, mPanics, mErrors, mTimeouts, mReloads, mReloadFailures} {
		reg.Add(name, 0)
	}
	reg.SetGauge(mInflight, 0)
	reg.SetGauge(mGeneration, 0)
	reg.SetGauge(mDiagramGen, 0)
	reg.SetGauge(mUnits, 0)
	reg.SetGauge(mWatchPending, 0)
	for _, route := range routeNames {
		reg.Add(obs.Label(mRequests, "route", route), 0)
		m.reqHist[route] = reg.Histogram(obs.Label(famReqSeconds, "route", route), obs.DefBuckets)
	}
	return m
}

func (m *metricsSet) request(route string) { m.reg.Add(obs.Label(mRequests, "route", route), 1) }
func (m *metricsSet) shed()                { m.reg.Add(mShed, 1) }
func (m *metricsSet) panicked()            { m.reg.Add(mPanics, 1) }
func (m *metricsSet) errored()             { m.reg.Add(mErrors, 1) }
func (m *metricsSet) timedOut()            { m.reg.Add(mTimeouts, 1) }
func (m *metricsSet) reloaded()            { m.reg.Add(mReloads, 1) }
func (m *metricsSet) reloadFailed()        { m.reg.Add(mReloadFailures, 1) }
func (m *metricsSet) inflight(n int64)     { m.reg.SetGauge(mInflight, float64(n)) }
func (m *metricsSet) observe(route string, seconds float64) {
	if h := m.reqHist[route]; h != nil {
		h.Observe(seconds)
	}
}
func (m *metricsSet) watchPending(pending bool) {
	v := 0.0
	if pending {
		v = 1.0
	}
	m.reg.SetGauge(mWatchPending, v)
}
func (m *metricsSet) setGeneration(gen, diagramGen int64, units int) {
	m.reg.SetGauge(mGeneration, float64(gen))
	m.reg.SetGauge(mDiagramGen, float64(diagramGen))
	m.reg.SetGauge(mUnits, float64(units))
}
