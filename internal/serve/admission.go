package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errShed is returned by acquire when both the service slots and the
// wait queue are full — the request must be shed, not queued.
var errShed = errors.New("serve: admission queue full")

// admission is the server's bounded admission gate: a semaphore of
// `limit` service slots fronted by a waiting room of `limit+slack`
// total occupancy. A request first claims a waiting-room token — a
// non-blocking attempt, so a full system sheds in nanoseconds with no
// goroutine parked — then blocks (cancellably) for a service slot. The
// two channels bound everything: at most `limit` requests in service,
// at most `slack` waiting, zero unbounded queues anywhere.
type admission struct {
	sem   chan struct{} // service slots
	queue chan struct{} // waiting room: service + waiters

	// inflight counts requests holding a service slot, for the
	// csdm_serve_inflight gauge.
	inflight atomic.Int64
}

func newAdmission(limit, slack int) *admission {
	return &admission{
		sem:   make(chan struct{}, limit),
		queue: make(chan struct{}, limit+slack),
	}
}

// acquire admits the request or rejects it: errShed when the system is
// full, ctx.Err() when the caller gave up (deadline or disconnect)
// while waiting for a slot. On nil the caller holds a service slot and
// must release it.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.queue <- struct{}{}:
	default:
		return errShed
	}
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		<-a.queue
		return ctx.Err()
	}
}

// release frees the service slot and the waiting-room token.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
	<-a.queue
}

// timeoutContext returns a context bounded by d when d > 0, otherwise
// a plain cancellable context.
func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.WithCancel(context.Background())
}
