package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csdm/internal/geo"
	"csdm/internal/obs"
)

func TestLoadSnapshotAndReload(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	path := writeSnapshot(t, dir, d)

	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap == nil || snap.Generation != 1 {
		t.Fatalf("initial snapshot = %+v, want generation 1", snap)
	}

	// A reload of the same file bumps the generation.
	snap, err := s.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 2 {
		t.Fatalf("generation after reload = %d, want 2", snap.Generation)
	}

	// /admin/reload does the same through HTTP.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/admin/reload = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Generation int64 `json:"generation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 3 {
		t.Fatalf("generation after HTTP reload = %d, want 3", resp.Generation)
	}
}

func TestReloadRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	path := writeSnapshot(t, dir, d)

	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()

	// Corrupt the file in place (flip bytes inside the payload so the
	// CRC check fires) and reload: the swap must be refused and the old
	// snapshot must keep serving.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Reload(); err == nil {
		t.Fatal("Reload accepted a corrupt snapshot")
	}
	if got := s.Snapshot(); got != live {
		t.Fatalf("corrupt reload swapped the snapshot: %p -> %p", live, got)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("/admin/reload with corrupt file = %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "previous snapshot still live") {
		t.Fatalf("reload failure body = %q, want rollback notice", w.Body.String())
	}

	// Requests still serve from the old generation.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusOK {
		t.Fatalf("recognize after corrupt reload = %d: %s", w.Code, w.Body.String())
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "csdm_serve_reload_failures_total 2") {
		t.Fatalf("csdm_serve_reload_failures_total != 2 after two failed reloads:\n%s", buf.String())
	}
}

// TestReloadRefusesDisjointExtent overwrites the snapshot with a
// structurally valid diagram for a different city: validation must
// refuse the swap (a wrong-city snapshot is a deploy mistake, not an
// update) and keep the old diagram live.
func TestReloadRefusesDisjointExtent(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	path := writeSnapshot(t, dir, testDiagram(t))
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()

	other := testDiagramAt(t, geo.Point{Lon: 116.40, Lat: 39.90}) // ~1000 km away
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Reload(); err == nil || !strings.Contains(err.Error(), "does not overlap") {
		t.Fatalf("Reload of a disjoint-extent snapshot: err = %v, want extent refusal", err)
	}
	if got := s.Snapshot(); got != live {
		t.Fatal("disjoint-extent reload swapped the snapshot")
	}
}

// TestConcurrentHotSwap hammers recognition requests from N goroutines
// while a reloader loop alternates valid and corrupt snapshots. Under
// -race this proves the swap is tear-free: every request sees a
// complete diagram (200 with a generation, never a 5xx other than the
// deliberate corrupt-reload 500s), and a corrupt reload always leaves
// the previous generation serving.
func TestConcurrentHotSwap(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	path := writeSnapshot(t, dir, d)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xFF

	s := New(Config{AdmissionLimit: 16, QueueSlack: 16})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}

	const (
		hammers          = 8
		requestsPerRound = 40
		rounds           = 12
	)
	var stop atomic.Bool
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < hammers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
				switch w.Code {
				case http.StatusOK:
					var resp struct {
						Generation int64 `json:"generation"`
					}
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Generation < 1 {
						t.Errorf("torn response (gen %d, err %v): %s", resp.Generation, err, w.Body.String())
						stop.Store(true)
						return
					}
					served.Add(1)
				default:
					failed.Add(1)
					t.Errorf("request failed with %d during hot-swap: %s", w.Code, w.Body.String())
					stop.Store(true)
					return
				}
			}
		}()
	}

	// The reloader alternates: valid swap (generation++), corrupt swap
	// (refused, old stays). Every corrupt round must leave Snapshot()
	// non-nil and identical to the pre-round snapshot.
	for round := 0; round < rounds && !stop.Load(); round++ {
		if round%2 == 0 {
			if err := os.WriteFile(path, valid, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Reload(); err != nil {
				t.Fatalf("round %d: valid reload failed: %v", round, err)
			}
		} else {
			before := s.Snapshot()
			if err := os.WriteFile(path, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Reload(); err == nil {
				t.Fatalf("round %d: corrupt reload succeeded", round)
			}
			if after := s.Snapshot(); after != before {
				t.Fatalf("round %d: corrupt reload changed the snapshot", round)
			}
		}
	}
	// On a single-CPU box (especially under -race) the reloader loop can
	// finish before any hammer goroutine gets scheduled; give them time
	// to serve at least one request so the overlap assertion below means
	// something.
	for deadline := time.Now().Add(5 * time.Second); served.Load() == 0 && failed.Load() == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no requests served during the hot-swap hammer")
	}
	if failed.Load() != 0 {
		t.Fatalf("%d requests failed during hot-swap (want 0)", failed.Load())
	}
	// Six valid swaps on top of the initial load.
	if gen := s.Snapshot().Generation; gen != 1+int64((rounds+1)/2) {
		t.Fatalf("final generation = %d, want %d", gen, 1+(rounds+1)/2)
	}
}
