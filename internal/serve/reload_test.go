package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/poi"
)

func TestLoadSnapshotAndReload(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	path := writeSnapshot(t, dir, d)

	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap == nil || snap.Generation != 1 {
		t.Fatalf("initial snapshot = %+v, want generation 1", snap)
	}

	// A reload of the same file bumps the generation.
	snap, err := s.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 2 {
		t.Fatalf("generation after reload = %d, want 2", snap.Generation)
	}

	// /admin/reload does the same through HTTP.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/admin/reload = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Generation int64 `json:"generation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 3 {
		t.Fatalf("generation after HTTP reload = %d, want 3", resp.Generation)
	}
}

func TestReloadRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	path := writeSnapshot(t, dir, d)

	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()

	// Corrupt the file in place (flip bytes inside the payload so the
	// CRC check fires) and reload: the swap must be refused and the old
	// snapshot must keep serving.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Reload(); err == nil {
		t.Fatal("Reload accepted a corrupt snapshot")
	}
	if got := s.Snapshot(); got != live {
		t.Fatalf("corrupt reload swapped the snapshot: %p -> %p", live, got)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("/admin/reload with corrupt file = %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "previous snapshot still live") {
		t.Fatalf("reload failure body = %q, want rollback notice", w.Body.String())
	}

	// Requests still serve from the old generation.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusOK {
		t.Fatalf("recognize after corrupt reload = %d: %s", w.Code, w.Body.String())
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "csdm_serve_reload_failures_total 2") {
		t.Fatalf("csdm_serve_reload_failures_total != 2 after two failed reloads:\n%s", buf.String())
	}
}

// TestReloadRefusesDisjointExtent overwrites the snapshot with a
// structurally valid diagram for a different city: validation must
// refuse the swap (a wrong-city snapshot is a deploy mistake, not an
// update) and keep the old diagram live.
func TestReloadRefusesDisjointExtent(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	path := writeSnapshot(t, dir, testDiagram(t))
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()

	other := testDiagramAt(t, geo.Point{Lon: 116.40, Lat: 39.90}) // ~1000 km away
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Reload(); err == nil || !strings.Contains(err.Error(), "does not overlap") {
		t.Fatalf("Reload of a disjoint-extent snapshot: err = %v, want extent refusal", err)
	}
	if got := s.Snapshot(); got != live {
		t.Fatal("disjoint-extent reload swapped the snapshot")
	}
}

// TestConcurrentHotSwap hammers recognition requests from N goroutines
// while a reloader loop alternates valid and corrupt snapshots. Under
// -race this proves the swap is tear-free: every request sees a
// complete diagram (200 with a generation, never a 5xx other than the
// deliberate corrupt-reload 500s), and a corrupt reload always leaves
// the previous generation serving.
func TestConcurrentHotSwap(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	path := writeSnapshot(t, dir, d)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xFF

	s := New(Config{AdmissionLimit: 16, QueueSlack: 16})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}

	const (
		hammers          = 8
		requestsPerRound = 40
		rounds           = 12
	)
	var stop atomic.Bool
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < hammers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
				switch w.Code {
				case http.StatusOK:
					var resp struct {
						Generation int64 `json:"generation"`
					}
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Generation < 1 {
						t.Errorf("torn response (gen %d, err %v): %s", resp.Generation, err, w.Body.String())
						stop.Store(true)
						return
					}
					served.Add(1)
				default:
					failed.Add(1)
					t.Errorf("request failed with %d during hot-swap: %s", w.Code, w.Body.String())
					stop.Store(true)
					return
				}
			}
		}()
	}

	// The reloader alternates: valid swap (generation++), corrupt swap
	// (refused, old stays). Every corrupt round must leave Snapshot()
	// non-nil and identical to the pre-round snapshot.
	for round := 0; round < rounds && !stop.Load(); round++ {
		if round%2 == 0 {
			if err := os.WriteFile(path, valid, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Reload(); err != nil {
				t.Fatalf("round %d: valid reload failed: %v", round, err)
			}
		} else {
			before := s.Snapshot()
			if err := os.WriteFile(path, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Reload(); err == nil {
				t.Fatalf("round %d: corrupt reload succeeded", round)
			}
			if after := s.Snapshot(); after != before {
				t.Fatalf("round %d: corrupt reload changed the snapshot", round)
			}
		}
	}
	// On a single-CPU box (especially under -race) the reloader loop can
	// finish before any hammer goroutine gets scheduled; give them time
	// to serve at least one request so the overlap assertion below means
	// something.
	for deadline := time.Now().Add(5 * time.Second); served.Load() == 0 && failed.Load() == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no requests served during the hot-swap hammer")
	}
	if failed.Load() != 0 {
		t.Fatalf("%d requests failed during hot-swap (want 0)", failed.Load())
	}
	// Six valid swaps on top of the initial load.
	if gen := s.Snapshot().Generation; gen != 1+int64((rounds+1)/2) {
		t.Fatalf("final generation = %d, want %d", gen, 1+(rounds+1)/2)
	}
}

// TestReloadAcceptsGrownExtent reloads a snapshot whose extent strictly
// contains the live one — a re-mine that picked up new territory, or a
// sharded country build superseding a single-city diagram. Growth is a
// legitimate update, not a wrong-city deploy: the swap must proceed.
func TestReloadAcceptsGrownExtent(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	path := writeSnapshot(t, dir, testDiagram(t))
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()

	grown := grownDiagram(t)
	if !grown.Extent().Contains(live.Extent.Min) || !grown.Extent().Contains(live.Extent.Max) {
		t.Fatalf("test setup: grown extent %v does not contain live extent %v", grown.Extent(), live.Extent)
	}
	writeSnapshotTo(t, path, grown)

	snap, err := s.Reload()
	if err != nil {
		t.Fatalf("Reload of a grown-extent snapshot refused: %v", err)
	}
	if snap.Generation != live.Generation+1 {
		t.Fatalf("generation after grown reload = %d, want %d", snap.Generation, live.Generation+1)
	}
}

// TestReloadRefusesSliverOverlap overwrites the snapshot with a
// diagram for an adjacent area whose extent grazes the live one by a
// few meters. The extents DO intersect — the pre-fix bare Intersects
// check waved this wrong-city snapshot through — but the overlap
// covers a tiny fraction of the live extent, so the swap must be
// refused and the old diagram kept live.
func TestReloadRefusesSliverOverlap(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	path := writeSnapshot(t, dir, testDiagram(t))
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()

	// Shift the whole city east until only a sliver of its extent still
	// touches the live one.
	pr := geo.NewProjection(origin)
	sliver := testDiagramAt(t, pr.ToPoint(geo.Meters{X: 110, Y: 0}))
	if !sliver.Extent().Intersects(live.Extent) {
		t.Fatalf("test setup: sliver extent %v is disjoint from live extent %v (the pre-fix check would refuse it too)",
			sliver.Extent(), live.Extent)
	}
	writeSnapshotTo(t, path, sliver)

	if _, err := s.Reload(); err == nil || !strings.Contains(err.Error(), "does not overlap") {
		t.Fatalf("Reload of a sliver-overlap snapshot: err = %v, want extent refusal", err)
	}
	if got := s.Snapshot(); got != live {
		t.Fatal("sliver-overlap reload swapped the snapshot")
	}
}

// grownDiagram builds the testDiagram city plus far-flung corner
// territory, so its extent strictly contains testDiagram's.
func grownDiagram(tb testing.TB) *csd.Diagram {
	tb.Helper()
	pr := geo.NewProjection(origin)
	pt := func(x, y float64) geo.Point { return pr.ToPoint(geo.Meters{X: x, Y: y}) }
	var pois []poi.POI
	var id int64 = 1
	add := func(x, y float64, minor poi.Minor) {
		pois = append(pois, poi.POI{ID: id, Location: pt(x, y), Minor: minor})
		id++
	}
	for i := 0; i < 8; i++ {
		add(-40+float64(i%4)*6, float64(i/4)*6-3, poi.MinorsOf(poi.ShopMarket)[0])
	}
	for i := 0; i < 6; i++ {
		add(60+float64(i%3)*6, float64(i/3)*6-3, poi.MinorsOf(poi.Restaurant)[0])
	}
	// Corner outposts push the extent well beyond the live city.
	add(-220, -60, poi.MinorsOf(poi.ShopMarket)[0])
	add(240, 60, poi.MinorsOf(poi.Restaurant)[0])
	var stays []geo.Point
	for i := 0; i < 120; i++ {
		stays = append(stays, pt(-40+float64(i%30), float64(i%20)-10))
	}
	for i := 0; i < 30; i++ {
		stays = append(stays, pt(60+float64(i%15), float64(i%10)-5))
	}
	return csd.Build(pois, stays, csd.DefaultParams())
}

// writeSnapshotTo overwrites path with d (framed .csdf).
func writeSnapshotTo(tb testing.TB, path string, d *csd.Diagram) {
	tb.Helper()
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := d.Write(f); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
}
