package serve

import (
	"fmt"
	"os"

	"csdm/internal/ckpt"
	"csdm/internal/csd"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/pattern"
)

// readPatternsFile loads a mined pattern set (the csdminer
// -save-patterns format), wrapping errors with the path.
func readPatternsFile(path string) ([]pattern.Pattern, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load patterns: %w", err)
	}
	defer f.Close()
	ps, err := pattern.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("serve: load patterns %s: %w", path, err)
	}
	return ps, nil
}

// validateDiagram is the snapshot sanity check shared by the initial
// load and every reload: a diagram that decodes cleanly (the framed
// CRC already vouches for the bytes) must also be non-degenerate
// before it may serve traffic.
func validateDiagram(d *csd.Diagram) error {
	if len(d.POIs) == 0 {
		return fmt.Errorf("serve: snapshot has no POIs")
	}
	if len(d.Units) == 0 {
		return fmt.Errorf("serve: snapshot has no semantic units")
	}
	return nil
}

// Reload re-reads the snapshot path through the framed CRC loader,
// validates the replacement — non-empty units, and an extent
// overlapping the live diagram's (a snapshot for a different city is a
// deploy mistake, not an update) — and atomically swaps it in. When
// the server was pointed at a checkpoint directory (LoadCurrent), the
// CURRENT pointer is re-resolved first, so the reload follows a
// streaming ingester's lineage; when a patterns file was installed
// (LoadPatterns), it is re-read inside the same swap, so the pattern
// set can never skew against the diagram. On any failure — including a
// corrupt patterns file — the old diagram AND old patterns keep
// serving, csdm_serve_reload_failures_total is bumped, and the error
// is returned; in-flight and subsequent requests never notice.
// Concurrent Reloads serialize; request paths never block on one.
func (s *Server) Reload() (*Snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	snap, err := s.reloadLocked()
	if err != nil {
		s.met.reloadFailed()
		s.cfg.logf("reload failed (keeping generation %d): %v", s.generation(), err)
		return nil, err
	}
	s.met.reloaded()
	s.cfg.logf("reload: snapshot generation %d live (%d units, %d POIs)",
		snap.Generation, len(snap.Diagram.Units), len(snap.Diagram.POIs))
	return snap, nil
}

func (s *Server) reloadLocked() (*Snapshot, error) {
	if s.currentDir != "" {
		path, err := ckpt.ResolveCurrent(s.currentDir)
		if err != nil {
			return nil, err
		}
		s.snapshotPath = path
	}
	if s.snapshotPath == "" {
		return nil, fmt.Errorf("serve: no snapshot path to reload (diagram was installed directly)")
	}
	if err := fault.Hit("serve.reload"); err != nil {
		return nil, err
	}
	d, err := csd.ReadFile(s.snapshotPath)
	if err != nil {
		return nil, err
	}
	if err := validateDiagram(d); err != nil {
		return nil, err
	}
	if old := s.snap.Load(); old != nil {
		if err := checkExtentOverlap(d.Extent(), old.Extent); err != nil {
			return nil, err
		}
	}
	// Everything the swap needs is validated before anything goes live:
	// a corrupt patterns file aborts here, before the diagram swaps, so
	// the service never serves a new diagram with stale patterns or
	// vice versa.
	var ps []pattern.Pattern
	if s.patternsPath != "" {
		if ps, err = readPatternsFile(s.patternsPath); err != nil {
			return nil, err
		}
	}
	snap := s.install(d)
	if s.patternsPath != "" {
		s.SetPatterns(ps)
	}
	return snap, nil
}

// minExtentCoverage is the fraction of the live extent a replacement
// snapshot must cover for the swap to proceed.
const minExtentCoverage = 0.5

// checkExtentOverlap decides whether a replacement snapshot's extent is
// plausibly "the same city" as the live one. Corner-touching
// rectangles technically intersect, so a bare Intersects let a
// wrong-city snapshot through whenever its extent grazed the live one
// by a sliver; conversely a legitimately *grown* extent (a re-mine
// that picked up new suburbs, a sharded country build superseding one
// city) is a superset, which must be accepted. Both fall out of
// measuring how much of the live extent the replacement covers:
// containment and supersets score 1.0, slivers score near 0, and
// anything below minExtentCoverage is refused. A zero-area live
// extent (a degenerate single-point diagram) has no coverage to
// measure and falls back to plain intersection.
func checkExtentOverlap(ext, live geo.Rect) error {
	inter, ok := ext.Intersection(live)
	if !ok {
		return fmt.Errorf("serve: snapshot extent %v does not overlap live extent %v: refusing swap", ext, live)
	}
	liveArea := live.DegArea()
	if liveArea <= 0 {
		return nil
	}
	if cov := inter.DegArea() / liveArea; cov < minExtentCoverage {
		return fmt.Errorf("serve: snapshot extent %v does not overlap live extent %v enough (%.0f%% covered, need %.0f%%): refusing swap",
			ext, live, cov*100, minExtentCoverage*100)
	}
	return nil
}

// generation returns the live snapshot's generation (0 before the
// first load).
func (s *Server) generation() int64 {
	if snap := s.snap.Load(); snap != nil {
		return snap.Generation
	}
	return 0
}
