package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csdm/internal/fault"
	"csdm/internal/obs"
)

// TestFaultInjectedRequestPanicIsContained fires a panic inside the
// first request via the serve.request site: the caller gets a 500, the
// panic counter bumps, and the very next request serves normally — the
// process-stays-up contract.
func TestFaultInjectedRequestPanicIsContained(t *testing.T) {
	in, err := fault.Parse("serve.request:panic:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	t.Cleanup(func() { fault.Activate(nil) })

	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500", w.Code)
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusOK {
		t.Fatalf("request after contained panic = %d: %s", w.Code, w.Body.String())
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "csdm_serve_panics_total 1") {
		t.Fatalf("csdm_serve_panics_total not bumped:\n%s", buf.String())
	}
}

// TestFaultInjectedRequestError maps an injected error onto the plain
// 5xx path and its counter, leaving later requests untouched.
func TestFaultInjectedRequestError(t *testing.T) {
	in, err := fault.Parse("serve.request:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	t.Cleanup(func() { fault.Activate(nil) })

	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("errored request = %d, want 500", w.Code)
	}
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusOK {
		t.Fatalf("request after injected error = %d", w.Code)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "csdm_serve_errors_total 1") {
		t.Fatalf("csdm_serve_errors_total not bumped:\n%s", buf.String())
	}
}

// TestFaultInjectedReloadFailureRollsBack fails the first reload via
// the serve.reload site: the failure counter bumps, the prior snapshot
// keeps serving, and the next (uninjected) reload succeeds.
func TestFaultInjectedReloadFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, testDiagram(t))

	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()

	in, err := fault.Parse("serve.reload:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	t.Cleanup(func() { fault.Activate(nil) })

	if _, err := s.Reload(); err == nil {
		t.Fatal("injected reload error did not surface")
	}
	if got := s.Snapshot(); got != live {
		t.Fatal("failed reload swapped the snapshot")
	}
	// Recognition still serves from the old generation.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusOK {
		t.Fatalf("recognize after failed reload = %d: %s", w.Code, w.Body.String())
	}

	// The trigger was one-shot: the next reload goes through.
	snap, err := s.Reload()
	if err != nil {
		t.Fatalf("reload after injected failure: %v", err)
	}
	if snap.Generation != 2 {
		t.Fatalf("generation = %d, want 2", snap.Generation)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "csdm_serve_reload_failures_total 1") {
		t.Fatalf("csdm_serve_reload_failures_total not bumped:\n%s", out)
	}
	if !strings.Contains(out, "csdm_serve_reloads_total 1") {
		t.Fatalf("csdm_serve_reloads_total not bumped:\n%s", out)
	}
}
