package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions parameterizes one load-generation run against a running
// recognition server.
type LoadOptions struct {
	// Concurrency is the number of closed-loop worker goroutines (each
	// keeps exactly one request in flight). <= 0 means 8.
	Concurrency int
	// Duration bounds the run's wall time. <= 0 means 10 seconds.
	Duration time.Duration
	// MaxRequests, when positive, stops the run after that many
	// requests even if Duration has not elapsed.
	MaxRequests int64
	// StaysPerRequest is the synthetic journey length posted per
	// request. <= 0 means 4.
	StaysPerRequest int
	// Seed drives the synthetic check-in point sampling; equal seeds
	// generate identical request streams per worker.
	Seed int64
	// Timeout is the per-request HTTP client timeout. <= 0 means 5s.
	Timeout time.Duration
}

// LoadReport is the outcome of a load run: classification counts and
// the latency distribution of the served (200) requests.
type LoadReport struct {
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	DurationSec float64 `json:"duration_sec"`
	// QPS counts served (200) responses per second of wall time.
	QPS   float64 `json:"qps"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ShedWithRetryAfter counts the 503 responses that carried the
	// Retry-After header; a robust server sheds with a hint on every
	// one, so ShedWithRetryAfter == Shed.
	ShedWithRetryAfter int64 `json:"shed_with_retry_after"`
}

// ServerInfo mirrors the /v1/info response fields loadgen needs.
type ServerInfo struct {
	Generation int64 `json:"generation"`
	Units      int   `json:"units"`
	Extent     struct {
		Min pointJSON `json:"min"`
		Max pointJSON `json:"max"`
	} `json:"extent"`
}

// FetchInfo reads /v1/info from a running server.
func FetchInfo(ctx context.Context, client *http.Client, baseURL string) (ServerInfo, error) {
	var info ServerInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/info", nil)
	if err != nil {
		return info, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return info, fmt.Errorf("loadgen: fetch /v1/info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("loadgen: /v1/info: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, fmt.Errorf("loadgen: decode /v1/info: %w", err)
	}
	return info, nil
}

// RunLoad drives a synthetic check-in stream against the server at
// baseURL: each worker samples stay points uniformly inside the served
// city's extent (read from /v1/info) and posts them to /v1/recognize
// in a closed loop until the duration elapses. 200 counts as served,
// 503 as shed (Retry-After presence recorded), anything else as an
// error. The latency quantiles cover served requests only — a shed
// response answering fast is the feature, not a latency sample.
func RunLoad(ctx context.Context, baseURL string, opt LoadOptions) (LoadReport, error) {
	if opt.Concurrency <= 0 {
		opt.Concurrency = 8
	}
	if opt.Duration <= 0 {
		opt.Duration = 10 * time.Second
	}
	if opt.StaysPerRequest <= 0 {
		opt.StaysPerRequest = 4
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	client := &http.Client{
		Timeout: opt.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opt.Concurrency * 2,
			MaxIdleConnsPerHost: opt.Concurrency * 2,
		},
	}
	info, err := FetchInfo(ctx, client, baseURL)
	if err != nil {
		return LoadReport{}, err
	}
	lonSpan := info.Extent.Max.Lon - info.Extent.Min.Lon
	latSpan := info.Extent.Max.Lat - info.Extent.Min.Lat
	if lonSpan <= 0 || latSpan <= 0 {
		return LoadReport{}, fmt.Errorf("loadgen: degenerate server extent %+v", info.Extent)
	}

	runCtx, cancel := context.WithTimeout(ctx, opt.Duration)
	defer cancel()

	var (
		requests, ok, shed, errs, shedWithHint atomic.Int64
		mu                                     sync.Mutex
		latencies                              []float64 // ms, served requests only
		wg                                     sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(worker)*7919))
			local := make([]float64, 0, 1024)
			body := make(map[string][]pointJSON, 1)
			var buf bytes.Buffer
			for runCtx.Err() == nil {
				if opt.MaxRequests > 0 && requests.Load() >= opt.MaxRequests {
					break
				}
				stays := make([]pointJSON, opt.StaysPerRequest)
				for i := range stays {
					stays[i] = pointJSON{
						Lon: info.Extent.Min.Lon + rng.Float64()*lonSpan,
						Lat: info.Extent.Min.Lat + rng.Float64()*latSpan,
					}
				}
				body["stays"] = stays
				buf.Reset()
				if err := json.NewEncoder(&buf).Encode(body); err != nil {
					errs.Add(1)
					continue
				}
				req, err := http.NewRequestWithContext(runCtx, http.MethodPost, baseURL+"/v1/recognize", bytes.NewReader(buf.Bytes()))
				if err != nil {
					errs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				requests.Add(1)
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if runCtx.Err() != nil {
						requests.Add(-1) // the run ended mid-flight, not a failure
						break
					}
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					local = append(local, float64(time.Since(t0).Microseconds())/1000)
				case http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						shedWithHint.Add(1)
					}
				default:
					errs.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sort.Float64s(latencies)
	rep := LoadReport{
		Concurrency:        opt.Concurrency,
		Requests:           requests.Load(),
		OK:                 ok.Load(),
		Shed:               shed.Load(),
		Errors:             errs.Load(),
		DurationSec:        elapsed,
		ShedWithRetryAfter: shedWithHint.Load(),
		P50Ms:              quantile(latencies, 0.50),
		P95Ms:              quantile(latencies, 0.95),
		P99Ms:              quantile(latencies, 0.99),
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.OK) / elapsed
	}
	return rep, nil
}

// quantile is the nearest-rank quantile of a sorted sample (0 when
// empty).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// BenchServeResult is one measured concurrency line of BENCH_SERVE.json.
type BenchServeResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// BenchServeReport is the BENCH_SERVE.json document cmd/benchgate's
// serve mode gates on: QPS floors and p99 ceilings per concurrency
// line, tolerances supplied by the gate.
type BenchServeReport struct {
	Benchmark      string             `json:"benchmark"`
	GoMaxProcs     int                `json:"go_max_procs"`
	NumCPU         int                `json:"num_cpu"`
	AdmissionLimit int                `json:"admission_limit"`
	Results        []BenchServeResult `json:"results"`
}

// BenchResult converts a load report into its bench-report line.
func (r LoadReport) BenchResult() BenchServeResult {
	return BenchServeResult{
		Concurrency: r.Concurrency,
		Requests:    r.Requests,
		OK:          r.OK,
		Shed:        r.Shed,
		Errors:      r.Errors,
		QPS:         r.QPS,
		P50Ms:       r.P50Ms,
		P95Ms:       r.P95Ms,
		P99Ms:       r.P99Ms,
	}
}
